(* The three-level hierarchical timing wheel (DESIGN.md §15): direct
   unit tests on the wheel itself, a qcheck model of the full
   wheel+overflow-heap queue against a sorted-list oracle with
   epoch-crossing times, and a serial==windowed identity run driving
   wheel drains through Shard.advance lockstep windows. *)

let epoch = 1 lsl 24

(* ---------------- direct wheel tests ---------------- *)

let test_fifo_ties () =
  (* Same-time payloads pop in insertion order: a level-0 slot pins the
     exact timestamp and appends at the tail. *)
  let w = Timing_wheel.create ~capacity:16 () in
  for s = 0 to 4 do
    Alcotest.(check bool) "accepted" true (Timing_wheel.add w ~time:7 s)
  done;
  Alcotest.(check int) "count" 5 (Timing_wheel.count w);
  for s = 0 to 4 do
    Alcotest.(check int) "head time" 7 (Timing_wheel.next_time w);
    Alcotest.(check int) "fifo" s (Timing_wheel.pop w)
  done;
  Alcotest.(check bool) "empty" true (Timing_wheel.is_empty w);
  Alcotest.(check int) "empty next" (-1) (Timing_wheel.next_time w)

let test_past_rejected () =
  let w = Timing_wheel.create ~capacity:4 () in
  ignore (Timing_wheel.add w ~time:1000 0);
  Alcotest.(check int) "advance" 1000 (Timing_wheel.next_time w);
  ignore (Timing_wheel.pop w);
  (* The cursor now sits at 1000: anything behind it is refused and the
     wheel is left untouched. *)
  Alcotest.(check bool) "past refused" false (Timing_wheel.add w ~time:999 1);
  Alcotest.(check int) "nothing filed" 0 (Timing_wheel.count w);
  Alcotest.(check bool) "cursor time ok" true (Timing_wheel.add w ~time:1000 1);
  Alcotest.(check int) "same tick pops" 1000 (Timing_wheel.next_time w);
  Alcotest.(check int) "payload" 1 (Timing_wheel.pop w)

let test_epoch_rejected_and_jump () =
  let w = Timing_wheel.create ~capacity:4 () in
  (* Beyond the cursor's 2^24-tick epoch the wheel refuses: that band
     belongs to the caller's overflow heap. *)
  Alcotest.(check bool) "beyond epoch" false (Timing_wheel.add w ~time:epoch 0);
  Alcotest.(check bool) "last in-epoch tick" true
    (Timing_wheel.add w ~time:(epoch - 1) 0);
  Alcotest.(check int) "served" (epoch - 1) (Timing_wheel.next_time w);
  Alcotest.(check int) "payload" 0 (Timing_wheel.pop w);
  (* Empty wheel: jump migrates the cursor to a far epoch, after which
     that epoch's band is acceptable and the old one is behind. *)
  Timing_wheel.jump w (5 * epoch);
  Alcotest.(check bool) "new epoch ok" true
    (Timing_wheel.add w ~time:((5 * epoch) + 123) 1);
  Alcotest.(check bool) "old epoch behind" false
    (Timing_wheel.add w ~time:(epoch + 1) 2);
  Alcotest.(check int) "served after jump" ((5 * epoch) + 123)
    (Timing_wheel.next_time w);
  Alcotest.(check int) "payload after jump" 1 (Timing_wheel.pop w)

let test_cascade_order () =
  (* Times scattered across all three levels, inserted in a shuffled
     order, must come back fully sorted with FIFO ties — cascades from
     L2 through L1 into L0 preserve both. *)
  let times =
    [ 3; 300; 70_000; 3; 299; 65_536; 16_000_000; 700_000; 0; 300 ]
  in
  let w = Timing_wheel.create ~capacity:(List.length times) () in
  List.iteri
    (fun s time ->
      Alcotest.(check bool) "accepted" true (Timing_wheel.add w ~time s))
    times;
  let sorted =
    List.stable_sort
      (fun (t1, _) (t2, _) -> compare t1 t2)
      (List.mapi (fun s t -> (t, s)) times)
  in
  List.iter
    (fun (t, s) ->
      Alcotest.(check int) "time order" t (Timing_wheel.next_time w);
      Alcotest.(check int) "fifo within time" s (Timing_wheel.pop w))
    sorted;
  Alcotest.(check bool) "drained" true (Timing_wheel.is_empty w)

let test_drain_all () =
  let w = Timing_wheel.create ~capacity:8 () in
  List.iteri
    (fun s t -> ignore (Timing_wheel.add w ~time:t s))
    [ 1; 500; 100_000; 9_000_000 ];
  let seen = ref [] in
  Timing_wheel.drain_all w (fun s -> seen := s :: !seen);
  Alcotest.(check int) "all delivered" 4 (List.length !seen);
  Alcotest.(check (list int)) "payload set" [ 0; 1; 2; 3 ]
    (List.sort compare !seen);
  Alcotest.(check bool) "empty" true (Timing_wheel.is_empty w);
  Alcotest.(check int) "count" 0 (Timing_wheel.count w)

(* ---------------- qcheck model: wheel + overflow heap ----------------- *)

(* The wheel is exercised through Event_queue, whose heap holds what the
   wheel refuses and migrates an epoch down on demand — the model covers
   FIFO ties, cancel-while-slotted (lazy deletion), heap->wheel
   migration across epoch horizons, and schedule-in-past handling in one
   operation stream.  The time generator straddles several epochs so
   pops force [jump] + migration. *)

let add q ~time v = Event_queue.add q ~time ~cb:0 ~a:v ~b:0 ~obj:(Obj.repr ())

let rec pop q =
  if Event_queue.is_empty q then None
  else begin
    let time = Event_queue.peek_time_unsafe q in
    let live = not (Event_queue.top_cancelled q) in
    let v = Event_queue.top_a q in
    Event_queue.drop q;
    if live then Some (time, v) else pop q
  end

type op = Add of int | Cancel of int | Pop

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (* L0 ties and dense near-future traffic. *)
        (4, map (fun t -> Add t) (int_range 0 30));
        (* Mid band: several L1/L2 slots within one epoch. *)
        (2, map (fun t -> Add t) (int_range 0 3_000_000));
        (* Far band: 5 epochs out, guaranteed heap overflow first. *)
        (2, map (fun t -> Add t) (int_range 0 (5 * epoch)));
        (2, map (fun i -> Cancel i) (int_range 0 50));
        (4, return Pop);
      ])

let ops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Add t -> Printf.sprintf "add %d" t
             | Cancel i -> Printf.sprintf "cancel #%d" i
             | Pop -> "pop")
           ops))
    QCheck.Gen.(list_size (int_range 0 150) op_gen)

let prop_model =
  QCheck.Test.make
    ~name:"model: wheel+heap equals sorted-list oracle across epochs"
    ~count:300 ops_arb (fun ops ->
      let q = Event_queue.create ~capacity:2 () in
      let model = ref [] in
      let handles = Hashtbl.create 16 in
      let next_id = ref 0 in
      let ok = ref true in
      let model_pop () =
        let live = List.filter (fun (_, _, c) -> not !c) (List.rev !model) in
        match
          List.stable_sort (fun (_, t1, _) (_, t2, _) -> compare t1 t2) live
        with
        | [] -> None
        | (id, t, _) :: _ ->
            model := List.filter (fun (i, _, _) -> i <> id) !model;
            Some (t, id)
      in
      List.iter
        (fun op ->
          match op with
          | Add t ->
              let id = !next_id in
              incr next_id;
              let h = add q ~time:t id in
              Hashtbl.replace handles id h;
              model := (id, t, ref false) :: !model
          | Cancel id -> (
              match Hashtbl.find_opt handles id with
              | None -> ()
              | Some h ->
                  Event_queue.cancel q h;
                  List.iter (fun (i, _, c) -> if i = id then c := true) !model)
          | Pop -> if pop q <> model_pop () then ok := false)
        ops;
      let rec drain_both () =
        let got = pop q in
        let want = model_pop () in
        if got <> want then ok := false else if got <> None then drain_both ()
      in
      drain_both ();
      Hashtbl.iter
        (fun _ h -> if Event_queue.is_pending q h then ok := false)
        handles;
      !ok)

(* ---------------- serial == windowed (Shard.advance) ------------------ *)

(* One engine advanced (a) in a single [run ~until:horizon] and (b) in
   Shard.advance lockstep windows with external arrivals injected at the
   barriers, the way interlink drains feed a shard.  Timer events land
   on even ticks and externals on odd ticks, so the merged (time) order
   is unique and the fire logs must be identical — even though the
   windowed run schedules externals mid-flight (wheel drains + epoch
   jumps interleave with barrier-time adds) while the serial run
   schedules them all upfront into the overflow heap. *)

let horizon_t = 60_000_000 (* ~3.5 epochs *)
let lookahead = 500_000

let external_times =
  (* Odd start, even step: every arrival tick is odd and unique, and the
     first lies beyond the first window (externals are scheduled at the
     barrier one lookahead ahead). *)
  Array.init 400 (fun j -> 1_000_001 + (j * 111_112))

let build_timers eng log =
  let timers = 8 in
  for k = 0 to timers - 1 do
    let fires = ref 0 in
    let rec tick () =
      log := (Engine.now eng, k) :: !log;
      incr fires;
      let d =
        if !fires land 7 = 0 then
          (* Far-future reschedule: overflows to the heap, migrates back
             into the wheel when its epoch arrives. *)
          epoch + (2 * ((k * 9973) + 1))
        else 2 * (1 + (((k * 31) + !fires) land 8191))
      in
      ignore (Engine.schedule eng ~delay:(Sim_time.ns d) tick)
    in
    ignore (Engine.schedule eng ~delay:(Sim_time.ns (2 * k)) tick)
  done

let run_serial () =
  let eng = Engine.create () in
  let log = ref [] in
  build_timers eng log;
  Array.iteri
    (fun j t ->
      ignore (Engine.schedule_at eng ~time:t (fun () ->
          log := (Engine.now eng, 1000 + j) :: !log)))
    external_times;
  Engine.run eng ~until:horizon_t;
  List.rev !log

let run_windowed () =
  let eng = Engine.create () in
  let log = ref [] in
  build_timers eng log;
  let barrier = Domain_barrier.create 1 in
  let idx = ref 0 in
  let drain ~upto =
    (* Everything due within the next window must be filed now; arrival
       ticks are strictly beyond [upto], as interlink stamps are. *)
    while
      !idx < Array.length external_times
      && external_times.(!idx) <= upto + lookahead
    do
      let j = !idx in
      incr idx;
      ignore (Engine.schedule_at eng ~time:external_times.(j) (fun () ->
          log := (Engine.now eng, 1000 + j) :: !log))
    done
  in
  ignore
    (Shard.advance ~barrier ~lookahead ~run:(fun ~until -> Engine.run eng ~until)
       ~flags:(fun () -> 0)
       ~drain ~from:0 ~until_:horizon_t ());
  List.rev !log

let test_serial_eq_windowed () =
  let serial = run_serial () in
  let windowed = run_windowed () in
  Alcotest.(check int) "same event count" (List.length serial)
    (List.length windowed);
  Alcotest.(check bool) "identical fire logs" true (serial = windowed);
  (* Sanity: the run is long enough to cross epochs and fire externals. *)
  Alcotest.(check bool) "externals fired" true
    (List.exists (fun (_, id) -> id >= 1000) serial);
  Alcotest.(check bool) "spans epochs" true
    (List.exists (fun (t, _) -> t > 2 * epoch) serial)

let () =
  Alcotest.run "timing_wheel"
    [
      ( "wheel",
        [
          Alcotest.test_case "fifo ties" `Quick test_fifo_ties;
          Alcotest.test_case "past rejected" `Quick test_past_rejected;
          Alcotest.test_case "epoch rejected + jump" `Quick
            test_epoch_rejected_and_jump;
          Alcotest.test_case "cascade order" `Quick test_cascade_order;
          Alcotest.test_case "drain_all" `Quick test_drain_all;
          QCheck_alcotest.to_alcotest prop_model;
        ] );
      ( "shard",
        [
          Alcotest.test_case "serial == windowed" `Quick
            test_serial_eq_windowed;
        ] );
    ]
