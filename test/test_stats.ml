(* Metric collectors. *)

let test_counter () =
  let c = Stats.Counter.create () in
  Alcotest.(check int) "zero" 0 (Stats.Counter.get c);
  Stats.Counter.incr c;
  Stats.Counter.add c 5;
  Alcotest.(check int) "six" 6 (Stats.Counter.get c);
  Stats.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Stats.Counter.get c)

let test_time_series_bucketing () =
  let ts = Stats.Time_series.create ~bucket:100 in
  Stats.Time_series.add ts ~time:10 1.;
  Stats.Time_series.add ts ~time:90 2.;
  Stats.Time_series.add ts ~time:150 4.;
  Stats.Time_series.add ts ~time:250 8.;
  Alcotest.(check (list (pair int (float 1e-9))))
    "sums per bucket"
    [ (0, 3.); (100, 4.); (200, 8.) ]
    (Stats.Time_series.sums ts)

let test_time_series_means () =
  let ts = Stats.Time_series.create ~bucket:10 in
  Stats.Time_series.add ts ~time:0 2.;
  Stats.Time_series.add ts ~time:5 4.;
  Alcotest.(check (list (pair int (float 1e-9))))
    "mean" [ (0, 3.) ]
    (Stats.Time_series.means ts)

let test_time_series_rate () =
  (* 1000 units in a 1 us bucket = 1e9 units per second. *)
  let ts = Stats.Time_series.create ~bucket:(Sim_time.us 1) in
  Stats.Time_series.add ts ~time:100 1000.;
  match Stats.Time_series.rate_per_sec ts with
  | [ (0, rate) ] -> Alcotest.(check (float 1.)) "rate" 1e9 rate
  | _ -> Alcotest.fail "expected one bucket"

let test_time_series_invalid () =
  Alcotest.check_raises "zero width"
    (Invalid_argument "Time_series.create: bucket width") (fun () ->
      ignore (Stats.Time_series.create ~bucket:0))

let test_summary_basic () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 3.; 1.; 4.; 1.; 5. ];
  Alcotest.(check int) "count" 5 (Stats.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.8 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 5. (Stats.Summary.max s);
  Alcotest.(check (float 1e-9)) "sum" 14. (Stats.Summary.sum s)

let test_summary_percentiles () =
  let s = Stats.Summary.create () in
  for i = 1 to 100 do
    Stats.Summary.add s (float_of_int i)
  done;
  Alcotest.(check (float 1.)) "p50" 50. (Stats.Summary.percentile s 0.5);
  Alcotest.(check (float 1.)) "p99" 99. (Stats.Summary.percentile s 0.99);
  Alcotest.(check (float 1e-9)) "p0" 1. (Stats.Summary.percentile s 0.);
  Alcotest.(check (float 1e-9)) "p100" 100. (Stats.Summary.percentile s 1.)

let test_percentile_empty () =
  let s = Stats.Summary.create () in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "p%g of empty is nan" (p *. 100.))
        true
        (Float.is_nan (Stats.Summary.percentile s p)))
    [ 0.; 0.5; 0.99; 0.999; 1. ]

let test_percentile_single () =
  let s = Stats.Summary.create () in
  Stats.Summary.add s 42.;
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p%g of single sample" (p *. 100.))
        42.
        (Stats.Summary.percentile s p))
    [ 0.; 0.5; 0.99; 0.999; 1. ]

let test_percentile_exact_boundaries () =
  (* 1001 samples 1..1001: p*(n-1) is an exact integer rank for p50, p99
     and p999, pinning the nearest-rank convention used by FCT reports. *)
  let s = Stats.Summary.create () in
  for i = 1 to 1001 do
    Stats.Summary.add s (float_of_int i)
  done;
  Alcotest.(check (float 1e-9)) "p50" 501. (Stats.Summary.percentile s 0.5);
  Alcotest.(check (float 1e-9)) "p99" 991. (Stats.Summary.percentile s 0.99);
  Alcotest.(check (float 1e-9)) "p999" 1000. (Stats.Summary.percentile s 0.999);
  Alcotest.(check (float 1e-9)) "p0" 1. (Stats.Summary.percentile s 0.);
  Alcotest.(check (float 1e-9)) "p100" 1001. (Stats.Summary.percentile s 1.)

let test_percentile_unsorted_input () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 9.; 1.; 5.; 3.; 7. ];
  Alcotest.(check (float 1e-9)) "p50 sorts" 5. (Stats.Summary.percentile s 0.5)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  Alcotest.(check (float 0.)) "mean of empty" 0. (Stats.Summary.mean s);
  Alcotest.(check bool) "min nan" true (Float.is_nan (Stats.Summary.min s))

let prop_summary_mean_in_range =
  QCheck.Test.make ~name:"mean within [min,max]" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let s = Stats.Summary.create () in
      List.iter (Stats.Summary.add s) xs;
      let m = Stats.Summary.mean s in
      m >= Stats.Summary.min s -. 1e-9 && m <= Stats.Summary.max s +. 1e-9)

let () =
  Alcotest.run "stats"
    [
      ("counter", [ Alcotest.test_case "basic" `Quick test_counter ]);
      ( "time_series",
        [
          Alcotest.test_case "bucketing" `Quick test_time_series_bucketing;
          Alcotest.test_case "means" `Quick test_time_series_means;
          Alcotest.test_case "rate" `Quick test_time_series_rate;
          Alcotest.test_case "invalid" `Quick test_time_series_invalid;
        ] );
      ( "summary",
        [
          Alcotest.test_case "basic" `Quick test_summary_basic;
          Alcotest.test_case "percentiles" `Quick test_summary_percentiles;
          Alcotest.test_case "empty" `Quick test_summary_empty;
          Alcotest.test_case "percentile empty" `Quick test_percentile_empty;
          Alcotest.test_case "percentile single" `Quick test_percentile_single;
          Alcotest.test_case "percentile boundaries" `Quick
            test_percentile_exact_boundaries;
          Alcotest.test_case "percentile unsorted" `Quick
            test_percentile_unsorted_input;
          QCheck_alcotest.to_alcotest prop_summary_mean_in_range;
        ] );
    ]
