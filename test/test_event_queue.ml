(* The SoA binary-heap event queue: ordering, stability, preallocation,
   handle lifecycle, and a qcheck model test against a sorted-list
   reference oracle. *)

(* Events carry their test id in the [a] slot; [cb]/[b]/[obj] are unused
   here (the engine owns their interpretation). *)
let add q ~time v =
  Event_queue.add q ~time ~cb:0 ~a:v ~b:0 ~obj:(Obj.repr ())

(* Drain the next live event as [Some (time, value)], skipping cancelled
   entries the way [Engine.run] does. *)
let rec pop q =
  if Event_queue.is_empty q then None
  else begin
    let time = Event_queue.peek_time_unsafe q in
    let live = not (Event_queue.top_cancelled q) in
    let v = Event_queue.top_a q in
    Event_queue.drop q;
    if live then Some (time, v) else pop q
  end

let drain q =
  let rec go acc = match pop q with None -> List.rev acc | Some e -> go (e :: acc) in
  go []

let test_empty () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
  Alcotest.(check int) "size" 0 (Event_queue.size q);
  Alcotest.(check bool) "peek none" true (Event_queue.peek_time q = None)

let test_ordering () =
  let q = Event_queue.create () in
  List.iter (fun t -> ignore (add q ~time:t t)) [ 5; 1; 9; 3; 7 ];
  let order = List.map fst (drain q) in
  Alcotest.(check (list int)) "sorted" [ 1; 3; 5; 7; 9 ] order

let test_stability () =
  (* Same-time events pop in insertion order. *)
  let q = Event_queue.create () in
  List.iter (fun v -> ignore (add q ~time:10 v)) [ 1; 2; 3; 4; 5 ];
  ignore (add q ~time:5 0);
  let order = List.map snd (drain q) in
  Alcotest.(check (list int)) "fifo within time" [ 0; 1; 2; 3; 4; 5 ] order

let test_interleaved () =
  let q = Event_queue.create () in
  ignore (add q ~time:3 1);
  Alcotest.(check bool) "peek 3" true (Event_queue.peek_time q = Some 3);
  ignore (add q ~time:1 2);
  Alcotest.(check bool) "peek 1" true (Event_queue.peek_time q = Some 1);
  Alcotest.(check bool) "pop b" true (pop q = Some (1, 2));
  ignore (add q ~time:2 3);
  Alcotest.(check bool) "pop c" true (pop q = Some (2, 3));
  Alcotest.(check bool) "pop a" true (pop q = Some (3, 1))

let test_capacity_honored () =
  (* The preallocation hint is honored for the overflow heap: no growth
     below it, doubling beyond it.  Times beyond the wheel's current
     2^24-tick epoch overflow to the heap, so far-future adds are what
     exercise its growth. *)
  let q = Event_queue.create ~capacity:128 () in
  Alcotest.(check int) "preallocated" 128 (Event_queue.capacity q);
  for i = 1 to 128 do
    ignore (add q ~time:(100_000_000 + i) i)
  done;
  Alcotest.(check int) "no growth at hint" 128 (Event_queue.capacity q);
  ignore (add q ~time:99_999_999 0);
  Alcotest.(check int) "doubled past hint" 256 (Event_queue.capacity q);
  Alcotest.(check bool) "still ordered" true (pop q = Some (99_999_999, 0))

let test_growth () =
  let q = Event_queue.create ~capacity:4 () in
  for i = 1000 downto 1 do
    ignore (add q ~time:i i)
  done;
  Alcotest.(check int) "size" 1000 (Event_queue.size q);
  List.iteri
    (fun i (t, v) ->
      Alcotest.(check int) "time" (i + 1) t;
      Alcotest.(check int) "value" (i + 1) v)
    (drain q)

let test_cancel_while_queued () =
  let q = Event_queue.create () in
  let h1 = add q ~time:1 1 in
  let h2 = add q ~time:2 2 in
  let h3 = add q ~time:3 3 in
  Alcotest.(check bool) "h2 pending" true (Event_queue.is_pending q h2);
  Event_queue.cancel q h2;
  Alcotest.(check bool) "h2 cancelled" false (Event_queue.is_pending q h2);
  Alcotest.(check bool) "h1 unaffected" true (Event_queue.is_pending q h1);
  Alcotest.(check bool) "h3 unaffected" true (Event_queue.is_pending q h3);
  (* Cancelled events still occupy the heap (lazy deletion)... *)
  Alcotest.(check int) "still queued" 3 (Event_queue.size q);
  (* ...but never surface. *)
  Alcotest.(check (list (pair int int))) "skipped" [ (1, 1); (3, 3) ] (drain q)

let test_stale_handle_no_resurrection () =
  (* A handle from a dropped event must never affect the slot's next
     occupant. *)
  let q = Event_queue.create ~capacity:1 () in
  let h1 = add q ~time:1 1 in
  Event_queue.cancel q h1;
  Alcotest.(check (list (pair int int))) "e1 gone" [] (drain q);
  (* The slot is recycled for e2; h1 is stale. *)
  let h2 = add q ~time:2 2 in
  Event_queue.cancel q h1;
  Alcotest.(check bool) "stale cancel is a no-op" true
    (Event_queue.is_pending q h2);
  Alcotest.(check bool) "stale not pending" false (Event_queue.is_pending q h1);
  Event_queue.cancel q Event_queue.none;
  Alcotest.(check bool) "none not pending" false
    (Event_queue.is_pending q Event_queue.none);
  Alcotest.(check (list (pair int int))) "e2 delivered" [ (2, 2) ] (drain q);
  Alcotest.(check bool) "fired handle dead" false (Event_queue.is_pending q h2)

let test_clear () =
  let q = Event_queue.create () in
  let h = add q ~time:1 1 in
  ignore (add q ~time:2 2);
  Event_queue.clear q;
  Alcotest.(check bool) "cleared" true (Event_queue.is_empty q);
  Alcotest.(check bool) "handles dead" false (Event_queue.is_pending q h);
  (* Slots were recycled; the queue is fully reusable. *)
  ignore (add q ~time:3 3);
  Alcotest.(check (list (pair int int))) "reusable" [ (3, 3) ] (drain q)

(* --- Model test ------------------------------------------------------- *)

(* Reference oracle: a sorted association list keyed on (time, insertion
   index), with cancellation by id.  The queue must pop exactly the
   oracle's live events in the oracle's order, through any interleaving
   of adds, cancels and pops — including across the preallocation
   boundary (capacity 2) so slot recycling and heap growth are both
   exercised. *)

type op = Add of int | Cancel of int | Pop

let op_gen =
  (* Small times stress the wheel's level-0 band and FIFO ties; the
     large band straddles several 65536-tick chunks so adds overflow to
     the heap and migrate back down across pops. *)
  QCheck.Gen.(
    frequency
      [
        (5, map (fun t -> Add t) (int_range 0 30));
        (2, map (fun t -> Add t) (int_range 0 300_000));
        (2, map (fun i -> Cancel i) (int_range 0 40));
        (3, return Pop);
      ])

let ops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Add t -> Printf.sprintf "add %d" t
             | Cancel i -> Printf.sprintf "cancel #%d" i
             | Pop -> "pop")
           ops))
    QCheck.Gen.(list_size (int_range 0 120) op_gen)

let prop_model =
  QCheck.Test.make ~name:"model: queue equals sorted-list oracle" ~count:300
    ops_arb (fun ops ->
      let q = Event_queue.create ~capacity:2 () in
      (* Model: per-event (id, time, cancelled) in insertion order, minus
         popped events.  Insertion order doubles as the seq tie-break. *)
      let model = ref [] in
      let handles = Hashtbl.create 16 in
      let next_id = ref 0 in
      let ok = ref true in
      let model_pop () =
        (* Earliest live event by (time, insertion id); drop every
           cancelled event that sorts before it, mirroring lazy
           deletion. *)
        let live =
          List.filter (fun (_, _, c) -> not !c) (List.rev !model)
        in
        match
          List.stable_sort (fun (_, t1, _) (_, t2, _) -> compare t1 t2) live
        with
        | [] -> None
        | (id, t, _) :: _ ->
            model := List.filter (fun (i, _, _) -> i <> id) !model;
            Some (t, id)
      in
      List.iter
        (fun op ->
          match op with
          | Add t ->
              let id = !next_id in
              incr next_id;
              let h = add q ~time:t id in
              Hashtbl.replace handles id h;
              model := (id, t, ref false) :: !model
          | Cancel id -> (
              (* Cancel a (possibly stale or unknown) handle. *)
              match Hashtbl.find_opt handles id with
              | None -> ()
              | Some h ->
                  Event_queue.cancel q h;
                  List.iter
                    (fun (i, _, c) -> if i = id then c := true)
                    !model)
          | Pop ->
              let got = pop q in
              let want = model_pop () in
              let want =
                match want with None -> None | Some (t, id) -> Some (t, id)
              in
              if got <> want then ok := false)
        ops;
      (* Drain both to the end: total order must agree. *)
      let rec drain_both () =
        let got = pop q in
        let want = model_pop () in
        if got <> want then ok := false
        else if got <> None then drain_both ()
      in
      drain_both ();
      (* Every surviving handle must be dead after the drain. *)
      Hashtbl.iter
        (fun _ h -> if Event_queue.is_pending q h then ok := false)
        handles;
      !ok)

let () =
  Alcotest.run "event_queue"
    [
      ( "heap",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "ordering" `Quick test_ordering;
          Alcotest.test_case "stability" `Quick test_stability;
          Alcotest.test_case "interleaved" `Quick test_interleaved;
          Alcotest.test_case "capacity honored" `Quick test_capacity_honored;
          Alcotest.test_case "growth" `Quick test_growth;
          Alcotest.test_case "cancel while queued" `Quick
            test_cancel_while_queued;
          Alcotest.test_case "stale handles" `Quick
            test_stale_handle_no_resurrection;
          Alcotest.test_case "clear" `Quick test_clear;
          QCheck_alcotest.to_alcotest prop_model;
        ] );
    ]
