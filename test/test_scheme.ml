(* Network.scheme string round-trips: every constructor must survive
   scheme_of_string (scheme_to_string s), and the CLI aliases must parse. *)

let scheme =
  Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (Network.scheme_to_string s))
    ( = )

let all_schemes =
  [
    Network.Ecmp;
    Network.Adaptive;
    Network.Random_spray;
    Network.Psn_spray_only;
    Network.Themis { compensation = true };
    Network.Themis { compensation = false };
    Network.Reps;
    Network.Prime;
    Network.Sprinklers;
    Network.Spritz;
  ]

let test_roundtrip () =
  List.iter
    (fun s ->
      match Network.scheme_of_string (Network.scheme_to_string s) with
      | Ok s' ->
          Alcotest.check scheme (Network.scheme_to_string s) s s'
      | Error e ->
          Alcotest.failf "%s did not round-trip: %s"
            (Network.scheme_to_string s) e)
    all_schemes

let test_aliases () =
  (match Network.scheme_of_string "ar" with
  | Ok s -> Alcotest.check scheme "ar" Network.Adaptive s
  | Error e -> Alcotest.failf "ar: %s" e);
  match Network.scheme_of_string "spray" with
  | Ok s -> Alcotest.check scheme "spray" Network.Random_spray s
  | Error e -> Alcotest.failf "spray: %s" e

let test_unknown_rejected () =
  match Network.scheme_of_string "warp-drive" with
  | Ok _ -> Alcotest.fail "nonsense string parsed"
  | Error _ -> ()

(* Spritz sprays in proportion to downstream path counts, so the
   compiled weight rows at a ToR must sum to the live path count toward
   a cross-leaf destination — and track it through fail/restore. *)
let test_spritz_weights_track_failures () =
  let params =
    Network.default_params ~fabric:Leaf_spine.motivation ~scheme:Network.Spritz
  in
  let net = Network.build params in
  let ls = Network.fabric net in
  let tor0 = ls.Leaf_spine.leaves.(0) in
  let dst = Leaf_spine.host ls ~leaf:1 ~index:0 in
  let sum () =
    Array.fold_left ( + ) 0
      (Switch.compiled_path_weights (Network.switch net ~node:tor0) ~dst)
  in
  Alcotest.(check int) "full fabric" 4 (sum ());
  let link =
    Option.get
      (Topology.link_between ls.Leaf_spine.topo tor0 ls.Leaf_spine.spines.(0))
  in
  Network.fail_link net ~link_id:link;
  Alcotest.(check int)
    "weights follow routing after failure"
    (Routing.path_count (Network.routing net) ~src:tor0 ~dst)
    (sum ());
  Alcotest.(check int) "three surviving paths" 3 (sum ());
  Network.restore_link net ~link_id:link;
  Alcotest.(check int) "restored" 4 (sum ())

let test_strings_distinct () =
  let strings = List.map Network.scheme_to_string all_schemes in
  Alcotest.(check int)
    "no two schemes share a string"
    (List.length strings)
    (List.length (List.sort_uniq String.compare strings))

let () =
  Alcotest.run "scheme"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "every constructor" `Quick test_roundtrip;
          Alcotest.test_case "aliases" `Quick test_aliases;
          Alcotest.test_case "unknown rejected" `Quick test_unknown_rejected;
          Alcotest.test_case "strings distinct" `Quick test_strings_distinct;
        ] );
      ( "spritz",
        [
          Alcotest.test_case "weights track fail/restore" `Quick
            test_spritz_weights_track_failures;
        ] );
    ]
