(* Network.scheme string round-trips: every constructor must survive
   scheme_of_string (scheme_to_string s), and the CLI aliases must parse. *)

let scheme =
  Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (Network.scheme_to_string s))
    ( = )

let all_schemes =
  [
    Network.Ecmp;
    Network.Adaptive;
    Network.Random_spray;
    Network.Psn_spray_only;
    Network.Themis { compensation = true };
    Network.Themis { compensation = false };
  ]

let test_roundtrip () =
  List.iter
    (fun s ->
      match Network.scheme_of_string (Network.scheme_to_string s) with
      | Ok s' ->
          Alcotest.check scheme (Network.scheme_to_string s) s s'
      | Error e ->
          Alcotest.failf "%s did not round-trip: %s"
            (Network.scheme_to_string s) e)
    all_schemes

let test_aliases () =
  (match Network.scheme_of_string "ar" with
  | Ok s -> Alcotest.check scheme "ar" Network.Adaptive s
  | Error e -> Alcotest.failf "ar: %s" e);
  match Network.scheme_of_string "spray" with
  | Ok s -> Alcotest.check scheme "spray" Network.Random_spray s
  | Error e -> Alcotest.failf "spray: %s" e

let test_unknown_rejected () =
  match Network.scheme_of_string "warp-drive" with
  | Ok _ -> Alcotest.fail "nonsense string parsed"
  | Error _ -> ()

let test_strings_distinct () =
  let strings = List.map Network.scheme_to_string all_schemes in
  Alcotest.(check int)
    "no two schemes share a string"
    (List.length strings)
    (List.length (List.sort_uniq String.compare strings))

let () =
  Alcotest.run "scheme"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "every constructor" `Quick test_roundtrip;
          Alcotest.test_case "aliases" `Quick test_aliases;
          Alcotest.test_case "unknown rejected" `Quick test_unknown_rejected;
          Alcotest.test_case "strings distinct" `Quick test_strings_distinct;
        ] );
    ]
