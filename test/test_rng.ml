(* Deterministic splittable RNG. *)

let test_determinism () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:1 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_split_independent () =
  (* A split stream is not perturbed by further draws from the parent. *)
  let p1 = Rng.create ~seed:5 in
  let c1 = Rng.split p1 in
  let c1_draws = List.init 20 (fun _ -> Rng.int64 c1) in
  let p2 = Rng.create ~seed:5 in
  let c2 = Rng.split p2 in
  for _ = 1 to 50 do
    ignore (Rng.int64 p2)
  done;
  let c2_draws = List.init 20 (fun _ -> Rng.int64 c2) in
  Alcotest.(check (list int64)) "child unaffected" c1_draws c2_draws

let prop_substream_stable =
  (* The substream for (seed, index) is a pure function: re-deriving it
     yields the exact same draw sequence, regardless of what else was
     sampled in between. *)
  QCheck.Test.make ~name:"substream stable across runs" ~count:200
    QCheck.(pair (int_range 0 10_000) (int_range 0 1_000_000))
    (fun (seed, index) ->
      let a = Rng.substream ~seed ~index in
      let noise = Rng.substream ~seed ~index:(index + 1) in
      ignore (Rng.int64 noise);
      let b = Rng.substream ~seed ~index in
      List.init 16 (fun _ -> Rng.int64 a)
      = List.init 16 (fun _ -> Rng.int64 b))

let prop_substream_disjoint_from_parent =
  (* A substream must not replay the parent sequence: collect 64 parent
     draws and check no 8-draw window of the child matches. *)
  QCheck.Test.make ~name:"substream disjoint from parent" ~count:100
    QCheck.(pair (int_range 0 10_000) (int_range 0 1000))
    (fun (seed, index) ->
      let parent = Rng.create ~seed in
      let parent_draws = Array.init 64 (fun _ -> Rng.int64 parent) in
      let child = Rng.substream ~seed ~index in
      let child_draws = Array.init 64 (fun _ -> Rng.int64 child) in
      let overlap = ref 0 in
      Array.iter
        (fun c -> if Array.exists (fun p -> p = c) parent_draws then incr overlap)
        child_draws;
      !overlap = 0)

let prop_substream_indices_differ =
  QCheck.Test.make ~name:"substream indices independent" ~count:100
    QCheck.(pair (int_range 0 10_000) (int_range 0 100_000))
    (fun (seed, index) ->
      let a = Rng.substream ~seed ~index in
      let b = Rng.substream ~seed ~index:(index + 1) in
      let same = ref 0 in
      for _ = 1 to 32 do
        if Rng.int64 a = Rng.int64 b then incr same
      done;
      !same < 2)

let test_int_bounds () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of bounds: %d" v
  done

let test_int_bound_one () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 100 do
    Alcotest.(check int) "bound 1" 0 (Rng.int rng 1)
  done

let test_int_invalid () =
  let rng = Rng.create ~seed:3 in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_float_range () =
  let rng = Rng.create ~seed:4 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng in
    if v < 0. || v >= 1. then Alcotest.failf "float out of range: %f" v
  done

let test_uniformity_rough () =
  let rng = Rng.create ~seed:9 in
  let buckets = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let b = Rng.int rng 8 in
    buckets.(b) <- buckets.(b) + 1
  done;
  let expect = n / 8 in
  Array.iteri
    (fun i c ->
      if abs (c - expect) > expect / 5 then
        Alcotest.failf "bucket %d badly skewed: %d vs %d" i c expect)
    buckets

let test_exponential_mean () =
  let rng = Rng.create ~seed:11 in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    let v = Rng.exponential rng ~mean:10. in
    if v < 0. then Alcotest.fail "negative exponential";
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 10" true (mean > 9. && mean < 11.)

let test_shuffle_permutes () =
  let rng = Rng.create ~seed:13 in
  let arr = Array.init 50 Fun.id in
  let orig = Array.copy arr in
  Rng.shuffle_in_place rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check bool) "same multiset" true (sorted = orig);
  Alcotest.(check bool) "actually moved" true (arr <> orig)

let prop_bool_balanced =
  QCheck.Test.make ~name:"bool is roughly balanced" ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let trues = ref 0 in
      for _ = 1 to 1000 do
        if Rng.bool rng then incr trues
      done;
      !trues > 350 && !trues < 650)

let () =
  Alcotest.run "rng"
    [
      ( "streams",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
          Alcotest.test_case "split independence" `Quick test_split_independent;
          QCheck_alcotest.to_alcotest prop_substream_stable;
          QCheck_alcotest.to_alcotest prop_substream_disjoint_from_parent;
          QCheck_alcotest.to_alcotest prop_substream_indices_differ;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int bound one" `Quick test_int_bound_one;
          Alcotest.test_case "int invalid" `Quick test_int_invalid;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "uniformity" `Quick test_uniformity_rough;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutes;
          QCheck_alcotest.to_alcotest prop_bool_balanced;
        ] );
    ]
