(* The ring-based PSN queue of Section 3.3. *)

let psn = Alcotest.testable Psn.pp Psn.equal
let p = Psn.of_int

let test_fifo () =
  let q = Psn_queue.create ~capacity:8 in
  List.iter (fun x -> Psn_queue.push q (p x)) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Psn_queue.length q);
  Alcotest.(check (option psn)) "pop 1" (Some (p 1)) (Psn_queue.pop q);
  Alcotest.(check (option psn)) "pop 2" (Some (p 2)) (Psn_queue.pop q);
  Psn_queue.push q (p 4);
  Alcotest.(check (option psn)) "pop 3" (Some (p 3)) (Psn_queue.pop q);
  Alcotest.(check (option psn)) "pop 4" (Some (p 4)) (Psn_queue.pop q);
  Alcotest.(check (option psn)) "empty" None (Psn_queue.pop q)

let test_overwrite_oldest () =
  let q = Psn_queue.create ~capacity:3 in
  List.iter (fun x -> Psn_queue.push q (p x)) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "full" 3 (Psn_queue.length q);
  Alcotest.(check int) "overwrites" 2 (Psn_queue.overwrites q);
  Alcotest.(check (list int)) "holds newest"
    [ 3; 4; 5 ]
    (List.map Psn.to_int (Psn_queue.to_list q))

let test_pop_until_greater () =
  (* The Fig. 4b walk-through: queue [0;1;3;2], NACK ePSN = 2 -> tPSN 3,
     with entries up to it consumed. *)
  let q = Psn_queue.create ~capacity:8 in
  List.iter (fun x -> Psn_queue.push q (p x)) [ 0; 1; 3; 2 ];
  Alcotest.(check (option psn)) "tPSN 3" (Some (p 3))
    (Psn_queue.pop_until_greater q (p 2));
  Alcotest.(check (list int)) "rest" [ 2 ]
    (List.map Psn.to_int (Psn_queue.to_list q));
  (* Fig. 4b continued: after 2,6,4 pushed, NACK ePSN = 4 -> tPSN 6. *)
  Psn_queue.push q (p 6);
  Psn_queue.push q (p 4);
  Alcotest.(check (option psn)) "tPSN 6" (Some (p 6))
    (Psn_queue.pop_until_greater q (p 4));
  Alcotest.(check (list int)) "only 4 left" [ 4 ]
    (List.map Psn.to_int (Psn_queue.to_list q))

let test_pop_until_greater_underflow () =
  let q = Psn_queue.create ~capacity:4 in
  List.iter (fun x -> Psn_queue.push q (p x)) [ 1; 2 ];
  Alcotest.(check (option psn)) "drains" None (Psn_queue.pop_until_greater q (p 5));
  Alcotest.(check bool) "empty after" true (Psn_queue.is_empty q)

let test_pop_until_greater_wraparound () =
  (* Near the 24-bit wrap, "greater" is circular. *)
  let q = Psn_queue.create ~capacity:8 in
  Psn_queue.push q (p (Psn.modulus - 2));
  Psn_queue.push q (p 1);
  Alcotest.(check (option psn)) "wraps" (Some (p 1))
    (Psn_queue.pop_until_greater q (p (Psn.modulus - 1)))

let test_contains () =
  let q = Psn_queue.create ~capacity:4 in
  List.iter (fun x -> Psn_queue.push q (p x)) [ 5; 6; 7 ];
  Alcotest.(check bool) "has 6" true (Psn_queue.contains q (p 6));
  Alcotest.(check bool) "no 9" false (Psn_queue.contains q (p 9));
  ignore (Psn_queue.pop q);
  Alcotest.(check bool) "popped gone" false (Psn_queue.contains q (p 5));
  (* After wrap-around overwrite, only live entries are searched. *)
  List.iter (fun x -> Psn_queue.push q (p x)) [ 8; 9; 10 ];
  Alcotest.(check bool) "6 overwritten" false (Psn_queue.contains q (p 6));
  Alcotest.(check bool) "10 present" true (Psn_queue.contains q (p 10))

let test_clear () =
  let q = Psn_queue.create ~capacity:4 in
  Psn_queue.push q (p 1);
  Psn_queue.clear q;
  Alcotest.(check bool) "cleared" true (Psn_queue.is_empty q);
  Alcotest.(check int) "capacity kept" 4 (Psn_queue.capacity q)

let test_capacity_for () =
  (* Section 4 worked example: 400 Gbps x 2 us x 1.5 / 1500 B = 100. *)
  Alcotest.(check int) "table1 value" 100
    (Psn_queue.capacity_for ~bw:(Rate.gbps 400.) ~rtt:(Sim_time.us 2) ~mtu:1500
       ~factor:1.5);
  (* Ceil and floor-at-one behaviour. *)
  Alcotest.(check int) "at least 1" 1
    (Psn_queue.capacity_for ~bw:(Rate.gbps 0.001) ~rtt:(Sim_time.ns 10) ~mtu:1500
       ~factor:1.5);
  Alcotest.check_raises "bad factor"
    (Invalid_argument "Psn_queue.capacity_for: factor") (fun () ->
      ignore
        (Psn_queue.capacity_for ~bw:(Rate.gbps 1.) ~rtt:1 ~mtu:1500 ~factor:0.))

let test_capacity_one () =
  (* A one-slot ring: each push evicts the previous entry, and the
     NACK-to-tPSN recovery still works on the sole survivor. *)
  let q = Psn_queue.create ~capacity:1 in
  List.iter (fun x -> Psn_queue.push q (p x)) [ 3; 4; 5 ];
  Alcotest.(check int) "length 1" 1 (Psn_queue.length q);
  Alcotest.(check int) "two overwrites" 2 (Psn_queue.overwrites q);
  Alcotest.(check (list int)) "newest survives" [ 5 ]
    (List.map Psn.to_int (Psn_queue.to_list q));
  Alcotest.(check (option psn)) "tPSN from sole entry" (Some (p 5))
    (Psn_queue.pop_until_greater q (p 4));
  Alcotest.(check bool) "drained" true (Psn_queue.is_empty q)

let test_overwrite_eviction_order () =
  (* Sustained overflow evicts strictly oldest-first even as the
     internal cursor wraps several times over the backing array. *)
  let q = Psn_queue.create ~capacity:3 in
  for x = 0 to 10 do
    Psn_queue.push q (p x)
  done;
  Alcotest.(check (list int)) "newest three, oldest first" [ 8; 9; 10 ]
    (List.map Psn.to_int (Psn_queue.to_list q));
  Alcotest.(check int) "overwrites" 8 (Psn_queue.overwrites q);
  ignore (Psn_queue.pop q);
  Psn_queue.push q (p 11);
  Psn_queue.push q (p 12);
  Alcotest.(check (list int)) "pop then overflow once more" [ 10; 11; 12 ]
    (List.map Psn.to_int (Psn_queue.to_list q))

let test_scan_miss_evicted_trigger () =
  (* The failure mode the §4 sizing rule (factor F > 1) guards against:
     the OOO packet that triggered the NACK was pushed, but the ring was
     undersized and overwrote it before the NACK returned.  The scan for
     "first PSN greater than ePSN" then either drains entirely, or —
     worse — surfaces a *later* packet as the presumed trigger. *)
  let q = Psn_queue.create ~capacity:2 in
  (* Forwarding order 1,3,2: the RNIC NACKs ePSN=2 with trigger tPSN=3.
     Subsequent traffic 4,5 overwrites both 1 and the true trigger 3. *)
  List.iter (fun x -> Psn_queue.push q (p x)) [ 1; 3; 2; 4; 5 ];
  Alcotest.(check (list int)) "trigger 3 already evicted" [ 4; 5 ]
    (List.map Psn.to_int (Psn_queue.to_list q));
  (* The scan cannot distinguish the evicted trigger: it consumes until
     the first PSN > 2 and misattributes packet 4 as the trigger. *)
  Alcotest.(check (option psn)) "scan surfaces wrong tPSN" (Some (p 4))
    (Psn_queue.pop_until_greater q (p 2));
  (* If instead *everything* at or below the ePSN was evicted too, the
     scan drains without an answer. *)
  let q2 = Psn_queue.create ~capacity:2 in
  List.iter (fun x -> Psn_queue.push q2 (p x)) [ 5; 3; 1; 2 ];
  Alcotest.(check (option psn)) "drains on stale low entries" None
    (Psn_queue.pop_until_greater q2 (p 2));
  Alcotest.(check bool) "empty after miss" true (Psn_queue.is_empty q2)

let test_invalid_capacity () =
  Alcotest.check_raises "zero"
    (Invalid_argument "Psn_queue.create: capacity must be >= 1") (fun () ->
      ignore (Psn_queue.create ~capacity:0))

(* Model-based property: the ring behaves like a bounded FIFO that drops
   its oldest element on overflow. *)
let prop_matches_model =
  QCheck.Test.make ~name:"ring = bounded FIFO model" ~count:300
    QCheck.(
      pair (int_range 1 8)
        (list_of_size (Gen.int_range 0 60)
           (make
              (Gen.oneof
                 [ Gen.map (fun x -> `Push x) (Gen.int_range 0 100); Gen.return `Pop ]))))
    (fun (cap, ops) ->
      let q = Psn_queue.create ~capacity:cap in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | `Push x ->
              Psn_queue.push q (p x);
              model := !model @ [ x ];
              if List.length !model > cap then model := List.tl !model;
              List.map Psn.to_int (Psn_queue.to_list q) = !model
          | `Pop -> (
              let got = Psn_queue.pop q in
              match !model with
              | [] -> got = None
              | x :: rest ->
                  model := rest;
                  got = Some (p x)))
        ops)

let () =
  Alcotest.run "psn_queue"
    [
      ( "ring",
        [
          Alcotest.test_case "fifo" `Quick test_fifo;
          Alcotest.test_case "overwrite oldest" `Quick test_overwrite_oldest;
          Alcotest.test_case "fig4b tPSN walk" `Quick test_pop_until_greater;
          Alcotest.test_case "underflow" `Quick test_pop_until_greater_underflow;
          Alcotest.test_case "wraparound" `Quick test_pop_until_greater_wraparound;
          Alcotest.test_case "contains" `Quick test_contains;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "capacity one" `Quick test_capacity_one;
          Alcotest.test_case "eviction order" `Quick
            test_overwrite_eviction_order;
          Alcotest.test_case "scan miss on evicted trigger" `Quick
            test_scan_miss_evicted_trigger;
          Alcotest.test_case "capacity rule" `Quick test_capacity_for;
          Alcotest.test_case "invalid capacity" `Quick test_invalid_capacity;
          QCheck_alcotest.to_alcotest prop_matches_model;
        ] );
    ]
