(* The discrete-event driver: ordering, cancellation, horizons. *)

let test_order () =
  let eng = Engine.create () in
  let log = ref [] in
  let note tag () = log := (tag, Engine.now eng) :: !log in
  ignore (Engine.schedule eng ~delay:30 (note "c"));
  ignore (Engine.schedule eng ~delay:10 (note "a"));
  ignore (Engine.schedule eng ~delay:20 (note "b"));
  Engine.run eng;
  Alcotest.(check (list (pair string int)))
    "execution order"
    [ ("a", 10); ("b", 20); ("c", 30) ]
    (List.rev !log)

let test_nested_schedule () =
  let eng = Engine.create () in
  let fired = ref [] in
  ignore
    (Engine.schedule eng ~delay:10 (fun () ->
         fired := "outer" :: !fired;
         ignore
           (Engine.schedule eng ~delay:5 (fun () ->
                fired := "inner" :: !fired))));
  Engine.run eng;
  Alcotest.(check (list string)) "nested" [ "inner"; "outer" ] !fired;
  Alcotest.(check int) "clock at last event" 15 (Engine.now eng)

let test_same_time_fifo () =
  let eng = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    ignore (Engine.schedule eng ~delay:5 (fun () -> log := i :: !log))
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "fifo" (List.init 10 Fun.id) (List.rev !log)

let test_cancel () =
  let eng = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule eng ~delay:10 (fun () -> fired := true) in
  Alcotest.(check bool) "pending" true (Engine.is_pending eng h);
  Engine.cancel eng h;
  Alcotest.(check bool) "not pending" false (Engine.is_pending eng h);
  Engine.run eng;
  Alcotest.(check bool) "did not fire" false !fired;
  (* Double cancel is harmless. *)
  Engine.cancel eng h

let test_horizon () =
  let eng = Engine.create () in
  let fired = ref [] in
  ignore (Engine.schedule eng ~delay:10 (fun () -> fired := 10 :: !fired));
  ignore (Engine.schedule eng ~delay:30 (fun () -> fired := 30 :: !fired));
  Engine.run eng ~until:20;
  Alcotest.(check (list int)) "only first fired" [ 10 ] !fired;
  Alcotest.(check int) "clock at horizon" 20 (Engine.now eng);
  Alcotest.(check int) "one pending" 1 (Engine.pending eng);
  Engine.run eng;
  Alcotest.(check (list int)) "second fires later" [ 30; 10 ] !fired

let test_horizon_inclusive () =
  let eng = Engine.create () in
  let fired = ref false in
  ignore (Engine.schedule eng ~delay:20 (fun () -> fired := true));
  Engine.run eng ~until:20;
  Alcotest.(check bool) "event at horizon fires" true !fired

let test_max_events () =
  let eng = Engine.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    ignore (Engine.schedule eng ~delay:1 (fun () -> incr count))
  done;
  Engine.run eng ~max_events:3;
  Alcotest.(check int) "budget respected" 3 !count

let test_stop () =
  let eng = Engine.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    ignore
      (Engine.schedule eng ~delay:1 (fun () ->
           incr count;
           if !count = 2 then Engine.stop eng))
  done;
  Engine.run eng;
  Alcotest.(check int) "stopped after request" 2 !count

let test_past_rejected () =
  let eng = Engine.create () in
  ignore (Engine.schedule eng ~delay:10 (fun () -> ()));
  Engine.run eng;
  Alcotest.check_raises "past time" (Invalid_argument "Engine.schedule: negative delay")
    (fun () -> ignore (Engine.schedule eng ~delay:(-1) (fun () -> ())))

let test_events_processed () =
  let eng = Engine.create () in
  for _ = 1 to 5 do
    ignore (Engine.schedule eng ~delay:1 (fun () -> ()))
  done;
  let h = Engine.schedule eng ~delay:1 (fun () -> ()) in
  Engine.cancel eng h;
  Engine.run eng;
  Alcotest.(check int) "cancelled not counted" 5 (Engine.events_processed eng)

let test_schedule_call () =
  (* The closure-free path: a registered callback receives the event's
     immediate payload, and handles interoperate with cancel/is_pending. *)
  let eng = Engine.create ~capacity:4 () in
  let log = ref [] in
  let cb =
    Engine.register_callback eng (fun a b obj ->
        log := (a, b, (Obj.obj obj : string)) :: !log)
  in
  ignore
    (Engine.schedule_call eng ~delay:5 cb ~a:1 ~b:2 ~obj:(Obj.repr "x"));
  let h = Engine.schedule_call eng ~delay:3 cb ~a:7 ~b:8 ~obj:(Obj.repr "y") in
  Alcotest.(check bool) "call pending" true (Engine.is_pending eng h);
  Alcotest.(check bool) "none is never pending" false
    (Engine.is_pending eng Engine.none);
  Engine.cancel eng Engine.none;
  Engine.run eng;
  Alcotest.(check bool) "fired handle dead" false (Engine.is_pending eng h);
  Alcotest.(check (list (triple int int string)))
    "payloads in time order"
    [ (7, 8, "y"); (1, 2, "x") ]
    (List.rev !log)

let test_idle_horizon_advances_clock () =
  let eng = Engine.create () in
  Engine.run eng ~until:100;
  Alcotest.(check int) "clock moves to horizon" 100 (Engine.now eng)

let () =
  Alcotest.run "engine"
    [
      ( "scheduling",
        [
          Alcotest.test_case "order" `Quick test_order;
          Alcotest.test_case "nested" `Quick test_nested_schedule;
          Alcotest.test_case "same-time fifo" `Quick test_same_time_fifo;
          Alcotest.test_case "cancel" `Quick test_cancel;
        ] );
      ( "run control",
        [
          Alcotest.test_case "horizon" `Quick test_horizon;
          Alcotest.test_case "horizon inclusive" `Quick test_horizon_inclusive;
          Alcotest.test_case "max_events" `Quick test_max_events;
          Alcotest.test_case "stop" `Quick test_stop;
          Alcotest.test_case "negative delay" `Quick test_past_rejected;
          Alcotest.test_case "events_processed" `Quick test_events_processed;
          Alcotest.test_case "schedule_call" `Quick test_schedule_call;
          Alcotest.test_case "idle horizon" `Quick test_idle_horizon_advances_clock;
        ] );
    ]
