(* The DCQCN rate machine. *)

let line = Rate.gbps 100.

let make ?(cfg = Dcqcn.default) () =
  let engine = Engine.create () in
  (engine, Dcqcn.create ~engine ~config:cfg ~line_rate:line ())

let gbps t = Rate.to_gbps (Dcqcn.rate t)

let test_starts_at_line_rate () =
  let _, cc = make () in
  Alcotest.(check (float 1e-6)) "rc" 100. (gbps cc);
  Alcotest.(check (float 1e-6)) "rt" 100. (Rate.to_gbps (Dcqcn.target cc));
  Alcotest.(check (float 1e-9)) "alpha" 1. (Dcqcn.alpha cc);
  Alcotest.(check int) "no decreases" 0 (Dcqcn.decreases cc)

let test_cnp_decrease () =
  let _, cc = make () in
  (* First CNP with alpha=1: rc <- rc * (1 - (alpha')/2) where alpha' is
     updated first: alpha' = (1-g) + g = 1. *)
  Dcqcn.on_cnp cc;
  Alcotest.(check (float 0.2)) "halved" 50. (gbps cc);
  Alcotest.(check (float 1e-6)) "target snapshot" 100.
    (Rate.to_gbps (Dcqcn.target cc));
  Alcotest.(check int) "one decrease" 1 (Dcqcn.decreases cc)

let test_td_gates_decreases () =
  let cfg = Dcqcn.with_ti_td Dcqcn.default ~ti_us:900. ~td_us:50. in
  let engine, cc = make ~cfg () in
  Dcqcn.on_cnp cc;
  let after_first = gbps cc in
  (* A second CNP within TD is ignored. *)
  Dcqcn.on_cnp cc;
  Alcotest.(check (float 1e-9)) "gated" after_first (gbps cc);
  Alcotest.(check int) "one decrease" 1 (Dcqcn.decreases cc);
  (* After TD elapses, the next CNP bites. *)
  ignore (Engine.schedule engine ~delay:(Sim_time.us 60) (fun () -> Dcqcn.on_cnp cc));
  Engine.run engine ~until:(Sim_time.us 61) ~max_events:10_000;
  Alcotest.(check bool) "second decrease" true (Dcqcn.decreases cc >= 2);
  Alcotest.(check bool) "lower" true (gbps cc < after_first)

let test_fast_recovery () =
  let cfg = Dcqcn.with_ti_td Dcqcn.default ~ti_us:55. ~td_us:4. in
  let engine, cc = make ~cfg () in
  Dcqcn.on_cnp cc;
  let dropped = gbps cc in
  (* After one TI the first fast-recovery step halves the gap to Rt. *)
  Engine.run engine ~until:(Sim_time.us 56);
  let expect = (dropped +. 100.) /. 2. in
  Alcotest.(check (float 0.5)) "fast recovery step" expect (gbps cc);
  (* Eventually the rate returns to line and the timers park. *)
  Engine.run engine ~until:(Sim_time.ms 50);
  Alcotest.(check (float 1e-6)) "recovered" 100. (gbps cc);
  Engine.run engine;
  Alcotest.(check bool) "engine drains (timers parked)" true true

let test_ti_speed_matters () =
  (* The Fig. 5 effect: TI = 10 us recovers far faster than TI = 900 us. *)
  let recover ti_us =
    let cfg = Dcqcn.with_ti_td Dcqcn.default ~ti_us ~td_us:4. in
    let engine, cc = make ~cfg () in
    Dcqcn.on_nack cc;
    Engine.run engine ~until:(Sim_time.us 300);
    gbps cc
  in
  let slow = recover 900. and fast = recover 10. in
  Alcotest.(check bool) "fast TI recovers more" true (fast > slow +. 10.);
  Alcotest.(check (float 1e-6)) "fast fully recovered" 100. fast

let test_nack_slow_start () =
  let _, cc = make () in
  Dcqcn.on_nack cc;
  Alcotest.(check (float 0.2)) "nack halves" 50. (gbps cc);
  Alcotest.(check int) "counts" 1 (Dcqcn.decreases cc)

let test_nack_gate () =
  let _, cc = make () in
  Dcqcn.on_nack cc;
  let r1 = gbps cc in
  (* NACK bursts within the episode gate do not stack decreases. *)
  Dcqcn.on_nack cc;
  Dcqcn.on_nack cc;
  Alcotest.(check (float 1e-9)) "gated" r1 (gbps cc)

let test_nack_disabled () =
  let cfg = { Dcqcn.default with Dcqcn.nack_slow_start = false } in
  let _, cc = make ~cfg () in
  Dcqcn.on_nack cc;
  Alcotest.(check (float 1e-6)) "ignored" 100. (gbps cc)

let test_timeout_floors_rate () =
  let _, cc = make () in
  Dcqcn.on_timeout cc;
  Alcotest.(check (float 1e-6)) "min rate"
    (Rate.to_gbps Rate.min_rate)
    (gbps cc)

let test_alpha_decays () =
  let cfg = Dcqcn.with_ti_td Dcqcn.default ~ti_us:900. ~td_us:4. in
  let engine, cc = make ~cfg () in
  Dcqcn.on_cnp cc;
  let a0 = Dcqcn.alpha cc in
  Engine.run engine ~until:(Sim_time.us 500);
  Alcotest.(check bool) "alpha decayed" true (Dcqcn.alpha cc < a0)

let test_successive_cnps_decay_gently () =
  (* With alpha decaying, later decreases cut less than a full half. *)
  let cfg = Dcqcn.with_ti_td Dcqcn.default ~ti_us:55. ~td_us:4. in
  let engine, cc = make ~cfg () in
  Dcqcn.on_cnp cc;
  Engine.run engine ~until:(Sim_time.ms 5);
  Alcotest.(check (float 1e-6)) "recovered" 100. (gbps cc);
  (* Alpha decayed well below 1 by now. *)
  Dcqcn.on_cnp cc;
  Alcotest.(check bool) "gentler cut" true (gbps cc > 55.)

let test_byte_counter_increase () =
  let cfg =
    {
      (Dcqcn.with_ti_td Dcqcn.default ~ti_us:100_000. ~td_us:4.) with
      Dcqcn.byte_counter = 10_000;
    }
  in
  let _, cc = make ~cfg () in
  Dcqcn.on_cnp cc;
  let dropped = gbps cc in
  (* The timer is far away; byte-counter events drive recovery alone. *)
  Dcqcn.on_bytes_sent cc 10_000;
  Alcotest.(check bool) "byte counter recovers" true (gbps cc > dropped)

let test_rate_never_exceeds_line () =
  let cfg = Dcqcn.with_ti_td Dcqcn.default ~ti_us:5. ~td_us:4. in
  let engine, cc = make ~cfg () in
  Dcqcn.on_cnp cc;
  Engine.run engine ~until:(Sim_time.ms 10);
  Alcotest.(check bool) "clamped" true (gbps cc <= 100. +. 1e-9)

let () =
  Alcotest.run "dcqcn"
    [
      ( "decrease",
        [
          Alcotest.test_case "initial state" `Quick test_starts_at_line_rate;
          Alcotest.test_case "cnp" `Quick test_cnp_decrease;
          Alcotest.test_case "TD gating" `Quick test_td_gates_decreases;
          Alcotest.test_case "nack slow start" `Quick test_nack_slow_start;
          Alcotest.test_case "nack gate" `Quick test_nack_gate;
          Alcotest.test_case "nack disabled" `Quick test_nack_disabled;
          Alcotest.test_case "timeout" `Quick test_timeout_floors_rate;
        ] );
      ( "increase",
        [
          Alcotest.test_case "fast recovery" `Quick test_fast_recovery;
          Alcotest.test_case "TI speed" `Quick test_ti_speed_matters;
          Alcotest.test_case "alpha decay" `Quick test_alpha_decays;
          Alcotest.test_case "gentle later cuts" `Quick test_successive_cnps_decay_gently;
          Alcotest.test_case "byte counter" `Quick test_byte_counter_increase;
          Alcotest.test_case "clamped at line" `Quick test_rate_never_exceeds_line;
        ] );
    ]
