(* The ring-buffer FIFO that replaces Stdlib.Queue on the data path. *)

let test_fifo_order () =
  let q = Fifo.create ~capacity:2 () in
  for i = 1 to 10 do
    Fifo.push q i
  done;
  Alcotest.(check int) "length" 10 (Fifo.length q);
  Alcotest.(check int) "peek" 1 (Fifo.peek q);
  let out = List.init 10 (fun _ -> Fifo.pop q) in
  Alcotest.(check (list int)) "fifo order" (List.init 10 (fun i -> i + 1)) out;
  Alcotest.(check bool) "empty" true (Fifo.is_empty q)

let test_wraparound () =
  (* Interleave pushes and pops so head walks around the ring, then grow
     mid-wrap: the unrolled copy must preserve order. *)
  let q = Fifo.create ~capacity:4 () in
  let out = ref [] in
  for i = 1 to 50 do
    Fifo.push q i;
    Fifo.push q (100 + i);
    out := Fifo.pop q :: !out
  done;
  while not (Fifo.is_empty q) do
    out := Fifo.pop q :: !out
  done;
  (* Same sequence through a reference queue. *)
  let r = Queue.create () in
  let expect = ref [] in
  for i = 1 to 50 do
    Queue.add i r;
    Queue.add (100 + i) r;
    expect := Queue.pop r :: !expect
  done;
  while not (Queue.is_empty r) do
    expect := Queue.pop r :: !expect
  done;
  Alcotest.(check (list int)) "matches Queue" (List.rev !expect)
    (List.rev !out)

let test_iter_clear () =
  let q = Fifo.create ~capacity:2 () in
  List.iter (Fifo.push q) [ 1; 2; 3 ];
  ignore (Fifo.pop q);
  List.iter (Fifo.push q) [ 4; 5 ];
  let seen = ref [] in
  Fifo.iter (fun x -> seen := x :: !seen) q;
  Alcotest.(check (list int)) "iter front-to-back" [ 2; 3; 4; 5 ]
    (List.rev !seen);
  Fifo.clear q;
  Alcotest.(check bool) "cleared" true (Fifo.is_empty q);
  Alcotest.check_raises "pop empty" (Invalid_argument "Fifo.pop: empty")
    (fun () -> ignore (Fifo.pop q))

let test_pop_n_empty () =
  let q = Fifo.create ~capacity:4 () in
  let n = Fifo.pop_n q 8 (fun _ -> Alcotest.fail "callback on empty ring") in
  Alcotest.(check int) "zero popped" 0 n;
  Fifo.drain q (fun _ -> Alcotest.fail "drain callback on empty ring");
  Alcotest.(check bool) "still empty" true (Fifo.is_empty q)

let test_pop_n_partial () =
  (* A batch larger than the ring drains everything and reports the
     actual count; a smaller batch leaves the tail in place. *)
  let q = Fifo.create ~capacity:4 () in
  List.iter (Fifo.push q) [ 1; 2; 3; 4; 5 ];
  let seen = ref [] in
  let n = Fifo.pop_n q 3 (fun x -> seen := x :: !seen) in
  Alcotest.(check int) "three popped" 3 n;
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3 ] (List.rev !seen);
  Alcotest.(check int) "tail remains" 2 (Fifo.length q);
  let seen = ref [] in
  let n = Fifo.pop_n q 100 (fun x -> seen := x :: !seen) in
  Alcotest.(check int) "short batch" 2 n;
  Alcotest.(check (list int)) "rest in order" [ 4; 5 ] (List.rev !seen);
  Alcotest.(check bool) "empty" true (Fifo.is_empty q)

let test_pop_n_wraparound () =
  (* Walk head past the physical end so the batch spans the seam. *)
  let q = Fifo.create ~capacity:4 () in
  List.iter (Fifo.push q) [ 0; 1; 2 ];
  ignore (Fifo.pop q);
  ignore (Fifo.pop q);
  List.iter (Fifo.push q) [ 3; 4; 5 ];
  (* head = 2, contents [2;3;4;5] wrapping a capacity-4 ring. *)
  let seen = ref [] in
  let n = Fifo.pop_n q 4 (fun x -> seen := x :: !seen) in
  Alcotest.(check int) "all popped" 4 n;
  Alcotest.(check (list int)) "order across the seam" [ 2; 3; 4; 5 ]
    (List.rev !seen)

let test_drain_push_during () =
  (* Elements pushed by the callback land after the batch and must not
     be drained in the same call — the lane-requeue shape in the breathe
     loop. *)
  let q = Fifo.create ~capacity:4 () in
  List.iter (Fifo.push q) [ 1; 2; 3 ];
  let seen = ref [] in
  Fifo.drain q (fun x ->
      seen := x :: !seen;
      if x < 3 then Fifo.push q (10 * x));
  Alcotest.(check (list int)) "only the entry batch" [ 1; 2; 3 ]
    (List.rev !seen);
  Alcotest.(check int) "requeued stay" 2 (Fifo.length q);
  Alcotest.(check int) "requeued order" 10 (Fifo.pop q);
  Alcotest.(check int) "requeued order 2" 20 (Fifo.pop q)

let () =
  Alcotest.run "fifo"
    [
      ( "ring",
        [
          Alcotest.test_case "order" `Quick test_fifo_order;
          Alcotest.test_case "wraparound growth" `Quick test_wraparound;
          Alcotest.test_case "iter/clear" `Quick test_iter_clear;
          Alcotest.test_case "pop_n empty" `Quick test_pop_n_empty;
          Alcotest.test_case "pop_n partial" `Quick test_pop_n_partial;
          Alcotest.test_case "pop_n wrap-around" `Quick test_pop_n_wraparound;
          Alcotest.test_case "drain push-during" `Quick test_drain_push_during;
        ] );
    ]
