(* The ring-buffer FIFO that replaces Stdlib.Queue on the data path. *)

let test_fifo_order () =
  let q = Fifo.create ~capacity:2 () in
  for i = 1 to 10 do
    Fifo.push q i
  done;
  Alcotest.(check int) "length" 10 (Fifo.length q);
  Alcotest.(check int) "peek" 1 (Fifo.peek q);
  let out = List.init 10 (fun _ -> Fifo.pop q) in
  Alcotest.(check (list int)) "fifo order" (List.init 10 (fun i -> i + 1)) out;
  Alcotest.(check bool) "empty" true (Fifo.is_empty q)

let test_wraparound () =
  (* Interleave pushes and pops so head walks around the ring, then grow
     mid-wrap: the unrolled copy must preserve order. *)
  let q = Fifo.create ~capacity:4 () in
  let out = ref [] in
  for i = 1 to 50 do
    Fifo.push q i;
    Fifo.push q (100 + i);
    out := Fifo.pop q :: !out
  done;
  while not (Fifo.is_empty q) do
    out := Fifo.pop q :: !out
  done;
  (* Same sequence through a reference queue. *)
  let r = Queue.create () in
  let expect = ref [] in
  for i = 1 to 50 do
    Queue.add i r;
    Queue.add (100 + i) r;
    expect := Queue.pop r :: !expect
  done;
  while not (Queue.is_empty r) do
    expect := Queue.pop r :: !expect
  done;
  Alcotest.(check (list int)) "matches Queue" (List.rev !expect)
    (List.rev !out)

let test_iter_clear () =
  let q = Fifo.create ~capacity:2 () in
  List.iter (Fifo.push q) [ 1; 2; 3 ];
  ignore (Fifo.pop q);
  List.iter (Fifo.push q) [ 4; 5 ];
  let seen = ref [] in
  Fifo.iter (fun x -> seen := x :: !seen) q;
  Alcotest.(check (list int)) "iter front-to-back" [ 2; 3; 4; 5 ]
    (List.rev !seen);
  Fifo.clear q;
  Alcotest.(check bool) "cleared" true (Fifo.is_empty q);
  Alcotest.check_raises "pop empty" (Invalid_argument "Fifo.pop: empty")
    (fun () -> ignore (Fifo.pop q))

let () =
  Alcotest.run "fifo"
    [
      ( "ring",
        [
          Alcotest.test_case "order" `Quick test_fifo_order;
          Alcotest.test_case "wraparound growth" `Quick test_wraparound;
          Alcotest.test_case "iter/clear" `Quick test_iter_clear;
        ] );
    ]
