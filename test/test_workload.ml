(* Workload subsystem tests: wl1 spec exact round-trips, preset
   validity, flow-size sampler support/mean checks, open-loop arrival
   math, FCT size-class bucketing, failure-script compilation, run-level
   determinism (same (spec, scheme) twice => identical result record)
   and serial-vs-forked byte identity of a workload campaign. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Generators. *)

let gen_dist =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> Flow_size.Fixed n) (int_range 1 10_000_000);
        map
          (fun (lo, d) -> Flow_size.Uniform { lo; hi = lo + d })
          (pair (int_range 1 1_000_000) (int_range 0 1_000_000));
        return Flow_size.Websearch;
        return Flow_size.Hadoop;
        return Flow_size.Storage;
      ])

let gen_arrival =
  QCheck.Gen.(
    oneof
      [
        return Arrival.Poisson;
        map
          (fun (on_us, off_us) -> Arrival.Onoff { on_us; off_us })
          (pair (int_range 1 1000) (int_range 1 1000));
      ])

(* A small valid leaf-spine shape: >= 2 spines so spine deaths validate. *)
let gen_shape =
  QCheck.Gen.(
    map
      (fun (((n_leaves, n_spines), hosts_per_leaf), gbps) ->
        Fuzz_spec.Ls
          {
            n_leaves;
            n_spines;
            hosts_per_leaf;
            host_gbps = gbps;
            fabric_gbps = gbps;
            link_delay_ns = 500;
          })
      (pair
         (pair (pair (int_range 2 4) (int_range 2 4)) (int_range 1 4))
         (oneofl [ 25; 100 ])))

let gen_coll ~n_hosts =
  QCheck.Gen.(
    map
      (fun (((coll, ranks), coll_bytes), (iters, coll_start_ns)) ->
        (* hd-allreduce needs a power-of-two rank count. *)
        let ranks = if coll = "hd-allreduce" then 2 else ranks in
        { Workload_spec.coll; ranks; coll_bytes; iters; coll_start_ns })
      (pair
         (pair
            (pair (oneofl Workload_spec.colls_known) (int_range 2 n_hosts))
            (int_range 1 1_000_000))
         (pair (int_range 1 3) (int_range 0 1_000_000))))

let gen_failure ~shape =
  let n_hosts = Fuzz_spec.n_hosts_of_shape shape in
  let n_spines =
    match shape with
    | Fuzz_spec.Ls { n_spines; _ } -> n_spines
    | Fuzz_spec.Ft _ -> assert false
  in
  let n_fabric_links =
    match shape with
    | Fuzz_spec.Ls { n_leaves; n_spines; _ } -> n_leaves * n_spines
    | Fuzz_spec.Ft _ -> assert false
  in
  QCheck.Gen.(
    oneof
      [
        map
          (fun (((link, first), (down, extra)), count) ->
            Workload_spec.Flap
              {
                flap_link = n_hosts + link;
                first_down_ns = first;
                down_for_ns = down;
                period_ns = down + extra;
                count;
              })
          (pair
             (pair
                (pair (int_range 0 (n_fabric_links - 1)) (int_range 0 5_000_000))
                (pair (int_range 1 1_000_000) (int_range 1 1_000_000)))
             (int_range 1 3));
        map
          (fun (spine, at_ns) -> Workload_spec.Spine_down { spine; at_ns })
          (pair (int_range 0 (n_spines - 1)) (int_range 0 10_000_000));
        map
          (fun ((start, dur), ppm) ->
            Workload_spec.Drop_storm
              { storm_start_ns = start; storm_dur_ns = dur; storm_ppm = ppm })
          (pair
             (pair (int_range 0 10_000_000) (int_range 1 5_000_000))
             (int_range 1 999_999));
      ])

let gen_spec =
  QCheck.Gen.(
    let* shape = gen_shape in
    let n_hosts = Fuzz_spec.n_hosts_of_shape shape in
    let* wseed = int_range 0 9999 in
    let* dist = gen_dist in
    let* arrival = gen_arrival in
    let* load_pct = int_range 1 200 in
    let* n_flows = int_range 1 10_000 in
    let* colls = list_size (int_range 0 2) (gen_coll ~n_hosts) in
    let* failures = list_size (int_range 0 3) (gen_failure ~shape) in
    let* deadline_ns = int_range 1_000_000 1_000_000_000 in
    return
      {
        Workload_spec.wseed;
        shape;
        dist;
        arrival;
        load_pct;
        n_flows;
        colls;
        failures;
        deadline_ns;
      })

let prop_spec_roundtrip =
  QCheck.Test.make ~name:"wl1 to_string/of_string exact inverse" ~count:300
    (QCheck.make gen_spec ~print:Workload_spec.to_string)
    (fun s ->
      match Workload_spec.validate s with
      | Error _ -> QCheck.assume_fail ()
      | Ok () -> (
          match Workload_spec.of_string (Workload_spec.to_string s) with
          | Error e -> QCheck.Test.fail_reportf "of_string failed: %s" e
          | Ok s' ->
              Workload_spec.equal s s'
              && Workload_spec.to_string s' = Workload_spec.to_string s))

let test_presets () =
  List.iter
    (fun name ->
      match Workload_spec.preset name with
      | None -> Alcotest.failf "preset %s missing" name
      | Some s -> (
          match Workload_spec.validate s with
          | Ok () -> ()
          | Error e -> Alcotest.failf "preset %s invalid: %s" name e))
    Workload_spec.preset_names;
  (* "preset:<name>" parses to the same spec. *)
  let mix = Option.get (Workload_spec.preset "mix") in
  (match Workload_spec.of_string "preset:mix" with
  | Ok s -> check_bool "preset:mix resolves" true (Workload_spec.equal s mix)
  | Error e -> Alcotest.failf "preset:mix failed: %s" e);
  match Workload_spec.of_string "preset:warp" with
  | Ok _ -> Alcotest.fail "accepted unknown preset"
  | Error _ -> ()

let test_parse_errors () =
  let bad l =
    match Workload_spec.of_string l with
    | Ok _ -> Alcotest.failf "accepted bad spec %s" l
    | Error _ -> ()
  in
  bad "wl2;seed=1";
  (* Fat-tree shapes are rejected by validation. *)
  bad "wl1;seed=1;shape=ft:4:25:500;dist=fixed:1000;arr=poisson;load=50;flows=10;colls=;faults=;dl=1000000";
  (* Load factor out of range. *)
  bad "wl1;seed=1;shape=ls:2:2:4:25:25:500;dist=fixed:1000;arr=poisson;load=300;flows=10;colls=;faults=;dl=1000000";
  (* No traffic at all. *)
  bad "wl1;seed=1;shape=ls:2:2:4:25:25:500;dist=fixed:1000;arr=poisson;load=50;flows=0;colls=;faults=;dl=1000000";
  (* Flap on a host link. *)
  bad "wl1;seed=1;shape=ls:2:2:4:25:25:500;dist=fixed:1000;arr=poisson;load=50;flows=10;colls=;faults=flap:0:1000:1000:5000:1;dl=1000000"

(* ------------------------------------------------------------------ *)
(* Flow sizes. *)

let test_sample_support () =
  let rng = Rng.create ~seed:7 in
  List.iter
    (fun dist ->
      let hi = Flow_size.max_bytes dist in
      for _ = 1 to 2_000 do
        let b = Flow_size.sample dist rng in
        if b < 1 || b > hi then
          Alcotest.failf "%s sampled %d outside [1, %d]"
            (Flow_size.to_string dist) b hi
      done)
    [
      Flow_size.Fixed 777;
      Flow_size.Uniform { lo = 10; hi = 1000 };
      Flow_size.Websearch;
      Flow_size.Hadoop;
      Flow_size.Storage;
    ]

(* The sampled mean must converge to the analytic mean the load-factor
   math divides by — a mismatch silently skews every offered load. *)
let test_sample_mean () =
  List.iter
    (fun (dist, tol_pct) ->
      let rng = Rng.create ~seed:11 in
      let n = 200_000 in
      let sum = ref 0. in
      for _ = 1 to n do
        sum := !sum +. float_of_int (Flow_size.sample dist rng)
      done;
      let emp = !sum /. float_of_int n in
      let ana = Flow_size.mean_bytes dist in
      if Float.abs (emp -. ana) > ana *. tol_pct /. 100. then
        Alcotest.failf "%s: empirical mean %.0f vs analytic %.0f"
          (Flow_size.to_string dist) emp ana)
    [
      (Flow_size.Fixed 12_345, 0.001);
      (Flow_size.Uniform { lo = 100; hi = 10_000 }, 2.);
      (Flow_size.Websearch, 5.);
      (Flow_size.Hadoop, 5.);
      (Flow_size.Storage, 5.);
    ]

let test_dist_roundtrip () =
  List.iter
    (fun s ->
      match Flow_size.of_string s with
      | Error e -> Alcotest.failf "of_string %s: %s" s e
      | Ok d -> check_str "dist roundtrip" s (Flow_size.to_string d))
    [ "fixed:4096"; "uniform:10:1000"; "websearch"; "hadoop"; "storage" ];
  match Flow_size.of_string "zipf:2" with
  | Ok _ -> Alcotest.fail "accepted unknown dist"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Arrivals. *)

let test_rate_math () =
  (* 50% of 50 Gbps over 1 MB mean flows = 3125 flows/s. *)
  Alcotest.(check (float 1e-9))
    "flows_per_sec" 3125.
    (Arrival.flows_per_sec ~load_pct:50 ~capacity_bps:50e9
       ~mean_flow_bytes:1e6);
  let t =
    Arrival.create ~process:Arrival.Poisson ~load_pct:50 ~capacity_bps:50e9
      ~mean_flow_bytes:1e6
  in
  Alcotest.(check (float 1e-3)) "mean gap" (1e9 /. 3125.) (Arrival.mean_gap_ns t)

(* Long-run empirical rate must match the target for both processes:
   ON/OFF compresses arrivals into bursts but may not change the load. *)
let test_long_run_rate () =
  List.iter
    (fun process ->
      let t =
        Arrival.create ~process ~load_pct:80 ~capacity_bps:50e9
          ~mean_flow_bytes:65536.
      in
      let rng = Rng.create ~seed:5 in
      let n = 100_000 in
      let sum = ref 0. in
      for _ = 1 to n do
        let g = Arrival.next_gap_ns t rng in
        if g < 1 then Alcotest.fail "gap < 1 ns";
        sum := !sum +. float_of_int g
      done;
      let emp = !sum /. float_of_int n in
      let want = Arrival.mean_gap_ns t in
      if Float.abs (emp -. want) > want *. 0.05 then
        Alcotest.failf "%s: empirical mean gap %.0f ns vs target %.0f ns"
          (Arrival.process_to_string process)
          emp want)
    [ Arrival.Poisson; Arrival.Onoff { on_us = 50; off_us = 150 } ]

(* ------------------------------------------------------------------ *)
(* FCT size classes. *)

let test_class_boundaries () =
  let cls b = Fct.class_name (Fct.class_of_bytes b) in
  check_str "1 B" "small" (cls 1);
  check_str "10 kB boundary" "small" (cls 10_000);
  check_str "10 kB + 1" "medium" (cls 10_001);
  check_str "100 kB boundary" "medium" (cls 100_000);
  check_str "100 kB + 1" "large" (cls 100_001);
  check_str "1 MB boundary" "large" (cls 1_000_000);
  check_str "1 MB + 1" "huge" (cls 1_000_001);
  check_str "30 MB" "huge" (cls 30_000_000)

let test_fct_metrics () =
  let t = Fct.create () in
  Fct.record t ~bytes:1_000 ~fct_us:10.;
  Fct.record t ~bytes:50_000 ~fct_us:100.;
  Fct.record t ~bytes:5_000_000 ~fct_us:5000.;
  check_int "count" 3 (Fct.count t);
  check_int "small" 1 (Fct.class_count t (Fct.class_of_bytes 1_000));
  check_int "medium" 1 (Fct.class_count t (Fct.class_of_bytes 50_000));
  check_int "huge" 1 (Fct.class_count t (Fct.class_of_bytes 5_000_000));
  let m = Fct.metrics t in
  let get k =
    match List.assoc_opt k m with
    | Some v -> v
    | None -> Alcotest.failf "metric %s missing" k
  in
  check_bool "flows" true (get "flows" = 3.);
  check_bool "small flows" true (get "small_flows" = 1.);
  check_bool "large flows absent but finite" true (get "large_fct_p99_us" = 0.);
  List.iter
    (fun (k, v) ->
      if Float.is_nan v then Alcotest.failf "metric %s is NaN" k)
    m

(* ------------------------------------------------------------------ *)
(* Failure-script compilation. *)

let shape22 = Workload_spec.small_fabric
let n_hosts22 = Fuzz_spec.n_hosts_of_shape shape22

let test_compile_flap () =
  let c =
    Failure_script.compile ~shape:shape22
      [
        Workload_spec.Flap
          {
            flap_link = n_hosts22;
            first_down_ns = 1_000;
            down_for_ns = 500;
            period_ns = 10_000;
            count = 3;
          };
      ]
  in
  check_int "3 flaps -> 3 faults" 3 (List.length c.Failure_script.link_faults);
  List.iteri
    (fun k (f : Fuzz_spec.link_fault) ->
      check_int "link" n_hosts22 f.Fuzz_spec.fault_link;
      check_int "down" (1_000 + (k * 10_000)) f.Fuzz_spec.down_ns;
      check_int "up" (1_500 + (k * 10_000)) f.Fuzz_spec.up_ns)
    c.Failure_script.link_faults;
  check_int "no storms" 0 (List.length c.Failure_script.storms)

let test_compile_spine_death () =
  let c =
    Failure_script.compile ~shape:shape22
      [ Workload_spec.Spine_down { spine = 1; at_ns = 7_000 } ]
  in
  (* One permanent fault per leaf uplink into the dead spine. *)
  check_int "2 leaves -> 2 faults" 2 (List.length c.Failure_script.link_faults);
  List.iteri
    (fun leaf (f : Fuzz_spec.link_fault) ->
      check_int "uplink id"
        (Fuzz_spec.fabric_link_id shape22 ~leaf ~spine:1)
        f.Fuzz_spec.fault_link;
      check_int "down at" 7_000 f.Fuzz_spec.down_ns;
      check_bool "permanent" true (f.Fuzz_spec.up_ns <= f.Fuzz_spec.down_ns))
    c.Failure_script.link_faults

let test_compile_storm () =
  let c =
    Failure_script.compile ~shape:shape22
      [
        Workload_spec.Drop_storm
          { storm_start_ns = 5_000; storm_dur_ns = 2_000; storm_ppm = 50_000 };
      ]
  in
  check_int "one storm" 1 (List.length c.Failure_script.storms);
  let s = List.hd c.Failure_script.storms in
  check_int "start" 5_000 s.Failure_script.s_start_ns;
  check_int "stop" 7_000 s.Failure_script.s_stop_ns;
  check_int "ppm" 50_000 s.Failure_script.s_ppm

(* ------------------------------------------------------------------ *)
(* Run-level determinism: the same (spec, scheme) twice must produce the
   same result record — the in-process half of the serial==forked
   campaign guarantee. *)

let small_mix =
  {
    (Option.get (Workload_spec.preset "mix")) with
    Workload_spec.n_flows = 40;
    colls = [];
  }

let test_run_deterministic () =
  let r1 = Workload_run.run ~scheme:"themis" small_mix in
  let r2 = Workload_run.run ~scheme:"themis" small_mix in
  check_bool "identical result records" true (r1 = r2);
  check_int "all flows completed" r1.Workload_run.r_offered
    r1.Workload_run.r_completed;
  check_bool "hwm is O(active)" true
    (r1.Workload_run.r_live_hwm < small_mix.Workload_spec.n_flows)

(* Different seeds must actually change the traffic (no accidental seed
   pinning anywhere in the substream plumbing). *)
let test_run_seed_sensitivity () =
  let r1 = Workload_run.run ~scheme:"themis" small_mix in
  let r2 =
    Workload_run.run ~scheme:"themis"
      { small_mix with Workload_spec.wseed = 22 }
  in
  check_bool "different seeds, different traffic" true
    (r1.Workload_run.r_bytes_offered <> r2.Workload_run.r_bytes_offered)

(* Serial vs forked byte identity for workload campaign jobs. *)
let test_campaign_byte_identity () =
  let fresh tag =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "themis_workload_test_%d_%s" (Unix.getpid ()) tag)
  in
  let jobs =
    List.map
      (fun wscheme ->
        Campaign_spec.Workload_job
          { wname = "mix"; wscheme; load = 30; wseed = 21 })
      [ "ecmp"; "themis" ]
  in
  let serial = Campaign_store.open_ ~dir:(fresh "serial") in
  let forked = Campaign_store.open_ ~dir:(fresh "forked") in
  let s_sum = Campaign_pool.run ~workers:1 ~store:serial jobs in
  let f_sum = Campaign_pool.run ~workers:2 ~store:forked jobs in
  check_bool "serial clean" true (Campaign_pool.ok s_sum);
  check_bool "forked clean" true (Campaign_pool.ok f_sum);
  List.iter
    (fun j ->
      let h = Campaign_spec.job_hash j in
      check_str
        (Printf.sprintf "bytes of %s" (Campaign_spec.job_to_string j))
        (Option.get (Campaign_store.raw_bytes serial h))
        (Option.get (Campaign_store.raw_bytes forked h)))
    jobs

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "workload"
    [
      ( "spec",
        [
          QCheck_alcotest.to_alcotest prop_spec_roundtrip;
          Alcotest.test_case "presets valid" `Quick test_presets;
          Alcotest.test_case "parse/validate errors" `Quick test_parse_errors;
        ] );
      ( "flow_size",
        [
          Alcotest.test_case "sample support" `Quick test_sample_support;
          Alcotest.test_case "empirical vs analytic mean" `Quick
            test_sample_mean;
          Alcotest.test_case "dist roundtrip" `Quick test_dist_roundtrip;
        ] );
      ( "arrival",
        [
          Alcotest.test_case "load-factor math" `Quick test_rate_math;
          Alcotest.test_case "long-run rate (poisson + onoff)" `Quick
            test_long_run_rate;
        ] );
      ( "fct",
        [
          Alcotest.test_case "size-class boundaries" `Quick
            test_class_boundaries;
          Alcotest.test_case "metrics finite + bucketed" `Quick
            test_fct_metrics;
        ] );
      ( "failure_script",
        [
          Alcotest.test_case "flap expansion" `Quick test_compile_flap;
          Alcotest.test_case "spine death expansion" `Quick
            test_compile_spine_death;
          Alcotest.test_case "storm window" `Quick test_compile_storm;
        ] );
      ( "run",
        [
          Alcotest.test_case "same spec twice: identical" `Quick
            test_run_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick
            test_run_seed_sensitivity;
          Alcotest.test_case "campaign serial==forked bytes" `Quick
            test_campaign_byte_identity;
        ] );
    ]
