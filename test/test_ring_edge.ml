(* Edge cases for the generic drop-oldest ring (lib/engine/ring.ml):
   capacity 1, eviction order under sustained overflow, and the dropped
   counter's bookkeeping across clear. *)

let test_capacity_one () =
  let r = Ring.create ~capacity:1 in
  Alcotest.(check bool) "starts empty" true (Ring.is_empty r);
  Ring.push r 10;
  Alcotest.(check (list int)) "holds one" [ 10 ] (Ring.to_list r);
  Ring.push r 11;
  Ring.push r 12;
  Alcotest.(check int) "length stays 1" 1 (Ring.length r);
  Alcotest.(check (list int)) "keeps newest" [ 12 ] (Ring.to_list r);
  Alcotest.(check int) "two dropped" 2 (Ring.dropped r)

let test_eviction_order () =
  (* Overflowing a full ring evicts strictly oldest-first: after pushing
     0..9 into capacity 4, the survivors are the newest four in order. *)
  let r = Ring.create ~capacity:4 in
  for i = 0 to 9 do
    Ring.push r i
  done;
  Alcotest.(check (list int)) "newest 4, oldest first" [ 6; 7; 8; 9 ]
    (Ring.to_list r);
  Alcotest.(check int) "dropped = overflow count" 6 (Ring.dropped r);
  (* iter and fold agree with to_list's order. *)
  let seen = ref [] in
  Ring.iter r (fun x -> seen := x :: !seen);
  Alcotest.(check (list int)) "iter oldest first" [ 6; 7; 8; 9 ]
    (List.rev !seen);
  Alcotest.(check (list int)) "fold oldest first" [ 6; 7; 8; 9 ]
    (List.rev (Ring.fold r ~init:[] (fun acc x -> x :: acc)))

let test_interleaved_wrap () =
  (* The internal cursor wraps repeatedly; order must survive it. *)
  let r = Ring.create ~capacity:3 in
  for round = 0 to 4 do
    Ring.push r (3 * round);
    Ring.push r ((3 * round) + 1);
    Ring.push r ((3 * round) + 2)
  done;
  Alcotest.(check (list int)) "last full round" [ 12; 13; 14 ] (Ring.to_list r);
  Alcotest.(check int) "dropped 4 rounds" 12 (Ring.dropped r)

let test_clear_keeps_drop_count () =
  let r = Ring.create ~capacity:2 in
  List.iter (Ring.push r) [ 1; 2; 3 ];
  Ring.clear r;
  Alcotest.(check bool) "empty after clear" true (Ring.is_empty r);
  Alcotest.(check int) "capacity kept" 2 (Ring.capacity r);
  (* The ring mirrors a hardware counter: clear empties entries, and
     subsequent pushes start a fresh window. *)
  List.iter (Ring.push r) [ 7; 8 ];
  Alcotest.(check (list int)) "usable after clear" [ 7; 8 ] (Ring.to_list r)

let prop_matches_model =
  QCheck.Test.make ~name:"ring = drop-oldest model" ~count:300
    QCheck.(pair (int_range 1 6) (list_of_size (Gen.int_range 0 50) small_int))
    (fun (cap, pushes) ->
      let r = Ring.create ~capacity:cap in
      let model = ref [] in
      List.iter
        (fun x ->
          Ring.push r x;
          model := !model @ [ x ];
          if List.length !model > cap then model := List.tl !model)
        pushes;
      Ring.to_list r = !model
      && Ring.dropped r = max 0 (List.length pushes - cap))

let () =
  Alcotest.run "ring_edge"
    [
      ( "edges",
        [
          Alcotest.test_case "capacity one" `Quick test_capacity_one;
          Alcotest.test_case "eviction order" `Quick test_eviction_order;
          Alcotest.test_case "interleaved wrap" `Quick test_interleaved_wrap;
          Alcotest.test_case "clear" `Quick test_clear_keeps_drop_count;
          QCheck_alcotest.to_alcotest prop_matches_model;
        ] );
    ]
