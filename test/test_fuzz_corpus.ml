(* Captured fuzz corpus: scenario strings that once exposed bugs or
   exercise corners the generator only reaches occasionally.  Each is
   replayed under every scheme it names and must hold all oracles. *)

let corpus =
  [
    (* Regression: GBN sender crash ("sequence N not in any active
       message").  A NACK rewound [next_seq] below a delayed cumulative
       ACK's [una]; the stale cursor then transmitted from a popped
       message.  Found by seed 31; fixed by clamping [next_seq] to
       [una] in [Sender.advance_una]. *)
    ( "gbn rewind vs delayed cumulative ack",
      "fz1;seed=31;shape=ls:4:3:2:100:40:1649;tr=gbn;qf=150;ppcap=9216;\
       jit=1970;drop=716;corr=0;dup=0;dly=5881:17755;fmode=shrink;\
       dl=2000000000;schemes=spray;flows=6>5:8776@51914,5>0:41812@45276,\
       0>3:33943@20409,3>6:31930@65361;faults=" );
    (* Tiny 256 KiB buffers, undersized ring (F = 1.0), drops + dups +
       delays, and two fabric faults (one permanent) under shrink-mode
       recovery — the densest fault mix the quick profile produces. *)
    ( "tiny buffers, dups, permanent fault, shrink mode",
      "fz1;seed=3;shape=ls:3:4:4:25:100:646;tr=sr;qf=100;ppcap=256;jit=1493;\
       drop=4374;corr=0;dup=2057;dly=6539:4633;fmode=shrink;dl=2000000000;\
       schemes=ecmp+spray+ar+themis;flows=2>5:1830@17439,5>3:3457@24891,\
       3>6:1138@34559,6>2:36177@78582;faults=12:123400:0,22:79834:275792" );
    (* 5-to-1 incast into 64 KiB ports with GBN NICs, ~0.5% drops and
       two recovering fabric faults: maximal retransmission pressure. *)
    ( "gbn incast, 64KiB ports, heavy drops, two faults",
      "fz1;seed=27;shape=ls:3:4:2:100:100:1701;tr=gbn;qf=200;ppcap=64;jit=0;\
       drop=4830;corr=0;dup=0;dly=0:5081;fmode=ecmp;dl=2000000000;\
       schemes=ecmp+spray+ar+themis;flows=5>2:29046@58071,4>2:29046@48705,\
       5>2:29046@91381,1>2:29046@82521,5>2:29046@74480;faults=\
       14:265759:646620,10:257568:568612" );
    (* k=4 fat tree with an undersized Themis ring (F = 0.25), random
       drops and duplicate deliveries on a ring workload. *)
    ( "fat tree, undersized ring, drops and dups",
      "fz1;seed=12;shape=ft:4:100:1109;tr=sr;qf=25;ppcap=9216;jit=0;\
       drop=2007;corr=0;dup=2260;dly=7496:12111;fmode=ecmp;dl=2000000000;\
       schemes=ecmp+spray+ar+themis;flows=3>10:85542@18338,10>1:85542@33513,\
       1>13:85542@16583,13>2:85542@95551,2>7:85542@4924,7>12:85542@63058,\
       12>15:85542@22721,15>3:85542@46142;faults=" );
    (* Degenerate single-spine leaf-spine: spraying collapses to one
       path, so Eq. 3 must declare every NACK valid. *)
    ( "single spine, tiny everything, drops and dups",
      "fz1;seed=39;shape=ls:3:1:4:25:25:1794;tr=sr;qf=25;ppcap=64;jit=0;\
       drop=3181;corr=0;dup=673;dly=6469:7039;fmode=ecmp;dl=2000000000;\
       schemes=ecmp+spray+ar+themis;flows=4>0:5816@94743,0>9:3785@84518,\
       9>8:67676@55789,8>4:2282@80751;faults=" );
    (* GBN on a fat tree with ~0.5% drops, dups, tiny ports and an
       undersized ring all at once. *)
    ( "fat tree gbn, all knobs hostile",
      "fz1;seed=98;shape=ft:4:40:1797;tr=gbn;qf=25;ppcap=64;jit=0;drop=4829;\
       corr=0;dup=1283;dly=0:5046;fmode=ecmp;dl=2000000000;\
       schemes=ecmp+spray+ar+themis;flows=10>6:3919@79278,5>10:5165@40489,\
       14>11:27071@98258,14>8:2293@29640,3>13:14596@8427;faults=" );
    (* A spine link dies mid-flow (permanently) with Themis enabled:
       the source ToR's compiled forwarding tables must be rebuilt
       around the failure while flows are in flight, and Themis-S must
       shrink its spray set without violating any delivery oracle. *)
    ( "themis link-down mid-flow, compiled-table rebuild",
      "fz1;seed=11;shape=ls:2:4:2:100:100:1000;tr=sr;qf=100;ppcap=9216;\
       jit=0;drop=0;corr=0;dup=0;dly=0:0;fmode=shrink;dl=2000000000;\
       schemes=ecmp+spray+ar+themis;flows=0>2:200000@5000,2>1:150000@9000,\
       3>0:180000@7000;faults=8:12000:0" );
    (* Rival sprayers under the same link-down-mid-flow scenario as the
       Themis entry above: each policy's behavioural oracle (REPS never
       recycles tainted entropy; Sprinklers stays reordering-free where
       that is asserted; Spritz weights track the live path count across
       the rebuild) must hold while routing reconverges around the
       failure. *)
    ( "reps link-down mid-flow, entropy cache vs rerouting",
      "fz1;seed=11;shape=ls:2:4:2:100:100:1000;tr=sr;qf=100;ppcap=9216;\
       jit=0;drop=0;corr=0;dup=0;dly=0:0;fmode=shrink;dl=2000000000;\
       schemes=reps;flows=0>2:200000@5000,2>1:150000@9000,\
       3>0:180000@7000;faults=8:12000:0" );
    ( "prime link-down mid-flow, adaptive part vs rerouting",
      "fz1;seed=11;shape=ls:2:4:2:100:100:1000;tr=sr;qf=100;ppcap=9216;\
       jit=0;drop=0;corr=0;dup=0;dly=0:0;fmode=shrink;dl=2000000000;\
       schemes=prime;flows=0>2:200000@5000,2>1:150000@9000,\
       3>0:180000@7000;faults=8:12000:0" );
    ( "sprinklers link-down mid-flow, stripes vs rerouting",
      "fz1;seed=11;shape=ls:2:4:2:100:100:1000;tr=sr;qf=100;ppcap=9216;\
       jit=0;drop=0;corr=0;dup=0;dly=0:0;fmode=shrink;dl=2000000000;\
       schemes=sprinklers;flows=0>2:200000@5000,2>1:150000@9000,\
       3>0:180000@7000;faults=8:12000:0" );
    ( "spritz link-down mid-flow, weights track path count",
      "fz1;seed=11;shape=ls:2:4:2:100:100:1000;tr=sr;qf=100;ppcap=9216;\
       jit=0;drop=0;corr=0;dup=0;dly=0:0;fmode=shrink;dl=2000000000;\
       schemes=spritz;flows=0>2:200000@5000,2>1:150000@9000,\
       3>0:180000@7000;faults=8:12000:0" );
    (* Persistently congested spine (spine 0 derated 100G -> 20G) under
       Themis: skew-induced reordering by the hundreds, so Eq. 3 must
       block the spurious NACK storm while the delivery oracles still
       hold — the arena's cspine scenario (Arena_scen, seed 31, where
       Themis blocks ~330 spurious NACKs), frozen as a one-line
       reproducer. *)
    ( "themis congested spine, nack blocking under skew",
      "fz1;seed=31;shape=ls:2:4:4:25:100:1000;tr=sr;qf=200;ppcap=256;\
       jit=0;drop=0;corr=0;dup=0;dly=0:1;fmode=shrink;dl=20000000;\
       schemes=themis;flows=0>4:300000@0,1>5:300000@1000,2>6:300000@2000,\
       3>7:300000@3000,4>0:300000@4000,5>1:300000@5000,6>2:300000@6000,\
       7>3:300000@7000;faults=;sspine=0:20" );
    (* A fabric link dies mid-flow on a 4-leaf fabric that a 2-shard
       run cuts straight through (leaf 0 and spine 1 live on different
       shards), with asymmetric host/fabric rates so serialization
       grids never tie.  test_shard replays this exact spec serial vs
       sharded and asserts outcome identity; freezing it here keeps
       the serial behaviour pinned under every scheme it names. *)
    ( "cross-shard link-down mid-flow, asymmetric rates",
      "fz1;seed=13;shape=ls:4:2:2:40:100:1000;tr=sr;qf=100;ppcap=9216;\
       jit=0;drop=0;corr=0;dup=0;dly=0:0;fmode=shrink;dl=2000000000;\
       schemes=spray+themis;flows=0>5:200000@0,1>7:151500@2333,\
       6>0:119300@4741;faults=9:12000:0" );
    (* Duplicates + corruption + drops on a single-path fabric with GBN:
       exercises the receiver's duplicate/ooo handling when every
       duplicate is in-order-plausible. *)
    ( "single spine gbn, dup + corrupt + drop",
      "fz1;seed=82;shape=ls:2:1:4:40:25:1513;tr=gbn;qf=200;ppcap=9216;jit=0;\
       drop=2695;corr=248;dup=2088;dly=755:1912;fmode=ecmp;dl=2000000000;\
       schemes=ecmp+spray+ar+themis;flows=5>0:27734@81587,0>4:27734@9034,\
       4>7:27734@94380,7>6:27734@57656,6>3:27734@68735,3>2:27734@35204,\
       2>1:27734@61469,1>5:27734@81043;faults=" );
  ]

let replay (name, s) =
  match Fuzz_spec.of_string s with
  | Error e -> Alcotest.failf "%s: unparseable corpus entry: %s" name e
  | Ok spec ->
      List.iter
        (fun o ->
          Alcotest.(check (list string))
            (Printf.sprintf "%s under %s" name o.Fuzz_run.o_scheme)
            []
            (List.map
               (fun v -> v.Fuzz_oracle.oracle ^ ": " ^ v.Fuzz_oracle.detail)
               o.Fuzz_run.o_violations))
        (Fuzz_run.run spec)

let () =
  Alcotest.run "fuzz_corpus"
    [
      ( "replay",
        List.map
          (fun ((name, _) as entry) ->
            Alcotest.test_case name `Quick (fun () -> replay entry))
          corpus );
    ]
