(* Themis-Destination: tPSN identification, NACK blocking, compensation.
   The Fig. 4b and Fig. 4c walk-throughs appear as literal test cases. *)

let conn = Flow_id.make ~src:1 ~dst:5 ~qpn:9

let data psn =
  Packet.data ~conn ~sport:42 ~psn:(Psn.of_int psn) ~payload:1000
    ~last_of_msg:false ~birth:0 ()

let nack epsn = Packet.nack ~conn ~sport:42 ~epsn:(Psn.of_int epsn) ~birth:0

let make ?(paths = 2) ?(capacity = 16) ?(compensation = true) () =
  let injected = ref [] in
  let d =
    Themis_d.create ~paths ~queue_capacity:capacity ~compensation
      ~inject_nack:(fun ~conn:_ ~conn_id:_ ~sport:_ ~epsn ->
        injected := Psn.to_int epsn :: !injected)
      ()
  in
  (d, injected)

let decision = Alcotest.of_pp (fun ppf -> function
  | Themis_d.Forward -> Format.pp_print_string ppf "Forward"
  | Themis_d.Block -> Format.pp_print_string ppf "Block")

let test_fig4b_block_then_forward () =
  let d, injected = make () in
  (* Arrival order 0, 1, 3, 2 on two paths.  NACK(ePSN=2) was triggered by
     PSN 3 (different path): block.  Then 6, 4: NACK(ePSN=4) triggered by
     6 (same path): forward. *)
  List.iter (fun x -> Themis_d.on_data d (data x)) [ 0; 1; 3 ];
  Alcotest.check decision "block invalid" Themis_d.Block (Themis_d.on_nack d (nack 2));
  Themis_d.on_data d (data 2);
  List.iter (fun x -> Themis_d.on_data d (data x)) [ 6; 4 ];
  Alcotest.check decision "forward valid" Themis_d.Forward (Themis_d.on_nack d (nack 4));
  let s = Themis_d.stats d in
  Alcotest.(check int) "seen" 2 s.Themis_d.nacks_seen;
  Alcotest.(check int) "blocked" 1 s.Themis_d.nacks_blocked;
  Alcotest.(check int) "valid" 1 s.Themis_d.nacks_forwarded_valid;
  Alcotest.(check int) "no compensation fired" 0 s.Themis_d.compensation_sent;
  Alcotest.(check (list int)) "nothing injected" [] !injected

let test_fig4c_compensation () =
  let d, injected = make () in
  (* Fig. 4c: 0, 1, 3 arrive; NACK(2) blocked (BePSN=2, Valid).  PSN 2 is
     genuinely lost; later PSN 4 (same path as 2) proves it: Themis
     generates the NACK on the RNIC's behalf, exactly once. *)
  List.iter (fun x -> Themis_d.on_data d (data x)) [ 0; 1; 3 ];
  Alcotest.check decision "blocked" Themis_d.Block (Themis_d.on_nack d (nack 2));
  Themis_d.on_data d (data 4);
  Alcotest.(check (list int)) "compensated NACK for 2" [ 2 ] !injected;
  (* Further same-residue packets must not re-compensate. *)
  Themis_d.on_data d (data 6);
  Alcotest.(check (list int)) "only once" [ 2 ] !injected;
  let s = Themis_d.stats d in
  Alcotest.(check int) "compensation_sent" 1 s.Themis_d.compensation_sent

let test_compensation_cancelled_by_arrival () =
  let d, injected = make () in
  (* Blocked NACK for 2, but 2 then arrives (it was only late): the Valid
     flag clears and a later same-path packet must not compensate. *)
  List.iter (fun x -> Themis_d.on_data d (data x)) [ 0; 1; 3 ];
  Alcotest.check decision "blocked" Themis_d.Block (Themis_d.on_nack d (nack 2));
  Themis_d.on_data d (data 2);
  Themis_d.on_data d (data 4);
  Alcotest.(check (list int)) "no injection" [] !injected;
  let s = Themis_d.stats d in
  Alcotest.(check int) "cancelled" 1 s.Themis_d.compensation_cancelled

let test_race_expected_already_passed () =
  (* The expected packet passed the ToR while the NACK was in flight: it
     is still in the ring queue when the NACK is processed, so
     compensation must not arm at all. *)
  let d, injected = make () in
  List.iter (fun x -> Themis_d.on_data d (data x)) [ 0; 1; 3; 2 ];
  (* The NACK generated when 3 arrived reaches the ToR only now. *)
  Alcotest.check decision "still blocked" Themis_d.Block (Themis_d.on_nack d (nack 2));
  Themis_d.on_data d (data 4);
  Themis_d.on_data d (data 6);
  Alcotest.(check (list int)) "never compensates" [] !injected;
  let s = Themis_d.stats d in
  Alcotest.(check int) "counted as cancelled" 1 s.Themis_d.compensation_cancelled

let test_underflow_forwards () =
  let d, _ = make ~capacity:2 () in
  (* Ring too small: NACK whose trigger has been overwritten is forwarded
     conservatively. *)
  List.iter (fun x -> Themis_d.on_data d (data x)) [ 10; 11 ];
  (* ePSN beyond anything in the ring: the scan drains without a hit. *)
  Alcotest.check decision "forward on underflow" Themis_d.Forward
    (Themis_d.on_nack d (nack 20));
  let s = Themis_d.stats d in
  Alcotest.(check int) "underflow counted" 1 s.Themis_d.nacks_forwarded_underflow

let test_compensation_disabled () =
  let d, injected = make ~compensation:false () in
  List.iter (fun x -> Themis_d.on_data d (data x)) [ 0; 1; 3 ];
  Alcotest.check decision "still blocks" Themis_d.Block (Themis_d.on_nack d (nack 2));
  Themis_d.on_data d (data 4);
  Alcotest.(check (list int)) "no compensation" [] !injected

let test_four_paths_validation () =
  let d, _ = make ~paths:4 () in
  (* ePSN 1; trigger 5 shares residue 1 mod 4: valid.  Trigger 7 does
     not: invalid. *)
  List.iter (fun x -> Themis_d.on_data d (data x)) [ 0; 5 ];
  Alcotest.check decision "same residue forwards" Themis_d.Forward
    (Themis_d.on_nack d (nack 1));
  List.iter (fun x -> Themis_d.on_data d (data x)) [ 7 ];
  Alcotest.check decision "different residue blocks" Themis_d.Block
    (Themis_d.on_nack d (nack 2))

let test_register_flow () =
  let d, _ = make () in
  Themis_d.register_flow d conn;
  Alcotest.(check int) "registered" 1 (Flow_table.size (Themis_d.flow_table d));
  (* Data auto-registers other flows too. *)
  let other = Flow_id.make ~src:2 ~dst:6 ~qpn:1 in
  Themis_d.on_data d
    (Packet.data ~conn:other ~sport:1 ~psn:Psn.zero ~payload:10 ~last_of_msg:false
       ~birth:0 ());
  Alcotest.(check int) "auto" 2 (Flow_table.size (Themis_d.flow_table d))

let test_flows_isolated () =
  (* Ring queues are per-QP: traffic of one flow cannot satisfy the tPSN
     scan of another. *)
  let d, _ = make () in
  let other = Flow_id.make ~src:2 ~dst:6 ~qpn:1 in
  Themis_d.on_data d
    (Packet.data ~conn:other ~sport:1 ~psn:(Psn.of_int 50) ~payload:10
       ~last_of_msg:false ~birth:0 ());
  (* conn's own queue is empty -> underflow -> conservative forward. *)
  Alcotest.check decision "isolated" Themis_d.Forward (Themis_d.on_nack d (nack 0))

let test_wrong_kind_rejected () =
  let d, _ = make () in
  Alcotest.check_raises "on_data with nack"
    (Invalid_argument "Themis_d.on_data: not a data packet") (fun () ->
      Themis_d.on_data d (nack 0));
  Alcotest.check_raises "on_nack with data"
    (Invalid_argument "Themis_d.on_nack: not a NACK packet") (fun () ->
      ignore (Themis_d.on_nack d (data 0)))

let test_queue_overwrites_aggregate () =
  let d, _ = make ~capacity:2 () in
  for i = 0 to 9 do
    Themis_d.on_data d (data i)
  done;
  Alcotest.(check int) "overwrites" 8 (Themis_d.queue_overwrites d)

let test_set_paths () =
  let d, _ = make ~paths:4 () in
  Themis_d.set_paths d 2;
  Alcotest.(check int) "shrunk" 2 (Themis_d.paths d);
  (* Validation now runs mod 2: tPSN 3 vs ePSN 1 share a path. *)
  List.iter (fun x -> Themis_d.on_data d (data x)) [ 0; 3 ];
  Alcotest.check decision "mod-2 validity" Themis_d.Forward
    (Themis_d.on_nack d (nack 1));
  Alcotest.check_raises "invalid"
    (Invalid_argument "Themis_d.set_paths: paths must be positive") (fun () ->
      Themis_d.set_paths d 0)

let test_invalid_create () =
  Alcotest.check_raises "zero paths"
    (Invalid_argument "Themis_d.create: paths must be positive") (fun () ->
      ignore
        (Themis_d.create ~paths:0 ~queue_capacity:4
           ~inject_nack:(fun ~conn:_ ~conn_id:_ ~sport:_ ~epsn:_ -> ())
           ()))

let () =
  Alcotest.run "themis_d"
    [
      ( "validation (Fig. 4b)",
        [
          Alcotest.test_case "block then forward" `Quick test_fig4b_block_then_forward;
          Alcotest.test_case "four paths" `Quick test_four_paths_validation;
          Alcotest.test_case "underflow" `Quick test_underflow_forwards;
          Alcotest.test_case "flows isolated" `Quick test_flows_isolated;
        ] );
      ( "compensation (Fig. 4c)",
        [
          Alcotest.test_case "compensates real loss" `Quick test_fig4c_compensation;
          Alcotest.test_case "cancelled by arrival" `Quick test_compensation_cancelled_by_arrival;
          Alcotest.test_case "in-flight race" `Quick test_race_expected_already_passed;
          Alcotest.test_case "disabled" `Quick test_compensation_disabled;
        ] );
      ( "bookkeeping",
        [
          Alcotest.test_case "register" `Quick test_register_flow;
          Alcotest.test_case "wrong kinds" `Quick test_wrong_kind_rejected;
          Alcotest.test_case "overwrites" `Quick test_queue_overwrites_aggregate;
          Alcotest.test_case "set paths" `Quick test_set_paths;
          Alcotest.test_case "invalid create" `Quick test_invalid_create;
        ] );
    ]
