(* The telemetry subsystem: log-bucketed histograms, the metric registry,
   the bounded event ring, and — the acceptance gate — agreement between
   the telemetry read-out and the simulator's own counters on the
   motivation workload. *)

(* ---------------- Histogram ---------------- *)

let test_bucket_boundaries () =
  let h = Histogram.create ~min_value:1. ~max_value:1e6 () in
  (* Every recorded value must land in the bucket whose [lower, upper)
     range contains it. *)
  let check v =
    let i = Histogram.bucket_index h v in
    let lo = Histogram.bucket_lower h i and hi = Histogram.bucket_upper h i in
    if not (lo <= v && v < hi) then
      Alcotest.failf "value %g landed in bucket %d = [%g, %g)" v i lo hi
  in
  check 1.;
  check 1.0001;
  check 2.;
  check 3.1415;
  check 1000.;
  check 999_999.;
  (* Exact bucket boundaries belong to the bucket they open. *)
  for i = 1 to Histogram.bucket_count h - 2 do
    check (Histogram.bucket_lower h i)
  done

let test_under_overflow () =
  let h = Histogram.create ~min_value:1. ~max_value:100. () in
  Alcotest.(check int) "underflow" 0 (Histogram.bucket_index h 0.5);
  Alcotest.(check int) "negative underflows" 0 (Histogram.bucket_index h (-3.));
  Alcotest.(check int)
    "overflow" (Histogram.bucket_count h - 1)
    (Histogram.bucket_index h 1e9)

let test_empty () =
  let h = Histogram.create () in
  Alcotest.(check int) "count" 0 (Histogram.count h);
  Alcotest.(check (float 0.)) "sum" 0. (Histogram.sum h);
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Histogram.mean h));
  Alcotest.(check bool) "p50 nan" true
    (Float.is_nan (Histogram.percentile h 0.5))

let test_percentile_monotone () =
  let h = Histogram.create ~min_value:1. ~max_value:1e9 () in
  (* Deterministic pseudo-random stream (LCG). *)
  let state = ref 12345 in
  let next () =
    state := ((!state * 1103515245) + 12_345) land 0x3FFFFFFF;
    float_of_int (1 + (!state mod 1_000_000))
  in
  for _ = 1 to 10_000 do
    Histogram.record h (next ())
  done;
  let ps = [ 0.; 0.1; 0.25; 0.5; 0.9; 0.99; 0.999; 1. ] in
  let vs = List.map (Histogram.percentile h) ps in
  let rec check_sorted = function
    | a :: (b :: _ as rest) ->
        if a > b then Alcotest.failf "percentiles not monotone: %g > %g" a b;
        check_sorted rest
    | _ -> ()
  in
  check_sorted vs;
  List.iter
    (fun v ->
      Alcotest.(check bool) "within observed range" true
        (v >= Histogram.min_recorded h && v <= Histogram.max_recorded h))
    vs;
  (* With ~9% bucket resolution the median of U[1, 1e6] must be within a
     bucket's width of 500k. *)
  let p50 = Histogram.percentile h 0.5 in
  Alcotest.(check bool) "p50 plausible" true (p50 > 3.5e5 && p50 < 6.5e5)

let test_merge () =
  let a = Histogram.create ~min_value:1. ~max_value:1e6 () in
  let b = Histogram.create ~min_value:1. ~max_value:1e6 () in
  List.iter (Histogram.record a) [ 1.; 10.; 100. ];
  List.iter (Histogram.record b) [ 5.; 50.; 500.; 5000. ];
  let m = Histogram.copy a in
  Histogram.merge ~into:m b;
  Alcotest.(check int) "count adds" 7 (Histogram.count m);
  Alcotest.(check (float 1e-9)) "sum adds" 5666. (Histogram.sum m);
  Alcotest.(check (float 1e-9)) "min" 1. (Histogram.min_recorded m);
  Alcotest.(check (float 1e-9)) "max" 5000. (Histogram.max_recorded m);
  (* Shape mismatch is a programming error. *)
  let c = Histogram.create ~min_value:2. ~max_value:1e6 () in
  Alcotest.check_raises "shape mismatch"
    (Invalid_argument "Histogram.merge: incompatible bucket layouts") (fun () ->
      Histogram.merge ~into:m c)

(* ---------------- Ring ---------------- *)

let test_ring_drop_oldest () =
  let r = Ring.create ~capacity:4 in
  for i = 1 to 10 do
    Ring.push r i
  done;
  Alcotest.(check (list int)) "keeps newest" [ 7; 8; 9; 10 ] (Ring.to_list r);
  Alcotest.(check int) "dropped" 6 (Ring.dropped r);
  Alcotest.(check int) "length" 4 (Ring.length r);
  Ring.clear r;
  Alcotest.(check bool) "cleared" true (Ring.is_empty r)

(* ---------------- Registry ---------------- *)

let test_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~labels:[ ("verdict", "valid") ] "nacks" in
  Metrics.incr c;
  Metrics.add c 2;
  let c2 = Metrics.counter m ~labels:[ ("verdict", "blocked") ] "nacks" in
  Metrics.incr c2;
  Alcotest.(check int) "by labels" 3
    (Metrics.counter_value m ~labels:[ ("verdict", "valid") ] "nacks");
  (* Label order must not matter for identity. *)
  let c' =
    Metrics.counter m ~labels:[ ("verdict", "valid") ] "nacks"
  in
  Metrics.incr c';
  Alcotest.(check int) "same handle" 4
    (Metrics.counter_value m ~labels:[ ("verdict", "valid") ] "nacks");
  Alcotest.(check int) "total over labels" 5 (Metrics.counter_total m "nacks");
  Alcotest.(check int) "absent counter" 0 (Metrics.counter_value m "nope");
  (* Type mismatch on an existing name+labels is rejected. *)
  (try
     ignore (Metrics.gauge m ~labels:[ ("verdict", "valid") ] "nacks");
     Alcotest.fail "type mismatch accepted"
   with Invalid_argument _ -> ())

(* ---------------- Events through the global context ---------------- *)

let test_event_sink () =
  let ctx = Telemetry.enable ~event_capacity:8 () in
  let conn = Flow_id.make ~src:0 ~dst:1 ~qpn:7 in
  for psn = 0 to 19 do
    Telemetry.record ~time:(Sim_time.ns psn)
      (Event.Retransmission { conn; psn })
  done;
  Telemetry.record ~time:(Sim_time.ns 100)
    (Event.Flow_complete { conn; bytes = 42; fct_us = 1.5 });
  Alcotest.(check int) "ring bounded" 8 (Telemetry.events_retained ctx);
  Alcotest.(check int) "dropped counted" 13 (Telemetry.events_dropped ctx);
  Alcotest.(check int) "per-kind totals survive overwrites" 20
    (Telemetry.event_count ctx (Event.kind_index (Event.Retransmission { conn; psn = 0 })));
  (* The JSONL export emits one line per retained event. *)
  let jsonl = Export.events_to_jsonl ctx in
  let lines = String.split_on_char '\n' (String.trim jsonl) in
  Alcotest.(check int) "jsonl lines" 8 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "line is a json object" true
        (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines;
  Telemetry.disable ();
  Alcotest.(check bool) "disabled" false (Telemetry.enabled ())

(* ---------------- Agreement with the simulator's own counters -------- *)

let test_agreement_with_experiment () =
  let r =
    Experiment.run_motivation
      {
        Experiment.default_motivation with
        Experiment.msg_bytes = 500_000;
        scheme = Network.Themis { compensation = true };
        telemetry = true;
      }
  in
  let s =
    match r.Experiment.telemetry with
    | Some s -> s
    | None -> Alcotest.fail "telemetry summary missing"
  in
  Alcotest.(check int) "nacks generated" r.Experiment.nacks_generated
    s.Experiment.tele_nacks_generated;
  Alcotest.(check int) "flows completed" r.Experiment.flows
    s.Experiment.tele_flows_completed;
  (* Retransmission counters: the run-wide ratio the experiment reports
     must equal the telemetry counters' ratio exactly. *)
  Alcotest.(check bool) "data packets seen" true (s.Experiment.tele_data_packets > 0);
  Alcotest.(check (float 1e-12))
    "retx ratio" r.Experiment.avg_retx_ratio
    (float_of_int s.Experiment.tele_retx_packets
    /. float_of_int s.Experiment.tele_data_packets);
  (* Themis-D verdicts and compensation. *)
  (match r.Experiment.motivation_themis with
  | None -> Alcotest.fail "themis totals missing under the Themis scheme"
  | Some tt ->
      Alcotest.(check int) "valid NACKs" tt.Network.nacks_forwarded_valid
        s.Experiment.tele_nacks_valid;
      Alcotest.(check int) "blocked NACKs" tt.Network.nacks_blocked
        s.Experiment.tele_nacks_blocked;
      Alcotest.(check int) "underflow NACKs" tt.Network.nacks_forwarded_underflow
        s.Experiment.tele_nacks_underflow;
      Alcotest.(check int) "compensation sent" tt.Network.compensation_sent
        s.Experiment.tele_comp_sent;
      Alcotest.(check int) "compensation cancelled" tt.Network.compensation_cancelled
        s.Experiment.tele_comp_cancelled);
  (* FCT distribution: sane and bounded by the run's completion time. *)
  Alcotest.(check bool) "p50 positive" true (s.Experiment.tele_fct_p50_us > 0.);
  Alcotest.(check bool) "p50 <= p99" true
    (s.Experiment.tele_fct_p50_us <= s.Experiment.tele_fct_p99_us);
  Alcotest.(check bool) "p99 <= completion" true
    (s.Experiment.tele_fct_p99_us <= r.Experiment.completion_us +. 1e-6);
  Telemetry.disable ()

let test_disabled_is_free () =
  Telemetry.disable ();
  (* Recording into a disabled context must be a no-op, not an error. *)
  Telemetry.incr_counter "nothing";
  Telemetry.observe "nothing" 1.;
  Telemetry.record ~time:Sim_time.zero (Event.Link_failure { link_id = 0 });
  let r =
    Experiment.run_motivation
      { Experiment.default_motivation with Experiment.msg_bytes = 200_000 }
  in
  Alcotest.(check bool) "no summary without the flag" true
    (r.Experiment.telemetry = None)

let () =
  Alcotest.run "telemetry"
    [
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "under/overflow" `Quick test_under_overflow;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "percentile monotone" `Quick test_percentile_monotone;
          Alcotest.test_case "merge" `Quick test_merge;
        ] );
      ( "ring",
        [ Alcotest.test_case "drop oldest" `Quick test_ring_drop_oldest ] );
      ( "registry", [ Alcotest.test_case "registry" `Quick test_registry ] );
      ( "events", [ Alcotest.test_case "bounded sink" `Quick test_event_sink ] );
      ( "agreement",
        [
          Alcotest.test_case "motivation counters" `Slow
            test_agreement_with_experiment;
          Alcotest.test_case "disabled is free" `Slow test_disabled_is_free;
        ] );
    ]
