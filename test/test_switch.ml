(* The switch data plane, exercised standalone with stub endpoints. *)

(* Harness: a 2x2 leaf-spine with manual Ports whose deliveries are
   captured per node, letting us observe exactly what a single switch
   does with injected packets. *)

type harness = {
  engine : Engine.t;
  ls : Leaf_spine.t;
  routing : Routing.t;
  switches : (int, Switch.t) Hashtbl.t;
  received : (int, Packet.t list ref) Hashtbl.t;  (* host -> packets *)
}

let small_params =
  {
    Leaf_spine.n_leaves = 2;
    n_spines = 2;
    hosts_per_leaf = 2;
    host_bw = Rate.gbps 100.;
    fabric_bw = Rate.gbps 100.;
    link_delay = Sim_time.us 1;
  }

let build ?(lb = Lb_policy.Ecmp) ?(ecn = None) ?(buffer = 64 * 1024 * 1024)
    ?(per_port = 9 * 1024 * 1024) ?pfc () =
  let engine = Engine.create () in
  let ls = Leaf_spine.build small_params in
  let topo = ls.Leaf_spine.topo in
  let routing = Routing.compute topo in
  let switches = Hashtbl.create 8 in
  let received = Hashtbl.create 8 in
  let cfg =
    {
      Switch.lb;
      ecn;
      buffer_capacity = buffer;
      per_port_cap = per_port;
      fwd_delay = Sim_time.zero;
      pfc;
      ecmp_shift = 0;
    }
  in
  Array.iter
    (fun node ->
      Hashtbl.replace switches node
        (Switch.create ~engine ~topo ~routing ~node ~config:cfg
           ~rng:(Rng.create ~seed:(1000 + node))))
    (Topology.switches topo);
  Array.iter (fun h -> Hashtbl.replace received h (ref [])) (Topology.hosts topo);
  let deliver_to node pkt =
    if Topology.is_host topo node then
      let box = Hashtbl.find received node in
      box := pkt :: !box
    else Switch.receive (Hashtbl.find switches node) pkt
  in
  let inbound = Hashtbl.create 8 in
  for link_id = 0 to Topology.link_count topo - 1 do
    let link = Topology.link topo link_id in
    let dir src dst =
      let port =
        Port.create ~engine ~bandwidth:link.Topology.bandwidth
          ~delay:link.Topology.delay ~label:(Printf.sprintf "%d->%d" src dst)
      in
      Port.set_deliver port (deliver_to dst);
      if not (Topology.is_host topo dst) then
        Hashtbl.replace inbound dst
          (port :: Option.value ~default:[] (Hashtbl.find_opt inbound dst));
      if not (Topology.is_host topo src) then
        Switch.attach_port (Hashtbl.find switches src) ~link_id ~peer:dst port
    in
    dir link.Topology.a link.Topology.b;
    dir link.Topology.b link.Topology.a
  done;
  Hashtbl.iter
    (fun node sw ->
      match Hashtbl.find_opt inbound node with
      | Some ports -> Switch.set_upstream_ports sw ports
      | None -> ())
    switches;
  { engine; ls; routing; switches; received }

let conn_04 = Flow_id.make ~src:0 ~dst:2 ~qpn:1
(* host 2 = leaf 1 host 0 in the 2x2 fabric. *)

let data ?(sport = 500) psn =
  Packet.data ~conn:conn_04 ~sport ~psn:(Psn.of_int psn) ~payload:1000
    ~last_of_msg:false ~birth:0 ()

let tor0 h = Hashtbl.find h.switches h.ls.Leaf_spine.leaves.(0)
let tor1 h = Hashtbl.find h.switches h.ls.Leaf_spine.leaves.(1)
let host_rx h host = !(Hashtbl.find h.received host)

let test_forwards_cross_rack () =
  let h = build () in
  Switch.receive (tor0 h) (data 0);
  Engine.run h.engine;
  Alcotest.(check int) "delivered to host 2" 1 (List.length (host_rx h 2));
  Alcotest.(check int) "nothing to host 3" 0 (List.length (host_rx h 3));
  Alcotest.(check int) "rx counted" 1 (Switch.rx_packets (tor0 h));
  Alcotest.(check bool) "forwarded" true (Switch.forwarded_packets (tor0 h) >= 1)

let test_local_delivery () =
  let h = build () in
  let conn = Flow_id.make ~src:0 ~dst:1 ~qpn:1 in
  let pkt =
    Packet.data ~conn ~sport:5 ~psn:Psn.zero ~payload:100 ~last_of_msg:false
      ~birth:0 ()
  in
  Switch.receive (tor0 h) pkt;
  Engine.run h.engine;
  Alcotest.(check int) "same-rack delivery" 1 (List.length (host_rx h 1))

let test_ecmp_single_path_per_flow () =
  let h = build () in
  for psn = 0 to 19 do
    Switch.receive (tor0 h) (data psn)
  done;
  Engine.run h.engine;
  (* All 20 packets arrive (one spine used, but no loss). *)
  Alcotest.(check int) "all arrive" 20 (List.length (host_rx h 2));
  (* Exactly one spine carried traffic. *)
  let spines_used =
    List.filter
      (fun s -> Switch.rx_packets (Hashtbl.find h.switches s) > 0)
      (Array.to_list h.ls.Leaf_spine.spines)
  in
  Alcotest.(check int) "one spine" 1 (List.length spines_used)

let test_random_spray_uses_both_spines () =
  let h = build ~lb:Lb_policy.Random_spray () in
  for psn = 0 to 39 do
    Switch.receive (tor0 h) (data psn)
  done;
  Engine.run h.engine;
  Alcotest.(check int) "all arrive" 40 (List.length (host_rx h 2));
  Array.iter
    (fun s ->
      Alcotest.(check bool) "spine carried traffic" true
        (Switch.rx_packets (Hashtbl.find h.switches s) > 0))
    h.ls.Leaf_spine.spines

let test_buffer_drop () =
  (* Tiny shared buffer: a burst overflows and is counted. *)
  let h = build ~buffer:4_000 ~per_port:4_000 () in
  for psn = 0 to 19 do
    Switch.receive (tor0 h) (data psn)
  done;
  Engine.run h.engine;
  Alcotest.(check bool) "drops happened" true (Switch.dropped_buffer (tor0 h) > 0);
  Alcotest.(check bool) "some arrive" true (List.length (host_rx h 2) > 0);
  Alcotest.(check bool) "not all arrive" true (List.length (host_rx h 2) < 20)

let test_buffer_released () =
  let h = build ~buffer:4_000 ~per_port:4_000 () in
  Switch.receive (tor0 h) (data 0);
  Engine.run h.engine;
  Alcotest.(check int) "pool drained back to zero" 0
    (Buffer_pool.used (Switch.buffer_pool (tor0 h)))

let test_ecn_marking () =
  let ecn = Some (Ecn.config ~kmin:0 ~kmax:1 ~pmax:1.) in
  let h = build ~ecn () in
  for psn = 0 to 9 do
    Switch.receive (tor0 h) (data psn)
  done;
  Engine.run h.engine;
  (* Everything beyond the first packet finds a queue > kmax. *)
  Alcotest.(check bool) "marks counted" true (Switch.ecn_marked (tor0 h) > 0);
  let marked =
    List.filter (fun p -> p.Packet.ecn = Headers.Ce) (host_rx h 2)
  in
  Alcotest.(check bool) "packets carry CE" true (List.length marked > 0)

let test_unreachable_dropped () =
  let h = build () in
  let conn = Flow_id.make ~src:0 ~dst:999 ~qpn:1 in
  Alcotest.check_raises "unknown destination"
    (Invalid_argument "Routing: destination is not a host") (fun () ->
      Switch.receive (tor0 h)
        (Packet.data ~conn ~sport:1 ~psn:Psn.zero ~payload:10 ~last_of_msg:false
           ~birth:0 ()))

let themis_pair h ~compensation =
  let paths = Leaf_spine.n_paths h.ls in
  let injected = ref [] in
  let s = Themis_s.create ~paths ~mode:Themis_s.Direct_egress in
  let d =
    Themis_d.create ~paths ~queue_capacity:64 ~compensation
      ~inject_nack:(fun ~conn ~conn_id:_ ~sport ~epsn ->
        injected := Psn.to_int epsn :: !injected;
        Switch.inject (tor1 h)
          (Packet.nack ~conn ~sport ~epsn ~birth:(Engine.now h.engine)))
      ()
  in
  (s, d, injected)

let test_themis_s_sprays_at_source_tor () =
  let h = build () in
  let s, _, _ = themis_pair h ~compensation:true in
  Switch.set_themis (tor0 h) ~s:(Some s) ~d:None;
  for psn = 0 to 19 do
    Switch.receive (tor0 h) (data psn)
  done;
  Engine.run h.engine;
  Alcotest.(check int) "all delivered" 20 (List.length (host_rx h 2));
  Alcotest.(check int) "sprayed" 20 (Themis_s.sprayed_packets s);
  (* Both spines carried exactly half of a 2-path PSN spray. *)
  Array.iter
    (fun sp ->
      Alcotest.(check int) "even split" 10
        (Switch.rx_packets (Hashtbl.find h.switches sp)))
    h.ls.Leaf_spine.spines

let test_themis_d_blocks_nack_from_host () =
  let h = build () in
  let _, d, _ = themis_pair h ~compensation:true in
  Switch.set_themis (tor1 h) ~s:None ~d:(Some d);
  (* Data 0, 1, 3 leave ToR1 towards host 2 (recorded in ring). *)
  List.iter (fun p -> Switch.receive (tor1 h) (data p)) [ 0; 1; 3 ];
  Engine.run h.engine;
  (* Host 2's NIC NACKs ePSN 2; the ToR intercepts it on its way back. *)
  let nack = Packet.nack ~conn:conn_04 ~sport:500 ~epsn:(Psn.of_int 2) ~birth:0 in
  Switch.receive (tor1 h) nack;
  Engine.run h.engine;
  Alcotest.(check int) "nack blocked at tor" 1
    (Switch.nacks_intercept_blocked (tor1 h));
  (* Nothing came back out towards host 0. *)
  Alcotest.(check int) "sender saw nothing" 0 (List.length (host_rx h 0))

let test_themis_d_forwards_valid_nack () =
  let h = build () in
  let _, d, _ = themis_pair h ~compensation:true in
  Switch.set_themis (tor1 h) ~s:None ~d:(Some d);
  List.iter (fun p -> Switch.receive (tor1 h) (data p)) [ 0; 1; 4 ];
  Engine.run h.engine;
  (* tPSN 4 and ePSN 2 share a path (mod 2): genuine loss, forward. *)
  let nack = Packet.nack ~conn:conn_04 ~sport:500 ~epsn:(Psn.of_int 2) ~birth:0 in
  Switch.receive (tor1 h) nack;
  Engine.run h.engine;
  Alcotest.(check int) "not blocked" 0 (Switch.nacks_intercept_blocked (tor1 h));
  Alcotest.(check int) "reached the sender host" 1 (List.length (host_rx h 0))

let test_themis_compensation_injection () =
  let h = build () in
  let _, d, injected = themis_pair h ~compensation:true in
  Switch.set_themis (tor1 h) ~s:None ~d:(Some d);
  List.iter (fun p -> Switch.receive (tor1 h) (data p)) [ 0; 1; 3 ];
  Engine.run h.engine;
  let nack = Packet.nack ~conn:conn_04 ~sport:500 ~epsn:(Psn.of_int 2) ~birth:0 in
  Switch.receive (tor1 h) nack;
  Engine.run h.engine;
  (* PSN 4 (same path as the lost 2) proves the loss: the ToR generates
     the NACK itself and it travels to the sender. *)
  Switch.receive (tor1 h) (data 4);
  Engine.run h.engine;
  Alcotest.(check (list int)) "compensated" [ 2 ] !injected;
  Alcotest.(check int) "sender received the generated NACK" 1
    (List.length (host_rx h 0))

let test_set_lb_fallback () =
  let h = build ~lb:Lb_policy.Random_spray () in
  Switch.set_lb (tor0 h) Lb_policy.Ecmp;
  Alcotest.(check bool) "config updated" true
    ((Switch.config (tor0 h)).Switch.lb = Lb_policy.Ecmp)

let test_pfc_pauses_upstream () =
  let h =
    build ~buffer:1_000_000 ~per_port:1_000_000
      ~pfc:{ Switch.xoff = 3_000; xon = 1_000 } ()
  in
  (* Fill ToR0's buffer: upstream ports (spine->tor0 and host->tor0
     directions) must pause, and later resume. *)
  for psn = 0 to 9 do
    Switch.receive (tor0 h) (data psn)
  done;
  (* Before the queue drains, at least one upstream port is paused. *)
  Engine.run h.engine ~max_events:1;
  Alcotest.(check bool) "pool filled beyond xoff" true
    (Buffer_pool.used (Switch.buffer_pool (tor0 h)) >= 3_000);
  Engine.run h.engine;
  Alcotest.(check int) "eventually delivered" 10 (List.length (host_rx h 2));
  Alcotest.(check int) "pool drained" 0 (Buffer_pool.used (Switch.buffer_pool (tor0 h)))

(* Property: after any sequence of link failures and restorations (the
   mechanism behind Network.fail_link/restore_link: flip the link, then
   Routing.recompute), every switch's compiled per-destination port
   arrays must agree hop-for-hop with a routing table computed from
   scratch on the same topology.  Ports are matched by label, which the
   harness makes unique per (switch, peer) direction. *)
let prop_compiled_tables_track_failures =
  QCheck.Test.make ~name:"compiled tables track fail/restore" ~count:25
    QCheck.(list_of_size Gen.(int_range 1 12) (pair small_nat bool))
    (fun ops ->
      let h = build () in
      let topo = h.ls.Leaf_spine.topo in
      let ok = ref true in
      let check_all () =
        let fresh = Routing.compute topo in
        Hashtbl.iter
          (fun node sw ->
            Array.iter
              (fun dst ->
                let want = Routing.next_hops fresh ~node ~dst in
                let got = Switch.compiled_next_ports sw ~dst in
                if Array.length got <> Array.length want then ok := false
                else
                  Array.iteri
                    (fun i (peer, _link) ->
                      if Port.label got.(i) <> Printf.sprintf "%d->%d" node peer
                      then ok := false)
                    want)
              (Topology.hosts topo))
          h.switches
      in
      (* Compile every table once so the op loop exercises invalidation
         of populated caches, not just first-touch compilation. *)
      check_all ();
      List.iter
        (fun (pick, down) ->
          let link_id = pick mod Topology.link_count topo in
          Topology.set_link_up topo ~link_id (not down);
          Routing.recompute h.routing;
          check_all ())
        ops;
      !ok)

let () =
  Alcotest.run "switch"
    [
      ( "forwarding",
        [
          Alcotest.test_case "cross rack" `Quick test_forwards_cross_rack;
          Alcotest.test_case "local" `Quick test_local_delivery;
          Alcotest.test_case "ecmp one path" `Quick test_ecmp_single_path_per_flow;
          Alcotest.test_case "spray both spines" `Quick test_random_spray_uses_both_spines;
          Alcotest.test_case "unreachable" `Quick test_unreachable_dropped;
        ] );
      ( "resources",
        [
          Alcotest.test_case "buffer drop" `Quick test_buffer_drop;
          Alcotest.test_case "buffer release" `Quick test_buffer_released;
          Alcotest.test_case "ecn marking" `Quick test_ecn_marking;
          Alcotest.test_case "pfc" `Quick test_pfc_pauses_upstream;
        ] );
      ( "themis hooks",
        [
          Alcotest.test_case "spraying at source" `Quick test_themis_s_sprays_at_source_tor;
          Alcotest.test_case "nack blocked" `Quick test_themis_d_blocks_nack_from_host;
          Alcotest.test_case "valid nack forwarded" `Quick test_themis_d_forwards_valid_nack;
          Alcotest.test_case "compensation" `Quick test_themis_compensation_injection;
          Alcotest.test_case "lb fallback" `Quick test_set_lb_fallback;
        ] );
      ( "compiled tables",
        [ QCheck_alcotest.to_alcotest prop_compiled_tables_track_failures ] );
    ]
