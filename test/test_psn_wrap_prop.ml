(* Property tests for 24-bit PSN arithmetic across the 2^24 wrap: the
   Eq. 1 path-selection residue, the Eq. 3 NACK-validity check, and the
   unwrap/compare helpers the RNICs rely on near the boundary. *)

let half = Psn.modulus / 2

(* Paths counts as deployed: powers of two (the only values for which
   [PSN mod N] is continuous across the wrap — see spray.mli). *)
let pow2_paths = QCheck.(map (fun e -> 1 lsl e) (int_range 0 8))

(* A PSN straddling the wrap: within +-2048 of 2^24. *)
let near_wrap =
  QCheck.(
    map
      (fun off -> Psn.of_int ((Psn.modulus + off) mod Psn.modulus))
      (int_range (-2048) 2048))

let any_psn = QCheck.(map Psn.of_int (int_range 0 (Psn.modulus - 1)))

(* Eq. 1 residue is continuous across the wrap for power-of-two N:
   stepping the PSN steps the residue by one, even at 2^24 - 1 -> 0. *)
let prop_mod_paths_continuous =
  QCheck.Test.make ~name:"Eq.1 residue continuous across wrap" ~count:500
    QCheck.(pair pow2_paths near_wrap)
    (fun (paths, psn) ->
      Psn.mod_paths (Psn.succ psn) paths
      = (Psn.mod_paths psn paths + 1) mod paths)

(* Eq. 1 as the fabric computes it: path_for_psn follows the residue,
   whatever the flow's ECMP base offset. *)
let prop_path_for_psn_continuous =
  QCheck.Test.make ~name:"Eq.1 path selection continuous across wrap"
    ~count:500
    QCheck.(triple pow2_paths near_wrap (int_range 0 1000))
    (fun (paths, psn, base) ->
      Spray.path_for_psn ~psn:(Psn.succ psn) ~base ~paths
      = (Spray.path_for_psn ~psn ~base ~paths + 1) mod paths)

(* Eq. 3: two PSNs share a path iff their residues agree — in
   particular a PSN and the same PSN advanced by any multiple of N,
   even when the advance wraps past 2^24. *)
let prop_same_residue_multiples =
  QCheck.Test.make ~name:"Eq.3 residue preserved by +k*N across wrap"
    ~count:500
    QCheck.(triple pow2_paths near_wrap (int_range 0 4096))
    (fun (paths, psn, k) ->
      Psn.same_residue psn (Psn.add psn (k * paths)) ~paths
      && Spray.same_path ~a:psn ~b:(Psn.add psn (k * paths)) ~paths)

(* Eq. 3 agrees with integer arithmetic on the unwrapped values. *)
let prop_nack_validity_matches_ints =
  QCheck.Test.make ~name:"Eq.3 nack_is_valid = residue equality" ~count:500
    QCheck.(triple pow2_paths any_psn (int_range 0 4096))
    (fun (paths, epsn, gap) ->
      let tpsn = Psn.add epsn gap in
      Spray.nack_is_valid ~tpsn ~epsn ~paths = (gap mod paths = 0))

(* add/distance are inverse over less than half the circle. *)
let prop_add_distance_roundtrip =
  QCheck.Test.make ~name:"distance (add psn d) = d" ~count:500
    QCheck.(pair any_psn (int_range 0 (half - 1)))
    (fun (psn, d) -> Psn.distance ~from:psn (Psn.add psn d) = d)

(* unwrap recovers the true sequence from a 24-bit PSN whenever the
   receiver's reference is within half the PSN space — including when
   the sequence itself crosses a multiple of 2^24. *)
let prop_unwrap_inverse =
  QCheck.Test.make ~name:"unwrap ~near inverts of_int across wrap" ~count:500
    QCheck.(
      pair
        (int_range 0 (4 * Psn.modulus))
        (int_range (-(half - 1)) (half - 1)))
    (fun (near, delta) ->
      let seq = near + delta in
      QCheck.assume (seq >= 0);
      Psn.unwrap ~near (Psn.of_int seq) = seq)

(* Circular comparison is antisymmetric for gaps below half the
   circle, even when [b = a + d] wraps past 2^24. *)
let prop_compare_antisym =
  QCheck.Test.make ~name:"compare_circular antisymmetric across wrap"
    ~count:500
    QCheck.(pair near_wrap (int_range 1 (half - 1)))
    (fun (a, d) ->
      let b = Psn.add a d in
      Psn.lt a b && Psn.gt b a
      && Psn.compare_circular a b = -Psn.compare_circular b a)

let boundary_cases () =
  let top = Psn.of_int (Psn.modulus - 1) in
  Alcotest.(check int) "succ wraps to 0" 0 Psn.(to_int (succ top));
  Alcotest.(check int) "distance across wrap" 2
    (Psn.distance ~from:top (Psn.of_int 1));
  Alcotest.(check bool) "top < 0 circularly" true (Psn.lt top Psn.zero);
  (* N = 4: residues 3 -> 0 across the wrap, so top and (of_int 3) do
     not share a path but top and (of_int 3 + 4k - 4) does... spelled
     concretely: residue of 2^24 - 1 is 3, residue of 3 is 3. *)
  Alcotest.(check bool) "wrap residue N=4" true
    (Psn.same_residue top (Psn.of_int 3) ~paths:4);
  Alcotest.(check bool) "adjacent differ N=4" false
    (Psn.same_residue top Psn.zero ~paths:4)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_mod_paths_continuous;
        prop_path_for_psn_continuous;
        prop_same_residue_multiples;
        prop_nack_validity_matches_ints;
        prop_add_distance_roundtrip;
        prop_unwrap_inverse;
        prop_compare_antisym;
      ]
  in
  Alcotest.run "psn_wrap_prop"
    [
      ("wraparound properties", props);
      ( "boundary cases",
        [ Alcotest.test_case "2^24 boundary" `Quick boundary_cases ] );
    ]
