(* Regression for determinism leaks: two runs of the same (spec,
   scheme) pair must produce byte-identical JSONL event dumps and equal
   telemetry summaries.  The seeds below are chosen to cover the
   machinery most likely to leak nondeterminism — fault injection RNG,
   link-fault scheduling, last-hop jitter, and the fat-tree fabric. *)

let has_faults spec = spec.Fuzz_spec.link_faults <> []

let has_injection spec =
  spec.Fuzz_spec.drop_ppm > 0
  || spec.Fuzz_spec.dup_ppm > 0
  || spec.Fuzz_spec.delay_ppm > 0

let is_ft spec =
  match spec.Fuzz_spec.shape with Fuzz_spec.Ft _ -> true | _ -> false

(* Scan a seed range for the first spec matching [pred], so the test
   keeps covering its intended machinery even if the generator's
   distribution shifts. *)
let find_spec ~name pred =
  let rec go seed =
    if seed > 5_000 then Alcotest.failf "no %s spec in seeds 0..5000" name
    else
      let spec = Fuzz_spec.generate ~seed () in
      if pred spec then spec else go (seed + 1)
  in
  go 0

let check_deterministic spec ~scheme =
  let a = Fuzz_run.run_scheme spec ~scheme in
  let b = Fuzz_run.run_scheme spec ~scheme in
  Alcotest.(check bool)
    (Printf.sprintf "summaries equal (%s)" scheme)
    true
    (a.Fuzz_run.o_summary = b.Fuzz_run.o_summary);
  Alcotest.(check string)
    (Printf.sprintf "event dumps byte-identical (%s)" scheme)
    a.Fuzz_run.o_events_jsonl b.Fuzz_run.o_events_jsonl;
  (* A dump with no events would make the comparison vacuous. *)
  Alcotest.(check bool)
    (Printf.sprintf "event dump non-empty (%s)" scheme)
    true
    (String.length a.Fuzz_run.o_events_jsonl > 0)

let test_with pred ~name () =
  let spec = find_spec ~name pred in
  List.iter
    (fun scheme -> check_deterministic spec ~scheme)
    spec.Fuzz_spec.schemes

(* The harness's own double-run check agrees. *)
let test_harness_det_check () =
  let spec = Fuzz_spec.generate ~seed:3 () in
  match
    Fuzz_harness.determinism_check ~log:ignore ~seed:3 spec
      ~scheme:(List.hd spec.Fuzz_spec.schemes)
  with
  | None -> ()
  | Some f ->
      Alcotest.failf "determinism_check flagged seed 3: %s"
        (match f.Fuzz_harness.f_violations with
        | v :: _ -> v.Fuzz_oracle.detail
        | [] -> "?")

(* Flow-id interning is global run state: Fuzz_run must reset it at the
   run boundary so id assignment is a pure function of the spec.  A
   foreign flow interned between two runs must leave no trace — same
   dense ids, same snapshot, same output bytes. *)
let test_intern_reset_at_run_boundary () =
  let spec = Fuzz_spec.generate ~seed:3 () in
  let scheme = List.hd spec.Fuzz_spec.schemes in
  let a = Fuzz_run.run_scheme spec ~scheme in
  let snap_a = Flow_id.intern_snapshot () in
  Alcotest.(check bool) "run interned some flows" true (snap_a <> []);
  (* Pollute the interner; a missing reset would shift or append ids. *)
  ignore (Flow_id.intern (Flow_id.make ~src:9999 ~dst:9998 ~qpn:77));
  let b = Fuzz_run.run_scheme spec ~scheme in
  let snap_b = Flow_id.intern_snapshot () in
  Alcotest.(check bool) "id assignment identical across runs" true
    (snap_a = snap_b);
  Alcotest.(check string) "output bytes identical" a.Fuzz_run.o_events_jsonl
    b.Fuzz_run.o_events_jsonl;
  (* Ids are dense from zero. *)
  List.iteri
    (fun i (id, _) -> Alcotest.(check int) "dense id" i id)
    snap_b

let () =
  Alcotest.run "fuzz_determinism"
    [
      ( "same seed, same bytes",
        [
          Alcotest.test_case "fault-injected spec" `Quick
            (test_with has_injection ~name:"fault-injected");
          Alcotest.test_case "link-fault spec" `Quick
            (test_with has_faults ~name:"link-fault");
          Alcotest.test_case "fat-tree spec" `Quick
            (test_with is_ft ~name:"fat-tree");
          Alcotest.test_case "harness double-run check" `Quick
            test_harness_det_check;
        ] );
      ( "interning",
        [
          Alcotest.test_case "reset at run boundary" `Quick
            test_intern_reset_at_run_boundary;
        ] );
    ]
