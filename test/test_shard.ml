(* Sharded-simulation tests (DESIGN.md §14).

   The load-bearing property is outcome identity: a spec run serially
   ([Fuzz_run.run_scheme]) and sharded across domains
   ([Shard_run.run_scheme]) must agree on every oracle-visible result —
   summary counters, FCT percentiles, the canonical event multiset, the
   canonical metric registry, drops, OOO, Themis totals.  A second,
   independent property is shard-count invariance: 1-, 2- and 4-shard
   runs are byte-identical to each other by construction (canonical ring
   ordering), with no serial run involved.

   The box running CI may report a single recommended domain, so the
   suite sets THEMIS_SHARDS_FORCE before any sharded run. *)

let () = Unix.putenv Shard_part.force_env "1"

let spec_of_string_exn s =
  match Fuzz_spec.of_string s with
  | Ok spec -> spec
  | Error e -> Alcotest.failf "bad spec string: %s" e

(* ---------------- SPSC ring ---------------- *)

let test_ring_fifo () =
  let r = Spsc_ring.create ~capacity:8 ~stride:3 () in
  let buf = [| 0; 0; 0 |] in
  for i = 0 to 5 do
    buf.(0) <- i;
    buf.(1) <- (10 * i) + 1;
    buf.(2) <- (10 * i) + 2;
    Spsc_ring.push r ~src:buf ~off:0
  done;
  let seen = ref [] in
  let n =
    Spsc_ring.drain r (fun b off ->
        seen := (b.(off), b.(off + 1), b.(off + 2)) :: !seen)
  in
  Alcotest.(check int) "drained count" 6 n;
  Alcotest.(check (list (triple int int int)))
    "fifo order"
    (List.init 6 (fun i -> (i, (10 * i) + 1, (10 * i) + 2)))
    (List.rev !seen);
  Alcotest.(check bool) "empty after drain" true (Spsc_ring.is_empty r);
  Alcotest.(check int) "no spill" 0 (Spsc_ring.spilled r)

let test_ring_spill_preserves_order () =
  let r = Spsc_ring.create ~capacity:4 ~stride:1 () in
  let buf = [| 0 |] in
  for i = 0 to 9 do
    buf.(0) <- i;
    Spsc_ring.push r ~src:buf ~off:0
  done;
  Alcotest.(check int) "spilled" 6 (Spsc_ring.spilled r);
  let seen = ref [] in
  let n = Spsc_ring.drain r (fun b off -> seen := b.(off) :: !seen) in
  Alcotest.(check int) "drained count" 10 n;
  Alcotest.(check (list int)) "push order across spill"
    (List.init 10 Fun.id) (List.rev !seen)

let test_ring_cross_domain () =
  let total = 5_000 in
  let r = Spsc_ring.create ~capacity:64 ~stride:2 () in
  let producer =
    Domain.spawn (fun () ->
        let buf = [| 0; 0 |] in
        for i = 0 to total - 1 do
          buf.(0) <- i;
          buf.(1) <- i * 7;
          (* try_push first so the consumer-side path (ring, not spill)
             is exercised under real concurrency. *)
          if not (Spsc_ring.try_push r ~src:buf ~off:0) then
            Spsc_ring.push r ~src:buf ~off:0
        done)
  in
  (* Under concurrency a spilled record can be overtaken by a later
     ring push (the next drain pops ring before spill), so raw drain
     order is not FIFO — the contract is exactly-once intact delivery
     with push order recoverable from the carried sequence number,
     which is what Shard_net's barrier-time sort relies on. *)
  let seen = Array.make total false in
  let received = ref 0 in
  let ok = ref true in
  while !received < total do
    ignore
      (Spsc_ring.drain r (fun b off ->
           let i = b.(off) in
           if i < 0 || i >= total || seen.(i) || b.(off + 1) <> i * 7 then
             ok := false
           else seen.(i) <- true;
           incr received))
  done;
  Domain.join producer;
  Alcotest.(check bool) "each record delivered intact exactly once" true !ok;
  Alcotest.(check int) "all received" total !received

(* ---------------- Barrier ---------------- *)

let test_barrier_or_reduction () =
  let parties = 3 in
  let phases = 50 in
  let b = Domain_barrier.create parties in
  let run who () =
    let bad = ref 0 in
    for phase = 1 to phases do
      let combined = Domain_barrier.await b ~flags:(phase lsl (4 * who)) in
      let expect = (phase lsl 0) lor (phase lsl 4) lor (phase lsl 8) in
      if combined <> expect then incr bad
    done;
    !bad
  in
  let d1 = Domain.spawn (run 1) and d2 = Domain.spawn (run 2) in
  let bad0 = run 0 () in
  Alcotest.(check int) "party 0 sees full OR each phase" 0 bad0;
  Alcotest.(check int) "party 1" 0 (Domain.join d1);
  Alcotest.(check int) "party 2" 0 (Domain.join d2)

(* ---------------- Shard.advance ---------------- *)

let test_advance_windows () =
  let b = Domain_barrier.create 1 in
  let horizons = ref [] in
  let drains = ref [] in
  let run ~until = horizons := until :: !horizons in
  ignore
    (Shard.advance ~barrier:b ~lookahead:10
       ~run
       ~flags:(fun () -> 0)
       ~drain:(fun ~upto -> drains := upto :: !drains)
       ~from:0 ~until_:25 ());
  Alcotest.(check (list int)) "window horizons" [ 10; 20; 25 ]
    (List.rev !horizons);
  Alcotest.(check (list int)) "one drain per window, bounded by horizon"
    [ 10; 20; 25 ] (List.rev !drains);
  (* Empty span: no windows, no barrier phases. *)
  horizons := [];
  ignore
    (Shard.advance ~barrier:b ~lookahead:10 ~run
       ~flags:(fun () -> 0)
       ~drain:(fun ~upto:_ -> ())
       ~from:7 ~until_:7 ());
  Alcotest.(check (list int)) "empty span runs nothing" [] !horizons

let test_advance_invalid () =
  let b = Domain_barrier.create 1 in
  let nop ~until = ignore until in
  Alcotest.check_raises "lookahead 0"
    (Invalid_argument "Shard.advance: lookahead must be positive") (fun () ->
      ignore
        (Shard.advance ~barrier:b ~lookahead:0 ~run:nop
           ~flags:(fun () -> 0)
           ~drain:(fun ~upto:_ -> ()) ~from:0 ~until_:1 ()));
  Alcotest.check_raises "until < from"
    (Invalid_argument "Shard.advance: until_ < from") (fun () ->
      ignore
        (Shard.advance ~barrier:b ~lookahead:5 ~run:nop
           ~flags:(fun () -> 0)
           ~drain:(fun ~upto:_ -> ()) ~from:3 ~until_:2 ()))

let test_advance_abort () =
  let b = Domain_barrier.create 1 in
  let nop ~until = ignore until in
  Alcotest.check_raises "abort flag raises"
    (Shard.Aborted 4) (fun () ->
      ignore
        (Shard.advance ~abort_mask:4 ~barrier:b ~lookahead:5 ~run:nop
           ~flags:(fun () -> 4)
           ~drain:(fun ~upto:_ -> ()) ~from:0 ~until_:10 ()))

(* ---------------- Partitioner ---------------- *)

let test_partition () =
  match
    Shard_part.partition ~n_leaves:4 ~n_spines:3 ~hosts_per_leaf:2
      ~link_delay:1000 ~shards:2
  with
  | Error e -> Alcotest.fail e
  | Ok p ->
      Alcotest.(check int) "shards" 2 (Shard_part.shards p);
      Alcotest.(check int) "lookahead = link delay" 1000
        (Shard_part.lookahead p);
      (* Hosts 0..7 follow their ToR; leaves 8..11 contiguous blocks;
         spines 12..14 round-robin. *)
      let owner = Shard_part.shard_of p in
      Alcotest.(check (list int)) "host owners" [ 0; 0; 0; 0; 1; 1; 1; 1 ]
        (List.init 8 owner);
      Alcotest.(check (list int)) "leaf owners" [ 0; 0; 1; 1 ]
        (List.init 4 (fun l -> owner (8 + l)));
      Alcotest.(check (list int)) "spine owners" [ 0; 1; 0 ]
        (List.init 3 (fun s -> owner (12 + s)));
      Alcotest.(check bool) "host<->ToR never crosses shards" true
        (List.for_all
           (fun h -> owner h = owner (8 + (h / 2)))
           (List.init 8 Fun.id))

let test_partition_errors () =
  let bad = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "shards > leaves rejected" true
    (bad
       (Shard_part.partition ~n_leaves:2 ~n_spines:2 ~hosts_per_leaf:1
          ~link_delay:100 ~shards:3));
  Alcotest.(check bool) "zero link delay rejected" true
    (bad
       (Shard_part.partition ~n_leaves:2 ~n_spines:2 ~hosts_per_leaf:1
          ~link_delay:0 ~shards:2));
  Alcotest.(check bool) "shards < 1 rejected" true
    (bad
       (Shard_part.partition ~n_leaves:2 ~n_spines:2 ~hosts_per_leaf:1
          ~link_delay:100 ~shards:0))

let test_supported_gate () =
  let clean =
    spec_of_string_exn
      "fz1;seed=1;shape=ls:2:2:1:40:40:1000;tr=sr;qf=100;ppcap=256;jit=0;\
       drop=0;corr=0;dup=0;dly=0:0;fmode=ecmp;dl=2000000000;schemes=spray;\
       flows=0>1:3000@0;faults="
  in
  Alcotest.(check bool) "clean ls spec supported" true
    (Shard_part.supported clean ~shards:2 = Ok ());
  let dirty = { clean with Fuzz_spec.drop_ppm = 5 } in
  Alcotest.(check bool) "ppm faults rejected" true
    (match Shard_part.supported dirty ~shards:2 with
    | Error _ -> true
    | Ok () -> false)

(* ---------------- Serial == sharded identity ---------------- *)

let check_float what a b =
  Alcotest.(check (float 1e-9)) what a b

(* Full oracle-visible equality of two outcomes.  Event dumps are
   compared as canonical (sorted) line multisets: serial and sharded
   runs interleave same-tick events from different components
   differently, but must agree on the multiset. *)
let check_outcomes ~what (a : Fuzz_run.outcome) (b : Fuzz_run.outcome) =
  let viol o =
    List.map
      (fun v -> (v.Fuzz_oracle.oracle, v.Fuzz_oracle.detail))
      o.Fuzz_run.o_violations
  in
  Alcotest.(check (list (pair string string)))
    (what ^ ": violations") (viol a) (viol b);
  Alcotest.(check bool) (what ^ ": summary") true
    (a.Fuzz_run.o_summary = b.Fuzz_run.o_summary);
  Alcotest.(check bool) (what ^ ": summary present") true
    (a.Fuzz_run.o_summary <> None);
  Alcotest.(check string) (what ^ ": canonical events")
    (Shard_run.canonical_events_jsonl a)
    (Shard_run.canonical_events_jsonl b);
  Alcotest.(check bool) (what ^ ": events non-empty") true
    (String.length a.Fuzz_run.o_events_jsonl > 0);
  Alcotest.(check int) (what ^ ": data packets") a.Fuzz_run.o_data_packets
    b.Fuzz_run.o_data_packets;
  Alcotest.(check int) (what ^ ": retx packets") a.Fuzz_run.o_retx_packets
    b.Fuzz_run.o_retx_packets;
  Alcotest.(check int) (what ^ ": drops") a.Fuzz_run.o_drops
    b.Fuzz_run.o_drops;
  Alcotest.(check int) (what ^ ": ooo") a.Fuzz_run.o_ooo b.Fuzz_run.o_ooo;
  check_float (what ^ ": completion time") a.Fuzz_run.o_completed_us
    b.Fuzz_run.o_completed_us;
  check_float (what ^ ": tail fct") a.Fuzz_run.o_tail_fct_us
    b.Fuzz_run.o_tail_fct_us;
  Alcotest.(check bool) (what ^ ": themis totals") true
    (a.Fuzz_run.o_themis = b.Fuzz_run.o_themis)

(* Run serially, then sharded, comparing outcomes AND the canonical
   metric registry (sampler rows excluded — see Shard_run).  Returns the
   serial outcome for further checks. *)
let check_identity ?(shards = 2) spec ~scheme =
  let serial = Fuzz_run.run_scheme spec ~scheme in
  let serial_csv = Shard_run.canonical_metrics_csv () in
  let sharded = Shard_run.run_scheme spec ~scheme ~shards in
  let sharded_csv = Shard_run.canonical_metrics_csv () in
  check_outcomes ~what:(Printf.sprintf "%s x%d" scheme shards) serial sharded;
  Alcotest.(check string)
    (Printf.sprintf "%s x%d: canonical metrics" scheme shards)
    serial_csv sharded_csv;
  Alcotest.(check bool)
    (Printf.sprintf "%s x%d: metrics non-empty" scheme shards)
    true
    (String.length serial_csv > 0);
  serial

(* Cross-shard permutation traffic on a 4-leaf fabric: every flow
   crosses the leaf (and with 2 shards, the shard) boundary. *)
let clean_spec =
  "fz1;seed=7;shape=ls:4:3:2:100:100:1000;tr=sr;qf=100;ppcap=256;jit=0;\
   drop=0;corr=0;dup=0;dly=0:0;fmode=ecmp;dl=2000000000;\
   schemes=ecmp+spray+themis;flows=0>7:60000@0,7>2:45000@3000,\
   2>5:30000@1500,5>0:20000@4500;faults="

let test_identity_clean () =
  let spec = spec_of_string_exn clean_spec in
  List.iter
    (fun scheme ->
      let serial = check_identity spec ~scheme in
      Alcotest.(check (list (pair string string)))
        (scheme ^ ": clean run has no violations") []
        (List.map
           (fun v -> (v.Fuzz_oracle.oracle, v.Fuzz_oracle.detail))
           serial.Fuzz_run.o_violations))
    [ "ecmp"; "spray"; "themis" ]

(* GBN transport, last-hop jitter and a derated spine: jitter draws come
   from per-port RNGs, so they are partition-independent; the slow spine
   exercises replicated control-plane reconfiguration. *)
let test_identity_jitter_slow_spine () =
  let spec =
    spec_of_string_exn
      "fz1;seed=8;shape=ls:4:2:2:40:40:1200;tr=gbn;qf=150;ppcap=9216;\
       jit=900;drop=0;corr=0;dup=0;dly=0:0;fmode=ecmp;dl=2000000000;\
       schemes=spray;flows=0>6:30000@0,6>1:25000@2000,3>4:20000@1000;\
       faults=;sspine=1:10"
  in
  ignore (check_identity spec ~scheme:"spray")

(* Synchronized equal-size incast: every flow shares one serialization
   grid, so exact same-tick cross-port collisions at the victim ToR are
   pervasive.  This is the documented carve-out where the serial
   engine's insertion order and the canonical (fire, tick, port, seq)
   order may legitimately differ — so the property asserted here is the
   one that holds exactly in this regime: 1-, 2- and 4-shard runs are
   byte-identical to each other, and the oracles hold. *)
let test_incast_tie_invariance () =
  let spec =
    spec_of_string_exn
      "fz1;seed=9;shape=ls:4:3:2:100:100:800;tr=sr;qf=100;ppcap=128;jit=0;\
       drop=0;corr=0;dup=0;dly=0:0;fmode=ecmp;dl=2000000000;schemes=themis;\
       flows=2>0:40000@0,4>0:40000@0,6>0:40000@0,3>1:40000@0,5>1:40000@0,\
       7>1:40000@0;faults="
  in
  let scheme = "themis" in
  let o1 = Shard_run.run_scheme spec ~scheme ~shards:1 in
  let o2 = Shard_run.run_scheme spec ~scheme ~shards:2 in
  let o4 = Shard_run.run_scheme spec ~scheme ~shards:4 in
  check_outcomes ~what:"incast 1 vs 2" o1 o2;
  check_outcomes ~what:"incast 1 vs 4" o1 o4;
  Alcotest.(check string) "incast raw dump identical 1 vs 4"
    o1.Fuzz_run.o_events_jsonl o4.Fuzz_run.o_events_jsonl;
  Alcotest.(check (list (pair string string)))
    "incast oracles hold sharded" []
    (List.map
       (fun v -> (v.Fuzz_oracle.oracle, v.Fuzz_oracle.detail))
       o2.Fuzz_run.o_violations)

(* ---------------- Frozen corpus: cross-shard link-down mid-flow ---- *)

(* A leaf0<->spine1 link dies permanently at 12 us while leaf-0 flows
   are in flight toward leaves 2 and 3 (the other shard).  Packets that
   are inside cross-shard rings or replica port queues when the fault
   fires must be dropped and booked exactly once, on the consumer's
   replica, and the shrink-mode respray must reconverge identically in
   serial and sharded runs.  Frozen: this exact string must keep passing
   as the shard machinery evolves. *)
(* 40 G hosts under a 100 G fabric: the two serialization grids are
   incommensurate, so this execution is free of the same-tick cross-port
   ties that void strict serial equality (see the incast test). *)
let fault_spec =
  "fz1;seed=13;shape=ls:4:2:2:40:100:1000;tr=sr;qf=100;ppcap=9216;jit=0;\
   drop=0;corr=0;dup=0;dly=0:0;fmode=shrink;dl=2000000000;\
   schemes=spray+themis;flows=0>5:200000@0,1>7:151500@2333,6>0:119300@4741;\
   faults=9:12000:0"

let test_identity_link_down_mid_flow () =
  let spec = spec_of_string_exn fault_spec in
  (* The frozen fault id must stay a leaf0<->spine link as the topology
     generator evolves. *)
  (match spec.Fuzz_spec.link_faults with
  | [ f ] ->
      Alcotest.(check int) "fault is the leaf0<->spine1 link"
        (Fuzz_spec.fabric_link_id spec.Fuzz_spec.shape ~leaf:0 ~spine:1)
        f.Fuzz_spec.fault_link
  | _ -> Alcotest.fail "expected exactly one link fault");
  List.iter
    (fun scheme ->
      let serial = check_identity spec ~scheme in
      Alcotest.(check (list (pair string string)))
        (scheme ^ ": oracles hold across the fault") []
        (List.map
           (fun v -> (v.Fuzz_oracle.oracle, v.Fuzz_oracle.detail))
           serial.Fuzz_run.o_violations))
    [ "spray"; "themis" ]

(* ---------------- Shard-count invariance ---------------- *)

(* 1-, 2- and 4-shard runs all route every propagation through the
   canonical ring ordering, so they must be byte-identical to each
   other — including the raw (uncanonicalized) event dump. *)
let test_shard_count_invariance () =
  let spec = spec_of_string_exn clean_spec in
  let scheme = "spray" in
  let o1 = Shard_run.run_scheme spec ~scheme ~shards:1 in
  let o2 = Shard_run.run_scheme spec ~scheme ~shards:2 in
  let o4 = Shard_run.run_scheme spec ~scheme ~shards:4 in
  check_outcomes ~what:"1 vs 2 shards" o1 o2;
  check_outcomes ~what:"1 vs 4 shards" o1 o4;
  Alcotest.(check string) "raw event dump identical, 1 vs 2"
    o1.Fuzz_run.o_events_jsonl o2.Fuzz_run.o_events_jsonl;
  Alcotest.(check string) "raw event dump identical, 1 vs 4"
    o1.Fuzz_run.o_events_jsonl o4.Fuzz_run.o_events_jsonl

(* ---------------- Generated specs (property) ---------------- *)

(* From an arbitrary starting seed, the next generator output that the
   shard gate accepts must run serial == 2-shard identical.  QCheck
   varies the starting seed; the scan makes every trial land on a
   supported spec, so no assumption waste. *)
let next_supported_spec start =
  let rec go s =
    if s > start + 5_000 then
      Alcotest.failf "no supported spec in seeds %d..%d" start (start + 5_000)
    else
      let spec = Fuzz_spec.generate ~seed:s () in
      match Shard_part.supported spec ~shards:2 with
      | Ok () -> spec
      | Error _ -> go (s + 1)
  in
  go start

let prop_generated_identity =
  QCheck.Test.make ~name:"generated spec: serial == 2-shard" ~count:3
    QCheck.(int_range 0 2_000)
    (fun start ->
      let spec = next_supported_spec start in
      let scheme =
        match spec.Fuzz_spec.schemes with
        | s :: _ -> s
        | [] -> List.hd Fuzz_spec.all_schemes
      in
      let serial = Fuzz_run.run_scheme spec ~scheme in
      let sharded = Shard_run.run_scheme spec ~scheme ~shards:2 in
      serial.Fuzz_run.o_summary = sharded.Fuzz_run.o_summary
      && Shard_run.canonical_events_jsonl serial
         = Shard_run.canonical_events_jsonl sharded
      && serial.Fuzz_run.o_violations = sharded.Fuzz_run.o_violations)

(* ---------------- Unsupported / fail-fast paths ---------------- *)

let test_unsupported_raises () =
  let spec =
    { (spec_of_string_exn clean_spec) with Fuzz_spec.drop_ppm = 100 }
  in
  Alcotest.(check bool) "ppm spec raises Unsupported" true
    (try
       ignore (Shard_run.run_scheme spec ~scheme:"spray" ~shards:2);
       false
     with Shard_run.Unsupported _ -> true)

let test_force_env_gate () =
  (* With the override cleared, a single-core box must fail fast for
     shards > 1 and still accept shards = 1. *)
  Unix.putenv Shard_part.force_env "";
  let multi = Shard_part.ensure_domains ~shards:4 in
  let single = Shard_part.ensure_domains ~shards:1 in
  Unix.putenv Shard_part.force_env "1";
  (match (Domain.recommended_domain_count (), multi) with
  | 1, Error msg ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "error names the override" true
        (contains msg Shard_part.force_env)
  | 1, Ok () -> Alcotest.fail "single-core box accepted 4 shards"
  | _, _ -> ());
  Alcotest.(check bool) "one shard always fine" true (single = Ok ())

(* ---------------- Telemetry merge audit ---------------- *)

let test_telemetry_merge_deterministic () =
  (* Two per-shard contexts with overlapping counters and interleaved
     events: the merge must sum registries and stably time-sort the
     event streams, in shard-id order. *)
  let c0 = Telemetry.enable () in
  Telemetry.add_counter "packets_sent_total" 5;
  Telemetry.incr_counter "nacks_generated_total";
  Telemetry.record ~time:(Sim_time.ns 30)
    (Event.Retransmission { conn = Flow_id.make ~src:0 ~dst:1 ~qpn:1; psn = 3 });
  let c1 = Telemetry.enable () in
  Telemetry.add_counter "packets_sent_total" 7;
  Telemetry.record ~time:(Sim_time.ns 10)
    (Event.Retransmission { conn = Flow_id.make ~src:0 ~dst:1 ~qpn:2; psn = 8 });
  Telemetry.record ~time:(Sim_time.ns 30)
    (Event.Retransmission { conn = Flow_id.make ~src:0 ~dst:1 ~qpn:2; psn = 9 });
  let merged = Telemetry.merge [ c0; c1 ] in
  Telemetry.use merged;
  let m = Telemetry.metrics_exn () in
  Alcotest.(check int) "counters sum across shards" 12
    (Metrics.counter_total m "packets_sent_total");
  Alcotest.(check int) "counter present in only one shard" 1
    (Metrics.counter_total m "nacks_generated_total");
  let events = Telemetry.events merged in
  Alcotest.(check int) "all events retained" 3 (List.length events);
  Alcotest.(check (list int)) "stable time sort, shard order on ties"
    [ 10; 30; 30 ]
    (List.map fst events);
  (match events with
  | [ _; (_, Event.Retransmission { conn; _ }); _ ] ->
      Alcotest.(check bool) "tie broken by shard id" true
        (conn = Flow_id.make ~src:0 ~dst:1 ~qpn:1)
  | _ -> Alcotest.fail "unexpected event stream");
  Telemetry.disable ()

(* The same audit end-to-end: sharded runs install the merged context,
   and Experiment.telemetry_summary over it equals the unsharded one.
   (Covered field-by-field by the identity tests; here we pin that the
   merged context is what is installed after a sharded run.) *)
let test_merged_context_installed () =
  let spec = spec_of_string_exn clean_spec in
  ignore (Shard_run.run_scheme spec ~scheme:"ecmp" ~shards:2);
  Alcotest.(check bool) "telemetry context live after sharded run" true
    (Telemetry.ctx () <> None);
  Alcotest.(check bool) "summary readable from merged context" true
    (Experiment.telemetry_summary () <> None);
  Telemetry.disable ()

let () =
  Alcotest.run "shard"
    [
      ( "spsc ring",
        [
          Alcotest.test_case "fifo order" `Quick test_ring_fifo;
          Alcotest.test_case "spill preserves order" `Quick
            test_ring_spill_preserves_order;
          Alcotest.test_case "cross-domain transfer" `Quick
            test_ring_cross_domain;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "or-reduction over phases" `Quick
            test_barrier_or_reduction;
        ] );
      ( "advance",
        [
          Alcotest.test_case "window partition" `Quick test_advance_windows;
          Alcotest.test_case "invalid arguments" `Quick test_advance_invalid;
          Alcotest.test_case "abort protocol" `Quick test_advance_abort;
        ] );
      ( "partition",
        [
          Alcotest.test_case "tor-affine cut" `Quick test_partition;
          Alcotest.test_case "rejects bad cuts" `Quick test_partition_errors;
          Alcotest.test_case "support gate" `Quick test_supported_gate;
          Alcotest.test_case "single-core fail fast" `Quick
            test_force_env_gate;
          Alcotest.test_case "unsupported spec raises" `Quick
            test_unsupported_raises;
        ] );
      ( "serial == sharded",
        [
          Alcotest.test_case "clean permutation, three schemes" `Slow
            test_identity_clean;
          Alcotest.test_case "gbn + jitter + slow spine" `Slow
            test_identity_jitter_slow_spine;
          Alcotest.test_case "synchronized incast ties" `Slow
            test_incast_tie_invariance;
          Alcotest.test_case "frozen: link-down mid-flow cross-shard" `Slow
            test_identity_link_down_mid_flow;
          Alcotest.test_case "shard-count invariance 1/2/4" `Slow
            test_shard_count_invariance;
          QCheck_alcotest.to_alcotest prop_generated_identity;
        ] );
      ( "telemetry merge",
        [
          Alcotest.test_case "deterministic registry + event merge" `Quick
            test_telemetry_merge_deterministic;
          Alcotest.test_case "merged context installed" `Quick
            test_merged_context_installed;
        ] );
    ]
