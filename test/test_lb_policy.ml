(* Load-balancing policies. *)

let conn = Flow_id.make ~src:3 ~dst:4 ~qpn:2

let data psn =
  Packet.data ~conn ~sport:777 ~psn:(Psn.of_int psn) ~payload:1000
    ~last_of_msg:false ~birth:0 ()

let ack () = Packet.ack ~conn ~sport:777 ~psn:Psn.zero ~birth:0
let no_load _ = 0

let test_strings () =
  List.iter
    (fun p ->
      match Lb_policy.of_string (Lb_policy.to_string p) with
      | Ok p' -> Alcotest.(check bool) "roundtrip" true (p = p')
      | Error e -> Alcotest.fail e)
    Lb_policy.all;
  Alcotest.(check bool) "unknown" true
    (Result.is_error (Lb_policy.of_string "bogus"))

let test_ecmp_stable () =
  let rng = Rng.create ~seed:1 in
  let first =
    Lb_policy.choose Lb_policy.Ecmp ~rng ~pkt:(data 0) ~n:8 ~load:no_load
  in
  for psn = 1 to 50 do
    Alcotest.(check int) "same path for all psns" first
      (Lb_policy.choose Lb_policy.Ecmp ~rng ~pkt:(data psn) ~n:8 ~load:no_load)
  done

let test_ecmp_matches_index () =
  let rng = Rng.create ~seed:1 in
  Alcotest.(check int) "ecmp_index agrees"
    (Lb_policy.ecmp_index ~pkt:(data 0) ~n:8)
    (Lb_policy.choose Lb_policy.Ecmp ~rng ~pkt:(data 0) ~n:8 ~load:no_load)

let test_random_spray_spread () =
  let rng = Rng.create ~seed:2 in
  let counts = Array.make 4 0 in
  for psn = 0 to 3999 do
    let i =
      Lb_policy.choose Lb_policy.Random_spray ~rng ~pkt:(data psn) ~n:4
        ~load:no_load
    in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "roughly uniform" true (c > 800 && c < 1200))
    counts

let test_adaptive_picks_min () =
  let rng = Rng.create ~seed:3 in
  let load i = [| 500; 100; 900; 300 |].(i) in
  Alcotest.(check int) "min queue" 1
    (Lb_policy.choose Lb_policy.Adaptive ~rng ~pkt:(data 0) ~n:4 ~load)

let test_adaptive_tie_break_uniform () =
  let rng = Rng.create ~seed:4 in
  let load _ = 0 in
  let counts = Array.make 4 0 in
  for psn = 0 to 3999 do
    let i = Lb_policy.choose Lb_policy.Adaptive ~rng ~pkt:(data psn) ~n:4 ~load in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "ties spread" true (c > 800 && c < 1200))
    counts

let test_psn_spray_eq1 () =
  let rng = Rng.create ~seed:5 in
  let n = 4 in
  let base =
    Spray.base_for_flow conn ~sport:777 ~paths:n
  in
  for psn = 0 to 63 do
    Alcotest.(check int) "Eq. 1"
      (((psn mod n) + base) mod n)
      (Lb_policy.choose Lb_policy.Psn_spray ~rng ~pkt:(data psn) ~n ~load:no_load)
  done

let test_control_always_ecmp () =
  let rng = Rng.create ~seed:6 in
  let expected = Lb_policy.ecmp_index ~pkt:(ack ()) ~n:4 in
  List.iter
    (fun policy ->
      for _ = 1 to 10 do
        Alcotest.(check int) "control pinned" expected
          (Lb_policy.choose policy ~rng ~pkt:(ack ()) ~n:4 ~load:no_load)
      done)
    Lb_policy.all

let test_single_candidate () =
  let rng = Rng.create ~seed:7 in
  List.iter
    (fun policy ->
      Alcotest.(check int) "only choice" 0
        (Lb_policy.choose policy ~rng ~pkt:(data 5) ~n:1 ~load:no_load))
    Lb_policy.all

let test_no_candidates () =
  let rng = Rng.create ~seed:8 in
  Alcotest.check_raises "empty" (Invalid_argument "Lb_policy.choose: no candidates")
    (fun () ->
      ignore (Lb_policy.choose Lb_policy.Ecmp ~rng ~pkt:(data 0) ~n:0 ~load:no_load))

let prop_choose_in_range =
  QCheck.Test.make ~name:"choice always within candidates" ~count:500
    QCheck.(triple (int_range 1 16) (int_range 0 10_000) (int_range 0 7))
    (fun (n, psn, which) ->
      let rng = Rng.create ~seed:9 in
      let policy = List.nth Lb_policy.all which in
      let i = Lb_policy.choose policy ~rng ~pkt:(data psn) ~n ~load:no_load in
      i >= 0 && i < n)

(* ------------------------------------------------------------------ *)
(* Rival sprayers: per-policy behavioural invariants (the oracles the
   arena fuzz layer asserts, exercised here directly). *)

let counter name = List.assoc name (Lb_state.counters ())

(* REPS recycles clean-ACKed entropies oldest-first, and falls back to
   fresh randomness once the cache drains. *)
let test_reps_recycles_fifo () =
  Lb_state.reset_globals ();
  let st = Lb_state.create () in
  let rng = Rng.create ~seed:10 in
  List.iter
    (fun e -> Lb_state.reps_feedback st ~conn_id:0 ~entropy:e ~ce:false)
    [ 111; 222; 333 ];
  List.iter
    (fun e ->
      Alcotest.(check int) "fifo recycle" e
        (Lb_state.reps_next st ~conn_id:0 ~rng))
    [ 111; 222; 333 ];
  ignore (Lb_state.reps_next st ~conn_id:0 ~rng);
  Alcotest.(check int) "recycled" 3 (counter "reps_recycled");
  Alcotest.(check int) "fresh after drain" 1 (counter "reps_fresh");
  Alcotest.(check int) "tainted recycled" 0 (counter "reps_tainted_recycled")

(* A CE-marked echo evicts the entropy from the cache: the next pick
   must come from the RNG, not the ring. *)
let test_reps_ce_evicts () =
  Lb_state.reset_globals ();
  let st = Lb_state.create () in
  let rng = Rng.create ~seed:11 in
  Lb_state.reps_feedback st ~conn_id:0 ~entropy:42 ~ce:false;
  Lb_state.reps_feedback st ~conn_id:0 ~entropy:42 ~ce:true;
  ignore (Lb_state.reps_next st ~conn_id:0 ~rng);
  Alcotest.(check int) "nothing recycled" 0 (counter "reps_recycled");
  Alcotest.(check int) "fresh instead" 1 (counter "reps_fresh")

(* The REPS invariant proper, under arbitrary echo/pick interleavings:
   an entropy whose last echo saw ECN is never served from the cache.
   The mirror tracks taint with the same clean-echo-rehabilitates
   semantics; the small entropy domain keeps it under the module's
   eviction caps so the mirror stays exact. *)
let prop_reps_never_recycles_tainted =
  QCheck.Test.make ~name:"REPS never recycles a tainted entropy" ~count:200
    QCheck.(
      pair (int_range 0 9999)
        (list_of_size Gen.(int_range 1 60) (pair (int_range 0 7) bool)))
    (fun (seed, ops) ->
      Lb_state.reset_globals ();
      let st = Lb_state.create () in
      let rng = Rng.create ~seed in
      let tainted = Hashtbl.create 8 in
      let ok = ref true in
      List.iter
        (fun (e, ce) ->
          Lb_state.reps_feedback st ~conn_id:0 ~entropy:e ~ce;
          if ce then Hashtbl.replace tainted e ()
          else Hashtbl.remove tainted e;
          let before = counter "reps_recycled" in
          let r = Lb_state.reps_next st ~conn_id:0 ~rng in
          let recycled = counter "reps_recycled" > before in
          if recycled && Hashtbl.mem tainted r then ok := false)
        ops;
      !ok && counter "reps_tainted_recycled" = 0)

(* PRIME's entropy is a (12-bit pseudo-random base, 4-bit adaptive)
   composition: the adaptive part never disturbs the base bits, and
   distinct adaptive parts always yield distinct entropies. *)
let prop_prime_parts_injective =
  QCheck.Test.make ~name:"PRIME entropy parts compose injectively" ~count:300
    QCheck.(triple (int_range 0 10_000) (int_range 0 15) (int_range 0 15))
    (fun (psn, k1, k2) ->
      let rng = Rng.create ~seed:12 in
      let sport_after k =
        let st = Lb_state.create () in
        let pkt = data psn in
        for _ = 1 to k do
          Lb_state.prime_feedback st ~conn_id:pkt.Packet.conn_id ~ce:true
        done;
        ignore
          (Lb_policy.choose ~state:st Lb_policy.Prime ~rng ~pkt ~n:4
             ~load:no_load);
        pkt.Packet.udp_sport
      in
      let e1 = sport_after k1 and e2 = sport_after k2 in
      e1 land 0xFFF = e2 land 0xFFF
      && (if k1 = k2 then e1 = e2 else e1 <> e2))

(* Sprinklers' no-overtake condition: whenever the flow's output
   changes, the new queue was at least as deep as the old one at
   decision time — under symmetric rates that is exactly the
   reordering-free guarantee.  Queues evolve with the flow's own bytes
   plus random cross-traffic and drain. *)
let prop_sprinklers_no_overtake =
  QCheck.Test.make
    ~name:"Sprinklers switches only to deeper-or-equal queues" ~count:150
    QCheck.(
      pair (int_range 0 9999) (list_of_size Gen.(int_range 1 200) (int_range 500 1500)))
    (fun (seed, sizes) ->
      let st = Lb_state.create () in
      let churn = Rng.create ~seed in
      let n = 4 in
      let q = Array.make n 0 in
      let ok = ref true in
      let prev = ref (-1) in
      List.iter
        (fun bytes ->
          let snap = Array.copy q in
          let i =
            Lb_state.sprinkler_choose st ~conn_id:0 ~bytes ~n ~load:(fun j ->
                q.(j))
          in
          if !prev >= 0 && i <> !prev && snap.(i) < snap.(!prev) then
            ok := false;
          prev := i;
          q.(i) <- q.(i) + bytes;
          for j = 0 to n - 1 do
            q.(j) <-
              Stdlib.max 0 (q.(j) + Rng.int churn 500 - Rng.int churn 2000)
          done)
        sizes;
      !ok)

(* Differential uniformity check: on a symmetric fabric (equal loads,
   uniform weights) every spraying policy must spread its packets close
   to evenly.  Chi-squared with df = 3; 30 is far beyond the p = 0.001
   cut of 16.3, so only a systematically skewed policy trips it. *)
let chi2 counts =
  let total = Array.fold_left ( + ) 0 counts in
  let e = float_of_int total /. float_of_int (Array.length counts) in
  Array.fold_left
    (fun acc c ->
      let d = float_of_int c -. e in
      acc +. (d *. d /. e))
    0. counts

let test_spraying_uniformity_differential () =
  let n = 4 in
  let weights = Array.make n 1 in
  List.iter
    (fun policy ->
      Lb_state.reset_globals ();
      let st = Lb_state.create () in
      let rng = Rng.create ~seed:13 in
      let counts = Array.make n 0 in
      for psn = 0 to 3999 do
        let i =
          Lb_policy.choose ~state:st ~weights policy ~rng ~pkt:(data psn) ~n
            ~load:no_load
        in
        counts.(i) <- counts.(i) + 1
      done;
      let x = chi2 counts in
      if x >= 30. then
        Alcotest.failf "%s skewed on symmetric fabric: chi2=%.1f [%s]"
          (Lb_policy.to_string policy) x
          (String.concat ";"
             (Array.to_list (Array.map string_of_int counts))))
    Lb_policy.
      [ Random_spray; Psn_spray; Reps; Prime; Sprinklers; Spritz ]

let () =
  Alcotest.run "lb_policy"
    [
      ( "policies",
        [
          Alcotest.test_case "strings" `Quick test_strings;
          Alcotest.test_case "ecmp stable" `Quick test_ecmp_stable;
          Alcotest.test_case "ecmp index" `Quick test_ecmp_matches_index;
          Alcotest.test_case "random spread" `Quick test_random_spray_spread;
          Alcotest.test_case "adaptive min" `Quick test_adaptive_picks_min;
          Alcotest.test_case "adaptive ties" `Quick test_adaptive_tie_break_uniform;
          Alcotest.test_case "psn spray Eq.1" `Quick test_psn_spray_eq1;
          Alcotest.test_case "control ecmp" `Quick test_control_always_ecmp;
          Alcotest.test_case "single candidate" `Quick test_single_candidate;
          Alcotest.test_case "no candidates" `Quick test_no_candidates;
          QCheck_alcotest.to_alcotest prop_choose_in_range;
        ] );
      ( "rivals",
        [
          Alcotest.test_case "reps fifo recycle" `Quick test_reps_recycles_fifo;
          Alcotest.test_case "reps ce evicts" `Quick test_reps_ce_evicts;
          QCheck_alcotest.to_alcotest prop_reps_never_recycles_tainted;
          QCheck_alcotest.to_alcotest prop_prime_parts_injective;
          QCheck_alcotest.to_alcotest prop_sprinklers_no_overtake;
          Alcotest.test_case "uniformity differential" `Quick
            test_spraying_uniformity_differential;
        ] );
    ]
