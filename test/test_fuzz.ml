(* The fuzz harness's own unit tests: spec serialization roundtrips,
   generator sanity, oracle wiring on tiny deterministic scenarios, and
   shrinker termination. *)

let tiny_spec =
  {
    Fuzz_spec.seed = 7;
    shape =
      Fuzz_spec.Ls
        {
          n_leaves = 2;
          n_spines = 2;
          hosts_per_leaf = 2;
          host_gbps = 100;
          fabric_gbps = 40;
          link_delay_ns = 500;
        };
    gbn = false;
    queue_factor_pct = 150;
    per_port_kb = 9216;
    jitter_ns = 0;
    drop_ppm = 0;
    corrupt_ppm = 0;
    dup_ppm = 0;
    delay_ppm = 0;
    delay_max_ns = 0;
    shrink_pathset = false;
    deadline_ns = 2_000_000_000;
    schemes = Fuzz_spec.all_schemes;
    transfers =
      [
        { Fuzz_spec.src = 0; dst = 2; bytes = 12_000; start_ns = 0 };
        { Fuzz_spec.src = 3; dst = 1; bytes = 4_500; start_ns = 1_000 };
      ];
    link_faults = [];
    slow_spine = None;
  }

(* to_string/of_string is an exact inverse on every generated spec. *)
let prop_roundtrip_quick =
  QCheck.Test.make ~name:"spec roundtrip (quick profile)" ~count:300
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let spec = Fuzz_spec.generate ~profile:Fuzz_spec.Quick ~seed () in
      Fuzz_spec.of_string (Fuzz_spec.to_string spec) = Ok spec)

let prop_roundtrip_soak =
  QCheck.Test.make ~name:"spec roundtrip (soak profile)" ~count:100
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let spec = Fuzz_spec.generate ~profile:Fuzz_spec.Soak ~seed () in
      Fuzz_spec.of_string (Fuzz_spec.to_string spec) = Ok spec)

(* Generated specs are well-formed: hosts in range, no self-loops,
   faults only on fabric links of multi-spine leaf-spine shapes. *)
let prop_generated_well_formed =
  QCheck.Test.make ~name:"generated specs are well-formed" ~count:300
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let spec = Fuzz_spec.generate ~seed () in
      let n = Fuzz_spec.n_hosts_of_shape spec.Fuzz_spec.shape in
      List.for_all
        (fun tr ->
          tr.Fuzz_spec.src <> tr.Fuzz_spec.dst
          && tr.Fuzz_spec.src >= 0 && tr.Fuzz_spec.src < n
          && tr.Fuzz_spec.dst >= 0 && tr.Fuzz_spec.dst < n
          && tr.Fuzz_spec.bytes > 0)
        spec.Fuzz_spec.transfers
      && List.for_all
           (fun f -> f.Fuzz_spec.fault_link >= n)
           spec.Fuzz_spec.link_faults
      && (spec.Fuzz_spec.link_faults = []
         ||
         match spec.Fuzz_spec.shape with
         | Fuzz_spec.Ls { n_spines; _ } -> n_spines >= 2
         | Fuzz_spec.Ft _ -> false))

let test_roundtrip_handwritten () =
  let s = Fuzz_spec.to_string tiny_spec in
  Alcotest.(check bool) "exact roundtrip" true
    (Fuzz_spec.of_string s = Ok tiny_spec)

let test_of_string_gen () =
  Alcotest.(check bool) "gen:N = generate quick" true
    (Fuzz_spec.of_string "gen:42" = Ok (Fuzz_spec.generate ~seed:42 ()));
  Alcotest.(check bool) "gen:N:soak = generate soak" true
    (Fuzz_spec.of_string "gen:42:soak"
    = Ok (Fuzz_spec.generate ~profile:Fuzz_spec.Soak ~seed:42 ()))

let test_of_string_errors () =
  let is_err = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "garbage" true (is_err (Fuzz_spec.of_string "nope"));
  Alcotest.(check bool) "bad version" true
    (is_err (Fuzz_spec.of_string "fz9;seed=1"));
  Alcotest.(check bool) "truncated" true
    (is_err (Fuzz_spec.of_string "fz1;seed=1;shape=ls:2:2:2:100:40:500"))

(* A clean two-flow scenario holds every oracle under every scheme. *)
let test_tiny_run_all_schemes () =
  List.iter
    (fun o ->
      Alcotest.(check (list string))
        (Printf.sprintf "no violations under %s" o.Fuzz_run.o_scheme)
        []
        (List.map
           (fun v -> v.Fuzz_oracle.oracle ^ ": " ^ v.Fuzz_oracle.detail)
           o.Fuzz_run.o_violations))
    (Fuzz_run.run tiny_spec)

(* Out-of-range hosts and fat-tree link faults are rejected, not run. *)
let test_bad_specs_rejected () =
  let bad_host =
    {
      tiny_spec with
      Fuzz_spec.transfers =
        [ { Fuzz_spec.src = 0; dst = 99; bytes = 1_000; start_ns = 0 } ];
    }
  in
  (match Fuzz_run.run_scheme bad_host ~scheme:"ecmp" with
  | exception Fuzz_run.Bad_spec _ -> ()
  | _ -> Alcotest.fail "host out of range accepted");
  let bad_fault =
    {
      tiny_spec with
      Fuzz_spec.link_faults =
        [ { Fuzz_spec.fault_link = 0; down_ns = 0; up_ns = 0 } ];
    }
  in
  match Fuzz_run.run_scheme bad_fault ~scheme:"ecmp" with
  | exception Fuzz_run.Bad_spec _ -> ()
  | _ -> Alcotest.fail "host-link fault accepted"

(* Minimizing a passing spec is a no-op that stays within budget. *)
let test_shrink_passing_is_noop () =
  let r = Fuzz_shrink.minimize ~budget:16 ~spec:tiny_spec ~scheme:"themis" () in
  Alcotest.(check bool) "not shrunk" false r.Fuzz_shrink.shrunk;
  Alcotest.(check bool) "within budget" true (r.Fuzz_shrink.runs_used <= 16);
  Alcotest.(check bool) "schemes narrowed" true
    (r.Fuzz_shrink.minimized.Fuzz_spec.schemes = [ "themis" ])

(* Every shrink candidate strictly reduces the cost metric the greedy
   loop keys on — the termination argument for [minimize]. *)
let prop_candidates_reduce_cost =
  QCheck.Test.make ~name:"accepted shrink candidates reduce cost" ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let spec = Fuzz_spec.generate ~seed () in
      let cost = Fuzz_spec.cost spec in
      (* Not all candidates must reduce cost (some are filtered by the
         loop), but at least one must whenever the spec is non-minimal,
         and none may *increase* packet count. *)
      List.for_all
        (fun c -> Fuzz_spec.cost c <= cost)
        (Fuzz_shrink.candidates spec))

let () =
  Alcotest.run "fuzz"
    [
      ( "spec",
        [
          QCheck_alcotest.to_alcotest prop_roundtrip_quick;
          QCheck_alcotest.to_alcotest prop_roundtrip_soak;
          QCheck_alcotest.to_alcotest prop_generated_well_formed;
          Alcotest.test_case "handwritten roundtrip" `Quick
            test_roundtrip_handwritten;
          Alcotest.test_case "gen: shorthand" `Quick test_of_string_gen;
          Alcotest.test_case "parse errors" `Quick test_of_string_errors;
        ] );
      ( "run",
        [
          Alcotest.test_case "tiny run, all schemes" `Quick
            test_tiny_run_all_schemes;
          Alcotest.test_case "bad specs rejected" `Quick
            test_bad_specs_rejected;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "passing spec no-op" `Quick
            test_shrink_passing_is_noop;
          QCheck_alcotest.to_alcotest prop_candidates_reduce_cost;
        ] );
    ]
