(* Campaign subsystem tests: spec/job serialization round-trips, frozen
   store hashes (the on-disk contract — changing the serialization
   silently orphans every store and baseline, so the hashes are pinned
   here as literals), store cache semantics including corrupt-file
   recovery, serial-vs-forked pool byte-identity on a mini campaign,
   and the regression gate's perturbation detection. *)

let spec = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let contains s sub = find_sub s sub <> None

let replace_once s ~sub ~by =
  match find_sub s sub with
  | None -> s
  | Some i ->
      String.sub s 0 i ^ by
      ^ String.sub s (i + String.length sub)
          (String.length s - i - String.length sub)

(* ------------------------------------------------------------------ *)
(* Generators. *)

let scheme_pool =
  [ "ecmp"; "adaptive"; "random-spray"; "psn-spray-only"; "themis";
    "themis-nocomp" ]

let coll_pool =
  [ "allreduce"; "hd-allreduce"; "alltoall"; "allgather"; "reduce-scatter" ]

let transport_pool = [ "sr"; "gbn"; "ideal" ]
let wname_pool = [ "mix"; "sweep"; "failures" ]

let gen_fabric =
  QCheck.Gen.(
    oneof
      [
        return Campaign_spec.Eval8;
        return Campaign_spec.Paper;
        map
          (fun (((leaves, spines), hosts), gbps) ->
            Campaign_spec.Ls_fab { leaves; spines; hosts; gbps })
          (pair (pair (pair (int_range 1 16) (int_range 1 16)) (int_range 1 16))
             (oneofl [ 40; 100; 200; 400 ]));
      ])

(* Axis generators: possibly-empty (of_string tolerates an empty axis;
   validate rejects it per-target) and non-empty. *)
let opt_axis g = QCheck.Gen.(list_size (int_range 0 3) g)
let nonempty_axis g = QCheck.Gen.(list_size (int_range 1 3) g)

let gen_spec =
  QCheck.Gen.(
    let* name = oneofl [ "quick"; "night-7"; "a_b"; "x0" ] in
    let* target =
      oneofl
        Campaign_spec.[ Fig1; Fig5; Incast; Ablation; Fuzz_sweep; Workload; Arena ]
    in
    let* fabrics = opt_axis gen_fabric in
    let* transports = opt_axis (oneofl transport_pool) in
    let* schemes = opt_axis (oneofl scheme_pool) in
    let* colls = opt_axis (oneofl coll_pool) in
    let* mbs = opt_axis (int_range 1 64) in
    let* dcqcn = opt_axis (pair (int_range 1 1000) (int_range 1 200)) in
    let* fanins = opt_axis (int_range 1 32) in
    let* studies = opt_axis (oneofl Campaign_spec.studies_known) in
    let* wnames = opt_axis (oneofl wname_pool) in
    let* loads = opt_axis (int_range 1 200) in
    let* scens = opt_axis (oneofl Arena_scen.known) in
    let* profile = oneofl [ "quick"; "soak" ] in
    let* seeds = nonempty_axis (int_range 0 9999) in
    return
      {
        Campaign_spec.name;
        target;
        fabrics;
        transports;
        schemes;
        colls;
        mbs;
        dcqcn;
        fanins;
        studies;
        wnames;
        loads;
        scens;
        profile;
        seeds;
      })

let gen_job =
  QCheck.Gen.(
    oneof
      [
        map
          (fun ((transport, mb), seed) ->
            Campaign_spec.Fig1_job { transport; mb; seed })
          (pair (pair (oneofl transport_pool) (int_range 1 64)) (int_range 0 999));
        map
          (fun ((((fabric, scheme), coll), (mb, (ti_us, td_us))), seed) ->
            Campaign_spec.Fig5_job
              { fabric; scheme; coll; mb; ti_us; td_us; seed })
          (pair
             (pair
                (pair (pair gen_fabric (oneofl scheme_pool)) (oneofl coll_pool))
                (pair (int_range 1 64)
                   (pair (int_range 1 1000) (int_range 1 200))))
             (int_range 0 999));
        map
          (fun (((scheme, fanin), mb), seed) ->
            Campaign_spec.Incast_job { scheme; fanin; mb; seed })
          (pair
             (pair (pair (oneofl scheme_pool) (int_range 1 32)) (int_range 1 64))
             (int_range 0 999));
        map
          (fun (study, seed) -> Campaign_spec.Ablation_job { study; seed })
          (pair (oneofl Campaign_spec.studies_known) (int_range 0 999));
        map
          (fun (soak, seed) -> Campaign_spec.Fuzz_job { soak; seed })
          (pair bool (int_range 0 999));
        map
          (fun (((wname, wscheme), load), wseed) ->
            Campaign_spec.Workload_job { wname; wscheme; load; wseed })
          (pair
             (pair (pair (oneofl wname_pool) (oneofl scheme_pool))
                (int_range 1 200))
             (int_range 0 999));
      ])

let prop_spec_roundtrip =
  QCheck.Test.make ~name:"spec to_string/of_string exact inverse" ~count:300
    (QCheck.make gen_spec ~print:Campaign_spec.to_string)
    (fun s ->
      match Campaign_spec.of_string (Campaign_spec.to_string s) with
      | Error e -> QCheck.Test.fail_reportf "of_string failed: %s" e
      | Ok s' ->
          Campaign_spec.equal s s'
          && Campaign_spec.to_string s' = Campaign_spec.to_string s)

let prop_job_roundtrip =
  QCheck.Test.make ~name:"job to_string/of_string exact inverse" ~count:500
    (QCheck.make gen_job ~print:Campaign_spec.job_to_string)
    (fun j ->
      match Campaign_spec.job_of_string (Campaign_spec.job_to_string j) with
      | Error e -> QCheck.Test.fail_reportf "job_of_string failed: %s" e
      | Ok j' ->
          Campaign_spec.equal_job j j'
          && Campaign_spec.job_hash j' = Campaign_spec.job_hash j)

(* ------------------------------------------------------------------ *)
(* Frozen store hashes.  If one of these changes, every committed
   baseline under bench/baselines/ and every user's _campaign/ store is
   silently invalidated — bump the "cj1" version tag instead of editing
   the serialization in place. *)

let frozen_hashes =
  [
    ("cj1;fig5;fab=eval8;scheme=ecmp;coll=allreduce;mb=1;ti=900;td=4;seed=11",
     "a825435583eecb10");
    ("cj1;fig5;fab=eval8;scheme=adaptive;coll=allreduce;mb=1;ti=10;td=50;seed=11",
     "c20241f711bc12ee");
    ("cj1;fig5;fab=eval8;scheme=themis;coll=allreduce;mb=1;ti=10;td=50;seed=11",
     "437b05fae9debd92");
    ("cj1;fig1;tr=sr;mb=10;seed=7", "7062ea2f16eed10a");
    ("cj1;incast;scheme=ecmp;fanin=8;mb=1;seed=3", "98f53fe7ca69b554");
    ("cj1;ablation;study=compensation;seed=5", "3efc36d37b5e9329");
    ("cj1;fuzz;profile=quick;seed=1", "cc72a2a5a6c0418d");
    ("cj1;workload;wl=mix;scheme=themis;load=30;seed=21", "615cb165879f6650");
    ("cj1;arena;scheme=themis;scen=sym;seed=31", "d43ca30a36a3957d");
    ("cj1;arena;scheme=sprinklers;scen=cspine;seed=31", "d08bf234fef6d953");
  ]

let test_frozen_hashes () =
  List.iter
    (fun (line, hash) ->
      match Campaign_spec.job_of_string line with
      | Error e -> Alcotest.failf "cannot parse %s: %s" line e
      | Ok job ->
          spec "canonical string" line (Campaign_spec.job_to_string job);
          spec line hash (Campaign_spec.job_hash job))
    frozen_hashes;
  (* FNV-1a reference vector (64-bit, "a" = 0xaf63dc4c8601ec8c). *)
  spec "fnv1a(a)" "af63dc4c8601ec8c" (Campaign_spec.hash_string "a")

let test_presets () =
  List.iter
    (fun name ->
      match Campaign_spec.preset name with
      | None -> Alcotest.failf "preset %s missing" name
      | Some s -> (
          spec "preset name" name s.Campaign_spec.name;
          match Campaign_spec.validate s with
          | Ok () -> ()
          | Error e -> Alcotest.failf "preset %s invalid: %s" name e))
    Campaign_spec.preset_names;
  let quick = Option.get (Campaign_spec.preset "quick") in
  let jobs = Campaign_spec.jobs_of quick in
  check_int "quick grid size" 6 (List.length jobs);
  (* Expansion order is part of the contract (sharding, reports). *)
  spec "first quick job"
    "cj1;fig5;fab=eval8;scheme=ecmp;coll=allreduce;mb=1;ti=900;td=4;seed=11"
    (Campaign_spec.job_to_string (List.hd jobs))

let test_parse_errors () =
  let bad l =
    match Campaign_spec.of_string l with
    | Ok _ -> Alcotest.failf "accepted bad spec %s" l
    | Error _ -> ()
  in
  bad "cp2;name=x;target=fig5";
  bad "cp1;name=x;target=fig9;fab=;tr=;schemes=;colls=;mb=;dcqcn=;fanins=;studies=;profile=quick;seeds=1";
  bad "cp1;name=x;target=fig5;fab=;tr=;schemes=;colls=;mb=;dcqcn=;fanins=;studies=;profile=slow;seeds=1";
  bad "cp1;name=x;target=fig5;fab=;tr=;schemes=;colls=;mb=;dcqcn=5;fanins=;studies=;profile=quick;seeds=1";
  (match Campaign_spec.job_of_string "cj1;warp;seed=1" with
  | Ok _ -> Alcotest.fail "accepted unknown job kind"
  | Error _ -> ());
  let no_seeds =
    { (Option.get (Campaign_spec.preset "quick")) with Campaign_spec.seeds = [] }
  in
  match Campaign_spec.validate no_seeds with
  | Ok () -> Alcotest.fail "validated empty seed axis"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Result records. *)

let test_result_roundtrip () =
  let job =
    Campaign_spec.Incast_job { scheme = "themis"; fanin = 4; mb = 1; seed = 3 }
  in
  let r =
    Campaign_result.make ~job
      ~metrics:[ ("fct_p50_us", 12.); ("fct_p99_us", 95.125); ("retx", 0.) ]
  in
  let json = Campaign_result.to_json_string r in
  (match Campaign_result.of_json_string json with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok r' ->
      spec "job" r.Campaign_result.job r'.Campaign_result.job;
      spec "hash" r.Campaign_result.hash r'.Campaign_result.hash;
      check_bool "metrics" true
        (r.Campaign_result.metrics = r'.Campaign_result.metrics);
      spec "canonical json" json (Campaign_result.to_json_string r'));
  (* A tampered hash must be rejected (the store treats it as a miss). *)
  let tampered =
    replace_once json ~sub:r.Campaign_result.hash ~by:"0000000000000000"
  in
  match Campaign_result.of_json_string tampered with
  | Ok _ -> Alcotest.fail "accepted hash-mismatched result"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Store semantics. *)

let fresh_dir =
  let counter = ref 0 in
  fun tag ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "themis_campaign_test_%d_%d_%s" (Unix.getpid ()) !counter
         tag)

let sample_result () =
  Campaign_result.make
    ~job:
      (Campaign_spec.Incast_job { scheme = "ecmp"; fanin = 4; mb = 1; seed = 3 })
    ~metrics:[ ("fct_p50_us", 10.); ("fct_p99_us", 20.) ]

let test_store_hit_miss () =
  let store = Campaign_store.open_ ~dir:(fresh_dir "hitmiss") in
  let r = sample_result () in
  let h = r.Campaign_result.hash in
  check_bool "miss before save" false (Campaign_store.mem store h);
  Campaign_store.save store r;
  check_bool "hit after save" true (Campaign_store.mem store h);
  (match Campaign_store.load store h with
  | None -> Alcotest.fail "load after save returned None"
  | Some r' -> spec "loaded job" r.Campaign_result.job r'.Campaign_result.job);
  (* Saving again is idempotent at the byte level. *)
  let bytes0 = Option.get (Campaign_store.raw_bytes store h) in
  Campaign_store.save store r;
  spec "idempotent save" bytes0 (Option.get (Campaign_store.raw_bytes store h))

let test_store_corrupt_recovery () =
  let store = Campaign_store.open_ ~dir:(fresh_dir "corrupt") in
  let r = sample_result () in
  let h = r.Campaign_result.hash in
  (* Truncated garbage where a result should be. *)
  let oc = open_out_bin (Campaign_store.path store h) in
  output_string oc "{\"v\":1,\"job\":\"cj1;inc";
  close_out oc;
  check_bool "corrupt file is a miss" true (Campaign_store.load store h = None);
  check_bool "corrupt file unlinked" false
    (Sys.file_exists (Campaign_store.path store h));
  (* A valid result filed under the wrong hash is also a (cleared) miss. *)
  Campaign_store.save store r;
  let wrong = String.make 16 'f' in
  let ic = open_in_bin (Campaign_store.path store h) in
  let bytes = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin (Campaign_store.path store wrong) in
  output_string oc bytes;
  close_out oc;
  check_bool "misfiled result is a miss" true
    (Campaign_store.load store wrong = None);
  check_bool "misfiled result unlinked" false
    (Sys.file_exists (Campaign_store.path store wrong));
  (* The honest slot is untouched. *)
  check_bool "real slot still valid" true (Campaign_store.mem store h)

(* ------------------------------------------------------------------ *)
(* Pool: serial reference vs forked workers. *)

let mini_jobs =
  (* Cheap incast cells, ~0.2 s each.  Fan-in 8 (the evaluated point):
     at tiny fan-ins the paper's "Themis p99 <= ECMP p99" property does
     not hold (spraying overhead dominates), so smaller grids would trip
     the gate's shape check by design. *)
  List.concat_map
    (fun seed ->
      List.map
        (fun scheme ->
          Campaign_spec.Incast_job { scheme; fanin = 8; mb = 1; seed })
        [ "ecmp"; "themis" ])
    [ 3; 4 ]

(* Run the mini campaign once, serially and with two forked workers;
   several tests below share the outcome. *)
let mini =
  lazy
    (let serial = Campaign_store.open_ ~dir:(fresh_dir "serial") in
     let forked = Campaign_store.open_ ~dir:(fresh_dir "forked") in
     let s_sum = Campaign_pool.run ~workers:1 ~store:serial mini_jobs in
     let f_sum = Campaign_pool.run ~workers:2 ~store:forked mini_jobs in
     (serial, forked, s_sum, f_sum))

let test_pool_byte_identity () =
  let serial, forked, s_sum, f_sum = Lazy.force mini in
  check_bool "serial clean" true (Campaign_pool.ok s_sum);
  check_bool "forked clean" true (Campaign_pool.ok f_sum);
  check_int "serial executed" 4 s_sum.Campaign_pool.s_executed;
  check_int "forked executed" 4 f_sum.Campaign_pool.s_executed;
  let hs = Campaign_store.list serial and hf = Campaign_store.list forked in
  check_int "same result set" (List.length hs) (List.length hf);
  List.iter2
    (fun a b ->
      spec "same hash" a b;
      spec
        (Printf.sprintf "bytes of %s" a)
        (Option.get (Campaign_store.raw_bytes serial a))
        (Option.get (Campaign_store.raw_bytes forked b)))
    hs hf

(* Interning determinism at the job boundary: Campaign_runner's fresh
   context resets the flow-id interner, so the id assignment after a job
   is a pure function of the job — unaffected by whatever was interned
   before it (earlier jobs in the same worker, or nothing at all in a
   freshly forked one).  This is the in-process half of the guarantee
   the serial-vs-forked byte-identity test observes externally. *)
let test_intern_reset_at_job_boundary () =
  let j = List.hd mini_jobs in
  let store1 = Campaign_store.open_ ~dir:(fresh_dir "intern1") in
  let sum1 = Campaign_pool.run ~workers:1 ~store:store1 [ j ] in
  check_bool "first run clean" true (Campaign_pool.ok sum1);
  let snap1 = Flow_id.intern_snapshot () in
  check_bool "job interned some flows" true (snap1 <> []);
  (* Pollute the interner: a missing per-job reset would leave this flow
     occupying id 0..n and shift the rerun's assignment. *)
  ignore (Flow_id.intern (Flow_id.make ~src:9999 ~dst:9998 ~qpn:77));
  let store2 = Campaign_store.open_ ~dir:(fresh_dir "intern2") in
  let sum2 = Campaign_pool.run ~workers:1 ~store:store2 [ j ] in
  check_bool "second run clean" true (Campaign_pool.ok sum2);
  let snap2 = Flow_id.intern_snapshot () in
  check_bool "id assignment identical across jobs" true (snap1 = snap2);
  List.iteri (fun i (id, _) -> check_int "dense id" i id) snap2

(* Arena cells run a whole fuzz scenario per job — scheme state (REPS
   caches, Sprinklers stripes) lives in Lb_state globals, so this is the
   test that the with_fresh_context reset covers them: a forked worker
   starts pristine, a serial worker inherits whatever the previous cell
   left behind, and the bytes must still match. *)
let test_arena_pool_byte_identity () =
  let jobs =
    List.map
      (fun ascheme ->
        Campaign_spec.Arena_job { ascheme; ascen = "sym"; aseed = 31 })
      [ "reps"; "sprinklers" ]
  in
  let serial = Campaign_store.open_ ~dir:(fresh_dir "arena-serial") in
  let forked = Campaign_store.open_ ~dir:(fresh_dir "arena-forked") in
  let s_sum = Campaign_pool.run ~workers:1 ~store:serial jobs in
  let f_sum = Campaign_pool.run ~workers:2 ~store:forked jobs in
  check_bool "serial clean" true (Campaign_pool.ok s_sum);
  check_bool "forked clean" true (Campaign_pool.ok f_sum);
  let hs = Campaign_store.list serial and hf = Campaign_store.list forked in
  check_int "same result set" (List.length hs) (List.length hf);
  List.iter2
    (fun a b ->
      spec "same hash" a b;
      spec
        (Printf.sprintf "bytes of %s" a)
        (Option.get (Campaign_store.raw_bytes serial a))
        (Option.get (Campaign_store.raw_bytes forked b)))
    hs hf

let test_pool_warm_rerun () =
  let _, forked, _, _ = Lazy.force mini in
  let again = Campaign_pool.run ~workers:2 ~store:forked mini_jobs in
  check_int "all cached" 4 again.Campaign_pool.s_cached;
  check_int "none executed" 0 again.Campaign_pool.s_executed;
  check_bool "clean" true (Campaign_pool.ok again)

let test_pool_dedupe () =
  let store = Campaign_store.open_ ~dir:(fresh_dir "dedupe") in
  let j = List.hd mini_jobs in
  let summary = Campaign_pool.run ~store [ j; j; j ] in
  check_int "deduped total" 1 summary.Campaign_pool.s_total;
  check_int "deduped executed" 1 summary.Campaign_pool.s_executed

(* A crashing cell is captured as a failure record carrying its
   canonical job string (the reproducer), and never aborts the rest of
   the campaign — in both the serial and the forked path. *)
let crash_capture ~workers () =
  let store = Campaign_store.open_ ~dir:(fresh_dir "crash") in
  let bad =
    Campaign_spec.Incast_job { scheme = "bogus"; fanin = 4; mb = 1; seed = 3 }
  in
  let good = List.hd mini_jobs in
  let summary =
    Campaign_pool.run ~workers ~retries:0 ~store [ bad; good ]
  in
  check_bool "campaign not ok" false (Campaign_pool.ok summary);
  check_int "one failure" 1 (List.length summary.Campaign_pool.s_failures);
  let f = List.hd summary.Campaign_pool.s_failures in
  spec "failure carries reproducer" (Campaign_spec.job_to_string bad)
    f.Campaign_pool.f_job;
  check_bool "reason is a crash" true
    (String.length f.Campaign_pool.f_reason >= 6
    && String.sub f.Campaign_pool.f_reason 0 6 = "crash:");
  (* The good cell still ran and landed in the store. *)
  check_int "good cell executed" 1 summary.Campaign_pool.s_executed;
  check_bool "good result stored" true
    (Campaign_store.mem store (Campaign_spec.job_hash good))

(* ------------------------------------------------------------------ *)
(* Gate: green on a faithful baseline, red on a perturbed one. *)

let test_gate_clean_and_perturbed () =
  let serial, _, _, _ = Lazy.force mini in
  let lookup = Campaign_store.load serial in
  let baseline =
    List.filter_map
      (fun j -> lookup (Campaign_spec.job_hash j))
      mini_jobs
  in
  check_int "baseline complete" 4 (List.length baseline);
  let v = Campaign_gate.check ~baseline ~lookup ~jobs:mini_jobs () in
  check_bool "clean gate passes" true (Campaign_gate.ok v);
  check_int "band checks" 8 v.Campaign_gate.g_band_checks;
  check_int "shape checks" 2 v.Campaign_gate.g_shape_checks;
  (* Double one p99 in the baseline: the band check must trip even
     though the simulator itself is healthy. *)
  let perturbed =
    List.mapi
      (fun i (r : Campaign_result.t) ->
        if i <> 0 then r
        else
          {
            r with
            Campaign_result.metrics =
              List.map
                (fun (k, x) -> (k, if k = "fct_p99_us" then x *. 2. else x))
                r.Campaign_result.metrics;
          })
      baseline
  in
  let v' = Campaign_gate.check ~baseline:perturbed ~lookup ~jobs:mini_jobs () in
  check_bool "perturbed baseline fails" false (Campaign_gate.ok v');
  check_int "exactly one issue" 1 (List.length v'.Campaign_gate.g_issues);
  let issue = List.hd v'.Campaign_gate.g_issues in
  check_bool "issue names the metric" true
    (contains issue.Campaign_gate.i_what "fct_p99_us")

let test_gate_missing_result () =
  let serial, _, _, _ = Lazy.force mini in
  let lookup = Campaign_store.load serial in
  let absent =
    Campaign_result.make
      ~job:
        (Campaign_spec.Incast_job
           { scheme = "ecmp"; fanin = 16; mb = 1; seed = 99 })
      ~metrics:[ ("fct_p99_us", 1.) ]
  in
  let v = Campaign_gate.check ~baseline:[ absent ] ~lookup ~jobs:[] () in
  check_bool "missing current result is an issue" false (Campaign_gate.ok v);
  (* Free-form records (bench micro rows) are never gated. *)
  let raw = Campaign_result.make_raw ~id:"bench:micro" ~metrics:[ ("x_ns", 1.) ] in
  let v' = Campaign_gate.check ~baseline:[ raw ] ~lookup ~jobs:[] () in
  check_bool "free-form record skipped" true (Campaign_gate.ok v')

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "campaign"
    [
      ( "spec",
        [
          QCheck_alcotest.to_alcotest prop_spec_roundtrip;
          QCheck_alcotest.to_alcotest prop_job_roundtrip;
          Alcotest.test_case "frozen store hashes" `Quick test_frozen_hashes;
          Alcotest.test_case "presets valid, quick grid" `Quick test_presets;
          Alcotest.test_case "parse/validate errors" `Quick test_parse_errors;
        ] );
      ( "result",
        [ Alcotest.test_case "json roundtrip + tamper" `Quick
            test_result_roundtrip ] );
      ( "store",
        [
          Alcotest.test_case "hit/miss/idempotent save" `Quick
            test_store_hit_miss;
          Alcotest.test_case "corrupt + misfiled recovery" `Quick
            test_store_corrupt_recovery;
        ] );
      ( "pool",
        [
          Alcotest.test_case "2 workers byte-identical to serial" `Quick
            test_pool_byte_identity;
          Alcotest.test_case "arena byte-identical to serial" `Quick
            test_arena_pool_byte_identity;
          Alcotest.test_case "warm rerun: 100% cached" `Quick
            test_pool_warm_rerun;
          Alcotest.test_case "hash dedupe" `Quick test_pool_dedupe;
          Alcotest.test_case "intern reset at job boundary" `Quick
            test_intern_reset_at_job_boundary;
          Alcotest.test_case "crash capture (serial)" `Quick
            (crash_capture ~workers:1);
          Alcotest.test_case "crash capture (forked)" `Quick
            (crash_capture ~workers:2);
        ] );
      ( "gate",
        [
          Alcotest.test_case "clean passes, perturbed fails" `Quick
            test_gate_clean_and_perturbed;
          Alcotest.test_case "missing result / free-form skip" `Quick
            test_gate_missing_result;
        ] );
    ]
