(* Anatomy of a NACK under Themis.

   A microscope view of the destination-ToR logic (Sections 3.3/3.4):
   we drive a Themis-D instance by hand through the exact packet arrival
   orders of the paper's Figures 4b and 4c and narrate every decision —
   the ring-queue scan that recovers the tPSN, the Eq. 3 validity test,
   and the compensation state machine. *)

let paths = 2
let conn = Flow_id.make ~src:0 ~dst:4 ~qpn:1

let data psn =
  Packet.data ~conn ~sport:100 ~psn:(Psn.of_int psn) ~payload:1000
    ~last_of_msg:false ~birth:0 ()

let nack epsn = Packet.nack ~conn ~sport:100 ~epsn:(Psn.of_int epsn) ~birth:0

let show_queue d =
  match Flow_table.find (Themis_d.flow_table d) conn with
  | None -> "[]"
  | Some e ->
      "["
      ^ String.concat "; "
          (List.map
             (fun p -> string_of_int (Psn.to_int p))
             (Psn_queue.to_list e.Flow_table.queue))
      ^ "]"

let arrive d psn =
  Themis_d.on_data d (data psn);
  Format.printf "  data PSN %d leaves the ToR   ring queue now %s@." psn
    (show_queue d)

let receive_nack d epsn =
  let before = show_queue d in
  let decision = Themis_d.on_nack d (nack epsn) in
  let verdict =
    match decision with
    | Themis_d.Forward -> "VALID  -> forwarded to the sender"
    | Themis_d.Block -> "INVALID -> blocked at the ToR"
  in
  Format.printf "  NACK(ePSN=%d) from the NIC  scan %s: %s@." epsn before verdict

let fresh () =
  Themis_d.create ~paths ~queue_capacity:32
    ~inject_nack:(fun ~conn:_ ~conn_id:_ ~sport:_ ~epsn ->
      Format.printf
        "  >> Themis-D generates NACK(ePSN=%d) on the RNIC's behalf@."
        (Psn.to_int epsn))
    ()

let () =
  Format.printf
    "Two equal-cost paths; Eq. 1 sends even PSNs one way, odd the other.@.";
  Format.printf "@.== Figure 4b: identifying the tPSN and filtering ==@.";
  let d = fresh () in
  List.iter (arrive d) [ 0; 1; 3 ];
  Format.printf "  (PSN 2 is merely late on the other path)@.";
  receive_nack d 2;
  arrive d 2;
  List.iter (arrive d) [ 6; 4 ];
  Format.printf "  (tPSN 6 shares ePSN 4's path: that loss is real)@.";
  receive_nack d 4;

  Format.printf "@.== Figure 4c: compensating a blocked NACK ==@.";
  let d2 = fresh () in
  List.iter (arrive d2) [ 0; 1; 3 ];
  receive_nack d2 2;
  Format.printf "  (BePSN=2 armed; PSN 2 was in fact dropped in the fabric)@.";
  arrive d2 4;
  Format.printf
    "  (4 mod 2 = 2 mod 2: a later packet on PSN 2's own path arrived, so 2 is lost)@.";

  let s1 = Themis_d.stats d and s2 = Themis_d.stats d2 in
  Format.printf
    "@.Totals: %d NACKs seen, %d blocked, %d forwarded valid, %d compensated.@."
    (s1.Themis_d.nacks_seen + s2.Themis_d.nacks_seen)
    (s1.Themis_d.nacks_blocked + s2.Themis_d.nacks_blocked)
    (s1.Themis_d.nacks_forwarded_valid + s2.Themis_d.nacks_forwarded_valid)
    (s1.Themis_d.compensation_sent + s2.Themis_d.compensation_sent)
