(* Workload generator driver.

     themis_workload_cli run      --preset mix --scheme themis   -- one scenario
     themis_workload_cli run      --spec 'wl1;...' --scheme ecmp,themis
     themis_workload_cli describe --preset failures              -- spec, load math
     themis_workload_cli presets                                 -- named scenarios

   A workload spec is a one-line, integer-exact description of a
   production-style scenario: open-loop arrivals at a target load
   factor, a flow-size distribution, collective overlays and a failure
   script.  Campaign presets (mix / load-sweep / failures) run the same
   specs under the orchestrator with frozen baselines. *)

open Cmdliner

let spec_term =
  let spec_s =
    Arg.(value & opt (some string) None
         & info [ "spec" ] ~docv:"SPEC" ~doc:"A wl1;... workload spec line.")
  in
  let preset_s =
    Arg.(value & opt (some string) None
         & info [ "preset" ] ~docv:"NAME"
             ~doc:(Printf.sprintf "Named workload: %s."
                     (String.concat ", " Workload_spec.preset_names)))
  in
  let resolve spec_s preset_s =
    match (spec_s, preset_s) with
    | Some _, Some _ -> Error "--spec and --preset are mutually exclusive"
    | Some s, None -> Workload_spec.of_string s
    | None, Some p -> (
        match Workload_spec.preset p with
        | Some spec -> Ok spec
        | None ->
            Error
              (Printf.sprintf "unknown preset %S (have: %s)" p
                 (String.concat ", " Workload_spec.preset_names)))
    | None, None -> Error "one of --spec or --preset is required"
  in
  Term.(const resolve $ spec_s $ preset_s)

let with_spec spec_r f =
  match spec_r with
  | Error e ->
      Format.eprintf "workload: %s@." e;
      2
  | Ok spec -> (
      match Workload_spec.validate spec with
      | Error e ->
          Format.eprintf "workload: invalid spec: %s@." e;
          2
      | Ok () -> f spec)

let override ~load ~seed ~flows (spec : Workload_spec.t) =
  let spec =
    match load with
    | Some l -> { spec with Workload_spec.load_pct = l }
    | None -> spec
  in
  let spec =
    match seed with Some s -> { spec with Workload_spec.wseed = s } | None -> spec
  in
  match flows with
  | Some f -> { spec with Workload_spec.n_flows = f }
  | None -> spec

let load_arg =
  Arg.(value & opt (some int) None
       & info [ "load" ] ~docv:"PCT" ~doc:"Override the spec's load factor.")

let seed_arg =
  Arg.(value & opt (some int) None
       & info [ "seed" ] ~docv:"N" ~doc:"Override the spec's seed.")

let flows_arg =
  Arg.(value & opt (some int) None
       & info [ "flows" ] ~docv:"N" ~doc:"Override the open-loop flow count.")

(* ------------------------------------------------------------------ *)
(* run *)

let run_cmd =
  let schemes_arg =
    Arg.(value & opt string "themis"
         & info [ "scheme" ] ~docv:"S[,S...]"
             ~doc:"Routing scheme(s): ecmp, adaptive, random-spray, themis, ...")
  in
  let shards_arg =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"N"
             ~doc:"Accepted for symmetry with the campaign CLI.  Open-loop \
                   workload scenarios (arrival streams, failure scripts, \
                   collective overlays) are not yet shardable, so any \
                   value falls back to the serial runner with a note.")
  in
  let run spec_r schemes_s load seed flows shards =
    with_spec spec_r (fun spec ->
        let spec = override ~load ~seed ~flows spec in
        let schemes = String.split_on_char ',' schemes_s in
        if shards > 1 then
          Format.eprintf
            "workload: open-loop scenarios are not yet shardable; running \
             serially (--shards %d has no effect)@."
            shards;
        Format.printf "spec: %s@." (Workload_spec.to_string spec);
        let rc = ref 0 in
        List.iter
          (fun scheme ->
            match Workload_run.run ~scheme spec with
            | r ->
                Format.printf "%a@." Workload_run.pp r;
                if r.Workload_run.r_completed < r.Workload_run.r_offered then
                  rc := 1
            | exception Workload_run.Bad_workload e ->
                Format.eprintf "workload: %s@." e;
                rc := 2)
          schemes;
        !rc)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a workload spec under one or more schemes")
    Term.(const run $ spec_term $ schemes_arg $ load_arg $ seed_arg $ flows_arg
          $ shards_arg)

(* ------------------------------------------------------------------ *)
(* describe *)

let describe spec =
  let open Workload_spec in
  let cap = Workload_run.capacity_bps spec in
  let mean = Flow_size.mean_bytes spec.dist in
  let rate =
    Arrival.flows_per_sec ~load_pct:spec.load_pct ~capacity_bps:cap
      ~mean_flow_bytes:mean
  in
  Format.printf "spec:          %s@." (to_string spec);
  Format.printf "fabric:        %s (%d hosts)@."
    (Fuzz_spec.shape_to_string spec.shape)
    (Fuzz_spec.n_hosts_of_shape spec.shape);
  Format.printf "bisection bw:  %.1f Gbps@." (cap /. 1e9);
  Format.printf "flow size:     %s (mean %.0f B, max %d B)@."
    (Flow_size.to_string spec.dist) mean (Flow_size.max_bytes spec.dist);
  Format.printf "arrivals:      %s at %d%% load = %.0f flows/s (gap %.1f us)@."
    (Arrival.process_to_string spec.arrival)
    spec.load_pct rate (1e6 /. rate);
  Format.printf "open-loop:     %d flows (~%.2f ms of arrivals)@." spec.n_flows
    (float_of_int spec.n_flows /. rate *. 1e3);
  List.iter
    (fun c ->
      Format.printf "collective:    %s x%d ranks, %d B, %d iters @@ %d ns@."
        c.coll c.ranks c.coll_bytes c.iters c.coll_start_ns)
    spec.colls;
  let compiled = Failure_script.compile ~shape:spec.shape spec.failures in
  if spec.failures <> [] then
    Format.printf "failures:      %d link events, %d storms@."
      (List.length compiled.Failure_script.link_faults)
      (List.length compiled.Failure_script.storms);
  Format.printf "deadline:      %.1f ms@." (float_of_int spec.deadline_ns /. 1e6);
  0

let describe_cmd =
  let run spec_r load seed flows =
    with_spec spec_r (fun spec -> describe (override ~load ~seed ~flows spec))
  in
  Cmd.v
    (Cmd.info "describe"
       ~doc:"Print a spec's derived load math without running it")
    Term.(const run $ spec_term $ load_arg $ seed_arg $ flows_arg)

(* ------------------------------------------------------------------ *)
(* presets *)

let presets_cmd =
  let run () =
    List.iter
      (fun name ->
        let spec = Option.get (Workload_spec.preset name) in
        Printf.printf "%-10s %s\n" name (Workload_spec.to_string spec))
      Workload_spec.preset_names;
    0
  in
  Cmd.v
    (Cmd.info "presets" ~doc:"List the named workload scenarios")
    Term.(const run $ const ())

let default = Term.(ret (const (`Help (`Pager, None))))

let () =
  exit
    (Cmd.eval'
       (Cmd.group ~default
          (Cmd.info "themis_workload_cli"
             ~doc:"Streaming workload generator: trace-driven flow sizes, \
                   open-loop arrivals, collective overlays, failure scripts")
          [ run_cmd; describe_cmd; presets_cmd ]))
