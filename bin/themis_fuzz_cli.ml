(* Fuzz-harness driver.

     themis_fuzz_cli quick            -- CI sweep: generated scenarios, all schemes
     themis_fuzz_cli soak             -- bigger fabrics/messages, open-ended sweep
     themis_fuzz_cli replay '<spec>'  -- re-run a printed spec (or gen:<seed>)
     themis_fuzz_cli show '<spec>'    -- print what a spec/seed expands to

   Every failure is shrunk and printed as a one-line replay command, so
   a red run always ends with a copy-pasteable reproducer. *)

open Cmdliner

let log line = print_endline line

let print_report (r : Fuzz_harness.report) =
  Format.printf
    "@.%d specs, %d runs (%d determinism double-runs), %.1f s: %s@." r.Fuzz_harness.r_specs
    r.Fuzz_harness.r_runs r.Fuzz_harness.r_det_checks r.Fuzz_harness.r_wall_s
    (if Fuzz_harness.ok r then "all oracles held"
     else Printf.sprintf "%d FAILURE(S)" (List.length r.Fuzz_harness.r_failures));
  List.iter
    (fun (f : Fuzz_harness.failure) ->
      Format.printf "  seed %d / %s: %s@." f.Fuzz_harness.f_seed
        f.Fuzz_harness.f_scheme
        (String.concat "; "
           (List.map
              (Format.asprintf "%a" Fuzz_oracle.pp_violation)
              f.Fuzz_harness.f_violations));
      let repro =
        match f.Fuzz_harness.f_minimized with
        | Some m -> m
        | None ->
            { f.Fuzz_harness.f_spec with
              Fuzz_spec.schemes = [ f.Fuzz_harness.f_scheme ] }
      in
      Format.printf "    %s@." (Fuzz_harness.repro_line repro))
    r.Fuzz_harness.r_failures;
  if Fuzz_harness.ok r then 0 else 1

let specs_arg ~default =
  Arg.(value & opt int default
       & info [ "specs" ] ~doc:"Number of generated scenarios.")

let seed_arg ~default =
  Arg.(value & opt int default & info [ "seed" ] ~doc:"First generation seed.")

let budget_arg =
  Arg.(value & opt float 0.
       & info [ "budget-s" ]
           ~doc:"Stop generating new scenarios after this many seconds \
                 (0 = no budget).")

let quick_cmd =
  let run specs seed budget_s =
    print_report (Fuzz_harness.quick ~specs ~seed ~budget_s ~log ())
  in
  Cmd.v
    (Cmd.info "quick" ~doc:"CI sweep: small scenarios, every scheme")
    Term.(const run $ specs_arg ~default:200 $ seed_arg ~default:1 $ budget_arg)

let soak_cmd =
  let run specs seed budget_s =
    print_report (Fuzz_harness.soak ~specs ~seed ~budget_s ~log ())
  in
  Cmd.v
    (Cmd.info "soak" ~doc:"Deep sweep: bigger fabrics, messages and faults")
    Term.(const run $ specs_arg ~default:2000 $ seed_arg ~default:1000000
          $ budget_arg)

let spec_arg =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"SPEC" ~doc:"A printed spec line or gen:<seed>[:soak].")

let shards_arg =
  Arg.(value & opt int 1
       & info [ "shards" ] ~docv:"N"
           ~doc:"Replay across $(docv) simulation domains (Shard_run). \
                 The spec must be shardable: leaf-spine shape, ppm fault \
                 knobs zero, at most one shard per leaf.")

let replay_sharded ~shards spec_s =
  match Fuzz_spec.of_string spec_s with
  | Error e ->
      Format.eprintf "replay: %s@." e;
      2
  | Ok spec -> (
      match Shard_part.supported spec ~shards with
      | Error e ->
          Format.eprintf "replay: spec cannot run sharded: %s@." e;
          2
      | Ok () -> (
          match
            List.map
              (fun scheme -> Shard_run.run_scheme_safe spec ~scheme ~shards)
              (Fuzz_run.schemes_of spec)
          with
          | exception Shard_run.Unsupported e ->
              Format.eprintf "replay: %s@." e;
              2
          | outcomes ->
              List.iter
                (fun o -> log (Format.asprintf "%a" Fuzz_run.pp_outcome o))
                outcomes;
              if List.exists Fuzz_run.failed outcomes then 1 else 0))

let replay_cmd =
  let run spec_s shards =
    if shards > 1 then replay_sharded ~shards spec_s
    else
      match Fuzz_harness.replay ~log spec_s with
      | Error e ->
          Format.eprintf "replay: %s@." e;
          2
      | Ok r -> print_report r
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Re-run one spec under its schemes, verifying determinism")
    Term.(const run $ spec_arg $ shards_arg)

let show_cmd =
  let run spec_s =
    match Fuzz_spec.of_string spec_s with
    | Error e ->
        Format.eprintf "show: %s@." e;
        2
    | Ok spec ->
        print_endline (Fuzz_spec.to_string spec);
        0
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Expand a spec or gen:<seed> to its full form")
    Term.(const run $ spec_arg)

let default = Term.(ret (const (`Help (`Pager, None))))

let () =
  exit
    (Cmd.eval'
       (Cmd.group ~default
          (Cmd.info "themis_fuzz_cli"
             ~doc:"Deterministic fault-injection fuzz harness")
          [ quick_cmd; soak_cmd; replay_cmd; show_cmd ]))
