(* Campaign orchestrator driver.

     themis_campaign_cli run    --preset fig5a --workers 4   -- execute a sweep
     themis_campaign_cli resume --preset fig5a               -- warm rerun (cache)
     themis_campaign_cli report --preset fig5a               -- tables from the store
     themis_campaign_cli gate   --preset quick               -- diff vs frozen baseline
     themis_campaign_cli freeze --preset quick               -- write a new baseline
     themis_campaign_cli exec '<job>'                        -- one job, serial
     themis_campaign_cli jobs   --preset fig5a               -- grid + store keys

   A campaign expands a declarative spec into a cartesian job grid,
   fans the jobs out over a Unix-fork worker pool, and files every
   result under _campaign/<hash>.json — so interrupted campaigns
   resume for free and warm reruns execute nothing. *)

open Cmdliner

let log line = print_endline line

(* ------------------------------------------------------------------ *)
(* Common options *)

let store_arg =
  Arg.(value & opt string "_campaign"
       & info [ "store" ] ~docv:"DIR" ~doc:"Result store directory.")

let spec_term =
  let spec_s =
    Arg.(value & opt (some string) None
         & info [ "spec" ] ~docv:"SPEC" ~doc:"A cp1;... campaign spec line.")
  in
  let preset_s =
    Arg.(value & opt (some string) None
         & info [ "preset" ] ~docv:"NAME"
             ~doc:(Printf.sprintf "Named campaign: %s."
                     (String.concat ", " Campaign_spec.preset_names)))
  in
  let resolve spec_s preset_s =
    match (spec_s, preset_s) with
    | Some _, Some _ -> Error "--spec and --preset are mutually exclusive"
    | Some s, None -> Campaign_spec.of_string s
    | None, Some p -> (
        match Campaign_spec.preset p with
        | Some spec -> Ok spec
        | None ->
            Error
              (Printf.sprintf "unknown preset %S (have: %s)" p
                 (String.concat ", " Campaign_spec.preset_names)))
    | None, None -> Error "one of --spec or --preset is required"
  in
  Term.(const resolve $ spec_s $ preset_s)

let with_spec spec_r f =
  match spec_r with
  | Error e ->
      Format.eprintf "campaign: %s@." e;
      2
  | Ok spec -> (
      match Campaign_spec.validate spec with
      | Error e ->
          Format.eprintf "campaign: invalid spec: %s@." e;
          2
      | Ok () -> f spec)

let default_baseline (spec : Campaign_spec.t) =
  Filename.concat "bench/baselines" (spec.Campaign_spec.name ^ ".json")

let baseline_arg =
  Arg.(value & opt (some string) None
       & info [ "baseline" ] ~docv:"FILE"
           ~doc:"Baseline file (default: bench/baselines/<name>.json).")

let lookup_in store hash = Campaign_store.load store hash

(* ------------------------------------------------------------------ *)
(* run / resume *)

let exec_campaign spec ~store_dir ~workers ~timeout_s ~retries ~force ~quiet =
  let store = Campaign_store.open_ ~dir:store_dir in
  let jobs = Campaign_spec.jobs_of spec in
  let log = if quiet then fun _ -> () else log in
  Format.printf "campaign %s: %d jobs, %d workers, store %s@."
    spec.Campaign_spec.name (List.length jobs) workers store_dir;
  let summary =
    Campaign_pool.run ~workers ~timeout_s ~retries ~force ~log ~store jobs
  in
  Format.printf "%a@." Campaign_pool.pp_summary summary;
  if Campaign_pool.ok summary then 0 else 1

let workers_arg =
  Arg.(value & opt int 4
       & info [ "workers" ] ~docv:"N"
           ~doc:"Worker processes (1 = serial, in-process).")

let shards_arg =
  Arg.(value & opt int 1
       & info [ "shards" ] ~docv:"N"
           ~doc:"Run shardable fuzz/arena jobs across $(docv) simulation \
                 domains (execution-level only: job hashes, the store and \
                 frozen baselines are unchanged at N=1; unshardable jobs \
                 fall back to serial).")

let with_shards shards f =
  match Campaign_runner.set_shards shards with
  | Error e ->
      Format.eprintf "campaign: --shards %d: %s@." shards e;
      2
  | Ok () -> f ()

let timeout_arg =
  Arg.(value & opt float 300.
       & info [ "timeout-s" ] ~doc:"Per-job wall budget before kill+retry.")

let retries_arg =
  Arg.(value & opt int 1
       & info [ "retries" ] ~doc:"Retries after a timeout or crash.")

let quiet_arg =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress per-job progress lines.")

let run_cmd =
  let force_arg =
    Arg.(value & flag
         & info [ "force" ] ~doc:"Re-execute jobs already in the store.")
  in
  let run spec_r store_dir workers shards timeout_s retries force quiet =
    with_spec spec_r (fun spec ->
        with_shards shards (fun () ->
            exec_campaign spec ~store_dir ~workers ~timeout_s ~retries ~force
              ~quiet))
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute a campaign grid over the worker pool")
    Term.(const run $ spec_term $ store_arg $ workers_arg $ shards_arg
          $ timeout_arg $ retries_arg $ force_arg $ quiet_arg)

let resume_cmd =
  let run spec_r store_dir workers shards timeout_s retries quiet =
    with_spec spec_r (fun spec ->
        with_shards shards (fun () ->
            exec_campaign spec ~store_dir ~workers ~timeout_s ~retries
              ~force:false ~quiet))
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:"Continue an interrupted campaign (completed jobs are cache hits)")
    Term.(const run $ spec_term $ store_arg $ workers_arg $ shards_arg
          $ timeout_arg $ retries_arg $ quiet_arg)

(* ------------------------------------------------------------------ *)
(* report *)

let report_cmd =
  let run spec_r store_dir =
    with_spec spec_r (fun spec ->
        let store = Campaign_store.open_ ~dir:store_dir in
        Campaign_report.render Format.std_formatter ~spec
          ~lookup:(lookup_in store) ();
        0)
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Render the stored results as markdown tables")
    Term.(const run $ spec_term $ store_arg)

(* ------------------------------------------------------------------ *)
(* gate / freeze *)

let gate_cmd =
  let tol_arg =
    Arg.(value & opt float 25.
         & info [ "tol-pct" ] ~doc:"Tolerance band around baseline values.")
  in
  let slack_arg =
    Arg.(value & opt float 5.
         & info [ "slack-pct" ] ~doc:"Slack on shape-ordering invariants.")
  in
  let run spec_r store_dir baseline tol_pct slack_pct =
    with_spec spec_r (fun spec ->
        let store = Campaign_store.open_ ~dir:store_dir in
        let file =
          match baseline with Some f -> f | None -> default_baseline spec
        in
        match Campaign_store.read_baseline ~file with
        | Error e ->
            Format.eprintf "gate: %s@." e;
            2
        | Ok baseline ->
            let verdict =
              Campaign_gate.check ~tol_pct ~slack_pct ~baseline
                ~lookup:(lookup_in store)
                ~jobs:(Campaign_spec.jobs_of spec) ()
            in
            Format.printf "%a@." Campaign_gate.pp_verdict verdict;
            if Campaign_gate.ok verdict then (
              Format.printf "gate: OK (vs %s)@." file;
              0)
            else 1)
  in
  Cmd.v
    (Cmd.info "gate"
       ~doc:"Fail if stored results regressed vs the frozen baseline")
    Term.(const run $ spec_term $ store_arg $ baseline_arg $ tol_arg $ slack_arg)

let freeze_cmd =
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Output file (default: bench/baselines/<name>.json).")
  in
  let run spec_r store_dir out =
    with_spec spec_r (fun spec ->
        let store = Campaign_store.open_ ~dir:store_dir in
        let jobs = Campaign_spec.jobs_of spec in
        let results, missing =
          List.fold_left
            (fun (rs, miss) j ->
              match Campaign_store.load store (Campaign_spec.job_hash j) with
              | Some r -> (r :: rs, miss)
              | None -> (rs, Campaign_spec.job_to_string j :: miss))
            ([], []) jobs
        in
        if missing <> [] then begin
          Format.eprintf "freeze: %d jobs have no stored result; run first:@."
            (List.length missing);
          List.iter (fun j -> Format.eprintf "  %s@." j) (List.rev missing);
          1
        end
        else
          let file = match out with Some f -> f | None -> default_baseline spec in
          Campaign_store.write_baseline ~file (List.rev results);
          Format.printf "froze %d results to %s@." (List.length results) file;
          0)
  in
  Cmd.v
    (Cmd.info "freeze" ~doc:"Write the campaign's stored results as a baseline")
    Term.(const run $ spec_term $ store_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* exec / jobs *)

let exec_cmd =
  let job_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"JOB" ~doc:"A cj1;... job line (from a failure report).")
  in
  let run job_s store_dir shards =
    match Campaign_spec.job_of_string job_s with
    | Error e ->
        Format.eprintf "exec: %s@." e;
        2
    | Ok job ->
        with_shards shards (fun () ->
            let store = Campaign_store.open_ ~dir:store_dir in
            let r = Campaign_runner.run_job job in
            Campaign_store.save store r;
            print_endline (Campaign_result.to_json_string r);
            0)
  in
  Cmd.v
    (Cmd.info "exec"
       ~doc:"Run one job in-process and print its result JSON")
    Term.(const run $ job_arg $ store_arg $ shards_arg)

let jobs_cmd =
  let run spec_r store_dir =
    with_spec spec_r (fun spec ->
        let store = Campaign_store.open_ ~dir:store_dir in
        List.iter
          (fun j ->
            let h = Campaign_spec.job_hash j in
            Printf.printf "%s %s %s\n" h
              (if Campaign_store.mem store h then "done   " else "pending")
              (Campaign_spec.job_to_string j))
          (Campaign_spec.jobs_of spec);
        0)
  in
  Cmd.v
    (Cmd.info "jobs" ~doc:"List the expanded job grid and its store keys")
    Term.(const run $ spec_term $ store_arg)

let default = Term.(ret (const (`Help (`Pager, None))))

let () =
  exit
    (Cmd.eval'
       (Cmd.group ~default
          (Cmd.info "themis_campaign_cli"
             ~doc:"Parallel experiment campaigns with a content-addressed \
                   result store and regression gates")
          [ run_cmd; resume_cmd; report_cmd; gate_cmd; freeze_cmd; exec_cmd;
            jobs_cmd ]))
