(* Command-line driver for the Themis experiments.

   Subcommands map one-to-one onto the paper's figures and tables:

     themis_cli motivation   -- Fig. 1b/1c/1d (NIC-SR vs Ideal, spraying)
     themis_cli fig5         -- Fig. 5a/5b (collectives x DCQCN sweep)
     themis_cli table1       -- Section 4 memory-overhead model
     themis_cli ablation     -- compensation / queue-factor / scheme ablations *)

open Cmdliner

let pp_series ~header series =
  Format.printf "  %s@." header;
  List.iter (fun (t, v) -> Format.printf "    %10.1f  %8.4f@." t v) series

let motivation_cmd =
  let msg_mb =
    Arg.(value & opt float 10. & info [ "msg-mb" ] ~doc:"Per-flow megabytes.")
  in
  let series =
    Arg.(value & flag & info [ "series" ] ~doc:"Print the full time series.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"RNG seed.") in
  let csv_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv-dir" ] ~doc:"Write fig1b.csv / fig1c.csv there.")
  in
  let telemetry =
    Arg.(
      value & flag
      & info [ "telemetry" ]
          ~doc:
            "Enable the typed telemetry subsystem for the NIC-SR run and \
             print a metric/event summary.  With $(b,--csv-dir), also write \
             telemetry_metrics.csv and telemetry_events.jsonl.")
  in
  let run msg_mb series seed csv_dir telemetry =
    let bytes_ = int_of_float (msg_mb *. 1e6) in
    let run_one ?(telemetry = false) transport =
      Experiment.run_motivation
        {
          Experiment.default_motivation with
          msg_bytes = bytes_;
          transport;
          seed;
          telemetry;
        }
    in
    Format.printf "Motivation (Fig. 1): 8 hosts, 2x4 leaf-spine, 100 Gbps, random spraying@.";
    Format.printf "per-flow payload: %.1f MB@." msg_mb;
    (* Ideal first: the telemetry context installed for the NIC-SR run must
       not absorb records from a second build. *)
    let ideal = run_one `Ideal in
    let sr = run_one ~telemetry `Sr in
    Format.printf "@.NIC-SR:@.";
    Format.printf "  avg spurious-retransmission ratio  %.3f   (paper Fig.1b avg: 0.16)@."
      sr.Experiment.avg_retx_ratio;
    Format.printf "  watched-flow avg sending rate      %.1f Gbps (paper Fig.1c avg: 86)@."
      sr.Experiment.avg_rate_gbps;
    Format.printf "  avg flow throughput                %.2f Gbps (paper Fig.1d: 68.09)@."
      sr.Experiment.avg_goodput_gbps;
    Format.printf "  NACKs generated                    %d@." sr.Experiment.nacks_generated;
    Format.printf "@.Ideal transport:@.";
    Format.printf "  avg flow throughput                %.2f Gbps (paper Fig.1d: 95.43)@."
      ideal.Experiment.avg_goodput_gbps;
    if series then begin
      pp_series ~header:"Fig.1b retx ratio (time us, ratio)" sr.Experiment.retx_series;
      pp_series ~header:"Fig.1c sending rate (time us, Gbps)" sr.Experiment.rate_series
    end;
    (match sr.Experiment.telemetry with
    | None -> ()
    | Some s ->
        Format.printf "@.Telemetry (NIC-SR run):@.";
        Format.printf "  data packets %d, retx %d, NACKs generated %d@."
          s.Experiment.tele_data_packets s.Experiment.tele_retx_packets
          s.Experiment.tele_nacks_generated;
        Format.printf
          "  NACK verdicts: valid %d, blocked %d, underflow %d; compensation \
           sent %d / cancelled %d@."
          s.Experiment.tele_nacks_valid s.Experiment.tele_nacks_blocked
          s.Experiment.tele_nacks_underflow s.Experiment.tele_comp_sent
          s.Experiment.tele_comp_cancelled;
        Format.printf "  flows completed %d, FCT p50 %.1f us, p99 %.1f us@."
          s.Experiment.tele_flows_completed s.Experiment.tele_fct_p50_us
          s.Experiment.tele_fct_p99_us;
        Format.printf "  ECN marks %d, buffer drops %d, events %d (%d dropped)@."
          s.Experiment.tele_ecn_marks s.Experiment.tele_buffer_drops
          s.Experiment.tele_events s.Experiment.tele_events_dropped;
        (match Telemetry.ctx () with
        | Some ctx -> Format.printf "@.%a" Export.pp_events_by_kind ctx
        | None -> ()));
    match csv_dir with
    | None -> ()
    | Some dir ->
        Csv_export.write_series
          ~path:(Filename.concat dir "fig1b.csv")
          ~header:("time_us", "retx_ratio") sr.Experiment.retx_series;
        Csv_export.write_series
          ~path:(Filename.concat dir "fig1c.csv")
          ~header:("time_us", "rate_gbps") sr.Experiment.rate_series;
        Format.printf "@.wrote %s/fig1b.csv and fig1c.csv@." dir;
        if telemetry then begin
          (match Telemetry.metrics () with
          | Some m ->
              let path = Filename.concat dir "telemetry_metrics.csv" in
              Export.write_metrics_csv ~path m;
              Format.printf "wrote %s@." path
          | None -> ());
          match Telemetry.ctx () with
          | Some ctx ->
              let path = Filename.concat dir "telemetry_events.jsonl" in
              Export.write_events ~path ctx;
              Format.printf "wrote %s@." path
          | None -> ()
        end
  in
  Cmd.v (Cmd.info "motivation" ~doc:"Figure 1 motivation experiment")
    Term.(const run $ msg_mb $ series $ seed $ csv_dir $ telemetry)

let fig5_cmd =
  let coll_arg =
    let parse s =
      match s with
      | "allreduce" -> Ok Experiment.Allreduce
      | "hd-allreduce" -> Ok Experiment.Hd_allreduce
      | "alltoall" -> Ok Experiment.Alltoall
      | "allgather" -> Ok Experiment.Allgather
      | "reduce-scatter" -> Ok Experiment.Reduce_scatter
      | _ ->
          Error
            (`Msg "expected allreduce|hd-allreduce|alltoall|allgather|reduce-scatter")
    in
    let print ppf c = Format.pp_print_string ppf (Experiment.coll_to_string c) in
    Arg.conv (parse, print)
  in
  let coll =
    Arg.(
      value
      & opt coll_arg Experiment.Allreduce
      & info [ "coll" ] ~doc:"Collective: allreduce|alltoall|allgather|reduce-scatter.")
  in
  let mb =
    Arg.(value & opt float 8. & info [ "mb" ] ~doc:"Collective megabytes per group.")
  in
  let full =
    Arg.(value & flag & info [ "paper-scale" ] ~doc:"Use the 16x16 fabric of the paper.")
  in
  let seed = Arg.(value & opt int 11 & info [ "seed" ] ~doc:"RNG seed.") in
  let run coll mb full seed =
    let fabric =
      if full then Leaf_spine.paper_eval else Experiment.scaled_eval_fabric
    in
    Format.printf
      "Fig. 5 (%s): %dx%d leaf-spine, %d groups, %.1f MB per group@."
      (Experiment.coll_to_string coll)
      fabric.Leaf_spine.n_leaves fabric.Leaf_spine.n_spines
      fabric.Leaf_spine.hosts_per_leaf mb;
    Format.printf "%-12s" "scheme";
    List.iter
      (fun (ti, td) -> Format.printf "  (%4.0f,%4.0f)" ti td)
      Experiment.dcqcn_sweep;
    Format.printf "   (tail completion time, ms)@.";
    List.iter
      (fun scheme ->
        Format.printf "%-12s" (Network.scheme_to_string scheme);
        List.iter
          (fun (ti_us, td_us) ->
            let cfg =
              {
                (Experiment.default_eval ~fabric ~scheme ~coll ()) with
                Experiment.bytes_per_group = int_of_float (mb *. 1e6);
                ti_us;
                td_us;
                eval_seed = seed;
              }
            in
            let r = Experiment.run_collective cfg in
            Format.printf "  %10.3f" r.Experiment.tail_ct_ms)
          Experiment.dcqcn_sweep;
        Format.printf "@.")
      Experiment.fig5_schemes
  in
  Cmd.v (Cmd.info "fig5" ~doc:"Figure 5 collective sweep")
    Term.(const run $ coll $ mb $ full $ seed)

let ablation_cmd =
  let seed = Arg.(value & opt int 5 & info [ "seed" ] ~doc:"RNG seed.") in
  let run seed =
    Format.printf "== compensation on/off under %d forced drops ==@." 4;
    List.iter
      (fun r ->
        Format.printf "  compensation %-3s: completion %8.1f us, %d timeouts, %d generated NACKs@."
          (if r.Ablation.comp_enabled then "on" else "off")
          r.Ablation.completion_us r.Ablation.timeouts r.Ablation.compensations)
      (Ablation.compensation ~seed ());
    Format.printf "@.== ring capacity factor F ==@.";
    List.iter
      (fun r ->
        Format.printf "  F=%-5.2f blocked=%-6d underflow=%-4d retx=%-5d completion %8.1f us@."
          r.Ablation.factor r.Ablation.blocked r.Ablation.underflow_forwards
          r.Ablation.retx r.Ablation.qf_completion_us)
      (Ablation.queue_factor ~seed ());
    Format.printf "@.== transport generations ==@.";
    List.iter
      (fun r ->
        Format.printf "  %-26s %6.1f Gbps, retx ratio %.3f, %d NACKs to sender@."
          r.Ablation.label r.Ablation.goodput_gbps r.Ablation.retx_ratio
          r.Ablation.nacks_to_sender)
      (Ablation.transports ~seed ());
    Format.printf "@.== NACK filtering value ==@.";
    List.iter
      (fun r ->
        Format.printf "  %-26s %6.1f Gbps, retx ratio %.3f, %d NACKs to sender@."
          r.Ablation.label r.Ablation.goodput_gbps r.Ablation.retx_ratio
          r.Ablation.nacks_to_sender)
      (Ablation.filtering ~seed ())
  in
  Cmd.v (Cmd.info "ablation" ~doc:"Design-choice ablations")
    Term.(const run $ seed)

let fattree_cmd =
  let k = Arg.(value & opt int 4 & info [ "k" ] ~doc:"Fat-tree radix (k/2 a power of two).") in
  let mb = Arg.(value & opt float 2. & info [ "mb" ] ~doc:"Megabytes per flow.") in
  let themis = Arg.(value & flag & info [ "no-themis" ] ~doc:"Disable Themis (plain ECMP).") in
  let run k mb no_themis =
    let net =
      Fat_tree_net.build (Fat_tree_net.default_params ~k ~themis:(not no_themis) ())
    in
    let ft = Fat_tree_net.fat_tree net in
    let hosts = ft.Fat_tree.hosts in
    let n = Array.length hosts in
    let completed = ref 0 and last = ref Sim_time.zero in
    Array.iteri
      (fun i src ->
        let dst = hosts.((i + (n / 2)) mod n) in
        let qp = Fat_tree_net.connect net ~src ~dst in
        Rnic.post_send qp ~bytes:(int_of_float (mb *. 1e6))
          ~on_complete:(fun t ->
            incr completed;
            last := Sim_time.max !last t))
      hosts;
    Fat_tree_net.run net ~until:(Sim_time.sec 30);
    Format.printf "k=%d fat tree, %d hosts, %d paths, themis=%b@." k n
      (Fat_tree_net.n_paths net) (not no_themis);
    Format.printf "flows %d/%d, tail completion %a@." !completed n Sim_time.pp !last;
    Format.printf "spurious retx %d, NACKs to senders %d@."
      (Fat_tree_net.total_retx_packets net)
      (Fat_tree_net.total_nacks_delivered net)
  in
  Cmd.v (Cmd.info "fattree" ~doc:"3-tier fat-tree run (sport-rewrite Themis)")
    Term.(const run $ k $ mb $ themis)

let incast_cmd =
  let fanin = Arg.(value & opt int 8 & info [ "fanin" ] ~doc:"Senders per receiver.") in
  let mb = Arg.(value & opt float 1. & info [ "mb" ] ~doc:"Megabytes per sender.") in
  let run fanin mb =
    Format.printf "%d-to-1 incast, %.1f MB per sender, 100 Gbps receiver link@.@."
      fanin mb;
    Format.printf "%-22s %10s %10s %10s %8s %8s@." "scheme" "mean(us)" "p50(us)"
      "p99(us)" "retx" "drops";
    List.iter
      (fun scheme ->
        let r =
          Experiment.run_incast
            {
              (Experiment.default_incast ~scheme) with
              Experiment.fanin;
              incast_bytes = int_of_float (mb *. 1e6);
            }
        in
        Format.printf "%-22s %10.1f %10.1f %10.1f %8d %8d@."
          (Network.scheme_to_string scheme)
          r.Experiment.fct_mean_us r.Experiment.fct_p50_us
          r.Experiment.fct_p99_us r.Experiment.incast_retx
          r.Experiment.incast_drops)
      [
        Network.Ecmp;
        Network.Adaptive;
        Network.Random_spray;
        Network.Themis { compensation = true };
      ]
  in
  Cmd.v (Cmd.info "incast" ~doc:"N-to-1 incast stressor")
    Term.(const run $ fanin $ mb)

let table1_cmd =
  let run () = Memory_model.pp_report Format.std_formatter Memory_model.table1 in
  Cmd.v (Cmd.info "table1" ~doc:"Section 4 memory model") Term.(const run $ const ())

let default = Term.(ret (const (`Help (`Pager, None))))

let () =
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "themis_cli" ~doc:"Themis experiment driver")
          [
            motivation_cmd;
            fig5_cmd;
            table1_cmd;
            ablation_cmd;
            fattree_cmd;
            incast_cmd;
          ]))
