(* Sharded-simulation benchmark and smoke check (DESIGN.md §14).

   Modes:

     --smoke       2-domain identity check on a small fabric: runs one
                   spec serially and sharded, asserts the canonical
                   outcomes are byte-identical, exits non-zero on any
                   mismatch.  Gates `make check` without distorting CI
                   wall time.

     --debug SPEC SCHEME SHARDS
                   Field-by-field comparison of the serial and sharded
                   telemetry summaries plus the first diverging
                   canonical event line — the triage tool for identity
                   regressions.

     (default)     Wall-clock events/s of the same spec at 1, 2 and 4
                   domains (vs the plain serial engine), merged into
                   BENCH_engine.json under a "shard" key so the scaling
                   curve is tracked PR-over-PR. *)

let out_path = ref "BENCH_engine.json"
let smoke = ref false
let debug_args = ref []

let usage = "shard_bench [--smoke] [--debug SPEC SCHEME SHARDS] [--out PATH]"

let spec_of_string_exn s =
  match Fuzz_spec.of_string s with
  | Ok spec -> spec
  | Error e ->
      Printf.eprintf "bad spec: %s\n%!" e;
      exit 2

(* The benchmark workload: an 8-leaf permutation with enough bytes in
   flight to keep every shard busy, no faults, both directions loaded.
   Kept clean (ppm = 0) so it doubles as an identity scenario. *)
let bench_spec =
  "fz1;seed=42;shape=ls:8:4:2:100:100:1000;tr=sr;qf=100;ppcap=256;jit=0;\
   drop=0;corr=0;dup=0;dly=0:0;fmode=ecmp;dl=8000000000;schemes=spray;\
   flows=0>9:400000@0,9>2:400000@0,2>11:400000@0,11>4:400000@0,\
   4>13:400000@0,13>6:400000@0,6>15:400000@0,15>0:400000@0,\
   1>8:400000@0,8>3:400000@0,3>10:400000@0,10>5:400000@0,\
   5>12:400000@0,12>7:400000@0,7>14:400000@0,14>1:400000@0;faults="

let smoke_spec =
  "fz1;seed=7;shape=ls:4:3:2:100:100:1000;tr=sr;qf=100;ppcap=256;jit=0;\
   drop=0;corr=0;dup=0;dly=0:0;fmode=ecmp;dl=2000000000;schemes=spray;\
   flows=0>7:60000@0,7>2:45000@3000,2>5:30000@1500,5>0:20000@4500;faults="

let summary_fields (s : Experiment.telemetry_summary) =
  [
    ("data_packets", float_of_int s.Experiment.tele_data_packets);
    ("retx_packets", float_of_int s.Experiment.tele_retx_packets);
    ("nacks_generated", float_of_int s.Experiment.tele_nacks_generated);
    ("nacks_valid", float_of_int s.Experiment.tele_nacks_valid);
    ("nacks_blocked", float_of_int s.Experiment.tele_nacks_blocked);
    ("nacks_underflow", float_of_int s.Experiment.tele_nacks_underflow);
    ("comp_sent", float_of_int s.Experiment.tele_comp_sent);
    ("comp_cancelled", float_of_int s.Experiment.tele_comp_cancelled);
    ("flows_completed", float_of_int s.Experiment.tele_flows_completed);
    ("fct_p50_us", s.Experiment.tele_fct_p50_us);
    ("fct_p99_us", s.Experiment.tele_fct_p99_us);
    ("ecn_marks", float_of_int s.Experiment.tele_ecn_marks);
    ("buffer_drops", float_of_int s.Experiment.tele_buffer_drops);
    ("events", float_of_int s.Experiment.tele_events);
    ("events_dropped", float_of_int s.Experiment.tele_events_dropped);
  ]

let first_diff_line a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i la lb =
    match (la, lb) with
    | [], [] -> None
    | x :: _, [] -> Some (i, x, "<missing>")
    | [], y :: _ -> Some (i, "<missing>", y)
    | x :: la', y :: lb' ->
        if x = y then go (i + 1) la' lb' else Some (i, x, y)
  in
  go 0 la lb

(* Compare serial vs sharded on [spec]; print any divergence.  Returns
   true when identical. *)
let compare_runs ?(base = 0) spec ~scheme ~shards ~verbose =
  (* [base = 0] compares against the plain serial engine; [base >= 1]
     against a [base]-shard run (shard-count-invariance triage). *)
  let serial =
    if base = 0 then Fuzz_run.run_scheme spec ~scheme
    else Shard_run.run_scheme spec ~scheme ~shards:base
  in
  let serial_csv = Shard_run.canonical_metrics_csv () in
  let sharded, stats = Shard_run.run_scheme_full spec ~scheme ~shards in
  let sharded_csv = Shard_run.canonical_metrics_csv () in
  let ok = ref true in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        ok := false;
        Printf.printf "  MISMATCH %s\n%!" m)
      fmt
  in
  (match (serial.Fuzz_run.o_summary, sharded.Fuzz_run.o_summary) with
  | Some a, Some b ->
      List.iter2
        (fun (na, va) (nb, vb) ->
          if verbose then
            Printf.printf "  %-18s serial=%-14g sharded=%g%s\n" na va vb
              (if va <> vb then "   <-- DIFF" else "");
          if va <> vb then
            if verbose then ok := false
            else fail "%s: serial=%g sharded=%g" na va vb;
          ignore nb)
        (summary_fields a) (summary_fields b)
  | a, b ->
      fail "summary presence: serial=%b sharded=%b" (a <> None) (b <> None));
  let viol o =
    List.map
      (fun v -> v.Fuzz_oracle.oracle ^ ": " ^ v.Fuzz_oracle.detail)
      o.Fuzz_run.o_violations
  in
  if viol serial <> viol sharded then
    fail "violations: serial=[%s] sharded=[%s]"
      (String.concat "; " (viol serial))
      (String.concat "; " (viol sharded));
  let ca = Shard_run.canonical_events_jsonl serial
  and cb = Shard_run.canonical_events_jsonl sharded in
  (match first_diff_line ca cb with
  | None -> ()
  | Some (i, x, y) ->
      fail "canonical events differ at line %d:\n    serial:  %s\n    sharded: %s"
        i x y);
  (match first_diff_line serial_csv sharded_csv with
  | None -> ()
  | Some (i, x, y) ->
      fail "canonical metrics differ at row %d:\n    serial:  %s\n    sharded: %s"
        i x y);
  if serial.Fuzz_run.o_drops <> sharded.Fuzz_run.o_drops then
    fail "drops: serial=%d sharded=%d" serial.Fuzz_run.o_drops
      sharded.Fuzz_run.o_drops;
  if serial.Fuzz_run.o_ooo <> sharded.Fuzz_run.o_ooo then
    fail "ooo: serial=%d sharded=%d" serial.Fuzz_run.o_ooo
      sharded.Fuzz_run.o_ooo;
  if verbose then
    Printf.printf "  sharded events=%d spilled=%d\n%!" stats.Shard_run.st_events
      stats.Shard_run.st_spilled;
  !ok

let base = ref 0
let only = ref false

let run_debug spec_s scheme shards =
  if !only then begin
    (* Run ONLY the sharded side (no baseline) — for collecting
       separated instrumentation streams per shard count. *)
    let spec = spec_of_string_exn spec_s in
    let o = Shard_run.run_scheme spec ~scheme ~shards in
    Printf.printf "only: shards=%d violations=%d\n%!" shards
      (List.length o.Fuzz_run.o_violations);
    exit 0
  end;
  let spec = spec_of_string_exn spec_s in
  Printf.printf "debug: scheme=%s shards=%d base=%d\n%!" scheme shards !base;
  let ok = compare_runs ~base:!base spec ~scheme ~shards ~verbose:true in
  Printf.printf (if ok then "IDENTICAL\n" else "DIVERGED\n");
  exit (if ok then 0 else 1)

let run_smoke () =
  let spec = spec_of_string_exn smoke_spec in
  let ok = compare_runs spec ~scheme:"spray" ~shards:2 ~verbose:false in
  if ok then (
    Printf.printf "shard smoke: serial == 2-shard identical\n%!";
    exit 0)
  else (
    Printf.printf "shard smoke: DIVERGED\n%!";
    exit 1)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let run_bench () =
  let spec = spec_of_string_exn bench_spec in
  let scheme = "spray" in
  (* Serial reference: the plain engine with no ring machinery. *)
  let serial, serial_wall = time (fun () -> Fuzz_run.run_scheme spec ~scheme) in
  ignore serial;
  let domain_counts = [ 1; 2; 4 ] in
  let rows =
    List.map
      (fun shards ->
        let (o, stats), wall =
          time (fun () -> Shard_run.run_scheme_full spec ~scheme ~shards)
        in
        if o.Fuzz_run.o_violations <> [] then (
          Printf.eprintf "bench spec violated oracles at %d shards\n%!" shards;
          exit 1);
        let eps = float_of_int stats.Shard_run.st_events /. wall in
        Printf.printf "shards=%d  events=%d  wall=%.3fs  events/s=%.0f  \
                       spilled=%d\n%!"
          shards stats.Shard_run.st_events wall eps stats.Shard_run.st_spilled;
        (shards, stats, wall, eps))
      domain_counts
  in
  Printf.printf "serial  wall=%.3fs (no ring machinery)\n%!" serial_wall;
  (* Merge a "shard" object into BENCH_engine.json (engine_bench owns
     the rest of the file; missing or unparsable files start fresh). *)
  let shard_json =
    Campaign_json.Obj
      [
        ("spec_seed", Campaign_json.Num 42.);
        ("scheme", Campaign_json.Str scheme);
        (* Scaling is only meaningful when the host can actually run the
           domains in parallel; record the core count the numbers were
           taken on so a 1-core CI box's slowdown isn't misread. *)
        ( "recommended_domains",
          Campaign_json.Num (float_of_int (Domain.recommended_domain_count ()))
        );
        ("serial_wall_s", Campaign_json.Num serial_wall);
        ( "domains",
          Campaign_json.List
            (List.map
               (fun (shards, stats, wall, eps) ->
                 Campaign_json.Obj
                   [
                     ("shards", Campaign_json.Num (float_of_int shards));
                     ( "events",
                       Campaign_json.Num
                         (float_of_int stats.Shard_run.st_events) );
                     ("wall_s", Campaign_json.Num wall);
                     ("events_per_sec", Campaign_json.Num eps);
                     ( "spilled",
                       Campaign_json.Num
                         (float_of_int stats.Shard_run.st_spilled) );
                   ])
               rows) );
      ]
  in
  let existing =
    if Sys.file_exists !out_path then (
      let ic = open_in_bin !out_path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Campaign_json.of_string s with
      | Ok (Campaign_json.Obj fields) ->
          List.filter (fun (k, _) -> k <> "shard") fields
      | _ -> [])
    else []
  in
  let doc = Campaign_json.Obj (existing @ [ ("shard", shard_json) ]) in
  let oc = open_out !out_path in
  output_string oc (Campaign_json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" !out_path

let () =
  let args =
    Arg.align
      [
        ("--smoke", Arg.Set smoke, " identity smoke check (2 domains)");
        ( "--debug",
          Arg.Tuple
            [
              Arg.String (fun s -> debug_args := [ s ]);
              Arg.String (fun s -> debug_args := !debug_args @ [ s ]);
              Arg.String (fun s -> debug_args := !debug_args @ [ s ]);
            ],
          "SPEC SCHEME SHARDS field-by-field divergence triage" );
        ("--out", Arg.Set_string out_path, "PATH output JSON (default BENCH_engine.json)");
        ( "--base",
          Arg.Set_int base,
          "N debug baseline: 0 = serial engine (default), N >= 1 = N-shard run" );
        ("--only", Arg.Set only, " with --debug: run only the sharded side");
      ]
  in
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  (* Benches and smoke force domain spawning: the scaling curve on a
     single-core box is still a valid correctness run, just not a
     speedup demonstration. *)
  Unix.putenv Shard_part.force_env "1";
  match !debug_args with
  | [ spec_s; scheme; shards_s ] ->
      run_debug spec_s scheme (int_of_string shards_s)
  | _ :: _ ->
      prerr_endline usage;
      exit 2
  | [] -> if !smoke then run_smoke () else run_bench ()
