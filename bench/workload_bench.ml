(* Workload streaming benchmark: proves the open-loop flow stream is
   O(active-flows), not O(total-flows), in memory — the property that
   makes million-flow production traces runnable at all.

   The full mode pushes 1M Poisson arrivals of small fixed-size flows
   through the small workload fabric and reports the live-flow
   high-water mark, QPs created (bounded by per-pair concurrency thanks
   to pooling), arrival throughput in flows/sec of wall time, and GC
   evidence (top heap words, minor words per flow).  `--smoke` runs 50k
   flows and gates `make check`: it asserts every offered flow completed
   and that the live high-water mark stayed within the O(active) bound
   regardless of the total flow count.  Emits BENCH_workload.json in the
   engine_bench conventions. *)

let out_path = ref "BENCH_workload.json"
let smoke = ref false

(* The live-flow bound asserted in both modes.  At 80% load the expected
   concurrency is rate x mean-FCT (= a few hundred at worst under
   transient bursts); the total flow count is 50k or 1M, so any leak of
   completed-flow state shows up as orders of magnitude, not percent. *)
let hwm_bound = 4096

let spec ~n_flows : Workload_spec.t =
  {
    Workload_spec.wseed = 21;
    shape = Workload_spec.small_fabric;
    dist = Flow_size.Fixed 4096;
    arrival = Arrival.Poisson;
    load_pct = 80;
    n_flows;
    colls = [];
    failures = [];
    deadline_ns = 10_000_000_000;
  }

let () =
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--out" :: path :: rest ->
        out_path := path;
        parse rest
    | arg :: _ ->
        prerr_endline ("usage: workload_bench [--smoke] [--out PATH]; got " ^ arg);
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let n_flows = if !smoke then 50_000 else 1_000_000 in
  let spec = spec ~n_flows in
  let words0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let r = Workload_run.run ~scheme:"themis" spec in
  let wall_s = Unix.gettimeofday () -. t0 in
  let minor_words = Gc.minor_words () -. words0 in
  let heap = Gc.stat () in
  let flows_per_sec =
    if wall_s > 0. then float_of_int r.Workload_run.r_completed /. wall_s else 0.
  in
  let fail fmt = Printf.ksprintf failwith fmt in
  if r.Workload_run.r_offered <> n_flows then
    fail "workload_bench: offered %d of %d flows (deadline too short?)"
      r.Workload_run.r_offered n_flows;
  if r.Workload_run.r_completed <> r.Workload_run.r_offered then
    fail "workload_bench: completed %d of %d offered flows"
      r.Workload_run.r_completed r.Workload_run.r_offered;
  if r.Workload_run.r_live_hwm > hwm_bound then
    fail "workload_bench: live hwm %d blows the O(active) bound %d"
      r.Workload_run.r_live_hwm hwm_bound;
  let num v = Campaign_json.Num v in
  let int v = num (float_of_int v) in
  let doc =
    Campaign_json.Obj
      [
        ("bench", Campaign_json.Str "workload");
        ("mode", Campaign_json.Str (if !smoke then "smoke" else "full"));
        ("flows", int n_flows);
        ("offered", int r.Workload_run.r_offered);
        ("completed", int r.Workload_run.r_completed);
        ("live_hwm", int r.Workload_run.r_live_hwm);
        ("live_hwm_bound", int hwm_bound);
        ("qps_created", int r.Workload_run.r_qps_created);
        ("data_packets", int r.Workload_run.r_data_packets);
        ("sim_end_us", num r.Workload_run.r_end_us);
        ("wall_s", num wall_s);
        ("flows_per_sec", num flows_per_sec);
        ("minor_words_per_flow", num (minor_words /. float_of_int n_flows));
        ("top_heap_words", int heap.Gc.top_heap_words);
      ]
  in
  let oc = open_out !out_path in
  output_string oc (Campaign_json.to_string doc);
  output_char oc '\n';
  close_out oc;
  (* Re-read and validate: the smoke path is a `make check` gate, so the
     file must be parseable JSON with the fields tooling reads. *)
  let ic = open_in !out_path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (match Campaign_json.of_string s with
  | Error e -> fail "workload_bench: bad JSON emitted: %s" e
  | Ok doc ->
      List.iter
        (fun key ->
          if Campaign_json.member key doc = None then
            fail "workload_bench: missing field %S" key)
        [ "bench"; "mode"; "flows"; "live_hwm"; "flows_per_sec" ]);
  Printf.printf
    "workload_bench: %d flows, hwm %d (bound %d), %d qps, %.0f flows/s wall, \
     %.1f minor w/flow, top heap %d w\n"
    r.Workload_run.r_completed r.Workload_run.r_live_hwm hwm_bound
    r.Workload_run.r_qps_created flows_per_sec
    (minor_words /. float_of_int n_flows)
    heap.Gc.top_heap_words;
  Printf.printf "workload_bench: wrote %s\n" !out_path
