(* The benchmark harness.

   Two layers:

   1. Figure/table reproduction — for every table and figure in the
      paper's evaluation, a target that regenerates the corresponding
      rows/series from the simulator (see DESIGN.md's per-experiment
      index).  Absolute numbers come from this repository's behavioural
      models rather than the authors' NS-3 build; the shapes (who wins,
      by how much, where crossovers fall) are the reproduction target.

   2. Bechamel micro-benchmarks of the data-plane primitives a Tofino
      implementation would care about (per-packet spray decision, ring
      push, NACK validation, PathMap rewrite, event-queue churn).

   Usage: main.exe [fig1b|fig1c|fig1d|fig5a|fig5b|table1|ablations|micro|all]
   (default: all). *)

let section title =
  Format.printf "@.==================== %s ====================@." title

(* ------------------------------------------------------------------ *)
(* Machine-readable results: every figure run is also filed into the
   campaign result store (content-addressed by its canonical job
   string), so bench runs seed the same BENCH_*.json perf trajectory
   the campaign orchestrator reads and gates against. *)

let store =
  lazy
    (Campaign_store.open_
       ~dir:
         (match Sys.getenv_opt "THEMIS_RESULT_DIR" with
         | Some d -> d
         | None -> "_campaign"))

let saved = ref 0

let save_result r =
  Campaign_store.save (Lazy.force store) r;
  incr saved

let report_saved () =
  if !saved > 0 then
    Format.printf "@.[store] %d result(s) filed under %s/@." !saved
      (Campaign_store.dir (Lazy.force store))

(* ------------------------------------------------------------------ *)
(* Figure 1: motivation experiment                                     *)
(* ------------------------------------------------------------------ *)

let transport_name = function `Sr -> "sr" | `Gbn -> "gbn" | `Ideal -> "ideal"

let motivation_cache : (Rnic.transport * Experiment.motivation_result) list ref =
  ref []

(* The default motivation config, run through the campaign runner so the
   stored JSON carries the same store key a `fig1` campaign would use. *)
let motivation transport =
  match List.assoc_opt transport !motivation_cache with
  | Some r -> r
  | None ->
      let r, result =
        Campaign_runner.fig1 ~transport:(transport_name transport) ~mb:10
          ~seed:Experiment.default_motivation.Experiment.seed
      in
      save_result result;
      motivation_cache := (transport, r) :: !motivation_cache;
      r

let fig1b () =
  section "Fig. 1b: retransmission ratio over time (NIC-SR + random spraying)";
  let r = motivation `Sr in
  Format.printf "time(us)    retx_ratio@.";
  List.iter
    (fun (t, v) -> Format.printf "%8.0f    %.4f@." t v)
    r.Experiment.retx_series;
  Format.printf "average ratio: %.3f   (paper: 0.16)@." r.Experiment.avg_retx_ratio

let fig1c () =
  section "Fig. 1c: sending rate over time (NIC-SR + random spraying)";
  let r = motivation `Sr in
  Format.printf "time(us)    rate(Gbps)@.";
  List.iter
    (fun (t, v) -> Format.printf "%8.0f    %6.1f@." t v)
    r.Experiment.rate_series;
  Format.printf "average rate: %.1f Gbps of 100 (paper: 86)@."
    r.Experiment.avg_rate_gbps

let fig1d () =
  section "Fig. 1d: average flow throughput, NIC-SR vs Ideal";
  let sr = motivation `Sr in
  let ideal = motivation `Ideal in
  Format.printf "%-18s %12s@." "reliable transport" "throughput";
  Format.printf "%-18s %9.2f Gbps   (paper: 68.09)@." "NIC-SR"
    sr.Experiment.avg_goodput_gbps;
  Format.printf "%-18s %9.2f Gbps   (paper: 95.43)@." "Ideal"
    ideal.Experiment.avg_goodput_gbps;
  Format.printf
    "@.decomposition (Section 2.2): %.0f%% sending rate x %.0f%% useful = %.0f%% of ideal@."
    (sr.Experiment.avg_rate_gbps /. 100. *. 100.)
    ((1. -. sr.Experiment.avg_retx_ratio) *. 100.)
    (sr.Experiment.avg_goodput_gbps /. ideal.Experiment.avg_goodput_gbps *. 100.)

(* ------------------------------------------------------------------ *)
(* Figure 5: collectives x DCQCN sweep                                 *)
(* ------------------------------------------------------------------ *)

let fig5 coll ~mb title =
  section title;
  Format.printf
    "fabric: 8x8 leaf-spine, 400 Gbps, 8 groups of 8 NICs, %d MB per group@." mb;
  Format.printf
    "(paper scale is 16x16 / 300 MB: run `themis_cli fig5 --paper-scale` for it)@.@.";
  Format.printf "%-14s" "scheme";
  List.iter
    (fun (ti, td) -> Format.printf "  TI=%-3.0f,TD=%-3.0f" ti td)
    Experiment.dcqcn_sweep;
  Format.printf "   tail CT (ms)@.";
  let tails = Hashtbl.create 8 in
  List.iter
    (fun scheme ->
      Format.printf "%-14s" (Network.scheme_to_string scheme);
      List.iter
        (fun (ti_us, td_us) ->
          let r, result =
            Campaign_runner.fig5 ~fabric:Campaign_spec.Eval8
              ~scheme:(Network.scheme_to_string scheme)
              ~coll:(Experiment.coll_to_string coll)
              ~mb ~ti_us:(int_of_float ti_us) ~td_us:(int_of_float td_us)
              ~seed:11
          in
          save_result result;
          Hashtbl.replace tails (Network.scheme_to_string scheme, ti_us, td_us)
            r.Experiment.tail_ct_ms;
          Format.printf "  %12.3f" r.Experiment.tail_ct_ms)
        Experiment.dcqcn_sweep;
      Format.printf "@.")
    Experiment.fig5_schemes;
  (* The paper's headline: Themis' reduction vs adaptive routing. *)
  let reductions =
    List.filter_map
      (fun (ti, td) ->
        match
          ( Hashtbl.find_opt tails ("adaptive", ti, td),
            Hashtbl.find_opt tails ("themis", ti, td) )
        with
        | Some ar, Some th when ar > 0. -> Some (100. *. (ar -. th) /. ar)
        | _ -> None)
      Experiment.dcqcn_sweep
  in
  match (reductions, List.rev reductions) with
  | lo :: _, hi :: _ ->
      let min_r = List.fold_left Stdlib.min lo reductions in
      let max_r = List.fold_left Stdlib.max hi reductions in
      Format.printf
        "@.Themis vs adaptive routing: %.1f%% ~ %.1f%% lower tail completion time@."
        min_r max_r
  | _ -> ()

let fig5a () =
  fig5 Experiment.Allreduce ~mb:4
    "Fig. 5a: Allreduce tail completion time (paper: 15.6%~75.3%)"

(* Alltoall needs larger per-pair flows (bytes/ranks^2 each) before the
   transport dynamics bite, hence the bigger default. *)
let fig5b () =
  fig5 Experiment.Alltoall ~mb:16
    "Fig. 5b: Alltoall tail completion time (paper: 11.5%~40.7%)"

(* ------------------------------------------------------------------ *)
(* Table 1 / Section 4: memory model                                   *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1 + Section 4: switch memory overhead";
  Memory_model.pp_report Format.std_formatter Memory_model.table1

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablations () =
  section "Ablation: NACK compensation under real loss (Section 3.4)";
  Format.printf "%-14s %14s %9s %14s@." "compensation" "completion(us)" "timeouts"
    "comp. NACKs";
  List.iter
    (fun r ->
      Format.printf "%-14s %14.1f %9d %14d@."
        (if r.Ablation.comp_enabled then "on" else "off")
        r.Ablation.completion_us r.Ablation.timeouts r.Ablation.compensations)
    (Ablation.compensation ());
  section "Ablation: ring capacity factor F (Section 4 sizing rule)";
  Format.printf "%-8s %18s %9s %7s %14s@." "F" "underflow-forward" "blocked"
    "retx" "completion(us)";
  List.iter
    (fun r ->
      Format.printf "%-8.2f %18d %9d %7d %14.1f@." r.Ablation.factor
        r.Ablation.underflow_forwards r.Ablation.blocked r.Ablation.retx
        r.Ablation.qf_completion_us)
    (Ablation.queue_factor ());
  section "Ablation: RNIC transport generations on a sprayed workload";
  Format.printf "%-26s %12s %11s %14s@." "transport" "goodput" "retx ratio"
    "NACKs->sender";
  List.iter
    (fun r ->
      Format.printf "%-26s %8.1f Gbps %11.3f %14d@." r.Ablation.label
        r.Ablation.goodput_gbps r.Ablation.retx_ratio r.Ablation.nacks_to_sender)
    (Ablation.transports ());
  section "Ablation: ring factor F under last-hop RTT jitter (5 us)";
  Format.printf "%-8s %18s %9s %7s %14s@." "F" "underflow-forward" "blocked"
    "retx" "completion(us)";
  List.iter
    (fun r ->
      Format.printf "%-8.2f %18d %9d %7d %14.1f@." r.Ablation.factor
        r.Ablation.underflow_forwards r.Ablation.blocked r.Ablation.retx
        r.Ablation.qf_completion_us)
    (Ablation.queue_factor ~jitter:(Sim_time.us 5) ());
  section "Ablation: Eq. 4 memory model vs measured ToR state";
  (let m = Ablation.memory_footprint () in
   Format.printf "  %d cross-rack QPs: measured %d B, model %d B@."
     m.Ablation.qps m.Ablation.tor_flow_tables_bytes m.Ablation.model_bytes);
  section "Ablation: PSN spraying with vs without NACK filtering";
  Format.printf "%-26s %12s %11s %14s@." "configuration" "goodput" "retx ratio"
    "NACKs->sender";
  List.iter
    (fun r ->
      Format.printf "%-26s %8.1f Gbps %11.3f %14d@." r.Ablation.label
        r.Ablation.goodput_gbps r.Ablation.retx_ratio r.Ablation.nacks_to_sender)
    (Ablation.filtering ());
  (* File one flattened result per study alongside the tables (seed 5 is
     the Ablation default the tables above used). *)
  List.iter
    (fun study ->
      save_result
        (Campaign_runner.run_job (Campaign_spec.Ablation_job { study; seed = 5 })))
    Campaign_spec.studies_known

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "Micro-benchmarks (per-packet primitives)";
  let open Bechamel in
  let conn = Flow_id.make ~src:1 ~dst:2 ~qpn:3 in
  let spray_test =
    Test.make ~name:"spray: Eq.1 path decision"
      (Staged.stage (fun () ->
           ignore
             (Spray.path_for_psn ~psn:(Psn.of_int 123456) ~base:7 ~paths:256)))
  in
  let validate_test =
    Test.make ~name:"spray: Eq.3 NACK validation"
      (Staged.stage (fun () ->
           ignore
             (Spray.nack_is_valid ~tpsn:(Psn.of_int 1001) ~epsn:(Psn.of_int 998)
                ~paths:256)))
  in
  let ring = Psn_queue.create ~capacity:128 in
  let ring_counter = ref 0 in
  let ring_test =
    Test.make ~name:"psn_queue: push (ring)"
      (Staged.stage (fun () ->
           incr ring_counter;
           Psn_queue.push ring (Psn.of_int !ring_counter)))
  in
  let scan_queue = Psn_queue.create ~capacity:128 in
  let scan_counter = ref 0 in
  let scan_test =
    Test.make ~name:"psn_queue: tPSN scan (push+pop_until_greater)"
      (Staged.stage (fun () ->
           Psn_queue.push scan_queue (Psn.of_int (!scan_counter + 3));
           Psn_queue.push scan_queue (Psn.of_int !scan_counter);
           ignore
             (Psn_queue.pop_until_greater scan_queue (Psn.of_int !scan_counter));
           scan_counter := !scan_counter + 4))
  in
  let map = Path_map.build ~paths:256 in
  let pathmap_test =
    Test.make ~name:"path_map: sport rewrite"
      (Staged.stage (fun () ->
           ignore (Path_map.rewrite map ~sport:0xBEEF ~delta_path:37)))
  in
  let hash_test =
    Test.make ~name:"ecmp: 5-tuple flow hash"
      (Staged.stage (fun () ->
           ignore (Ecmp_hash.flow_hash ~src:11 ~dst:22 ~sport:3333 ~dport:4791)))
  in
  let heap = Event_queue.create () in
  let heap_counter = ref 0 in
  let heap_test =
    Test.make ~name:"event_queue: add+pop"
      (Staged.stage (fun () ->
           incr heap_counter;
           ignore
             (Event_queue.add heap
                ~time:(!heap_counter land 1023)
                ~cb:0 ~a:0 ~b:0 ~obj:(Obj.repr ()));
           if !heap_counter land 7 = 0 && not (Event_queue.is_empty heap)
           then Event_queue.drop heap))
  in
  let packet_test =
    Test.make ~name:"packet: data constructor"
      (Staged.stage (fun () ->
           ignore
             (Packet.data ~conn ~sport:9 ~psn:(Psn.of_int 5) ~payload:1500
                ~last_of_msg:false ~birth:0 ())))
  in
  (* Telemetry hot paths; the histogram record must stay under ~100 ns or
     instrumenting per-packet sites would distort the simulator. *)
  let hist = Histogram.create () in
  let hist_counter = ref 0 in
  let hist_test =
    Test.make ~name:"telemetry: histogram record"
      (Staged.stage (fun () ->
           incr hist_counter;
           Histogram.record hist (float_of_int (1 + (!hist_counter land 0xFFFF)))))
  in
  let registry = Metrics.create () in
  let cached = Metrics.counter registry "bench_counter" in
  let counter_test =
    Test.make ~name:"telemetry: counter incr (cached handle)"
      (Staged.stage (fun () -> Metrics.incr cached))
  in
  let tele_ctx = Telemetry.enable ~event_capacity:4096 () in
  ignore tele_ctx;
  let ev_counter = ref 0 in
  let event_test =
    Test.make ~name:"telemetry: event record (ring)"
      (Staged.stage (fun () ->
           incr ev_counter;
           Telemetry.record ~time:!ev_counter
             (Event.Retransmission { conn; psn = !ev_counter })))
  in
  let tests =
    [
      spray_test; validate_test; ring_test; scan_test; pathmap_test; hash_test;
      heap_test; packet_test; hist_test; counter_test; event_test;
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  Format.printf "%-48s %14s@." "primitive" "cost";
  let measured = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) ->
              measured := (name, est) :: !measured;
              Format.printf "%-48s %10.1f ns/op@." name est
          | Some [] | None -> Format.printf "%-48s %14s@." name "n/a")
        analyzed)
    tests;
  Telemetry.disable ();
  (* Machine-dependent, so filed under a free-form id the gate ignores:
     a perf trajectory, not a regression contract. *)
  let sanitize n =
    String.map
      (fun c ->
        match Char.lowercase_ascii c with
        | ('a' .. 'z' | '0' .. '9') as c -> c
        | _ -> '_')
      n
  in
  save_result
    (Campaign_result.make_raw ~id:"bench:micro"
       ~metrics:
         (List.rev_map (fun (n, v) -> (sanitize n ^ "_ns", v)) !measured))

(* ------------------------------------------------------------------ *)

let all_targets =
  [
    ("fig1b", fig1b);
    ("fig1c", fig1c);
    ("fig1d", fig1d);
    ("fig5a", fig5a);
    ("fig5b", fig5b);
    ("table1", table1);
    ("ablations", ablations);
    ("micro", micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let targets =
    match args with
    | [] | [ "all" ] -> List.map fst all_targets
    | ts -> ts
  in
  List.iter
    (fun t ->
      match List.assoc_opt t all_targets with
      | Some f -> f ()
      | None ->
          Format.eprintf "unknown bench target %S; available: %s all@." t
            (String.concat " " (List.map fst all_targets));
          exit 2)
    targets;
  report_saved ()
