(* Engine hot-path benchmark: events/sec, minor-heap words per simulated
   event and wall-clock for the quick/incast presets (DESIGN.md §10).

   Emits BENCH_engine.json so perf is tracked PR-over-PR.  The numbers
   under "baseline" were measured on the pre-optimization tree (commit
   aaa39e0, closure-per-event engine) on the same machine class that runs
   `make check`; "current" is re-measured on every invocation, and the
   "ratio" block is current-vs-baseline.  `--smoke` runs a tiny iteration
   count and validates the emitted JSON — it gates `make check` without
   costing CI time; real numbers come from `make bench-engine`. *)

let out_path = ref "BENCH_engine.json"
let smoke = ref false

(* --- measurement ------------------------------------------------------ *)

type sample = {
  events : int;
  wall_s : float;
  minor_words : float;
}

let events_per_sec s =
  if s.wall_s > 0. then float_of_int s.events /. s.wall_s else 0.

let words_per_event s =
  if s.events > 0 then s.minor_words /. float_of_int s.events else 0.

let measure f =
  let words0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let events = f () in
  let wall_s = Unix.gettimeofday () -. t0 in
  let minor_words = Gc.minor_words () -. words0 in
  { events; wall_s; minor_words }

(* --- targets ---------------------------------------------------------- *)

(* Synthetic self-rescheduling event mill: [width] concurrent timers,
   each firing reschedules itself at a deterministic pseudo-random
   offset, so the heap stays [width] deep and every event exercises
   add + pop + dispatch. *)
let bench_mill ~events ~reps =
  let width = 512 in
  let eng = Engine.create () in
  let fired = ref 0 in
  let rec tick i () =
    incr fired;
    let delay = Sim_time.ns (1 + ((i * 31) + !fired) land 255) in
    ignore (Engine.schedule eng ~delay (tick i))
  in
  for i = 0 to width - 1 do
    ignore (Engine.schedule eng ~delay:(Sim_time.ns (i land 63)) (tick i))
  done;
  (* Best-of-[reps] windows over the same running mill: the workload is
     stateless across windows (no global interner or pool touched), so
     repeats only filter scheduler noise out of the wall-clock. *)
  let best = ref None in
  for _ = 1 to reps do
    let before = Engine.events_processed eng in
    let s =
      measure (fun () ->
          Engine.run eng ~max_events:events;
          Engine.events_processed eng - before)
    in
    match !best with
    | Some b when b.wall_s <= s.wall_s -> ()
    | _ -> best := Some s
  done;
  match !best with Some s -> s | None -> assert false

(* The incast preset (Experiment.default_incast), replicated here rather
   than called through Experiment so we can read the engine's event count
   for the words/event metric.  Keep in sync with Experiment.run_incast. *)
let bench_incast ~schemes ~fanin ~bytes ~seed =
  let wheel = ref 0 and heap = ref 0 in
  let s =
    measure (fun () ->
      List.fold_left
        (fun acc scheme_name ->
          let scheme =
            match Network.scheme_of_string scheme_name with
            | Ok s -> s
            | Error e -> failwith e
          in
          let fabric =
            {
              Leaf_spine.motivation with
              Leaf_spine.hosts_per_leaf = fanin;
              n_spines = 4;
            }
          in
          let params =
            let base = Network.default_params ~fabric ~scheme in
            { base with Network.seed }
          in
          let net = Network.build params in
          let ls = Network.fabric net in
          let receiver = Leaf_spine.host ls ~leaf:1 ~index:0 in
          let done_ = ref 0 in
          for i = 0 to fanin - 1 do
            let src = Leaf_spine.host ls ~leaf:0 ~index:i in
            let qp = Network.connect net ~src ~dst:receiver in
            Rnic.post_send qp ~bytes ~on_complete:(fun _ -> incr done_)
          done;
          Network.run net ~until:(Sim_time.sec 30);
          if !done_ < fanin then failwith "engine_bench: incast incomplete";
          let w, h = Engine.sched_stats (Network.engine net) in
          wheel := !wheel + w;
          heap := !heap + h;
          acc + Engine.events_processed (Network.engine net))
        0 schemes)
  in
  (* The wheel-vs-heap split is the §15 design invariant: every periodic
     timer in the incast preset fits the wheel's epoch, so near all
     schedules should take the dense O(1) path. *)
  let total = !wheel + !heap in
  let hit = if total > 0 then float_of_int !wheel /. float_of_int total else 0. in
  if hit <= 0.90 then
    failwith
      (Printf.sprintf
         "engine_bench: incast wheel hit ratio %.4f <= 0.90 (wheel=%d heap=%d)"
         hit !wheel !heap);
  (s, !wheel, !heap, hit)

(* Single-switch forward/enqueue microbench: a standalone ToR with all
   its ports attached and sink deliveries, fed pooled data packets from
   four cross-rack flows in batches small enough to never hit buffer
   admission.  Measures the pure per-packet forwarding cost
   (route lookup + path choice + enqueue + tx/propagate events) as
   packets/sec and minor words/packet, and asserts the compiled route
   cache takes zero hashtable probes once warm. *)
let bench_fwd ~packets ~reps =
  let engine = Engine.create () in
  let ls = Leaf_spine.build Leaf_spine.motivation in
  let topo = ls.Leaf_spine.topo in
  let routing = Routing.compute topo in
  let tor = ls.Leaf_spine.leaves.(0) in
  let cfg =
    Switch.default_config ~bw:Leaf_spine.motivation.Leaf_spine.fabric_bw
      Lb_policy.Random_spray
  in
  let sw =
    Switch.create ~engine ~topo ~routing ~node:tor ~config:cfg
      ~rng:(Rng.create ~seed:7)
  in
  List.iter
    (fun (peer, link_id) ->
      let link = Topology.link topo link_id in
      let port =
        Port.create ~engine ~bandwidth:link.Topology.bandwidth
          ~delay:link.Topology.delay
          ~label:(Printf.sprintf "%d->%d" tor peer)
      in
      Port.set_deliver port Packet_pool.release;
      Switch.attach_port sw ~link_id ~peer port)
    (Topology.neighbors topo tor);
  let nflows = 4 in
  let conns =
    Array.init nflows (fun i ->
        Flow_id.make
          ~src:(Leaf_spine.host ls ~leaf:0 ~index:i)
          ~dst:(Leaf_spine.host ls ~leaf:1 ~index:i)
          ~qpn:1)
  in
  let psn = ref 0 in
  let batch = 128 in
  (* Arrivals land on a lane and the switch drains it as one batched
     activation — the breathe shape the data plane runs at line rate. *)
  let lane = Fifo.create ~capacity:batch () in
  let run_batch () =
    for i = 0 to batch - 1 do
      let k = i land (nflows - 1) in
      let pkt =
        Packet_pool.data ~conn:conns.(k)
          ~sport:(0x8000 lor k)
          ~psn:(Psn.of_int !psn) ~payload:1000 ~last_of_msg:false
          ~birth:(Engine.now engine) ()
      in
      incr psn;
      Fifo.push lane pkt
    done;
    Switch.receive_batch sw lane;
    Engine.run engine
  in
  (* Warm the route cache and the packet pool before measuring, then
     require the steady state to be probe-free. *)
  run_batch ();
  run_batch ();
  let probes0 = Switch.forward_hash_probes () in
  let iters = packets / batch in
  (* Best-of-[reps] windows on the same warm switch: later windows reuse
     the same connections and route cache, so repeats only filter machine
     noise; the probe-free steady-state assertion spans every window. *)
  let best = ref None in
  for _ = 1 to reps do
    let s =
      measure (fun () ->
          for _ = 1 to iters do
            run_batch ()
          done;
          iters * batch)
    in
    match !best with
    | Some b when b.wall_s <= s.wall_s -> ()
    | _ -> best := Some s
  done;
  let s = match !best with Some s -> s | None -> assert false in
  let steady_probes = Switch.forward_hash_probes () - probes0 in
  if steady_probes <> 0 then
    failwith
      (Printf.sprintf
         "engine_bench: %d hashtable probes on the steady-state forward path"
         steady_probes);
  if Switch.forwarded_packets sw < packets then
    failwith "engine_bench: fwd forwarded fewer packets than fed";
  (s, steady_probes)

(* The CI campaign grid, executed serially in-process: wall-clock here is
   what a single `make campaign-quick` worker pays per job. *)
let bench_quick () =
  let spec =
    match Campaign_spec.preset "quick" with
    | Some s -> s
    | None -> failwith "engine_bench: no quick preset"
  in
  let jobs = Campaign_spec.jobs_of spec in
  let s =
    measure (fun () ->
        List.iter (fun j -> ignore (Campaign_runner.run_job j)) jobs;
        List.length jobs)
  in
  (s, List.length jobs)

(* --- baseline (pre-optimization tree) --------------------------------- *)

type numbers = {
  mill_eps : float;
  mill_wpe : float;
  incast_events : int;
  incast_eps : float;
  incast_wpe : float;
  quick_jobs : int;
  quick_wall_s : float;
  fwd_pps : float;
  fwd_wpp : float;
}

(* Measured at commit 631052b — the dense-forwarding tree of PR 8
   (compiled route cache, pooled packets, sharded interlinks), before
   the hierarchical timing wheel — with this same harness on the machine
   class that runs `make check`; regenerate via EXPERIMENTS.md §
   "Engine benchmark" after intentional model changes. *)
let baseline : numbers option =
  Some
    {
      mill_eps = 6576935.;
      mill_wpe = 5.00;
      incast_events = 330667;
      incast_eps = 5798418.;
      incast_wpe = 4.66;
      quick_jobs = 6;
      quick_wall_s = 1.58;
      fwd_pps = 3410705.;
      fwd_wpp = 23.00;
    }

(* --- JSON ------------------------------------------------------------- *)

let j_sample s =
  Campaign_json.Obj
    [
      ("events", Campaign_json.Num (float_of_int s.events));
      ("wall_s", Campaign_json.Num s.wall_s);
      ("events_per_sec", Campaign_json.Num (events_per_sec s));
      ("minor_words_per_event", Campaign_json.Num (words_per_event s));
    ]

let j_baseline (b : numbers) =
  Campaign_json.Obj
    [
      ("commit", Campaign_json.Str "631052b");
      ("mill_events_per_sec", Campaign_json.Num b.mill_eps);
      ("mill_minor_words_per_event", Campaign_json.Num b.mill_wpe);
      ("incast_events", Campaign_json.Num (float_of_int b.incast_events));
      ("incast_events_per_sec", Campaign_json.Num b.incast_eps);
      ("incast_minor_words_per_event", Campaign_json.Num b.incast_wpe);
      ("quick_jobs", Campaign_json.Num (float_of_int b.quick_jobs));
      ("quick_wall_s", Campaign_json.Num b.quick_wall_s);
      ("fwd_packets_per_sec", Campaign_json.Num b.fwd_pps);
      ("fwd_minor_words_per_packet", Campaign_json.Num b.fwd_wpp);
    ]

let j_incast (s, wheel, heap, hit) =
  Campaign_json.Obj
    [
      ("events", Campaign_json.Num (float_of_int s.events));
      ("wall_s", Campaign_json.Num s.wall_s);
      ("events_per_sec", Campaign_json.Num (events_per_sec s));
      ("minor_words_per_event", Campaign_json.Num (words_per_event s));
      ("wheel_adds", Campaign_json.Num (float_of_int wheel));
      ("heap_adds", Campaign_json.Num (float_of_int heap));
      ("wheel_hit_ratio", Campaign_json.Num hit);
    ]

let j_fwd (s, probes) =
  Campaign_json.Obj
    [
      ("packets", Campaign_json.Num (float_of_int s.events));
      ("wall_s", Campaign_json.Num s.wall_s);
      ("packets_per_sec", Campaign_json.Num (events_per_sec s));
      ("minor_words_per_packet", Campaign_json.Num (words_per_event s));
      ("steady_state_hash_probes", Campaign_json.Num (float_of_int probes));
    ]

let emit ~mill ~incast ~quick ~fwd =
  let ratios =
    match (baseline, mill, incast, quick) with
    | Some b, Some mill, Some (incast, _, _, _), Some (q, _) ->
        [
          ( "ratios",
            Campaign_json.Obj
              ([
                 ( "incast_minor_words_reduction",
                   Campaign_json.Num (b.incast_wpe /. words_per_event incast)
                 );
                 ( "incast_events_per_sec_speedup",
                   Campaign_json.Num (events_per_sec incast /. b.incast_eps) );
                 ( "quick_wall_speedup",
                   Campaign_json.Num (b.quick_wall_s /. q.wall_s) );
                 ( "mill_events_per_sec_speedup",
                   Campaign_json.Num (events_per_sec mill /. b.mill_eps) );
               ]
              @
              match fwd with
              | Some (f, _) when b.fwd_pps > 0. ->
                  [
                    ( "fwd_packets_per_sec_speedup",
                      Campaign_json.Num (events_per_sec f /. b.fwd_pps) );
                  ]
              | Some _ | None -> []) );
        ]
    | _ -> []
  in
  let quick_fields =
    match quick with
    | Some (q, jobs) ->
        [
          ( "quick",
            Campaign_json.Obj
              [
                ("jobs", Campaign_json.Num (float_of_int jobs));
                ("wall_s", Campaign_json.Num q.wall_s);
              ] );
        ]
    | None -> []
  in
  let opt key f v = match v with Some v -> [ (key, f v) ] | None -> [] in
  let doc =
    Campaign_json.Obj
      ([
         ("bench", Campaign_json.Str "engine");
         ("mode", Campaign_json.Str (if !smoke then "smoke" else "full"));
       ]
      @ opt "mill" j_sample mill
      @ opt "incast" j_incast incast
      @ quick_fields
      @ opt "fwd" j_fwd fwd
      @ (match baseline with
        | Some b -> [ ("baseline", j_baseline b) ]
        | None -> [])
      @ ratios)
  in
  let oc = open_out !out_path in
  output_string oc (Campaign_json.to_string doc);
  output_char oc '\n';
  close_out oc

(* The smoke path is the `make check` gate: it must prove the harness
   runs end-to-end and that the file it wrote is valid JSON with the
   fields the trajectory tooling reads. *)
let validate_output ~keys =
  let ic = open_in !out_path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Campaign_json.of_string s with
  | Error e -> failwith (Printf.sprintf "engine_bench: bad JSON emitted: %s" e)
  | Ok doc ->
      List.iter
        (fun key ->
          match Campaign_json.member key doc with
          | Some _ -> ()
          | None ->
              failwith (Printf.sprintf "engine_bench: missing field %S" key))
        keys

let pp_fwd (f, probes) =
  Printf.sprintf "fwd %.0f pkt/s, %.2f w/pkt, %d steady probes"
    (events_per_sec f) (words_per_event f) probes

let () =
  let fwd_only = ref false in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--fwd-only" :: rest ->
        fwd_only := true;
        parse rest
    | "--out" :: path :: rest ->
        out_path := path;
        parse rest
    | arg :: _ ->
        prerr_endline
          ("usage: engine_bench [--smoke] [--fwd-only] [--out PATH]; got "
         ^ arg);
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let reps = if !smoke then 1 else 3 in
  let fwd = bench_fwd ~packets:(if !smoke then 12_800 else 1_280_000) ~reps in
  if !fwd_only then begin
    emit ~mill:None ~incast:None ~quick:None ~fwd:(Some fwd);
    validate_output ~keys:[ "bench"; "mode"; "fwd" ];
    Printf.printf "engine_bench: %s\n" (pp_fwd fwd)
  end
  else begin
    let mill = bench_mill ~events:(if !smoke then 20_000 else 4_000_000) ~reps in
    (* The incast preset runs single-shot in both modes: its event count
       is the pinned trace-identity fingerprint, and a repeat would
       advance the domain-local flow interner and shift every conn id. *)
    let ((incast_s, wheel, heap, hit) as incast) =
      if !smoke then
        bench_incast ~schemes:[ "ecmp" ] ~fanin:2 ~bytes:50_000 ~seed:3
      else
        bench_incast
          ~schemes:[ "ecmp"; "adaptive"; "random-spray"; "themis" ]
          ~fanin:8 ~bytes:1_000_000 ~seed:3
    in
    let quick = if !smoke then None else Some (bench_quick ()) in
    emit ~mill:(Some mill) ~incast:(Some incast) ~quick ~fwd:(Some fwd);
    validate_output ~keys:[ "bench"; "mode"; "mill"; "incast"; "fwd" ];
    Printf.printf
      "engine_bench: mill %.0f ev/s, %.2f w/ev | incast %d ev, %.0f ev/s, \
       %.2f w/ev, wheel %.2f%% (%d/%d) | %s%s\n"
      (events_per_sec mill) (words_per_event mill) incast_s.events
      (events_per_sec incast_s) (words_per_event incast_s) (hit *. 100.)
      wheel (wheel + heap) (pp_fwd fwd)
      (match quick with
      | Some (q, jobs) -> Printf.sprintf " | quick %d jobs %.2f s" jobs q.wall_s
      | None -> "")
  end;
  Printf.printf "engine_bench: wrote %s\n" !out_path
