(* Engine hot-path benchmark: events/sec, minor-heap words per simulated
   event and wall-clock for the quick/incast presets (DESIGN.md §10).

   Emits BENCH_engine.json so perf is tracked PR-over-PR.  The numbers
   under "baseline" were measured on the pre-optimization tree (commit
   aaa39e0, closure-per-event engine) on the same machine class that runs
   `make check`; "current" is re-measured on every invocation, and the
   "ratio" block is current-vs-baseline.  `--smoke` runs a tiny iteration
   count and validates the emitted JSON — it gates `make check` without
   costing CI time; real numbers come from `make bench-engine`. *)

let out_path = ref "BENCH_engine.json"
let smoke = ref false

(* --- measurement ------------------------------------------------------ *)

type sample = {
  events : int;
  wall_s : float;
  minor_words : float;
}

let events_per_sec s =
  if s.wall_s > 0. then float_of_int s.events /. s.wall_s else 0.

let words_per_event s =
  if s.events > 0 then s.minor_words /. float_of_int s.events else 0.

let measure f =
  let words0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let events = f () in
  let wall_s = Unix.gettimeofday () -. t0 in
  let minor_words = Gc.minor_words () -. words0 in
  { events; wall_s; minor_words }

(* --- targets ---------------------------------------------------------- *)

(* Synthetic self-rescheduling event mill: [width] concurrent timers,
   each firing reschedules itself at a deterministic pseudo-random
   offset, so the heap stays [width] deep and every event exercises
   add + pop + dispatch. *)
let bench_mill ~events =
  let width = 512 in
  let eng = Engine.create () in
  let fired = ref 0 in
  let rec tick i () =
    incr fired;
    let delay = Sim_time.ns (1 + ((i * 31) + !fired) land 255) in
    ignore (Engine.schedule eng ~delay (tick i))
  in
  for i = 0 to width - 1 do
    ignore (Engine.schedule eng ~delay:(Sim_time.ns (i land 63)) (tick i))
  done;
  measure (fun () ->
      Engine.run eng ~max_events:events;
      Engine.events_processed eng)

(* The incast preset (Experiment.default_incast), replicated here rather
   than called through Experiment so we can read the engine's event count
   for the words/event metric.  Keep in sync with Experiment.run_incast. *)
let bench_incast ~schemes ~fanin ~bytes ~seed =
  measure (fun () ->
      List.fold_left
        (fun acc scheme_name ->
          let scheme =
            match Network.scheme_of_string scheme_name with
            | Ok s -> s
            | Error e -> failwith e
          in
          let fabric =
            {
              Leaf_spine.motivation with
              Leaf_spine.hosts_per_leaf = fanin;
              n_spines = 4;
            }
          in
          let params =
            let base = Network.default_params ~fabric ~scheme in
            { base with Network.seed }
          in
          let net = Network.build params in
          let ls = Network.fabric net in
          let receiver = Leaf_spine.host ls ~leaf:1 ~index:0 in
          let done_ = ref 0 in
          for i = 0 to fanin - 1 do
            let src = Leaf_spine.host ls ~leaf:0 ~index:i in
            let qp = Network.connect net ~src ~dst:receiver in
            Rnic.post_send qp ~bytes ~on_complete:(fun _ -> incr done_)
          done;
          Network.run net ~until:(Sim_time.sec 30);
          if !done_ < fanin then failwith "engine_bench: incast incomplete";
          acc + Engine.events_processed (Network.engine net))
        0 schemes)

(* The CI campaign grid, executed serially in-process: wall-clock here is
   what a single `make campaign-quick` worker pays per job. *)
let bench_quick () =
  let spec =
    match Campaign_spec.preset "quick" with
    | Some s -> s
    | None -> failwith "engine_bench: no quick preset"
  in
  let jobs = Campaign_spec.jobs_of spec in
  let s =
    measure (fun () ->
        List.iter (fun j -> ignore (Campaign_runner.run_job j)) jobs;
        List.length jobs)
  in
  (s, List.length jobs)

(* --- baseline (pre-optimization tree) --------------------------------- *)

type numbers = {
  mill_eps : float;
  mill_wpe : float;
  incast_events : int;
  incast_eps : float;
  incast_wpe : float;
  quick_jobs : int;
  quick_wall_s : float;
}

(* Measured at commit aaa39e0 (closure-per-event engine, unpooled
   packets) with this same harness; regenerate via EXPERIMENTS.md §
   "Engine benchmark" after intentional model changes. *)
let baseline : numbers option =
  Some
    {
      mill_eps = 4298006.;
      mill_wpe = 19.00;
      incast_events = 330667;
      incast_eps = 2971971.;
      incast_wpe = 29.85;
      quick_jobs = 6;
      quick_wall_s = 5.36;
    }

(* --- JSON ------------------------------------------------------------- *)

let j_sample s =
  Campaign_json.Obj
    [
      ("events", Campaign_json.Num (float_of_int s.events));
      ("wall_s", Campaign_json.Num s.wall_s);
      ("events_per_sec", Campaign_json.Num (events_per_sec s));
      ("minor_words_per_event", Campaign_json.Num (words_per_event s));
    ]

let j_baseline (b : numbers) =
  Campaign_json.Obj
    [
      ("commit", Campaign_json.Str "aaa39e0");
      ("mill_events_per_sec", Campaign_json.Num b.mill_eps);
      ("mill_minor_words_per_event", Campaign_json.Num b.mill_wpe);
      ("incast_events", Campaign_json.Num (float_of_int b.incast_events));
      ("incast_events_per_sec", Campaign_json.Num b.incast_eps);
      ("incast_minor_words_per_event", Campaign_json.Num b.incast_wpe);
      ("quick_jobs", Campaign_json.Num (float_of_int b.quick_jobs));
      ("quick_wall_s", Campaign_json.Num b.quick_wall_s);
    ]

let emit ~mill ~incast ~quick =
  let ratios =
    match (baseline, quick) with
    | Some b, Some (q, _) ->
        [
          ( "ratios",
            Campaign_json.Obj
              [
                ( "incast_minor_words_reduction",
                  Campaign_json.Num (b.incast_wpe /. words_per_event incast) );
                ( "quick_wall_speedup",
                  Campaign_json.Num (b.quick_wall_s /. q.wall_s) );
                ( "mill_events_per_sec_speedup",
                  Campaign_json.Num (events_per_sec mill /. b.mill_eps) );
              ] );
        ]
    | _ -> []
  in
  let quick_fields =
    match quick with
    | Some (q, jobs) ->
        [
          ( "quick",
            Campaign_json.Obj
              [
                ("jobs", Campaign_json.Num (float_of_int jobs));
                ("wall_s", Campaign_json.Num q.wall_s);
              ] );
        ]
    | None -> []
  in
  let doc =
    Campaign_json.Obj
      ([
         ("bench", Campaign_json.Str "engine");
         ("mode", Campaign_json.Str (if !smoke then "smoke" else "full"));
         ("mill", j_sample mill);
         ("incast", j_sample incast);
       ]
      @ quick_fields
      @ (match baseline with
        | Some b -> [ ("baseline", j_baseline b) ]
        | None -> [])
      @ ratios)
  in
  let oc = open_out !out_path in
  output_string oc (Campaign_json.to_string doc);
  output_char oc '\n';
  close_out oc

(* The smoke path is the `make check` gate: it must prove the harness
   runs end-to-end and that the file it wrote is valid JSON with the
   fields the trajectory tooling reads. *)
let validate_output () =
  let ic = open_in !out_path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Campaign_json.of_string s with
  | Error e -> failwith (Printf.sprintf "engine_bench: bad JSON emitted: %s" e)
  | Ok doc ->
      List.iter
        (fun key ->
          match Campaign_json.member key doc with
          | Some _ -> ()
          | None ->
              failwith (Printf.sprintf "engine_bench: missing field %S" key))
        [ "bench"; "mode"; "mill"; "incast" ]

let () =
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--out" :: path :: rest ->
        out_path := path;
        parse rest
    | arg :: _ ->
        prerr_endline ("usage: engine_bench [--smoke] [--out PATH]; got " ^ arg);
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let mill = bench_mill ~events:(if !smoke then 20_000 else 4_000_000) in
  let incast =
    if !smoke then
      bench_incast ~schemes:[ "ecmp" ] ~fanin:2 ~bytes:50_000 ~seed:3
    else
      bench_incast
        ~schemes:[ "ecmp"; "adaptive"; "random-spray"; "themis" ]
        ~fanin:8 ~bytes:1_000_000 ~seed:3
  in
  let quick = if !smoke then None else Some (bench_quick ()) in
  emit ~mill ~incast ~quick;
  validate_output ();
  Printf.printf "engine_bench: mill %.0f ev/s, %.2f w/ev | incast %d ev, %.0f ev/s, %.2f w/ev%s\n"
    (events_per_sec mill) (words_per_event mill) incast.events
    (events_per_sec incast) (words_per_event incast)
    (match quick with
    | Some (q, jobs) -> Printf.sprintf " | quick %d jobs %.2f s" jobs q.wall_s
    | None -> "");
  Printf.printf "engine_bench: wrote %s\n" !out_path
