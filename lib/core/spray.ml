let path_for_psn ~psn ~base ~paths =
  if paths <= 0 then invalid_arg "Spray.path_for_psn: paths must be positive";
  ((Psn.to_int psn mod paths) + (base mod paths)) mod paths

let same_path ~a ~b ~paths = Psn.same_residue a b ~paths
let nack_is_valid ~tpsn ~epsn ~paths = same_path ~a:tpsn ~b:epsn ~paths

let base_for_flow (flow : Flow_id.t) ~sport ~paths =
  let h =
    Ecmp_hash.flow_hash ~src:flow.Flow_id.src ~dst:flow.Flow_id.dst ~sport
      ~dport:Headers.roce_dst_port
  in
  Ecmp_hash.path_of_hash ~hash:h ~paths

let base_for_flow_id ~id (flow : Flow_id.t) ~sport ~paths =
  (* Slot [2 * id]: the data-direction slot, shared with the switch ECMP
     hash of the flow's data packets (same src/dst/sport tuple), so one
     avalanche serves both consumers. *)
  let h =
    Ecmp_hash.flow_hash_id ~id:(id lsl 1) ~src:flow.Flow_id.src
      ~dst:flow.Flow_id.dst ~sport ~dport:Headers.roce_dst_port
  in
  Ecmp_hash.path_of_hash ~hash:h ~paths
