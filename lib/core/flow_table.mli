(** The destination-ToR flow table (Fig. 4a).

    One entry per cross-rack QP, created when the ToR observes the QP
    (connection-setup interception in the paper; explicit registration
    here).  An entry carries the ring-based PSN queue used for tPSN
    identification and the [BePSN]/[Valid] pair driving NACK compensation.

    Per Section 4 an entry costs 20 bytes on the switch: 13 (QP id) +
    3 (blocked ePSN) + 1 (valid flag) + 3 (queue metadata). *)

type entry = {
  queue : Psn_queue.t;
  mutable bepsn : Psn.t;  (** Blocked ePSN; meaningful only when [valid]. *)
  mutable valid : bool;
      (** True when a blocked NACK for [bepsn] may still need
          compensation. *)
}

type t

val entry_bytes : int
(** 20 (Section 4). *)

val create : queue_capacity:int -> t
(** [queue_capacity] sizes each new entry's PSN queue. *)

val find_or_add : t -> Flow_id.t -> entry
(** Interns the flow to obtain its dense id; per-packet callers that
    already carry it should use {!find_or_add_id}. *)

val find_or_add_id : t -> id:int -> Flow_id.t -> entry
(** [id] must be [Flow_id.intern flow] (e.g. [Packet.conn_id]); the
    hot-path lookup, a single array index. *)

val find : t -> Flow_id.t -> entry option
val remove : t -> Flow_id.t -> unit
val size : t -> int
val iter : (Flow_id.t -> entry -> unit) -> t -> unit
(** In interned-id (first-touch) order. *)


val memory_bytes : t -> int
(** Switch SRAM the table would occupy: entries * (20 + queue capacity). *)
