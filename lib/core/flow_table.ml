type entry = {
  queue : Psn_queue.t;
  mutable bepsn : Psn.t;
  mutable valid : bool;
}

(* Dense storage indexed by the flow's interned id: per-packet lookups
   ([find_or_add_id], fed by [Packet.conn_id]) are a single array read;
   the hash is paid only by id-less entry points, which go through the
   global interner.  Slot arrays are grown on demand and never shrink —
   ids are small and dense by construction. *)
type slot = { s_flow : Flow_id.t; s_entry : entry }

type t = {
  queue_capacity : int;
  mutable slots : slot option array;  (* interned flow id -> entry *)
  mutable count : int;
}

let entry_bytes = 20

let create ~queue_capacity =
  if queue_capacity < 1 then invalid_arg "Flow_table.create: queue_capacity";
  { queue_capacity; slots = Array.make 16 None; count = 0 }

let grow t id =
  let len = Array.length t.slots in
  let ncap = ref (Stdlib.max 16 (2 * len)) in
  while id >= !ncap do
    ncap := 2 * !ncap
  done;
  let nslots = Array.make !ncap None in
  Array.blit t.slots 0 nslots 0 len;
  t.slots <- nslots

let find_or_add_id t ~id flow =
  if id >= Array.length t.slots then grow t id;
  match Array.unsafe_get t.slots id with
  | Some s -> s.s_entry
  | None ->
      let e =
        {
          queue = Psn_queue.create ~capacity:t.queue_capacity;
          bepsn = Psn.zero;
          valid = false;
        }
      in
      t.slots.(id) <- Some { s_flow = flow; s_entry = e };
      t.count <- t.count + 1;
      e

let find_or_add t flow = find_or_add_id t ~id:(Flow_id.intern flow) flow

let slot_of t flow =
  match Flow_id.lookup_interned flow with
  | None -> None
  | Some id -> if id < Array.length t.slots then t.slots.(id) else None

let find t flow =
  match slot_of t flow with None -> None | Some s -> Some s.s_entry

let remove t flow =
  match Flow_id.lookup_interned flow with
  | None -> ()
  | Some id ->
      if id < Array.length t.slots && t.slots.(id) <> None then begin
        t.slots.(id) <- None;
        t.count <- t.count - 1
      end

let size t = t.count

(* Iteration order is interned-id (first-touch) order: deterministic,
   unlike the hashed layout this replaces. *)
let iter f t =
  Array.iter
    (function None -> () | Some s -> f s.s_flow s.s_entry)
    t.slots

let memory_bytes t =
  Array.fold_left
    (fun acc slot ->
      match slot with
      | None -> acc
      | Some s -> acc + entry_bytes + Psn_queue.capacity s.s_entry.queue)
    0 t.slots
