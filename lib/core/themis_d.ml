type decision = Forward | Block

type stats = {
  nacks_seen : int;
  nacks_blocked : int;
  nacks_forwarded_valid : int;
  nacks_forwarded_underflow : int;
  compensation_sent : int;
  compensation_cancelled : int;
  data_seen : int;
}

type t = {
  mutable paths : int;
  compensation : bool;
  node : int;  (* owning ToR, for telemetry; -1 when standalone *)
  clock : unit -> Sim_time.t;  (* telemetry timestamps *)
  table : Flow_table.t;
  inject_nack :
    conn:Flow_id.t -> conn_id:int -> sport:int -> epsn:Psn.t -> unit;
  mutable nacks_seen : int;
  mutable nacks_blocked : int;
  mutable nacks_forwarded_valid : int;
  mutable nacks_forwarded_underflow : int;
  mutable compensation_sent : int;
  mutable compensation_cancelled : int;
  mutable data_seen : int;
}

let create ~paths ~queue_capacity ?(compensation = true) ?(node = -1)
    ?(clock = fun () -> Sim_time.zero) ~inject_nack () =
  if paths <= 0 then invalid_arg "Themis_d.create: paths must be positive";
  {
    paths;
    compensation;
    node;
    clock;
    table = Flow_table.create ~queue_capacity;
    inject_nack;
    nacks_seen = 0;
    nacks_blocked = 0;
    nacks_forwarded_valid = 0;
    nacks_forwarded_underflow = 0;
    compensation_sent = 0;
    compensation_cancelled = 0;
    data_seen = 0;
  }

(* Telemetry: the registry carries the NACK-verdict breakdown the
   paper's evaluation reports; the event sink gets one typed event per
   decision so per-flow timelines can be reconstructed offline. *)
let tm_verdict t verdict ev =
  if Telemetry.enabled () then begin
    Telemetry.incr_counter ~labels:[ ("verdict", verdict) ] "themis_nacks";
    Telemetry.record ~time:(t.clock ()) ev
  end

let tm_compensation t action ev =
  if Telemetry.enabled () then begin
    Telemetry.incr_counter ~labels:[ ("action", action) ] "themis_compensation";
    match ev with
    | Some ev -> Telemetry.record ~time:(t.clock ()) ev
    | None -> ()
  end

let paths t = t.paths

let set_paths t paths =
  if paths <= 0 then invalid_arg "Themis_d.set_paths: paths must be positive";
  t.paths <- paths

let register_flow t flow = ignore (Flow_table.find_or_add t.table flow)

let check_compensation t (entry : Flow_table.entry) conn conn_id sport psn =
  if entry.Flow_table.valid then begin
    let bepsn = entry.Flow_table.bepsn in
    if Psn.equal psn bepsn then begin
      (* The blocked ePSN packet was merely late, not lost. *)
      entry.Flow_table.valid <- false;
      t.compensation_cancelled <- t.compensation_cancelled + 1;
      tm_compensation t "cancelled" None
    end
    else if Psn.gt psn bepsn && Spray.same_path ~a:psn ~b:bepsn ~paths:t.paths
    then begin
      (* A later packet on BePSN's own path arrived: BePSN is lost.
         Generate the NACK the RNIC can no longer produce. *)
      entry.Flow_table.valid <- false;
      t.compensation_sent <- t.compensation_sent + 1;
      tm_compensation t "sent"
        (Some
           (Event.Nack_compensated
              { node = t.node; conn; epsn = Psn.to_int bepsn }));
      t.inject_nack ~conn ~conn_id ~sport ~epsn:bepsn
    end
  end

let on_data t (pkt : Packet.t) =
  match pkt.Packet.kind with
  | Packet.Data { psn; _ } ->
      t.data_seen <- t.data_seen + 1;
      let entry =
        Flow_table.find_or_add_id t.table ~id:pkt.Packet.conn_id
          pkt.Packet.conn
      in
      if t.compensation then
        check_compensation t entry pkt.Packet.conn pkt.Packet.conn_id
          pkt.Packet.udp_sport psn;
      Psn_queue.push entry.Flow_table.queue psn
  | Packet.Ack _ | Packet.Nack _ | Packet.Cnp | Packet.Pause _ ->
      invalid_arg "Themis_d.on_data: not a data packet"

let on_nack t (pkt : Packet.t) =
  match pkt.Packet.kind with
  | Packet.Nack { epsn } -> (
      t.nacks_seen <- t.nacks_seen + 1;
      let entry =
        Flow_table.find_or_add_id t.table ~id:pkt.Packet.conn_id
          pkt.Packet.conn
      in
      match Psn_queue.pop_until_greater entry.Flow_table.queue epsn with
      | None ->
          (* Cannot identify the trigger: err on the side of recovery. *)
          t.nacks_forwarded_underflow <- t.nacks_forwarded_underflow + 1;
          tm_verdict t "underflow"
            (Event.Nack_passed
               {
                 node = t.node;
                 conn = pkt.Packet.conn;
                 epsn = Psn.to_int epsn;
                 underflow = true;
               });
          Forward
      | Some tpsn ->
          if Spray.nack_is_valid ~tpsn ~epsn ~paths:t.paths then begin
            t.nacks_forwarded_valid <- t.nacks_forwarded_valid + 1;
            tm_verdict t "valid"
              (Event.Nack_passed
                 {
                   node = t.node;
                   conn = pkt.Packet.conn;
                   epsn = Psn.to_int epsn;
                   underflow = false;
                 });
            Forward
          end
          else begin
            t.nacks_blocked <- t.nacks_blocked + 1;
            tm_verdict t "blocked"
              (Event.Nack_blocked
                 {
                   node = t.node;
                   conn = pkt.Packet.conn;
                   epsn = Psn.to_int epsn;
                   tpsn = Psn.to_int tpsn;
                 });
            if t.compensation then
              if Psn_queue.contains entry.Flow_table.queue epsn then begin
                (* The expected packet already passed the ToR while this
                   NACK was in flight back from the NIC: it is on the last
                   hop right now, so nothing was lost and no compensation
                   may ever fire for it. *)
                entry.Flow_table.valid <- false;
                t.compensation_cancelled <- t.compensation_cancelled + 1;
                tm_compensation t "cancelled" None
              end
              else begin
                entry.Flow_table.bepsn <- epsn;
                entry.Flow_table.valid <- true
              end;
            Block
          end)
  | Packet.Data _ | Packet.Ack _ | Packet.Cnp | Packet.Pause _ ->
      invalid_arg "Themis_d.on_nack: not a NACK packet"

let stats t =
  {
    nacks_seen = t.nacks_seen;
    nacks_blocked = t.nacks_blocked;
    nacks_forwarded_valid = t.nacks_forwarded_valid;
    nacks_forwarded_underflow = t.nacks_forwarded_underflow;
    compensation_sent = t.compensation_sent;
    compensation_cancelled = t.compensation_cancelled;
    data_seen = t.data_seen;
  }

let flow_table t = t.table

let queue_overwrites t =
  let acc = ref 0 in
  Flow_table.iter
    (fun _ e -> acc := !acc + Psn_queue.overwrites e.Flow_table.queue)
    t.table;
  !acc
