(** Themis-Destination: NACK validation, blocking and compensation at the
    destination ToR (Sections 3.3 and 3.4).

    The switch calls {!on_data} for every data packet it forwards on the
    last hop (ToR -> NIC) and {!on_nack} for every NACK arriving from the
    local NIC.  [on_nack] recovers the triggering PSN (tPSN) from the
    per-QP ring queue — the first queued PSN circularly greater than the
    NACK's ePSN, correct because the RNIC emits at most one NACK per ePSN
    — then applies Eq. 3:

    - same residue (same path) — the expected packet is provably lost:
      [Forward] the NACK;
    - different residue (different path) — reordering only: [Block] it and
      arm compensation ([BePSN <- ePSN], [Valid <- true]).

    Compensation (on later data arrivals for the flow): a packet with
    [PSN = BePSN] proves nothing was lost (disarm); a packet with
    [PSN > BePSN] on BePSN's path proves the loss, so a NACK for BePSN is
    generated on the RNIC's behalf — exactly once — via [inject_nack].

    If the ring queue drains before a tPSN is found (RTT fluctuation beyond
    the capacity factor F) the NACK is conservatively forwarded: Themis
    never suppresses recovery it cannot prove unnecessary. *)

type decision = Forward | Block

type stats = {
  nacks_seen : int;
  nacks_blocked : int;
  nacks_forwarded_valid : int;  (** Eq. 3 held: real loss on the same path. *)
  nacks_forwarded_underflow : int;
      (** Ring queue drained before tPSN was found; forwarded for safety. *)
  compensation_sent : int;
  compensation_cancelled : int;  (** BePSN packet showed up after all. *)
  data_seen : int;
}

type t

val create :
  paths:int ->
  queue_capacity:int ->
  ?compensation:bool ->
  ?node:int ->
  ?clock:(unit -> Sim_time.t) ->
  inject_nack:
    (conn:Flow_id.t -> conn_id:int -> sport:int -> epsn:Psn.t -> unit) ->
  unit ->
  t
(** [compensation] defaults to [true]; disabling it is the ABL ablation.
    [inject_nack] must put a NACK for [conn] on the path back to the
    sender.  [node] (the owning ToR id) and [clock] only feed telemetry:
    when the telemetry context is enabled, every NACK verdict and
    compensation action is recorded as a typed event timestamped with
    [clock ()] (defaults: [-1] and a clock stuck at zero). *)

val paths : t -> int

val set_paths : t -> int -> unit
(** Adjust the live path count after a failure (paired with
    {!Themis_s.set_paths}).  Validation of NACKs triggered by packets
    sprayed under the old count is transiently unreliable; safety holds
    because blocked NACKs remain covered by compensation and the sender's
    timeout. *)

val register_flow : t -> Flow_id.t -> unit
(** Connection-setup interception: allocate the flow-table entry and PSN
    queue.  Flows are also auto-registered on first data arrival. *)

val on_data : t -> Packet.t -> unit
(** Must be called with a data packet (asserts otherwise) exactly when the
    ToR forwards it onto the last hop. *)

val on_nack : t -> Packet.t -> decision
(** Must be called with a NACK packet travelling NIC -> sender. *)

val stats : t -> stats
val flow_table : t -> Flow_table.t
val queue_overwrites : t -> int
(** Total ring-queue overwrites across all flows (sizing-rule health). *)
