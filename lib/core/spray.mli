(** PSN-based packet spraying (Section 3.2).

    With [N] equal-cost paths indexed [0 .. N-1] and a per-flow ECMP base
    path [P_base], packet [i] of the flow is deterministically assigned to

    {v Path_i = (PSN_i mod N + P_base) mod N          (Eq. 1) v}

    which distributes packets uniformly and — crucially — lets anyone who
    knows [N] decide whether two PSNs of the same flow travelled the same
    path using only the PSNs:

    {v same path  <=>  tPSN mod N = ePSN mod N        (Eq. 3) v}

    Note on wrap-around: [PSN mod N] is continuous across the 24-bit PSN
    wrap only when [N] divides [2^24], i.e. when [N] is a power of two —
    which matches real fabrics (the paper's examples use N = 4 and
    N = 256).  {!val:path_for_psn} accepts any [N]; deployments should use
    powers of two. *)

val path_for_psn : psn:Psn.t -> base:int -> paths:int -> int
(** Eq. 1.  [base] is reduced mod [paths]; [paths > 0]. *)

val same_path : a:Psn.t -> b:Psn.t -> paths:int -> bool
(** Eq. 3 (the [base] cancels out). *)

val nack_is_valid : tpsn:Psn.t -> epsn:Psn.t -> paths:int -> bool
(** A NACK is valid — the expected packet is provably lost — iff the OOO
    packet that triggered it travelled the expected packet's path. *)

val base_for_flow : Flow_id.t -> sport:int -> paths:int -> int
(** The flow's ECMP base path index, as the fabric's hash would compute
    it (consistent with [Ecmp_hash.flow_hash]). *)

val base_for_flow_id : id:int -> Flow_id.t -> sport:int -> paths:int -> int
(** {!base_for_flow} through the per-flow hash memo
    ([Ecmp_hash.flow_hash_id]); identical result, no per-packet
    avalanche on the steady-state path.  [id] is the packet's interned
    flow id ([Packet.conn_id]). *)
