type mode = Direct_egress | Sport_rewrite of Path_map.t

type t = { mutable paths : int; mode : mode; mutable sprayed : int }

let create ~paths ~mode =
  if paths <= 0 then invalid_arg "Themis_s.create: paths must be positive";
  (match mode with
  | Sport_rewrite map when Path_map.paths map <> paths ->
      invalid_arg "Themis_s.create: PathMap size disagrees with paths"
  | Sport_rewrite _ | Direct_egress -> ());
  { paths; mode; sprayed = 0 }

let paths t = t.paths
let mode t = t.mode

let set_paths t paths =
  if paths <= 0 then invalid_arg "Themis_s.set_paths: paths must be positive";
  (match t.mode with
  | Sport_rewrite map when Path_map.paths map < paths ->
      invalid_arg "Themis_s.set_paths: PathMap too small"
  | Sport_rewrite _ | Direct_egress -> ());
  t.paths <- paths

let base_path t (pkt : Packet.t) =
  Spray.base_for_flow_id ~id:pkt.Packet.conn_id pkt.Packet.conn
    ~sport:pkt.Packet.udp_sport ~paths:t.paths

let egress_index t (pkt : Packet.t) =
  match (t.mode, pkt.Packet.kind) with
  | Direct_egress, Packet.Data { psn; _ } ->
      t.sprayed <- t.sprayed + 1;
      Some (Spray.path_for_psn ~psn ~base:(base_path t pkt) ~paths:t.paths)
  | Direct_egress, (Packet.Ack _ | Packet.Nack _ | Packet.Cnp | Packet.Pause _)
  | Sport_rewrite _, _ ->
      None

let apply t (pkt : Packet.t) =
  match (t.mode, pkt.Packet.kind) with
  | Sport_rewrite map, Packet.Data { psn; _ } ->
      let residue = Psn.mod_paths psn t.paths in
      pkt.Packet.udp_sport <-
        Path_map.rewrite map ~sport:pkt.Packet.udp_sport ~delta_path:residue;
      t.sprayed <- t.sprayed + 1
  | Sport_rewrite _, (Packet.Ack _ | Packet.Nack _ | Packet.Cnp | Packet.Pause _)
  | Direct_egress, _ ->
      ()

let sprayed_packets t = t.sprayed
