(** Deterministic, splittable pseudo-random numbers.

    The generator is xoshiro256** seeded through splitmix64.  Each simulated
    entity gets its own [split] stream so that adding or removing one entity
    does not perturb the random choices seen by the others — essential for
    reproducible cross-configuration comparisons. *)

type t

val create : seed:int -> t

val split : t -> t
(** Derive an independent stream.  Consumes one draw from the parent. *)

val substream : seed:int -> index:int -> t
(** [substream ~seed ~index] is a pure function of [(seed, index)]: the
    [index]-th child stream of [seed].  Unlike [split] it consumes nothing
    from any parent generator, so the child seen by flow [i] is identical
    no matter how many other flows were sampled before it — the property
    the workload generator relies on for per-flow reproducibility.  The
    derived state is disjoint from the stream [create ~seed] produces. *)

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)]. [bound > 0]. *)

val int64 : t -> int64
val float : t -> float
(** Uniform in [[0, 1)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean. *)

val shuffle_in_place : t -> 'a array -> unit
