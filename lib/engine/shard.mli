(** Conservative lockstep windows for sharded simulation (DESIGN.md §14).

    Every shard calls {!advance} with the same [(from, until_)] span and
    the shared barrier; the span is cut into windows of at most
    [lookahead] (the minimum cross-shard link latency), and after each
    window all shards synchronize, exchange status flags, and drain
    their incoming interlink rings.  Because a cross-shard packet's
    arrival time always lies strictly beyond the window that produced
    it, draining at the barrier never schedules an event in a shard's
    past — serial and sharded runs process identical event sets. *)

exception Aborted of int
(** Raised by {!advance} when the combined barrier flags intersect
    [abort_mask] — the cross-domain crash protocol: a crashed shard
    pumps the barrier with its abort bit set, and every healthy shard
    raises at the same phase, so no party is left blocking. *)

val advance :
  ?abort_mask:int ->
  barrier:Domain_barrier.t ->
  lookahead:Sim_time.t ->
  run:(until:Sim_time.t -> unit) ->
  flags:(unit -> int) ->
  drain:(upto:Sim_time.t -> unit) ->
  from:Sim_time.t ->
  until_:Sim_time.t ->
  unit ->
  int
(** Advance from [from] to [until_] in lockstep windows.  Per window:
    [run ~until:horizon] (advance the local engine), then a barrier
    carrying [flags ()] (an OR-reduced bitset, caller-defined), then
    [drain ~upto:horizon] (pop interlink rings, schedule arrivals).
    The [upto] bound matters for determinism: a producer that has
    already raced into its next window may have parked records stamped
    beyond [horizon], and the drain must defer them to the barrier
    they belong to or their engine insertion order becomes a function
    of thread timing.  Returns the
    combined flags of the final barrier (the one at [until_]).  Every
    shard must call this with identical [from]/[until_]/[lookahead] or
    the barrier phases diverge.  Raises {!Aborted} when a barrier's
    combined flags intersect [abort_mask] (default 0: never).  Raises
    [Invalid_argument] when [lookahead <= 0] or [until_ < from]; a
    [from = until_] span runs no windows and returns 0. *)
