(** Sense-reversing barrier over OCaml 5 domains, with an OR-reduction
    of integer flags: all parties block until everyone has arrived, and
    every party receives the bitwise OR of all the flags passed in.

    Used by the sharded simulation's lockstep windows (DESIGN.md §14) so
    every shard decides "keep running / all flows done / quiesced" from
    the same combined word. *)

type t

val create : int -> t
(** [create parties] — raises [Invalid_argument] unless [parties > 0]. *)

val parties : t -> int

val await : t -> flags:int -> int
(** Block until all parties have called [await] for this phase; returns
    the OR of every party's [flags].  Reusable (sense-reversing). *)
