type handle = Event_queue.handle
type callback = int

let none = Event_queue.none
let null_callback = -1

type t = {
  queue : Event_queue.t;
  mutable now : Sim_time.t;
  mutable stop_requested : bool;
  mutable events_processed : int;
  mutable callbacks : (int -> int -> Obj.t -> unit) array;
  mutable n_callbacks : int;
}

let register_callback t f =
  let cap = Array.length t.callbacks in
  if t.n_callbacks >= cap then begin
    let next = Array.make (2 * cap) f in
    Array.blit t.callbacks 0 next 0 t.n_callbacks;
    t.callbacks <- next
  end;
  t.callbacks.(t.n_callbacks) <- f;
  t.n_callbacks <- t.n_callbacks + 1;
  t.n_callbacks - 1

(* Callback 0, installed by [create]: runs a [unit -> unit] closure
   carried in the event's obj slot — the legacy API rides on the
   closure-free core. *)
let closure_cb = 0

let run_closure _ _ obj = (Obj.obj obj : unit -> unit) ()

let create ?(capacity = 256) () =
  let t =
    {
      queue = Event_queue.create ~capacity ();
      now = Sim_time.zero;
      stop_requested = false;
      events_processed = 0;
      callbacks = Array.make 8 run_closure;
      n_callbacks = 0;
    }
  in
  let id = register_callback t run_closure in
  assert (id = closure_cb);
  t

let now t = t.now

let past_error t time =
  invalid_arg
    (Format.asprintf "Engine.schedule_at: time %a is in the past (now %a)"
       Sim_time.pp time Sim_time.pp t.now)

let schedule_call_at t ~time cb ~a ~b ~obj =
  if time < t.now then past_error t time;
  Event_queue.add t.queue ~time ~cb ~a ~b ~obj

let schedule_call t ~delay cb ~a ~b ~obj =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  Event_queue.add t.queue ~time:(t.now + delay) ~cb ~a ~b ~obj

let schedule_at t ~time action =
  if time < t.now then past_error t time;
  Event_queue.add t.queue ~time ~cb:closure_cb ~a:0 ~b:0 ~obj:(Obj.repr action)

let schedule t ~delay action =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  Event_queue.add t.queue ~time:(t.now + delay) ~cb:closure_cb ~a:0 ~b:0
    ~obj:(Obj.repr action)

let cancel t h = Event_queue.cancel t.queue h
let is_pending t h = Event_queue.is_pending t.queue h

let run ?until ?max_events t =
  t.stop_requested <- false;
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let horizon = match until with Some u -> u | None -> max_int in
  let continue = ref true in
  (* One tranche flag for the whole run: a [ref] inside the loop would
     allocate two minor words per distinct timestamp. *)
  let tranche = ref false in
  while !continue && not t.stop_requested && !budget > 0 do
    if Event_queue.is_empty t.queue then continue := false
    else begin
      let time = Event_queue.peek_time_unsafe t.queue in
      if time > horizon then begin
        t.now <- horizon;
        continue := false
      end
      else begin
        (* Breathe: drain the whole tranche of events at [time] in one
           activation.  The horizon comparison is paid once per distinct
           timestamp instead of once per event; budget and stop are
           still per-event, and events a callback schedules at the
           current time join their own tranche (schedule_* guards keep
           every new time >= now, so the queue minimum never moves
           backwards).  Semantically identical to the one-event loop. *)
        t.now <- time;
        tranche := true;
        while !tranche do
          if Event_queue.top_cancelled t.queue then
            (* Lazy deletion: the clock still advances over cancelled
               events (matching the original engine), but they cost no
               budget. *)
            Event_queue.drop t.queue
          else begin
            let cb = Event_queue.top_cb t.queue in
            let a = Event_queue.top_a t.queue in
            let b = Event_queue.top_b t.queue in
            let obj = Event_queue.top_obj t.queue in
            Event_queue.drop t.queue;
            t.events_processed <- t.events_processed + 1;
            decr budget;
            (Array.unsafe_get t.callbacks cb) a b obj
          end;
          if
            t.stop_requested || !budget <= 0
            || Event_queue.is_empty t.queue
            || Event_queue.peek_time_unsafe t.queue <> time
          then tranche := false
        done
      end
    end
  done;
  if Event_queue.is_empty t.queue then
    match until with
    | Some u when u < max_int && u > t.now -> t.now <- u
    | _ -> ()

let stop t = t.stop_requested <- true
let events_processed t = t.events_processed
let pending t = Event_queue.size t.queue

let sched_stats t =
  (Event_queue.wheel_adds t.queue, Event_queue.heap_adds t.queue)
