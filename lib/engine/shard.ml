(* Conservative lockstep windows (YAWNS-style barrier PDES).

   Shards advance in windows no longer than the minimum cross-shard
   link latency L.  A packet that finishes serializing at time t on one
   shard arrives at its peer at t + delay >= t + L, which is strictly
   beyond the window in which it was pushed — so draining the interlink
   rings at the window barrier always schedules arrivals in the
   receiver's future, and every shard processes exactly the events a
   serial engine would, in the same per-component order.

   This module is only the per-domain advancement loop; ownership
   partitioning, interlink lowering and result merging live in
   lib/shard (Shard_part / Shard_net / Shard_run). *)

exception Aborted of int

let advance ?(abort_mask = 0) ~barrier ~lookahead ~run ~flags ~drain ~from
    ~until_ () =
  if lookahead <= 0 then invalid_arg "Shard.advance: lookahead must be positive";
  if until_ < from then invalid_arg "Shard.advance: until_ < from";
  let t = ref from in
  let combined = ref 0 in
  while !t < until_ do
    let horizon = Sim_time.min until_ (!t + lookahead) in
    run ~until:horizon;
    combined := Domain_barrier.await barrier ~flags:(flags ());
    if !combined land abort_mask <> 0 then raise (Aborted !combined);
    drain ~upto:horizon;
    t := horizon
  done;
  !combined
