(** A stable priority queue of timestamped events, allocation-free in
    steady state.

    Ordering is [(time, sequence)]: the sequence number makes same-time
    events FIFO with respect to insertion, which is what makes
    simulation runs deterministic.

    The store is hybrid (DESIGN.md §15): a two-level hierarchical
    {!Timing_wheel} holds the dense near-future band — every event
    whose time falls inside the cursor's current 65536-tick chunk — at
    O(1) per add/pop, while a 4-ary SoA min-heap holds the overflow:
    far-future timers, events scheduled across the chunk boundary
    (migrated down as the cursor's chunk arrives), and events scheduled
    behind the wheel cursor (a sharded run's barrier drains; served
    directly from the heap).  The merge preserves the exact (time, seq)
    total order of a single heap; consumers cannot observe the split.

    Event payloads — a pre-registered callback id, two immediate int
    arguments and one reusable [Obj.t] slot (see {!Engine}) — live in a
    slot arena shared by both bands, recycled through a freelist;
    handles are generation-tagged ints so a stale handle can never
    cancel a recycled slot's new occupant.

    [add], [drop], [cancel] and the accessors allocate nothing once the
    backing arrays have grown to the working-set size (or were
    preallocated via [create ~capacity]). *)

type t

type handle = int
(** Generation-tagged slot reference.  Obtained from {!add}; [none] is a
    valid argument everywhere and never matches a live event. *)

val none : handle

val create : ?capacity:int -> unit -> t
(** [create ~capacity ()] preallocates the heap, the wheel's node arena
    and the slot arena for [capacity] simultaneous events; all grow by
    doubling beyond that. *)

val add :
  t -> time:Sim_time.t -> cb:int -> a:int -> b:int -> obj:Obj.t -> handle
(** Insert an event.  The returned handle stays valid until the event is
    dropped from the queue (fired or popped-while-cancelled); after that
    it matches nothing. *)

val cancel : t -> handle -> unit
(** Mark the event dead; it stays queued (wheel slot or heap) and is
    skipped lazily at pop time.  No-op for stale or [none] handles. *)

val is_pending : t -> handle -> bool
(** [true] iff the handle's event is still queued and not cancelled. *)

(** {2 Top-of-queue accessors}

    All [peek_time_unsafe]/[top_*] functions and [drop] require
    [not (is_empty q)]; they are the engine's inner loop and perform no
    emptiness check of their own. *)

val peek_time_unsafe : t -> Sim_time.t
val top_cancelled : t -> bool
val top_cb : t -> int
val top_a : t -> int
val top_b : t -> int
val top_obj : t -> Obj.t

val drop : t -> unit
(** Remove the minimum event and recycle its slot (invalidating its
    handle). *)

val peek_time : t -> Sim_time.t option
(** Checked variant for tests and cold paths. *)

val size : t -> int
val is_empty : t -> bool

val capacity : t -> int
(** Current overflow-heap capacity in events (tests the
    [create ~capacity] hint; the wheel band does not consume it). *)

val wheel_adds : t -> int
(** Lifetime count of adds filed in the timing wheel. *)

val heap_adds : t -> int
(** Lifetime count of adds that overflowed to the heap.  The wheel hit
    ratio [wheel_adds / (wheel_adds + heap_adds)] is bench-engine's
    gate: the dense band must absorb the hot fixed-offset traffic. *)

val clear : t -> unit
(** Drop every queued event, recycling all slots. *)
