(** A stable priority queue of timestamped events, allocation-free in
    steady state.

    The store is a binary min-heap keyed on [(time, sequence)]; the
    sequence number makes ordering of same-time events FIFO with respect
    to insertion, which is what makes simulation runs deterministic.

    The heap is laid out as a structure of arrays over unboxed ints
    ([Sim_time.t] is an int of nanoseconds): parallel [times]/[seqs]
    arrays drive the sift comparisons without chasing pointers, and a
    third parallel array holds indices into a slot arena carrying each
    event's payload — a pre-registered callback id, two immediate int
    arguments and one reusable [Obj.t] slot (see {!Engine}).  Slots are
    recycled through a freelist; handles are generation-tagged ints so a
    stale handle can never cancel a recycled slot's new occupant.

    [add], [drop], [cancel] and the accessors allocate nothing once the
    backing arrays have grown to the working-set size (or were
    preallocated via [create ~capacity]). *)

type t

type handle = int
(** Generation-tagged slot reference.  Obtained from {!add}; [none] is a
    valid argument everywhere and never matches a live event. *)

val none : handle

val create : ?capacity:int -> unit -> t
(** [create ~capacity ()] preallocates the heap and the slot arena for
    [capacity] simultaneous events; both grow by doubling beyond that. *)

val add :
  t -> time:Sim_time.t -> cb:int -> a:int -> b:int -> obj:Obj.t -> handle
(** Insert an event.  The returned handle stays valid until the event is
    dropped from the queue (fired or popped-while-cancelled); after that
    it matches nothing. *)

val cancel : t -> handle -> unit
(** Mark the event dead; it stays in the heap and is skipped lazily at
    pop time.  No-op for stale or [none] handles. *)

val is_pending : t -> handle -> bool
(** [true] iff the handle's event is still queued and not cancelled. *)

(** {2 Top-of-heap accessors}

    All [peek_time_unsafe]/[top_*] functions and [drop] require
    [not (is_empty q)]; they are the engine's inner loop and perform no
    emptiness check of their own. *)

val peek_time_unsafe : t -> Sim_time.t
val top_cancelled : t -> bool
val top_cb : t -> int
val top_a : t -> int
val top_b : t -> int
val top_obj : t -> Obj.t

val drop : t -> unit
(** Remove the minimum event and recycle its slot (invalidating its
    handle). *)

val peek_time : t -> Sim_time.t option
(** Checked variant for tests and cold paths. *)

val size : t -> int
val is_empty : t -> bool
val capacity : t -> int
(** Current heap capacity in events (tests the [create ~capacity] hint). *)

val clear : t -> unit
(** Drop every queued event, recycling all slots. *)
