(* Single-producer / single-consumer ring of fixed-stride int records.

   One ring carries the cross-shard traffic of one (producer shard,
   consumer shard) pair.  Records are flattened packets (see
   Packet_wire); a record occupies [stride] consecutive slots of one
   flat int array, so pushing and draining copy plain integers and
   allocate nothing on the fast path.

   Publication safety: [tail] is advanced with a release store after the
   record's slots are written, and the consumer reads it with an acquire
   load before touching the slots (OCaml [Atomic] operations are SC,
   which is stronger than needed).  [head] is only written by the
   consumer and only read by the producer, so each index has exactly one
   writer and the ring needs no locks.  The [_pad] arrays keep the two
   atomics out of the same cache line.

   Overflow never blocks the producer (a blocked producer would deadlock
   the lockstep barrier): when the ring is momentarily full the record
   goes to a mutex-protected spill list instead.  The consumer empties
   the spill when it drains.  Records carry their own producer sequence
   number (assigned by the caller), so the barrier-time sort recovers
   the exact push order no matter how records were split between the
   ring and the spill. *)

type t = {
  slots : int array;
  stride : int;
  capacity : int;  (* records; power of two *)
  mask : int;
  head : int Atomic.t;  (* consumer cursor (records consumed) *)
  _pad1 : int array;
  tail : int Atomic.t;  (* producer cursor (records published) *)
  _pad2 : int array;
  spill_mu : Mutex.t;
  mutable spill : int array list;  (* newest first; each is one record *)
  mutable spilled : int;  (* total records ever spilled (producer+consumer sync via mutex) *)
}

let create ?(capacity = 1 lsl 12) ~stride () =
  if stride <= 0 then invalid_arg "Spsc_ring.create: stride must be positive";
  if capacity <= 0 || capacity land (capacity - 1) <> 0 then
    invalid_arg "Spsc_ring.create: capacity must be a positive power of two";
  {
    slots = Array.make (capacity * stride) 0;
    stride;
    capacity;
    mask = capacity - 1;
    head = Atomic.make 0;
    _pad1 = Array.make 15 0;
    tail = Atomic.make 0;
    _pad2 = Array.make 15 0;
    spill_mu = Mutex.create ();
    spill = [];
    spilled = 0;
  }

let stride t = t.stride
let capacity t = t.capacity
let spilled t = t.spilled

let try_push t ~src ~off =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head >= t.capacity then false
  else begin
    let base = (tail land t.mask) * t.stride in
    Array.blit src off t.slots base t.stride;
    (* Release: slot writes above become visible before the new tail. *)
    Atomic.set t.tail (tail + 1);
    true
  end

let push t ~src ~off =
  if not (try_push t ~src ~off) then begin
    let rec_ = Array.sub src off t.stride in
    Mutex.lock t.spill_mu;
    t.spill <- rec_ :: t.spill;
    t.spilled <- t.spilled + 1;
    Mutex.unlock t.spill_mu
  end

(* Consumer side: pop every currently published record (plus the spill)
   into [f].  Concurrent pushes are safe — records published after the
   initial tail read are simply left for the next drain. *)
let drain t f =
  let n = ref 0 in
  let tail = Atomic.get t.tail in
  let head = ref (Atomic.get t.head) in
  while !head < tail do
    let base = (!head land t.mask) * t.stride in
    f t.slots base;
    incr head;
    incr n
  done;
  Atomic.set t.head !head;
  Mutex.lock t.spill_mu;
  let spill = t.spill in
  t.spill <- [];
  Mutex.unlock t.spill_mu;
  List.iter (fun rec_ -> f rec_ 0; incr n) (List.rev spill);
  !n

let is_empty t =
  Atomic.get t.tail = Atomic.get t.head
  &&
  (Mutex.lock t.spill_mu;
   let e = t.spill = [] in
   Mutex.unlock t.spill_mu;
   e)
