(** Single-producer / single-consumer ring of fixed-stride int records.

    The interlink between two simulation shards (DESIGN.md §14): the
    producer shard pushes flattened packet records during a lockstep
    window, the consumer shard drains them at the window barrier.  Push
    and drain are lock-free (one atomic load + one atomic store each);
    when the ring is momentarily full the record overflows into a
    mutex-protected spill list rather than blocking the producer, which
    would deadlock the barrier.  Records should carry a producer
    sequence number so the consumer can re-sort ring + spill into exact
    push order. *)

type t

val create : ?capacity:int -> stride:int -> unit -> t
(** [capacity] is in records and must be a power of two (default 4096);
    [stride] is the record size in ints. *)

val stride : t -> int
val capacity : t -> int

val try_push : t -> src:int array -> off:int -> bool
(** Copy [stride] ints from [src.(off ..)] into the ring; [false] when
    full.  Producer only. *)

val push : t -> src:int array -> off:int -> unit
(** [try_push], falling back to the spill list when the ring is full
    (never blocks, never drops).  Producer only. *)

val drain : t -> (int array -> int -> unit) -> int
(** Pop every published record (ring first, then spill, each in push
    order) into the callback as [(buf, off)]; the record is only valid
    for the duration of the call.  Returns the number of records
    popped.  Consumer only; safe against concurrent pushes. *)

val spilled : t -> int
(** Total records that overflowed into the spill list (lifetime). *)

val is_empty : t -> bool
(** True when neither ring nor spill holds a record.  Racy under
    concurrent pushes; exact between barriers. *)
