(** Fixed-capacity drop-oldest ring buffer.

    O(1) push; when full, the oldest entry is overwritten and counted in
    [dropped].  Used by [Trace]'s retained sink and the telemetry event
    sink so long runs cannot grow memory without bound. *)

type 'a t

val create : capacity:int -> 'a t
val capacity : 'a t -> int
val length : 'a t -> int

val dropped : 'a t -> int
(** Entries overwritten because the ring was full. *)

val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val clear : 'a t -> unit

val iter : 'a t -> ('a -> unit) -> unit
(** Oldest first. *)

val to_list : 'a t -> 'a list
(** Oldest first. *)

val fold : 'a t -> init:'b -> ('b -> 'a -> 'b) -> 'b
