type handle = int

let none : handle = -1

(* A handle packs (generation lsl slot_bits) lor slot.  24 bits of slot
   index bounds the arena at ~16.7M *simultaneous* events — far beyond
   any simulated working set — and leaves 38 generation bits on 63-bit
   ints, enough that a slot reused once per simulated nanosecond would
   take years of sim time to wrap. *)
let slot_bits = 24
let slot_mask = (1 lsl slot_bits) - 1
let epoch_shift = 24

type t = {
  (* Near-future band: a three-level timing wheel covering the cursor's
     current 2^24-tick (~16.7ms) epoch.  O(1) add/pop for the dense
     fixed-offset events (tx completions, propagations, pacing ticks)
     and for every periodic timer (DCQCN alpha/TI, RTO) that dominate
     the simulation; see DESIGN.md §15. *)
  wheel : Timing_wheel.t;
  (* Overflow: min-heap over (time, seq), structure-of-arrays — the sift
     loops compare and shuffle unboxed ints only.  Holds far-future
     events beyond the epoch (migrated down when the cursor's epoch
     arrives) and events scheduled behind the wheel cursor (a sharded
     run's window drains; popped directly). *)
  mutable times : int array;
  mutable seqs : int array;
  mutable slots : int array;
  mutable size : int;
  mutable next_seq : int;
  (* Cached next-event decision, shared by peek/top accessors and drop;
     invalidated by pops and by adds below the cached time. *)
  mutable has_next : bool;
  mutable next_is_wheel : bool;
  mutable next_time : int;
  mutable next_slot : int;
  (* Wheel-vs-heap routing counters (bench-engine's hit-ratio gate). *)
  mutable wheel_adds : int;
  mutable heap_adds : int;
  (* Slot arena: per-event payload, recycled through [free_head]. *)
  mutable cbs : int array;
  mutable args_a : int array;
  mutable args_b : int array;
  mutable objs : Obj.t array;
  mutable gens : int array;
  mutable dead : bool array;
  mutable free_next : int array;
  mutable free_head : int;
}

let obj_unit = Obj.repr ()

let create ?(capacity = 256) () =
  let cap = if capacity < 1 then 1 else capacity in
  {
    wheel = Timing_wheel.create ~capacity:cap ();
    times = Array.make cap 0;
    seqs = Array.make cap 0;
    slots = Array.make cap 0;
    size = 0;
    next_seq = 0;
    has_next = false;
    next_is_wheel = false;
    next_time = 0;
    next_slot = 0;
    wheel_adds = 0;
    heap_adds = 0;
    cbs = Array.make cap 0;
    args_a = Array.make cap 0;
    args_b = Array.make cap 0;
    objs = Array.make cap obj_unit;
    gens = Array.make cap 0;
    dead = Array.make cap false;
    free_next = Array.init cap (fun i -> if i = cap - 1 then -1 else i + 1);
    free_head = 0;
  }

let extend src ncap pad =
  let dst = Array.make ncap pad in
  Array.blit src 0 dst 0 (Array.length src);
  dst

let grow_heap q =
  let ncap = Stdlib.max 64 (2 * Array.length q.times) in
  q.times <- extend q.times ncap 0;
  q.seqs <- extend q.seqs ncap 0;
  q.slots <- extend q.slots ncap 0

let grow_arena q =
  let cap = Array.length q.cbs in
  let ncap = Stdlib.max 64 (2 * cap) in
  if ncap > slot_mask + 1 then failwith "Event_queue: slot arena overflow";
  q.cbs <- extend q.cbs ncap 0;
  q.args_a <- extend q.args_a ncap 0;
  q.args_b <- extend q.args_b ncap 0;
  q.objs <- extend q.objs ncap obj_unit;
  q.gens <- extend q.gens ncap 0;
  q.dead <- extend q.dead ncap false;
  q.free_next <- extend q.free_next ncap 0;
  for i = cap to ncap - 1 do
    q.free_next.(i) <- (if i = ncap - 1 then -1 else i + 1)
  done;
  q.free_head <- cap;
  (* The wheel's intrusive node array is indexed by arena slot id. *)
  Timing_wheel.ensure_capacity q.wheel ncap

(* The heap is 4-ary: (time, seq) is a strict total order (seq is
   unique), so the pop sequence is identical for any correct min-heap —
   arity is invisible to consumers.  Four-way nodes halve the sift depth
   and the four children [4i+1 .. 4i+4] share a cache line in the
   structure-of-arrays layout. *)

(* Hole-percolation sift-up: the new element's (time, seq, slot) ride in
   registers while ancestors shift down, so each level is one compare and
   three int stores. *)
let rec sift_up q i ~time ~seq ~slot =
  if i = 0 then begin
    q.times.(0) <- time;
    q.seqs.(0) <- seq;
    q.slots.(0) <- slot
  end
  else begin
    let parent = (i - 1) / 4 in
    let pt = Array.unsafe_get q.times parent in
    if time < pt || (time = pt && seq < Array.unsafe_get q.seqs parent) then begin
      q.times.(i) <- pt;
      q.seqs.(i) <- Array.unsafe_get q.seqs parent;
      q.slots.(i) <- Array.unsafe_get q.slots parent;
      sift_up q parent ~time ~seq ~slot
    end
    else begin
      q.times.(i) <- time;
      q.seqs.(i) <- seq;
      q.slots.(i) <- slot
    end
  end

(* Direct recursion on the child index; each level hoists the candidate
   children's keys into locals once, so the comparator path is
   branch-and-load only (no refs, no entry records). *)
let rec sift_down q i ~time ~seq ~slot =
  let l = (4 * i) + 1 in
  if l >= q.size then begin
    q.times.(i) <- time;
    q.seqs.(i) <- seq;
    q.slots.(i) <- slot
  end
  else begin
    (* Min of the up-to-four children, keys kept in registers.  The
       interior-node case (all four children present) is unrolled
       straight-line; only the ragged last node takes the loop. *)
    (* Seqs are consulted only on a time tie, so the common path loads
       one int per child; keys are unique (seq is a tiebreak nonce), so
       scan order is unobservable.  Unrolled by hand — a local helper
       closure would capture the accumulator refs and box them. *)
    let c = ref l and ct = ref (Array.unsafe_get q.times l) in
    (if l + 3 < q.size then begin
       let t1 = Array.unsafe_get q.times (l + 1) in
       if
         t1 < !ct
         || t1 = !ct
            && Array.unsafe_get q.seqs (l + 1) < Array.unsafe_get q.seqs !c
       then begin
         c := l + 1;
         ct := t1
       end;
       let t2 = Array.unsafe_get q.times (l + 2) in
       if
         t2 < !ct
         || t2 = !ct
            && Array.unsafe_get q.seqs (l + 2) < Array.unsafe_get q.seqs !c
       then begin
         c := l + 2;
         ct := t2
       end;
       let t3 = Array.unsafe_get q.times (l + 3) in
       if
         t3 < !ct
         || t3 = !ct
            && Array.unsafe_get q.seqs (l + 3) < Array.unsafe_get q.seqs !c
       then begin
         c := l + 3;
         ct := t3
       end
     end
     else
       for k = l + 1 to q.size - 1 do
         let kt = Array.unsafe_get q.times k in
         if
           kt < !ct
           || kt = !ct
              && Array.unsafe_get q.seqs k < Array.unsafe_get q.seqs !c
         then begin
           c := k;
           ct := kt
         end
       done);
    let c = !c and ct = !ct in
    let cs = Array.unsafe_get q.seqs c in
    if ct < time || (ct = time && cs < seq) then begin
      q.times.(i) <- ct;
      q.seqs.(i) <- cs;
      q.slots.(i) <- Array.unsafe_get q.slots c;
      sift_down q c ~time ~seq ~slot
    end
    else begin
      q.times.(i) <- time;
      q.seqs.(i) <- seq;
      q.slots.(i) <- slot
    end
  end

let heap_push q ~time ~seq ~slot =
  if q.size >= Array.length q.times then grow_heap q;
  let i = q.size in
  q.size <- q.size + 1;
  sift_up q i ~time ~seq ~slot

(* Remove the heap minimum without recycling its arena slot (the event
   may be migrating into the wheel rather than dying). *)
let heap_remove_top q =
  q.size <- q.size - 1;
  let last = q.size in
  if last > 0 then
    sift_down q 0 ~time:q.times.(last) ~seq:q.seqs.(last) ~slot:q.slots.(last)

let add q ~time ~cb ~a ~b ~obj =
  if q.free_head < 0 then grow_arena q;
  let s = q.free_head in
  q.free_head <- q.free_next.(s);
  q.cbs.(s) <- cb;
  q.args_a.(s) <- a;
  q.args_b.(s) <- b;
  (* Freed slots always hold [obj_unit] ([free_slot] restores it), so
     unit-payload events — timers, pacing ticks — skip the [Obj.t]
     store and its write barrier entirely. *)
  if obj != obj_unit then q.objs.(s) <- obj;
  q.dead.(s) <- false;
  (* The sequence number is allocated for every event — wheel-resident
     ones never store it (slot order is insertion order), but the shared
     counter is what keeps heap events totally ordered against them. *)
  let seq = q.next_seq in
  q.next_seq <- seq + 1;
  if Timing_wheel.add q.wheel ~time s then q.wheel_adds <- q.wheel_adds + 1
  else begin
    heap_push q ~time ~seq ~slot:s;
    q.heap_adds <- q.heap_adds + 1
  end;
  if q.has_next && time < q.next_time then q.has_next <- false;
  (q.gens.(s) lsl slot_bits) lor s

(* A slot's generation only matches handles minted for its current
   occupant: [free_slot] bumps it, so stale handles (and [none]) fail the
   comparison and can never touch a recycled slot. *)
let live_slot q h =
  if h < 0 then -1
  else begin
    let s = h land slot_mask in
    if s < Array.length q.gens && q.gens.(s) = h asr slot_bits then s else -1
  end

let cancel q h =
  let s = live_slot q h in
  if s >= 0 then q.dead.(s) <- true

let is_pending q h =
  let s = live_slot q h in
  s >= 0 && not q.dead.(s)

(* Resolve the next event across the wheel and the heap.

   The wheel wins ties: a heap event at the same time as a wheel event
   is necessarily a behind-cursor late add (window drains), which was
   scheduled after — and so sequences after — anything the wheel holds
   at that time (DESIGN.md §15 has the full argument).  When the wheel
   is empty and the heap's earliest event lies in an epoch at or ahead
   of the cursor, that whole epoch migrates down: heap pops come out in
   (time, seq) order, so the wheel's append-only slots receive them in
   exactly the order they must fire. *)
let rec ensure_next q =
  if not q.has_next then begin
    let wt = Timing_wheel.next_time q.wheel in
    if wt >= 0 then
      if q.size > 0 && Array.unsafe_get q.times 0 < wt then set_heap_next q
      else begin
        q.next_is_wheel <- true;
        q.next_time <- wt;
        q.next_slot <- Timing_wheel.peek_val q.wheel;
        q.has_next <- true
      end
    else if q.size > 0 then begin
      let ht = q.times.(0) in
      if ht >= Timing_wheel.cursor q.wheel then begin
        Timing_wheel.jump q.wheel ht;
        let epoch = ht lsr epoch_shift in
        while
          q.size > 0 && Array.unsafe_get q.times 0 lsr epoch_shift = epoch
        do
          let tm = q.times.(0) and s = q.slots.(0) in
          heap_remove_top q;
          let covered = Timing_wheel.add q.wheel ~time:tm s in
          assert covered
        done;
        ensure_next q
      end
      else set_heap_next q
    end
  end

and set_heap_next q =
  q.next_is_wheel <- false;
  q.next_time <- q.times.(0);
  q.next_slot <- q.slots.(0);
  q.has_next <- true

let peek_time_unsafe q =
  ensure_next q;
  q.next_time

let top_slot q =
  ensure_next q;
  q.next_slot

let top_cancelled q = Array.unsafe_get q.dead (top_slot q)
let top_cb q = Array.unsafe_get q.cbs (top_slot q)
let top_a q = Array.unsafe_get q.args_a (top_slot q)
let top_b q = Array.unsafe_get q.args_b (top_slot q)
let top_obj q = Array.unsafe_get q.objs (top_slot q)

let free_slot q s =
  q.gens.(s) <- q.gens.(s) + 1;
  (* Keep the freed-slot invariant [objs.(s) = obj_unit] relied on by
     [add], but skip the barrier when it already holds. *)
  if q.objs.(s) != obj_unit then q.objs.(s) <- obj_unit;
  q.free_next.(s) <- q.free_head;
  q.free_head <- s

let drop q =
  ensure_next q;
  if q.next_is_wheel then begin
    let s = Timing_wheel.pop q.wheel in
    free_slot q s;
    (* Same-slot fast path: events left in the cursor slot carry the
       exact time just served and still beat the heap (a cache-valid
       wheel decision means the heap minimum is strictly later — ties
       are structurally impossible, see [ensure_next]), so the cached
       decision survives with just a new head. *)
    if Timing_wheel.cursor_occupied q.wheel then
      q.next_slot <- Timing_wheel.peek_val q.wheel
    else q.has_next <- false
  end
  else begin
    let s = q.slots.(0) in
    heap_remove_top q;
    free_slot q s;
    q.has_next <- false
  end

let size q = q.size + Timing_wheel.count q.wheel
let is_empty q = q.size = 0 && Timing_wheel.is_empty q.wheel

let peek_time q =
  if is_empty q then None
  else begin
    ensure_next q;
    Some q.next_time
  end

let capacity q = Array.length q.times
let wheel_adds q = q.wheel_adds
let heap_adds q = q.heap_adds

let clear q =
  Timing_wheel.drain_all q.wheel (fun s -> free_slot q s);
  for i = 0 to q.size - 1 do
    free_slot q q.slots.(i)
  done;
  q.size <- 0;
  q.has_next <- false
