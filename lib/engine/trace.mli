(** Lightweight structured tracing for debugging simulations.

    Tracing is off by default and costs a single branch per call when off.
    When enabled, events are either printed immediately or retained for
    later inspection (used by the [nack_anatomy] example and by tests that
    assert on decision sequences). *)

type sink = Silent | Print | Retain

val set_sink : sink -> unit
val sink : unit -> sink

val enabled : unit -> bool

val set_capacity : int -> unit
(** Replace the retained ring with an empty one of the given capacity.
    The default capacity is 65536 events; once full, the oldest events
    are overwritten (see {!dropped}). *)

val capacity : unit -> int

val dropped : unit -> int
(** Retained events lost to overwriting since the last [clear] /
    [set_capacity]. *)

val emit : time:Sim_time.t -> cat:string -> string -> unit
(** [emit ~time ~cat msg] records one event.  [cat] is a short category tag
    such as ["themis-d"] or ["rnic"]. *)

val emitf :
  time:Sim_time.t -> cat:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant; the format arguments are not evaluated when tracing
    is off. *)

val retained : unit -> (Sim_time.t * string * string) list
(** Events recorded under [Retain], oldest first.  At most {!capacity}
    events are kept; older ones are dropped. *)

val clear : unit -> unit
