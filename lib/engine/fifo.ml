(* Elements are stored as Obj.t so the backing array is never
   float-specialized and one implementation serves every element type;
   the phantom ['a] restores type safety at the API boundary. *)
type 'a t = {
  mutable buf : Obj.t array;
  mutable head : int;  (* index of the oldest element *)
  mutable len : int;
}

let obj_unit = Obj.repr ()

let create ?(capacity = 16) () =
  let cap = if capacity < 1 then 1 else capacity in
  { buf = Array.make cap obj_unit; head = 0; len = 0 }

let length q = q.len
let is_empty q = q.len = 0
let capacity q = Array.length q.buf

let grow q =
  let cap = Array.length q.buf in
  let ncap = Stdlib.max 16 (2 * cap) in
  let nbuf = Array.make ncap obj_unit in
  let tail = cap - q.head in
  (* Unroll the wrap: oldest element lands at index 0. *)
  let first = Stdlib.min q.len tail in
  Array.blit q.buf q.head nbuf 0 first;
  if q.len > first then Array.blit q.buf 0 nbuf first (q.len - first);
  q.buf <- nbuf;
  q.head <- 0

let push q x =
  if q.len >= Array.length q.buf then grow q;
  let cap = Array.length q.buf in
  let i = q.head + q.len in
  let i = if i >= cap then i - cap else i in
  q.buf.(i) <- Obj.repr x;
  q.len <- q.len + 1

let pop q =
  if q.len = 0 then invalid_arg "Fifo.pop: empty";
  let i = q.head in
  let x = q.buf.(i) in
  q.buf.(i) <- obj_unit;
  let h = i + 1 in
  q.head <- (if h >= Array.length q.buf then 0 else h);
  q.len <- q.len - 1;
  Obj.obj x

let peek q =
  if q.len = 0 then invalid_arg "Fifo.peek: empty";
  Obj.obj q.buf.(q.head)

let iter f q =
  let cap = Array.length q.buf in
  for k = 0 to q.len - 1 do
    let i = q.head + k in
    let i = if i >= cap then i - cap else i in
    f (Obj.obj q.buf.(i))
  done

let get q i =
  if i < 0 || i >= q.len then invalid_arg "Fifo.get: out of bounds";
  let cap = Array.length q.buf in
  let j = q.head + i in
  let j = if j >= cap then j - cap else j in
  Obj.obj q.buf.(j)

(* Batch drain: the clamp and emptiness guard are paid once per batch;
   each element is fully popped (head/len committed) before [f] runs, so
   a callback that pushes onto the same ring — even forcing a grow —
   sees a consistent structure, and its pushes land after the batch. *)
let pop_n q n f =
  let n = if n < 0 then 0 else if n > q.len then q.len else n in
  for _ = 1 to n do
    let i = q.head in
    let x = Array.unsafe_get q.buf i in
    Array.unsafe_set q.buf i obj_unit;
    let h = i + 1 in
    q.head <- (if h >= Array.length q.buf then 0 else h);
    q.len <- q.len - 1;
    f (Obj.obj x)
  done;
  n

let drain q f = ignore (pop_n q q.len f)

let clear q =
  let cap = Array.length q.buf in
  for k = 0 to q.len - 1 do
    let i = q.head + k in
    let i = if i >= cap then i - cap else i in
    q.buf.(i) <- obj_unit
  done;
  q.head <- 0;
  q.len <- 0
