(* Sense-reversing barrier with an integer flag reduction.

   Every participant passes a bitset of local status flags; the barrier
   ORs them and hands every participant the same combined word, so the
   fleet makes lockstep decisions (any shard still active? all flows
   done?) from identical information.  Mutex + Condition rather than a
   spin barrier: shard counts can exceed the core count (they always do
   on CI), and a spinning shard would starve the one doing work. *)

type t = {
  m : Mutex.t;
  c : Condition.t;
  parties : int;
  mutable arrived : int;
  mutable sense : bool;
  mutable acc : int;  (* OR of flags in the current phase *)
  mutable out : int;  (* combined flags of the last completed phase *)
}

let create parties =
  if parties <= 0 then invalid_arg "Domain_barrier.create";
  {
    m = Mutex.create ();
    c = Condition.create ();
    parties;
    arrived = 0;
    sense = false;
    acc = 0;
    out = 0;
  }

let parties t = t.parties

let await t ~flags =
  Mutex.lock t.m;
  let my_sense = t.sense in
  t.acc <- t.acc lor flags;
  t.arrived <- t.arrived + 1;
  if t.arrived = t.parties then begin
    t.out <- t.acc;
    t.acc <- 0;
    t.arrived <- 0;
    t.sense <- not t.sense;
    Condition.broadcast t.c
  end
  else
    while t.sense = my_sense do
      Condition.wait t.c t.m
    done;
  let combined = t.out in
  Mutex.unlock t.m;
  combined
