(** A three-level hierarchical timing wheel for the dense near-future
    band of the event queue (DESIGN.md §15).

    Level 0 is 256 one-tick slots covering the cursor's current 256-tick
    window; level 1 is 256 slots of 256 ticks covering the rest of the
    cursor's current 65536-tick chunk; level 2 is 256 slots of 65536
    ticks covering the rest of the cursor's current 2^24-tick (~16.7ms)
    {e epoch} — wide enough that every periodic timer in the simulator
    files into the wheel.  Times the wheel cannot cover — behind the
    cursor, or beyond the epoch — are refused by {!add}; the caller
    ({!Event_queue}) keeps those in its overflow heap and migrates an
    epoch's worth down via {!jump} + {!add} when the cursor arrives.

    Within one timestamp, events pop in insertion order: a level-0 slot
    pins the exact time, lists are appended at the tail, and every
    producer path (direct add, cascades from the levels above, epoch
    migration) appends in ascending insertion order.  This is what lets
    the wheel preserve the engine's (time, seq) total order without
    storing sequence numbers.

    The wheel is intrusive: the payload passed to {!add} is a caller
    arena slot id (< 2^24) that doubles as the wheel's node index, so
    the wheel allocates nothing per event — a node is one packed int
    (relative time + next link) and a slot list is one packed int
    (head + tail).  All operations are O(1) and allocation-free; the
    caller keeps the node array sized via {!ensure_capacity}. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] sizes the node array: payload ids up to [capacity - 1]
    are usable before {!ensure_capacity} must grow it (default 256). *)

val ensure_capacity : t -> int -> unit
(** [ensure_capacity t n] grows the node array (preserving resident
    nodes) so payload ids below [n] are usable.  Call when the owning
    arena grows. *)

val add : t -> time:int -> int -> bool
(** [add t ~time s] files payload [s] (an {!Event_queue} arena slot,
    < 2^24, below the {!ensure_capacity} bound) at [time].  Returns
    [false] — filing nothing — when [time] is behind the cursor or
    beyond the current epoch; the caller must then keep the event in
    its overflow structure. *)

val next_time : t -> int
(** Advance the cursor to the earliest resident time and return it, or
    [-1] when empty.  Idempotent until the head event is popped. *)

val peek_val : t -> int
(** Payload of the head event at the cursor.  Only valid immediately
    after a {!next_time} that returned [>= 0]. *)

val pop : t -> int
(** Remove and return the head event's payload.  Same precondition as
    {!peek_val}. *)

val cursor_occupied : t -> bool
(** [true] while the cursor's level-0 slot still holds events.  After a
    {!pop} this means the next event carries the exact time just served,
    so a caller may reuse its cached (time, head) decision without
    calling {!next_time} again. *)

val jump : t -> int -> unit
(** [jump t time] moves the cursor forward to the start of [time]'s
    epoch (never backwards; no-op within the current epoch).  Requires
    an empty wheel — it is the entry point for migrating an epoch of
    overflow events down. *)

val cursor : t -> int
(** Current cursor tick: every resident event's time is [>= cursor], and
    any [add] below it is refused. *)

val count : t -> int
val is_empty : t -> bool

val drain_all : t -> (int -> unit) -> unit
(** Remove every resident event, calling [f] on each payload (order
    unspecified); the cursor is left unchanged.  Cold path ([clear]). *)
