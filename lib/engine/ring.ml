type 'a t = {
  slots : 'a option array;
  mutable head : int;  (* index of the next write *)
  mutable len : int;  (* live entries, <= capacity *)
  mutable dropped : int;  (* overwritten entries since creation/clear *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { slots = Array.make capacity None; head = 0; len = 0; dropped = 0 }

let capacity t = Array.length t.slots
let length t = t.len
let dropped t = t.dropped
let is_empty t = t.len = 0

let push t v =
  let cap = Array.length t.slots in
  if t.len = cap then t.dropped <- t.dropped + 1 else t.len <- t.len + 1;
  t.slots.(t.head) <- Some v;
  t.head <- if t.head + 1 = cap then 0 else t.head + 1

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0

(* Oldest entry first. *)
let iter t f =
  let cap = Array.length t.slots in
  let start = (t.head - t.len + cap) mod cap in
  for i = 0 to t.len - 1 do
    match t.slots.((start + i) mod cap) with
    | Some v -> f v
    | None -> ()
  done

let to_list t =
  let acc = ref [] in
  iter t (fun v -> acc := v :: !acc);
  List.rev !acc

let fold t ~init f =
  let acc = ref init in
  iter t (fun v -> acc := f !acc v);
  !acc
