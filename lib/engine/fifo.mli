(** A growable ring-buffer FIFO.

    Replaces [Stdlib.Queue] on the data path: [Queue] allocates a cons
    cell per [add], while a ring writes into a preallocated circular
    array — [push]/[pop] allocate nothing once the ring has grown to the
    working-set size.  Unlike {!Vec} it supports O(1) removal at the
    front.  Not thread-safe, like everything else in the simulator. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val capacity : 'a t -> int

val push : 'a t -> 'a -> unit
(** Append at the back; doubles the ring when full. *)

val pop : 'a t -> 'a
(** Remove the front element.  @raise Invalid_argument when empty —
    guard with {!is_empty}; there is deliberately no option-returning
    variant on the hot path. *)

val peek : 'a t -> 'a
(** @raise Invalid_argument when empty. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Front to back. *)

val clear : 'a t -> unit
