(** A growable ring-buffer FIFO.

    Replaces [Stdlib.Queue] on the data path: [Queue] allocates a cons
    cell per [add], while a ring writes into a preallocated circular
    array — [push]/[pop] allocate nothing once the ring has grown to the
    working-set size.  Unlike {!Vec} it supports O(1) removal at the
    front.  Not thread-safe, like everything else in the simulator. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val capacity : 'a t -> int

val push : 'a t -> 'a -> unit
(** Append at the back; doubles the ring when full. *)

val pop : 'a t -> 'a
(** Remove the front element.  @raise Invalid_argument when empty —
    guard with {!is_empty}; there is deliberately no option-returning
    variant on the hot path. *)

val peek : 'a t -> 'a
(** @raise Invalid_argument when empty. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Front to back. *)

val get : 'a t -> int -> 'a
(** [get q i] is the [i]-th element from the front without removing it
    ([get q 0 = peek q]).  O(1).  @raise Invalid_argument when
    [i < 0 || i >= length q]. *)

val pop_n : 'a t -> int -> ('a -> unit) -> int
(** [pop_n q n f] removes up to [n] front elements, calling [f] on each
    in FIFO order, and returns how many were removed ([min n (length q)];
    0 on an empty ring).  Each element is popped before [f] sees it, so
    [f] may push onto the same ring — pushed elements land after the
    batch and are not drained.  The breathe-loop drain for port lanes. *)

val drain : 'a t -> ('a -> unit) -> unit
(** [drain q f] empties the ring front to back through [f] ([pop_n] with
    the batch sized to the length at entry; elements [f] pushes stay). *)

val clear : 'a t -> unit
