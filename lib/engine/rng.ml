(* xoshiro256** seeded through splitmix64.

   The four 64-bit state words live in a 32-byte buffer rather than a
   record of [mutable int64] fields: the bytes primitives below compile
   to raw unboxed loads and stores, so stepping the generator allocates
   nothing.  (A mutable [int64] record field boxes every store — four
   boxes per draw — and the spraying policies draw once per forwarded
   packet.)  The algorithm is untouched, so every stream is
   bit-identical to the record-based representation. *)

external b_get : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external b_set : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

type t = Bytes.t

let of_quad s0 s1 s2 s3 =
  let b = Bytes.create 32 in
  b_set b 0 s0;
  b_set b 8 s1;
  b_set b 16 s2;
  b_set b 24 s3;
  b

(* splitmix64, used to expand a seed into xoshiro state. *)
let splitmix_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  of_quad s0 s1 s2 s3

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** next.  The sequential state updates of the reference
   implementation are expressed as shadowing lets (each reads the values
   the field stores would have produced), ending in four raw stores. *)
let int64 t =
  let open Int64 in
  let s0 = b_get t 0
  and s1 = b_get t 8
  and s2 = b_get t 16
  and s3 = b_get t 24 in
  let result = mul (rotl (mul s1 5L) 7) 9L in
  let tmp = shift_left s1 17 in
  let s2 = logxor s2 s0 in
  let s3 = logxor s3 s1 in
  let s1 = logxor s1 s2 in
  let s0 = logxor s0 s3 in
  let s2 = logxor s2 tmp in
  let s3 = rotl s3 45 in
  b_set t 0 s0;
  b_set t 8 s1;
  b_set t 16 s2;
  b_set t 24 s3;
  result

let split t =
  let st = ref (int64 t) in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  of_quad s0 s1 s2 s3

let substream ~seed ~index =
  (* Pure derivation: mix the index into the seed through two rounds of
     splitmix so neighbouring indices land far apart, then expand as in
     [create].  Never touches any parent generator state. *)
  let st = ref (Int64.of_int seed) in
  let a = splitmix_next st in
  let st =
    ref (Int64.logxor a (Int64.mul (Int64.of_int index) 0xD1342543DE82EF95L))
  in
  let _discard = splitmix_next st in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  of_quad s0 s1 s2 s3

(* [int] and [float] repeat the step body instead of calling [int64]:
   without flambda a cross-function [int64] result is boxed (one minor
   block per draw, and spraying draws once per forwarded packet), while
   within one function ocamlopt keeps the whole chain in registers —
   these two are allocation-free. *)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let open Int64 in
  let s0 = b_get t 0
  and s1 = b_get t 8
  and s2 = b_get t 16
  and s3 = b_get t 24 in
  let result = mul (rotl (mul s1 5L) 7) 9L in
  let tmp = shift_left s1 17 in
  let s2 = logxor s2 s0 in
  let s3 = logxor s3 s1 in
  let s1 = logxor s1 s2 in
  let s0 = logxor s0 s3 in
  let s2 = logxor s2 tmp in
  let s3 = rotl s3 45 in
  b_set t 0 s0;
  b_set t 8 s1;
  b_set t 16 s2;
  b_set t 24 s3;
  let v = Int64.to_int (shift_right_logical result 1) land Stdlib.max_int in
  v mod bound

let float t =
  (* 53 high-quality bits -> [0, 1) *)
  let open Int64 in
  let s0 = b_get t 0
  and s1 = b_get t 8
  and s2 = b_get t 16
  and s3 = b_get t 24 in
  let result = mul (rotl (mul s1 5L) 7) 9L in
  let tmp = shift_left s1 17 in
  let s2 = logxor s2 s0 in
  let s3 = logxor s3 s1 in
  let s1 = logxor s1 s2 in
  let s0 = logxor s0 s3 in
  let s2 = logxor s2 tmp in
  let s3 = rotl s3 45 in
  b_set t 0 s0;
  b_set t 8 s1;
  b_set t 16 s2;
  b_set t 24 s3;
  let v = shift_right_logical result 11 in
  Int64.to_float v *. (1. /. 9007199254740992.)

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t ~mean =
  let u = float t in
  -.mean *. log (1. -. u)

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
