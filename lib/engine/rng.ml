type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64, used to expand a seed into xoshiro state. *)
let splitmix_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** next *)
let int64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let st = ref (int64 t) in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  { s0; s1; s2; s3 }

let substream ~seed ~index =
  (* Pure derivation: mix the index into the seed through two rounds of
     splitmix so neighbouring indices land far apart, then expand as in
     [create].  Never touches any parent generator state. *)
  let st = ref (Int64.of_int seed) in
  let a = splitmix_next st in
  let st =
    ref (Int64.logxor a (Int64.mul (Int64.of_int index) 0xD1342543DE82EF95L))
  in
  let _discard = splitmix_next st in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  { s0; s1; s2; s3 }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 1) land max_int in
  v mod bound

let float t =
  (* 53 high-quality bits -> [0, 1) *)
  let v = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float v *. (1. /. 9007199254740992.)

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t ~mean =
  let u = float t in
  -.mean *. log (1. -. u)

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
