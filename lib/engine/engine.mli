(** The discrete-event simulation driver.

    An engine owns the simulated clock and a queue of pending events.
    Execution is strictly ordered by (time, scheduling order), so a run
    is a deterministic function of the initial schedule and the
    callbacks' behaviour.

    Events are closure-free: components register a callback once (at
    construction time) and every subsequent event carries only the
    callback id plus an immediate payload — two int arguments and one
    reusable [Obj.t] slot — so scheduling on the hot path allocates
    nothing (see DESIGN.md §10).  The original closure API
    ([schedule]/[schedule_at]) remains for cold paths and tests; it is
    implemented on top of the callback form and costs one closure
    allocation per event, exactly as before. *)

type t

type handle = int
(** A scheduled event.  Handles are generation-tagged ints from the
    queue's slot freelist: [none] (and any handle whose event already
    fired or was dropped) never matches a live event, so storing [none]
    replaces the [handle option] idiom without allocating. *)

type callback = int
(** Index into the engine's callback registry. *)

val none : handle
val null_callback : callback

val create : ?capacity:int -> unit -> t
(** [capacity] preallocates the event queue (default 256 events). *)

val now : t -> Sim_time.t
(** Current simulated time. *)

val register_callback : t -> (int -> int -> Obj.t -> unit) -> callback
(** Register a dispatch function once; the returned id is what events
    carry.  Registration allocates — do it at component construction,
    never on the event path.  The function receives the event's [a], [b]
    and [obj] payload. *)

val schedule_call :
  t -> delay:Sim_time.t -> callback -> a:int -> b:int -> obj:Obj.t -> handle
(** Closure-free scheduling: runs the registered callback at
    [now t + delay] with the given payload.  [delay] must be
    non-negative.  Allocates nothing in steady state. *)

val schedule_call_at :
  t -> time:Sim_time.t -> callback -> a:int -> b:int -> obj:Obj.t -> handle
(** As [schedule_call] at absolute [time >= now t]. *)

val schedule : t -> delay:Sim_time.t -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t + delay].  [delay] must be
    non-negative. *)

val schedule_at : t -> time:Sim_time.t -> (unit -> unit) -> handle
(** [schedule_at t ~time f] runs [f] at absolute [time >= now t]. *)

val cancel : t -> handle -> unit
(** Cancelling an already-fired or already-cancelled event (or [none])
    is a no-op. *)

val is_pending : t -> handle -> bool

val run : ?until:Sim_time.t -> ?max_events:int -> t -> unit
(** Process events in order until the queue drains, [until] is passed, or
    [max_events] have fired.  The clock never moves backwards; when an
    [until] horizon stops the run, the clock is left at the horizon. *)

val stop : t -> unit
(** Ask a running [run] to return after the current event. *)

val events_processed : t -> int

val pending : t -> int
(** Number of scheduled-and-not-yet-fired events (including cancelled ones
    still in the queue). *)

val sched_stats : t -> int * int
(** [(wheel_adds, heap_adds)]: lifetime counts of events filed in the
    timing wheel's dense band vs. the overflow heap (DESIGN.md §15).
    bench-engine asserts the wheel hit ratio stays above 90% on incast. *)

