type sink = Silent | Print | Retain

let default_capacity = 1 lsl 16

let current = ref Silent
let events : (Sim_time.t * string * string) Ring.t ref =
  ref (Ring.create ~capacity:default_capacity)

let set_sink s = current := s
let sink () = !current
let enabled () = !current <> Silent

let set_capacity n = events := Ring.create ~capacity:n
let capacity () = Ring.capacity !events
let dropped () = Ring.dropped !events

let emit ~time ~cat msg =
  match !current with
  | Silent -> ()
  | Print -> Format.printf "[%a] %-10s %s@." Sim_time.pp time cat msg
  | Retain -> Ring.push !events (time, cat, msg)

let emitf ~time ~cat fmt =
  if !current = Silent then Format.ifprintf Format.std_formatter fmt
  else Format.kasprintf (fun msg -> emit ~time ~cat msg) fmt

let retained () = Ring.to_list !events
let clear () = Ring.clear !events
