type sink = Silent | Print | Retain

let default_capacity = 1 lsl 16

(* Domain-local: each simulation shard owns its own sink and ring, so
   tracing from parallel domains never races (and a spawned shard starts
   Silent regardless of what the main domain configured). *)
type state = {
  mutable sink : sink;
  mutable events : (Sim_time.t * string * string) Ring.t;
}

let key =
  Domain.DLS.new_key (fun () ->
      { sink = Silent; events = Ring.create ~capacity:default_capacity })

let set_sink s = (Domain.DLS.get key).sink <- s
let sink () = (Domain.DLS.get key).sink
let enabled () = (Domain.DLS.get key).sink <> Silent

let set_capacity n = (Domain.DLS.get key).events <- Ring.create ~capacity:n
let capacity () = Ring.capacity (Domain.DLS.get key).events
let dropped () = Ring.dropped (Domain.DLS.get key).events

let emit ~time ~cat msg =
  let st = Domain.DLS.get key in
  match st.sink with
  | Silent -> ()
  | Print -> Format.printf "[%a] %-10s %s@." Sim_time.pp time cat msg
  | Retain -> Ring.push st.events (time, cat, msg)

let emitf ~time ~cat fmt =
  if (Domain.DLS.get key).sink = Silent then
    Format.ifprintf Format.std_formatter fmt
  else Format.kasprintf (fun msg -> emit ~time ~cat msg) fmt

let retained () = Ring.to_list (Domain.DLS.get key).events
let clear () = Ring.clear (Domain.DLS.get key).events
