(* Three-level hierarchical timing wheel over integer nanosecond ticks.

   Level 0 is 256 slots of one tick each and holds every pending time in
   the cursor's current 256-tick window; level 1 is 256 slots of 256
   ticks and holds the rest of the cursor's current 65536-tick chunk;
   level 2 is 256 slots of 65536 ticks and holds the rest of the
   cursor's current 2^24-tick (~16.7ms) epoch — wide enough that every
   periodic timer in the simulator (DCQCN alpha/TI, NACK hold-off, RTO)
   files into the wheel rather than the overflow heap.  Times outside
   the epoch (or behind the cursor) are not coverable — [add] refuses
   them and the caller keeps those events in its overflow heap (see
   {!Event_queue}).

   The wheel is intrusive: the payload value [s] passed to [add] (an
   {!Event_queue} arena slot id, < 2^24) doubles as the node index, so
   the wheel allocates nothing and keeps no freelist.  A node is one int
   in [nodes]: the time relative to the epoch base (24 bits, shifted
   left 24) packed with the next-in-slot link (24 bits, [nil] when
   last).  Slot lists pack head and tail the same way in one int of
   [l0_ht]/[l1_ht]/[l2_ht] (-1 when empty), so the steady-state add/pop
   path touches three cache lines: the node, the slot word, and the
   (hot) occupancy bitmap.

   Because a level-0 slot pins the full time value (high bits fixed by
   the chunk, low bits by the slot index), a slot's list holds exactly
   one timestamp and append order is insertion order — which is how the
   wheel preserves the engine's (time, seq) FIFO tie-break without ever
   storing or comparing sequence numbers: every producer that feeds a
   slot (direct adds, cascades from the levels above, heap migration via
   the caller) appends in ascending insertion order (see the ordering
   argument in DESIGN.md §15). *)

let l0_slots = 256
let l0_mask = l0_slots - 1
let l1_shift = 8
let chunk_shift = 16
let epoch_shift = 24
let rel_max = (1 lsl epoch_shift) - 1
let nil = 0xFFFFFF (* 24-bit null link; arena slots are < 2^24 *)

type t = {
  (* nodes.(s) = (rel_time lsl 24) lor next; valid only while [s] is
     wheel-resident.  Indexed by the caller's slot id — grown via
     [ensure_capacity] alongside the caller's arena. *)
  mutable nodes : int array;
  (* Slot words: head lor (tail lsl 24), -1 when empty. *)
  l0_ht : int array;
  l1_ht : int array;
  l2_ht : int array;
  (* Occupancy bitmaps as 8 words of 32 bits per level, plus one summary
     bit per word, so the cursor scan skips empty runs 32 slots at a
     time and never walks empty words. *)
  l0_bits : int array;
  l1_bits : int array;
  l2_bits : int array;
  mutable l0_sum : int;
  mutable l1_sum : int;
  mutable l2_sum : int;
  mutable cursor : int;  (* absolute tick; every resident time >= cursor *)
  mutable epoch_base : int;  (* (cursor lsr 24) lsl 24, kept by [jump] *)
  mutable count : int;
}

let create ?(capacity = 256) () =
  let cap = if capacity < 16 then 16 else capacity in
  {
    nodes = Array.make cap 0;
    l0_ht = Array.make l0_slots (-1);
    l1_ht = Array.make l0_slots (-1);
    l2_ht = Array.make l0_slots (-1);
    l0_bits = Array.make 8 0;
    l1_bits = Array.make 8 0;
    l2_bits = Array.make 8 0;
    l0_sum = 0;
    l1_sum = 0;
    l2_sum = 0;
    cursor = 0;
    epoch_base = 0;
    count = 0;
  }

let count t = t.count
let is_empty t = t.count = 0
let cursor t = t.cursor

let ensure_capacity t n =
  let cap = Array.length t.nodes in
  if n > cap then begin
    let ncap = ref (2 * cap) in
    while !ncap < n do
      ncap := 2 * !ncap
    done;
    let dst = Array.make !ncap 0 in
    Array.blit t.nodes 0 dst 0 cap;
    t.nodes <- dst
  end

(* First set bit of a non-zero 32-bit word: isolate the lowest bit and
   index a table via the classic de Bruijn multiply.  The isolated bit
   is at most 2^31, so the 63-bit product is exact and the explicit
   [land 0xFFFFFFFF] reproduces the 32-bit truncation the sequence
   relies on.  Branch-free, and — unlike a [mod]-by-prime residue
   table — free of the idiv that ocamlopt emits for a non-power-of-two
   modulus (this runs several times per event pop). *)
let debruijn32 = 0x077CB531

let ffs_tbl =
  let tbl = Array.make 32 (-1) in
  for i = 0 to 31 do
    tbl.((((1 lsl i) * debruijn32) land 0xFFFFFFFF) lsr 27) <- i
  done;
  tbl

let[@inline] ffs w =
  Array.unsafe_get ffs_tbl ((((w land -w) * debruijn32) land 0xFFFFFFFF) lsr 27)

(* Lowest occupied slot index >= [from] in a 256-bit level bitmap, or
   -1.  [sum] has one bit per bitmap word, so after the (usually
   hitting) first-word probe the scan is a single ffs on the summary —
   never a walk over empty words. *)
let scan_bits bits sum from =
  if from > l0_mask then -1
  else begin
    let w = from lsr 5 in
    let masked =
      Array.unsafe_get bits w land (-1 lsl (from land 31)) land 0xFFFFFFFF
    in
    if masked <> 0 then (w lsl 5) lor ffs masked
    else begin
      let rest = sum land (-2 lsl w) in
      if rest = 0 then -1
      else begin
        let w' = ffs rest in
        (w' lsl 5) lor ffs (Array.unsafe_get bits w')
      end
    end
  end

let append_l0 t slot s rel =
  Array.unsafe_set t.nodes s ((rel lsl 24) lor nil);
  let ht = Array.unsafe_get t.l0_ht slot in
  if ht < 0 then begin
    t.l0_ht.(slot) <- s lor (s lsl 24);
    let w = slot lsr 5 in
    t.l0_bits.(w) <- t.l0_bits.(w) lor (1 lsl (slot land 31));
    t.l0_sum <- t.l0_sum lor (1 lsl w)
  end
  else begin
    let tail = ht lsr 24 in
    t.nodes.(tail) <- (Array.unsafe_get t.nodes tail land lnot nil) lor s;
    t.l0_ht.(slot) <- (ht land nil) lor (s lsl 24)
  end

let append_l1 t slot s rel =
  Array.unsafe_set t.nodes s ((rel lsl 24) lor nil);
  let ht = Array.unsafe_get t.l1_ht slot in
  if ht < 0 then begin
    t.l1_ht.(slot) <- s lor (s lsl 24);
    let w = slot lsr 5 in
    t.l1_bits.(w) <- t.l1_bits.(w) lor (1 lsl (slot land 31));
    t.l1_sum <- t.l1_sum lor (1 lsl w)
  end
  else begin
    let tail = ht lsr 24 in
    t.nodes.(tail) <- (Array.unsafe_get t.nodes tail land lnot nil) lor s;
    t.l1_ht.(slot) <- (ht land nil) lor (s lsl 24)
  end

let append_l2 t slot s rel =
  Array.unsafe_set t.nodes s ((rel lsl 24) lor nil);
  let ht = Array.unsafe_get t.l2_ht slot in
  if ht < 0 then begin
    t.l2_ht.(slot) <- s lor (s lsl 24);
    let w = slot lsr 5 in
    t.l2_bits.(w) <- t.l2_bits.(w) lor (1 lsl (slot land 31));
    t.l2_sum <- t.l2_sum lor (1 lsl w)
  end
  else begin
    let tail = ht lsr 24 in
    t.nodes.(tail) <- (Array.unsafe_get t.nodes tail land lnot nil) lor s;
    t.l2_ht.(slot) <- (ht land nil) lor (s lsl 24)
  end

let add t ~time s =
  if time < t.cursor then false
  else begin
    let rel = time - t.epoch_base in
    if rel > rel_max then false
    else begin
      if time lsr l1_shift = t.cursor lsr l1_shift then
        append_l0 t (time land l0_mask) s rel
      else if time lsr chunk_shift = t.cursor lsr chunk_shift then
        append_l1 t ((rel lsr l1_shift) land l0_mask) s rel
      else append_l2 t (rel lsr chunk_shift) s rel;
      t.count <- t.count + 1;
      true
    end
  end

(* Redistribute a parent slot into the level below.  Walk order is
   append order, so each destination slot receives its sublist in the
   original insertion order.  The relinkers recurse at top level rather
   than looping over a [ref] — cascades run every 256 ticks and must not
   allocate. *)
let rec relink0 t node =
  if node <> nil then begin
    let packed = Array.unsafe_get t.nodes node in
    let next = packed land nil in
    let rel = packed lsr 24 in
    append_l0 t (rel land l0_mask) node rel;
    relink0 t next
  end

let rec relink1 t node =
  if node <> nil then begin
    let packed = Array.unsafe_get t.nodes node in
    let next = packed land nil in
    let rel = packed lsr 24 in
    append_l1 t ((rel lsr l1_shift) land l0_mask) node rel;
    relink1 t next
  end

let cascade_l1 t j =
  let ht = t.l1_ht.(j) in
  t.l1_ht.(j) <- -1;
  let w = j lsr 5 in
  let word = t.l1_bits.(w) land lnot (1 lsl (j land 31)) in
  t.l1_bits.(w) <- word;
  if word = 0 then t.l1_sum <- t.l1_sum land lnot (1 lsl w);
  relink0 t (ht land nil)

let cascade_l2 t k =
  let ht = t.l2_ht.(k) in
  t.l2_ht.(k) <- -1;
  let w = k lsr 5 in
  let word = t.l2_bits.(w) land lnot (1 lsl (k land 31)) in
  t.l2_bits.(w) <- word;
  if word = 0 then t.l2_sum <- t.l2_sum land lnot (1 lsl w);
  relink1 t (ht land nil)

(* Advance the cursor to the earliest resident time.  Cascades level-1
   slots as the cursor crosses their 256-tick windows and level-2 slots
   as it crosses 65536-tick chunks; never leaves the current epoch
   (epoch entry is the caller's [jump], which also migrates heap
   overflow).  [l1_from] is where the level-1 scan resumes: one past the
   cursor's own window normally, but 0 right after a level-2 cascade —
   the cascaded chunk's first window lands in level-1 slot 0, which IS
   the cursor's window then. *)
let rec advance t l1_from =
  match scan_bits t.l0_bits t.l0_sum (t.cursor land l0_mask) with
  | s when s >= 0 ->
      t.cursor <- t.cursor land lnot l0_mask lor s;
      t.cursor
  | _ -> (
      match scan_bits t.l1_bits t.l1_sum l1_from with
      | j when j >= 0 ->
          cascade_l1 t j;
          t.cursor <- ((t.cursor lsr chunk_shift) lsl chunk_shift)
                      lor (j lsl l1_shift);
          advance t (j + 1)
      | _ -> (
          match
            scan_bits t.l2_bits t.l2_sum
              (((t.cursor lsr chunk_shift) land l0_mask) + 1)
          with
          | k when k >= 0 ->
              cascade_l2 t k;
              t.cursor <- t.epoch_base lor (k lsl chunk_shift);
              advance t 0
          | _ ->
              (* count > 0 but all levels empty is an invariant break. *)
              assert false))

let next_time t =
  if t.count = 0 then -1
  else advance t (((t.cursor lsr l1_shift) land l0_mask) + 1)

(* Payload of the head event at the cursor slot; requires a preceding
   [next_time] that returned >= 0. *)
let peek_val t = t.l0_ht.(t.cursor land l0_mask) land nil

let pop t =
  let slot = t.cursor land l0_mask in
  let ht = t.l0_ht.(slot) in
  let n = ht land nil in
  let nx = Array.unsafe_get t.nodes n land nil in
  if nx = nil then begin
    t.l0_ht.(slot) <- -1;
    let w = slot lsr 5 in
    let word = t.l0_bits.(w) land lnot (1 lsl (slot land 31)) in
    t.l0_bits.(w) <- word;
    if word = 0 then t.l0_sum <- t.l0_sum land lnot (1 lsl w)
  end
  else t.l0_ht.(slot) <- (ht land lnot nil) lor nx;
  t.count <- t.count - 1;
  n

(* Is the cursor's level-0 slot still occupied?  After a [pop], a [true]
   here means the next event shares the exact time just served — the
   caller can keep its cached decision and skip the rescan. *)
let[@inline] cursor_occupied t = t.l0_ht.(t.cursor land l0_mask) >= 0

(* Move the cursor forward to the start of [time]'s epoch so a migration
   of that epoch's overflow events becomes coverable.  Only meaningful on
   an empty wheel (nothing can be left behind); the cursor never moves
   backwards. *)
let jump t time =
  assert (t.count = 0);
  let epoch_start = (time lsr epoch_shift) lsl epoch_shift in
  if epoch_start > t.cursor then begin
    t.cursor <- epoch_start;
    t.epoch_base <- epoch_start
  end

let drain_all t f =
  let drain_level ht bits =
    for slot = 0 to l0_slots - 1 do
      let htv = ht.(slot) in
      if htv >= 0 then begin
        let n = ref (htv land nil) in
        while !n <> nil do
          let node = !n in
          n := t.nodes.(node) land nil;
          f node
        done;
        ht.(slot) <- -1
      end
    done;
    Array.fill bits 0 8 0
  in
  drain_level t.l0_ht t.l0_bits;
  drain_level t.l1_ht t.l1_bits;
  drain_level t.l2_ht t.l2_bits;
  t.l0_sum <- 0;
  t.l1_sum <- 0;
  t.l2_sum <- 0;
  t.count <- 0
