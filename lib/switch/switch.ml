type pfc_config = { xoff : int; xon : int }

type config = {
  lb : Lb_policy.t;
  ecn : Ecn.config option;
  buffer_capacity : int;
  per_port_cap : int;
  fwd_delay : Sim_time.t;
  pfc : pfc_config option;
  ecmp_shift : int;
}

let default_config ~bw lb =
  {
    lb;
    ecn = Some (Ecn.scaled_to bw);
    buffer_capacity = 64 * 1024 * 1024;
    per_port_cap = 9 * 1024 * 1024;
    fwd_delay = Sim_time.zero;
    pfc = None;
    ecmp_shift = 0;
  }

type t = {
  engine : Engine.t;
  topo : Topology.t;
  routing : Routing.t;
  node : int;
  mutable cfg : config;
  rng : Rng.t;
  pool : Buffer_pool.t;
  ports : (int, Port.t * int) Hashtbl.t;  (* link_id -> (port, peer) *)
  local_hosts : Bytes.t;  (* node id -> '\001' when an attached host *)
  (* Compiled forwarding fast path: per destination node, the candidate
     egress ports in [Routing.next_hops] order, resolved from link ids
     once (on first use after attach/recompute) so the steady-state
     [forward] indexes arrays with zero hashing.  [fwd_gen] is the
     routing generation the rows were compiled against; a mismatch
     wipes them (link failure / restore). *)
  next_ports : Port.t array option array;
  (* Per-destination path-multiplicity rows (Routing.path_weights),
     compiled alongside [next_ports] and invalidated with them; consumed
     by the Spritz policy. *)
  next_weights : int array option array;
  mutable fwd_gen : int;
  (* Reusable load closure for load-aware policies: [load_ports] is set
     to the current candidate row just before [Lb_policy.choose_at], so
     no closure is allocated per packet. *)
  mutable load_ports : Port.t array;
  mutable load_fn : int -> int;
  (* Per-flow spraying state for the stateful arena policies; acts only
     for flows whose sender is attached here (the source ToR). *)
  lb_state : Lb_state.t;
  mutable themis_s : Themis_s.t option;
  mutable themis_d : Themis_d.t option;
  mutable upstream : Port.t list;
  mutable pfc_paused : bool;
  mutable rx_packets : int;
  mutable forwarded : int;
  mutable dropped_buffer : int;
  mutable dropped_unreachable : int;
  mutable dropped_data : int;
  mutable ecn_marked : int;
  mutable nacks_blocked : int;
  (* Closure-free fwd-delay events; the packet rides the obj slot. *)
  mutable cb_process : Engine.callback;
  mutable cb_forward : Engine.callback;
  (* Drop-counter handle resolved once per telemetry context, plus the
     preformatted drop location, instead of per-drop rebuilds. *)
  drop_loc : string;
  drop_labels : Metrics.labels;
  mutable drop_registry : Metrics.t option;
  mutable drop_counter : Metrics.counter option;
}

let node_id t = t.node
let config t = t.cfg

(* Diagnostic: hashtable probes taken by the forwarding slow path (the
   per-destination compile after create / attach / recompute).  The
   steady-state fast path contains no probe — and so no counting code —
   at all; bench/engine_bench.ml asserts this stays flat once warm. *)
let slow_path_probes = Domain.DLS.new_key (fun () -> ref 0)
let forward_hash_probes () = !(Domain.DLS.get slow_path_probes)

let resolve_drop_counter t m =
  let c = Metrics.counter m ~labels:t.drop_labels "switch_dropped_packets" in
  t.drop_registry <- Some m;
  t.drop_counter <- Some c;
  c

let record_drop t (pkt : Packet.t) reason =
  if Packet.is_data pkt then t.dropped_data <- t.dropped_data + 1;
  if Telemetry.enabled () then begin
    let m = Telemetry.metrics_exn () in
    let counter =
      match (t.drop_counter, t.drop_registry) with
      | Some c, Some r when r == m -> c
      | _ -> resolve_drop_counter t m
    in
    Metrics.incr counter;
    Telemetry.record ~time:(Engine.now t.engine)
      (Event.Packet_drop
         {
           loc = t.drop_loc;
           conn = pkt.Packet.conn;
           psn =
             (match pkt.Packet.kind with
             | Packet.Data { psn; _ } -> Psn.to_int psn
             | Packet.Ack _ | Packet.Nack _ | Packet.Cnp | Packet.Pause _ -> -1);
           reason;
         })
  end

(* Defined below; PFC state must react to buffer release too. *)
let rec pfc_update t =
  match t.cfg.pfc with
  | None -> ()
  | Some { xoff; xon } ->
      let used = Buffer_pool.used t.pool in
      if (not t.pfc_paused) && used >= xoff then begin
        t.pfc_paused <- true;
        List.iter (fun p -> Port.set_paused p true) t.upstream
      end
      else if t.pfc_paused && used <= xon then begin
        t.pfc_paused <- false;
        List.iter (fun p -> Port.set_paused p false) t.upstream
      end

and attach_port t ~link_id ~peer port =
  Hashtbl.replace t.ports link_id (port, peer);
  (* New wiring invalidates any rows compiled before this port existed. *)
  Array.fill t.next_ports 0 (Array.length t.next_ports) None;
  Array.fill t.next_weights 0 (Array.length t.next_weights) None;
  let peer_is_host = Topology.is_host t.topo peer in
  if peer_is_host then Bytes.set t.local_hosts peer '\001';
  (* Release shared-buffer bytes as packets leave the queue; on the last
     hop towards a locally attached receiver this is also the moment the
     packet "leaves the ToR", when Themis-D records its PSN (and may emit
     a compensation NACK). *)
  Port.set_on_dequeue port (fun pkt ->
      Buffer_pool.release t.pool pkt.Packet.size;
      pfc_update t;
      match t.themis_d with
      | Some d
        when peer_is_host && peer = pkt.Packet.dst_node && Packet.is_data pkt
        ->
          Themis_d.on_data d pkt
      | Some _ | None -> ());
  Port.set_on_discard port (fun pkt ->
      Buffer_pool.release t.pool pkt.Packet.size;
      pfc_update t)

let set_themis t ~s ~d =
  t.themis_s <- s;
  t.themis_d <- d

let themis_d t = t.themis_d
let themis_s t = t.themis_s
let set_lb t lb = t.cfg <- { t.cfg with lb }
let set_upstream_ports t ports = t.upstream <- ports

let port_to t ~peer =
  match Topology.link_between t.topo t.node peer with
  | None -> None
  | Some link_id -> (
      match Hashtbl.find_opt t.ports link_id with
      | Some (port, _) -> Some port
      | None -> None)

let is_local_host t node =
  node >= 0
  && node < Bytes.length t.local_hosts
  && Bytes.unsafe_get t.local_hosts node <> '\000'

(* Candidate next hops towards [dst] as an array of ports, in
   [Routing.next_hops] order ((peer, link_id) sorted by peer id — the
   stable path indexing shared with the PSN-spraying policy).  Cold
   path: resolve each link id to its port handle once; every later
   forward to [dst] indexes the compiled row directly. *)
let compile_ports t dst =
  let cands = Routing.next_hops t.routing ~node:t.node ~dst in
  let ports =
    Array.map
      (fun (_, link_id) ->
        incr (Domain.DLS.get slow_path_probes);
        match Hashtbl.find_opt t.ports link_id with
        | Some (port, _) -> port
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Switch %d: no port attached for link %d (wiring bug)" t.node
                 link_id))
      cands
  in
  t.next_ports.(dst) <- Some ports;
  t.next_weights.(dst) <- Some (Routing.path_weights t.routing ~node:t.node ~dst);
  ports

let candidate_ports t dst =
  let gen = Routing.generation t.routing in
  if gen <> t.fwd_gen then begin
    Array.fill t.next_ports 0 (Array.length t.next_ports) None;
    Array.fill t.next_weights 0 (Array.length t.next_weights) None;
    t.fwd_gen <- gen
  end;
  if dst >= 0 && dst < Array.length t.next_ports then
    match Array.unsafe_get t.next_ports dst with
    | Some ports -> ports
    | None -> compile_ports t dst
  else
    (* Out of range: not a host; [Routing.next_hops] raises the
       canonical invalid_arg without touching [next_ports]. *)
    Array.map (fun _ -> assert false)
      (Routing.next_hops t.routing ~node:t.node ~dst)

let compiled_next_ports t ~dst = candidate_ports t dst

let compiled_path_weights t ~dst =
  ignore (candidate_ports t dst);
  match t.next_weights.(dst) with Some w -> w | None -> [||]

let lb_state t = t.lb_state

let enqueue_on t port (pkt : Packet.t) =
  if
    Buffer_pool.try_admit t.pool ~port_bytes:(Port.queue_bytes port)
      ~size:pkt.Packet.size
  then begin
    (match (t.cfg.ecn, pkt.Packet.kind) with
    | Some ecn_cfg, Packet.Data _ ->
        if
          pkt.Packet.ecn = Headers.Ect
          && Ecn.should_mark ecn_cfg t.rng ~queue_bytes:(Port.queue_bytes port)
        then begin
          pkt.Packet.ecn <- Headers.Ce;
          t.ecn_marked <- t.ecn_marked + 1;
          if Telemetry.enabled () then begin
            Telemetry.incr_counter "ecn_marks";
            Telemetry.record ~time:(Engine.now t.engine)
              (Event.Ecn_mark
                 {
                   node = t.node;
                   conn = pkt.Packet.conn;
                   queue_bytes = Port.queue_bytes port;
                 })
          end
        end
    | (Some _ | None), _ -> ());
    t.forwarded <- t.forwarded + 1;
    Port.enqueue port pkt;
    pfc_update t
  end
  else begin
    t.dropped_buffer <- t.dropped_buffer + 1;
    record_drop t pkt Event.Buffer_full;
    if Trace.enabled () then
      Trace.emitf ~time:(Engine.now t.engine) ~cat:"switch"
        "node%d buffer-dropped %a" t.node Packet.pp pkt;
    Packet_pool.release pkt
  end

(* ACK/NACK-borne entropy echo: a control packet being forwarded to a
   locally attached host is returning to its flow's sender, i.e. this
   switch is the source ToR whose spraying state the echo feeds. *)
let policy_feedback t (pkt : Packet.t) =
  match (t.cfg.lb, pkt.Packet.kind) with
  | (Lb_policy.Reps | Lb_policy.Prime), (Packet.Ack _ | Packet.Nack _)
    when pkt.Packet.entropy_echo >= 0 && is_local_host t pkt.Packet.dst_node
    -> (
      match t.cfg.lb with
      | Lb_policy.Reps ->
          Lb_state.reps_feedback t.lb_state ~conn_id:pkt.Packet.conn_id
            ~entropy:pkt.Packet.entropy_echo ~ce:pkt.Packet.ecn_echo
      | _ ->
          Lb_state.prime_feedback t.lb_state ~conn_id:pkt.Packet.conn_id
            ~ce:pkt.Packet.ecn_echo)
  | _, _ -> ()

let forward t (pkt : Packet.t) =
  policy_feedback t pkt;
  let ports = candidate_ports t pkt.Packet.dst_node in
  let n = Array.length ports in
  if n = 0 then begin
    t.dropped_unreachable <- t.dropped_unreachable + 1;
    record_drop t pkt Event.Unreachable;
    Packet_pool.release pkt
  end
  else begin
    let idx =
      if n = 1 then 0
      else
        (* Themis-S sprays data packets entering the fabric here, i.e.
           packets whose sender is attached to this ToR. *)
        let themis_choice =
          match t.themis_s with
          | Some s when is_local_host t pkt.Packet.src_node -> (
              match Themis_s.mode s with
              | Themis_s.Direct_egress -> (
                  match Themis_s.egress_index s pkt with
                  | Some path -> Some (path mod n)
                  | None -> None)
              | Themis_s.Sport_rewrite _ ->
                  Themis_s.apply s pkt;
                  None)
          | Some _ | None -> None
        in
        match themis_choice with
        | Some i -> i
        | None -> (
            t.load_ports <- ports;
            (* The stateful rivals act only at the flow's source ToR;
               everywhere else they degrade to ECMP hashing of the
               (possibly rewritten) entropy field inside [choose_at]. *)
            match t.cfg.lb with
            | (Lb_policy.Reps | Lb_policy.Prime | Lb_policy.Sprinklers)
              when is_local_host t pkt.Packet.src_node ->
                Lb_policy.choose_at ~shift:t.cfg.ecmp_shift ~state:t.lb_state
                  t.cfg.lb ~rng:t.rng ~pkt ~n ~load:t.load_fn
            | Lb_policy.Spritz when is_local_host t pkt.Packet.src_node -> (
                match t.next_weights.(pkt.Packet.dst_node) with
                | Some w ->
                    Lb_policy.choose_at ~shift:t.cfg.ecmp_shift ~weights:w
                      t.cfg.lb ~rng:t.rng ~pkt ~n ~load:t.load_fn
                | None ->
                    Lb_policy.choose_at ~shift:t.cfg.ecmp_shift t.cfg.lb
                      ~rng:t.rng ~pkt ~n ~load:t.load_fn)
            | _ ->
                Lb_policy.choose_at ~shift:t.cfg.ecmp_shift t.cfg.lb ~rng:t.rng
                  ~pkt ~n ~load:t.load_fn)
    in
    enqueue_on t ports.(idx) pkt
  end

let process t (pkt : Packet.t) =
  (* NACKs emitted by a locally attached receiver NIC are validated by
     Themis-D before they may travel back to the sender. *)
  let blocked =
    match t.themis_d with
    | Some d when Packet.is_nack pkt && is_local_host t pkt.Packet.src_node
      -> (
        match Themis_d.on_nack d pkt with
        | Themis_d.Block ->
            t.nacks_blocked <- t.nacks_blocked + 1;
            if Trace.enabled () then
              Trace.emitf ~time:(Engine.now t.engine) ~cat:"themis-d"
                "tor%d blocked invalid %a" t.node Packet.pp pkt;
            true
        | Themis_d.Forward ->
            if Trace.enabled () then
              Trace.emitf ~time:(Engine.now t.engine) ~cat:"themis-d"
                "tor%d forwarded %a" t.node Packet.pp pkt;
            false)
    | Some _ | None -> false
  in
  if not blocked then forward t pkt

let create ~engine ~topo ~routing ~node ~config ~rng =
  let t =
  {
    engine;
    topo;
    routing;
    node;
    cfg = config;
    rng;
    pool =
      Buffer_pool.create ~capacity:config.buffer_capacity
        ~per_port_cap:config.per_port_cap;
    ports = Hashtbl.create 8;
    local_hosts = Bytes.make (Topology.node_count topo) '\000';
    next_ports = Array.make (Topology.node_count topo) None;
    next_weights = Array.make (Topology.node_count topo) None;
    fwd_gen = Routing.generation routing;
    load_ports = [||];
    load_fn = (fun _ -> 0);
    lb_state = Lb_state.create ();
    themis_s = None;
    themis_d = None;
    upstream = [];
    pfc_paused = false;
    rx_packets = 0;
    forwarded = 0;
    dropped_buffer = 0;
    dropped_unreachable = 0;
    dropped_data = 0;
    ecn_marked = 0;
    nacks_blocked = 0;
    cb_process = Engine.null_callback;
    cb_forward = Engine.null_callback;
    drop_loc = Printf.sprintf "sw%d" node;
    drop_labels = [ ("node", string_of_int node) ];
    drop_registry = None;
    drop_counter = None;
  }
  in
  t.load_fn <- (fun i -> Port.queue_bytes t.load_ports.(i));
  t.cb_process <-
    Engine.register_callback engine (fun _ _ obj -> process t (Obj.obj obj));
  t.cb_forward <-
    Engine.register_callback engine (fun _ _ obj -> forward t (Obj.obj obj));
  (if Telemetry.enabled () then
     ignore (resolve_drop_counter t (Telemetry.metrics_exn ())));
  t

let receive t pkt =
  t.rx_packets <- t.rx_packets + 1;
  if t.cfg.fwd_delay = Sim_time.zero then process t pkt
  else
    ignore
      (Engine.schedule_call t.engine ~delay:t.cfg.fwd_delay t.cb_process ~a:0
         ~b:0 ~obj:(Obj.repr pkt))

(* Batched arrival: one activation drains a whole lane of packets
   through the compiled forwarding arrays.  Per-packet semantics
   (Themis-D interception, LB choice, ECN, counters) are exactly
   [receive] in FIFO order — the batch only amortizes the activation. *)
let receive_batch t lane = Fifo.drain lane (fun pkt -> receive t pkt)

let inject t pkt =
  if t.cfg.fwd_delay = Sim_time.zero then forward t pkt
  else
    ignore
      (Engine.schedule_call t.engine ~delay:t.cfg.fwd_delay t.cb_forward ~a:0
         ~b:0 ~obj:(Obj.repr pkt))

let rx_packets t = t.rx_packets
let forwarded_packets t = t.forwarded
let dropped_buffer t = t.dropped_buffer
let dropped_unreachable t = t.dropped_unreachable
let dropped_data_packets t = t.dropped_data
let ecn_marked t = t.ecn_marked
let nacks_intercept_blocked t = t.nacks_blocked
let buffer_pool t = t.pool
