(** The switch data plane.

    An output-queued switch: a received packet is matched against the
    routing table, one equal-cost next hop is chosen by the configured
    load-balancing policy, the packet passes shared-buffer admission and
    ECN marking, and is enqueued on the egress {!Port}.

    ToR switches additionally host the Themis middleware:
    - {!Themis_s.t} sprays data packets of locally attached senders
      (direct egress choice in 2-tier fabrics, sport rewriting otherwise);
    - {!Themis_d.t} observes data packets forwarded to locally attached
      receivers and intercepts the NACKs those receivers emit, blocking
      the invalid ones and injecting compensation NACKs.

    Optional PFC: when the shared pool crosses [xoff] the switch pauses
    the upstream ports feeding it (resuming at [xon]), modelling
    priority-flow-control backpressure on a lossless fabric. *)

type pfc_config = { xoff : int; xon : int }

type config = {
  lb : Lb_policy.t;
  ecn : Ecn.config option;
  buffer_capacity : int;  (** Shared pool, bytes. *)
  per_port_cap : int;
  fwd_delay : Sim_time.t;  (** Pipeline latency applied to every packet. *)
  pfc : pfc_config option;
  ecmp_shift : int;
      (** Which bit window of the flow hash this switch's ECMP consumes —
          0 for single-tier fabrics; distinct per tier in fat trees so a
          single sport rewrite steers every hop. *)
}

val default_config : bw:Rate.t -> Lb_policy.t -> config
(** 64 MB shared buffer ([Memory_model.tofino_sram_bytes]-class chip),
    9 MB per-port cap, ECN scaled to [bw], no PFC, zero pipeline delay. *)

type t

val create :
  engine:Engine.t ->
  topo:Topology.t ->
  routing:Routing.t ->
  node:int ->
  config:config ->
  rng:Rng.t ->
  t

val node_id : t -> int
val config : t -> config

val attach_port : t -> link_id:int -> peer:int -> Port.t -> unit
(** Register the egress port for one attached link (wiring phase).
    Every link id a routing candidate can name must be attached: the
    forwarding compiler treats a missing port as a wiring bug and
    raises [Invalid_argument] instead of silently dropping packets. *)

val set_themis : t -> s:Themis_s.t option -> d:Themis_d.t option -> unit
val themis_d : t -> Themis_d.t option
val themis_s : t -> Themis_s.t option

val set_lb : t -> Lb_policy.t -> unit
(** Live policy change — used by the link-failure fallback of Section 6
    (Themis disabled, revert to ECMP). *)

val set_upstream_ports : t -> Port.t list -> unit
(** The far-end ports transmitting towards this switch; required only when
    PFC is configured. *)

val receive : t -> Packet.t -> unit
(** A packet arriving from a link.  NACKs from locally attached receivers
    pass through Themis-D here. *)

val receive_batch : t -> Packet.t Fifo.t -> unit
(** Drain a lane of arrived packets through {!receive} in FIFO order as
    one activation (the breathe idiom): identical per-packet semantics,
    one call into the compiled forwarding fast path per batch. *)

val inject : t -> Packet.t -> unit
(** Originate a packet at this switch (Themis-D compensation NACKs);
    skips NACK interception but is otherwise forwarded normally. *)

val port_to : t -> peer:int -> Port.t option

(** Aggregate counters. *)

val rx_packets : t -> int
val forwarded_packets : t -> int
val dropped_buffer : t -> int
val dropped_unreachable : t -> int

val dropped_data_packets : t -> int
(** Data-only subset of buffer + unreachable drops, for the fuzz
    harness's packet-conservation oracle. *)


val ecn_marked : t -> int
val nacks_intercept_blocked : t -> int
val buffer_pool : t -> Buffer_pool.t

(** {2 Compiled-forwarding diagnostics (DESIGN.md §11)} *)

val forward_hash_probes : unit -> int
(** Global count of hashtable probes taken by the forwarding slow path
    (per-destination compiles after create / attach / recompute).  The
    steady-state forward carries no probes — and no counting code — so
    this stays flat once caches are warm; the [fwd] benchmark asserts
    it. *)

val compiled_next_ports : t -> dst:int -> Port.t array
(** The dense candidate-port row for [dst], compiling it first if
    stale or absent — in [Routing.next_hops] order.  Exposed for the
    route-cache invalidation tests; raises like {!Routing.next_hops}
    on a non-host [dst]. *)

val compiled_path_weights : t -> dst:int -> int array
(** The compiled {!Routing.path_weights} row for [dst], aligned with
    {!compiled_next_ports} — the Spritz spraying weights.  Recompiled
    with the port rows on wiring/routing changes, so after a link fails
    and routing recomputes, the weights track the surviving path
    counts. *)

val lb_state : t -> Lb_state.t
(** The switch's per-flow spraying state (REPS entropy cache, PRIME
    adaptive parts, Sprinklers stripes) — exposed for invariant
    tests. *)
