(* Per-source-ToR spraying state for the stateful arena policies
   (REPS / PRIME / Sprinklers).  One [t] lives inside each switch; flows
   are keyed by interned [conn_id] (dense per run, so a growable slot
   array suffices).  Module-level counters feed the policy invariant
   oracles and must be reset at fuzz-run / campaign-job boundaries
   ([reset_globals], same discipline as [Packet.reset_uid_counter]). *)

let ring_cap = 16
let tainted_cap = 32

(* Sprinklers: a fresh stripe is a few MTUs; queue differential is added
   on top so the new output's backlog drains before the stripe ends. *)
let stripe_quantum = 6144

type flow = {
  (* REPS: FIFO ring of recyclable (clean-ACKed) entropies. *)
  ring : int array;
  mutable rhead : int;
  mutable rlen : int;
  (* REPS: bounded set of entropies whose last echo saw ECN. *)
  tainted : int array;
  mutable tlen : int;
  mutable tnext : int;
  (* PRIME: congestion-adaptive entropy part. *)
  mutable adapt : int;
  (* Sprinklers: current output and bytes left in its stripe. *)
  mutable cur : int;
  mutable stripe_rem : int;
}

let new_flow () =
  {
    ring = Array.make ring_cap 0;
    rhead = 0;
    rlen = 0;
    tainted = Array.make tainted_cap 0;
    tlen = 0;
    tnext = 0;
    adapt = 0;
    cur = -1;
    stripe_rem = 0;
  }

type t = { mutable flows : flow option array; mutable rot : int }

let create () = { flows = [||]; rot = 0 }

let flow t id =
  let len = Array.length t.flows in
  if id >= len then begin
    let narr =
      Array.make (Stdlib.max (id + 1) (Stdlib.max 16 (2 * len))) None
    in
    Array.blit t.flows 0 narr 0 len;
    t.flows <- narr
  end;
  match t.flows.(id) with
  | Some f -> f
  | None ->
      let f = new_flow () in
      t.flows.(id) <- Some f;
      f

(* --- Invariant counters (domain-wide, reset per run) ----------------- *)

(* Domain-local so parallel shards count independently; the sharded
   runner sums shard snapshots componentwise when an oracle needs the
   fleet-wide total. *)
type globals = {
  mutable reps_recycled : int;
  mutable reps_fresh : int;
  mutable reps_tainted_recycled : int;
  mutable prime_bumps : int;
  mutable sprinkler_switches : int;
  mutable spritz_picks : int;
}

let globals_key =
  Domain.DLS.new_key (fun () ->
      {
        reps_recycled = 0;
        reps_fresh = 0;
        reps_tainted_recycled = 0;
        prime_bumps = 0;
        sprinkler_switches = 0;
        spritz_picks = 0;
      })

let reset_globals () =
  let g = Domain.DLS.get globals_key in
  g.reps_recycled <- 0;
  g.reps_fresh <- 0;
  g.reps_tainted_recycled <- 0;
  g.prime_bumps <- 0;
  g.sprinkler_switches <- 0;
  g.spritz_picks <- 0

let counters () =
  let g = Domain.DLS.get globals_key in
  [
    ("reps_recycled", g.reps_recycled);
    ("reps_fresh", g.reps_fresh);
    ("reps_tainted_recycled", g.reps_tainted_recycled);
    ("prime_bumps", g.prime_bumps);
    ("sprinkler_switches", g.sprinkler_switches);
    ("spritz_picks", g.spritz_picks);
  ]

let note_spritz_pick () =
  let g = Domain.DLS.get globals_key in
  g.spritz_picks <- g.spritz_picks + 1

(* --- REPS ------------------------------------------------------------ *)

let ring_push f e =
  if f.rlen = ring_cap then begin
    (* Cache window full: the oldest recyclable entropy ages out. *)
    f.rhead <- (f.rhead + 1) mod ring_cap;
    f.rlen <- f.rlen - 1
  end;
  f.ring.((f.rhead + f.rlen) mod ring_cap) <- e;
  f.rlen <- f.rlen + 1

let ring_pop f =
  let e = f.ring.(f.rhead) in
  f.rhead <- (f.rhead + 1) mod ring_cap;
  f.rlen <- f.rlen - 1;
  e

let ring_evict f e =
  let n = f.rlen in
  let kept = ref 0 in
  for i = 0 to n - 1 do
    let v = f.ring.((f.rhead + i) mod ring_cap) in
    if v <> e then begin
      f.ring.((f.rhead + !kept) mod ring_cap) <- v;
      incr kept
    end
  done;
  f.rlen <- !kept

let tainted_mem f e =
  let rec go i = i < f.tlen && (f.tainted.(i) = e || go (i + 1)) in
  go 0

let tainted_add f e =
  if not (tainted_mem f e) then
    if f.tlen < tainted_cap then begin
      f.tainted.(f.tlen) <- e;
      f.tlen <- f.tlen + 1
    end
    else begin
      f.tainted.(f.tnext) <- e;
      f.tnext <- (f.tnext + 1) mod tainted_cap
    end

let tainted_remove f e =
  let rec find i =
    if i >= f.tlen then -1 else if f.tainted.(i) = e then i else find (i + 1)
  in
  let i = find 0 in
  if i >= 0 then begin
    f.tlen <- f.tlen - 1;
    f.tainted.(i) <- f.tainted.(f.tlen);
    if f.tnext > f.tlen then f.tnext <- 0
  end

let reps_next t ~conn_id ~rng =
  let f = flow t conn_id in
  if f.rlen > 0 then begin
    let e = ring_pop f in
    let g = Domain.DLS.get globals_key in
    g.reps_recycled <- g.reps_recycled + 1;
    (* By construction tainted entropies were evicted from the ring;
       this counter is the invariant the oracle asserts stays 0. *)
    if tainted_mem f e then g.reps_tainted_recycled <- g.reps_tainted_recycled + 1;
    e
  end
  else begin
    let g = Domain.DLS.get globals_key in
    g.reps_fresh <- g.reps_fresh + 1;
    Rng.int rng 0x10000
  end

let reps_feedback t ~conn_id ~entropy ~ce =
  if entropy >= 0 then begin
    let f = flow t conn_id in
    if ce then begin
      ring_evict f entropy;
      tainted_add f entropy
    end
    else begin
      tainted_remove f entropy;
      ring_push f entropy
    end
  end

(* --- PRIME ----------------------------------------------------------- *)

let prime_adapt t ~conn_id = (flow t conn_id).adapt

let prime_feedback t ~conn_id ~ce =
  if ce then begin
    (flow t conn_id).adapt <- (flow t conn_id).adapt + 1;
    let g = Domain.DLS.get globals_key in
    g.prime_bumps <- g.prime_bumps + 1
  end

(* --- Sprinklers ------------------------------------------------------ *)

(* No-overtake argument: switching output a -> b at a stripe boundary
   cannot reorder if q_b >= q_a at decision time (equal rates/delays),
   so the eligible set at a boundary is every output at least as loaded
   as the current one; we take the least loaded of those, rotating
   through ties so symmetric fabrics still spread round-robin. *)
let sprinkler_choose t ~conn_id ~bytes ~n ~load =
  let f = flow t conn_id in
  if f.cur >= 0 && f.cur < n && f.stripe_rem > 0 then begin
    f.stripe_rem <- f.stripe_rem - bytes;
    f.cur
  end
  else begin
    let loads = Array.init n load in
    let min_all = Array.fold_left Stdlib.min max_int loads in
    let floor_ = if f.cur >= 0 && f.cur < n then loads.(f.cur) else min_all in
    let best = ref max_int in
    for j = 0 to n - 1 do
      if loads.(j) >= floor_ && loads.(j) < !best then best := loads.(j)
    done;
    let count = ref 0 in
    for j = 0 to n - 1 do
      if loads.(j) = !best then incr count
    done;
    let pick = t.rot mod !count in
    t.rot <- t.rot + 1;
    let choice = ref 0 and seen = ref 0 in
    (try
       for j = 0 to n - 1 do
         if loads.(j) = !best then begin
           if !seen = pick then begin
             choice := j;
             raise Exit
           end;
           incr seen
         end
       done
     with Exit -> ());
    let choice = !choice in
    if f.cur >= 0 && choice <> f.cur then begin
      let g = Domain.DLS.get globals_key in
      g.sprinkler_switches <- g.sprinkler_switches + 1
    end;
    f.cur <- choice;
    f.stripe_rem <- stripe_quantum + (loads.(choice) - min_all) - bytes;
    choice
  end
