(** Per-source-ToR state for the stateful arena spraying policies
    (REPS / PRIME / Sprinklers), keyed by interned connection id.

    The module-level counters back the policy invariant oracles (e.g.
    REPS must never recycle a tainted entropy); like the packet uid
    counter and the flow-id interner they are process-wide and must be
    reset at fuzz-run and campaign-job boundaries via {!reset_globals}
    or serial-vs-forked byte-identity breaks. *)

type t

val create : unit -> t

(** {2 REPS — recycled entropy spraying (Bonato et al.)} *)

val reps_next : t -> conn_id:int -> rng:Rng.t -> int
(** Entropy for the next data packet of the flow: the oldest cached
    clean entropy when one is available, a fresh random value
    otherwise. *)

val reps_feedback : t -> conn_id:int -> entropy:int -> ce:bool -> unit
(** ACK/NACK-borne echo: a clean echo recycles [entropy] into the cache;
    a CE-marked echo evicts it and marks it tainted.  [entropy < 0]
    (no echo) is ignored. *)

(** {2 PRIME — multi-part entropy} *)

val prime_adapt : t -> conn_id:int -> int
(** Current congestion-adaptive entropy part of the flow. *)

val prime_feedback : t -> conn_id:int -> ce:bool -> unit
(** Bump the adaptive part when the echo saw congestion, steering the
    composed entropy onto a different path set. *)

(** {2 Sprinklers — reordering-free variable-size striping (Ding et al.)} *)

val sprinkler_choose :
  t -> conn_id:int -> bytes:int -> n:int -> load:(int -> int) -> int
(** Output for a [bytes]-sized data packet.  Within a stripe the flow
    sticks to its output; at a stripe boundary it may only move to an
    output at least as loaded as the current one (the no-overtake
    condition), with the stripe sized to the queue differential. *)

(** {2 Invariant counters} *)

val reset_globals : unit -> unit

val counters : unit -> (string * int) list
(** [reps_recycled], [reps_fresh], [reps_tainted_recycled] (must stay
    0), [prime_bumps], [sprinkler_switches], [spritz_picks]. *)

val note_spritz_pick : unit -> unit

val stripe_quantum : int
(** Base stripe size in bytes. *)
