type t =
  | Ecmp
  | Random_spray
  | Adaptive
  | Psn_spray
  | Reps
  | Prime
  | Sprinklers
  | Spritz

let all =
  [ Ecmp; Random_spray; Adaptive; Psn_spray; Reps; Prime; Sprinklers; Spritz ]

let to_string = function
  | Ecmp -> "ecmp"
  | Random_spray -> "random-spray"
  | Adaptive -> "adaptive"
  | Psn_spray -> "psn-spray"
  | Reps -> "reps"
  | Prime -> "prime"
  | Sprinklers -> "sprinklers"
  | Spritz -> "spritz"

let of_string = function
  | "ecmp" -> Ok Ecmp
  | "random-spray" | "spray" -> Ok Random_spray
  | "adaptive" | "ar" -> Ok Adaptive
  | "psn-spray" | "psn" -> Ok Psn_spray
  | "reps" -> Ok Reps
  | "prime" -> Ok Prime
  | "sprinklers" -> Ok Sprinklers
  | "spritz" -> Ok Spritz
  | s -> Error (Printf.sprintf "unknown load-balancing policy %S" s)

let pp ppf t = Format.pp_print_string ppf (to_string t)

let ecmp_index_at ~shift ~(pkt : Packet.t) ~n =
  (* Data and control packets of one connection share a [conn_id] but
     flow in opposite directions (reversed src/dst), so they get distinct
     memo slots; the even slot matches [Spray.base_for_flow_id]. *)
  let slot =
    (pkt.Packet.conn_id lsl 1)
    lor (match pkt.Packet.kind with Packet.Data _ -> 0 | _ -> 1)
  in
  let h =
    Ecmp_hash.flow_hash_id ~id:slot ~src:pkt.Packet.src_node
      ~dst:pkt.Packet.dst_node ~sport:pkt.Packet.udp_sport
      ~dport:Headers.roce_dst_port
  in
  Ecmp_hash.path_of_hash_at ~shift ~hash:h ~paths:n

let ecmp_index ~pkt ~n = ecmp_index_at ~shift:0 ~pkt ~n

(* Scratch for [least_loaded]'s second pass, so each candidate's load is
   probed exactly once per choice; grown to the widest radix seen.
   Domain-local: shards must not share scratch. *)
let ll_scratch = Domain.DLS.new_key (fun () -> ref (Array.make 16 0))

let least_loaded rng ~n ~load =
  let scratch = Domain.DLS.get ll_scratch in
  if n > Array.length !scratch then scratch := Array.make n 0;
  let loads = !scratch in
  let best = ref max_int and count = ref 0 in
  for i = 0 to n - 1 do
    let l = load i in
    Array.unsafe_set loads i l;
    if l < !best then begin
      best := l;
      count := 1
    end
    else if l = !best then incr count
  done;
  (* Reservoir-free uniform pick among the [!count] minima. *)
  let pick = Rng.int rng !count in
  let idx = ref 0 and seen = ref 0 and result = ref 0 in
  while !idx < n do
    if Array.unsafe_get loads !idx = !best then begin
      if !seen = pick then begin
        result := !idx;
        idx := n
      end
      else begin
        incr seen;
        incr idx
      end
    end
    else incr idx
  done;
  !result

(* Spritz scratch: damped effective weights, probed once per choice.
   Domain-local like [ll_scratch]. *)
let spritz_scratch = Domain.DLS.new_key (fun () -> ref (Array.make 16 0))

(* Weighted pick proportional to per-path shortest-path multiplicity,
   damped by queue depth: eff_j = w_j * (1 + (max_load - load_j)/4KiB),
   which degenerates to the raw path weights on balanced queues. *)
let spritz_pick rng ~n ~weights:(w : int array) ~load =
  let scratch = Domain.DLS.get spritz_scratch in
  if n > Array.length !scratch then scratch := Array.make n 0;
  let eff = !scratch in
  let max_load = ref 0 in
  for j = 0 to n - 1 do
    let l = load j in
    Array.unsafe_set eff j l;
    if l > !max_load then max_load := l
  done;
  let total = ref 0 in
  for j = 0 to n - 1 do
    let l = Array.unsafe_get eff j in
    let e = w.(j) * (1 + ((!max_load - l) / 4096)) in
    Array.unsafe_set eff j e;
    total := !total + e
  done;
  if !total <= 0 then Rng.int rng n
  else begin
    let r = ref (Rng.int rng !total) in
    let idx = ref 0 in
    while !r >= Array.unsafe_get eff !idx do
      r := !r - Array.unsafe_get eff !idx;
      incr idx
    done;
    !idx
  end

let choose_at ~shift ?state ?weights t ~rng ~(pkt : Packet.t) ~n ~load =
  if n <= 0 then invalid_arg "Lb_policy.choose: no candidates";
  if n = 1 then 0
  else
    match (t, pkt.Packet.kind) with
    | Ecmp, _
    | ( Random_spray | Adaptive | Psn_spray | Reps | Prime | Sprinklers
      | Spritz ),
      (Packet.Ack _ | Packet.Nack _ | Packet.Cnp | Packet.Pause _) ->
        ecmp_index_at ~shift ~pkt ~n
    | Random_spray, Packet.Data _ -> Rng.int rng n
    | Adaptive, Packet.Data _ -> least_loaded rng ~n ~load
    | Psn_spray, Packet.Data { psn; _ } ->
        let base =
          Spray.base_for_flow_id ~id:pkt.Packet.conn_id pkt.Packet.conn
            ~sport:pkt.Packet.udp_sport ~paths:n
        in
        Spray.path_for_psn ~psn ~base ~paths:n
    (* The stateful rivals act at the flow's source ToR, which passes its
       [Lb_state.t]; mid-fabric switches see no state and ECMP-hash the
       (possibly rewritten) entropy field, as a real fabric would. *)
    | Reps, Packet.Data _ -> (
        match state with
        | Some st ->
            let e = Lb_state.reps_next st ~conn_id:pkt.Packet.conn_id ~rng in
            pkt.Packet.udp_sport <- e;
            e mod n
        | None -> ecmp_index_at ~shift ~pkt ~n)
    | Prime, Packet.Data { psn; _ } -> (
        match state with
        | Some st ->
            (* Multi-part entropy: 12-bit pseudo-random base (flow x PSN)
               composed with a 4-bit congestion-adaptive part.  The
               composition is injective per part pair, so distinct parts
               always produce distinct hash inputs. *)
            let base =
              Ecmp_hash.mix
                ((pkt.Packet.conn_id * 0x9E3779B1) lxor Psn.to_int psn)
              land 0xFFF
            in
            let adapt = Lb_state.prime_adapt st ~conn_id:pkt.Packet.conn_id in
            let e = ((adapt land 0xF) lsl 12) lor base in
            pkt.Packet.udp_sport <- e;
            Ecmp_hash.path_of_hash_at ~shift ~hash:(Ecmp_hash.mix e) ~paths:n
        | None -> ecmp_index_at ~shift ~pkt ~n)
    | Sprinklers, Packet.Data _ -> (
        match state with
        | Some st ->
            Lb_state.sprinkler_choose st ~conn_id:pkt.Packet.conn_id
              ~bytes:pkt.Packet.size ~n ~load
        | None -> ecmp_index_at ~shift ~pkt ~n)
    | Spritz, Packet.Data _ -> (
        Lb_state.note_spritz_pick ();
        match weights with
        | Some w when Array.length w = n -> spritz_pick rng ~n ~weights:w ~load
        | Some _ | None -> Rng.int rng n)

let choose ?state ?weights t ~rng ~pkt ~n ~load =
  choose_at ~shift:0 ?state ?weights t ~rng ~pkt ~n ~load
