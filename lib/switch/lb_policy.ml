type t = Ecmp | Random_spray | Adaptive | Psn_spray

let all = [ Ecmp; Random_spray; Adaptive; Psn_spray ]

let to_string = function
  | Ecmp -> "ecmp"
  | Random_spray -> "random-spray"
  | Adaptive -> "adaptive"
  | Psn_spray -> "psn-spray"

let of_string = function
  | "ecmp" -> Ok Ecmp
  | "random-spray" | "spray" -> Ok Random_spray
  | "adaptive" | "ar" -> Ok Adaptive
  | "psn-spray" | "psn" -> Ok Psn_spray
  | s -> Error (Printf.sprintf "unknown load-balancing policy %S" s)

let pp ppf t = Format.pp_print_string ppf (to_string t)

let ecmp_index_at ~shift ~(pkt : Packet.t) ~n =
  (* Data and control packets of one connection share a [conn_id] but
     flow in opposite directions (reversed src/dst), so they get distinct
     memo slots; the even slot matches [Spray.base_for_flow_id]. *)
  let slot =
    (pkt.Packet.conn_id lsl 1)
    lor (match pkt.Packet.kind with Packet.Data _ -> 0 | _ -> 1)
  in
  let h =
    Ecmp_hash.flow_hash_id ~id:slot ~src:pkt.Packet.src_node
      ~dst:pkt.Packet.dst_node ~sport:pkt.Packet.udp_sport
      ~dport:Headers.roce_dst_port
  in
  Ecmp_hash.path_of_hash_at ~shift ~hash:h ~paths:n

let ecmp_index ~pkt ~n = ecmp_index_at ~shift:0 ~pkt ~n

(* Scratch for [least_loaded]'s second pass, so each candidate's load is
   probed exactly once per choice; grown to the widest radix seen. *)
let ll_scratch = ref (Array.make 16 0)

let least_loaded rng ~n ~load =
  if n > Array.length !ll_scratch then ll_scratch := Array.make n 0;
  let loads = !ll_scratch in
  let best = ref max_int and count = ref 0 in
  for i = 0 to n - 1 do
    let l = load i in
    Array.unsafe_set loads i l;
    if l < !best then begin
      best := l;
      count := 1
    end
    else if l = !best then incr count
  done;
  (* Reservoir-free uniform pick among the [!count] minima. *)
  let pick = Rng.int rng !count in
  let idx = ref 0 and seen = ref 0 and result = ref 0 in
  while !idx < n do
    if Array.unsafe_get loads !idx = !best then begin
      if !seen = pick then begin
        result := !idx;
        idx := n
      end
      else begin
        incr seen;
        incr idx
      end
    end
    else incr idx
  done;
  !result

let choose_at ~shift t ~rng ~(pkt : Packet.t) ~n ~load =
  if n <= 0 then invalid_arg "Lb_policy.choose: no candidates";
  if n = 1 then 0
  else
    match (t, pkt.Packet.kind) with
    | Ecmp, _
    | (Random_spray | Adaptive | Psn_spray),
      (Packet.Ack _ | Packet.Nack _ | Packet.Cnp | Packet.Pause _) ->
        ecmp_index_at ~shift ~pkt ~n
    | Random_spray, Packet.Data _ -> Rng.int rng n
    | Adaptive, Packet.Data _ -> least_loaded rng ~n ~load
    | Psn_spray, Packet.Data { psn; _ } ->
        let base =
          Spray.base_for_flow_id ~id:pkt.Packet.conn_id pkt.Packet.conn
            ~sport:pkt.Packet.udp_sport ~paths:n
        in
        Spray.path_for_psn ~psn ~base ~paths:n

let choose t ~rng ~pkt ~n ~load = choose_at ~shift:0 t ~rng ~pkt ~n ~load
