(** Per-packet load-balancing policies for choosing among equal-cost
    next hops.

    Control packets (ACK / NACK / CNP / pause) always follow the flow's
    ECMP path regardless of policy, keeping the reverse control channel
    in order; only data packets are sprayed. *)

type t =
  | Ecmp  (** Flow-level hashing — the deployed default the paper indicts. *)
  | Random_spray  (** Uniform per-packet choice (Dixit et al.). *)
  | Adaptive
      (** Per-packet least-loaded egress ("adaptive routing" baseline of
          Section 5), ties broken uniformly. *)
  | Psn_spray
      (** Eq. 1 — the deterministic spraying Themis-S enforces.  Usable
          standalone (for ablation) or through [Themis_s]. *)
  | Reps
      (** Recycled entropy spraying (Bonato et al.): entropies whose
          ACKs come back clean are cached per flow and recycled; ECN or
          loss forces fresh entropy.  Needs the source ToR's
          {!Lb_state.t} and the RNIC's ACK-borne entropy echo. *)
  | Prime
      (** Multi-part entropy: pseudo-random base part (flow x PSN) plus
          a congestion-adaptive part bumped on ECN echo. *)
  | Sprinklers
      (** Variable-size per-(flow, output) striping (Ding et al.),
          reordering-free by construction: an output switch at a stripe
          boundary may only move to a queue at least as deep as the
          current one. *)
  | Spritz
      (** Path-aware weighted spraying: egress picked proportionally to
          {!Routing.path_weights} (shortest-path multiplicities), damped
          by queue depth — equalizes load under post-failure path-count
          asymmetry where uniform spraying overloads the surviving
          paths. *)

val all : t list
val to_string : t -> string
val of_string : string -> (t, string) result
val pp : Format.formatter -> t -> unit

val ecmp_index : pkt:Packet.t -> n:int -> int
(** The flow's ECMP choice among [n] candidates (hash of the packet's
    addressing + entropy field). *)

val choose :
  ?state:Lb_state.t ->
  ?weights:int array ->
  t ->
  rng:Rng.t ->
  pkt:Packet.t ->
  n:int ->
  load:(int -> int) ->
  int
(** Pick a candidate index in [[0, n)].  [load i] is the queued byte count
    of candidate [i] (used by [Adaptive], [Sprinklers], [Spritz]).
    [state] is the source ToR's per-flow spraying state — required for
    [Reps]/[Prime]/[Sprinklers] to act (they fall back to ECMP hashing
    without it, which is what mid-fabric switches do).  [weights] is the
    per-candidate path-multiplicity row for [Spritz] (falls back to
    uniform spraying).  [Reps] and [Prime] rewrite [pkt.udp_sport] with
    the chosen entropy so downstream tiers hash it. *)

val choose_at :
  shift:int ->
  ?state:Lb_state.t ->
  ?weights:int array ->
  t ->
  rng:Rng.t ->
  pkt:Packet.t ->
  n:int ->
  load:(int -> int) ->
  int
(** Like {!choose} but hashing with the tier's ECMP bit window (see
    {!Ecmp_hash.path_of_hash_at}) — used by multi-tier fabrics where each
    tier consumes a different slice of the header hash. *)
