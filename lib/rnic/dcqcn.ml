type config = {
  g : float;
  rai : Rate.t;
  rhai : Rate.t;
  alpha_timer : Sim_time.t;
  rate_decrease_interval : Sim_time.t;
  rate_increase_timer : Sim_time.t;
  byte_counter : int;
  fast_recovery_rounds : int;
  nack_slow_start : bool;
  nack_factor : float;
  nack_decrease_interval : Sim_time.t;
}

let default =
  {
    g = 1. /. 256.;
    rai = Rate.gbps 0.04;
    rhai = Rate.gbps 0.4;
    alpha_timer = Sim_time.us 55;
    rate_decrease_interval = Sim_time.us 4;
    rate_increase_timer = Sim_time.us 900;
    byte_counter = 10_000_000;
    fast_recovery_rounds = 5;
    nack_slow_start = true;
    nack_factor = 0.5;
    nack_decrease_interval = Sim_time.us 300;
  }

let with_ti_td cfg ~ti_us ~td_us =
  {
    cfg with
    rate_increase_timer = Sim_time.us_f ti_us;
    rate_decrease_interval = Sim_time.us_f td_us;
  }

type t = {
  engine : Engine.t;
  conn : Flow_id.t option;  (* telemetry label only *)
  cfg : config;
  line_rate : Rate.t;
  mutable rc : Rate.t;
  mutable rt : Rate.t;
  (* One-element array rather than a mutable field: in this mixed record
     a [mutable alpha : float] is a boxed float, so the 55µs decay timer
     — the single most frequent event in a converged run — would
     allocate on every store.  Flat float-array storage keeps the IEEE
     arithmetic (and hence every frozen trace) bit-identical while
     making the store allocation-free. *)
  alpha : float array;
  mutable last_decrease : Sim_time.t;
  mutable last_nack_decrease : Sim_time.t;
  mutable stage : int;
  mutable bytes_acc : int;
  mutable increase_timer : Engine.handle;
  mutable alpha_handle : Engine.handle;
  mutable decreases : int;
  (* Closure-free timers: registered once, rescheduled forever. *)
  mutable cb_increase : Engine.callback;
  mutable cb_alpha : Engine.callback;
}

let rate t = t.rc
let target t = t.rt
let alpha t = t.alpha.(0)
let decreases t = t.decreases

let at_line_rate t = Rate.compare t.rc t.line_rate >= 0

(* Only the rate-increase loop parks on full recovery; alpha keeps
   decaying (it terminates itself once negligible), so a long quiet
   period leaves the next congestion cut appropriately gentle. *)
let stop_increase_timer t =
  Engine.cancel t.engine t.increase_timer;
  t.increase_timer <- Engine.none

(* One rate-increase event (from the TI timer or the byte counter). *)
let rec increase_event t =
  t.stage <- t.stage + 1;
  let f = t.cfg.fast_recovery_rounds in
  if t.stage <= f then t.rc <- Rate.avg t.rc t.rt
  else if t.stage <= 2 * f then begin
    t.rt <- Rate.clamp (Rate.add t.rt t.cfg.rai) ~max:t.line_rate;
    t.rc <- Rate.avg t.rc t.rt
  end
  else begin
    t.rt <- Rate.clamp (Rate.add t.rt t.cfg.rhai) ~max:t.line_rate;
    t.rc <- Rate.avg t.rc t.rt
  end;
  t.rc <- Rate.clamp t.rc ~max:t.line_rate;
  if Rate.to_bps t.rc >= 0.999 *. Rate.to_bps t.line_rate then begin
    (* Fully recovered; park the control loop until the next signal. *)
    t.rc <- t.line_rate;
    t.rt <- t.line_rate;
    stop_increase_timer t
  end
  else reschedule_increase t

and reschedule_increase t =
  Engine.cancel t.engine t.increase_timer;
  t.increase_timer <-
    Engine.schedule_call t.engine ~delay:t.cfg.rate_increase_timer
      t.cb_increase ~a:0 ~b:0 ~obj:(Obj.repr ())

and alpha_decay t =
  let a = (1. -. t.cfg.g) *. Array.unsafe_get t.alpha 0 in
  Array.unsafe_set t.alpha 0 a;
  if a > 1e-4 then reschedule_alpha t else t.alpha_handle <- Engine.none

and reschedule_alpha t =
  Engine.cancel t.engine t.alpha_handle;
  t.alpha_handle <-
    Engine.schedule_call t.engine ~delay:t.cfg.alpha_timer t.cb_alpha ~a:0
      ~b:0 ~obj:(Obj.repr ())

let create ~engine ?conn ~config ~line_rate () =
  let t =
  {
    engine;
    conn;
    cfg = config;
    line_rate;
    rc = line_rate;
    rt = line_rate;
    alpha = [| 1. |];
    last_decrease = Sim_time.ns (-1_000_000_000);
    last_nack_decrease = Sim_time.ns (-1_000_000_000);
    stage = 0;
    bytes_acc = 0;
    increase_timer = Engine.none;
    alpha_handle = Engine.none;
    decreases = 0;
    cb_increase = Engine.null_callback;
    cb_alpha = Engine.null_callback;
  }
  in
  t.cb_increase <-
    Engine.register_callback engine (fun _ _ _ -> increase_event t);
  t.cb_alpha <- Engine.register_callback engine (fun _ _ _ -> alpha_decay t);
  t


let tm_decrease t cause =
  if Telemetry.enabled () then begin
    let label =
      match cause with
      | Event.Cnp -> "cnp"
      | Event.Nack -> "nack"
      | Event.Timeout -> "timeout"
    in
    Telemetry.incr_counter ~labels:[ ("cause", label) ] "dcqcn_rate_decreases";
    match t.conn with
    | None -> ()
    | Some conn ->
        Telemetry.record ~time:(Engine.now t.engine)
          (Event.Rate_change { conn; gbps = Rate.to_gbps t.rc; cause })
  end

let decrease ?(gate = `Td) t ~factor =
  let now = Engine.now t.engine in
  let gate_ok =
    match gate with
    | `Td -> Sim_time.diff now t.last_decrease >= t.cfg.rate_decrease_interval
    | `Nack ->
        Sim_time.diff now t.last_nack_decrease
        >= t.cfg.nack_decrease_interval
  in
  if gate_ok then begin
    t.last_decrease <- now;
    (match gate with
    | `Nack -> t.last_nack_decrease <- now
    | `Td -> ());
    t.decreases <- t.decreases + 1;
    t.alpha.(0) <- ((1. -. t.cfg.g) *. t.alpha.(0)) +. t.cfg.g;
    t.rt <- t.rc;
    t.rc <- Rate.scale t.rc factor;
    t.stage <- 0;
    t.bytes_acc <- 0;
    tm_decrease t (match gate with `Td -> Event.Cnp | `Nack -> Event.Nack);
    reschedule_increase t;
    reschedule_alpha t
  end

let on_cnp t = decrease t ~factor:(1. -. (t.alpha.(0) /. 2.))

let on_nack t =
  if t.cfg.nack_slow_start then decrease ~gate:`Nack t ~factor:t.cfg.nack_factor

let on_timeout t =
  t.last_decrease <- Engine.now t.engine;
  t.decreases <- t.decreases + 1;
  t.rt <- t.rc;
  t.rc <- Rate.min_rate;
  t.stage <- 0;
  t.bytes_acc <- 0;
  tm_decrease t Event.Timeout;
  reschedule_increase t;
  reschedule_alpha t

let on_bytes_sent t b =
  if t.cfg.byte_counter < max_int && not (at_line_rate t) then begin
    t.bytes_acc <- t.bytes_acc + b;
    if t.bytes_acc >= t.cfg.byte_counter then begin
      t.bytes_acc <- t.bytes_acc - t.cfg.byte_counter;
      increase_event t
    end
  end
