type mode = Sr | Gbn | Ideal

type actions = {
  send_ack : epsn:int -> unit;
  send_nack : epsn:int -> unit;
  deliver : bytes:int -> unit;
}

type t = {
  mode : mode;
  ack_coalesce : int;
  actions : actions;
  mutable epsn : int;
  ooo : (int, int) Hashtbl.t;  (* seq -> payload, received above ePSN *)
  mutable nacked_current : bool;  (* a NACK was already sent for this ePSN *)
  mutable pending_advance : int;  (* in-order advances not yet ACKed *)
  mutable delivered_bytes : int;
  mutable dups : int;
  mutable ooo_dropped : int;
  mutable nacks_sent : int;
  mutable acks_sent : int;
}

let create ~mode ~ack_coalesce ~actions =
  if ack_coalesce < 1 then invalid_arg "Receiver.create: ack_coalesce >= 1";
  {
    mode;
    ack_coalesce;
    actions;
    epsn = 0;
    ooo = Hashtbl.create 64;
    nacked_current = false;
    pending_advance = 0;
    delivered_bytes = 0;
    dups = 0;
    ooo_dropped = 0;
    nacks_sent = 0;
    acks_sent = 0;
  }

let flush_ack t =
  t.pending_advance <- 0;
  t.acks_sent <- t.acks_sent + 1;
  t.actions.send_ack ~epsn:t.epsn

let maybe_ack t ~force =
  if t.pending_advance >= t.ack_coalesce || (force && t.pending_advance > 0)
  then flush_ack t

let send_nack_once t =
  if not t.nacked_current then begin
    t.nacked_current <- true;
    t.nacks_sent <- t.nacks_sent + 1;
    if Telemetry.enabled () then Telemetry.incr_counter "nacks_generated";
    t.actions.send_nack ~epsn:t.epsn
  end

let deliver t payload =
  t.delivered_bytes <- t.delivered_bytes + payload;
  t.actions.deliver ~bytes:payload

(* Advance the ePSN over the contiguous prefix of the bitmap. *)
let advance t =
  t.epsn <- t.epsn + 1;
  t.pending_advance <- t.pending_advance + 1;
  t.nacked_current <- false;
  let rec drain () =
    match Hashtbl.find_opt t.ooo t.epsn with
    | Some _payload ->
        Hashtbl.remove t.ooo t.epsn;
        t.epsn <- t.epsn + 1;
        t.pending_advance <- t.pending_advance + 1;
        drain ()
    | None -> ()
  in
  drain ()

let on_data t ~seq ~payload ~last_of_msg =
  if seq = t.epsn then begin
    let before = t.epsn in
    deliver t payload;
    advance t;
    let filled_gap = t.epsn - before > 1 in
    maybe_ack t ~force:(last_of_msg || filled_gap)
  end
  else if seq < t.epsn then begin
    (* Duplicate of an already-delivered sequence: re-ACK so a sender whose
       ACKs were lost can advance. *)
    t.dups <- t.dups + 1;
    if Telemetry.enabled () then Telemetry.incr_counter "duplicate_packets";
    flush_ack t
  end
  else begin
    (* Out of order: seq > ePSN. *)
    match t.mode with
    | Gbn ->
        t.ooo_dropped <- t.ooo_dropped + 1;
        send_nack_once t
    | Sr ->
        if Hashtbl.mem t.ooo seq then t.dups <- t.dups + 1
        else begin
          Hashtbl.add t.ooo seq payload;
          deliver t payload
        end;
        send_nack_once t
    | Ideal ->
        if Hashtbl.mem t.ooo seq then t.dups <- t.dups + 1
        else begin
          Hashtbl.add t.ooo seq payload;
          deliver t payload
        end
  end

let epsn t = t.epsn
let delivered_bytes t = t.delivered_bytes
let duplicate_packets t = t.dups
let ooo_dropped t = t.ooo_dropped
let nacks_sent t = t.nacks_sent
let acks_sent t = t.acks_sent
let ooo_buffered t = Hashtbl.length t.ooo
