type mode = Sr | Gbn | Ideal

type actions = {
  send_ack : epsn:int -> unit;
  send_nack : epsn:int -> unit;
  deliver : bytes:int -> unit;
}

type t = {
  mode : mode;
  ack_coalesce : int;
  actions : actions;
  mutable epsn : int;
  (* Out-of-order buffer as a power-of-two ring keyed [seq land mask]:
     live sequences span at most the sender window, so the ring stays
     collision-free at a fraction of that size and membership / insert /
     drain are single array reads where the hashtable this replaces
     hashed per packet.  [ooo_seq.(slot) = -1] marks an empty slot; the
     payload lives in the parallel array (payloads may be 0). *)
  mutable ooo_seq : int array;
  mutable ooo_payload : int array;
  mutable ooo_count : int;
  mutable nacked_current : bool;  (* a NACK was already sent for this ePSN *)
  mutable pending_advance : int;  (* in-order advances not yet ACKed *)
  mutable delivered_bytes : int;
  mutable dups : int;
  mutable ooo_dropped : int;
  mutable ooo_arrivals : int;
  mutable nacks_sent : int;
  mutable acks_sent : int;
}

let create ~mode ~ack_coalesce ~actions =
  if ack_coalesce < 1 then invalid_arg "Receiver.create: ack_coalesce >= 1";
  {
    mode;
    ack_coalesce;
    actions;
    epsn = 0;
    ooo_seq = Array.make 64 (-1);
    ooo_payload = Array.make 64 0;
    ooo_count = 0;
    nacked_current = false;
    pending_advance = 0;
    delivered_bytes = 0;
    dups = 0;
    ooo_dropped = 0;
    ooo_arrivals = 0;
    nacks_sent = 0;
    acks_sent = 0;
  }

let ooo_mem t seq =
  let mask = Array.length t.ooo_seq - 1 in
  Array.unsafe_get t.ooo_seq (seq land mask) = seq

(* A slot occupied by a different live sequence means the live window
   outgrew the ring: double (rehoming every entry) until it fits. *)
let rec ooo_add t seq payload =
  let mask = Array.length t.ooo_seq - 1 in
  let slot = seq land mask in
  if t.ooo_seq.(slot) = -1 then begin
    t.ooo_seq.(slot) <- seq;
    t.ooo_payload.(slot) <- payload;
    t.ooo_count <- t.ooo_count + 1
  end
  else begin
    ooo_grow t;
    ooo_add t seq payload
  end

and ooo_grow t =
  let old_seq = t.ooo_seq and old_payload = t.ooo_payload in
  t.ooo_seq <- Array.make (2 * Array.length old_seq) (-1);
  t.ooo_payload <- Array.make (2 * Array.length old_payload) 0;
  t.ooo_count <- 0;
  Array.iteri
    (fun i seq -> if seq >= 0 then ooo_add t seq old_payload.(i))
    old_seq

(* Clear-and-return for the drain at [t.epsn]; [None] when absent. *)
let ooo_take t seq =
  let mask = Array.length t.ooo_seq - 1 in
  let slot = seq land mask in
  if t.ooo_seq.(slot) = seq then begin
    t.ooo_seq.(slot) <- -1;
    t.ooo_count <- t.ooo_count - 1;
    true
  end
  else false

let flush_ack t =
  t.pending_advance <- 0;
  t.acks_sent <- t.acks_sent + 1;
  t.actions.send_ack ~epsn:t.epsn

let maybe_ack t ~force =
  if t.pending_advance >= t.ack_coalesce || (force && t.pending_advance > 0)
  then flush_ack t

let send_nack_once t =
  if not t.nacked_current then begin
    t.nacked_current <- true;
    t.nacks_sent <- t.nacks_sent + 1;
    if Telemetry.enabled () then Telemetry.incr_counter "nacks_generated";
    t.actions.send_nack ~epsn:t.epsn
  end

let deliver t payload =
  t.delivered_bytes <- t.delivered_bytes + payload;
  t.actions.deliver ~bytes:payload

(* Advance the ePSN over the contiguous prefix of the bitmap. *)
let advance t =
  t.epsn <- t.epsn + 1;
  t.pending_advance <- t.pending_advance + 1;
  t.nacked_current <- false;
  let rec drain () =
    if ooo_take t t.epsn then begin
      t.epsn <- t.epsn + 1;
      t.pending_advance <- t.pending_advance + 1;
      drain ()
    end
  in
  drain ()

let on_data t ~seq ~payload ~last_of_msg =
  if seq = t.epsn then begin
    let before = t.epsn in
    deliver t payload;
    advance t;
    let filled_gap = t.epsn - before > 1 in
    maybe_ack t ~force:(last_of_msg || filled_gap)
  end
  else if seq < t.epsn then begin
    (* Duplicate of an already-delivered sequence: re-ACK so a sender whose
       ACKs were lost can advance. *)
    t.dups <- t.dups + 1;
    if Telemetry.enabled () then Telemetry.incr_counter "duplicate_packets";
    flush_ack t
  end
  else begin
    (* Out of order: seq > ePSN.  Counted in every mode: this is the
       wire-level reordering signal the LB-scheme arena gates on
       (Sprinklers must keep it at zero on symmetric paths). *)
    t.ooo_arrivals <- t.ooo_arrivals + 1;
    match t.mode with
    | Gbn ->
        t.ooo_dropped <- t.ooo_dropped + 1;
        send_nack_once t
    | Sr ->
        if ooo_mem t seq then t.dups <- t.dups + 1
        else begin
          ooo_add t seq payload;
          deliver t payload
        end;
        send_nack_once t
    | Ideal ->
        if ooo_mem t seq then t.dups <- t.dups + 1
        else begin
          ooo_add t seq payload;
          deliver t payload
        end
  end

let epsn t = t.epsn
let delivered_bytes t = t.delivered_bytes
let duplicate_packets t = t.dups
let ooo_dropped t = t.ooo_dropped
let ooo_arrivals t = t.ooo_arrivals
let nacks_sent t = t.nacks_sent
let acks_sent t = t.acks_sent
let ooo_buffered t = t.ooo_count
