type mode = Sr_retx | Gbn_retx

type config = {
  mtu : int;
  mode : mode;
  window : int;
  rto : Sim_time.t;
  cc : Dcqcn.config;
}

type msg = {
  start : int;
  packets : int;
  bytes : int;
  posted : Sim_time.t;  (* when the WQE was posted, for FCT telemetry *)
  on_complete : Sim_time.t -> unit;
}

type t = {
  engine : Engine.t;
  conn : Flow_id.t;
  conn_id : int;  (* interned [conn], cached for per-packet construction *)
  sport : int;
  cfg : config;
  cc : Dcqcn.t;
  transmit : Packet.t -> unit;
  msgs : msg Fifo.t;
  mutable next_seq : int;  (* next sequence the send loop will consider *)
  mutable max_sent : int;  (* highest sequence ever transmitted *)
  mutable una : int;  (* lowest unacknowledged sequence *)
  mutable end_seq : int;  (* first sequence beyond all posted data *)
  retx : int Fifo.t;
  retx_pending : (int, unit) Hashtbl.t;
  mutable pacing : bool;
  mutable rto_handle : Engine.handle;
  (* Pacing-gap memo: DCQCN adjusts the rate on control events, not per
     packet, and steady-state frames are one size, so the float divide in
     [Rate.tx_time] is recomputed only when (rate, size) changes.  The
     rate key starts as [nan] (never equal) so the first use computes. *)
  mutable gap_rate : float;
  mutable gap_bytes : int;
  mutable gap_ns : Sim_time.t;
  (* Closure-free pacing/RTO events (registered once per sender). *)
  mutable cb_pace : Engine.callback;
  mutable cb_rto : Engine.callback;
  mutable data_sent : int;
  mutable retx_sent : int;
  mutable nacks_rx : int;
  mutable cnps_rx : int;
  mutable timeouts : int;
  mutable bytes_completed : int;
}

let conn t = t.conn
let sport t = t.sport
let rate t = Dcqcn.rate t.cc
let cc t = t.cc
let outstanding t = t.next_seq - t.una
let idle t = t.una >= t.end_seq
let data_packets_sent t = t.data_sent
let retx_packets_sent t = t.retx_sent
let nacks_received t = t.nacks_rx
let cnps_received t = t.cnps_rx
let timeouts t = t.timeouts
let bytes_completed t = t.bytes_completed

(* Locate the message containing [seq].  Only active (not fully acked)
   messages are in the ring, and retransmissions are never below [una],
   so an early-exit indexed scan over the few active messages suffices —
   no iteration closure, no option, nothing allocated. *)
let rec msg_find t seq n i =
  if i >= n then
    invalid_arg
      (Printf.sprintf
         "Sender: sequence %d not in any active message (una=%d next=%d \
          end=%d msgs=%d)"
         seq t.una t.next_seq t.end_seq n)
  else begin
    let m = Fifo.get t.msgs i in
    if seq >= m.start && seq < m.start + m.packets then m
    else msg_find t seq n (i + 1)
  end

(* Top-level recursion, not a local [let rec]: without flambda a local
   recursive function capturing [t] allocates its closure on every call,
   and this runs once per transmitted packet. *)
let msg_of t seq = msg_find t seq (Fifo.length t.msgs) 0

let rec pick_retx t =
  if Fifo.is_empty t.retx then -1
  else begin
    let seq = Fifo.pop t.retx in
    Hashtbl.remove t.retx_pending seq;
    if seq >= t.una then (seq lsl 1) lor 1 else pick_retx t
  end

let cancel_rto t =
  Engine.cancel t.engine t.rto_handle;
  t.rto_handle <- Engine.none

let rec arm_rto t =
  Engine.cancel t.engine t.rto_handle;
  t.rto_handle <-
    Engine.schedule_call t.engine ~delay:t.cfg.rto t.cb_rto ~a:0 ~b:0
      ~obj:(Obj.repr ())

and on_rto t =
  t.rto_handle <- Engine.none;
  if t.una < t.next_seq then begin
    t.timeouts <- t.timeouts + 1;
    if Telemetry.enabled () then begin
      Telemetry.incr_counter "rto_timeouts";
      Telemetry.record ~time:(Engine.now t.engine)
        (Event.Rto_timeout { conn = t.conn; una = t.una })
    end;
    (match t.cfg.mode with
    | Sr_retx ->
        if not (Hashtbl.mem t.retx_pending t.una) then begin
          Hashtbl.add t.retx_pending t.una ();
          Fifo.push t.retx t.una
        end
    | Gbn_retx ->
        t.next_seq <- t.una;
        Fifo.clear t.retx;
        Hashtbl.reset t.retx_pending);
    Dcqcn.on_timeout t.cc;
    arm_rto t;
    try_send t
  end

(* Next sequence to transmit, encoded as [(seq lsl 1) lor retx_flag], or
   -1 when nothing is sendable — the per-packet pick allocates neither
   an option nor a tuple (like [msg_find], the retransmission scan is a
   top-level recursion so no closure is built per pick). *)
and pick_next t =
  (* Retransmissions take priority; stale entries (already acked) are
     discarded on the way. *)
  let r = pick_retx t in
  if r >= 0 then r
  else if t.next_seq < t.end_seq && t.next_seq - t.una < t.cfg.window then begin
    let seq = t.next_seq in
    t.next_seq <- t.next_seq + 1;
    seq lsl 1
  end
  else -1

and try_send t =
  if not t.pacing then begin
    let picked = pick_next t in
    if picked >= 0 then begin
        let seq = picked lsr 1 in
        let retx_queued = picked land 1 = 1 in
        (* A GBN rewind re-walks already-sent sequences through the
           "fresh" path; anything at or below the high-water mark is a
           retransmission regardless of how it was picked. *)
        let is_retx = retx_queued || seq <= t.max_sent in
        if seq > t.max_sent then t.max_sent <- seq;
        let m = msg_of t seq in
        let last = seq = m.start + m.packets - 1 in
        let payload =
          if last then m.bytes - ((m.packets - 1) * t.cfg.mtu) else t.cfg.mtu
        in
        let pkt =
          Packet_pool.data ~conn:t.conn ~conn_id:t.conn_id ~sport:t.sport
            ~psn:(Psn.of_int seq)
            ~payload ~last_of_msg:last ~retransmission:is_retx
            ~birth:(Engine.now t.engine) ()
        in
        (* [transmit] may synchronously drop (and recycle) the packet;
           everything we need from it is read before the handoff. *)
        let size = pkt.Packet.size in
        t.data_sent <- t.data_sent + 1;
        if is_retx then t.retx_sent <- t.retx_sent + 1;
        if Telemetry.enabled () then begin
          Telemetry.incr_counter "data_packets_sent";
          if is_retx then begin
            Telemetry.incr_counter "retx_packets";
            Telemetry.record ~time:(Engine.now t.engine)
              (Event.Retransmission { conn = t.conn; psn = seq })
          end
        end;
        Dcqcn.on_bytes_sent t.cc size;
        if not (Engine.is_pending t.engine t.rto_handle) then arm_rto t;
        t.transmit pkt;
        (* Hardware rate pacing: the next packet may leave one
           serialization time (at the DCQCN current rate) later. *)
        t.pacing <- true;
        let rate = Dcqcn.rate t.cc in
        let gap =
          if (rate :> float) = t.gap_rate && size = t.gap_bytes then t.gap_ns
          else begin
            let g = Rate.tx_time rate ~bytes_:size in
            t.gap_rate <- (rate :> float);
            t.gap_bytes <- size;
            t.gap_ns <- g;
            g
          end
        in
        ignore
          (Engine.schedule_call t.engine ~delay:gap t.cb_pace ~a:0 ~b:0
             ~obj:(Obj.repr ()))
    end
  end

let create ~engine ~conn ~sport ~config ~line_rate ~transmit =
  if config.mtu <= 0 then invalid_arg "Sender.create: mtu";
  if config.window <= 0 then invalid_arg "Sender.create: window";
  let t =
  {
    engine;
    conn;
    conn_id = Flow_id.intern conn;
    sport;
    cfg = config;
    cc = Dcqcn.create ~engine ~conn ~config:config.cc ~line_rate ();
    transmit;
    msgs = Fifo.create ~capacity:8 ();
    next_seq = 0;
    max_sent = -1;
    una = 0;
    end_seq = 0;
    retx = Fifo.create ~capacity:16 ();
    retx_pending = Hashtbl.create 16;
    pacing = false;
    rto_handle = Engine.none;
    gap_rate = Float.nan;
    gap_bytes = -1;
    gap_ns = 0;
    cb_pace = Engine.null_callback;
    cb_rto = Engine.null_callback;
    data_sent = 0;
    retx_sent = 0;
    nacks_rx = 0;
    cnps_rx = 0;
    timeouts = 0;
    bytes_completed = 0;
  }
  in
  t.cb_pace <-
    Engine.register_callback engine (fun _ _ _ ->
        t.pacing <- false;
        try_send t);
  t.cb_rto <- Engine.register_callback engine (fun _ _ _ -> on_rto t);
  t

let post t ~bytes ~on_complete =
  if bytes <= 0 then invalid_arg "Sender.post: bytes must be positive";
  let packets = (bytes + t.cfg.mtu - 1) / t.cfg.mtu in
  Fifo.push t.msgs
    { start = t.end_seq; packets; bytes; posted = Engine.now t.engine;
      on_complete };
  t.end_seq <- t.end_seq + packets;
  try_send t

let rec complete_msgs t =
  if not (Fifo.is_empty t.msgs) then begin
    let m = Fifo.peek t.msgs in
    if t.una >= m.start + m.packets then begin
      ignore (Fifo.pop t.msgs);
      t.bytes_completed <- t.bytes_completed + m.bytes;
      let now = Engine.now t.engine in
      if Telemetry.enabled () then begin
        let fct_us = Sim_time.to_us (now - m.posted) in
        Telemetry.incr_counter "flows_completed";
        Telemetry.observe "fct_us" fct_us;
        Telemetry.record ~time:now
          (Event.Flow_complete { conn = t.conn; bytes = m.bytes; fct_us })
      end;
      m.on_complete now;
      complete_msgs t
    end
  end

let advance_una t seq =
  if seq > t.una then begin
    t.una <- seq;
    (* A cumulative ACK supersedes any pending GBN rewind: sequences
       below [una] are acknowledged and must never be (re)transmitted,
       so the send cursor may not lag behind it. *)
    if t.next_seq < t.una then t.next_seq <- t.una;
    complete_msgs t;
    if t.una >= t.next_seq && Fifo.is_empty t.retx then cancel_rto t
    else arm_rto t
  end

let on_ack t psn =
  let seq = Psn.unwrap ~near:t.una psn in
  advance_una t seq;
  try_send t

let on_nack t psn =
  t.nacks_rx <- t.nacks_rx + 1;
  let seq = Psn.unwrap ~near:t.una psn in
  (* The NACK's ePSN is cumulative: everything below it was received. *)
  advance_una t seq;
  (match t.cfg.mode with
  | Sr_retx ->
      (* Retransmit exactly the packet named by the ePSN. *)
      if
        seq >= t.una && seq < t.next_seq
        && not (Hashtbl.mem t.retx_pending seq)
      then begin
        Hashtbl.add t.retx_pending seq ();
        Fifo.push t.retx seq
      end
  | Gbn_retx ->
      (* Go back: rewind and resend everything from the ePSN. *)
      if seq < t.next_seq then begin
        t.next_seq <- Stdlib.max seq t.una;
        Fifo.clear t.retx;
        Hashtbl.reset t.retx_pending
      end);
  (* The slow start the paper blames: a NACK is treated as congestion. *)
  Dcqcn.on_nack t.cc;
  if (not (Engine.is_pending t.engine t.rto_handle)) && t.una < t.next_seq
  then arm_rto t;
  try_send t

let on_cnp t =
  t.cnps_rx <- t.cnps_rx + 1;
  Dcqcn.on_cnp t.cc
