(** A commodity RNIC: queue pairs multiplexed onto one host link.

    The NIC owns the sending side ({!Sender.t} per QP, DCQCN-paced) and
    the receiving side ({!Receiver.t} per remote QP, plus ECN-triggered
    CNP generation), and dispatches arriving packets to the right one.

    Transport generations:
    - [`Sr] — current commodity RNICs (NIC-SR reliable transport with
      out-of-order reception); {e the} target of Themis.
    - [`Gbn] — previous-generation RNICs (CX-4/5).
    - [`Ideal] — never NACKs, never slow-starts; the upper bound of
      Fig. 1d. *)

type transport = [ `Sr | `Gbn | `Ideal ]

type config = {
  mtu : int;
  transport : transport;
  window : int;
  rto : Sim_time.t;
  ack_coalesce : int;
  cnp_interval : Sim_time.t;
      (** Receiver-side minimum gap between CNPs of one QP. *)
  cc : Dcqcn.config;
  line_rate : Rate.t;
}

val default_config : line_rate:Rate.t -> config
(** MTU 1500 B payload, NIC-SR, window 512, RTO 1 ms, ACKs coalesced 4:1, CNP interval 50 us, {!Dcqcn.default}. *)

type t
type qp

val create : engine:Engine.t -> node:int -> config:config -> t

val set_port : t -> Port.t -> unit
(** The NIC's egress towards its ToR (wiring phase). *)

val node : t -> int
val config : t -> config

val receive : t -> Packet.t -> unit
(** Entry point for packets delivered by the host link. *)

val connect : t -> dst:t -> ?qpn:int -> ?sport:int -> unit -> qp
(** Create a QP to [dst]: allocates the send context here and the receive
    context there.  [qpn] defaults to a fresh number per destination NIC;
    [sport] defaults to a deterministic per-connection entropy value. *)

val post_send : qp -> bytes:int -> on_complete:(Sim_time.t -> unit) -> unit

val qp_conn : qp -> Flow_id.t
val qp_rate : qp -> Rate.t
val qp_sender : qp -> Sender.t

val set_on_data_tx : t -> (Packet.t -> unit) -> unit
(** Observation hook invoked for every data packet the NIC puts on the
    wire (fresh and retransmitted) — the probe behind Figs. 1b/1c. *)

(** NIC-wide counters (sums over QPs). *)

val data_packets_sent : t -> int
val retx_packets_sent : t -> int
val nacks_received : t -> int
val nacks_sent : t -> int
val cnps_sent : t -> int
val delivered_bytes : t -> int
val senders : t -> Sender.t list

val data_packets_received : t -> int
(** Every data packet the host link delivered to this NIC, including
    duplicates and out-of-order arrivals — the receive-side term of the
    fuzz harness's packet-conservation oracle. *)

val receivers : t -> (Flow_id.t * Receiver.t) list
(** Receive contexts hosted on this NIC (one per remote QP), for
    end-of-run invariant checks (gapless ePSN, empty OOO buffer). *)

val receiver : t -> conn:Flow_id.t -> Receiver.t option

val ooo_arrivals : t -> int
(** Sum of {!Receiver.ooo_arrivals} over every receive context on this
    NIC — the reordering count the LB-scheme arena gates on. *)
