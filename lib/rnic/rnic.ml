type transport = [ `Sr | `Gbn | `Ideal ]

type config = {
  mtu : int;
  transport : transport;
  window : int;
  rto : Sim_time.t;
  ack_coalesce : int;
  cnp_interval : Sim_time.t;
  cc : Dcqcn.config;
  line_rate : Rate.t;
}

let default_config ~line_rate =
  {
    mtu = 1500;
    transport = `Sr;
    window = 512;
    rto = Sim_time.ms 1;
    ack_coalesce = 4;
    cnp_interval = Sim_time.us 50;
    cc = Dcqcn.default;
    line_rate;
  }

type rctx = {
  recv : Receiver.t;
  r_conn : Flow_id.t;
  r_conn_id : int;
  r_sport : int;
  (* Entropy echo (REPS): the udp_sport / CE mark of the most recent
     data arrival, stamped onto the ACK/NACK it triggers so the source
     ToR can recycle clean entropies. *)
  r_last_entropy : int ref;
  r_last_ce : bool ref;
  mutable last_cnp : Sim_time.t;
  mutable cnps_tx : int;
}

type t = {
  engine : Engine.t;
  node : int;
  cfg : config;
  mutable port : Port.t option;
  (* Hashed maps for registration and aggregate folds; per-packet
     dispatch goes through the dense by-id arrays below, indexed by
     [Packet.conn_id] (one array read instead of a flow hash). *)
  senders : Sender.t Flow_id.Table.t;
  receivers : rctx Flow_id.Table.t;
  mutable senders_by_id : Sender.t option array;
  mutable receivers_by_id : rctx option array;
  mutable next_qpn : int;
  mutable on_data_tx : Packet.t -> unit;
  mutable nacks_sent : int;
  mutable cnps_sent : int;
  mutable data_rx : int;
}

type qp = { nic : t; snd : Sender.t }

let create ~engine ~node ~config =
  {
    engine;
    node;
    cfg = config;
    port = None;
    senders = Flow_id.Table.create 16;
    receivers = Flow_id.Table.create 16;
    senders_by_id = [||];
    receivers_by_id = [||];
    next_qpn = 1;
    on_data_tx = ignore;
    nacks_sent = 0;
    cnps_sent = 0;
    data_rx = 0;
  }

(* Slot arrays sized to the largest registered id; ids are dense per
   run, so this is bounded by the number of live flows. *)
let grow_slots arr id =
  let len = Array.length arr in
  if id < len then arr
  else begin
    let narr = Array.make (Stdlib.max (id + 1) (Stdlib.max 16 (2 * len))) None in
    Array.blit arr 0 narr 0 len;
    narr
  end

let set_port t port = t.port <- Some port
let node t = t.node
let config t = t.cfg
let set_on_data_tx t f = t.on_data_tx <- f

let port_exn t =
  match t.port with
  | Some p -> p
  | None -> failwith "Rnic: port not wired (missing set_port)"

let transmit_data t pkt =
  t.on_data_tx pkt;
  Port.enqueue (port_exn t) pkt

let transmit_control t pkt = Port.enqueue (port_exn t) pkt

(* --- Receive side --------------------------------------------------- *)

let receiver_mode = function
  | `Sr -> Receiver.Sr
  | `Gbn -> Receiver.Gbn
  | `Ideal -> Receiver.Ideal

let register_receiver t ~conn ~sport =
  let conn_id = Flow_id.intern conn in
  let last_entropy = ref (-1) and last_ce = ref false in
  let echo pkt =
    pkt.Packet.entropy_echo <- !last_entropy;
    pkt.Packet.ecn_echo <- !last_ce;
    pkt
  in
  let ctx =
    {
        recv =
          Receiver.create
            ~mode:(receiver_mode t.cfg.transport)
            ~ack_coalesce:t.cfg.ack_coalesce
            ~actions:
              {
                Receiver.send_ack =
                  (fun ~epsn ->
                    transmit_control t
                      (echo
                         (Packet_pool.ack ~conn ~conn_id ~psn:(Psn.of_int epsn)
                            ~sport ~birth:(Engine.now t.engine))));
                Receiver.send_nack =
                  (fun ~epsn ->
                    t.nacks_sent <- t.nacks_sent + 1;
                    transmit_control t
                      (echo
                         (Packet_pool.nack ~conn ~conn_id
                            ~epsn:(Psn.of_int epsn) ~sport
                            ~birth:(Engine.now t.engine))));
                Receiver.deliver = (fun ~bytes:_ -> ());
              };
      r_conn = conn;
      r_conn_id = conn_id;
      r_sport = sport;
      r_last_entropy = last_entropy;
      r_last_ce = last_ce;
      last_cnp = Sim_time.ns (-1_000_000_000);
      cnps_tx = 0;
    }
  in
  Flow_id.Table.replace t.receivers conn ctx;
  t.receivers_by_id <- grow_slots t.receivers_by_id conn_id;
  t.receivers_by_id.(conn_id) <- Some ctx;
  ctx

let maybe_cnp t (ctx : rctx) =
  let now = Engine.now t.engine in
  if Sim_time.diff now ctx.last_cnp >= t.cfg.cnp_interval then begin
    ctx.last_cnp <- now;
    ctx.cnps_tx <- ctx.cnps_tx + 1;
    t.cnps_sent <- t.cnps_sent + 1;
    if Telemetry.enabled () then Telemetry.incr_counter "cnps_sent";
    transmit_control t
      (Packet_pool.cnp ~conn:ctx.r_conn ~conn_id:ctx.r_conn_id
         ~sport:ctx.r_sport ~birth:now)
  end

(* QP dispatch by interned id: one array read per delivered packet; the
   miss paths (unknown QP: wiring bug, or a late packet for a torn-down
   QP) fall off the array or hit an empty slot. *)
let unknown_qp t (pkt : Packet.t) =
  (* Unknown QP: a real NIC would answer with an error; in the
     simulator this indicates a wiring bug. *)
  failwith
    (Format.asprintf "Rnic %d: data for unknown QP %a" t.node Flow_id.pp
       pkt.Packet.conn)

let on_data_packet t (pkt : Packet.t) psn payload last_of_msg =
  let id = pkt.Packet.conn_id in
  let ctx =
    if id < Array.length t.receivers_by_id then
      match Array.unsafe_get t.receivers_by_id id with
      | Some ctx -> ctx
      | None -> unknown_qp t pkt
    else unknown_qp t pkt
  in
  if pkt.Packet.ecn = Headers.Ce then maybe_cnp t ctx;
  (* Stash the echo before on_data: ACK/NACK closures fire synchronously
     inside it and must carry this packet's entropy. *)
  ctx.r_last_entropy := pkt.Packet.udp_sport;
  ctx.r_last_ce := pkt.Packet.ecn = Headers.Ce;
  let seq = Psn.unwrap ~near:(Receiver.epsn ctx.recv) psn in
  Receiver.on_data ctx.recv ~seq ~payload ~last_of_msg

let on_sender_packet t (pkt : Packet.t) f =
  let id = pkt.Packet.conn_id in
  if id < Array.length t.senders_by_id then
    match Array.unsafe_get t.senders_by_id id with
    | Some snd -> f snd
    | None -> ()

(* The RNIC is the end of a delivered packet's life: every field needed
   is read during dispatch, and no component downstream retains the
   record, so this is the pool's receiver-side recycle point
   (DESIGN.md §10). *)
let receive t (pkt : Packet.t) =
  (match pkt.Packet.kind with
  | Packet.Data { psn; payload; last_of_msg } ->
      t.data_rx <- t.data_rx + 1;
      on_data_packet t pkt psn payload last_of_msg
  | Packet.Ack { psn } -> on_sender_packet t pkt (fun s -> Sender.on_ack s psn)
  | Packet.Nack { epsn } ->
      on_sender_packet t pkt (fun s -> Sender.on_nack s epsn)
  | Packet.Cnp -> on_sender_packet t pkt Sender.on_cnp
  | Packet.Pause _ -> ());
  Packet_pool.release pkt

(* --- Connection setup ------------------------------------------------ *)

let sender_mode = function
  | `Sr | `Ideal -> Sender.Sr_retx
  | `Gbn -> Sender.Gbn_retx

let cc_config cfg =
  match cfg.transport with
  | `Ideal -> { cfg.cc with Dcqcn.nack_slow_start = false }
  | `Sr | `Gbn -> cfg.cc

let connect t ~dst ?qpn ?sport () =
  let qpn =
    match qpn with
    | Some q -> q
    | None ->
        let q = t.next_qpn in
        t.next_qpn <- t.next_qpn + 1;
        q
  in
  let conn = Flow_id.make ~src:t.node ~dst:dst.node ~qpn in
  let sport =
    match sport with
    | Some s -> s
    | None -> 0x8000 lor (Ecmp_hash.mix (Flow_id.hash conn) land 0x7FFF)
  in
  if Flow_id.Table.mem t.senders conn then
    invalid_arg "Rnic.connect: QP already exists";
  let snd =
    Sender.create ~engine:t.engine ~conn ~sport
      ~config:
        {
          Sender.mtu = t.cfg.mtu;
          mode = sender_mode t.cfg.transport;
          window = t.cfg.window;
          rto = t.cfg.rto;
          cc = cc_config t.cfg;
        }
      ~line_rate:t.cfg.line_rate
      ~transmit:(fun pkt -> transmit_data t pkt)
  in
  Flow_id.Table.replace t.senders conn snd;
  let conn_id = Flow_id.intern conn in
  t.senders_by_id <- grow_slots t.senders_by_id conn_id;
  t.senders_by_id.(conn_id) <- Some snd;
  ignore (register_receiver dst ~conn ~sport);
  { nic = t; snd }

let post_send qp ~bytes ~on_complete = Sender.post qp.snd ~bytes ~on_complete
let qp_conn qp = Sender.conn qp.snd
let qp_rate qp = Sender.rate qp.snd
let qp_sender qp = qp.snd

(* --- Counters --------------------------------------------------------- *)

let sum_senders t f =
  Flow_id.Table.fold (fun _ s acc -> acc + f s) t.senders 0

let data_packets_sent t = sum_senders t Sender.data_packets_sent
let retx_packets_sent t = sum_senders t Sender.retx_packets_sent
let nacks_received t = sum_senders t Sender.nacks_received
let nacks_sent t = t.nacks_sent
let cnps_sent t = t.cnps_sent

let delivered_bytes t =
  Flow_id.Table.fold
    (fun _ ctx acc -> acc + Receiver.delivered_bytes ctx.recv)
    t.receivers 0

let senders t = Flow_id.Table.fold (fun _ s acc -> s :: acc) t.senders []

let data_packets_received t = t.data_rx

let receivers t =
  Flow_id.Table.fold (fun conn ctx acc -> (conn, ctx.recv) :: acc) t.receivers []

let ooo_arrivals t =
  Flow_id.Table.fold
    (fun _ ctx acc -> acc + Receiver.ooo_arrivals ctx.recv)
    t.receivers 0

let receiver t ~conn =
  Option.map (fun ctx -> ctx.recv) (Flow_id.Table.find_opt t.receivers conn)
