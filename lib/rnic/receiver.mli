(** The responder-side reliable-transport state machine of a commodity
    RNIC (Section 2.2), in three generations:

    - [Sr] — NIC-SR (CX-6/CX-7/BF-3 class): out-of-order packets are
      accepted into a bitmap-tracked buffer; a packet with PSN above the
      expected PSN (ePSN) triggers {e at most one} NACK per distinct ePSN
      value, carrying only the ePSN; the ePSN advances over the bitmap on
      in-order arrival.

    - [Gbn] — Go-Back-N (CX-4/CX-5 class): out-of-order packets are
      dropped, then NACKed (once per ePSN).

    - [Ideal] — an oracle receiver that accepts out-of-order arrivals and
      never NACKs; the upper-bound transport of Fig. 1d.

    The module works on monotonic (unwrapped) sequence numbers; the NIC
    truncates to 24-bit PSNs at the wire and unwraps on reception. *)

type mode = Sr | Gbn | Ideal

type actions = {
  send_ack : epsn:int -> unit;
      (** Cumulative acknowledgement: all sequences below [epsn] held. *)
  send_nack : epsn:int -> unit;
  deliver : bytes:int -> unit;
      (** Payload bytes placed into application memory (each sequence
          counted exactly once). *)
}

type t

val create : mode:mode -> ack_coalesce:int -> actions:actions -> t
(** [ack_coalesce >= 1]: emit the cumulative ACK only after that many
    in-order advances (a message-final packet always flushes it). *)

val on_data : t -> seq:int -> payload:int -> last_of_msg:bool -> unit

val epsn : t -> int

val delivered_bytes : t -> int
val duplicate_packets : t -> int

val ooo_dropped : t -> int
(** GBN only. *)

val ooo_arrivals : t -> int
(** Data packets that arrived with [seq > ePSN], in any mode — the
    wire-level reordering count the LB-scheme arena gates on. *)

val nacks_sent : t -> int
val acks_sent : t -> int

val ooo_buffered : t -> int
(** Currently held out-of-order sequences. *)
