(** DCQCN rate control (Zhu et al., SIGCOMM'15), as implemented in RNIC
    firmware and parameterized the way the paper sweeps it.

    The reaction point keeps a current rate [Rc], a target rate [Rt] and a
    congestion estimate [alpha]:

    - On a congestion signal (CNP — or a NACK, which commodity RNICs also
      treat as a slow-start trigger, Section 2.2), and at most once every
      {b TD} ([rate_decrease_interval]): [Rt <- Rc],
      [Rc <- Rc * (1 - alpha/2)] (for NACKs, [Rc <- Rc * nack_factor]),
      [alpha <- (1-g) alpha + g], and the recovery stage counter resets.

    - Every {b TI} ([rate_increase_timer]) since the last decrease (and
      every [byte_counter] bytes sent), a rate-increase event fires:
      the first [F] events do fast recovery ([Rc <- (Rc+Rt)/2]), the next
      [F] additive increase ([Rt += Rai]), then hyper increase
      ([Rt += Rhai]).

    - Every [alpha_timer] without congestion, [alpha <- (1-g) alpha].

    The paper's Figure 5 sweep varies (TI, TD) over {(900,4), (300,4),
    (10,4), (10,50), (10,200)} microseconds. *)

type config = {
  g : float;
  rai : Rate.t;
  rhai : Rate.t;
  alpha_timer : Sim_time.t;
  rate_decrease_interval : Sim_time.t;  (** TD *)
  rate_increase_timer : Sim_time.t;  (** TI *)
  byte_counter : int;  (** B; [max_int] disables byte-counter events. *)
  fast_recovery_rounds : int;  (** F *)
  nack_slow_start : bool;
      (** Whether a NACK triggers a rate decrease — the commodity-RNIC
          behaviour Themis suppresses.  [false] for the Ideal transport. *)
  nack_factor : float;  (** [Rc] multiplier on a NACK-triggered decrease. *)
  nack_decrease_interval : Sim_time.t;
      (** Minimum gap between NACK-triggered slow starts.  NIC firmware
          applies one "slow restart" per loss episode rather than one per
          NACK; this gate models the episode granularity (CNP-triggered
          decreases keep the [TD] gate). *)
}

val default : config
(** g = 1/256, Rai = 40 Mbps, Rhai = 400 Mbps, alpha timer 55 us,
    TI = 900 us, TD = 4 us (the recommended setting the paper starts
    from), B = 10 MB, F = 5, NACK slow-start on with factor 0.5 at most
    every 300 us. *)

val with_ti_td : config -> ti_us:float -> td_us:float -> config
(** The Figure 5 sweep knob. *)

type t

val create :
  engine:Engine.t -> ?conn:Flow_id.t -> config:config -> line_rate:Rate.t ->
  unit -> t
(** [conn] only labels telemetry events: when given and the telemetry
    context is enabled, every rate decrease is recorded as a typed
    [Rate_change] event for that connection. *)

val rate : t -> Rate.t
val target : t -> Rate.t
val alpha : t -> float

val on_cnp : t -> unit
val on_nack : t -> unit
val on_timeout : t -> unit
(** Treated as a severe congestion signal: rate drops to the minimum. *)

val on_bytes_sent : t -> int -> unit

val decreases : t -> int
(** Number of rate-decrease events applied (slow starts). *)
