type t = { src : int; dst : int; qpn : int }

let make ~src ~dst ~qpn = { src; dst; qpn }
let equal a b = a.src = b.src && a.dst = b.dst && a.qpn = b.qpn
let compare = Stdlib.compare

let hash t =
  let h = (t.src * 1_000_003) lxor (t.dst * 998_244_353) lxor (t.qpn * 0x9E3779B9) in
  h land max_int

let pp ppf t = Format.fprintf ppf "%d->%d/qp%d" t.src t.dst t.qpn

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(* --- Interning --------------------------------------------------------- *)

(* Flows get small dense ids in first-touch order, so per-flow state on
   the hot path (Themis-D flow table, RNIC QP dispatch) indexes plain
   arrays instead of hashing the triple per packet.  The table is global
   mutable state exactly like [Packet.uid_counter]: campaign jobs and
   fuzz runs reset it at the same boundaries, which keeps id assignment
   (and therefore every downstream array layout) identical between
   serial and forked executions of the same job. *)

(* Domain-local (like [Packet.uid_counter]): each simulation shard
   interns in its own first-touch order.  Interned ids only ever index
   domain-local arrays — they are never compared across domains and
   never exported — so per-domain id assignment is behaviour-neutral. *)
type interner_state = { tbl : int Table.t; mutable next : int }

let interner_key =
  Domain.DLS.new_key (fun () -> { tbl = Table.create 256; next = 0 })

let intern fl =
  let s = Domain.DLS.get interner_key in
  match Table.find_opt s.tbl fl with
  | Some id -> id
  | None ->
      let id = s.next in
      s.next <- id + 1;
      Table.add s.tbl fl id;
      id

let lookup_interned fl =
  Table.find_opt (Domain.DLS.get interner_key).tbl fl

let interned_count () = (Domain.DLS.get interner_key).next

let reset_interner () =
  let s = Domain.DLS.get interner_key in
  Table.reset s.tbl;
  s.next <- 0

let intern_snapshot () =
  Table.fold
    (fun fl id acc -> (id, fl) :: acc)
    (Domain.DLS.get interner_key).tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
