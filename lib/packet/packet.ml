type kind =
  | Data of {
      mutable psn : Psn.t;
      mutable payload : int;
      mutable last_of_msg : bool;
    }
  | Ack of { mutable psn : Psn.t }
  | Nack of { mutable epsn : Psn.t }
  | Cnp
  | Pause of { stop : bool }

type t = {
  mutable uid : int;
  mutable conn : Flow_id.t;
  mutable conn_id : int;
  mutable src_node : int;
  mutable dst_node : int;
  mutable kind : kind;
  mutable size : int;
  mutable udp_sport : int;
  mutable ecn : Headers.ecn;
  mutable retransmission : bool;
  mutable birth : Sim_time.t;
  mutable pooled : bool;
  (* Entropy echo (REPS): on ACK/NACK, the udp_sport the acknowledged
     data packet carried, and whether it arrived CE-marked.  -1 = none. *)
  mutable entropy_echo : int;
  mutable ecn_echo : bool;
}

(* Domain-local: every simulation shard numbers its own packets.  Uids
   never appear in telemetry or on the wire (cross-shard packets are
   re-assigned a uid by the receiving shard's pool), so per-domain
   numbering is invisible to the determinism oracle. *)
let uid_key = Domain.DLS.new_key (fun () -> ref 0)

let fresh_uid () =
  let c = Domain.DLS.get uid_key in
  incr c;
  !c

let reset_uid_counter () = Domain.DLS.get uid_key := 0

let resolve_conn_id conn = function
  | Some id -> id
  | None -> Flow_id.intern conn

let data ~conn ?conn_id ~sport ~psn ~payload ~last_of_msg
    ?(retransmission = false) ~birth () =
  {
    uid = fresh_uid ();
    conn;
    conn_id = resolve_conn_id conn conn_id;
    src_node = conn.Flow_id.src;
    dst_node = conn.Flow_id.dst;
    kind = Data { psn; payload; last_of_msg };
    size = payload + Headers.data_overhead;
    udp_sport = sport;
    ecn = Headers.Ect;
    retransmission;
    birth;
    pooled = false;
    entropy_echo = -1;
    ecn_echo = false;
  }

let control ~conn ?conn_id ~sport ~kind ~size ~birth () =
  {
    uid = fresh_uid ();
    conn;
    conn_id = resolve_conn_id conn conn_id;
    src_node = conn.Flow_id.dst;
    dst_node = conn.Flow_id.src;
    kind;
    size;
    udp_sport = sport;
    ecn = Headers.Not_ect;
    retransmission = false;
    birth;
    pooled = false;
    entropy_echo = -1;
    ecn_echo = false;
  }

let ack ~conn ~sport ~psn ~birth =
  control ~conn ~sport ~kind:(Ack { psn }) ~size:Headers.ack_bytes ~birth ()

let nack ~conn ~sport ~epsn ~birth =
  control ~conn ~sport ~kind:(Nack { epsn }) ~size:Headers.ack_bytes ~birth ()

let cnp ~conn ~sport ~birth =
  control ~conn ~sport ~kind:Cnp ~size:Headers.cnp_bytes ~birth ()

let is_data t = match t.kind with Data _ -> true | Ack _ | Nack _ | Cnp | Pause _ -> false
let is_nack t = match t.kind with Nack _ -> true | Data _ | Ack _ | Cnp | Pause _ -> false

let payload_bytes t =
  match t.kind with Data { payload; _ } -> payload | Ack _ | Nack _ | Cnp | Pause _ -> 0

let pp ppf t =
  let kind_str =
    match t.kind with
    | Data { psn; payload; last_of_msg } ->
        Format.asprintf "data %a len=%d%s" Psn.pp psn payload
          (if last_of_msg then " last" else "")
    | Ack { psn } -> Format.asprintf "ack %a" Psn.pp psn
    | Nack { epsn } -> Format.asprintf "nack e%a" Psn.pp epsn
    | Cnp -> "cnp"
    | Pause { stop } -> if stop then "pause" else "resume"
  in
  Format.fprintf ppf "#%d [%a] %d=>%d %s%s" t.uid Flow_id.pp t.conn t.src_node
    t.dst_node kind_str
    (if t.retransmission then " (retx)" else "")
