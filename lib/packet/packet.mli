(** Simulated packets.

    A packet travels between two host endpoints ([src_node] -> [dst_node]);
    [conn] identifies the QP connection it belongs to, always oriented from
    the data sender to the data receiver regardless of the packet's own
    direction (ACK/NACK/CNP flow backwards).

    [udp_sport] is the flow's entropy field.  ECMP hashes it; Themis-S
    rewrites it per packet to implement PSN-based spraying.  [ecn] is the IP
    ECN codepoint, set to [Ce] by switches when marking.

    Every field (including the inline-record payloads of [kind]) is
    mutable so {!Packet_pool} can recycle records on the simulator hot
    path.  The constructors here always allocate fresh records; code
    outside the data plane (tests, examples) should keep using them and
    never needs to think about pooling.  [pooled] is the pool's
    double-release guard — treat it as private to {!Packet_pool}. *)

type kind =
  | Data of {
      mutable psn : Psn.t;
      mutable payload : int;
      mutable last_of_msg : bool;
    }  (** [payload] bytes of user data carried under [psn]. *)
  | Ack of { mutable psn : Psn.t }
      (** Cumulative: every PSN strictly below [psn] has been received.
          [psn] is the receiver's current ePSN. *)
  | Nack of { mutable epsn : Psn.t }
      (** Out-of-sequence NACK carrying only the expected PSN (the
          commodity-RNIC behaviour of Section 2.2). *)
  | Cnp  (** DCQCN congestion notification. *)
  | Pause of { stop : bool }  (** PFC pause/resume (hop-local). *)

type t = {
  mutable uid : int;
      (** Unique per simulated packet; retransmissions get fresh ids. *)
  mutable conn : Flow_id.t;
  mutable conn_id : int;
      (** [conn]'s dense interned id ({!Flow_id.intern}), carried so
          per-flow dispatch on the hot path indexes arrays instead of
          hashing the triple per packet. *)
  mutable src_node : int;
  mutable dst_node : int;
  mutable kind : kind;
  mutable size : int;  (** Total bytes on the wire. *)
  mutable udp_sport : int;
  mutable ecn : Headers.ecn;
  mutable retransmission : bool;
  mutable birth : Sim_time.t;
  mutable pooled : bool;  (** Private to {!Packet_pool}. *)
  mutable entropy_echo : int;
      (** On ACK/NACK: the [udp_sport] entropy the acknowledged data
          packet carried, echoed back so the source ToR's REPS/PRIME
          state learns which entropies map to clean paths.  [-1] when
          absent (data packets, legacy control paths). *)
  mutable ecn_echo : bool;
      (** On ACK/NACK: whether the echoed data packet arrived CE-marked. *)
}

val data :
  conn:Flow_id.t ->
  ?conn_id:int ->
  sport:int ->
  psn:Psn.t ->
  payload:int ->
  last_of_msg:bool ->
  ?retransmission:bool ->
  birth:Sim_time.t ->
  unit ->
  t

val ack : conn:Flow_id.t -> sport:int -> psn:Psn.t -> birth:Sim_time.t -> t
(** Travels dst -> src of [conn]. *)

val nack : conn:Flow_id.t -> sport:int -> epsn:Psn.t -> birth:Sim_time.t -> t
val cnp : conn:Flow_id.t -> sport:int -> birth:Sim_time.t -> t

val is_data : t -> bool
val is_nack : t -> bool

val payload_bytes : t -> int
(** 0 for control packets. *)

val pp : Format.formatter -> t -> unit

val fresh_uid : unit -> int
(** Next packet uid; used by {!Packet_pool} so recycled records are
    indistinguishable from fresh ones. *)

val reset_uid_counter : unit -> unit
(** For test isolation. *)
