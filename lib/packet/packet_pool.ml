open Packet

(* Growable stacks; a popped element stays referenced by the backing
   array until overwritten, which is harmless retention, not a leak. *)
type stack = { mutable buf : Packet.t array; mutable len : int }

(* Domain-local: each simulation shard recycles its own packets, so a
   packet object never migrates between domains through the pool (a
   cross-shard packet is flattened on the wire and re-materialized from
   the receiving shard's pool, see Packet_wire). *)
type pool = {
  free_data : stack;
  free_ctrl : stack;
  mutable reused : int;
  mutable fresh : int;
}

let pool_key =
  Domain.DLS.new_key (fun () ->
      {
        free_data = { buf = [||]; len = 0 };
        free_ctrl = { buf = [||]; len = 0 };
        reused = 0;
        fresh = 0;
      })

let push st p =
  if st.len >= Array.length st.buf then begin
    let ncap = Stdlib.max 32 (2 * st.len) in
    let nbuf = Array.make ncap p in
    Array.blit st.buf 0 nbuf 0 st.len;
    st.buf <- nbuf
  end;
  st.buf.(st.len) <- p;
  st.len <- st.len + 1

(* Caller has checked [st.len > 0]. *)
let pop st =
  st.len <- st.len - 1;
  st.buf.(st.len)

let release p =
  if not p.pooled then begin
    p.pooled <- true;
    let pl = Domain.DLS.get pool_key in
    match p.kind with
    | Data _ -> push pl.free_data p
    | Ack _ | Nack _ | Cnp | Pause _ -> push pl.free_ctrl p
  end

let reset () =
  let pl = Domain.DLS.get pool_key in
  pl.free_data.buf <- [||];
  pl.free_data.len <- 0;
  pl.free_ctrl.buf <- [||];
  pl.free_ctrl.len <- 0;
  pl.reused <- 0;
  pl.fresh <- 0

let stats () =
  let pl = Domain.DLS.get pool_key in
  (pl.reused, pl.fresh)

let resolve_conn_id conn = function
  | Some id -> id
  | None -> Flow_id.intern conn

let data ~conn ?conn_id ~sport ~psn ~payload ~last_of_msg
    ?(retransmission = false) ~birth () =
  let pl = Domain.DLS.get pool_key in
  if pl.free_data.len > 0 then begin
    pl.reused <- pl.reused + 1;
    let p = pop pl.free_data in
    p.pooled <- false;
    p.uid <- Packet.fresh_uid ();
    p.conn <- conn;
    p.conn_id <- resolve_conn_id conn conn_id;
    p.src_node <- conn.Flow_id.src;
    p.dst_node <- conn.Flow_id.dst;
    (match p.kind with
    | Data d ->
        d.psn <- psn;
        d.payload <- payload;
        d.last_of_msg <- last_of_msg
    | Ack _ | Nack _ | Cnp | Pause _ -> p.kind <- Data { psn; payload; last_of_msg });
    p.size <- payload + Headers.data_overhead;
    p.udp_sport <- sport;
    p.ecn <- Headers.Ect;
    p.retransmission <- retransmission;
    p.birth <- birth;
    p.entropy_echo <- -1;
    p.ecn_echo <- false;
    p
  end
  else begin
    pl.fresh <- pl.fresh + 1;
    Packet.data ~conn ?conn_id ~sport ~psn ~payload ~last_of_msg
      ~retransmission ~birth ()
  end

(* Control packets travel dst -> src of [conn]; the caller has already
   set [p.kind]. *)
let reuse_control p ~conn ~conn_id ~sport ~size ~birth =
  p.pooled <- false;
  p.uid <- Packet.fresh_uid ();
  p.conn <- conn;
  p.conn_id <- conn_id;
  p.src_node <- conn.Flow_id.dst;
  p.dst_node <- conn.Flow_id.src;
  p.size <- size;
  p.udp_sport <- sport;
  p.ecn <- Headers.Not_ect;
  p.retransmission <- false;
  p.birth <- birth;
  p.entropy_echo <- -1;
  p.ecn_echo <- false;
  p

let ack ~conn ~conn_id ~sport ~psn ~birth =
  let pl = Domain.DLS.get pool_key in
  if pl.free_ctrl.len > 0 then begin
    pl.reused <- pl.reused + 1;
    let p = pop pl.free_ctrl in
    (match p.kind with
    | Ack a -> a.psn <- psn
    | Data _ | Nack _ | Cnp | Pause _ -> p.kind <- Ack { psn });
    reuse_control p ~conn ~conn_id ~sport ~size:Headers.ack_bytes ~birth
  end
  else begin
    pl.fresh <- pl.fresh + 1;
    (* Fresh allocation is the cold path; [Packet.ack] re-interns [conn],
       which by construction yields the same id as [conn_id]. *)
    ignore conn_id;
    Packet.ack ~conn ~sport ~psn ~birth
  end

let nack ~conn ~conn_id ~sport ~epsn ~birth =
  let pl = Domain.DLS.get pool_key in
  if pl.free_ctrl.len > 0 then begin
    pl.reused <- pl.reused + 1;
    let p = pop pl.free_ctrl in
    (match p.kind with
    | Nack n -> n.epsn <- epsn
    | Data _ | Ack _ | Cnp | Pause _ -> p.kind <- Nack { epsn });
    reuse_control p ~conn ~conn_id ~sport ~size:Headers.ack_bytes ~birth
  end
  else begin
    pl.fresh <- pl.fresh + 1;
    ignore conn_id;
    Packet.nack ~conn ~sport ~epsn ~birth
  end

let cnp ~conn ~conn_id ~sport ~birth =
  let pl = Domain.DLS.get pool_key in
  if pl.free_ctrl.len > 0 then begin
    pl.reused <- pl.reused + 1;
    let p = pop pl.free_ctrl in
    p.kind <- Cnp;
    reuse_control p ~conn ~conn_id ~sport ~size:Headers.cnp_bytes ~birth
  end
  else begin
    pl.fresh <- pl.fresh + 1;
    ignore conn_id;
    Packet.cnp ~conn ~sport ~birth
  end

let clone p =
  let kind =
    match p.kind with
    | Data { psn; payload; last_of_msg } -> Data { psn; payload; last_of_msg }
    | Ack { psn } -> Ack { psn }
    | Nack { epsn } -> Nack { epsn }
    | Cnp -> Cnp
    | Pause { stop } -> Pause { stop }
  in
  { p with kind; pooled = false }
