(* Flatten a packet into consecutive int slots (and back) for the
   cross-shard SPSC interlink rings.

   Everything observable travels: connection triple, kind + sequence
   numbers, ECN codepoint, REPS entropy echo, birth timestamp.  The uid
   deliberately does not — the receiving shard re-materializes the
   packet from its own pool and numbers it locally; uids never reach
   telemetry, so this is invisible to the determinism oracle.  Pause
   frames never cross a shard boundary (sharded runs refuse PFC), so
   [encode] rejects them. *)

open Packet

let words = 12

(* tag word bit layout *)
let k_data = 0
and k_ack = 1
and k_nack = 2
and k_cnp = 3

let b_last = 1 lsl 3
let b_retx = 1 lsl 4
let ecn_shift = 5 (* two bits *)
let b_ecn_echo = 1 lsl 7

let ecn_to_int = function
  | Headers.Not_ect -> 0
  | Headers.Ect -> 1
  | Headers.Ce -> 2

let ecn_of_int = function
  | 0 -> Headers.Not_ect
  | 1 -> Headers.Ect
  | 2 -> Headers.Ce
  | n -> invalid_arg (Printf.sprintf "Packet_wire: bad ecn code %d" n)

let encode (p : Packet.t) ~into ~off =
  let kind, seq, payload, flags =
    match p.kind with
    | Data { psn; payload; last_of_msg } ->
        (k_data, Psn.to_int psn, payload, if last_of_msg then b_last else 0)
    | Ack { psn } -> (k_ack, Psn.to_int psn, 0, 0)
    | Nack { epsn } -> (k_nack, Psn.to_int epsn, 0, 0)
    | Cnp -> (k_cnp, 0, 0, 0)
    | Pause _ ->
        invalid_arg "Packet_wire.encode: pause frames do not cross shards"
  in
  let tag =
    kind lor flags
    lor (if p.retransmission then b_retx else 0)
    lor (ecn_to_int p.ecn lsl ecn_shift)
    lor (if p.ecn_echo then b_ecn_echo else 0)
  in
  into.(off) <- tag;
  into.(off + 1) <- seq;
  into.(off + 2) <- payload;
  into.(off + 3) <- p.conn.Flow_id.src;
  into.(off + 4) <- p.conn.Flow_id.dst;
  into.(off + 5) <- p.conn.Flow_id.qpn;
  into.(off + 6) <- p.src_node;
  into.(off + 7) <- p.dst_node;
  into.(off + 8) <- p.size;
  into.(off + 9) <- p.udp_sport;
  into.(off + 10) <- p.birth;
  into.(off + 11) <- p.entropy_echo

let decode buf ~off =
  let tag = buf.(off) in
  let seq = buf.(off + 1) in
  let payload = buf.(off + 2) in
  let conn =
    Flow_id.make ~src:buf.(off + 3) ~dst:buf.(off + 4) ~qpn:buf.(off + 5)
  in
  let sport = buf.(off + 9) in
  let birth = buf.(off + 10) in
  let conn_id = Flow_id.intern conn in
  let p =
    match tag land 7 with
    | 0 ->
        Packet_pool.data ~conn ~conn_id ~sport ~psn:(Psn.of_int seq) ~payload
          ~last_of_msg:(tag land b_last <> 0)
          ~retransmission:(tag land b_retx <> 0)
          ~birth ()
    | 1 -> Packet_pool.ack ~conn ~conn_id ~sport ~psn:(Psn.of_int seq) ~birth
    | 2 -> Packet_pool.nack ~conn ~conn_id ~sport ~epsn:(Psn.of_int seq) ~birth
    | 3 -> Packet_pool.cnp ~conn ~conn_id ~sport ~birth
    | k -> invalid_arg (Printf.sprintf "Packet_wire.decode: bad kind %d" k)
  in
  p.src_node <- buf.(off + 6);
  p.dst_node <- buf.(off + 7);
  p.size <- buf.(off + 8);
  p.ecn <- ecn_of_int ((tag lsr ecn_shift) land 3);
  p.ecn_echo <- tag land b_ecn_echo <> 0;
  p.entropy_echo <- buf.(off + 11);
  p
