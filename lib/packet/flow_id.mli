(** Identity of an RDMA connection (a queue pair).

    A connection is oriented: [src] is the requester (data sender) and [dst]
    the responder.  Acknowledgements travel dst -> src but carry the same
    connection identity, which is what the Themis-D flow table is keyed on. *)

type t = { src : int; dst : int; qpn : int }
(** [src]/[dst] are host node ids; [qpn] is the destination QP number. *)

val make : src:int -> dst:int -> qpn:int -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Table : Hashtbl.S with type key = t

(** {2 Interning}

    Dense integer ids assigned in first-touch order.  Hot-path per-flow
    state (the Themis-D flow table, RNIC QP dispatch, receiver state)
    is keyed on these so steady-state packet processing indexes arrays
    with zero hashing; the hash is paid once per flow at first touch.
    The interner is global run state like [Packet]'s uid counter and is
    reset at the same campaign-job / fuzz-run boundaries, making id
    assignment deterministic and byte-identical across serial and
    forked executions. *)

val intern : t -> int
(** The flow's dense id, assigning the next free one on first touch. *)

val lookup_interned : t -> int option
(** Like {!intern} but never assigns — for read-only lookups that must
    not perturb id assignment order. *)

val interned_count : unit -> int
(** Number of ids assigned since the last reset; all ids are below it. *)

val reset_interner : unit -> unit
(** Forget all assignments; called wherever [Packet.reset_uid_counter]
    is so every run starts from identical global state. *)

val intern_snapshot : unit -> (int * t) list
(** Current [(id, flow)] assignment sorted by id — determinism tests
    compare this across runs. *)
