(** Packet <-> flat int-slot codec for the cross-shard interlink rings
    (DESIGN.md §14).

    A record is [words] consecutive ints carrying every observable
    field: connection triple, kind, PSN/ePSN, payload length, size,
    sport, ECN codepoint, entropy/ECN echo, retransmission flag and
    birth timestamp.  The uid is not carried — the receiving shard
    re-materializes the packet from its own domain-local pool and
    numbers it locally. *)

val words : int
(** Record size in ints. *)

val encode : Packet.t -> into:int array -> off:int -> unit
(** Raises [Invalid_argument] on pause frames (PFC never crosses a
    shard boundary; sharded runs refuse PFC configs). *)

val decode : int array -> off:int -> Packet.t
(** Allocates from the calling domain's {!Packet_pool}; the connection
    is re-interned locally. *)
