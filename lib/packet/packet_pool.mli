(** Freelist recycling of {!Packet.t} records (DESIGN.md §10).

    The data plane allocates one packet record (plus its [kind] inline
    record) per simulated packet; under a sweep that is the dominant
    minor-heap traffic after events.  This pool keeps two freelists —
    data packets and control packets (ACK/NACK/CNP share a shape) — and
    reuses dead records in place, snabb-style.

    {b Ownership}: a packet has exactly one owner at every instant — the
    component currently holding it (a port queue, an in-flight event, a
    receiver).  Ownership transfers at [Port.enqueue] (caller -> port),
    at tx/propagation events (port -> wire -> deliver target) and at
    delivery (wire -> RNIC/switch).  Whoever owns a packet when it dies
    releases it; the recycle points are the RNIC after dispatching a
    delivered packet, port/switch drop paths, and the fuzz fault layer's
    drop/corrupt faults.  After [release] the record must not be touched:
    any field may be overwritten by the next constructor call.  Dropped
    packets that tests hold onto (delivered via raw capture hooks) are
    simply never released — unreleased packets are ordinary garbage.

    [release] is idempotent per incarnation ([Packet.t.pooled] guards
    double release), and uids are always freshly assigned on reuse, so a
    recycled packet is observationally identical to a fresh one and
    pooling cannot perturb traces, telemetry or byte-identity baselines.

    The constructors mirror {!Packet}'s and fall back to fresh
    allocation when the freelist is empty. *)

val data :
  conn:Flow_id.t ->
  ?conn_id:int ->
  sport:int ->
  psn:Psn.t ->
  payload:int ->
  last_of_msg:bool ->
  ?retransmission:bool ->
  birth:Sim_time.t ->
  unit ->
  Packet.t

val ack :
  conn:Flow_id.t -> conn_id:int -> sport:int -> psn:Psn.t ->
  birth:Sim_time.t -> Packet.t
(** Control constructors take the interned [conn_id] explicitly: they
    are only called from hot paths that have it cached, and making it
    required keeps the per-packet hash out by construction. *)

val nack :
  conn:Flow_id.t -> conn_id:int -> sport:int -> epsn:Psn.t ->
  birth:Sim_time.t -> Packet.t

val cnp :
  conn:Flow_id.t -> conn_id:int -> sport:int -> birth:Sim_time.t -> Packet.t

val release : Packet.t -> unit
(** Return a dead packet to its freelist.  Releasing twice without an
    intervening reacquire is a no-op. *)

val clone : Packet.t -> Packet.t
(** Deep copy {e preserving the uid} — used by the fuzz duplication
    fault so both deliveries of a "duplicated" packet are independently
    owned (and independently releasable). *)

val reset : unit -> unit
(** Drop both freelists and zero the stats; called wherever
    [Packet.reset_uid_counter] is (per campaign job / fuzz run) so every
    run starts from identical global state. *)

val stats : unit -> int * int
(** [(reused, fresh)] constructor counts since the last [reset]. *)
