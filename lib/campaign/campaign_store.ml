type t = { store_dir : string }

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ~dir =
  mkdir_p dir;
  { store_dir = dir }

let dir t = t.store_dir
let path t hash = Filename.concat t.store_dir (hash ^ ".json")

let read_file file =
  match open_in_bin file with
  | exception Sys_error _ -> None
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      Some s

let raw_bytes t hash = read_file (path t hash)

let load t hash =
  let file = path t hash in
  match read_file file with
  | None -> None
  | Some bytes -> (
      match Campaign_result.of_json_string bytes with
      | Ok r when r.Campaign_result.hash = hash -> Some r
      | Ok _ | Error _ ->
          (* Corrupt or misfiled: clear the slot so it becomes an honest
             miss instead of failing on every campaign. *)
          (try Sys.remove file with Sys_error _ -> ());
          None)

let mem t hash = load t hash <> None

let save t r =
  let final = path t r.Campaign_result.hash in
  let tmp =
    Filename.concat t.store_dir
      (Printf.sprintf ".tmp.%s.%d" r.Campaign_result.hash (Unix.getpid ()))
  in
  let oc = open_out_bin tmp in
  output_string oc (Campaign_result.to_json_string r);
  output_char oc '\n';
  close_out oc;
  Unix.rename tmp final

let list t =
  Sys.readdir t.store_dir |> Array.to_list
  |> List.filter_map (fun f ->
         if Filename.check_suffix f ".json" then
           Some (Filename.chop_suffix f ".json")
         else None)
  |> List.sort String.compare

(* ------------------------------------------------------------------ *)
(* Baseline files: a JSON array with one result object per line. *)

let write_baseline ~file rs =
  mkdir_p (Filename.dirname file);
  let oc = open_out_bin file in
  output_string oc "[\n";
  List.iteri
    (fun i r ->
      if i > 0 then output_string oc ",\n";
      output_string oc (Campaign_result.to_json_string r))
    rs;
  output_string oc "\n]\n";
  close_out oc

let ( let* ) = Result.bind

let read_baseline ~file =
  match read_file file with
  | None -> Error (Printf.sprintf "cannot read baseline %S" file)
  | Some bytes ->
      let* json = Campaign_json.of_string bytes in
      (match json with
      | Campaign_json.List items ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | item :: rest ->
                let* r =
                  Campaign_result.of_json_string (Campaign_json.to_string item)
                in
                go (r :: acc) rest
          in
          go [] items
      | _ -> Error (Printf.sprintf "baseline %S is not a JSON array" file))
