(** Adversarial path scenarios for the LB-scheme arena.

    One fixed workload — an all-cross-leaf host permutation with
    staggered starts on a 2-leaf x 4-spine fabric (25 Gbps hosts,
    100 Gbps fabric) — skewed four ways:

    - [sym]: the untouched symmetric fabric (the control column, and
      where the Sprinklers zero-out-of-order gate applies);
    - [cspine]: spine 0 derated to 20 Gbps — a persistently congested
      spine that punishes congestion-oblivious spraying;
    - [asym]: spine 1 at 50 Gbps — mild speed asymmetry;
    - [pathcut]: the leaf0<->spine0 link cut permanently mid-flow —
      post-failure path asymmetry (specs set [shrink_pathset], so
      spraying schemes re-spray over the survivors).

    Scenarios compile to plain {!Fuzz_spec} values, so every arena job
    reuses the fuzz runner and its oracle stack unchanged. *)

val known : string list
(** [["sym"; "cspine"; "asym"; "pathcut"]]. *)

val spec : scen:string -> seed:int -> (Fuzz_spec.t, string) result

val flow_bytes : int
(** Per-flow message size (bytes) of the fixed workload. *)

val n_hosts : int
