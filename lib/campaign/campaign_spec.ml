type target = Fig1 | Fig5 | Incast | Ablation | Fuzz_sweep | Workload | Arena

let target_to_string = function
  | Fig1 -> "fig1"
  | Fig5 -> "fig5"
  | Incast -> "incast"
  | Ablation -> "ablation"
  | Fuzz_sweep -> "fuzz"
  | Workload -> "workload"
  | Arena -> "arena"

let target_of_string = function
  | "fig1" -> Ok Fig1
  | "fig5" -> Ok Fig5
  | "incast" -> Ok Incast
  | "ablation" -> Ok Ablation
  | "fuzz" -> Ok Fuzz_sweep
  | "workload" -> Ok Workload
  | "arena" -> Ok Arena
  | s -> Error (Printf.sprintf "unknown target %S" s)

type fabric =
  | Eval8
  | Paper
  | Ls_fab of { leaves : int; spines : int; hosts : int; gbps : int }

let fabric_to_string = function
  | Eval8 -> "eval8"
  | Paper -> "paper"
  | Ls_fab { leaves; spines; hosts; gbps } ->
      Printf.sprintf "ls:%d:%d:%d:%d" leaves spines hosts gbps

let ( let* ) = Result.bind

let int_of s ~what =
  match int_of_string_opt (String.trim s) with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "bad integer %S in %s" s what)

let fabric_of_string s =
  match String.split_on_char ':' s with
  | [ "eval8" ] -> Ok Eval8
  | [ "paper" ] -> Ok Paper
  | [ "ls"; a; b; c; d ] ->
      let* leaves = int_of a ~what:"fabric" in
      let* spines = int_of b ~what:"fabric" in
      let* hosts = int_of c ~what:"fabric" in
      let* gbps = int_of d ~what:"fabric" in
      Ok (Ls_fab { leaves; spines; hosts; gbps })
  | _ -> Error (Printf.sprintf "bad fabric %S" s)

let leaf_spine_of_fabric = function
  | Eval8 -> Experiment.scaled_eval_fabric
  | Paper -> Leaf_spine.paper_eval
  | Ls_fab { leaves; spines; hosts; gbps } ->
      {
        Leaf_spine.paper_eval with
        Leaf_spine.n_leaves = leaves;
        n_spines = spines;
        hosts_per_leaf = hosts;
        host_bw = Rate.gbps (float_of_int gbps);
        fabric_bw = Rate.gbps (float_of_int gbps);
      }

type t = {
  name : string;
  target : target;
  fabrics : fabric list;
  transports : string list;
  schemes : string list;
  colls : string list;
  mbs : int list;
  dcqcn : (int * int) list;
  fanins : int list;
  studies : string list;
  wnames : string list;
  loads : int list;
  scens : string list;
  profile : string;
  seeds : int list;
}

type job =
  | Fig1_job of { transport : string; mb : int; seed : int }
  | Fig5_job of {
      fabric : fabric;
      scheme : string;
      coll : string;
      mb : int;
      ti_us : int;
      td_us : int;
      seed : int;
    }
  | Incast_job of { scheme : string; fanin : int; mb : int; seed : int }
  | Ablation_job of { study : string; seed : int }
  | Fuzz_job of { soak : bool; seed : int }
  | Workload_job of { wname : string; wscheme : string; load : int; wseed : int }
  | Arena_job of { ascheme : string; ascen : string; aseed : int }

let equal = ( = )
let equal_job = ( = )

(* ------------------------------------------------------------------ *)
(* Grid expansion: fixed nesting order so the job list (and therefore
   sharding, reports and baselines) is deterministic. *)

let jobs_of t =
  let cart axis f = List.concat_map f axis in
  match t.target with
  | Fig1 ->
      cart t.transports (fun transport ->
          cart t.mbs (fun mb ->
              List.map (fun seed -> Fig1_job { transport; mb; seed }) t.seeds))
  | Fig5 ->
      cart t.fabrics (fun fabric ->
          cart t.schemes (fun scheme ->
              cart t.colls (fun coll ->
                  cart t.mbs (fun mb ->
                      cart t.dcqcn (fun (ti_us, td_us) ->
                          List.map
                            (fun seed ->
                              Fig5_job
                                { fabric; scheme; coll; mb; ti_us; td_us; seed })
                            t.seeds)))))
  | Incast ->
      cart t.schemes (fun scheme ->
          cart t.fanins (fun fanin ->
              cart t.mbs (fun mb ->
                  List.map
                    (fun seed -> Incast_job { scheme; fanin; mb; seed })
                    t.seeds)))
  | Ablation ->
      cart t.studies (fun study ->
          List.map (fun seed -> Ablation_job { study; seed }) t.seeds)
  | Fuzz_sweep ->
      List.map (fun seed -> Fuzz_job { soak = t.profile = "soak"; seed }) t.seeds
  | Workload ->
      cart t.wnames (fun wname ->
          cart t.schemes (fun wscheme ->
              cart t.loads (fun load ->
                  List.map
                    (fun wseed -> Workload_job { wname; wscheme; load; wseed })
                    t.seeds)))
  | Arena ->
      cart t.schemes (fun ascheme ->
          cart t.scens (fun ascen ->
              List.map
                (fun aseed -> Arena_job { ascheme; ascen; aseed })
                t.seeds))

(* ------------------------------------------------------------------ *)
(* Serialization: one line, exact round-trip (Fuzz_spec conventions). *)

let join = String.concat ","
let ints xs = join (List.map string_of_int xs)

let to_string t =
  Printf.sprintf
    "cp1;name=%s;target=%s;fab=%s;tr=%s;schemes=%s;colls=%s;mb=%s;dcqcn=%s;fanins=%s;studies=%s;wl=%s;loads=%s;scens=%s;profile=%s;seeds=%s"
    t.name
    (target_to_string t.target)
    (join (List.map fabric_to_string t.fabrics))
    (join t.transports)
    (String.concat "+" t.schemes)
    (join t.colls) (ints t.mbs)
    (join (List.map (fun (ti, td) -> Printf.sprintf "%d:%d" ti td) t.dcqcn))
    (ints t.fanins) (join t.studies) (join t.wnames) (ints t.loads)
    (join t.scens) t.profile (ints t.seeds)

let split_nonempty sep s =
  if String.trim s = "" then [] else String.split_on_char sep s

let rec map_result f = function
  | [] -> Ok []
  | x :: xs ->
      let* y = f x in
      let* ys = map_result f xs in
      Ok (y :: ys)

let ints_of s ~what = map_result (int_of ~what) (split_nonempty ',' s)

let dcqcn_of s =
  map_result
    (fun pair ->
      match String.split_on_char ':' pair with
      | [ a; b ] ->
          let* ti = int_of a ~what:"dcqcn" in
          let* td = int_of b ~what:"dcqcn" in
          Ok (ti, td)
      | _ -> Error (Printf.sprintf "bad dcqcn point %S" pair))
    (split_nonempty ',' s)

let of_string s =
  let s = String.trim s in
  match split_nonempty ';' s with
  | "cp1" :: fields -> (
      let kv =
        List.filter_map
          (fun f ->
            match String.index_opt f '=' with
            | None -> None
            | Some i ->
                Some
                  ( String.sub f 0 i,
                    String.sub f (i + 1) (String.length f - i - 1) ))
          fields
      in
      let find k =
        match List.assoc_opt k kv with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "missing field %S" k)
      in
      let* name = find "name" in
      let* target_s = find "target" in
      let* target = target_of_string target_s in
      let* fab_s = find "fab" in
      let* fabrics = map_result fabric_of_string (split_nonempty ',' fab_s) in
      let* tr_s = find "tr" in
      let transports = split_nonempty ',' tr_s in
      let* schemes_s = find "schemes" in
      let schemes = split_nonempty '+' schemes_s in
      let* colls_s = find "colls" in
      let colls = split_nonempty ',' colls_s in
      let* mb_s = find "mb" in
      let* mbs = ints_of mb_s ~what:"mb" in
      let* dcqcn_s = find "dcqcn" in
      let* dcqcn = dcqcn_of dcqcn_s in
      let* fanins_s = find "fanins" in
      let* fanins = ints_of fanins_s ~what:"fanins" in
      let* studies_s = find "studies" in
      let studies = split_nonempty ',' studies_s in
      (* wl/loads/scens post-date the cp1 grammar; absent fields default
         to empty so pre-workload / pre-arena spec lines keep parsing. *)
      let find_default k = Option.value (List.assoc_opt k kv) ~default:"" in
      let wnames = split_nonempty ',' (find_default "wl") in
      let* loads = ints_of (find_default "loads") ~what:"loads" in
      let scens = split_nonempty ',' (find_default "scens") in
      let* profile = find "profile" in
      let* seeds_s = find "seeds" in
      let* seeds = ints_of seeds_s ~what:"seeds" in
      match profile with
      | "quick" | "soak" ->
          Ok
            {
              name;
              target;
              fabrics;
              transports;
              schemes;
              colls;
              mbs;
              dcqcn;
              fanins;
              studies;
              wnames;
              loads;
              scens;
              profile;
              seeds;
            }
      | p -> Error (Printf.sprintf "bad profile %S" p))
  | _ -> Error "spec must start with \"cp1;\""

(* ------------------------------------------------------------------ *)
(* Job serialization + content hash. *)

let job_to_string = function
  | Fig1_job { transport; mb; seed } ->
      Printf.sprintf "cj1;fig1;tr=%s;mb=%d;seed=%d" transport mb seed
  | Fig5_job { fabric; scheme; coll; mb; ti_us; td_us; seed } ->
      Printf.sprintf "cj1;fig5;fab=%s;scheme=%s;coll=%s;mb=%d;ti=%d;td=%d;seed=%d"
        (fabric_to_string fabric) scheme coll mb ti_us td_us seed
  | Incast_job { scheme; fanin; mb; seed } ->
      Printf.sprintf "cj1;incast;scheme=%s;fanin=%d;mb=%d;seed=%d" scheme fanin
        mb seed
  | Ablation_job { study; seed } ->
      Printf.sprintf "cj1;ablation;study=%s;seed=%d" study seed
  | Fuzz_job { soak; seed } ->
      Printf.sprintf "cj1;fuzz;profile=%s;seed=%d"
        (if soak then "soak" else "quick")
        seed
  | Workload_job { wname; wscheme; load; wseed } ->
      Printf.sprintf "cj1;workload;wl=%s;scheme=%s;load=%d;seed=%d" wname
        wscheme load wseed
  | Arena_job { ascheme; ascen; aseed } ->
      Printf.sprintf "cj1;arena;scheme=%s;scen=%s;seed=%d" ascheme ascen aseed

let job_of_string s =
  let s = String.trim s in
  match split_nonempty ';' s with
  | "cj1" :: kind :: fields -> (
      let kv =
        List.filter_map
          (fun f ->
            match String.index_opt f '=' with
            | None -> None
            | Some i ->
                Some
                  ( String.sub f 0 i,
                    String.sub f (i + 1) (String.length f - i - 1) ))
          fields
      in
      let find k =
        match List.assoc_opt k kv with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "missing job field %S" k)
      in
      let find_int k =
        let* v = find k in
        int_of v ~what:k
      in
      match kind with
      | "fig1" ->
          let* transport = find "tr" in
          let* mb = find_int "mb" in
          let* seed = find_int "seed" in
          Ok (Fig1_job { transport; mb; seed })
      | "fig5" ->
          let* fab_s = find "fab" in
          let* fabric = fabric_of_string fab_s in
          let* scheme = find "scheme" in
          let* coll = find "coll" in
          let* mb = find_int "mb" in
          let* ti_us = find_int "ti" in
          let* td_us = find_int "td" in
          let* seed = find_int "seed" in
          Ok (Fig5_job { fabric; scheme; coll; mb; ti_us; td_us; seed })
      | "incast" ->
          let* scheme = find "scheme" in
          let* fanin = find_int "fanin" in
          let* mb = find_int "mb" in
          let* seed = find_int "seed" in
          Ok (Incast_job { scheme; fanin; mb; seed })
      | "ablation" ->
          let* study = find "study" in
          let* seed = find_int "seed" in
          Ok (Ablation_job { study; seed })
      | "fuzz" ->
          let* profile = find "profile" in
          let* seed = find_int "seed" in
          let* soak =
            match profile with
            | "quick" -> Ok false
            | "soak" -> Ok true
            | p -> Error (Printf.sprintf "bad profile %S" p)
          in
          Ok (Fuzz_job { soak; seed })
      | "workload" ->
          let* wname = find "wl" in
          let* wscheme = find "scheme" in
          let* load = find_int "load" in
          let* wseed = find_int "seed" in
          Ok (Workload_job { wname; wscheme; load; wseed })
      | "arena" ->
          let* ascheme = find "scheme" in
          let* ascen = find "scen" in
          let* aseed = find_int "seed" in
          Ok (Arena_job { ascheme; ascen; aseed })
      | k -> Error (Printf.sprintf "unknown job kind %S" k))
  | _ -> Error "job must start with \"cj1;\""

(* FNV-1a 64 over the canonical job string.  OCaml's native int is 63
   bits, so the arithmetic runs on Int64. *)
let hash_string s =
  let offset = 0xcbf29ce484222325L and prime = 0x100000001b3L in
  let h = ref offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  Printf.sprintf "%016Lx" !h

let job_hash j = hash_string (job_to_string j)

(* ------------------------------------------------------------------ *)
(* Validation. *)

let check_all what names valid =
  let rec go = function
    | [] -> Ok ()
    | n :: rest -> (
        match valid n with
        | Ok _ -> go rest
        | Error e -> Error (Printf.sprintf "%s: %s" what e))
  in
  go names

let coll_of_string = function
  | "allreduce" -> Ok Experiment.Allreduce
  | "hd-allreduce" -> Ok Experiment.Hd_allreduce
  | "alltoall" -> Ok Experiment.Alltoall
  | "allgather" -> Ok Experiment.Allgather
  | "reduce-scatter" -> Ok Experiment.Reduce_scatter
  | s -> Error (Printf.sprintf "unknown collective %S" s)

let transport_of_string = function
  | "sr" -> Ok `Sr
  | "gbn" -> Ok `Gbn
  | "ideal" -> Ok `Ideal
  | s -> Error (Printf.sprintf "unknown transport %S" s)

let studies_known =
  [
    "compensation";
    "queue-factor";
    "queue-factor-jitter";
    "transports";
    "filtering";
    "memory";
  ]

let study_of_string s =
  if List.mem s studies_known then Ok s
  else Error (Printf.sprintf "unknown study %S" s)

let wname_of_string s =
  match Workload_spec.preset s with
  | Some _ -> Ok s
  | None -> Error (Printf.sprintf "unknown workload %S" s)

let validate t =
  let nonempty what = function
    | [] -> Error (Printf.sprintf "%s axis is empty" what)
    | _ -> Ok ()
  in
  let* () =
    if t.name <> ""
       && String.for_all
            (function
              | 'a' .. 'z' | '0' .. '9' | '_' | '-' -> true | _ -> false)
            t.name
    then Ok ()
    else Error (Printf.sprintf "bad campaign name %S" t.name)
  in
  let* () = nonempty "seeds" t.seeds in
  match t.target with
  | Fig1 ->
      let* () = nonempty "transports" t.transports in
      let* () = nonempty "mb" t.mbs in
      check_all "transport" t.transports transport_of_string
  | Fig5 ->
      let* () = nonempty "fabrics" t.fabrics in
      let* () = nonempty "schemes" t.schemes in
      let* () = nonempty "colls" t.colls in
      let* () = nonempty "mb" t.mbs in
      let* () = nonempty "dcqcn" t.dcqcn in
      let* () = check_all "scheme" t.schemes Network.scheme_of_string in
      check_all "coll" t.colls coll_of_string
  | Incast ->
      let* () = nonempty "schemes" t.schemes in
      let* () = nonempty "fanins" t.fanins in
      let* () = nonempty "mb" t.mbs in
      check_all "scheme" t.schemes Network.scheme_of_string
  | Ablation ->
      let* () = nonempty "studies" t.studies in
      check_all "study" t.studies study_of_string
  | Fuzz_sweep -> Ok ()
  | Workload ->
      let* () = nonempty "wl" t.wnames in
      let* () = nonempty "schemes" t.schemes in
      let* () = nonempty "loads" t.loads in
      let* () = check_all "workload" t.wnames wname_of_string in
      let* () = check_all "scheme" t.schemes Network.scheme_of_string in
      check_all "load" t.loads (fun l ->
          if l > 0 && l <= 200 then Ok l
          else Error (Printf.sprintf "load %d%% out of (0, 200]" l))
  | Arena ->
      let* () = nonempty "schemes" t.schemes in
      let* () = nonempty "scens" t.scens in
      (* Arena schemes are fuzz-runner scheme names (they include the
         ablations and the rival sprayers), not Network.scheme names. *)
      let* () =
        check_all "scheme" t.schemes (fun s ->
            if List.mem s Fuzz_run.scheme_names then Ok s
            else Error (Printf.sprintf "unknown arena scheme %S" s))
      in
      check_all "scen" t.scens (fun s -> Result.map (fun _ -> s)
          (Arena_scen.spec ~scen:s ~seed:0))

(* ------------------------------------------------------------------ *)
(* Presets. *)

let empty name target =
  {
    name;
    target;
    fabrics = [];
    transports = [];
    schemes = [];
    colls = [];
    mbs = [];
    dcqcn = [];
    fanins = [];
    studies = [];
    wnames = [];
    loads = [];
    scens = [];
    profile = "quick";
    seeds = [];
  }

let fig5_schemes = [ "ecmp"; "adaptive"; "themis" ]
let full_dcqcn = [ (900, 4); (300, 4); (10, 4); (10, 50); (10, 200) ]

(* Seeds match the entry points' defaults (Experiment.default_eval 11,
   default_motivation 7, default_incast 3, Ablation 5) so bench-emitted
   results and campaign results share store keys. *)
let presets =
  [
    ( "quick",
      {
        (empty "quick" Fig5) with
        fabrics = [ Eval8 ];
        schemes = fig5_schemes;
        colls = [ "allreduce" ];
        mbs = [ 1 ];
        dcqcn = [ (900, 4); (10, 50) ];
        seeds = [ 11 ];
      } );
    ( "fig5a",
      {
        (empty "fig5a" Fig5) with
        fabrics = [ Eval8 ];
        schemes = fig5_schemes;
        colls = [ "allreduce" ];
        mbs = [ 4 ];
        dcqcn = full_dcqcn;
        seeds = [ 11 ];
      } );
    ( "fig5b",
      {
        (empty "fig5b" Fig5) with
        fabrics = [ Eval8 ];
        schemes = fig5_schemes;
        colls = [ "alltoall" ];
        mbs = [ 16 ];
        dcqcn = full_dcqcn;
        seeds = [ 11 ];
      } );
    ( "fig1",
      {
        (empty "fig1" Fig1) with
        transports = [ "sr"; "gbn"; "ideal" ];
        mbs = [ 10 ];
        seeds = [ 7 ];
      } );
    ( "incast",
      {
        (empty "incast" Incast) with
        schemes = [ "ecmp"; "adaptive"; "random-spray"; "themis" ];
        fanins = [ 8 ];
        mbs = [ 1 ];
        seeds = [ 3 ];
      } );
    ( "ablation",
      { (empty "ablation" Ablation) with studies = studies_known; seeds = [ 5 ] }
    );
    ( "fuzz",
      { (empty "fuzz" Fuzz_sweep) with seeds = List.init 25 (fun i -> i + 1) }
    );
    (* Workload scenarios: seeds match Workload_spec's presets (21) so
       CLI-emitted and campaign results share store keys. *)
    ( "mix",
      {
        (empty "mix" Workload) with
        wnames = [ "mix" ];
        schemes = [ "ecmp"; "themis" ];
        loads = [ 30 ];
        seeds = [ 21 ];
      } );
    ( "load-sweep",
      {
        (empty "load-sweep" Workload) with
        wnames = [ "sweep" ];
        schemes = [ "themis" ];
        loads = [ 20; 50; 80 ];
        seeds = [ 21 ];
      } );
    ( "failures",
      {
        (empty "failures" Workload) with
        wnames = [ "failures" ];
        schemes = [ "ecmp"; "themis" ];
        loads = [ 40 ];
        seeds = [ 21 ];
      } );
    (* The LB-scheme arena: every scheme the fuzz runner knows, across
       every adversarial path scenario.  Scheme names here are fuzz
       scheme names ("ar", "spray"), not Network names. *)
    ( "arena",
      {
        (empty "arena" Arena) with
        schemes =
          [
            "ecmp"; "spray"; "ar"; "themis"; "reps"; "prime"; "sprinklers";
            "spritz";
          ];
        scens = Arena_scen.known;
        seeds = [ 31 ];
      } );
    ( "arena-smoke",
      {
        (empty "arena-smoke" Arena) with
        schemes = [ "themis"; "reps"; "sprinklers" ];
        scens = [ "sym"; "cspine" ];
        seeds = [ 31 ];
      } );
  ]

let preset name = List.assoc_opt name presets
let preset_names = List.map fst presets
let pp ppf t = Format.pp_print_string ppf (to_string t)
