(** Aggregate stored results into the EXPERIMENTS.md-style tables.

    [render] prints GitHub-flavoured pipe tables (readable both on a
    terminal and pasted into docs): for Fig. 5 campaigns a scheme x
    DCQCN matrix of tail completion times per (fabric, collective, size,
    seed) grid point with the paper's Themis-vs-AR headline reduction,
    and flat metric tables for the other targets.  Jobs whose result is
    missing from the store are listed so a partially-run campaign is
    visible at a glance. *)

val render :
  Format.formatter ->
  spec:Campaign_spec.t ->
  lookup:(string -> Campaign_result.t option) ->
  unit ->
  unit
