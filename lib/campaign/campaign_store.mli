(** Content-addressed on-disk result store.

    One file per job result, [<dir>/<hash>.json], where the hash is the
    FNV-1a of the job's canonical string: a campaign never recomputes a
    job whose result file is present and valid, which gives warm reruns
    and crash-interrupted resume for free.  Writes go through a
    temp-file + [rename] so a killed worker can never leave a truncated
    result behind; unreadable or hash-mismatched files are treated as
    cache misses and deleted on the next [load].

    Baseline files ([bench/baselines/*.json]) use the same result JSON,
    one object per line inside a JSON array, so they diff cleanly. *)

type t

val open_ : dir:string -> t
(** Creates [dir] (and parents) if needed. *)

val dir : t -> string
val path : t -> string -> string
(** [path t hash] — the result file for [hash]. *)

val load : t -> string -> Campaign_result.t option
(** [None] on missing, unparseable, or wrong-hash files; the two broken
    cases also unlink the file so the slot becomes a clean miss. *)

val mem : t -> string -> bool
(** [mem t hash] = [load t hash <> None] (validating). *)

val save : t -> Campaign_result.t -> unit
(** Atomic (temp + rename). *)

val raw_bytes : t -> string -> string option
(** Exact file contents, for byte-identity comparisons. *)

val list : t -> string list
(** Hashes present (validity not checked), sorted. *)

val write_baseline : file:string -> Campaign_result.t list -> unit
val read_baseline : file:string -> (Campaign_result.t list, string) result
