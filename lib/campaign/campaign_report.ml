let metric_or_nan r name =
  match Campaign_result.metric r name with Some v -> v | None -> Float.nan

let fmt_cell v = if Float.is_nan v then "-" else Printf.sprintf "%.3f" v

let render_fig5 ppf (spec : Campaign_spec.t) lookup =
  List.iter
    (fun fabric ->
      List.iter
        (fun coll ->
          List.iter
            (fun mb ->
              List.iter
                (fun seed ->
                  Format.fprintf ppf
                    "@.#### fig5 %s / %s / %d MB / seed %d — tail CT (ms)@.@."
                    (Campaign_spec.fabric_to_string fabric)
                    coll mb seed;
                  Format.fprintf ppf "| scheme |";
                  List.iter
                    (fun (ti, td) -> Format.fprintf ppf " TI=%d,TD=%d |" ti td)
                    spec.dcqcn;
                  Format.fprintf ppf "@.|---|";
                  List.iter (fun _ -> Format.fprintf ppf "---|") spec.dcqcn;
                  Format.fprintf ppf "@.";
                  let cell scheme (ti_us, td_us) =
                    let job =
                      Campaign_spec.Fig5_job
                        { fabric; scheme; coll; mb; ti_us; td_us; seed }
                    in
                    match lookup (Campaign_spec.job_hash job) with
                    | Some r -> metric_or_nan r "tail_ct_ms"
                    | None -> Float.nan
                  in
                  List.iter
                    (fun scheme ->
                      Format.fprintf ppf "| %s |" scheme;
                      List.iter
                        (fun pt -> Format.fprintf ppf " %s |" (fmt_cell (cell scheme pt)))
                        spec.dcqcn;
                      Format.fprintf ppf "@.")
                    spec.schemes;
                  (* The paper's headline: Themis' tail-CT reduction vs AR. *)
                  if
                    List.mem "themis" spec.schemes
                    && List.mem "adaptive" spec.schemes
                  then begin
                    let reductions =
                      List.filter_map
                        (fun pt ->
                          let ar = cell "adaptive" pt and th = cell "themis" pt in
                          if Float.is_nan ar || Float.is_nan th || ar <= 0. then
                            None
                          else Some (100. *. (ar -. th) /. ar))
                        spec.dcqcn
                    in
                    match reductions with
                    | [] -> ()
                    | r :: _ ->
                        let lo = List.fold_left Stdlib.min r reductions in
                        let hi = List.fold_left Stdlib.max r reductions in
                        Format.fprintf ppf
                          "@.Themis vs adaptive routing: %.1f%% ~ %.1f%% lower tail CT@."
                          lo hi
                  end)
                spec.seeds)
            spec.mbs)
        spec.colls)
    spec.fabrics

let render_flat ?(key = "job") ppf title cols rows =
  Format.fprintf ppf "@.#### %s@.@.| %s |" title key;
  List.iter (fun c -> Format.fprintf ppf " %s |" c) cols;
  Format.fprintf ppf "@.|---|";
  List.iter (fun _ -> Format.fprintf ppf "---|") cols;
  Format.fprintf ppf "@.";
  List.iter
    (fun (label, cells) ->
      Format.fprintf ppf "| %s |" label;
      List.iter (fun v -> Format.fprintf ppf " %s |" (fmt_cell v)) cells;
      Format.fprintf ppf "@.")
    rows

(* LB-scheme arena: one scheme x metric table per (scenario, seed), a
   tail-FCT ranking for the headline scenarios, and the Themis-vs-rivals
   comparison (NACK blocking vs reordering-free-by-construction). *)

let arena_cols =
  [
    "tail_fct_us"; "completed_us"; "retx_packets"; "drops"; "ooo_arrivals";
    "nacks_blocked"; "violations";
  ]

let render_arena ppf (spec : Campaign_spec.t) lookup =
  let cell ascheme ascen aseed name =
    match
      lookup
        (Campaign_spec.job_hash
           (Campaign_spec.Arena_job { ascheme; ascen; aseed }))
    with
    | Some r -> metric_or_nan r name
    | None -> Float.nan
  in
  List.iter
    (fun seed ->
      List.iter
        (fun scen ->
          render_flat ~key:"scheme" ppf
            (Printf.sprintf "arena / %s / seed %d" scen seed)
            arena_cols
            (List.map
               (fun scheme ->
                 (scheme, List.map (cell scheme scen seed) arena_cols))
               spec.schemes))
        spec.scens;
      (* Ranking on the scenarios the issue calls out: the clean fabric
         and the persistently congested spine. *)
      List.iter
        (fun scen ->
          if List.mem scen spec.scens then begin
            let ranked =
              List.sort
                (fun (_, a) (_, b) ->
                  (* NaN (missing result) sorts last. *)
                  match (Float.is_nan a, Float.is_nan b) with
                  | true, true -> 0
                  | true, false -> 1
                  | false, true -> -1
                  | false, false -> Float.compare a b)
                (List.map
                   (fun s -> (s, cell s scen seed "tail_fct_us"))
                   spec.schemes)
            in
            Format.fprintf ppf "@.tail-FCT ranking (%s, seed %d):" scen seed;
            List.iteri
              (fun i (s, v) ->
                Format.fprintf ppf "%s %d. %s (%s us)"
                  (if i = 0 then "" else ";")
                  (i + 1) s (fmt_cell v))
              ranked;
            Format.fprintf ppf "@."
          end)
        [ "sym"; "cspine" ];
      (* Themis survives spraying-induced reordering by blocking
         spurious NACKs in the fabric; Sprinklers never reorders in the
         first place.  Put the two mechanisms side by side. *)
      if List.mem "themis" spec.schemes then
        List.iter
          (fun scen ->
            let tb = cell "themis" scen seed "nacks_blocked" in
            let tooo = cell "themis" scen seed "ooo_arrivals" in
            if not (Float.is_nan tb) then begin
              Format.fprintf ppf
                "@.%s: themis absorbed %.0f OOO arrivals by blocking %.0f \
                 spurious NACKs"
                scen tooo tb;
              List.iter
                (fun rival ->
                  let ooo = cell rival scen seed "ooo_arrivals" in
                  if not (Float.is_nan ooo) then
                    Format.fprintf ppf "; %s saw %.0f OOO arrivals" rival ooo)
                [ "sprinklers"; "reps"; "prime"; "spritz" ];
              Format.fprintf ppf ".@."
            end)
          spec.scens)
    spec.seeds

let render ppf ~(spec : Campaign_spec.t) ~lookup () =
  let jobs = Campaign_spec.jobs_of spec in
  let missing =
    List.filter (fun j -> lookup (Campaign_spec.job_hash j) = None) jobs
  in
  Format.fprintf ppf "### campaign %s@.@.spec: `%s`@.@.%d jobs, %d results, %d missing@."
    spec.name
    (Campaign_spec.to_string spec)
    (List.length jobs)
    (List.length jobs - List.length missing)
    (List.length missing);
  (match spec.target with
  | Campaign_spec.Fig5 -> render_fig5 ppf spec lookup
  | Campaign_spec.Fig1 ->
      let cols = [ "goodput_gbps"; "rate_gbps"; "retx_ratio"; "completion_us" ] in
      let rows =
        List.filter_map
          (fun j ->
            match lookup (Campaign_spec.job_hash j) with
            | None -> None
            | Some r ->
                Some
                  ( Campaign_spec.job_to_string j,
                    [
                      metric_or_nan r "avg_goodput_gbps";
                      metric_or_nan r "avg_rate_gbps";
                      metric_or_nan r "avg_retx_ratio";
                      metric_or_nan r "completion_us";
                    ] ))
          jobs
      in
      render_flat ppf "fig1 motivation" cols rows
  | Campaign_spec.Incast ->
      let cols = [ "fct_mean_us"; "fct_p50_us"; "fct_p99_us"; "retx"; "drops" ] in
      let rows =
        List.filter_map
          (fun j ->
            match lookup (Campaign_spec.job_hash j) with
            | None -> None
            | Some r ->
                Some
                  ( Campaign_spec.job_to_string j,
                    List.map (metric_or_nan r) cols ))
          jobs
      in
      render_flat ppf "incast" cols rows
  | Campaign_spec.Ablation ->
      List.iter
        (fun j ->
          match lookup (Campaign_spec.job_hash j) with
          | None -> ()
          | Some r ->
              Format.fprintf ppf "@.#### %s@.@."
                (Campaign_spec.job_to_string j);
              List.iter
                (fun (k, v) ->
                  Format.fprintf ppf "- %s: %s@." k
                    (Campaign_json.float_to_string v))
                r.Campaign_result.metrics)
        jobs
  | Campaign_spec.Workload ->
      let cols =
        [
          "completed"; "live_hwm"; "fct_p50_us"; "fct_p99_us"; "coll_tail_us";
          "retx_packets"; "storm_drops";
        ]
      in
      let rows =
        List.filter_map
          (fun j ->
            match lookup (Campaign_spec.job_hash j) with
            | None -> None
            | Some r ->
                Some
                  ( Campaign_spec.job_to_string j,
                    List.map (metric_or_nan r) cols ))
          jobs
      in
      render_flat ppf "workload" cols rows
  | Campaign_spec.Fuzz_sweep ->
      let total = ref 0 and with_result = ref 0 in
      List.iter
        (fun j ->
          match lookup (Campaign_spec.job_hash j) with
          | None -> ()
          | Some r ->
              incr with_result;
              let f = int_of_float (metric_or_nan r "failures") in
              total := !total + f;
              if f > 0 then
                Format.fprintf ppf "- %s: %d oracle violations@."
                  (Campaign_spec.job_to_string j)
                  f)
        jobs;
      Format.fprintf ppf
        "@.fuzz sweep: %d specs with results, %d oracle violations total@."
        !with_result !total
  | Campaign_spec.Arena -> render_arena ppf spec lookup);
  if missing <> [] then begin
    Format.fprintf ppf "@.missing results:@.";
    List.iter
      (fun j -> Format.fprintf ppf "- `%s`@." (Campaign_spec.job_to_string j))
      missing
  end
