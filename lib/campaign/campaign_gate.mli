(** Regression gate: current campaign results vs a frozen baseline.

    Two families of checks:

    - {b Tolerance bands}: for every baseline result whose job string
      parses, the current store must hold a result whose headline
      metrics ({!Campaign_runner.headline_metrics}) sit within
      [tol_pct] percent of the frozen value.  Deterministic seeds mean
      the simulator reproduces baselines exactly on an unchanged tree;
      the band absorbs intentional model evolution while still
      catching order-of-magnitude regressions.

    - {b Shape invariants}: the paper's qualitative results must hold
      regardless of absolute numbers — for every Fig. 5 grid point,
      tail CT ordering Themis <= AR <= ECMP (with [slack_pct] slack),
      and for incast, Themis' p99 no worse than ECMP's; fuzz jobs must
      report zero oracle violations.

    A perturbed baseline (the acceptance drill) therefore fails the
    band check even when the simulator itself is healthy. *)

type issue = { i_job : string; i_what : string }

type verdict = {
  g_band_checks : int;  (** (job, metric) pairs compared to baseline. *)
  g_shape_checks : int;
  g_issues : issue list;
}

val ok : verdict -> bool

val check :
  ?tol_pct:float ->
  ?slack_pct:float ->
  baseline:Campaign_result.t list ->
  lookup:(string -> Campaign_result.t option) ->
  jobs:Campaign_spec.job list ->
  unit ->
  verdict
(** Defaults: [tol_pct = 25.], [slack_pct = 5.].  [lookup] resolves a
    job hash in the current store; [jobs] is the campaign's expanded
    grid (drives the shape checks and the missing-result check). *)

val pp_verdict : Format.formatter -> verdict -> unit
