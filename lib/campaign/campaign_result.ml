type t = {
  job : string;
  hash : string;
  metrics : (string * float) list;
}

let make ~job ~metrics =
  let job = Campaign_spec.job_to_string job in
  { job; hash = Campaign_spec.hash_string job; metrics }

let make_raw ~id ~metrics =
  { job = id; hash = Campaign_spec.hash_string id; metrics }

let metric t name = List.assoc_opt name t.metrics

let to_json_string t =
  Campaign_json.to_string
    (Campaign_json.Obj
       [
         ("v", Campaign_json.Num 1.);
         ("job", Campaign_json.Str t.job);
         ("hash", Campaign_json.Str t.hash);
         ( "metrics",
           Campaign_json.Obj
             (List.map (fun (k, v) -> (k, Campaign_json.Num v)) t.metrics) );
       ])

let ( let* ) = Result.bind

let of_json_string s =
  let* json = Campaign_json.of_string s in
  let field name conv =
    match Option.bind (Campaign_json.member name json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "result: missing/bad field %S" name)
  in
  let* v = field "v" Campaign_json.to_float in
  if v <> 1. then Error (Printf.sprintf "result: unknown version %g" v)
  else
    let* job = field "job" Campaign_json.to_str in
    let* hash = field "hash" Campaign_json.to_str in
    let* metrics =
      match Campaign_json.member "metrics" json with
      | Some (Campaign_json.Obj fields) ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | (k, Campaign_json.Num f) :: rest -> go ((k, f) :: acc) rest
            | (k, _) :: _ ->
                Error (Printf.sprintf "result: non-numeric metric %S" k)
          in
          go [] fields
      | _ -> Error "result: missing metrics object"
    in
    if hash <> Campaign_spec.hash_string job then
      Error (Printf.sprintf "result: hash %s does not match job %S" hash job)
    else Ok { job; hash; metrics }

let pp ppf t = Format.pp_print_string ppf (to_json_string t)
