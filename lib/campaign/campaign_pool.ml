type failure = { f_job : string; f_hash : string; f_reason : string }

type summary = {
  s_total : int;
  s_cached : int;
  s_executed : int;
  s_failures : failure list;
  s_wall_s : float;
  s_job_wall_s : float;
  s_max_heap_words : int;
}

let ok s = s.s_failures = []

let pp_summary ppf s =
  Format.fprintf ppf
    "jobs %d: %d cached, %d executed, %d failed  (wall %.1fs, cpu-job %.1fs, max worker heap %d w)"
    s.s_total s.s_cached s.s_executed
    (List.length s.s_failures)
    s.s_wall_s s.s_job_wall_s s.s_max_heap_words;
  List.iter
    (fun f -> Format.fprintf ppf "@.  FAILED %s  %s: %s" f.f_hash f.f_job f.f_reason)
    s.s_failures

(* Deduplicate by content hash, keeping first occurrence order. *)
let dedupe jobs =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun j ->
      let h = Campaign_spec.job_hash j in
      if Hashtbl.mem seen h then false
      else (
        Hashtbl.replace seen h ();
        true))
    jobs

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

(* ------------------------------------------------------------------ *)
(* Serial reference path. *)

let run_serial ~force ~log ~store jobs =
  let t0 = Unix.gettimeofday () in
  let cached = ref 0 and executed = ref 0 and job_wall = ref 0. in
  let failures = ref [] in
  List.iter
    (fun job ->
      let hash = Campaign_spec.job_hash job in
      if (not force) && Campaign_store.mem store hash then (
        incr cached;
        log (Printf.sprintf "cached   %s  %s" hash
               (Campaign_spec.job_to_string job)))
      else
        let start = Unix.gettimeofday () in
        match Campaign_runner.run_job job with
        | r ->
            Campaign_store.save store r;
            let wall = Unix.gettimeofday () -. start in
            job_wall := !job_wall +. wall;
            incr executed;
            log (Printf.sprintf "ran      %s  %s  (%.2fs)" hash
                   (Campaign_spec.job_to_string job) wall)
        | exception e ->
            let reason = "crash: " ^ one_line (Printexc.to_string e) in
            failures :=
              { f_job = Campaign_spec.job_to_string job; f_hash = hash;
                f_reason = reason }
              :: !failures;
            log (Printf.sprintf "FAILED   %s  %s  %s" hash
                   (Campaign_spec.job_to_string job) reason))
    jobs;
  {
    s_total = List.length jobs;
    s_cached = !cached;
    s_executed = !executed;
    s_failures = List.rev !failures;
    s_wall_s = Unix.gettimeofday () -. t0;
    s_job_wall_s = !job_wall;
    s_max_heap_words = 0;
  }

(* ------------------------------------------------------------------ *)
(* Forked pool. *)

type slot = {
  pid : int;
  fd : Unix.file_descr;  (** Read end of the worker's status pipe. *)
  job : Campaign_spec.job;
  hash : string;
  attempts : int;  (** This execution's attempt number, 1-based. *)
  start : float;
}

let read_all fd =
  let buf = Buffer.create 64 in
  let chunk = Bytes.create 256 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ();
  Buffer.contents buf

let write_line fd s =
  let b = Bytes.of_string (s ^ "\n") in
  let rec go off =
    if off < Bytes.length b then
      match Unix.write fd b off (Bytes.length b - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let spawn ~store job ~hash ~attempts =
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      (* Worker.  Status goes through the raw pipe fd (no channel
         buffering to double-flush) and exit is _exit so the parent's
         at_exit machinery never runs here. *)
      Unix.close r;
      (try
         let result = Campaign_runner.run_job job in
         Campaign_store.save store result;
         let heap = (Gc.quick_stat ()).Gc.top_heap_words in
         write_line w (Printf.sprintf "ok %d" heap)
       with e -> write_line w ("err " ^ one_line (Printexc.to_string e)));
      Unix.close w;
      Unix._exit 0
  | pid ->
      Unix.close w;
      { pid; fd = r; job; hash; attempts; start = Unix.gettimeofday () }

let run_forked ~workers ~timeout_s ~retries ~force ~log ~store jobs =
  let t0 = Unix.gettimeofday () in
  let pending = Queue.create () in
  List.iter (fun j -> Queue.add (j, 1) pending) jobs;
  let running : slot list ref = ref [] in
  let cached = ref 0 and executed = ref 0 and job_wall = ref 0. in
  let max_heap = ref 0 in
  let failures = ref [] in
  let jobline slot = Campaign_spec.job_to_string slot.job in
  let finish_failure slot reason =
    if slot.attempts <= retries then (
      log (Printf.sprintf "retry    %s  %s  (%s)" slot.hash (jobline slot)
             reason);
      Queue.add (slot.job, slot.attempts + 1) pending)
    else (
      failures :=
        { f_job = jobline slot; f_hash = slot.hash; f_reason = reason }
        :: !failures;
      log (Printf.sprintf "FAILED   %s  %s  %s" slot.hash (jobline slot) reason))
  in
  let reap slot status =
    let wall = Unix.gettimeofday () -. slot.start in
    let out = read_all slot.fd in
    Unix.close slot.fd;
    job_wall := !job_wall +. wall;
    match status with
    | Unix.WEXITED 0 when String.length out >= 3 && String.sub out 0 3 = "ok " ->
        (match
           int_of_string_opt (String.trim (String.sub out 3 (String.length out - 3)))
         with
        | Some heap -> if heap > !max_heap then max_heap := heap
        | None -> ());
        incr executed;
        log (Printf.sprintf "ran      %s  %s  (%.2fs)" slot.hash (jobline slot)
               wall)
    | Unix.WEXITED _ ->
        let reason =
          if String.length out >= 4 && String.sub out 0 4 = "err " then
            "crash: "
            ^ String.trim (String.sub out 4 (String.length out - 4))
          else "crash: worker exited without status"
        in
        finish_failure slot reason
    | Unix.WSIGNALED n | Unix.WSTOPPED n ->
        finish_failure slot (Printf.sprintf "crash: worker killed by signal %d" n)
  in
  while (not (Queue.is_empty pending)) || !running <> [] do
    (* Fill free slots in spec order; warm hits never fork. *)
    let filled = ref false in
    while List.length !running < workers && not (Queue.is_empty pending) do
      let job, attempts = Queue.take pending in
      let hash = Campaign_spec.job_hash job in
      if (not force) && attempts = 1 && Campaign_store.mem store hash then (
        incr cached;
        log (Printf.sprintf "cached   %s  %s" hash
               (Campaign_spec.job_to_string job)))
      else (
        filled := true;
        running := !running @ [ spawn ~store job ~hash ~attempts ])
    done;
    let progressed = ref !filled in
    running :=
      List.filter
        (fun slot ->
          match Unix.waitpid [ Unix.WNOHANG ] slot.pid with
          | 0, _ ->
              if Unix.gettimeofday () -. slot.start > timeout_s then (
                (try Unix.kill slot.pid Sys.sigkill with Unix.Unix_error _ -> ());
                ignore (Unix.waitpid [] slot.pid);
                let wall = Unix.gettimeofday () -. slot.start in
                job_wall := !job_wall +. wall;
                let out = read_all slot.fd in
                ignore out;
                Unix.close slot.fd;
                finish_failure slot
                  (Printf.sprintf "timeout after %.0fs" timeout_s);
                progressed := true;
                false)
              else true
          | _, status ->
              reap slot status;
              progressed := true;
              false)
        !running;
    if not !progressed then ignore (Unix.sleepf 0.002)
  done;
  {
    s_total = List.length jobs;
    s_cached = !cached;
    s_executed = !executed;
    s_failures = List.rev !failures;
    s_wall_s = Unix.gettimeofday () -. t0;
    s_job_wall_s = !job_wall;
    s_max_heap_words = !max_heap;
  }

let run ?(workers = 1) ?(timeout_s = 300.) ?(retries = 1) ?(force = false)
    ?(log = fun _ -> ()) ~store jobs =
  let jobs = dedupe jobs in
  if workers <= 1 then run_serial ~force ~log ~store jobs
  else run_forked ~workers ~timeout_s ~retries ~force ~log ~store jobs
