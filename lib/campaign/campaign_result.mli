(** One job's measured output, as stored on disk.

    A result is deliberately {e free of runtime accounting} (wall time,
    heap, worker id): the stored JSON must be a pure function of the job
    so that a 4-worker campaign and a serial run of the same spec
    produce byte-identical store contents, and so warm reruns can trust
    cache hits.  Wall/heap accounting lives in {!Campaign_pool}'s
    summary instead. *)

type t = {
  job : string;  (** Canonical job string ({!Campaign_spec.job_to_string}),
                     or a free-form id for non-campaign records (bench
                     micro rows). *)
  hash : string;  (** {!Campaign_spec.hash_string} of [job] — store key. *)
  metrics : (string * float) list;
      (** Ordered; names are [[a-z0-9_]+].  Counters are stored as exact
          integral floats. *)
}

val make : job:Campaign_spec.job -> metrics:(string * float) list -> t
val make_raw : id:string -> metrics:(string * float) list -> t

val metric : t -> string -> float option

val to_json_string : t -> string
(** Canonical single-line JSON:
    [{"v":1,"job":...,"hash":...,"metrics":{...}}]. *)

val of_json_string : string -> (t, string) result
(** Validates the version tag and that [hash] matches [job] — a
    mismatch (hand-edited or corrupt file) is an error, which the store
    treats as a cache miss. *)

val pp : Format.formatter -> t -> unit
