type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* Integral values as integers keeps counters readable in baselines; for
   the rest, the shortest of %.12g / %.17g that round-trips bit-exactly
   (%.17g always does for finite doubles). *)
let float_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (float_to_string f)
    | Str s ->
        Buffer.add_char buf '"';
        escape_into buf s;
        Buffer.add_char buf '"'
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            go x)
          xs;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape_into buf k;
            Buffer.add_string buf "\":";
            go x)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

exception Parse of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true
                                     | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (
      pos := !pos + l;
      v)
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' -> Buffer.add_char buf e; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'u' ->
              if !pos + 4 > n then fail "bad \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* Our own output only escapes control characters; fold
                 anything outside Latin-1 to '?'. *)
              Buffer.add_char buf
                (if code < 256 then Char.chr code else '?');
              go ()
          | _ -> fail "bad escape")
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); List [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
