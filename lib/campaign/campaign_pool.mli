(** Unix-fork worker pool for campaign jobs.

    Parallelism is process-based by necessity: the simulator keeps
    global state (the packet-uid counter, the telemetry context), so
    OCaml 5 domains would race on it.  Every executed job gets its own
    forked worker — the strongest isolation: a crash, a runaway
    allocation or a wedged simulation kills one process, not the
    campaign.  Jobs are dispatched to free worker slots in spec order
    (deterministic sharding); because results are content-addressed
    files written atomically by the worker, the merged store is
    independent of scheduling and byte-identical to a serial run.

    Per job the pool accounts wall time and the worker's top heap size,
    enforces a timeout (SIGKILL + retry, [retries] attempts), and
    captures crashes as failure records carrying the canonical job
    string — a campaign never aborts because one cell died.

    [workers <= 1] runs everything in-process (same caching, no
    isolation or timeouts) — this is the reference serial path the
    byte-identity tests compare against. *)

type failure = {
  f_job : string;  (** Canonical job string — the reproducer:
                       [themis_campaign_cli exec '<job>']. *)
  f_hash : string;
  f_reason : string;  (** ["crash: ..."], ["timeout after Ns"], ... *)
}

type summary = {
  s_total : int;  (** Distinct jobs (after hash dedup). *)
  s_cached : int;  (** Warm store hits: not executed at all. *)
  s_executed : int;
  s_failures : failure list;
  s_wall_s : float;  (** Campaign wall clock. *)
  s_job_wall_s : float;  (** Sum of per-job wall clocks. *)
  s_max_heap_words : int;  (** Largest worker top-heap (0 serially). *)
}

val ok : summary -> bool

val run :
  ?workers:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?force:bool ->
  ?log:(string -> unit) ->
  store:Campaign_store.t ->
  Campaign_spec.job list ->
  summary
(** Defaults: [workers = 1], [timeout_s = 300.], [retries = 1] (one
    retry after a timeout/crash), [force = false] ([true] re-executes
    jobs whose results are already stored). *)

val pp_summary : Format.formatter -> summary -> unit
