(** Campaign sweep specifications.

    A campaign spec is a declarative cartesian grid over the repo's
    evaluation axes — target experiment, fabric, scheme, collective,
    message size, DCQCN (TI, TD) operating point, incast fan-in,
    ablation study and seed.  Like {!Fuzz_spec}, every field is an
    integer or a name, so [to_string]/[of_string] round-trip {e exactly}
    and a printed spec is a one-line reproducer:

    {v dune exec bin/themis_campaign_cli.exe -- run --spec '<spec>' v}

    [jobs_of] expands the grid into the deterministic job list; each job
    also serializes exactly ([job_to_string]/[job_of_string]) and its
    FNV-1a hash of that canonical string ([job_hash]) is the key under
    which {!Campaign_store} files the job's result.  Changing either
    serialization silently invalidates every store and baseline, which
    is why the test suite freezes known hashes. *)

type target = Fig1 | Fig5 | Incast | Ablation | Fuzz_sweep | Workload | Arena

val target_to_string : target -> string
val target_of_string : string -> (target, string) result

type fabric =
  | Eval8  (** The scaled 8x8 / 400 Gbps evaluation fabric (§5). *)
  | Paper  (** The paper's full 16x16 fabric. *)
  | Ls_fab of { leaves : int; spines : int; hosts : int; gbps : int }

val fabric_to_string : fabric -> string
val fabric_of_string : string -> (fabric, string) result
val leaf_spine_of_fabric : fabric -> Leaf_spine.params

type t = {
  name : string;  (** Campaign id: [[a-z0-9_-]+]; names the baseline file. *)
  target : target;
  fabrics : fabric list;  (** Fig5 axis. *)
  transports : string list;  (** Fig1 axis: [sr], [gbn], [ideal]. *)
  schemes : string list;  (** Fig5/incast axis ({!Network.scheme} names). *)
  colls : string list;  (** Fig5 axis ({!Experiment.coll} names). *)
  mbs : int list;  (** Megabytes: per flow (fig1) / group (fig5) / sender. *)
  dcqcn : (int * int) list;  (** Fig5 axis: [(TI, TD)] in microseconds. *)
  fanins : int list;  (** Incast axis. *)
  studies : string list;
      (** Ablation axis: [compensation], [queue-factor], [transports],
          [filtering], [memory]. *)
  wnames : string list;  (** Workload axis ({!Workload_spec} presets). *)
  loads : int list;  (** Workload axis: offered load in % of bisection bw. *)
  scens : string list;  (** Arena axis ({!Arena_scen.known} scenarios). *)
  profile : string;  (** Fuzz generation bounds: [quick] or [soak]. *)
  seeds : int list;
}

type job =
  | Fig1_job of { transport : string; mb : int; seed : int }
  | Fig5_job of {
      fabric : fabric;
      scheme : string;
      coll : string;
      mb : int;
      ti_us : int;
      td_us : int;
      seed : int;
    }
  | Incast_job of { scheme : string; fanin : int; mb : int; seed : int }
  | Ablation_job of { study : string; seed : int }
  | Fuzz_job of { soak : bool; seed : int }
  | Workload_job of { wname : string; wscheme : string; load : int; wseed : int }
      (** A {!Workload_spec} preset with its load factor and seed
          overridden, run under one scheme by {!Workload_run}. *)
  | Arena_job of { ascheme : string; ascen : string; aseed : int }
      (** One cell of the LB-scheme arena: an {!Arena_scen} scenario run
          under one fuzz-runner scheme name ([ascheme] ranges over
          {!Fuzz_run.scheme_names}, so it includes the rival sprayers
          [reps]/[prime]/[sprinklers]/[spritz]). *)

val jobs_of : t -> job list
(** Deterministic expansion order: the axes nest in the field order
    above (fabrics outermost, seeds innermost). *)

val to_string : t -> string
val of_string : string -> (t, string) result

val job_to_string : job -> string
val job_of_string : string -> (job, string) result

val job_hash : job -> string
(** 16-hex-digit FNV-1a 64 of [job_to_string] — the store key. *)

val hash_string : string -> string
(** The same hash over an arbitrary string (used by bench for result
    records whose id is not a campaign job). *)

val validate : t -> (unit, string) result
(** Every axis non-empty for the target, every name resolvable. *)

val coll_of_string : string -> (Experiment.coll, string) result
val transport_of_string : string -> (Rnic.transport, string) result
val studies_known : string list

val preset : string -> t option
val preset_names : string list
(** [quick fig1 fig5a fig5b incast ablation fuzz mix load-sweep
    failures arena arena-smoke] — [quick] is the CI gate grid (small
    Fig. 5 slice), the rest regenerate the paper figures/studies; [mix],
    [load-sweep] and [failures] sweep the production-workload scenarios
    ({!Workload_spec} presets); [arena] is the full scheme x scenario
    LB matrix and [arena-smoke] its 6-job CI slice. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val equal_job : job -> job -> bool
