(* Adversarial path scenarios for the LB-scheme arena.

   Every scenario shares one small leaf-spine fabric and one workload —
   a cross-leaf permutation with staggered starts, so every flow crosses
   the spine tier and the spraying policy is always in the loop — and
   differs only in how the path set is skewed.  Keeping the workload
   fixed makes the scheme x scenario matrix an apples-to-apples
   comparison: a scheme's column moves only because the paths moved. *)

let n_leaves = 2
let n_spines = 4
let hosts_per_leaf = 4
let n_hosts = n_leaves * hosts_per_leaf
let flow_bytes = 300_000

let shape =
  Fuzz_spec.Ls
    {
      n_leaves;
      n_spines;
      hosts_per_leaf;
      host_gbps = 25;
      fabric_gbps = 100;
      link_delay_ns = 1_000;
    }

(* Host i sends to its partner on the other leaf; starts staggered by
   1 us so the first packets do not collide on one ECMP decision tick. *)
let transfers =
  List.init n_hosts (fun i ->
      {
        Fuzz_spec.src = i;
        dst = (i + hosts_per_leaf) mod n_hosts;
        bytes = flow_bytes;
        start_ns = i * 1_000;
      })

let base ~seed =
  {
    Fuzz_spec.seed;
    shape;
    gbn = false;
    queue_factor_pct = 200;
    per_port_kb = 256;
    jitter_ns = 0;
    drop_ppm = 0;
    corrupt_ppm = 0;
    dup_ppm = 0;
    delay_ppm = 0;
    delay_max_ns = 1;
    (* Keep spraying schemes spraying over the surviving spines after a
       cut instead of collapsing to ECMP — the scenario is about how
       each policy handles the asymmetric survivor set. *)
    shrink_pathset = true;
    deadline_ns = 20_000_000;
    schemes = [];
    transfers;
    link_faults = [];
    slow_spine = None;
  }

let known = [ "sym"; "cspine"; "asym"; "pathcut" ]

let spec ~scen ~seed =
  let b = base ~seed in
  match scen with
  | "sym" -> Ok b
  (* Persistently congested spine: spine 0 serializes at a fifth of its
     neighbours, so hash-lucky flows pinned to it crawl. *)
  | "cspine" -> Ok { b with Fuzz_spec.slow_spine = Some (0, 20) }
  (* Asymmetric link speeds: one spine at half rate — milder than
     cspine, the regime where weighting beats blind uniformity. *)
  | "asym" -> Ok { b with Fuzz_spec.slow_spine = Some (1, 50) }
  (* Post-failure path asymmetry: the leaf0<->spine0 link goes down for
     good mid-flow, leaving leaf 0 with three uplinks and leaf 1 with
     four. *)
  | "pathcut" ->
      Ok
        {
          b with
          Fuzz_spec.link_faults =
            [
              {
                Fuzz_spec.fault_link =
                  Fuzz_spec.fabric_link_id shape ~leaf:0 ~spine:0;
                down_ns = 30_000;
                up_ns = 0;
              };
            ];
        }
  | s -> Error (Printf.sprintf "unknown arena scenario %S" s)
