type issue = { i_job : string; i_what : string }

type verdict = {
  g_band_checks : int;
  g_shape_checks : int;
  g_issues : issue list;
}

let ok v = v.g_issues = []

let pp_verdict ppf v =
  Format.fprintf ppf "gate: %d band checks, %d shape checks, %d issues"
    v.g_band_checks v.g_shape_checks (List.length v.g_issues);
  List.iter
    (fun i -> Format.fprintf ppf "@.  GATE %s: %s" i.i_job i.i_what)
    v.g_issues

let within_band ~tol_pct ~base ~cur =
  Float.abs (cur -. base) <= (tol_pct /. 100. *. Float.abs base) +. 1e-9

(* ------------------------------------------------------------------ *)

let band_checks ~tol_pct ~baseline ~lookup =
  let checks = ref 0 and issues = ref [] in
  List.iter
    (fun (b : Campaign_result.t) ->
      match Campaign_spec.job_of_string b.job with
      | Error _ -> ()  (* free-form record (bench micro): not gated *)
      | Ok job -> (
          match lookup b.hash with
          | None ->
              issues :=
                { i_job = b.job; i_what = "no current result (run first)" }
                :: !issues
          | Some (cur : Campaign_result.t) ->
              List.iter
                (fun name ->
                  match Campaign_result.metric b name with
                  | None -> ()
                  | Some base -> (
                      incr checks;
                      match Campaign_result.metric cur name with
                      | None ->
                          issues :=
                            {
                              i_job = b.job;
                              i_what =
                                Printf.sprintf "metric %s missing from current result" name;
                            }
                            :: !issues
                      | Some c ->
                          if not (within_band ~tol_pct ~base ~cur:c) then
                            issues :=
                              {
                                i_job = b.job;
                                i_what =
                                  Printf.sprintf
                                    "%s = %s outside ±%.0f%% of baseline %s" name
                                    (Campaign_json.float_to_string c) tol_pct
                                    (Campaign_json.float_to_string base);
                              }
                              :: !issues))
                (Campaign_runner.headline_metrics job)))
    baseline;
  (!checks, !issues)

(* ------------------------------------------------------------------ *)
(* Shape invariants over the current results. *)

let tail_of lookup job =
  Option.bind (lookup (Campaign_spec.job_hash job)) (fun r ->
      Campaign_result.metric r "tail_ct_ms")

let shape_checks ~slack_pct ~lookup ~jobs =
  let slack = 1. +. (slack_pct /. 100.) in
  let checks = ref 0 and issues = ref [] in
  let push job what = issues := { i_job = job; i_what = what } :: !issues in
  (* Fig. 5 ordering per grid point: collect the points, then compare the
     scheme triple at each. *)
  let points = Hashtbl.create 16 in
  List.iter
    (fun j ->
      match j with
      | Campaign_spec.Fig5_job p ->
          Hashtbl.replace points
            (p.fabric, p.coll, p.mb, p.ti_us, p.td_us, p.seed)
            ()
      | _ -> ())
    jobs;
  Hashtbl.iter
    (fun (fabric, coll, mb, ti_us, td_us, seed) () ->
      let job scheme =
        Campaign_spec.Fig5_job { fabric; scheme; coll; mb; ti_us; td_us; seed }
      in
      let pair lo hi =
        match (tail_of lookup (job lo), tail_of lookup (job hi)) with
        | Some l, Some h ->
            incr checks;
            if l > h *. slack then
              push
                (Campaign_spec.job_to_string (job lo))
                (Printf.sprintf
                   "ordering violated: tail_ct %s=%.3fms > %.0f%%-slack x %s=%.3fms"
                   lo l slack_pct hi h)
        | _ -> ()
      in
      pair "themis" "adaptive";
      pair "adaptive" "ecmp")
    points;
  (* Incast: Themis must not be worse than ECMP at the p99. *)
  let incast_points = Hashtbl.create 8 in
  List.iter
    (fun j ->
      match j with
      | Campaign_spec.Incast_job p ->
          Hashtbl.replace incast_points (p.fanin, p.mb, p.seed) ()
      | _ -> ())
    jobs;
  Hashtbl.iter
    (fun (fanin, mb, seed) () ->
      let job scheme = Campaign_spec.Incast_job { scheme; fanin; mb; seed } in
      let p99 scheme =
        Option.bind
          (lookup (Campaign_spec.job_hash (job scheme)))
          (fun r -> Campaign_result.metric r "fct_p99_us")
      in
      match (p99 "themis", p99 "ecmp") with
      | Some th, Some ec ->
          incr checks;
          if th > ec *. slack then
            push
              (Campaign_spec.job_to_string (job "themis"))
              (Printf.sprintf
                 "ordering violated: p99 themis=%.1fus > %.0f%%-slack x ecmp=%.1fus"
                 th slack_pct ec)
      | _ -> ())
    incast_points;
  (* Workload: every offered flow and every collective overlay completed
     before the spec's deadline — a run that leaves traffic unfinished is
     broken regardless of how the FCT numbers look. *)
  List.iter
    (fun j ->
      match j with
      | Campaign_spec.Workload_job _ -> (
          match lookup (Campaign_spec.job_hash j) with
          | None -> ()
          | Some r ->
              let m = Campaign_result.metric r in
              (match (m "completed", m "offered") with
              | Some c, Some o ->
                  incr checks;
                  if c < o then
                    push
                      (Campaign_spec.job_to_string j)
                      (Printf.sprintf "%d of %d offered flows unfinished"
                         (int_of_float (o -. c))
                         (int_of_float o))
              | _ -> push (Campaign_spec.job_to_string j) "no completion metrics");
              match (m "colls_done", m "colls_total") with
              | Some d, Some t ->
                  incr checks;
                  if d < t then
                    push
                      (Campaign_spec.job_to_string j)
                      (Printf.sprintf "%d of %d collectives unfinished"
                         (int_of_float (t -. d))
                         (int_of_float t))
              | _ -> ())
      | _ -> ())
    jobs;
  (* Arena: zero fuzz-oracle violations for every cell (the policy
     invariant oracles ride inside that count), and Sprinklers on the
     clean symmetric fabric must produce zero out-of-order arrivals —
     reordering-free by construction, so any OOO is a policy bug, not
     noise. *)
  List.iter
    (fun j ->
      match j with
      | Campaign_spec.Arena_job a -> (
          match lookup (Campaign_spec.job_hash j) with
          | None -> ()
          | Some r ->
              (incr checks;
               match Campaign_result.metric r "violations" with
               | Some 0. -> ()
               | Some f ->
                   push
                     (Campaign_spec.job_to_string j)
                     (Printf.sprintf "%d fuzz oracle violations"
                        (int_of_float f))
               | None ->
                   push (Campaign_spec.job_to_string j) "no violations metric");
              if a.ascheme = "sprinklers" && a.ascen = "sym" then begin
                incr checks;
                match Campaign_result.metric r "ooo_arrivals" with
                | Some 0. -> ()
                | Some o ->
                    push
                      (Campaign_spec.job_to_string j)
                      (Printf.sprintf
                         "%d out-of-order arrivals from a reordering-free \
                          scheme on a symmetric fabric"
                         (int_of_float o))
                | None ->
                    push
                      (Campaign_spec.job_to_string j)
                      "no ooo_arrivals metric"
              end)
      | _ -> ())
    jobs;
  (* Fuzz: zero oracle violations, always. *)
  List.iter
    (fun j ->
      match j with
      | Campaign_spec.Fuzz_job _ -> (
          match lookup (Campaign_spec.job_hash j) with
          | None -> ()
          | Some r -> (
              incr checks;
              match Campaign_result.metric r "failures" with
              | Some 0. -> ()
              | Some f ->
                  push
                    (Campaign_spec.job_to_string j)
                    (Printf.sprintf "%d fuzz oracle violations" (int_of_float f))
              | None ->
                  push (Campaign_spec.job_to_string j) "no failures metric"))
      | _ -> ())
    jobs;
  (!checks, !issues)

let check ?(tol_pct = 25.) ?(slack_pct = 5.) ~baseline ~lookup ~jobs () =
  let band_n, band_issues = band_checks ~tol_pct ~baseline ~lookup in
  let shape_n, shape_issues = shape_checks ~slack_pct ~lookup ~jobs in
  {
    g_band_checks = band_n;
    g_shape_checks = shape_n;
    g_issues = List.rev (shape_issues @ band_issues);
  }
