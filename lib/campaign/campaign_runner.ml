let ok_exn what = function
  | Ok v -> v
  | Error e -> invalid_arg (Printf.sprintf "Campaign_runner: %s: %s" what e)

(* Execution-level sharding (DESIGN.md §14).  The shard count is a
   runner setting, never part of a job: job records, their hashes and
   the content-addressed store are oblivious to how a result was
   computed, so frozen baselines keep matching with sharding off.  A
   job whose spec the sharded runner cannot take (ppm fault knobs, fat
   trees, fewer leaves than shards, open-loop workloads) falls back to
   the serial path. *)
let exec_shards = ref 1

let set_shards shards =
  if shards < 1 then Error "shards must be >= 1"
  else
    match Shard_part.ensure_domains ~shards with
    | Error _ as e -> e
    | Ok () ->
        exec_shards := shards;
        Ok ()

let run_scheme_auto spec ~scheme =
  let shards = !exec_shards in
  if shards > 1 && Result.is_ok (Shard_part.supported spec ~shards) then
    Shard_run.run_scheme_safe spec ~scheme ~shards
  else Fuzz_run.run_scheme_safe spec ~scheme

(* Fresh global state per job: this is what makes the serial pool path
   bit-identical to a forked worker (see the .mli). *)
let with_fresh_context f =
  Packet.reset_uid_counter ();
  Packet_pool.reset ();
  Flow_id.reset_interner ();
  Lb_state.reset_globals ();
  Telemetry.disable ();
  ignore (Telemetry.enable ());
  Fun.protect ~finally:Telemetry.disable f

let i = float_of_int

let tele_metrics = function
  | None -> []
  | Some (s : Experiment.telemetry_summary) ->
      [
        ("tele_data_packets", i s.tele_data_packets);
        ("tele_retx_packets", i s.tele_retx_packets);
        ("tele_nacks_generated", i s.tele_nacks_generated);
        ("tele_nacks_valid", i s.tele_nacks_valid);
        ("tele_nacks_blocked", i s.tele_nacks_blocked);
        ("tele_nacks_underflow", i s.tele_nacks_underflow);
        ("tele_comp_sent", i s.tele_comp_sent);
        ("tele_comp_cancelled", i s.tele_comp_cancelled);
        ("tele_flows_completed", i s.tele_flows_completed);
        ("tele_fct_p50_us", s.tele_fct_p50_us);
        ("tele_fct_p99_us", s.tele_fct_p99_us);
        ("tele_ecn_marks", i s.tele_ecn_marks);
        ("tele_buffer_drops", i s.tele_buffer_drops);
      ]

let themis_metrics = function
  | None -> []
  | Some (t : Network.themis_totals) ->
      [
        ("themis_nacks_seen", i t.nacks_seen);
        ("themis_nacks_blocked", i t.nacks_blocked);
        ("themis_nacks_valid", i t.nacks_forwarded_valid);
        ("themis_nacks_underflow", i t.nacks_forwarded_underflow);
        ("themis_comp_sent", i t.compensation_sent);
        ("themis_comp_cancelled", i t.compensation_cancelled);
        ("themis_queue_overwrites", i t.queue_overwrites);
      ]

(* ------------------------------------------------------------------ *)
(* Fig. 1 (motivation) *)

let fig1 ~transport ~mb ~seed =
  with_fresh_context (fun () ->
      let tr = ok_exn "transport" (Campaign_spec.transport_of_string transport) in
      let r =
        Experiment.run_motivation
          {
            Experiment.default_motivation with
            Experiment.msg_bytes = mb * 1_000_000;
            transport = tr;
            seed;
          }
      in
      let metrics =
        [
          ("avg_goodput_gbps", r.Experiment.avg_goodput_gbps);
          ("avg_rate_gbps", r.Experiment.avg_rate_gbps);
          ("avg_retx_ratio", r.Experiment.avg_retx_ratio);
          ("completion_us", r.Experiment.completion_us);
          ("flows", i r.Experiment.flows);
          ("nacks_generated", i r.Experiment.nacks_generated);
        ]
        @ themis_metrics r.Experiment.motivation_themis
        @ tele_metrics (Experiment.telemetry_summary ())
      in
      ( r,
        Campaign_result.make
          ~job:(Campaign_spec.Fig1_job { transport; mb; seed })
          ~metrics ))

(* ------------------------------------------------------------------ *)
(* Fig. 5 (collectives x DCQCN) *)

let fig5 ~fabric ~scheme ~coll ~mb ~ti_us ~td_us ~seed =
  with_fresh_context (fun () ->
      let scheme_v = ok_exn "scheme" (Network.scheme_of_string scheme) in
      let coll_v = ok_exn "coll" (Campaign_spec.coll_of_string coll) in
      let cfg =
        {
          (Experiment.default_eval
             ~fabric:(Campaign_spec.leaf_spine_of_fabric fabric)
             ~scheme:scheme_v ~coll:coll_v ())
          with
          Experiment.bytes_per_group = mb * 1_000_000;
          ti_us = float_of_int ti_us;
          td_us = float_of_int td_us;
          eval_seed = seed;
        }
      in
      let r = Experiment.run_collective cfg in
      let metrics =
        [
          ("tail_ct_ms", r.Experiment.tail_ct_ms);
          ("mean_ct_ms", r.Experiment.mean_ct_ms);
          ("retx_ratio", r.Experiment.retx_ratio);
          ("nacks_generated", i r.Experiment.nacks_generated);
          ("nacks_delivered", i r.Experiment.nacks_delivered);
          ("data_packets", i r.Experiment.data_packets);
          ("ecn_marks", i r.Experiment.ecn_marks);
          ("buffer_drops", i r.Experiment.buffer_drops);
        ]
        @ themis_metrics r.Experiment.themis
        @ tele_metrics (Experiment.telemetry_summary ())
      in
      ( r,
        Campaign_result.make
          ~job:
            (Campaign_spec.Fig5_job
               { fabric; scheme; coll; mb; ti_us; td_us; seed })
          ~metrics ))

(* ------------------------------------------------------------------ *)
(* Incast *)

let incast ~scheme ~fanin ~mb ~seed =
  with_fresh_context (fun () ->
      let scheme_v = ok_exn "scheme" (Network.scheme_of_string scheme) in
      let r =
        Experiment.run_incast
          {
            Experiment.fanin;
            incast_bytes = mb * 1_000_000;
            incast_scheme = scheme_v;
            incast_seed = seed;
          }
      in
      let metrics =
        [
          ("fct_mean_us", r.Experiment.fct_mean_us);
          ("fct_p50_us", r.Experiment.fct_p50_us);
          ("fct_p99_us", r.Experiment.fct_p99_us);
          ("retx", i r.Experiment.incast_retx);
          ("drops", i r.Experiment.incast_drops);
          ("ecn_marks", i r.Experiment.incast_ecn_marks);
        ]
        @ tele_metrics (Experiment.telemetry_summary ())
      in
      ( r,
        Campaign_result.make
          ~job:(Campaign_spec.Incast_job { scheme; fanin; mb; seed })
          ~metrics ))

(* ------------------------------------------------------------------ *)
(* Ablation studies *)

let sanitize label =
  String.map
    (fun c ->
      match Char.lowercase_ascii c with
      | ('a' .. 'z' | '0' .. '9') as c -> c
      | _ -> '_')
    label

let ablation_metrics ~study ~seed =
  match study with
  | "compensation" ->
      List.concat_map
        (fun (r : Ablation.compensation_row) ->
          let p = if r.comp_enabled then "comp_on" else "comp_off" in
          [
            (p ^ "_completion_us", r.completion_us);
            (p ^ "_timeouts", i r.timeouts);
            (p ^ "_compensations", i r.compensations);
          ])
        (Ablation.compensation ~seed ())
  | "queue-factor" | "queue-factor-jitter" ->
      let jitter =
        if study = "queue-factor-jitter" then Sim_time.us 5 else Sim_time.zero
      in
      List.concat_map
        (fun (r : Ablation.queue_factor_row) ->
          let p = Printf.sprintf "qf%d" (int_of_float (r.factor *. 100.)) in
          [
            (p ^ "_underflow", i r.underflow_forwards);
            (p ^ "_blocked", i r.blocked);
            (p ^ "_retx", i r.retx);
            (p ^ "_completion_us", r.qf_completion_us);
          ])
        (Ablation.queue_factor ~jitter ~seed ())
  | "transports" | "filtering" ->
      let rows =
        if study = "transports" then Ablation.transports ~seed ()
        else Ablation.filtering ~seed ()
      in
      List.concat_map
        (fun (r : Ablation.transport_row) ->
          let p = sanitize r.label in
          [
            (p ^ "_goodput_gbps", r.goodput_gbps);
            (p ^ "_retx_ratio", r.retx_ratio);
            (p ^ "_nacks_to_sender", i r.nacks_to_sender);
          ])
        rows
  | "memory" ->
      let m = Ablation.memory_footprint ~seed () in
      [
        ("qps", i m.Ablation.qps);
        ("measured_bytes", i m.Ablation.tor_flow_tables_bytes);
        ("model_bytes", i m.Ablation.model_bytes);
      ]
  | s -> invalid_arg (Printf.sprintf "Campaign_runner: unknown study %S" s)

let ablation ~study ~seed =
  with_fresh_context (fun () ->
      Campaign_result.make
        ~job:(Campaign_spec.Ablation_job { study; seed })
        ~metrics:(ablation_metrics ~study ~seed))

(* ------------------------------------------------------------------ *)
(* Fuzz sweep: one generated spec, run under every scheme.  Fuzz_run
   manages its own per-run state reset. *)

let fuzz ~soak ~seed =
  let profile = if soak then Fuzz_spec.Soak else Fuzz_spec.Quick in
  let spec = Fuzz_spec.generate ~profile ~seed () in
  let outcomes =
    if !exec_shards > 1 then
      List.map
        (fun scheme -> run_scheme_auto spec ~scheme)
        (Fuzz_run.schemes_of spec)
    else Fuzz_run.run spec
  in
  let violations =
    List.fold_left
      (fun acc (o : Fuzz_run.outcome) -> acc + List.length o.o_violations)
      0 outcomes
  in
  let per_scheme =
    List.concat_map
      (fun (o : Fuzz_run.outcome) ->
        let p = sanitize o.o_scheme in
        [
          (p ^ "_violations", i (List.length o.o_violations));
          (p ^ "_completed_us", o.o_completed_us);
          (p ^ "_data_packets", i o.o_data_packets);
          (p ^ "_retx_packets", i o.o_retx_packets);
          (p ^ "_drops", i o.o_drops);
        ])
      outcomes
  in
  Campaign_result.make
    ~job:(Campaign_spec.Fuzz_job { soak; seed })
    ~metrics:
      ((("failures", i violations) :: ("runs", i (List.length outcomes)) :: [])
      @ per_scheme)

(* ------------------------------------------------------------------ *)
(* Workload scenarios: one Workload_spec preset with its load factor and
   seed overridden, under one scheme.  Workload_run resets the ambient
   global state itself (like Fuzz_run), so no with_fresh_context. *)

let workload ~wname ~wscheme ~load ~wseed =
  let spec =
    match Workload_spec.preset wname with
    | Some s -> s
    | None ->
        invalid_arg (Printf.sprintf "Campaign_runner: unknown workload %S" wname)
  in
  let spec = { spec with Workload_spec.load_pct = load; wseed } in
  let r = Workload_run.run ~scheme:wscheme spec in
  Campaign_result.make
    ~job:(Campaign_spec.Workload_job { wname; wscheme; load; wseed })
    ~metrics:(Workload_run.metrics r)

(* ------------------------------------------------------------------ *)
(* LB-scheme arena: one Arena_scen scenario under one fuzz-runner
   scheme.  Fuzz_run resets the ambient global state itself (packet
   uids, pool, interner, Lb_state), so no with_fresh_context. *)

let arena ~ascheme ~ascen ~aseed =
  let spec =
    match Arena_scen.spec ~scen:ascen ~seed:aseed with
    | Ok s -> s
    | Error e -> invalid_arg (Printf.sprintf "Campaign_runner: %s" e)
  in
  let o = run_scheme_auto spec ~scheme:ascheme in
  let nb =
    match o.Fuzz_run.o_themis with
    | Some t -> t.Network.nacks_blocked
    | None -> 0
  in
  Campaign_result.make
    ~job:(Campaign_spec.Arena_job { ascheme; ascen; aseed })
    ~metrics:
      [
        ("violations", i (List.length o.Fuzz_run.o_violations));
        ("tail_fct_us", o.Fuzz_run.o_tail_fct_us);
        ("completed_us", o.Fuzz_run.o_completed_us);
        ("data_packets", i o.Fuzz_run.o_data_packets);
        ("retx_packets", i o.Fuzz_run.o_retx_packets);
        ("drops", i o.Fuzz_run.o_drops);
        ("ooo_arrivals", i o.Fuzz_run.o_ooo);
        ("nacks_blocked", i nb);
      ]

(* ------------------------------------------------------------------ *)

let run_job = function
  | Campaign_spec.Fig1_job { transport; mb; seed } ->
      snd (fig1 ~transport ~mb ~seed)
  | Campaign_spec.Fig5_job { fabric; scheme; coll; mb; ti_us; td_us; seed } ->
      snd (fig5 ~fabric ~scheme ~coll ~mb ~ti_us ~td_us ~seed)
  | Campaign_spec.Incast_job { scheme; fanin; mb; seed } ->
      snd (incast ~scheme ~fanin ~mb ~seed)
  | Campaign_spec.Ablation_job { study; seed } -> ablation ~study ~seed
  | Campaign_spec.Fuzz_job { soak; seed } -> fuzz ~soak ~seed
  | Campaign_spec.Workload_job { wname; wscheme; load; wseed } ->
      workload ~wname ~wscheme ~load ~wseed
  | Campaign_spec.Arena_job { ascheme; ascen; aseed } ->
      arena ~ascheme ~ascen ~aseed

let headline_metrics = function
  | Campaign_spec.Fig1_job _ -> [ "avg_goodput_gbps"; "avg_retx_ratio" ]
  | Campaign_spec.Fig5_job _ -> [ "tail_ct_ms"; "mean_ct_ms" ]
  | Campaign_spec.Incast_job _ -> [ "fct_p50_us"; "fct_p99_us" ]
  | Campaign_spec.Ablation_job _ -> []
  | Campaign_spec.Fuzz_job _ -> [ "failures" ]
  | Campaign_spec.Workload_job _ -> [ "completed"; "fct_p99_us" ]
  | Campaign_spec.Arena_job _ -> [ "tail_fct_us"; "violations" ]
