(** Execute one campaign job in the current process.

    Every run starts from a clean global state — packet-uid counter
    reset, a fresh typed-telemetry context installed for the duration of
    the job — so that executing a job in-process after other jobs (the
    serial pool path) yields {e exactly} the same result record as
    executing it in a freshly forked worker.  The periodic telemetry
    sampler is deliberately left off: it would inject engine events and
    perturb the simulation relative to the plain bench runs.

    The typed entry points ([fig1], [fig5], [incast]) also return the
    rich experiment record so [bench/main.ml] can keep printing its
    tables from a single run while saving the canonical result. *)

val fig1 :
  transport:string -> mb:int -> seed:int ->
  Experiment.motivation_result * Campaign_result.t

val fig5 :
  fabric:Campaign_spec.fabric -> scheme:string -> coll:string -> mb:int ->
  ti_us:int -> td_us:int -> seed:int ->
  Experiment.eval_result * Campaign_result.t

val incast :
  scheme:string -> fanin:int -> mb:int -> seed:int ->
  Experiment.incast_result * Campaign_result.t

val set_shards : int -> (unit, string) result
(** Execution-level sharding for subsequent {!run_job} calls: fuzz and
    arena jobs whose spec {!Shard_part.supported} accepts run across
    that many domains ({!Shard_run}); everything else falls back to the
    serial path.  The shard count is never part of a job — hashes,
    the store and frozen baselines are unchanged at [N = 1].  [Error]
    when [shards < 1] or the runtime cannot spawn domains
    ({!Shard_part.ensure_domains}).  Default 1 (serial). *)

val run_job : Campaign_spec.job -> Campaign_result.t
(** Dispatch on the job kind.  Raises [Invalid_argument] on unresolvable
    names (callers validate specs first) and propagates simulator
    failures — the pool converts those into per-job crash records. *)

val headline_metrics : Campaign_spec.job -> string list
(** The metrics {!Campaign_gate} holds inside the tolerance band for
    this job kind (e.g. [tail_ct_ms] for Fig. 5 cells). *)

val tele_metrics :
  Experiment.telemetry_summary option -> (string * float) list
(** Flatten a telemetry summary into [tele_*] metrics ([[]] on [None]). *)
