(** Minimal JSON with a canonical printer.

    The campaign subsystem stores every result as JSON on disk and
    compares serial and parallel campaign outputs {e byte for byte}, so
    rendering must be a pure function of the value: objects print their
    fields in the order given, numbers use a canonical shortest
    round-tripping form, and no whitespace is emitted.  The parser
    accepts standard JSON (it is only ever pointed at our own output and
    at hand-edited baseline files). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val float_to_string : float -> string
(** Canonical: integral values print as integers, everything else as the
    shortest of [%.12g]/[%.17g] that round-trips bit-exactly. *)

val to_string : t -> string
(** Compact (no whitespace), field order preserved. *)

val of_string : string -> (t, string) result

val member : string -> t -> t option
(** Object field lookup; [None] on missing field or non-object. *)

val to_float : t -> float option
val to_str : t -> string option
