let cross_rack_groups (ls : Leaf_spine.t) =
  let n_leaves = Array.length ls.Leaf_spine.leaves in
  Array.init ls.Leaf_spine.hosts_per_leaf (fun g ->
      Array.init n_leaves (fun leaf -> Leaf_spine.host ls ~leaf ~index:g))

let motivation_groups (ls : Leaf_spine.t) =
  let n_leaves = Array.length ls.Leaf_spine.leaves in
  let hpl = ls.Leaf_spine.hosts_per_leaf in
  if n_leaves <> 2 then
    invalid_arg "Workload.motivation_groups: expects the 2-leaf fabric";
  (* Group parity by host index; ring order alternates leaves so every
     hop crosses the spine tier: h0@leaf0 -> h0@leaf1 -> h2@leaf0 -> ... *)
  let group parity =
    let members = ref [] in
    let idx = ref parity in
    while !idx < hpl do
      members :=
        Leaf_spine.host ls ~leaf:1 ~index:!idx
        :: Leaf_spine.host ls ~leaf:0 ~index:!idx
        :: !members;
      idx := !idx + 2
    done;
    Array.of_list (List.rev !members)
  in
  [| group 0; group 1 |]

type group_run = {
  members : int array;
  runner : Runner.t;
  qps : Rnic.qp list;
}

let launch_group ~net ~members ~schedule ~on_complete ~group =
  (* One QP per ordered pair the schedule ever uses. *)
  let pairs = Hashtbl.create 16 in
  List.iter
    (List.iter (fun { Schedule.src; dst; _ } ->
         if not (Hashtbl.mem pairs (src, dst)) then
           Hashtbl.replace pairs (src, dst)
             (Network.connect net ~src:members.(src) ~dst:members.(dst))))
    schedule;
  let post ~src ~dst ~bytes ~on_complete =
    let qp = Hashtbl.find pairs (src, dst) in
    Rnic.post_send qp ~bytes ~on_complete
  in
  let runner =
    Runner.start ~schedule ~post ~on_complete:(fun time ->
        on_complete ~group time)
  in
  {
    members;
    runner;
    qps = Hashtbl.fold (fun _ qp acc -> qp :: acc) pairs [];
  }

let permutation_pairs_array (ls : Leaf_spine.t) ~rng =
  let hosts = Array.copy ls.Leaf_spine.hosts in
  let ok perm =
    Array.for_all2
      (fun a b ->
        Leaf_spine.leaf_index_of_host ls a
        <> Leaf_spine.leaf_index_of_host ls b)
      hosts perm
  in
  let perm = Array.copy hosts in
  let attempts = ref 0 in
  Rng.shuffle_in_place rng perm;
  while (not (ok perm)) && !attempts < 1000 do
    Rng.shuffle_in_place rng perm;
    incr attempts
  done;
  if not (ok perm) then
    (* Fall back to a rotation by one leaf, always cross-rack. *)
    Array.mapi
      (fun i h ->
        (h, hosts.((i + ls.Leaf_spine.hosts_per_leaf) mod Array.length hosts)))
      hosts
  else Array.map2 (fun a b -> (a, b)) hosts perm
