(** A simulated 3-tier fat-tree fabric with Themis in sport-rewrite mode —
    the multi-tier deployment of Section 3.2.

    In a fat tree the source ToR cannot pick the whole path by selecting
    an egress port, so Themis-S rewrites the UDP source port through the
    offline {!Path_map}; each switch tier then consumes its own bit
    window of the (sport-linear) ECMP hash:

    - edge (ToR) uplinks: hash bits [0, b)   where b = log2(k/2);
    - aggregation uplinks: hash bits [b, 2b).

    One rewrite therefore steers both upward hops, realising all
    (k/2)^2 inter-pod equal-cost paths, one per PSN residue (Eq. 1), and
    the destination ToR validates NACKs with N = (k/2)^2 exactly as in
    the 2-tier case.

    For intra-pod cross-ToR flows only the low window matters; distinct
    residues can then share a path, so Themis-D may block a valid NACK —
    compensation or the sender timeout still recovers the loss (safety,
    not liveness, is residue-exact).  This mirrors the paper's focus on
    the inter-pod case. *)

type params = {
  k : int;  (** Switch radix; [k/2] must be a power of two (k = 4, 8, 16...). *)
  host_bw : Rate.t;
  fabric_bw : Rate.t;
  link_delay : Sim_time.t;
  nic : Rnic.config;
  themis : bool;  (** Sport-rewrite Themis on every edge switch. *)
  compensation : bool;
  buffer_capacity : int;
  per_port_cap : int;
  ecn_enabled : bool;
  queue_factor : float;
  ft_seed : int;
  ft_lb : Lb_policy.t;
      (** Load balancing when [themis] is off (spray / adaptive baselines
          in the multi-tier fabric).  Ignored — forced to ECMP — when
          [themis] is on, since sport-rewrite steering requires
          hash-based next-hop choice. *)
}

val default_params : ?k:int -> themis:bool -> unit -> params
(** k = 4 (16 hosts) at 100 Gbps, 1 us links. *)

type t

val build : params -> t

val engine : t -> Engine.t
val fat_tree : t -> Fat_tree.t
val n_paths : t -> int
(** [(k/2)^2]. *)

val nic : t -> host:int -> Rnic.t
val switch : t -> node:int -> Switch.t
val n_hosts : t -> int
val nics_list : t -> Rnic.t list

val switches_list : t -> Switch.t list
(** All switches, ascending node id (deterministic sweep order). *)

val iter_ports : t -> (Port.t -> unit) -> unit
(** Every directional port in ascending link-id order — fault-injection
    and drop-accounting hook, mirroring {!Network.iter_ports}. *)

val connect : t -> src:int -> dst:int -> Rnic.qp
val run : ?until:Sim_time.t -> t -> unit

val total_data_packets : t -> int
val total_retx_packets : t -> int
val total_nacks_generated : t -> int
val total_nacks_delivered : t -> int
val themis_totals : t -> Network.themis_totals option
val sprayed_packets : t -> int
(** Data packets whose sport Themis-S rewrote (across all edges). *)
