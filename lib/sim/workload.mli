(** Traffic patterns and group construction for the paper's experiments. *)

val cross_rack_groups : Leaf_spine.t -> int array array
(** The Section 5 placement: group [g] contains host index [g] of every
    leaf, so every group member sits under a different ToR and all
    collective traffic crosses the fabric.  Returns [hosts_per_leaf]
    groups of [n_leaves] host node ids. *)

val motivation_groups : Leaf_spine.t -> int array array
(** The Fig. 1a pattern on the 2-leaf motivation fabric: two interleaved
    groups whose ring neighbours always sit under the other ToR, so every
    flow crosses the spine tier. *)

type group_run = {
  members : int array;
  runner : Runner.t;
  qps : Rnic.qp list;
}

val launch_group :
  net:Network.t ->
  members:int array ->
  schedule:Schedule.t ->
  on_complete:(group:int -> Sim_time.t -> unit) ->
  group:int ->
  group_run
(** Create the QPs a schedule needs between group members (one per ordered
    pair that ever communicates) and start a {!Runner} over them. *)

val permutation_pairs_array : Leaf_spine.t -> rng:Rng.t -> (int * int) array
(** A random cross-rack permutation: every host sends to exactly one host
    of another leaf (used by ablation workloads).  Returned as an array;
    callers iterate it directly. *)
