(** The paper's experiments, reproduced as callable harnesses.

    Every figure/table of the paper maps onto one entry point here (see
    DESIGN.md's per-experiment index); the bench executable and the CLI
    only format what these functions return. *)

type series = (float * float) list
(** [(time_us, value)] points. *)

(** {1 Telemetry read-out}

    Aggregates pulled from the current global {!Telemetry} context after a
    run.  The counters must agree with the simulator's own aggregates
    ({!Network.total_retx_packets}, {!Network.themis_totals}, ...) — the
    agreement is asserted by [test/test_telemetry.ml]. *)

type telemetry_summary = {
  tele_data_packets : int;
  tele_retx_packets : int;
  tele_nacks_generated : int;
  tele_nacks_valid : int;  (** Themis-D verdict "valid" (forwarded). *)
  tele_nacks_blocked : int;
  tele_nacks_underflow : int;  (** Forwarded for safety (ring drained). *)
  tele_comp_sent : int;
  tele_comp_cancelled : int;
  tele_flows_completed : int;
  tele_fct_p50_us : float;
  tele_fct_p99_us : float;
  tele_ecn_marks : int;
  tele_buffer_drops : int;
  tele_events : int;  (** Typed events recorded (including overwritten). *)
  tele_events_dropped : int;  (** Overwritten by the bounded ring. *)
}

val telemetry_summary : unit -> telemetry_summary option
(** [None] when no telemetry context is enabled. *)

val pp_telemetry_summary : Format.formatter -> telemetry_summary -> unit
(** Multi-line human-readable rendering; the fuzz harness's determinism
    oracle compares summaries with structural equality and prints both
    sides with this on mismatch. *)

(** {1 Motivation experiment (Section 2.2, Figure 1)}

    Fig. 1a fabric: 2 ToRs x 4 spines, 8 hosts, 100 Gbps.  Two interleaved
    4-node rings; each node sends [msg_bytes] to its ring successor, with
    random packet spraying.  Fig. 1b: spurious-retransmission ratio over
    time; Fig. 1c: sending rate over time; Fig. 1d: average flow
    throughput under NIC-SR vs the Ideal transport. *)

type motivation_config = {
  msg_bytes : int;
  transport : Rnic.transport;
  scheme : Network.scheme;
  bucket : Sim_time.t;  (** Series bucket width. *)
  seed : int;
  telemetry : bool;  (** Enable the typed-telemetry context for the run. *)
}

val default_motivation : motivation_config
(** 10 MB per flow (the paper's 100 MB scaled for simulation speed — the
    ratios are time-invariant), NIC-SR, random spraying, 20 us buckets. *)

type motivation_result = {
  retx_series : series;  (** Per-bucket retransmission ratio, watched flow. *)
  rate_series : series;  (** Per-bucket sending rate (Gbps), watched flow. *)
  avg_retx_ratio : float;  (** All flows, whole run. *)
  avg_rate_gbps : float;  (** Watched flow, whole run (wire rate). *)
  avg_goodput_gbps : float;  (** Mean per-flow goodput — Fig. 1d's bar. *)
  flows : int;
  completion_us : float;
  nacks_generated : int;
  motivation_themis : Network.themis_totals option;
  telemetry : telemetry_summary option;
}

val run_motivation : motivation_config -> motivation_result

(** {1 Collective-communication evaluation (Section 5, Figure 5)} *)

type coll = Allreduce | Hd_allreduce | Alltoall | Allgather | Reduce_scatter
(** [Hd_allreduce] is the halving-doubling variant — fewer, larger steps
    than the ring; group sizes must be powers of two. *)

val coll_to_string : coll -> string

val scaled_eval_fabric : Leaf_spine.params
(** The paper's 16x16 evaluation fabric scaled to 8x8 for simulation
    speed (same 400 Gbps links, 1:1 subscription). *)

type eval_config = {
  fabric : Leaf_spine.params;
  scheme : Network.scheme;
  coll : coll;
  bytes_per_group : int;  (** Total collective payload per group. *)
  ti_us : float;  (** DCQCN rate-increase timer. *)
  td_us : float;  (** DCQCN rate-decrease interval. *)
  eval_seed : int;
}

val default_eval :
  ?fabric:Leaf_spine.params -> scheme:Network.scheme -> coll:coll -> unit ->
  eval_config
(** Defaults: an 8x8 leaf-spine at 400 Gbps (the paper's 16x16 scaled for
    simulation speed; pass [~fabric:Leaf_spine.paper_eval] for full
    scale), 4 MB per group, DCQCN (900, 4) us. *)

type eval_result = {
  tail_ct_ms : float;  (** Slowest group's completion — the §5 metric. *)
  mean_ct_ms : float;
  per_group_ms : float list;
  retx_ratio : float;
  nacks_generated : int;
  nacks_delivered : int;  (** NACKs that reached senders (post-Themis). *)
  data_packets : int;
  ecn_marks : int;
  buffer_drops : int;
  themis : Network.themis_totals option;
}

val run_collective : eval_config -> eval_result

(** {1 Incast (the Section 2.1 burstiness stressor)}

    [fanin] senders on one rack blast a single receiver on another; the
    receiver's host link is the bottleneck, DCQCN must converge, and the
    per-flow completion-time tail shows how much the load-balancing /
    transport combination adds on top of the unavoidable serialisation. *)

type incast_config = {
  fanin : int;
  incast_bytes : int;  (** Per sender. *)
  incast_scheme : Network.scheme;
  incast_seed : int;
}

val default_incast : scheme:Network.scheme -> incast_config
(** 8-to-1 at 100 Gbps, 1 MB per sender. *)

type incast_result = {
  fct_mean_us : float;
  fct_p50_us : float;
  fct_p99_us : float;
  incast_retx : int;
  incast_drops : int;
  incast_ecn_marks : int;
}

val run_incast : incast_config -> incast_result

val dcqcn_sweep : (float * float) list
(** The Fig. 5 x-axis: [(TI, TD)] pairs in microseconds:
    (900,4) (300,4) (10,4) (10,50) (10,200). *)

val fig5_schemes : Network.scheme list
(** ECMP, Adaptive Routing, Themis. *)
