type params = {
  k : int;
  host_bw : Rate.t;
  fabric_bw : Rate.t;
  link_delay : Sim_time.t;
  nic : Rnic.config;
  themis : bool;
  compensation : bool;
  buffer_capacity : int;
  per_port_cap : int;
  ecn_enabled : bool;
  queue_factor : float;
  ft_seed : int;
  ft_lb : Lb_policy.t;
      (* Load balancing when [themis] is off (spray / adaptive baselines
         in the multi-tier fabric).  Forced to ECMP when [themis] is on:
         sport-rewrite steering requires hash-based next-hop choice. *)
}

let default_params ?(k = 4) ~themis () =
  let host_bw = Rate.gbps 100. in
  {
    k;
    host_bw;
    fabric_bw = Rate.gbps 100.;
    link_delay = Sim_time.us 1;
    nic = Rnic.default_config ~line_rate:host_bw;
    themis;
    compensation = true;
    buffer_capacity = 64 * 1024 * 1024;
    per_port_cap = 9 * 1024 * 1024;
    ecn_enabled = true;
    queue_factor = 1.5;
    ft_seed = 42;
    ft_lb = Lb_policy.Ecmp;
  }

type t = {
  engine : Engine.t;
  params : params;
  ft : Fat_tree.t;
  routing : Routing.t;
  switches : (int, Switch.t) Hashtbl.t;
  nics : Rnic.t array;
  link_ports : (int, Port.t * Port.t) Hashtbl.t;
  mutable themis_ds : Themis_d.t list;
  mutable themis_ss : Themis_s.t list;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n / 2) in
  go 0 n

let build (params : params) =
  if params.k < 4 || not (is_power_of_two (params.k / 2)) then
    invalid_arg "Fat_tree_net.build: k/2 must be a power of two, k >= 4";
  let engine = Engine.create () in
  let ft =
    Fat_tree.build ~k:params.k ~host_bw:params.host_bw
      ~fabric_bw:params.fabric_bw ~link_delay:params.link_delay
  in
  let topo = ft.Fat_tree.topo in
  let routing = Routing.compute topo in
  let half = params.k / 2 in
  let tier_bits = log2 half in
  let n_paths = half * half in
  let nics =
    Array.init
      (Array.length ft.Fat_tree.hosts)
      (fun host -> Rnic.create ~engine ~node:host ~config:params.nic)
  in
  let root_rng = Rng.create ~seed:params.ft_seed in
  let switches = Hashtbl.create 64 in
  (* Edge and core consume the low hash window; aggregation switches the
     next one, so the PathMap's 2*tier_bits of entropy pick (agg, core)
     independently. *)
  let add_switch ~shift node =
    let cfg =
      {
        Switch.lb = (if params.themis then Lb_policy.Ecmp else params.ft_lb);
        ecn =
          (if params.ecn_enabled then Some (Ecn.scaled_to params.fabric_bw)
           else None);
        buffer_capacity = params.buffer_capacity;
        per_port_cap = params.per_port_cap;
        fwd_delay = Sim_time.zero;
        pfc = None;
        ecmp_shift = shift;
      }
    in
    Hashtbl.replace switches node
      (Switch.create ~engine ~topo ~routing ~node ~config:cfg
         ~rng:(Rng.split root_rng))
  in
  Array.iter (add_switch ~shift:0) ft.Fat_tree.edges;
  Array.iter (add_switch ~shift:tier_bits) ft.Fat_tree.aggs;
  Array.iter (add_switch ~shift:0) ft.Fat_tree.cores;
  let t =
    {
      engine;
      params;
      ft;
      routing;
      switches;
      nics;
      link_ports = Hashtbl.create 64;
      themis_ds = [];
      themis_ss = [];
    }
  in
  if params.themis then begin
    let queue_capacity =
      Psn_queue.capacity_for ~bw:params.host_bw
        ~rtt:
          ((2 * params.link_delay)
          + Rate.tx_time params.host_bw
              ~bytes_:(params.nic.Rnic.mtu + Headers.data_overhead)
          + Rate.tx_time params.host_bw ~bytes_:Headers.ack_bytes)
        ~mtu:(params.nic.Rnic.mtu + Headers.data_overhead)
        ~factor:params.queue_factor
    in
    let map = Path_map.build ~paths:n_paths in
    Array.iter
      (fun edge ->
        let sw = Hashtbl.find switches edge in
        let themis_s =
          Themis_s.create ~paths:n_paths ~mode:(Themis_s.Sport_rewrite map)
        in
        let themis_d =
          Themis_d.create ~paths:n_paths ~queue_capacity
            ~compensation:params.compensation
            ~inject_nack:(fun ~conn ~conn_id ~sport ~epsn ->
              Switch.inject sw
                (Packet_pool.nack ~conn ~conn_id ~sport ~epsn
                   ~birth:(Engine.now engine)))
            ()
        in
        t.themis_ss <- themis_s :: t.themis_ss;
        t.themis_ds <- themis_d :: t.themis_ds;
        Switch.set_themis sw ~s:(Some themis_s) ~d:(Some themis_d))
      ft.Fat_tree.edges
  end;
  (* Wiring.  Delivery targets resolve once per port, not per packet. *)
  let deliver_to node =
    if Topology.is_host topo node then begin
      let nic = nics.(node) in
      fun pkt -> Rnic.receive nic pkt
    end
    else begin
      let sw = Hashtbl.find switches node in
      fun pkt -> Switch.receive sw pkt
    end
  in
  for link_id = 0 to Topology.link_count topo - 1 do
    let link = Topology.link topo link_id in
    let dir src dst =
      let port =
        Port.create ~engine ~bandwidth:link.Topology.bandwidth
          ~delay:link.Topology.delay ~label:(Printf.sprintf "%d->%d" src dst)
      in
      Port.set_deliver port (deliver_to dst);
      (if Topology.is_host topo src then Rnic.set_port nics.(src) port
       else
         Switch.attach_port (Hashtbl.find switches src) ~link_id ~peer:dst port);
      port
    in
    let pab = dir link.Topology.a link.Topology.b in
    let pba = dir link.Topology.b link.Topology.a in
    Hashtbl.replace t.link_ports link_id (pab, pba)
  done;
  t

let engine t = t.engine
let fat_tree t = t.ft

let n_paths t =
  let half = t.params.k / 2 in
  half * half

let nic t ~host = t.nics.(host)
let switch t ~node = Hashtbl.find t.switches node
let n_hosts t = Array.length t.nics
let nics_list t = Array.to_list t.nics

let switches_list t =
  Hashtbl.fold (fun node sw acc -> (node, sw) :: acc) t.switches []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

let iter_ports t f =
  for link_id = 0 to Topology.link_count t.ft.Fat_tree.topo - 1 do
    match Hashtbl.find_opt t.link_ports link_id with
    | None -> ()
    | Some (pab, pba) ->
        f pab;
        f pba
  done

let connect t ~src ~dst =
  let qp = Rnic.connect t.nics.(src) ~dst:t.nics.(dst) () in
  let dst_tor = Fat_tree.tor_of_host t.ft dst in
  (match Switch.themis_d (Hashtbl.find t.switches dst_tor) with
  | Some d -> Themis_d.register_flow d (Rnic.qp_conn qp)
  | None -> ());
  qp

let run ?until t = Engine.run ?until t.engine

let sum_nics t f = Array.fold_left (fun acc nic -> acc + f nic) 0 t.nics
let total_data_packets t = sum_nics t Rnic.data_packets_sent
let total_retx_packets t = sum_nics t Rnic.retx_packets_sent
let total_nacks_generated t = sum_nics t Rnic.nacks_sent
let total_nacks_delivered t = sum_nics t Rnic.nacks_received

let themis_totals t =
  match t.themis_ds with
  | [] -> None
  | ds ->
      let z =
        {
          Network.nacks_seen = 0;
          nacks_blocked = 0;
          nacks_forwarded_valid = 0;
          nacks_forwarded_underflow = 0;
          compensation_sent = 0;
          compensation_cancelled = 0;
          queue_overwrites = 0;
        }
      in
      Some
        (List.fold_left
           (fun (acc : Network.themis_totals) d ->
             let s = Themis_d.stats d in
             {
               Network.nacks_seen = acc.Network.nacks_seen + s.Themis_d.nacks_seen;
               nacks_blocked = acc.Network.nacks_blocked + s.Themis_d.nacks_blocked;
               nacks_forwarded_valid =
                 acc.Network.nacks_forwarded_valid
                 + s.Themis_d.nacks_forwarded_valid;
               nacks_forwarded_underflow =
                 acc.Network.nacks_forwarded_underflow
                 + s.Themis_d.nacks_forwarded_underflow;
               compensation_sent =
                 acc.Network.compensation_sent + s.Themis_d.compensation_sent;
               compensation_cancelled =
                 acc.Network.compensation_cancelled
                 + s.Themis_d.compensation_cancelled;
               queue_overwrites =
                 acc.Network.queue_overwrites + Themis_d.queue_overwrites d;
             })
           z ds)

let sprayed_packets t =
  List.fold_left (fun acc s -> acc + Themis_s.sprayed_packets s) 0 t.themis_ss
