type scheme =
  | Ecmp
  | Adaptive
  | Random_spray
  | Psn_spray_only
  | Themis of { compensation : bool }
  | Reps
  | Prime
  | Sprinklers
  | Spritz

let scheme_to_string = function
  | Ecmp -> "ecmp"
  | Adaptive -> "adaptive"
  | Random_spray -> "random-spray"
  | Psn_spray_only -> "psn-spray-only"
  | Themis { compensation = true } -> "themis"
  | Themis { compensation = false } -> "themis-nocomp"
  | Reps -> "reps"
  | Prime -> "prime"
  | Sprinklers -> "sprinklers"
  | Spritz -> "spritz"

let scheme_of_string = function
  | "ecmp" -> Ok Ecmp
  | "adaptive" | "ar" -> Ok Adaptive
  | "random-spray" | "spray" -> Ok Random_spray
  | "psn-spray-only" -> Ok Psn_spray_only
  | "themis" -> Ok (Themis { compensation = true })
  | "themis-nocomp" -> Ok (Themis { compensation = false })
  | "reps" -> Ok Reps
  | "prime" -> Ok Prime
  | "sprinklers" -> Ok Sprinklers
  | "spritz" -> Ok Spritz
  | s -> Error (Printf.sprintf "unknown scheme %S" s)

type params = {
  fabric : Leaf_spine.params;
  scheme : scheme;
  nic : Rnic.config;
  buffer_capacity : int;
  per_port_cap : int;
  ecn_enabled : bool;
  pfc : Switch.pfc_config option;
  queue_factor : float;
  last_hop_jitter : Sim_time.t;
  seed : int;
  telemetry : bool;
      (** Install a fresh global {!Telemetry} context in {!build} and run a
          periodic {!Sampler} over port queues and QP in-flight bytes. *)
  telemetry_interval : Sim_time.t;  (** Sampler cadence. *)
}

let default_params ~fabric ~scheme =
  {
    fabric;
    scheme;
    nic = Rnic.default_config ~line_rate:fabric.Leaf_spine.host_bw;
    buffer_capacity = 64 * 1024 * 1024;
    per_port_cap = 9 * 1024 * 1024;
    ecn_enabled = true;
    pfc = None;
    queue_factor = 1.5;
    last_hop_jitter = Sim_time.zero;
    seed = 42;
    telemetry = false;
    telemetry_interval = Sim_time.us 20;
  }

type t = {
  engine : Engine.t;
  params : params;
  fabric : Leaf_spine.t;
  routing : Routing.t;
  switches : (int, Switch.t) Hashtbl.t;
  nics : Rnic.t array;  (* indexed by host node id (hosts are numbered first) *)
  link_ports : (int, Port.t * Port.t) Hashtbl.t;
  mutable themis_ds : Themis_d.t list;
  mutable themis_ss : Themis_s.t list;
  mutable themis_active : bool;
  sampler : Sampler.t option;
  owned : int -> bool;
      (* Shard-replica builds: which node ids this instance drives.
         Affects only observers (sampler probes); the simulated objects
         themselves are always all built so replica state stays
         byte-identical across shards. *)
  mutable quiet_control : bool;
      (* Replica shards apply control events (fail_link etc.) without
         recording telemetry for them, so the fleet logs each exactly
         once. *)
}

let lb_of_scheme = function
  | Ecmp -> Lb_policy.Ecmp
  | Adaptive -> Lb_policy.Adaptive
  | Random_spray -> Lb_policy.Random_spray
  | Psn_spray_only -> Lb_policy.Psn_spray
  | Themis _ ->
      (* Data packets are steered by Themis-S; the policy below only
         applies to control packets and after a failure fallback. *)
      Lb_policy.Ecmp
  | Reps -> Lb_policy.Reps
  | Prime -> Lb_policy.Prime
  | Sprinklers -> Lb_policy.Sprinklers
  | Spritz -> Lb_policy.Spritz

(* Last-hop RTT bound for sizing the Themis-D ring: two propagation
   delays plus a data and a control serialization time (control packets
   ride the priority lane, so no data-queueing term enters). *)
let last_hop_rtt (p : params) =
  let bw = p.fabric.Leaf_spine.host_bw in
  let mtu_wire = p.nic.Rnic.mtu + Headers.data_overhead in
  (2 * p.fabric.Leaf_spine.link_delay)
  + Rate.tx_time bw ~bytes_:mtu_wire
  + Rate.tx_time bw ~bytes_:Headers.ack_bytes

let build ?(owned = fun (_ : int) -> true) (params : params) =
  let engine = Engine.create () in
  if params.telemetry then ignore (Telemetry.enable ());
  let fabric = Leaf_spine.build params.fabric in
  let topo = fabric.Leaf_spine.topo in
  let routing = Routing.compute topo in
  let root_rng = Rng.create ~seed:params.seed in
  let n_hosts = Array.length fabric.Leaf_spine.hosts in
  let nics =
    Array.init n_hosts (fun host ->
        Rnic.create ~engine ~node:host ~config:params.nic)
  in
  let switches = Hashtbl.create 64 in
  let switch_cfg ~bw =
    {
      Switch.lb = lb_of_scheme params.scheme;
      ecn = (if params.ecn_enabled then Some (Ecn.scaled_to bw) else None);
      buffer_capacity = params.buffer_capacity;
      per_port_cap = params.per_port_cap;
      fwd_delay = Sim_time.zero;
      pfc = params.pfc;
      ecmp_shift = 0;
    }
  in
  let add_switch node ~bw =
    let sw =
      Switch.create ~engine ~topo ~routing ~node ~config:(switch_cfg ~bw)
        ~rng:(Rng.split root_rng)
    in
    Hashtbl.replace switches node sw
  in
  Array.iter
    (fun leaf -> add_switch leaf ~bw:params.fabric.Leaf_spine.host_bw)
    fabric.Leaf_spine.leaves;
  Array.iter
    (fun spine -> add_switch spine ~bw:params.fabric.Leaf_spine.fabric_bw)
    fabric.Leaf_spine.spines;
  let link_ports = Hashtbl.create 64 in
  let t =
    {
      engine;
      params;
      fabric;
      routing;
      switches;
      nics;
      link_ports;
      themis_ds = [];
      themis_ss = [];
      themis_active = false;
      sampler =
        (if params.telemetry then
           Some (Sampler.create ~engine ~interval:params.telemetry_interval)
         else None);
      owned;
      quiet_control = false;
    }
  in
  (* Themis middleware on every ToR. *)
  (match params.scheme with
  | Themis { compensation } ->
      let paths = Leaf_spine.n_paths fabric in
      let queue_capacity =
        Psn_queue.capacity_for ~bw:params.fabric.Leaf_spine.host_bw
          ~rtt:(last_hop_rtt params)
          ~mtu:(params.nic.Rnic.mtu + Headers.data_overhead)
          ~factor:params.queue_factor
      in
      Array.iter
        (fun leaf ->
          let sw = Hashtbl.find switches leaf in
          let themis_s =
            Themis_s.create ~paths ~mode:Themis_s.Direct_egress
          in
          let themis_d =
            Themis_d.create ~paths ~queue_capacity ~compensation ~node:leaf
              ~clock:(fun () -> Engine.now engine)
              ~inject_nack:(fun ~conn ~conn_id ~sport ~epsn ->
                let pkt =
                  Packet_pool.nack ~conn ~conn_id ~sport ~epsn
                    ~birth:(Engine.now engine)
                in
                Switch.inject sw pkt)
              ()
          in
          t.themis_ds <- themis_d :: t.themis_ds;
          t.themis_ss <- themis_s :: t.themis_ss;
          Switch.set_themis sw ~s:(Some themis_s) ~d:(Some themis_d))
        fabric.Leaf_spine.leaves;
      t.themis_active <- true
  | Ecmp | Adaptive | Random_spray | Psn_spray_only | Reps | Prime
  | Sprinklers | Spritz ->
      ());
  (* Wiring: one Port per link direction.  The delivery target is
     resolved here, once per port, so per-packet delivery is a direct
     call instead of a hashtable lookup per hop. *)
  let deliver_to node =
    if Topology.is_host topo node then begin
      let nic = nics.(node) in
      fun pkt -> Rnic.receive nic pkt
    end
    else begin
      let sw = Hashtbl.find switches node in
      fun pkt -> Switch.receive sw pkt
    end
  in
  let inbound_ports = Hashtbl.create 64 in
  (* switch node -> ports transmitting towards it (for PFC) *)
  let note_inbound node port =
    if not (Topology.is_host topo node) then
      Hashtbl.replace inbound_ports node
        (port :: (Option.value ~default:[] (Hashtbl.find_opt inbound_ports node)))
  in
  for link_id = 0 to Topology.link_count topo - 1 do
    let link = Topology.link topo link_id in
    let make_dir src dst =
      let port =
        Port.create ~engine ~bandwidth:link.Topology.bandwidth
          ~delay:link.Topology.delay
          ~label:(Printf.sprintf "%d->%d" src dst)
      in
      Port.set_deliver port (deliver_to dst);
      note_inbound dst port;
      (if Topology.is_host topo src then begin
         Rnic.set_port nics.(src) port;
         if params.last_hop_jitter > 0 then
           Port.set_jitter port ~rng:(Rng.split root_rng)
             ~max:params.last_hop_jitter
       end
       else Switch.attach_port (Hashtbl.find switches src) ~link_id ~peer:dst port);
      port
    in
    let pab = make_dir link.Topology.a link.Topology.b in
    let pba = make_dir link.Topology.b link.Topology.a in
    Hashtbl.replace link_ports link_id (pab, pba)
  done;
  Hashtbl.iter
    (fun node sw ->
      match Hashtbl.find_opt inbound_ports node with
      | Some ports -> Switch.set_upstream_ports sw ports
      | None -> ())
    switches;
  (match t.sampler with
  | None -> ()
  | Some s ->
      (* Probe registration order feeds the engine's event stream:
         iterate links in id order, not hashtable order, so two builds
         of the same params schedule byte-identical runs. *)
      for link_id = 0 to Topology.link_count topo - 1 do
        match Hashtbl.find_opt link_ports link_id with
        | None -> ()
        | Some (pab, pba) ->
            (* A port belongs to the shard that owns its transmitting
               node; replica builds probe only their own ports, so each
               port is sampled exactly once fleet-wide. *)
            let link = Topology.link topo link_id in
            List.iter
              (fun (src, p) ->
                if owned src then
                  Sampler.add_probe s ~name:"port_queue_bytes"
                    ~labels:[ ("port", Port.label p) ]
                    ~histogram:"port_queue_bytes_dist" (fun () ->
                      float_of_int (Port.queue_bytes p)))
              [ (link.Topology.a, pab); (link.Topology.b, pba) ]
      done;
      Sampler.start s);
  t

let engine t = t.engine
let params t = t.params
let owned t node = t.owned node
let set_quiet_control t q = t.quiet_control <- q

let link_ports_pair t ~link_id = Hashtbl.find_opt t.link_ports link_id
let sampler t = t.sampler
let fabric t = t.fabric
let routing t = t.routing
let nic t ~host = t.nics.(host)
let switch t ~node = Hashtbl.find t.switches node

let tor_switches t =
  Array.to_list
    (Array.map (fun leaf -> Hashtbl.find t.switches leaf) t.fabric.Leaf_spine.leaves)

(* All switches, by ascending node id — a deterministic order for
   oracle sweeps. *)
let switches_list t =
  Hashtbl.fold (fun node sw acc -> (node, sw) :: acc) t.switches []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

let iter_ports t f =
  for link_id = 0 to Topology.link_count t.fabric.Leaf_spine.topo - 1 do
    match Hashtbl.find_opt t.link_ports link_id with
    | None -> ()
    | Some (pab, pba) ->
        f pab;
        f pba
  done

let nics_list t = Array.to_list t.nics

let n_paths t = Leaf_spine.n_paths t.fabric

let connect t ~src ~dst =
  let qp = Rnic.connect t.nics.(src) ~dst:t.nics.(dst) () in
  (* Handshake interception: the destination ToR learns the QP. *)
  let dst_tor = Leaf_spine.tor_of_host t.fabric dst in
  (match Switch.themis_d (Hashtbl.find t.switches dst_tor) with
  | Some d -> Themis_d.register_flow d (Rnic.qp_conn qp)
  | None -> ());
  (match t.sampler with
  | None -> ()
  | Some s when not (t.owned src) -> ignore s
  | Some s ->
      let sender = Rnic.qp_sender qp in
      let mtu = t.params.nic.Rnic.mtu in
      Sampler.add_probe s ~name:"qp_inflight_bytes"
        ~labels:
          [ ("conn", Format.asprintf "%a" Flow_id.pp (Rnic.qp_conn qp)) ]
        ~histogram:"qp_inflight_bytes_dist" (fun () ->
          float_of_int (Sender.outstanding sender * mtu)));
  qp

let run ?until t = Engine.run ?until t.engine
let now t = Engine.now t.engine

(* Count spines that still have every ToR link alive; the shrink-pathset
   mode can keep spraying only over fully symmetric survivors. *)
let live_spine_count t =
  let topo = t.fabric.Leaf_spine.topo in
  Array.fold_left
    (fun acc spine ->
      let all_up =
        Array.for_all
          (fun leaf ->
            match Topology.link_between topo leaf spine with
            | Some l -> (Topology.link topo l).Topology.up
            | None -> false)
          t.fabric.Leaf_spine.leaves
      in
      if all_up then acc + 1 else acc)
    0 t.fabric.Leaf_spine.spines

let fail_link ?(mode = `Fallback_ecmp) t ~link_id =
  Topology.set_link_up t.fabric.Leaf_spine.topo ~link_id false;
  if (not t.quiet_control) && Telemetry.enabled () then begin
    Telemetry.incr_counter "link_failures";
    Telemetry.record ~time:(Engine.now t.engine)
      (Event.Link_failure { link_id })
  end;
  (match Hashtbl.find_opt t.link_ports link_id with
  | Some (pab, pba) ->
      Port.set_up pab false;
      Port.set_up pba false
  | None -> ());
  Routing.recompute t.routing;
  if t.themis_active then
    match mode with
    | `Fallback_ecmp ->
        t.themis_active <- false;
        List.iter
          (fun sw ->
            Switch.set_themis sw ~s:None ~d:None;
            Switch.set_lb sw Lb_policy.Ecmp)
          (tor_switches t)
    | `Shrink_pathset ->
        (* Section 6 future work: keep spraying over the surviving
           symmetric path subset instead of reverting to ECMP. *)
        let live = live_spine_count t in
        if live < 1 then begin
          t.themis_active <- false;
          List.iter
            (fun sw ->
              Switch.set_themis sw ~s:None ~d:None;
              Switch.set_lb sw Lb_policy.Ecmp)
            (tor_switches t)
        end
        else begin
          List.iter (fun s -> Themis_s.set_paths s live) t.themis_ss;
          List.iter (fun d -> Themis_d.set_paths d live) t.themis_ds
        end

let themis_active t = t.themis_active

(* Adversarial-path scenario: derate every leaf<->spine link of one
   spine (both directions), leaving topology and routing untouched —
   the paths survive but serialize slower, which is exactly the
   asymmetry that breaks load-oblivious spraying. *)
let set_spine_rate t ~spine ~gbps =
  let topo = t.fabric.Leaf_spine.topo in
  if spine < 0 || spine >= Array.length t.fabric.Leaf_spine.spines then
    invalid_arg "Network.set_spine_rate: spine index out of range";
  let spine_node = t.fabric.Leaf_spine.spines.(spine) in
  let rate = Rate.gbps (float_of_int gbps) in
  Array.iter
    (fun leaf ->
      match Topology.link_between topo leaf spine_node with
      | None -> ()
      | Some link_id -> (
          match Hashtbl.find_opt t.link_ports link_id with
          | Some (pab, pba) ->
              Port.set_bandwidth pab rate;
              Port.set_bandwidth pba rate
          | None -> ()))
    t.fabric.Leaf_spine.leaves

(* Transient failure recovery: bring a failed link back.  The Themis
   middleware is NOT re-enabled — the paper's fallback is one-way until
   the operator re-arms it — but ECMP routing reconverges so flows can
   use the link again. *)
let restore_link t ~link_id =
  Topology.set_link_up t.fabric.Leaf_spine.topo ~link_id true;
  (match Hashtbl.find_opt t.link_ports link_id with
  | Some (pab, pba) ->
      Port.set_up pab true;
      Port.set_up pba true
  | None -> ());
  Routing.recompute t.routing

type themis_totals = {
  nacks_seen : int;
  nacks_blocked : int;
  nacks_forwarded_valid : int;
  nacks_forwarded_underflow : int;
  compensation_sent : int;
  compensation_cancelled : int;
  queue_overwrites : int;
}

let themis_totals t =
  match t.themis_ds with
  | [] -> None
  | ds ->
      let z =
        {
          nacks_seen = 0;
          nacks_blocked = 0;
          nacks_forwarded_valid = 0;
          nacks_forwarded_underflow = 0;
          compensation_sent = 0;
          compensation_cancelled = 0;
          queue_overwrites = 0;
        }
      in
      Some
        (List.fold_left
           (fun acc d ->
             let s = Themis_d.stats d in
             {
               nacks_seen = acc.nacks_seen + s.Themis_d.nacks_seen;
               nacks_blocked = acc.nacks_blocked + s.Themis_d.nacks_blocked;
               nacks_forwarded_valid =
                 acc.nacks_forwarded_valid + s.Themis_d.nacks_forwarded_valid;
               nacks_forwarded_underflow =
                 acc.nacks_forwarded_underflow
                 + s.Themis_d.nacks_forwarded_underflow;
               compensation_sent =
                 acc.compensation_sent + s.Themis_d.compensation_sent;
               compensation_cancelled =
                 acc.compensation_cancelled + s.Themis_d.compensation_cancelled;
               queue_overwrites =
                 acc.queue_overwrites + Themis_d.queue_overwrites d;
             })
           z ds)

let sum_nics t f = Array.fold_left (fun acc nic -> acc + f nic) 0 t.nics

let total_data_packets t = sum_nics t Rnic.data_packets_sent
let total_retx_packets t = sum_nics t Rnic.retx_packets_sent
let total_nacks_generated t = sum_nics t Rnic.nacks_sent
let total_nacks_delivered t = sum_nics t Rnic.nacks_received
let total_cnps t = sum_nics t Rnic.cnps_sent
let total_ooo_arrivals t = sum_nics t Rnic.ooo_arrivals

let sum_switches t f = Hashtbl.fold (fun _ sw acc -> acc + f sw) t.switches 0

let total_buffer_drops t = sum_switches t Switch.dropped_buffer
let total_ecn_marks t = sum_switches t Switch.ecn_marked
