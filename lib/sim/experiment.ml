type series = (float * float) list

(* --- Telemetry read-out ------------------------------------------------ *)

type telemetry_summary = {
  tele_data_packets : int;
  tele_retx_packets : int;
  tele_nacks_generated : int;
  tele_nacks_valid : int;
  tele_nacks_blocked : int;
  tele_nacks_underflow : int;
  tele_comp_sent : int;
  tele_comp_cancelled : int;
  tele_flows_completed : int;
  tele_fct_p50_us : float;
  tele_fct_p99_us : float;
  tele_ecn_marks : int;
  tele_buffer_drops : int;
  tele_events : int;
  tele_events_dropped : int;
}

let telemetry_summary () =
  match Telemetry.ctx () with
  | None -> None
  | Some ctx ->
      let m = Telemetry.metrics_exn () in
      let nacks v = Metrics.counter_value m ~labels:[ ("verdict", v) ] "themis_nacks" in
      let comp a =
        Metrics.counter_value m ~labels:[ ("action", a) ] "themis_compensation"
      in
      let fct p =
        match Metrics.histogram_total m "fct_us" with
        | Some h -> Histogram.percentile h p
        | None -> 0.
      in
      Some
        {
          tele_data_packets = Metrics.counter_total m "data_packets_sent";
          tele_retx_packets = Metrics.counter_total m "retx_packets";
          tele_nacks_generated = Metrics.counter_total m "nacks_generated";
          tele_nacks_valid = nacks "valid";
          tele_nacks_blocked = nacks "blocked";
          tele_nacks_underflow = nacks "underflow";
          tele_comp_sent = comp "sent";
          tele_comp_cancelled = comp "cancelled";
          tele_flows_completed = Metrics.counter_total m "flows_completed";
          tele_fct_p50_us = fct 0.5;
          tele_fct_p99_us = fct 0.99;
          tele_ecn_marks = Metrics.counter_total m "ecn_marks";
          tele_buffer_drops = Metrics.counter_total m "switch_dropped_packets";
          tele_events =
            List.fold_left
              (fun acc (_, n) -> acc + n)
              0
              (Telemetry.events_by_kind ctx);
          tele_events_dropped = Telemetry.events_dropped ctx;
        }

let pp_telemetry_summary ppf s =
  Format.fprintf ppf
    "@[<v>data %d retx %d@,\
     nacks gen %d valid %d blocked %d underflow %d@,\
     comp sent %d cancelled %d@,\
     flows %d fct p50 %.2fus p99 %.2fus@,\
     ecn %d drops %d events %d (%d dropped)@]"
    s.tele_data_packets s.tele_retx_packets s.tele_nacks_generated
    s.tele_nacks_valid s.tele_nacks_blocked s.tele_nacks_underflow
    s.tele_comp_sent s.tele_comp_cancelled s.tele_flows_completed
    s.tele_fct_p50_us s.tele_fct_p99_us s.tele_ecn_marks s.tele_buffer_drops
    s.tele_events s.tele_events_dropped

type motivation_config = {
  msg_bytes : int;
  transport : Rnic.transport;
  scheme : Network.scheme;
  bucket : Sim_time.t;
  seed : int;
  telemetry : bool;
}

let default_motivation =
  {
    msg_bytes = 10_000_000;
    transport = `Sr;
    scheme = Network.Random_spray;
    bucket = Sim_time.us 20;
    seed = 7;
    telemetry = false;
  }

type motivation_result = {
  retx_series : series;
  rate_series : series;
  avg_retx_ratio : float;
  avg_rate_gbps : float;
  avg_goodput_gbps : float;
  flows : int;
  completion_us : float;
  nacks_generated : int;
  motivation_themis : Network.themis_totals option;
  telemetry : telemetry_summary option;
}

let run_motivation (cfg : motivation_config) =
  let fabric = Leaf_spine.motivation in
  let params =
    let base = Network.default_params ~fabric ~scheme:cfg.scheme in
    (* Classic DCQCN operating point (55 us increase timer, 50 us CNP /
       decrease interval); Fig. 5 sweeps these separately. *)
    let cc =
      Dcqcn.with_ti_td base.Network.nic.Rnic.cc ~ti_us:55. ~td_us:50.
    in
    {
      base with
      Network.nic =
        { base.Network.nic with Rnic.transport = cfg.transport; cc };
      seed = cfg.seed;
      telemetry = cfg.telemetry;
    }
  in
  let net = Network.build params in
  let ls = Network.fabric net in
  let groups = Workload.motivation_groups ls in
  (* Ring transfers: each member sends msg_bytes to its successor, all
     starting together (one step, no barrier semantics needed beyond
     completion tracking). *)
  let completions : (Flow_id.t * Sim_time.t) list ref = ref [] in
  let watched : Flow_id.t option ref = ref None in
  let qps = ref [] in
  Array.iter
    (fun members ->
      let n = Array.length members in
      Array.iteri
        (fun i src ->
          let dst = members.((i + 1) mod n) in
          let qp = Network.connect net ~src ~dst in
          if !watched = None then watched := Some (Rnic.qp_conn qp);
          qps := qp :: !qps;
          Rnic.post_send qp ~bytes:cfg.msg_bytes ~on_complete:(fun time ->
              completions := (Rnic.qp_conn qp, time) :: !completions))
        members)
    groups;
  let watched_conn = Option.get !watched in
  (* Per-bucket wire bytes and retransmission counts for the watched flow;
     run-wide counters come from the NIC aggregates. *)
  let rate_ts = Stats.Time_series.create ~bucket:cfg.bucket in
  let retx_ts = Stats.Time_series.create ~bucket:cfg.bucket in
  let total_ts = Stats.Time_series.create ~bucket:cfg.bucket in
  let engine = Network.engine net in
  Array.iter
    (fun host ->
      Rnic.set_on_data_tx (Network.nic net ~host) (fun pkt ->
          if Flow_id.equal pkt.Packet.conn watched_conn then begin
            let now = Engine.now engine in
            Stats.Time_series.add rate_ts ~time:now
              (float_of_int pkt.Packet.size);
            Stats.Time_series.add total_ts ~time:now 1.;
            if pkt.Packet.retransmission then
              Stats.Time_series.add retx_ts ~time:now 1.
          end))
      (Network.fabric net).Leaf_spine.hosts;
  Network.run net ~until:(Sim_time.sec 30);
  let flows = List.length !qps in
  let completed = List.length !completions in
  if completed < flows then
    failwith
      (Printf.sprintf "motivation: only %d/%d flows completed" completed flows);
  let completion_us =
    List.fold_left
      (fun acc (_, t) -> Stdlib.max acc (Sim_time.to_us t))
      0. !completions
  in
  (* Retransmission ratio per bucket = retx packets / data packets. *)
  let totals = Stats.Time_series.sums total_ts in
  let retxs = Stats.Time_series.sums retx_ts in
  let retx_series =
    List.map
      (fun (ts, total) ->
        let retx =
          match List.assoc_opt ts retxs with Some v -> v | None -> 0.
        in
        (Sim_time.to_us ts, if total > 0. then retx /. total else 0.))
      totals
  in
  let rate_series =
    List.map
      (fun (ts, bytes_per_sec) -> (Sim_time.to_us ts, bytes_per_sec *. 8. /. 1e9))
      (Stats.Time_series.rate_per_sec rate_ts)
  in
  let total_data = Network.total_data_packets net in
  let total_retx = Network.total_retx_packets net in
  let avg_retx_ratio =
    if total_data > 0 then float_of_int total_retx /. float_of_int total_data
    else 0.
  in
  (* Watched-flow average wire rate over its own active period. *)
  let watched_completion =
    match List.assoc_opt watched_conn !completions with
    | Some t -> Sim_time.to_sec t
    | None -> Sim_time.to_sec (Network.now net)
  in
  let watched_bytes =
    List.fold_left (fun acc (_, s, _) -> acc +. s) 0.
      (Stats.Time_series.buckets rate_ts)
  in
  let avg_rate_gbps =
    if watched_completion > 0. then watched_bytes *. 8. /. 1e9 /. watched_completion
    else 0.
  in
  (* Mean per-flow goodput: message payload over flow completion time. *)
  let goodputs =
    List.map
      (fun (_, t) ->
        float_of_int cfg.msg_bytes *. 8. /. 1e9 /. Sim_time.to_sec t)
      !completions
  in
  let avg_goodput_gbps =
    List.fold_left ( +. ) 0. goodputs /. float_of_int (List.length goodputs)
  in
  {
    retx_series;
    rate_series;
    avg_retx_ratio;
    avg_rate_gbps;
    avg_goodput_gbps;
    flows;
    completion_us;
    nacks_generated = Network.total_nacks_generated net;
    motivation_themis = Network.themis_totals net;
    telemetry = (if cfg.telemetry then telemetry_summary () else None);
  }

(* --- Figure 5: collectives under DCQCN parameter sweep ---------------- *)

type coll = Allreduce | Hd_allreduce | Alltoall | Allgather | Reduce_scatter

let coll_to_string = function
  | Allreduce -> "allreduce"
  | Hd_allreduce -> "hd-allreduce"
  | Alltoall -> "alltoall"
  | Allgather -> "allgather"
  | Reduce_scatter -> "reduce-scatter"

type eval_config = {
  fabric : Leaf_spine.params;
  scheme : Network.scheme;
  coll : coll;
  bytes_per_group : int;
  ti_us : float;
  td_us : float;
  eval_seed : int;
}

let scaled_eval_fabric =
  {
    Leaf_spine.paper_eval with
    Leaf_spine.n_leaves = 8;
    n_spines = 8;
    hosts_per_leaf = 8;
  }

let default_eval ?(fabric = scaled_eval_fabric) ~scheme ~coll () =
  {
    fabric;
    scheme;
    coll;
    bytes_per_group = 4_000_000;
    ti_us = 900.;
    td_us = 4.;
    eval_seed = 11;
  }

type eval_result = {
  tail_ct_ms : float;
  mean_ct_ms : float;
  per_group_ms : float list;
  retx_ratio : float;
  nacks_generated : int;
  nacks_delivered : int;
  data_packets : int;
  ecn_marks : int;
  buffer_drops : int;
  themis : Network.themis_totals option;
}

let schedule_of cfg ~ranks =
  match cfg.coll with
  | Allreduce -> Schedule.ring_allreduce ~ranks ~bytes:cfg.bytes_per_group
  | Hd_allreduce ->
      Schedule.halving_doubling_allreduce ~ranks ~bytes:cfg.bytes_per_group
  | Alltoall -> Schedule.alltoall ~ranks ~bytes:cfg.bytes_per_group
  | Allgather -> Schedule.ring_allgather ~ranks ~bytes:cfg.bytes_per_group
  | Reduce_scatter ->
      Schedule.ring_reduce_scatter ~ranks ~bytes:cfg.bytes_per_group

let run_collective (cfg : eval_config) =
  let params =
    let base = Network.default_params ~fabric:cfg.fabric ~scheme:cfg.scheme in
    let cc = Dcqcn.with_ti_td base.Network.nic.Rnic.cc ~ti_us:cfg.ti_us ~td_us:cfg.td_us in
    {
      base with
      Network.nic =
        {
          base.Network.nic with
          Rnic.cc;
          (* Receiver CNP pacing follows the decrease interval so TD
             controls the frequency of rate reductions end to end. *)
          cnp_interval = Sim_time.us_f cfg.td_us;
        };
      seed = cfg.eval_seed;
    }
  in
  let net = Network.build params in
  let groups = Workload.cross_rack_groups (Network.fabric net) in
  let n_groups = Array.length groups in
  let completions = Array.make n_groups None in
  let runs =
    Array.mapi
      (fun g members ->
        let schedule = schedule_of cfg ~ranks:(Array.length members) in
        Workload.launch_group ~net ~members ~schedule ~group:g
          ~on_complete:(fun ~group time -> completions.(group) <- Some time))
      groups
  in
  ignore runs;
  Network.run net ~until:(Sim_time.sec 60);
  let per_group =
    Array.to_list
      (Array.mapi
         (fun g c ->
           match c with
           | Some t -> Sim_time.to_ms t
           | None ->
               failwith (Printf.sprintf "collective: group %d did not finish" g))
         completions)
  in
  let tail = List.fold_left Stdlib.max 0. per_group in
  let mean =
    List.fold_left ( +. ) 0. per_group /. float_of_int (List.length per_group)
  in
  let data = Network.total_data_packets net in
  let retx = Network.total_retx_packets net in
  {
    tail_ct_ms = tail;
    mean_ct_ms = mean;
    per_group_ms = per_group;
    retx_ratio = (if data > 0 then float_of_int retx /. float_of_int data else 0.);
    nacks_generated = Network.total_nacks_generated net;
    nacks_delivered = Network.total_nacks_delivered net;
    data_packets = data;
    ecn_marks = Network.total_ecn_marks net;
    buffer_drops = Network.total_buffer_drops net;
    themis = Network.themis_totals net;
  }

(* --- Incast ----------------------------------------------------------- *)

type incast_config = {
  fanin : int;
  incast_bytes : int;
  incast_scheme : Network.scheme;
  incast_seed : int;
}

let default_incast ~scheme =
  { fanin = 8; incast_bytes = 1_000_000; incast_scheme = scheme; incast_seed = 3 }

type incast_result = {
  fct_mean_us : float;
  fct_p50_us : float;
  fct_p99_us : float;
  incast_retx : int;
  incast_drops : int;
  incast_ecn_marks : int;
}

let run_incast (cfg : incast_config) =
  if cfg.fanin < 1 then invalid_arg "Experiment.run_incast: fanin";
  let fabric =
    {
      Leaf_spine.motivation with
      Leaf_spine.hosts_per_leaf = cfg.fanin;
      n_spines = 4;
    }
  in
  let params =
    let base = Network.default_params ~fabric ~scheme:cfg.incast_scheme in
    { base with Network.seed = cfg.incast_seed }
  in
  let net = Network.build params in
  let ls = Network.fabric net in
  let receiver = Leaf_spine.host ls ~leaf:1 ~index:0 in
  let fcts = Stats.Summary.create () in
  for i = 0 to cfg.fanin - 1 do
    let src = Leaf_spine.host ls ~leaf:0 ~index:i in
    let qp = Network.connect net ~src ~dst:receiver in
    Rnic.post_send qp ~bytes:cfg.incast_bytes ~on_complete:(fun t ->
        Stats.Summary.add fcts (Sim_time.to_us t))
  done;
  Network.run net ~until:(Sim_time.sec 30);
  if Stats.Summary.count fcts < cfg.fanin then
    failwith "incast: not all flows completed";
  {
    fct_mean_us = Stats.Summary.mean fcts;
    fct_p50_us = Stats.Summary.percentile fcts 0.5;
    fct_p99_us = Stats.Summary.percentile fcts 0.99;
    incast_retx = Network.total_retx_packets net;
    incast_drops = Network.total_buffer_drops net;
    incast_ecn_marks = Network.total_ecn_marks net;
  }

let dcqcn_sweep = [ (900., 4.); (300., 4.); (10., 4.); (10., 50.); (10., 200.) ]

let fig5_schemes =
  [ Network.Ecmp; Network.Adaptive; Network.Themis { compensation = true } ]
