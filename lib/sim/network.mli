(** Instantiates a complete simulated RDMA network: a leaf–spine fabric,
    one switch model per switch node, one RNIC per host, the links between
    them, and (for the Themis scheme) the middleware on every ToR. *)

type scheme =
  | Ecmp
  | Adaptive  (** Per-packet adaptive routing — the AR baseline of §5. *)
  | Random_spray
  | Psn_spray_only
      (** PSN-based spraying with no NACK filtering (ablation). *)
  | Themis of { compensation : bool }
      (** Themis-S + Themis-D on every ToR (full system when
          [compensation]). *)
  | Reps  (** Recycled entropy spraying ({!Lb_policy.Reps}). *)
  | Prime  (** Multi-part entropy ({!Lb_policy.Prime}). *)
  | Sprinklers
      (** Reordering-free variable-size striping ({!Lb_policy.Sprinklers}). *)
  | Spritz  (** Path-aware weighted spraying ({!Lb_policy.Spritz}). *)

val scheme_to_string : scheme -> string
val scheme_of_string : string -> (scheme, string) result

type params = {
  fabric : Leaf_spine.params;
  scheme : scheme;
  nic : Rnic.config;
  buffer_capacity : int;  (** Per-switch shared buffer (paper: 64 MB). *)
  per_port_cap : int;
  ecn_enabled : bool;
  pfc : Switch.pfc_config option;
  queue_factor : float;  (** Themis-D ring sizing factor F. *)
  last_hop_jitter : Sim_time.t;
      (** Uniform extra delay in [[0, jitter]] on every host -> ToR packet
          (ACKs, NACKs, CNPs and host data entering the fabric): the RTT
          fluctuation Section 4's expansion factor F provisions for. *)
  seed : int;
  telemetry : bool;
      (** Install a fresh global {!Telemetry} context in {!build} and run a
          periodic {!Sampler} over port queues and QP in-flight bytes. *)
  telemetry_interval : Sim_time.t;  (** Sampler cadence (default 20 us). *)
}

val default_params : fabric:Leaf_spine.params -> scheme:scheme -> params

val last_hop_rtt : params -> Sim_time.t
(** The bound used to size Themis-D rings: two propagation delays plus a
    data and a control serialization time on the host link. *)

type t

val build : ?owned:(int -> bool) -> params -> t
(** [owned] (default: everything) marks the node ids this instance
    drives — the shard-replica builds of DESIGN.md §14.  Every simulated
    object is always built (replica state must match the serial build
    byte for byte); [owned] only gates observers: sampler probes are
    registered for a port / QP only when its transmitting node is owned,
    so the fleet samples each exactly once. *)

val engine : t -> Engine.t
val params : t -> params

val owned : t -> int -> bool

val set_quiet_control : t -> bool -> unit
(** Replica shards set this so control-plane operations ({!fail_link})
    apply their state changes without recording telemetry — the fleet
    logs each control event exactly once (on the shard that owns it). *)

val link_ports_pair : t -> link_id:int -> (Port.t * Port.t) option
(** The directional port pair (A->B, B->A) of a link — the hook the
    shard runtime uses to lower cross-shard ports onto interlink
    rings. *)

val sampler : t -> Sampler.t option
(** The periodic telemetry sampler, when [params.telemetry] was set. *)

val fabric : t -> Leaf_spine.t
val routing : t -> Routing.t
val nic : t -> host:int -> Rnic.t
val switch : t -> node:int -> Switch.t
val tor_switches : t -> Switch.t list

val switches_list : t -> Switch.t list
(** All switches, ascending node id (deterministic sweep order). *)

val nics_list : t -> Rnic.t list
(** All host NICs, ascending host id. *)

val iter_ports : t -> (Port.t -> unit) -> unit
(** Every directional port, in ascending link-id order (A->B then B->A)
    — the hook the fuzz harness uses to install fault injectors and to
    sum drop counters deterministically. *)

val n_paths : t -> int

val connect : t -> src:int -> dst:int -> Rnic.qp
(** Create a QP between two hosts (node ids) and register the flow with
    the destination ToR's Themis-D (the paper's handshake
    interception). *)

val run : ?until:Sim_time.t -> t -> unit
(** Drive the engine until it drains (all transfers complete and all
    timers parked) or until the horizon. *)

val now : t -> Sim_time.t

val fail_link :
  ?mode:[ `Fallback_ecmp | `Shrink_pathset ] -> t -> link_id:int -> unit
(** Section 6 failure handling: take the link down, flush its ports and
    recompute routing.  Under the Themis scheme, [`Fallback_ecmp] (the
    paper's deployed behaviour, default) disables the middleware on every
    ToR and reverts to ECMP; [`Shrink_pathset] (the paper's future-work
    direction) keeps Themis active but re-sprays over the spines whose
    ToR links all survive. *)

val themis_active : t -> bool

val set_spine_rate : t -> spine:int -> gbps:int -> unit
(** Derate both directions of every leaf<->spine link of the [spine]-th
    spine (index into the fabric's spine array) — the persistently
    congested / asymmetric-link-speed arena scenarios.  Topology and
    routing are untouched: the paths stay up, they just serialize
    slower. *)

val restore_link : t -> link_id:int -> unit
(** Bring a previously failed link back up and reconverge routing.  The
    Themis middleware stays in whatever fallback state {!fail_link} left
    it in (the paper's failure handling is one-way). *)

(** Aggregates across the fabric. *)

type themis_totals = {
  nacks_seen : int;
  nacks_blocked : int;
  nacks_forwarded_valid : int;
  nacks_forwarded_underflow : int;
  compensation_sent : int;
  compensation_cancelled : int;
  queue_overwrites : int;
}

val themis_totals : t -> themis_totals option

val total_data_packets : t -> int
val total_retx_packets : t -> int
val total_nacks_generated : t -> int  (* by receiver NICs *)
val total_nacks_delivered : t -> int  (* reaching senders *)
val total_cnps : t -> int
val total_buffer_drops : t -> int
val total_ecn_marks : t -> int

val total_ooo_arrivals : t -> int
(** Sum of out-of-order data arrivals over every receive context — the
    reordering metric the arena report and the Sprinklers zero-OOO gate
    read. *)
