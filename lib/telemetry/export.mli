(** Telemetry writers: JSON-lines event dumps and CSV / pretty-printed
    metric summaries. *)

val events_to_jsonl : Telemetry.t -> string
(** One JSON object per retained event, oldest first, keys [t_ns],
    [kind], then the event's fields. *)

val write_events : path:string -> Telemetry.t -> unit

val metrics_to_csv : Metrics.t -> string
(** Header [name,labels,type,value,count,sum,mean,min,max,p50,p90,p99,p999];
    histogram rows leave [value] empty, scalar rows leave the
    distribution columns empty. *)

val write_metrics_csv : path:string -> Metrics.t -> unit

val pp_metrics : Format.formatter -> Metrics.t -> unit
val pp_events_by_kind : Format.formatter -> Telemetry.t -> unit

val labels_to_string : Metrics.labels -> string
