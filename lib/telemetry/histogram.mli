(** Log-bucketed histogram with O(1), allocation-free recording.

    Buckets grow geometrically (default growth 2^(1/8), ~9% relative
    resolution) between [min_value] and [max_value]; values below the
    range land in an underflow bucket and values above it in the last
    bucket.  Designed so [record] stays well under 100 ns and
    instrumentation can remain enabled during experiments. *)

type t

val create : ?min_value:float -> ?max_value:float -> ?growth:float -> unit -> t
(** Defaults: [min_value = 1e-6], [max_value = 1e12],
    [growth = 2^(1/8)]. *)

val record : t -> float -> unit

val count : t -> int
val sum : t -> float
val mean : t -> float
(** [nan] when empty. *)

val min_recorded : t -> float
val max_recorded : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [0, 1]: the representative value of the
    bucket holding the rank-[ceil p*count] sample, clamped to the
    observed min/max.  Monotone in [p]; [nan] when empty. *)

val merge : into:t -> t -> unit
(** Add [src]'s buckets into [into].  Raises [Invalid_argument] if the
    two histograms were created with different parameters. *)

val copy : t -> t
val reset : t -> unit

(** Bucket introspection (tests, exporters). *)

val bucket_count : t -> int
val bucket_index : t -> float -> int
val bucket_lower : t -> int -> float
val bucket_upper : t -> int -> float
val iter_buckets : t -> (lower:float -> upper:float -> count:int -> unit) -> unit
