(* Engine-driven periodic sampler.

   Each probe is a closure read once per tick; samples accumulate in a
   per-probe growable series and, when a histogram name is given, also
   feed an aggregated histogram in the current registry (e.g. the p99
   of every port's queue depth over the whole run).

   The tick reschedules itself only while the engine still has other
   pending work, so a finished simulation drains naturally instead of
   being kept alive by its own instrumentation. *)

type probe = {
  name : string;
  labels : Metrics.labels;
  read : unit -> float;
  histogram : string option;
  series : (Sim_time.t * float) Vec.t;
}

type t = {
  engine : Engine.t;
  interval : Sim_time.t;
  mutable probes : probe list;  (* newest first *)
  mutable ticks : int;
  mutable started : bool;
  mutable cb_tick : Engine.callback;
}

let interval t = t.interval
let ticks t = t.ticks

let add_probe t ?(labels = []) ?histogram ~name read =
  t.probes <-
    { name; labels; read; histogram; series = Vec.create () } :: t.probes

let sample_once t =
  t.ticks <- t.ticks + 1;
  let now = Engine.now t.engine in
  List.iter
    (fun p ->
      let v = p.read () in
      ignore (Vec.push p.series (now, v));
      (match p.histogram with
      | Some h -> Telemetry.observe ~labels:p.labels h v
      | None -> ());
      match Telemetry.metrics () with
      | Some m -> Metrics.set (Metrics.gauge m ~labels:p.labels p.name) v
      | None -> ())
    t.probes

let rec tick t =
  sample_once t;
  (* Only instrumentation left in the queue: let the run end. *)
  if Engine.pending t.engine > 0 then schedule t

and schedule t =
  ignore
    (Engine.schedule_call t.engine ~delay:t.interval t.cb_tick ~a:0 ~b:0
       ~obj:(Obj.repr ()))

let create ~engine ~interval =
  if interval <= 0 then invalid_arg "Sampler.create: interval must be positive";
  let t =
    {
      engine;
      interval;
      probes = [];
      ticks = 0;
      started = false;
      cb_tick = Engine.null_callback;
    }
  in
  t.cb_tick <- Engine.register_callback engine (fun _ _ _ -> tick t);
  t

let start t =
  if not t.started then begin
    t.started <- true;
    schedule t
  end

let series t =
  List.rev_map
    (fun p ->
      (p.name, p.labels, Array.init (Vec.length p.series) (Vec.get p.series)))
    t.probes
