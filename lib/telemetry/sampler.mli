(** Periodic snapshotting of instantaneous quantities (queue depths,
    in-flight bytes) into per-probe time series.

    Probes may be added at any time, including after [start].  Each tick
    also mirrors the latest value into a registry gauge and, when
    [histogram] is given, feeds the sample into that aggregated
    histogram of the current telemetry context.

    The sampler stops rescheduling itself once it is the only pending
    engine work, so it never prevents a run from draining. *)

type t

val create : engine:Engine.t -> interval:Sim_time.t -> t
val interval : t -> Sim_time.t
val ticks : t -> int

val add_probe :
  t -> ?labels:Metrics.labels -> ?histogram:string -> name:string ->
  (unit -> float) -> unit

val start : t -> unit
(** Schedule the first tick [interval] from now.  Idempotent. *)

val sample_once : t -> unit
(** Take one sample immediately (also used by each tick). *)

val series : t -> (string * Metrics.labels * (Sim_time.t * float) array) list
(** One entry per probe, samples in chronological order. *)
