(** Registry of named, labeled counters, gauges and histograms.

    Naming convention: lowercase snake_case, unit suffix when the metric
    has one (e.g. [fct_us], [port_queue_bytes]); labels identify the
    sub-population, e.g. [("verdict", "blocked")] on [themis_nacks].
    Registration returns a mutable handle; updating through a cached
    handle is a single store and safe on hot paths. *)

type labels = (string * string) list

type t

val create : unit -> t
val clear : t -> unit
val cardinality : t -> int

(** {2 Registration (find-or-create)}

    Raises [Invalid_argument] if the same (name, labels) was already
    registered with a different metric type. *)

type counter
type gauge

val counter : t -> ?labels:labels -> string -> counter
val gauge : t -> ?labels:labels -> string -> gauge

val histogram :
  t -> ?labels:labels -> ?min_value:float -> ?max_value:float -> string ->
  Histogram.t

(** {2 Updates} *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val set : gauge -> float -> unit
val gauge_read : gauge -> float
val observe : Histogram.t -> float -> unit

val merge_into : into:t -> t -> unit
(** Additive merge of a source registry (counters add, gauges add,
    histograms bucket-merge; missing keys are created).  Merging
    per-shard registries in shard-id order is deterministic; [snapshot]
    output is additionally independent of merge order because it sorts
    by (name, labels).  Raises [Invalid_argument] when the same key
    carries different metric types. *)

(** {2 Read-out} *)

val counter_value : t -> ?labels:labels -> string -> int
(** 0 when the counter does not exist. *)

val gauge_value : t -> ?labels:labels -> string -> float option
val histogram_value : t -> ?labels:labels -> string -> Histogram.t option

val counter_total : t -> string -> int
(** Sum over every label combination of [name]. *)

val histogram_total : t -> string -> Histogram.t option
(** Merge over every label combination of [name]. *)

type snapshot_value =
  | Counter_v of int
  | Gauge_v of float
  | Hist_v of {
      count : int;
      sum : float;
      mean : float;
      min : float;
      max : float;
      p50 : float;
      p90 : float;
      p99 : float;
      p999 : float;
    }

type row = { row_name : string; row_labels : labels; value : snapshot_value }

val snapshot : t -> row list
(** Sorted by name, then labels. *)
