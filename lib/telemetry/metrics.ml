(* Named, labeled metric registry.

   Metrics are identified by (name, canonicalized label set).  Handles
   returned by the registration functions are plain mutable records, so
   hot paths that cache a handle pay one unboxed load/store per update;
   convenience by-name accessors re-hash on every call and are meant for
   registration-time and read-out code. *)

type labels = (string * string) list

let canon labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

type counter = { mutable c : int }
type gauge = { mutable g : float }

type metric =
  | Counter of counter
  | Gauge of gauge
  | Hist of Histogram.t

type key = { name : string; labels : labels }

type t = {
  tbl : (key, metric) Hashtbl.t;
  mutable rev_keys : key list;  (* registration order, newest first *)
}

let create () = { tbl = Hashtbl.create 64; rev_keys = [] }

let clear t =
  Hashtbl.reset t.tbl;
  t.rev_keys <- []

let find_or_add t ~name ~labels ~(make : unit -> metric) ~(expect : string) =
  let key = { name; labels = canon labels } in
  match Hashtbl.find_opt t.tbl key with
  | Some m -> (key, m)
  | None ->
      let m = make () in
      Hashtbl.add t.tbl key m;
      t.rev_keys <- key :: t.rev_keys;
      ignore expect;
      (key, m)

let type_error name expect =
  invalid_arg
    (Printf.sprintf "Metrics: %s already registered with a non-%s type" name
       expect)

let counter t ?(labels = []) name =
  match
    find_or_add t ~name ~labels ~make:(fun () -> Counter { c = 0 }) ~expect:"counter"
  with
  | _, Counter c -> c
  | _, (Gauge _ | Hist _) -> type_error name "counter"

let gauge t ?(labels = []) name =
  match
    find_or_add t ~name ~labels ~make:(fun () -> Gauge { g = 0. }) ~expect:"gauge"
  with
  | _, Gauge g -> g
  | _, (Counter _ | Hist _) -> type_error name "gauge"

let histogram t ?(labels = []) ?min_value ?max_value name =
  match
    find_or_add t ~name ~labels
      ~make:(fun () -> Hist (Histogram.create ?min_value ?max_value ()))
      ~expect:"histogram"
  with
  | _, Hist h -> h
  | _, (Counter _ | Gauge _) -> type_error name "histogram"

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let value c = c.c
let set g v = g.g <- v
let gauge_read g = g.g
let observe h v = Histogram.record h v

(* Additive merge for per-shard registries.  Source keys are visited in
   the source's registration order, so merging shard registries in
   shard-id order yields one deterministic registry; export order is
   independent of it anyway ([snapshot] sorts).  Counters add, gauges
   add (exactly one shard writes any given gauge; the others hold the
   registration default 0), histograms bucket-merge. *)
let merge_into ~into src =
  List.iter
    (fun key ->
      let m = Hashtbl.find src.tbl key in
      match (m, Hashtbl.find_opt into.tbl key) with
      | Counter c, None ->
          Hashtbl.add into.tbl key (Counter { c = c.c });
          into.rev_keys <- key :: into.rev_keys
      | Counter c, Some (Counter c') -> c'.c <- c'.c + c.c
      | Gauge g, None ->
          Hashtbl.add into.tbl key (Gauge { g = g.g });
          into.rev_keys <- key :: into.rev_keys
      | Gauge g, Some (Gauge g') -> g'.g <- g'.g +. g.g
      | Hist h, None ->
          Hashtbl.add into.tbl key (Hist (Histogram.copy h));
          into.rev_keys <- key :: into.rev_keys
      | Hist h, Some (Hist h') -> Histogram.merge ~into:h' h
      | (Counter _ | Gauge _ | Hist _), Some _ ->
          invalid_arg
            (Printf.sprintf "Metrics.merge_into: %s registered with two types"
               key.name))
    (List.rev src.rev_keys)

(* --- Read-out ------------------------------------------------------- *)

let counter_value t ?(labels = []) name =
  match Hashtbl.find_opt t.tbl { name; labels = canon labels } with
  | Some (Counter c) -> c.c
  | Some (Gauge _ | Hist _) | None -> 0

let gauge_value t ?(labels = []) name =
  match Hashtbl.find_opt t.tbl { name; labels = canon labels } with
  | Some (Gauge g) -> Some g.g
  | Some (Counter _ | Hist _) | None -> None

let histogram_value t ?(labels = []) name =
  match Hashtbl.find_opt t.tbl { name; labels = canon labels } with
  | Some (Hist h) -> Some h
  | Some (Counter _ | Gauge _) | None -> None

(* Sum of all counters called [name], any labels. *)
let counter_total t name =
  Hashtbl.fold
    (fun k m acc ->
      match m with
      | Counter c when String.equal k.name name -> acc + c.c
      | Counter _ | Gauge _ | Hist _ -> acc)
    t.tbl 0

(* Merge of all histograms called [name], any labels; [None] if absent. *)
let histogram_total t name =
  Hashtbl.fold
    (fun k m acc ->
      match m with
      | Hist h when String.equal k.name name -> (
          match acc with
          | None -> Some (Histogram.copy h)
          | Some into ->
              Histogram.merge ~into h;
              Some into)
      | Hist _ | Counter _ | Gauge _ -> acc)
    t.tbl None

type snapshot_value =
  | Counter_v of int
  | Gauge_v of float
  | Hist_v of {
      count : int;
      sum : float;
      mean : float;
      min : float;
      max : float;
      p50 : float;
      p90 : float;
      p99 : float;
      p999 : float;
    }

type row = { row_name : string; row_labels : labels; value : snapshot_value }

let snapshot_metric = function
  | Counter c -> Counter_v c.c
  | Gauge g -> Gauge_v g.g
  | Hist h ->
      Hist_v
        {
          count = Histogram.count h;
          sum = Histogram.sum h;
          mean = Histogram.mean h;
          min = Histogram.min_recorded h;
          max = Histogram.max_recorded h;
          p50 = Histogram.percentile h 0.5;
          p90 = Histogram.percentile h 0.9;
          p99 = Histogram.percentile h 0.99;
          p999 = Histogram.percentile h 0.999;
        }

(* Rows sorted by name then labels; registration order breaks no ties
   because keys are unique. *)
let snapshot t =
  List.rev_map
    (fun key ->
      {
        row_name = key.name;
        row_labels = key.labels;
        value = snapshot_metric (Hashtbl.find t.tbl key);
      })
    t.rev_keys
  |> List.sort (fun a b ->
         match String.compare a.row_name b.row_name with
         | 0 -> compare a.row_labels b.row_labels
         | c -> c)

let cardinality t = Hashtbl.length t.tbl
