(** Per-domain telemetry context: a metric registry plus a ring-buffered
    typed-event sink.

    Off by default.  Recording sites guard with [enabled ()], so the
    disabled cost is one domain-local load + branch and zero
    allocation.  [enable] installs a fresh context for the calling
    domain (experiments run sequentially within a domain; the last
    enabler owns the context).  Sharded runs enable one context per
    domain and {!merge} them deterministically at the end. *)

type t

val enable : ?event_capacity:int -> unit -> t
(** Install and return a fresh context.  [event_capacity] bounds the
    retained event ring (default 65536; oldest events are overwritten,
    see {!events_dropped}).  The context is installed for the calling
    domain only: each simulation shard owns an independent context
    (DESIGN.md §14). *)

val use : t -> unit
(** Install an existing context for the calling domain — e.g. the
    {!merge} of per-shard contexts, so [Experiment.telemetry_summary]
    reads the merged view. *)

val merge : t list -> t
(** Deterministic merge in list (= shard-id) order: metric registries
    merge additively ({!Metrics.merge_into}), event streams concatenate
    and stably sort by time, per-kind counts sum.  The merged event ring
    is sized to hold every retained event, so merging never drops. *)

val disable : unit -> unit
val enabled : unit -> bool
val ctx : unit -> t option

val metrics : unit -> Metrics.t option
val metrics_exn : unit -> Metrics.t

val record : time:Sim_time.t -> Event.t -> unit
(** No-op when disabled.  Bumps the per-kind count and appends to the
    ring. *)

val events : t -> (Sim_time.t * Event.t) list
(** Retained events, oldest first. *)

val events_retained : t -> int
val events_dropped : t -> int

val events_by_kind : t -> (string * int) list
(** Total recorded per kind, including events the ring overwrote. *)

val event_count : t -> int -> int
(** By [Event.kind_index]. *)

(** {2 By-name registry updates}

    Convenience wrappers that look the metric up on every call — use on
    warm paths; cache a [Metrics] handle on hot ones.  All are no-ops
    when telemetry is disabled. *)

val incr_counter : ?labels:Metrics.labels -> string -> unit
val add_counter : ?labels:Metrics.labels -> string -> int -> unit
val observe : ?labels:Metrics.labels -> string -> float -> unit
val set_gauge : ?labels:Metrics.labels -> string -> float -> unit
