(* Global telemetry context.

   One context is current at a time (the simulator is single-threaded
   and experiments run sequentially); [enable] installs a fresh context
   and [disable] removes it.  Every recording site guards with
   [enabled ()], so the cost with telemetry off is one load + branch and
   no allocation. *)

type t = {
  metrics : Metrics.t;
  events : (Sim_time.t * Event.t) Ring.t;
  kind_counts : int array;  (* per Event.kind_index, includes overwritten *)
}

let current : t option ref = ref None
let on = ref false

let default_event_capacity = 1 lsl 16

let enable ?(event_capacity = default_event_capacity) () =
  let ctx =
    {
      metrics = Metrics.create ();
      events = Ring.create ~capacity:event_capacity;
      kind_counts = Array.make Event.kinds 0;
    }
  in
  current := Some ctx;
  on := true;
  ctx

let disable () =
  on := false;
  current := None

let enabled () = !on
let ctx () = !current

let metrics () =
  match !current with Some c -> Some c.metrics | None -> None

let metrics_exn () =
  match !current with
  | Some c -> c.metrics
  | None -> failwith "Telemetry: not enabled"

let record ~time ev =
  match !current with
  | None -> ()
  | Some c ->
      let k = Event.kind_index ev in
      c.kind_counts.(k) <- c.kind_counts.(k) + 1;
      Ring.push c.events (time, ev)

let events c = Ring.to_list c.events
let events_retained c = Ring.length c.events
let events_dropped c = Ring.dropped c.events

let events_by_kind c =
  Array.to_list
    (Array.mapi (fun i n -> (Event.kind_name_of_index i, n)) c.kind_counts)

let event_count c ev_kind_index = c.kind_counts.(ev_kind_index)

(* --- Registry conveniences (lookup per call; fine off hot paths) ----- *)

let incr_counter ?labels name =
  match !current with
  | None -> ()
  | Some c -> Metrics.incr (Metrics.counter c.metrics ?labels name)

let add_counter ?labels name n =
  match !current with
  | None -> ()
  | Some c -> Metrics.add (Metrics.counter c.metrics ?labels name) n

let observe ?labels name v =
  match !current with
  | None -> ()
  | Some c -> Metrics.observe (Metrics.histogram c.metrics ?labels name) v

let set_gauge ?labels name v =
  match !current with
  | None -> ()
  | Some c -> Metrics.set (Metrics.gauge c.metrics ?labels name) v
