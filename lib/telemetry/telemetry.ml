(* Per-domain telemetry context.

   One context is current at a time per domain (a simulation shard is
   single-threaded internally; experiments run sequentially within a
   domain); [enable] installs a fresh context and [disable] removes it.
   Every recording site guards with [enabled ()], so the cost with
   telemetry off is one domain-local load + branch and no allocation.

   Sharded runs give every domain its own context and merge them in
   shard-id order at the end ([merge]), which is deterministic because
   metric export sorts by (name, labels) and counters/histograms are
   additive. *)

type t = {
  metrics : Metrics.t;
  events : (Sim_time.t * Event.t) Ring.t;
  kind_counts : int array;  (* per Event.kind_index, includes overwritten *)
}

type slot = { mutable cur : t option }

let slot_key = Domain.DLS.new_key (fun () -> { cur = None })

let default_event_capacity = 1 lsl 16

let make ?(event_capacity = default_event_capacity) () =
  {
    metrics = Metrics.create ();
    events = Ring.create ~capacity:event_capacity;
    kind_counts = Array.make Event.kinds 0;
  }

let enable ?event_capacity () =
  let ctx = make ?event_capacity () in
  (Domain.DLS.get slot_key).cur <- Some ctx;
  ctx

let use ctx = (Domain.DLS.get slot_key).cur <- Some ctx
let disable () = (Domain.DLS.get slot_key).cur <- None

let enabled () =
  match (Domain.DLS.get slot_key).cur with None -> false | Some _ -> true

let ctx () = (Domain.DLS.get slot_key).cur

let metrics () =
  match (Domain.DLS.get slot_key).cur with
  | Some c -> Some c.metrics
  | None -> None

let metrics_exn () =
  match (Domain.DLS.get slot_key).cur with
  | Some c -> c.metrics
  | None -> failwith "Telemetry: not enabled"

let record ~time ev =
  match (Domain.DLS.get slot_key).cur with
  | None -> ()
  | Some c ->
      let k = Event.kind_index ev in
      c.kind_counts.(k) <- c.kind_counts.(k) + 1;
      Ring.push c.events (time, ev)

let events c = Ring.to_list c.events
let events_retained c = Ring.length c.events
let events_dropped c = Ring.dropped c.events

let events_by_kind c =
  Array.to_list
    (Array.mapi (fun i n -> (Event.kind_name_of_index i, n)) c.kind_counts)

let event_count c ev_kind_index = c.kind_counts.(ev_kind_index)

(* Deterministic merge, in list (= shard-id) order: registries merge
   additively key by key, event streams concatenate then stably sort by
   time (ties keep shard order), per-kind counts sum.  The merged ring
   is sized to hold everything, so merging never overwrites. *)
let merge ctxs =
  let all_events =
    List.concat_map (fun c -> Ring.to_list c.events) ctxs
    |> List.stable_sort (fun (ta, _) (tb, _) -> Sim_time.compare ta tb)
  in
  let capacity =
    Stdlib.max default_event_capacity
      (let n = List.length all_events in
       if n = 0 then 1 else n)
  in
  let merged = make ~event_capacity:capacity () in
  List.iter
    (fun c ->
      Metrics.merge_into ~into:merged.metrics c.metrics;
      Array.iteri
        (fun i n -> merged.kind_counts.(i) <- merged.kind_counts.(i) + n)
        c.kind_counts)
    ctxs;
  List.iter (fun ev -> Ring.push merged.events ev) all_events;
  merged

(* --- Registry conveniences (lookup per call; fine off hot paths) ----- *)

let incr_counter ?labels name =
  match (Domain.DLS.get slot_key).cur with
  | None -> ()
  | Some c -> Metrics.incr (Metrics.counter c.metrics ?labels name)

let add_counter ?labels name n =
  match (Domain.DLS.get slot_key).cur with
  | None -> ()
  | Some c -> Metrics.add (Metrics.counter c.metrics ?labels name) n

let observe ?labels name v =
  match (Domain.DLS.get slot_key).cur with
  | None -> ()
  | Some c -> Metrics.observe (Metrics.histogram c.metrics ?labels name) v

let set_gauge ?labels name v =
  match (Domain.DLS.get slot_key).cur with
  | None -> ()
  | Some c -> Metrics.set (Metrics.gauge c.metrics ?labels name) v
