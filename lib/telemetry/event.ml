(* Typed data-plane events.

   One constructor per observable decision the paper's evaluation cares
   about; hot paths construct these only when telemetry is enabled, so
   the disabled cost is a single branch. *)

type drop_reason = Buffer_full | Link_down | Unreachable | Injected

let drop_reason_to_string = function
  | Buffer_full -> "buffer-full"
  | Link_down -> "link-down"
  | Unreachable -> "unreachable"
  | Injected -> "injected"

type rate_cause = Cnp | Nack | Timeout

let rate_cause_to_string = function
  | Cnp -> "cnp"
  | Nack -> "nack"
  | Timeout -> "timeout"

type t =
  | Packet_drop of {
      loc : string;  (* port label or "sw<node>" *)
      conn : Flow_id.t;
      psn : int;  (* -1 for control packets *)
      reason : drop_reason;
    }
  | Nack_blocked of { node : int; conn : Flow_id.t; epsn : int; tpsn : int }
  | Nack_passed of {
      node : int;
      conn : Flow_id.t;
      epsn : int;
      underflow : bool;  (* forwarded because the ring could not name a tPSN *)
    }
  | Nack_compensated of { node : int; conn : Flow_id.t; epsn : int }
  | Retransmission of { conn : Flow_id.t; psn : int }
  | Rto_timeout of { conn : Flow_id.t; una : int }
  | Rate_change of { conn : Flow_id.t; gbps : float; cause : rate_cause }
  | Ecn_mark of { node : int; conn : Flow_id.t; queue_bytes : int }
  | Link_failure of { link_id : int }
  | Flow_complete of { conn : Flow_id.t; bytes : int; fct_us : float }

let kinds = 10

let kind_index = function
  | Packet_drop _ -> 0
  | Nack_blocked _ -> 1
  | Nack_passed _ -> 2
  | Nack_compensated _ -> 3
  | Retransmission _ -> 4
  | Rto_timeout _ -> 5
  | Rate_change _ -> 6
  | Ecn_mark _ -> 7
  | Link_failure _ -> 8
  | Flow_complete _ -> 9

let kind_name_of_index = function
  | 0 -> "packet_drop"
  | 1 -> "nack_blocked"
  | 2 -> "nack_passed"
  | 3 -> "nack_compensated"
  | 4 -> "retransmission"
  | 5 -> "rto_timeout"
  | 6 -> "rate_change"
  | 7 -> "ecn_mark"
  | 8 -> "link_failure"
  | 9 -> "flow_complete"
  | _ -> invalid_arg "Event.kind_name_of_index"

let kind_name t = kind_name_of_index (kind_index t)

(* --- JSON ------------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

type field = S of string | I of int | F of float | B of bool

let fields = function
  | Packet_drop { loc; conn; psn; reason } ->
      [
        ("loc", S loc);
        ("conn", S (Format.asprintf "%a" Flow_id.pp conn));
        ("psn", I psn);
        ("reason", S (drop_reason_to_string reason));
      ]
  | Nack_blocked { node; conn; epsn; tpsn } ->
      [
        ("node", I node);
        ("conn", S (Format.asprintf "%a" Flow_id.pp conn));
        ("epsn", I epsn);
        ("tpsn", I tpsn);
      ]
  | Nack_passed { node; conn; epsn; underflow } ->
      [
        ("node", I node);
        ("conn", S (Format.asprintf "%a" Flow_id.pp conn));
        ("epsn", I epsn);
        ("underflow", B underflow);
      ]
  | Nack_compensated { node; conn; epsn } ->
      [
        ("node", I node);
        ("conn", S (Format.asprintf "%a" Flow_id.pp conn));
        ("epsn", I epsn);
      ]
  | Retransmission { conn; psn } ->
      [ ("conn", S (Format.asprintf "%a" Flow_id.pp conn)); ("psn", I psn) ]
  | Rto_timeout { conn; una } ->
      [ ("conn", S (Format.asprintf "%a" Flow_id.pp conn)); ("una", I una) ]
  | Rate_change { conn; gbps; cause } ->
      [
        ("conn", S (Format.asprintf "%a" Flow_id.pp conn));
        ("gbps", F gbps);
        ("cause", S (rate_cause_to_string cause));
      ]
  | Ecn_mark { node; conn; queue_bytes } ->
      [
        ("node", I node);
        ("conn", S (Format.asprintf "%a" Flow_id.pp conn));
        ("queue_bytes", I queue_bytes);
      ]
  | Link_failure { link_id } -> [ ("link_id", I link_id) ]
  | Flow_complete { conn; bytes; fct_us } ->
      [
        ("conn", S (Format.asprintf "%a" Flow_id.pp conn));
        ("bytes", I bytes);
        ("fct_us", F fct_us);
      ]

let add_json_field buf (k, v) =
  Buffer.add_char buf '"';
  Buffer.add_string buf k;
  Buffer.add_string buf "\":";
  match v with
  | S s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (json_escape s);
      Buffer.add_char buf '"'
  | I i -> Buffer.add_string buf (string_of_int i)
  | F f -> Buffer.add_string buf (Printf.sprintf "%g" f)
  | B b -> Buffer.add_string buf (if b then "true" else "false")

let to_json ~time t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "{\"t_ns\":";
  Buffer.add_string buf (string_of_int time);
  Buffer.add_string buf ",\"kind\":\"";
  Buffer.add_string buf (kind_name t);
  Buffer.add_char buf '"';
  List.iter
    (fun f ->
      Buffer.add_char buf ',';
      add_json_field buf f)
    (fields t);
  Buffer.add_char buf '}';
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "%s" (kind_name t);
  List.iter
    (fun (k, v) ->
      match v with
      | S s -> Format.fprintf ppf " %s=%s" k s
      | I i -> Format.fprintf ppf " %s=%d" k i
      | F f -> Format.fprintf ppf " %s=%g" k f
      | B b -> Format.fprintf ppf " %s=%b" k b)
    (fields t)
