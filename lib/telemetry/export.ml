(* Writers: JSON-lines event dumps, CSV metric summaries, and a
   pretty-printed table for terminal use. *)

let write_string path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc s)

(* --- Events ----------------------------------------------------------- *)

let events_to_jsonl ctx =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (time, ev) ->
      Buffer.add_string buf (Event.to_json ~time ev);
      Buffer.add_char buf '\n')
    (Telemetry.events ctx);
  Buffer.contents buf

let write_events ~path ctx = write_string path (events_to_jsonl ctx)

(* --- Metrics ---------------------------------------------------------- *)

let labels_to_string labels =
  String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let csv_quote s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let metrics_csv_header =
  "name,labels,type,value,count,sum,mean,min,max,p50,p90,p99,p999"

let fl v = if Float.is_nan v then "" else Printf.sprintf "%g" v

let metrics_to_csv registry =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf metrics_csv_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun { Metrics.row_name; row_labels; value } ->
      Buffer.add_string buf (csv_quote row_name);
      Buffer.add_char buf ',';
      Buffer.add_string buf (csv_quote (labels_to_string row_labels));
      (match value with
      | Metrics.Counter_v c ->
          Buffer.add_string buf (Printf.sprintf ",counter,%d,,,,,,,,," c)
      | Metrics.Gauge_v g ->
          Buffer.add_string buf (Printf.sprintf ",gauge,%s,,,,,,,,," (fl g))
      | Metrics.Hist_v h ->
          Buffer.add_string buf
            (Printf.sprintf ",histogram,,%d,%s,%s,%s,%s,%s,%s,%s,%s" h.count
               (fl h.sum) (fl h.mean) (fl h.min) (fl h.max) (fl h.p50)
               (fl h.p90) (fl h.p99) (fl h.p999)));
      Buffer.add_char buf '\n')
    (Metrics.snapshot registry);
  Buffer.contents buf

let write_metrics_csv ~path registry = write_string path (metrics_to_csv registry)

let pp_metrics ppf registry =
  let rows = Metrics.snapshot registry in
  if rows = [] then Format.fprintf ppf "  (no metrics recorded)@."
  else begin
    Format.fprintf ppf "  %-32s %-38s %14s@." "metric" "labels" "value";
    List.iter
      (fun { Metrics.row_name; row_labels; value } ->
        let labels = labels_to_string row_labels in
        match value with
        | Metrics.Counter_v c ->
            Format.fprintf ppf "  %-32s %-38s %14d@." row_name labels c
        | Metrics.Gauge_v g ->
            Format.fprintf ppf "  %-32s %-38s %14.2f@." row_name labels g
        | Metrics.Hist_v h ->
            Format.fprintf ppf
              "  %-32s %-38s n=%-8d mean=%-10.2f p50=%-10.2f p99=%-10.2f p99.9=%-10.2f max=%-10.2f@."
              row_name labels h.count h.mean h.p50 h.p99 h.p999 h.max)
      rows
  end

let pp_events_by_kind ppf ctx =
  List.iter
    (fun (kind, n) ->
      if n > 0 then Format.fprintf ppf "  %-32s %14d@." kind n)
    (Telemetry.events_by_kind ctx)
