(* Log-bucketed histogram.

   Bucket 0 is the underflow bucket (values below [min_value], including
   non-positive and NaN inputs).  Bucket [i >= 1] covers
   [bound (i-1), bound i) with bound j = min_value * growth^j; the last
   bucket absorbs everything above the configured range.  Geometric
   buckets give a fixed relative error (~9% with the default growth of
   2^(1/8)) over an arbitrary dynamic range with a few hundred ints of
   state, so recording stays allocation-free and O(1). *)

type t = {
  min_value : float;
  growth : float;
  log_min : float;
  inv_log_growth : float;
  bounds : float array;  (* bounds.(j) = min_value *. growth^j *)
  buckets : int array;  (* length bounds + 2 *)
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

let default_growth = Float.pow 2. 0.125

let create ?(min_value = 1e-6) ?(max_value = 1e12) ?(growth = default_growth)
    () =
  if min_value <= 0. then invalid_arg "Histogram.create: min_value <= 0";
  if max_value <= min_value then
    invalid_arg "Histogram.create: max_value <= min_value";
  if growth <= 1. then invalid_arg "Histogram.create: growth <= 1";
  let n_bounds =
    1 + int_of_float (ceil (log (max_value /. min_value) /. log growth))
  in
  let bounds = Array.init n_bounds (fun j -> min_value *. (growth ** float_of_int j)) in
  (* Bucket 0 = (-inf, bounds.(0)); bucket i = [bounds.(i-1), bounds.(i));
     bucket n_bounds = [bounds.(n_bounds-1), inf). *)
  {
    min_value;
    growth;
    log_min = log min_value;
    inv_log_growth = 1. /. log growth;
    bounds;
    buckets = Array.make (n_bounds + 1) 0;
    count = 0;
    sum = 0.;
    vmin = infinity;
    vmax = neg_infinity;
  }

let bucket_count t = Array.length t.buckets

(* The log gives the bucket up to floating-point rounding; one
   comparison against the exact precomputed bounds on each side pins the
   boundary values deterministically. *)
let bucket_index t v =
  if not (v >= t.min_value) then 0
  else begin
    let est = 1 + int_of_float ((log v -. t.log_min) *. t.inv_log_growth) in
    let last = Array.length t.buckets - 1 in
    let i = if est >= last then last else if est < 1 then 1 else est in
    let i = if i > 1 && v < Array.unsafe_get t.bounds (i - 1) then i - 1 else i in
    if i < last && v >= Array.unsafe_get t.bounds i then i + 1 else i
  end

let bucket_lower t i = if i <= 0 then neg_infinity else t.bounds.(i - 1)

let bucket_upper t i =
  if i < 0 then neg_infinity
  else if i >= Array.length t.buckets - 1 then infinity
  else t.bounds.(i)

let record t v =
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v;
  let i = bucket_index t v in
  Array.unsafe_set t.buckets i (Array.unsafe_get t.buckets i + 1)

let count t = t.count
let sum t = t.sum
let min_recorded t = if t.count = 0 then nan else t.vmin
let max_recorded t = if t.count = 0 then nan else t.vmax
let mean t = if t.count = 0 then nan else t.sum /. float_of_int t.count

(* Representative value of a bucket: the geometric midpoint of its
   bounds, clamped into the observed [vmin, vmax] so extreme quantiles
   stay within the recorded range. *)
let representative t i =
  let v =
    if i = 0 then t.min_value
    else
      let lo = bucket_lower t i in
      let hi = bucket_upper t i in
      if Float.is_finite hi then sqrt (lo *. hi) else lo
  in
  Float.max t.vmin (Float.min t.vmax v)

let percentile t p =
  if t.count = 0 then nan
  else begin
    let p = Float.max 0. (Float.min 1. p) in
    let rank =
      Stdlib.max 1 (int_of_float (ceil (p *. float_of_int t.count)))
    in
    let i = ref 0 and cum = ref 0 in
    let n = Array.length t.buckets in
    (try
       while !i < n do
         cum := !cum + t.buckets.(!i);
         if !cum >= rank then raise Exit;
         incr i
       done
     with Exit -> ());
    representative t (Stdlib.min !i (n - 1))
  end

let same_shape a b =
  a.min_value = b.min_value
  && a.growth = b.growth
  && Array.length a.buckets = Array.length b.buckets

let merge ~into src =
  if not (same_shape into src) then
    invalid_arg "Histogram.merge: incompatible bucket layouts";
  Array.iteri (fun i c -> into.buckets.(i) <- into.buckets.(i) + c) src.buckets;
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.vmin < into.vmin then into.vmin <- src.vmin;
  if src.vmax > into.vmax then into.vmax <- src.vmax

let copy t = { t with bounds = t.bounds; buckets = Array.copy t.buckets }

let reset t =
  Array.fill t.buckets 0 (Array.length t.buckets) 0;
  t.count <- 0;
  t.sum <- 0.;
  t.vmin <- infinity;
  t.vmax <- neg_infinity

let iter_buckets t f =
  Array.iteri
    (fun i c -> if c > 0 then f ~lower:(bucket_lower t i) ~upper:(bucket_upper t i) ~count:c)
    t.buckets
