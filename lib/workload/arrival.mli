(** Open-loop arrival processes.

    Arrivals are generated independently of completions (open loop): the
    target rate is [load_pct]% of the fabric's bisection bandwidth
    divided by the mean flow size, so a run offers a known fraction of
    the network's capacity regardless of how the transport behaves.

    [Poisson] draws iid exponential gaps.  [Onoff] alternates
    exponentially-distributed ON and OFF periods (means [on_us] /
    [off_us]) and compresses all arrivals into ON bursts scaled so the
    long-run rate still matches the target load — the bursty,
    synchronized pattern that stresses spraying under transient
    congestion. *)

type process = Poisson | Onoff of { on_us : int; off_us : int }

val process_to_string : process -> string
(** ["poisson"] or ["onoff:ON_US:OFF_US"]; exact round-trip. *)

val process_of_string : string -> (process, string) result
val pp_process : Format.formatter -> process -> unit

val flows_per_sec :
  load_pct:int -> capacity_bps:float -> mean_flow_bytes:float -> float
(** [load/100 x capacity / (8 x mean_bytes)] — the open-loop rate. *)

type t
(** Stateful gap generator (tracks the ON/OFF phase). *)

val create :
  process:process ->
  load_pct:int ->
  capacity_bps:float ->
  mean_flow_bytes:float ->
  t

val mean_gap_ns : t -> float
(** Long-run mean inter-arrival gap in nanoseconds. *)

val next_gap_ns : t -> Rng.t -> int
(** Nanoseconds until the next arrival; [>= 1].  Consumes the given RNG
    in call order (use a dedicated arrival stream). *)
