(** Flow-completion-time accounting by size class.

    Backed by log-bucketed {!Histogram}s, so recording a 10M-flow run
    costs O(1) memory and O(1) per flow — unlike {!Stats.Summary}, which
    retains every sample.  Classes: small [<= 10 kB], medium [<= 100 kB],
    large [<= 1 MB], huge [> 1 MB]. *)

val n_classes : int
val class_of_bytes : int -> int
val class_name : int -> string

type t

val create : unit -> t
val record : t -> bytes:int -> fct_us:float -> unit
val count : t -> int
val class_count : t -> int -> int

val metrics : t -> (string * float) list
(** Flat metric list for campaign results: overall
    [flows]/[fct_p50_us]/[fct_p99_us]/[fct_p999_us]/[fct_mean_us] plus
    the same per class under a [<class>_] prefix.  Empty-histogram
    percentiles read as [0.] (never NaN). *)
