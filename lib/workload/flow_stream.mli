(** Lazy open-loop flow stream with O(active-flows) memory.

    Only the {e next} arrival is ever scheduled; a flow's (src, dst,
    size) triple is drawn from the pure per-flow substream
    [Rng.substream ~seed ~index] at the moment its arrival event fires,
    posted, and fully released on completion.  Idle QPs are pooled per
    (src, dst) pair so connection state is bounded by the concurrency
    high-water mark, not the total flow count — a 1M–10M-flow run stays
    O(active flows) resident.

    [stats.live_hwm] is the measured high-water mark of concurrently
    live flows — the acceptance metric of the streaming design. *)

type stats = {
  mutable offered : int;  (** Flows materialized so far. *)
  mutable completed : int;
  mutable live : int;
  mutable live_hwm : int;  (** Peak of [live] over the run. *)
  mutable qps_created : int;  (** Distinct QPs ever connected. *)
  mutable bytes_offered : int;
  mutable last_completion_ns : Sim_time.t;
}

type t

val start :
  engine:Engine.t ->
  connect:(src:int -> dst:int -> Rnic.qp) ->
  n_hosts:int ->
  dist:Flow_size.dist ->
  arrival:Arrival.t ->
  seed:int ->
  n_flows:int ->
  fct:Fct.t ->
  unit ->
  t
(** Schedules the first arrival (one [Arrival] gap from now) and returns
    immediately; the stream then self-perpetuates on the engine. *)

val stats : t -> stats
val all_done : t -> bool
(** All [n_flows] flows have completed. *)
