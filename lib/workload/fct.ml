(* Size-class boundaries (inclusive upper bounds, bytes). *)
let class_names = [| "small"; "medium"; "large"; "huge" |]
let class_bounds = [| 10_000; 100_000; 1_000_000; max_int |]
let n_classes = Array.length class_names

let class_of_bytes bytes =
  let rec go i = if bytes <= class_bounds.(i) then i else go (i + 1) in
  go 0

let class_name i = class_names.(i)

type t = {
  hists : Histogram.t array;  (** Per class; FCT in microseconds. *)
  overall : Histogram.t;
  counts : int array;
  mutable total : int;
}

(* FCTs span ~1 us .. seconds; the log-bucketed histogram keeps memory
   O(1) per class no matter how many flows are recorded. *)
let mk () = Histogram.create ~min_value:0.1 ~max_value:1e9 ()

let create () =
  {
    hists = Array.init n_classes (fun _ -> mk ());
    overall = mk ();
    counts = Array.make n_classes 0;
    total = 0;
  }

let record t ~bytes ~fct_us =
  let c = class_of_bytes bytes in
  t.counts.(c) <- t.counts.(c) + 1;
  t.total <- t.total + 1;
  Histogram.record t.hists.(c) fct_us;
  Histogram.record t.overall fct_us

let count t = t.total
let class_count t i = t.counts.(i)

let finite f = if Float.is_nan f then 0. else f

let hist_metrics prefix h count =
  [
    (prefix ^ "flows", float_of_int count);
    (prefix ^ "fct_p50_us", finite (Histogram.percentile h 0.5));
    (prefix ^ "fct_p99_us", finite (Histogram.percentile h 0.99));
    (prefix ^ "fct_p999_us", finite (Histogram.percentile h 0.999));
  ]

let metrics t =
  hist_metrics "" t.overall t.total
  @ [ ("fct_mean_us", finite (Histogram.mean t.overall)) ]
  @ List.concat
      (List.init n_classes (fun i ->
           hist_metrics (class_names.(i) ^ "_") t.hists.(i) t.counts.(i)))
