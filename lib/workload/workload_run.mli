(** Runs one workload spec under one routing scheme, end to end.

    Builds the network, installs the compiled failure script, overlays
    the collective jobs ({!Workload.launch_group} over {!Runner}s),
    starts the open-loop {!Flow_stream}, and drives the engine in
    bounded steps until everything completes or the spec's deadline
    passes.  Resets all ambient global state (packet uids, pools, flow
    interner, telemetry) on entry, so a (spec, scheme) run is a pure
    function — the property the campaign serial==forked oracle checks. *)

exception Bad_workload of string

type result = {
  r_scheme : string;
  r_load_pct : int;
  r_target_flows : int;
  r_offered : int;  (** Arrivals that fired before the deadline. *)
  r_completed : int;
  r_live_hwm : int;  (** Peak concurrently-live open-loop flows. *)
  r_qps_created : int;
  r_bytes_offered : int;
  r_fct : (string * float) list;  (** {!Fct.metrics}. *)
  r_colls_total : int;
  r_colls_done : int;
  r_coll_tail_us : float;  (** Slowest collective completion (or deadline). *)
  r_data_packets : int;
  r_retx_packets : int;
  r_buffer_drops : int;
  r_storm_drops : int;
  r_end_us : float;
}

val capacity_bps : Workload_spec.t -> float
(** Bisection bandwidth of the spec's fabric (the load-factor base). *)

val run : scheme:string -> Workload_spec.t -> result
(** Raises {!Bad_workload} on an invalid spec or unknown scheme. *)

val metrics : result -> (string * float) list
(** Flat campaign-result metric list (counts as floats). *)

val pp : Format.formatter -> result -> unit
