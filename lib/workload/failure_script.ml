type storm = { s_start_ns : int; s_stop_ns : int; s_ppm : int }

type compiled = {
  link_faults : Fuzz_spec.link_fault list;
  storms : storm list;
}

let compile ~(shape : Fuzz_spec.shape) failures =
  let faults = ref [] and storms = ref [] in
  List.iter
    (fun (f : Workload_spec.failure) ->
      match f with
      | Workload_spec.Flap
          { flap_link; first_down_ns; down_for_ns; period_ns; count } ->
          for k = 0 to count - 1 do
            let down_ns = first_down_ns + (k * period_ns) in
            faults :=
              { Fuzz_spec.fault_link = flap_link;
                down_ns;
                up_ns = down_ns + down_for_ns }
              :: !faults
          done
      | Workload_spec.Spine_down { spine; at_ns } ->
          let n_leaves =
            match shape with
            | Fuzz_spec.Ls { n_leaves; _ } -> n_leaves
            | Fuzz_spec.Ft _ ->
                invalid_arg "Failure_script: spine death on a fat tree"
          in
          for leaf = 0 to n_leaves - 1 do
            faults :=
              {
                Fuzz_spec.fault_link = Fuzz_spec.fabric_link_id shape ~leaf ~spine;
                down_ns = at_ns;
                up_ns = 0;
              }
              :: !faults
          done
      | Workload_spec.Drop_storm { storm_start_ns; storm_dur_ns; storm_ppm } ->
          storms :=
            {
              s_start_ns = storm_start_ns;
              s_stop_ns = storm_start_ns + storm_dur_ns;
              s_ppm = storm_ppm;
            }
            :: !storms)
    failures;
  (* Sort for a deterministic installation order independent of the
     declaration order in the spec. *)
  {
    link_faults = List.sort compare (List.rev !faults);
    storms = List.sort compare (List.rev !storms);
  }

(* A storm is the fuzz fault layer's iid drop model confined to a time
   window; build the minimal spec the installer reads its knobs from. *)
let storm_fault_spec ~(shape : Fuzz_spec.shape) ~seed ~ppm =
  {
    Fuzz_spec.seed;
    shape;
    gbn = false;
    queue_factor_pct = 100;
    per_port_kb = 9216;
    jitter_ns = 0;
    drop_ppm = ppm;
    corrupt_ppm = 0;
    dup_ppm = 0;
    delay_ppm = 0;
    delay_max_ns = 1;
    shrink_pathset = false;
    deadline_ns = 1;
    schemes = [];
    transfers = [];
    link_faults = [];
    slow_spine = None;
  }

let schedule ~net ~(shape : Fuzz_spec.shape) ~seed compiled =
  let engine = Network.engine net in
  List.iter
    (fun (lf : Fuzz_spec.link_fault) ->
      ignore
        (Engine.schedule_at engine ~time:lf.Fuzz_spec.down_ns (fun () ->
             Network.fail_link net ~link_id:lf.Fuzz_spec.fault_link));
      if lf.Fuzz_spec.up_ns > lf.Fuzz_spec.down_ns then
        ignore
          (Engine.schedule_at engine ~time:lf.Fuzz_spec.up_ns (fun () ->
               Network.restore_link net ~link_id:lf.Fuzz_spec.fault_link)))
    compiled.link_faults;
  List.mapi
    (fun i storm ->
      let rng = Rng.create ~seed:(seed lxor 0x5708 lxor (i * 0x9e3779b9)) in
      Fuzz_fault.install
        ~window:(storm.s_start_ns, storm.s_stop_ns)
        ~engine ~rng
        ~spec:(storm_fault_spec ~shape ~seed ~ppm:storm.s_ppm)
        ~iter_ports:(Network.iter_ports net) ())
    compiled.storms

let storm_drops counters =
  List.fold_left
    (fun acc (c : Fuzz_fault.counters) ->
      acc + c.Fuzz_fault.drops_data + c.Fuzz_fault.drops_ctrl)
    0 counters
