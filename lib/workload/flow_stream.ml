type stats = {
  mutable offered : int;
  mutable completed : int;
  mutable live : int;
  mutable live_hwm : int;
  mutable qps_created : int;
  mutable bytes_offered : int;
  mutable last_completion_ns : Sim_time.t;
}

type t = {
  engine : Engine.t;
  connect : src:int -> dst:int -> Rnic.qp;
  n_hosts : int;
  dist : Flow_size.dist;
  arrival : Arrival.t;
  seed : int;
  n_flows : int;
  fct : Fct.t;
  stats : stats;
  (* Idle QPs by (src, dst).  The RNIC never frees connection state, so
     per-flow QPs would grow with the *total* flow count; reusing idle
     QPs bounds live connection state by the concurrency high-water mark
     per pair instead. *)
  pool : (int * int, Rnic.qp Queue.t) Hashtbl.t;
  arr_rng : Rng.t;
}

let stats t = t.stats
let all_done t = t.stats.completed >= t.n_flows

let release t ~src ~dst qp =
  let q =
    match Hashtbl.find_opt t.pool (src, dst) with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace t.pool (src, dst) q;
        q
  in
  Queue.push qp q

let acquire t ~src ~dst =
  match Hashtbl.find_opt t.pool (src, dst) with
  | Some q when not (Queue.is_empty q) -> Queue.pop q
  | _ ->
      t.stats.qps_created <- t.stats.qps_created + 1;
      t.connect ~src ~dst

(* Materialize flow [index]: all of its randomness comes from the pure
   per-flow substream, so the flow's (src, dst, size) triple is a
   function of (seed, index) alone — stable under reordering and across
   schemes. *)
let materialize t index =
  let sub = Rng.substream ~seed:t.seed ~index in
  let src = Rng.int sub t.n_hosts in
  let d = Rng.int sub (t.n_hosts - 1) in
  let dst = if d >= src then d + 1 else d in
  let bytes = Flow_size.sample t.dist sub in
  let qp = acquire t ~src ~dst in
  let s = t.stats in
  s.offered <- s.offered + 1;
  s.bytes_offered <- s.bytes_offered + bytes;
  s.live <- s.live + 1;
  if s.live > s.live_hwm then s.live_hwm <- s.live;
  let posted = Engine.now t.engine in
  Rnic.post_send qp ~bytes
    ~on_complete:(fun time ->
      s.live <- s.live - 1;
      s.completed <- s.completed + 1;
      s.last_completion_ns <- max s.last_completion_ns time;
      Fct.record t.fct ~bytes ~fct_us:(Sim_time.to_us (time - posted));
      release t ~src ~dst qp)

let rec schedule_arrival t index =
  let gap = Arrival.next_gap_ns t.arrival t.arr_rng in
  ignore
    (Engine.schedule t.engine ~delay:gap (fun () ->
         materialize t index;
         if index + 1 < t.n_flows then schedule_arrival t (index + 1)))

let start ~engine ~connect ~n_hosts ~dist ~arrival ~seed ~n_flows ~fct () =
  if n_hosts < 2 then invalid_arg "Flow_stream.start: need >= 2 hosts";
  let t =
    {
      engine;
      connect;
      n_hosts;
      dist;
      arrival;
      seed;
      n_flows;
      fct;
      stats =
        {
          offered = 0;
          completed = 0;
          live = 0;
          live_hwm = 0;
          qps_created = 0;
          bytes_offered = 0;
          last_completion_ns = 0;
        };
      pool = Hashtbl.create 64;
      arr_rng = Rng.create ~seed:(seed lxor 0x0a221a1);
    }
  in
  if n_flows > 0 then schedule_arrival t 0;
  t
