(** Flow-size samplers for the workload generator.

    Named distributions follow the published datacenter CDFs
    conventionally used in packet-spraying and load-balancing evaluations
    (web search, Hadoop, block storage), modeled as piecewise-linear CDFs
    with linear interpolation inside each segment; [Fixed] and [Uniform]
    cover microbenchmark shapes.  Sampling is driven entirely by the
    caller's {!Rng.t}, so a per-flow substream yields the same size no
    matter how many other flows were drawn before it. *)

type dist =
  | Fixed of int
  | Uniform of { lo : int; hi : int }
  | Websearch  (** Heavy-tailed: most flows small, most bytes in MBs. *)
  | Hadoop  (** RPC-dominated: half the flows under ~1 kB. *)
  | Storage  (** Bimodal: 4–8 kB metadata ops plus large reads. *)

val sample : dist -> Rng.t -> int
(** Always [>= 1] byte. *)

val mean_bytes : dist -> float
(** Analytic mean of the distribution — the denominator of the open-loop
    load-factor math (flows/s = load x capacity / (8 x mean)). *)

val max_bytes : dist -> int
(** Upper support bound (sanity checks, bench sizing). *)

val to_string : dist -> string
(** ["websearch"], ["hadoop"], ["storage"], ["fixed:N"] or
    ["uniform:LO:HI"] — integer-exact round-trip with {!of_string}. *)

val of_string : string -> (dist, string) result
val pp : Format.formatter -> dist -> unit
