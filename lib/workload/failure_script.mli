(** Compiles declarative failure scripts onto the existing fault layers.

    Link flaps and spine deaths expand to the fuzz harness's
    {!Fuzz_spec.link_fault} timeline (scheduled through
    {!Network.fail_link} / {!Network.restore_link}); drop storms become a
    time-windowed {!Fuzz_fault.install} over every port.  Compilation is
    pure and deterministic so the same spec always produces the same
    fault timeline. *)

type storm = { s_start_ns : int; s_stop_ns : int; s_ppm : int }

type compiled = {
  link_faults : Fuzz_spec.link_fault list;  (** Sorted, expanded. *)
  storms : storm list;
}

val compile : shape:Fuzz_spec.shape -> Workload_spec.failure list -> compiled

val schedule :
  net:Network.t ->
  shape:Fuzz_spec.shape ->
  seed:int ->
  compiled ->
  Fuzz_fault.counters list
(** Install everything on a built network (before running it): link
    events on the engine timeline, one windowed fault layer per storm.
    Returns the storm drop counters for end-of-run accounting. *)

val storm_drops : Fuzz_fault.counters list -> int
(** Data + control packets the storms deleted. *)
