exception Bad_workload of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad_workload s)) fmt

type result = {
  r_scheme : string;
  r_load_pct : int;
  r_target_flows : int;
  r_offered : int;
  r_completed : int;
  r_live_hwm : int;
  r_qps_created : int;
  r_bytes_offered : int;
  r_fct : (string * float) list;
  r_colls_total : int;
  r_colls_done : int;
  r_coll_tail_us : float;
  r_data_packets : int;
  r_retx_packets : int;
  r_buffer_drops : int;
  r_storm_drops : int;
  r_end_us : float;
}

let fabric_of_shape = function
  | Fuzz_spec.Ft _ -> fail "workloads run on leaf-spine shapes only"
  | Fuzz_spec.Ls
      { n_leaves; n_spines; hosts_per_leaf; host_gbps; fabric_gbps;
        link_delay_ns } ->
      {
        Leaf_spine.n_leaves;
        n_spines;
        hosts_per_leaf;
        host_bw = Rate.gbps (float_of_int host_gbps);
        fabric_bw = Rate.gbps (float_of_int fabric_gbps);
        link_delay = link_delay_ns;
      }

let capacity_bps (spec : Workload_spec.t) =
  Leaf_spine.bisection_bw (fabric_of_shape spec.Workload_spec.shape)

let schedule_of (c : Workload_spec.collective_job) =
  let one =
    match c.Workload_spec.coll with
    | "allreduce" ->
        Schedule.ring_allreduce ~ranks:c.Workload_spec.ranks
          ~bytes:c.Workload_spec.coll_bytes
    | "hd-allreduce" ->
        Schedule.halving_doubling_allreduce ~ranks:c.Workload_spec.ranks
          ~bytes:c.Workload_spec.coll_bytes
    | "alltoall" ->
        Schedule.alltoall ~ranks:c.Workload_spec.ranks
          ~bytes:c.Workload_spec.coll_bytes
    | "allgather" ->
        Schedule.ring_allgather ~ranks:c.Workload_spec.ranks
          ~bytes:c.Workload_spec.coll_bytes
    | "reduce-scatter" ->
        Schedule.ring_reduce_scatter ~ranks:c.Workload_spec.ranks
          ~bytes:c.Workload_spec.coll_bytes
    | s -> fail "unknown collective %S" s
  in
  (* Back-to-back training iterations: the step barrier of the runner
     already separates them, so repetition is plain concatenation. *)
  List.concat (List.init c.Workload_spec.iters (fun _ -> one))

(* Spread group ranks round-robin over the leaves so collective traffic
   crosses the fabric (the paper's cross-rack placement). *)
let group_members ls ~ranks =
  let n_leaves = Array.length ls.Leaf_spine.leaves in
  Array.init ranks (fun r ->
      Leaf_spine.host ls ~leaf:(r mod n_leaves) ~index:(r / n_leaves))

let run ~scheme (spec : Workload_spec.t) : result =
  (match Workload_spec.validate spec with
  | Ok () -> ()
  | Error e -> fail "invalid workload spec: %s" e);
  let scheme_v =
    match Network.scheme_of_string scheme with
    | Ok s -> s
    | Error e -> fail "bad scheme: %s" e
  in
  (* Global state hygiene: a (spec, scheme) run is a pure function, so
     the campaign determinism oracle can demand bit-equality between the
     serial and forked paths. *)
  Packet.reset_uid_counter ();
  Packet_pool.reset ();
  Flow_id.reset_interner ();
  Lb_state.reset_globals ();
  Telemetry.disable ();
  let fabric = fabric_of_shape spec.Workload_spec.shape in
  let params =
    {
      (Network.default_params ~fabric ~scheme:scheme_v) with
      Network.seed = spec.Workload_spec.wseed;
      telemetry = false;
    }
  in
  let net = Network.build params in
  let engine = Network.engine net in
  let ls = Network.fabric net in
  let n_hosts = Array.length ls.Leaf_spine.hosts in
  (* Failure script first: fault timelines exist before any traffic. *)
  let compiled =
    Failure_script.compile ~shape:spec.Workload_spec.shape
      spec.Workload_spec.failures
  in
  let storm_counters =
    Failure_script.schedule ~net ~shape:spec.Workload_spec.shape
      ~seed:spec.Workload_spec.wseed compiled
  in
  (* Collective overlays. *)
  let colls = Array.of_list spec.Workload_spec.colls in
  let coll_done = Array.make (Array.length colls) None in
  Array.iteri
    (fun i c ->
      let members = group_members ls ~ranks:c.Workload_spec.ranks in
      let schedule = schedule_of c in
      ignore
        (Engine.schedule_at engine ~time:c.Workload_spec.coll_start_ns
           (fun () ->
             ignore
               (Workload.launch_group ~net ~members ~schedule
                  ~on_complete:(fun ~group time ->
                    coll_done.(group) <- Some time)
                  ~group:i))))
    colls;
  (* Open-loop stream. *)
  let fct = Fct.create () in
  let arrival =
    Arrival.create ~process:spec.Workload_spec.arrival
      ~load_pct:spec.Workload_spec.load_pct
      ~capacity_bps:(Leaf_spine.bisection_bw fabric)
      ~mean_flow_bytes:(Flow_size.mean_bytes spec.Workload_spec.dist)
  in
  let stream =
    Flow_stream.start ~engine
      ~connect:(fun ~src ~dst -> Network.connect net ~src ~dst)
      ~n_hosts ~dist:spec.Workload_spec.dist ~arrival
      ~seed:spec.Workload_spec.wseed ~n_flows:spec.Workload_spec.n_flows ~fct ()
  in
  let colls_finished () = Array.for_all Option.is_some coll_done in
  let deadline = spec.Workload_spec.deadline_ns in
  let step = Sim_time.ms 5 in
  let rec loop () =
    if
      (not (Flow_stream.all_done stream && colls_finished ()))
      && Engine.now engine < deadline
    then begin
      Network.run net ~until:(min deadline (Engine.now engine + step));
      loop ()
    end
  in
  loop ();
  if Flow_stream.all_done stream && colls_finished () then
    (* Settle in-flight ACKs and post-completion control traffic. *)
    Network.run net ~until:(Engine.now engine + Sim_time.ms 3);
  let stats = Flow_stream.stats stream in
  let coll_tail_us =
    Array.fold_left
      (fun acc d ->
        match d with
        | Some t -> Stdlib.max acc (Sim_time.to_us t)
        | None -> Sim_time.to_us deadline)
      0. coll_done
  in
  let end_us =
    Stdlib.max
      (Sim_time.to_us stats.Flow_stream.last_completion_ns)
      (if Array.length colls = 0 then 0. else coll_tail_us)
  in
  {
    r_scheme = scheme;
    r_load_pct = spec.Workload_spec.load_pct;
    r_target_flows = spec.Workload_spec.n_flows;
    r_offered = stats.Flow_stream.offered;
    r_completed = stats.Flow_stream.completed;
    r_live_hwm = stats.Flow_stream.live_hwm;
    r_qps_created = stats.Flow_stream.qps_created;
    r_bytes_offered = stats.Flow_stream.bytes_offered;
    r_fct = Fct.metrics fct;
    r_colls_total = Array.length colls;
    r_colls_done =
      Array.fold_left
        (fun acc d -> if Option.is_some d then acc + 1 else acc)
        0 coll_done;
    r_coll_tail_us = (if Array.length colls = 0 then 0. else coll_tail_us);
    r_data_packets = Network.total_data_packets net;
    r_retx_packets = Network.total_retx_packets net;
    r_buffer_drops = Network.total_buffer_drops net;
    r_storm_drops = Failure_script.storm_drops storm_counters;
    r_end_us = end_us;
  }

let metrics (r : result) =
  let i = float_of_int in
  [
    ("load_pct", i r.r_load_pct);
    ("target_flows", i r.r_target_flows);
    ("offered", i r.r_offered);
    ("completed", i r.r_completed);
    ("live_hwm", i r.r_live_hwm);
    ("qps_created", i r.r_qps_created);
    ("bytes_offered", i r.r_bytes_offered);
    ("colls_total", i r.r_colls_total);
    ("colls_done", i r.r_colls_done);
    ("coll_tail_us", r.r_coll_tail_us);
    ("data_packets", i r.r_data_packets);
    ("retx_packets", i r.r_retx_packets);
    ("buffer_drops", i r.r_buffer_drops);
    ("storm_drops", i r.r_storm_drops);
    ("end_us", r.r_end_us);
  ]
  @ r.r_fct

let pp ppf r =
  Format.fprintf ppf
    "@[<v>%s @@ %d%%: %d/%d flows (hwm %d, %d qps), colls %d/%d tail %.1f us@,\
     data %d retx %d drops %d storm %d, end %.1f us@]"
    r.r_scheme r.r_load_pct r.r_completed r.r_offered r.r_live_hwm
    r.r_qps_created r.r_colls_done r.r_colls_total r.r_coll_tail_us
    r.r_data_packets r.r_retx_packets r.r_buffer_drops r.r_storm_drops
    r.r_end_us
