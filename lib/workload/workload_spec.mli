(** Workload scenario specifications.

    A spec is the complete description of one production-style scenario:
    fabric shape (reusing the {!Fuzz_spec.shape} grammar), a flow-size
    distribution, an open-loop arrival process with a target load factor,
    optional collective-job overlays, and a declarative failure script.
    Every field is an integer, so [to_string]/[of_string] round-trip
    {e exactly} and a printed spec is a one-line reproducer:

    {v dune exec bin/themis_workload_cli.exe -- run --spec '<spec>' v}

    [of_string "preset:<name>"] resolves a named preset ({!preset_names})
    the campaign presets build on. *)

type collective_job = {
  coll : string;  (** allreduce / hd-allreduce / alltoall / ... *)
  ranks : int;
  coll_bytes : int;  (** Total payload per iteration. *)
  iters : int;  (** Back-to-back iterations (training steps). *)
  coll_start_ns : int;
}

type failure =
  | Flap of {
      flap_link : int;  (** Fabric link id ({!Fuzz_spec.fabric_link_id}). *)
      first_down_ns : int;
      down_for_ns : int;
      period_ns : int;  (** Gap between consecutive down edges. *)
      count : int;
    }
  | Spine_down of { spine : int; at_ns : int }
      (** Kills every leaf uplink of one spine, permanently. *)
  | Drop_storm of { storm_start_ns : int; storm_dur_ns : int; storm_ppm : int }
      (** Random data+ctrl drops at [storm_ppm] during the window. *)

type t = {
  wseed : int;
  shape : Fuzz_spec.shape;  (** Leaf-spine only. *)
  dist : Flow_size.dist;
  arrival : Arrival.process;
  load_pct : int;  (** Percent of bisection bandwidth offered. *)
  n_flows : int;  (** Open-loop flows to generate (0 = overlay only). *)
  colls : collective_job list;
  failures : failure list;
  deadline_ns : int;
}

val equal : t -> t -> bool
val colls_known : string list

val validate : t -> (unit, string) result
(** Structural checks: leaf-spine shape, load in (0, 200], collective
    ranks fit the fabric, flap/spine/storm parameters sane and unable to
    disconnect any host permanently on their own. *)

val to_string : t -> string
val of_string : string -> (t, string) result
(** Inverse of [to_string]; also accepts ["preset:<name>"].  Parsed specs
    are validated. *)

val small_fabric : Fuzz_spec.shape
(** The 2x2x4 / 25 Gbps leaf-spine the presets (and the streaming
    bench) run on. *)

val preset : string -> t option
val preset_names : string list
(** ["mix"] (websearch + allreduce overlay), ["sweep"] (hadoop open-loop,
    load swept by the campaign axis), ["failures"] (ON/OFF bursts under
    link flaps, a drop storm and a spine death). *)

val pp : Format.formatter -> t -> unit
