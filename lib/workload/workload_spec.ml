type collective_job = {
  coll : string;
  ranks : int;
  coll_bytes : int;
  iters : int;
  coll_start_ns : int;
}

type failure =
  | Flap of {
      flap_link : int;
      first_down_ns : int;
      down_for_ns : int;
      period_ns : int;
      count : int;
    }
  | Spine_down of { spine : int; at_ns : int }
  | Drop_storm of { storm_start_ns : int; storm_dur_ns : int; storm_ppm : int }

type t = {
  wseed : int;
  shape : Fuzz_spec.shape;
  dist : Flow_size.dist;
  arrival : Arrival.process;
  load_pct : int;
  n_flows : int;
  colls : collective_job list;
  failures : failure list;
  deadline_ns : int;
}

let equal = ( = )

let colls_known =
  [ "allreduce"; "hd-allreduce"; "alltoall"; "allgather"; "reduce-scatter" ]

(* ------------------------------------------------------------------ *)
(* Serialization: one line, all-integer fields, exact round-trip (the
   fz1/cp1 conventions). *)

let coll_to_string c =
  Printf.sprintf "%s:%d:%d:%d@%d" c.coll c.ranks c.coll_bytes c.iters
    c.coll_start_ns

let failure_to_string = function
  | Flap { flap_link; first_down_ns; down_for_ns; period_ns; count } ->
      Printf.sprintf "flap:%d:%d:%d:%d:%d" flap_link first_down_ns down_for_ns
        period_ns count
  | Spine_down { spine; at_ns } -> Printf.sprintf "spine:%d:%d" spine at_ns
  | Drop_storm { storm_start_ns; storm_dur_ns; storm_ppm } ->
      Printf.sprintf "storm:%d:%d:%d" storm_start_ns storm_dur_ns storm_ppm

let to_string t =
  Printf.sprintf "wl1;seed=%d;shape=%s;dist=%s;arr=%s;load=%d;flows=%d;colls=%s;faults=%s;dl=%d"
    t.wseed
    (Fuzz_spec.shape_to_string t.shape)
    (Flow_size.to_string t.dist)
    (Arrival.process_to_string t.arrival)
    t.load_pct t.n_flows
    (String.concat "," (List.map coll_to_string t.colls))
    (String.concat "," (List.map failure_to_string t.failures))
    t.deadline_ns

let ( let* ) = Result.bind

let int_of s ~what =
  match int_of_string_opt (String.trim s) with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "bad integer %S in %s" s what)

let split_nonempty sep s =
  if String.trim s = "" then [] else String.split_on_char sep s

let rec map_result f = function
  | [] -> Ok []
  | x :: xs ->
      let* y = f x in
      let* ys = map_result f xs in
      Ok (y :: ys)

let coll_of_string s =
  match String.split_on_char '@' s with
  | [ head; start_s ] -> (
      match String.split_on_char ':' head with
      | [ coll; ranks_s; bytes_s; iters_s ] ->
          let* ranks = int_of ranks_s ~what:"coll" in
          let* coll_bytes = int_of bytes_s ~what:"coll" in
          let* iters = int_of iters_s ~what:"coll" in
          let* coll_start_ns = int_of start_s ~what:"coll" in
          Ok { coll; ranks; coll_bytes; iters; coll_start_ns }
      | _ -> Error (Printf.sprintf "bad collective %S" s))
  | _ -> Error (Printf.sprintf "bad collective %S" s)

let failure_of_string s =
  match String.split_on_char ':' s with
  | [ "flap"; a; b; c; d; e ] ->
      let* flap_link = int_of a ~what:"flap" in
      let* first_down_ns = int_of b ~what:"flap" in
      let* down_for_ns = int_of c ~what:"flap" in
      let* period_ns = int_of d ~what:"flap" in
      let* count = int_of e ~what:"flap" in
      Ok (Flap { flap_link; first_down_ns; down_for_ns; period_ns; count })
  | [ "spine"; a; b ] ->
      let* spine = int_of a ~what:"spine fault" in
      let* at_ns = int_of b ~what:"spine fault" in
      Ok (Spine_down { spine; at_ns })
  | [ "storm"; a; b; c ] ->
      let* storm_start_ns = int_of a ~what:"storm" in
      let* storm_dur_ns = int_of b ~what:"storm" in
      let* storm_ppm = int_of c ~what:"storm" in
      Ok (Drop_storm { storm_start_ns; storm_dur_ns; storm_ppm })
  | _ -> Error (Printf.sprintf "bad failure %S" s)

(* ------------------------------------------------------------------ *)
(* Validation. *)

let validate t =
  let* () =
    match t.shape with
    | Fuzz_spec.Ls _ -> Ok ()
    | Fuzz_spec.Ft _ -> Error "workloads run on leaf-spine shapes only"
  in
  let n_hosts = Fuzz_spec.n_hosts_of_shape t.shape in
  let* () = if n_hosts >= 2 then Ok () else Error "fabric needs >= 2 hosts" in
  let* () =
    if t.load_pct > 0 && t.load_pct <= 200 then Ok ()
    else Error (Printf.sprintf "load %d%% out of (0, 200]" t.load_pct)
  in
  let* () =
    if t.n_flows >= 0 then Ok () else Error "negative flow count"
  in
  let* () =
    if t.n_flows > 0 || t.colls <> [] then Ok ()
    else Error "spec offers no traffic at all"
  in
  let* () = if t.deadline_ns > 0 then Ok () else Error "bad deadline" in
  let* () =
    map_result
      (fun c ->
        if not (List.mem c.coll colls_known) then
          Error (Printf.sprintf "unknown collective %S" c.coll)
        else if c.ranks < 2 || c.ranks > n_hosts then
          Error (Printf.sprintf "collective ranks %d out of [2, %d]" c.ranks
                   n_hosts)
        else if c.coll = "hd-allreduce" && c.ranks land (c.ranks - 1) <> 0 then
          Error "hd-allreduce needs a power-of-two rank count"
        else if c.coll_bytes <= 0 || c.iters <= 0 || c.coll_start_ns < 0 then
          Error (Printf.sprintf "bad collective %S" (coll_to_string c))
        else Ok ())
      t.colls
    |> Result.map ignore
  in
  match t.shape with
  | Fuzz_spec.Ft _ -> assert false
  | Fuzz_spec.Ls { n_leaves; n_spines; _ } ->
      let n_links = n_hosts + (n_leaves * n_spines) in
      map_result
        (fun f ->
          match f with
          | Flap { flap_link; down_for_ns; period_ns; count; _ } ->
              if flap_link < n_hosts || flap_link >= n_links then
                Error (Printf.sprintf "flap link %d not a fabric link" flap_link)
              else if count <= 0 || down_for_ns <= 0 then Error "bad flap"
              else if count > 1 && period_ns <= down_for_ns then
                Error "flap period must exceed its down time"
              else Ok ()
          | Spine_down { spine; at_ns } ->
              if spine < 0 || spine >= n_spines then
                Error (Printf.sprintf "spine %d not in fabric" spine)
              else if n_spines < 2 then
                Error "spine death would disconnect the fabric"
              else if at_ns < 0 then Error "bad spine death time"
              else Ok ()
          | Drop_storm { storm_start_ns; storm_dur_ns; storm_ppm } ->
              if storm_start_ns < 0 || storm_dur_ns <= 0 then Error "bad storm"
              else if storm_ppm <= 0 || storm_ppm >= 1_000_000 then
                Error (Printf.sprintf "storm ppm %d out of (0, 1e6)" storm_ppm)
              else Ok ())
        t.failures
      |> Result.map ignore

(* ------------------------------------------------------------------ *)
(* Presets: the named scenarios the campaign presets reference. *)

let small_fabric =
  Fuzz_spec.Ls
    {
      n_leaves = 2;
      n_spines = 2;
      hosts_per_leaf = 4;
      host_gbps = 25;
      fabric_gbps = 25;
      link_delay_ns = 500;
    }

let mix =
  {
    wseed = 21;
    shape = small_fabric;
    dist = Flow_size.Websearch;
    arrival = Arrival.Poisson;
    load_pct = 30;
    n_flows = 120;
    colls =
      [
        {
          coll = "allreduce";
          ranks = 4;
          coll_bytes = 262_144;
          iters = 2;
          coll_start_ns = 50_000;
        };
      ];
    failures = [];
    deadline_ns = 400_000_000;
  }

let sweep =
  {
    wseed = 21;
    shape = small_fabric;
    dist = Flow_size.Hadoop;
    arrival = Arrival.Poisson;
    load_pct = 50;
    n_flows = 400;
    colls = [];
    failures = [];
    deadline_ns = 400_000_000;
  }

let failures_preset =
  (* Host links are ids 0..7 on the small fabric; leaf0<->spine0 is 8. *)
  {
    wseed = 21;
    shape = small_fabric;
    dist = Flow_size.Fixed 65_536;
    arrival = Arrival.Onoff { on_us = 50; off_us = 150 };
    load_pct = 40;
    (* ~39 ms of arrivals at 40% load — long enough that the flaps
       (2/12 ms), the storm (10-15 ms) and the spine death (30 ms) all
       hit live traffic. *)
    n_flows = 1_500;
    colls = [];
    failures =
      [
        Flap
          {
            flap_link = 8;
            first_down_ns = 2_000_000;
            down_for_ns = 1_000_000;
            period_ns = 10_000_000;
            count = 2;
          };
        Drop_storm
          {
            storm_start_ns = 10_000_000;
            storm_dur_ns = 5_000_000;
            storm_ppm = 20_000;
          };
        Spine_down { spine = 1; at_ns = 30_000_000 };
      ];
    deadline_ns = 500_000_000;
  }

let presets =
  [ ("mix", mix); ("sweep", sweep); ("failures", failures_preset) ]

let preset name = List.assoc_opt name presets
let preset_names = List.map fst presets

(* ------------------------------------------------------------------ *)

let of_string s =
  let s = String.trim s in
  match String.split_on_char ':' s with
  | [ "preset"; name ] -> (
      match preset name with
      | Some t -> Ok t
      | None -> Error (Printf.sprintf "unknown workload preset %S" name))
  | _ -> (
      match split_nonempty ';' s with
      | "wl1" :: fields ->
          let kv =
            List.filter_map
              (fun f ->
                match String.index_opt f '=' with
                | None -> None
                | Some i ->
                    Some
                      ( String.sub f 0 i,
                        String.sub f (i + 1) (String.length f - i - 1) ))
              fields
          in
          let find k =
            match List.assoc_opt k kv with
            | Some v -> Ok v
            | None -> Error (Printf.sprintf "missing field %S" k)
          in
          let find_int k =
            let* v = find k in
            int_of v ~what:k
          in
          let* wseed = find_int "seed" in
          let* shape_s = find "shape" in
          let* shape = Fuzz_spec.shape_of_string shape_s in
          let* dist_s = find "dist" in
          let* dist = Flow_size.of_string dist_s in
          let* arr_s = find "arr" in
          let* arrival = Arrival.process_of_string arr_s in
          let* load_pct = find_int "load" in
          let* n_flows = find_int "flows" in
          let* colls_s = find "colls" in
          let* colls = map_result coll_of_string (split_nonempty ',' colls_s) in
          let* faults_s = find "faults" in
          let* failures =
            map_result failure_of_string (split_nonempty ',' faults_s)
          in
          let* deadline_ns = find_int "dl" in
          let t =
            {
              wseed;
              shape;
              dist;
              arrival;
              load_pct;
              n_flows;
              colls;
              failures;
              deadline_ns;
            }
          in
          let* () = validate t in
          Ok t
      | _ -> Error "spec must start with \"wl1;\" or \"preset:<name>\"")

let pp ppf t = Format.pp_print_string ppf (to_string t)
