type dist =
  | Fixed of int
  | Uniform of { lo : int; hi : int }
  | Websearch
  | Hadoop
  | Storage

(* Piecewise-linear CDFs over flow size in bytes, after the published
   datacenter distributions these workloads are conventionally named for:
   the DCTCP web-search trace (heavy-tailed, most bytes in multi-MB
   responses), the Facebook Hadoop trace (dominated by sub-10 kB RPCs with
   a thin large-shuffle tail) and a block-storage profile (bimodal: small
   metadata operations plus large reads).  Points are (bytes, cum-prob);
   sampling interpolates linearly inside a segment. *)

let websearch_cdf =
  [|
    (6_000., 0.0);
    (10_000., 0.15);
    (20_000., 0.2);
    (30_000., 0.3);
    (50_000., 0.4);
    (80_000., 0.53);
    (200_000., 0.6);
    (1_000_000., 0.7);
    (2_000_000., 0.8);
    (5_000_000., 0.9);
    (10_000_000., 0.97);
    (30_000_000., 1.0);
  |]

let hadoop_cdf =
  [|
    (150., 0.0);
    (300., 0.1);
    (1_000., 0.5);
    (2_000., 0.6);
    (10_000., 0.7);
    (100_000., 0.8);
    (1_000_000., 0.95);
    (10_000_000., 1.0);
  |]

let storage_cdf =
  [|
    (4_000., 0.0);
    (8_000., 0.5);
    (64_000., 0.7);
    (512_000., 0.8);
    (4_000_000., 0.95);
    (64_000_000., 1.0);
  |]

let cdf_of = function
  | Websearch -> Some websearch_cdf
  | Hadoop -> Some hadoop_cdf
  | Storage -> Some storage_cdf
  | Fixed _ | Uniform _ -> None

let sample_cdf cdf u =
  (* Find the segment [i, i+1] whose probability band contains u. *)
  let n = Array.length cdf in
  let rec seg i = if i >= n - 2 || snd cdf.(i + 1) >= u then i else seg (i + 1) in
  let i = seg 0 in
  let b0, c0 = cdf.(i) and b1, c1 = cdf.(i + 1) in
  let frac = if c1 <= c0 then 0. else (u -. c0) /. (c1 -. c0) in
  b0 +. (frac *. (b1 -. b0))

let sample dist rng =
  match dist with
  | Fixed n -> max 1 n
  | Uniform { lo; hi } ->
      let lo = max 1 lo in
      let hi = max lo hi in
      lo + Rng.int rng (hi - lo + 1)
  | Websearch | Hadoop | Storage ->
      let cdf = Option.get (cdf_of dist) in
      max 1 (int_of_float (sample_cdf cdf (Rng.float rng)))

let mean_bytes = function
  | Fixed n -> float_of_int (max 1 n)
  | Uniform { lo; hi } ->
      let lo = max 1 lo in
      let hi = max lo hi in
      float_of_int (lo + hi) /. 2.
  | (Websearch | Hadoop | Storage) as d ->
      (* Linear interpolation inside a segment means size is uniform over
         the segment's byte range, so the segment contributes its midpoint
         weighted by its probability mass. *)
      let cdf = Option.get (cdf_of d) in
      let acc = ref 0. in
      for i = 0 to Array.length cdf - 2 do
        let b0, c0 = cdf.(i) and b1, c1 = cdf.(i + 1) in
        acc := !acc +. ((c1 -. c0) *. ((b0 +. b1) /. 2.))
      done;
      !acc

let max_bytes = function
  | Fixed n -> max 1 n
  | Uniform { lo; hi } -> max (max 1 lo) hi
  | (Websearch | Hadoop | Storage) as d ->
      let cdf = Option.get (cdf_of d) in
      int_of_float (fst cdf.(Array.length cdf - 1))

let to_string = function
  | Fixed n -> Printf.sprintf "fixed:%d" n
  | Uniform { lo; hi } -> Printf.sprintf "uniform:%d:%d" lo hi
  | Websearch -> "websearch"
  | Hadoop -> "hadoop"
  | Storage -> "storage"

let int_of s ~what =
  match int_of_string_opt (String.trim s) with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "bad integer %S in %s" s what)

let ( let* ) = Result.bind

let of_string s =
  match String.split_on_char ':' (String.trim s) with
  | [ "websearch" ] -> Ok Websearch
  | [ "hadoop" ] -> Ok Hadoop
  | [ "storage" ] -> Ok Storage
  | [ "fixed"; n ] ->
      let* n = int_of n ~what:"dist" in
      if n <= 0 then Error "fixed size must be positive" else Ok (Fixed n)
  | [ "uniform"; lo; hi ] ->
      let* lo = int_of lo ~what:"dist" in
      let* hi = int_of hi ~what:"dist" in
      if lo <= 0 || hi < lo then Error "bad uniform range"
      else Ok (Uniform { lo; hi })
  | _ -> Error (Printf.sprintf "unknown distribution %S" s)

let pp ppf d = Format.pp_print_string ppf (to_string d)
