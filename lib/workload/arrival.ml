type process = Poisson | Onoff of { on_us : int; off_us : int }

let process_to_string = function
  | Poisson -> "poisson"
  | Onoff { on_us; off_us } -> Printf.sprintf "onoff:%d:%d" on_us off_us

let int_of s ~what =
  match int_of_string_opt (String.trim s) with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "bad integer %S in %s" s what)

let ( let* ) = Result.bind

let process_of_string s =
  match String.split_on_char ':' (String.trim s) with
  | [ "poisson" ] -> Ok Poisson
  | [ "onoff"; on; off ] ->
      let* on_us = int_of on ~what:"arrival" in
      let* off_us = int_of off ~what:"arrival" in
      if on_us <= 0 || off_us < 0 then Error "bad on/off durations"
      else Ok (Onoff { on_us; off_us })
  | _ -> Error (Printf.sprintf "unknown arrival process %S" s)

let flows_per_sec ~load_pct ~capacity_bps ~mean_flow_bytes =
  if load_pct <= 0 then invalid_arg "Arrival: load_pct must be positive";
  if capacity_bps <= 0. then invalid_arg "Arrival: capacity must be positive";
  if mean_flow_bytes <= 0. then invalid_arg "Arrival: mean flow size";
  float_of_int load_pct /. 100. *. capacity_bps /. (8. *. mean_flow_bytes)

type t = {
  proc : process;
  gap_ns : float;  (** Long-run mean inter-arrival gap. *)
  burst_gap_ns : float;  (** Mean gap while ON (= [gap_ns] for Poisson). *)
  on_ns : float;
  off_ns : float;
  mutable on_left_ns : float;  (** [< 0.] before the first draw. *)
}

let create ~process ~load_pct ~capacity_bps ~mean_flow_bytes =
  let lambda = flows_per_sec ~load_pct ~capacity_bps ~mean_flow_bytes in
  let gap_ns = 1e9 /. lambda in
  match process with
  | Poisson ->
      {
        proc = process;
        gap_ns;
        burst_gap_ns = gap_ns;
        on_ns = 0.;
        off_ns = 0.;
        on_left_ns = 0.;
      }
  | Onoff { on_us; off_us } ->
      let on_ns = float_of_int on_us *. 1e3 in
      let off_ns = float_of_int off_us *. 1e3 in
      (* Compress arrivals into ON periods so the long-run rate still
         matches the target load: duty cycle on/(on+off). *)
      let duty = on_ns /. (on_ns +. off_ns) in
      {
        proc = process;
        gap_ns;
        burst_gap_ns = gap_ns *. duty;
        on_ns;
        off_ns;
        on_left_ns = -1.;
      }

let mean_gap_ns t = t.gap_ns

let next_gap_ns t rng =
  match t.proc with
  | Poisson -> max 1 (int_of_float (Rng.exponential rng ~mean:t.gap_ns))
  | Onoff _ ->
      if t.on_left_ns < 0. then
        (* First draw starts inside an ON period. *)
        t.on_left_ns <- Rng.exponential rng ~mean:t.on_ns;
      let acc = ref 0. in
      let gap = ref (-1.) in
      while !gap < 0. do
        if t.on_left_ns <= 0. then begin
          acc := !acc +. Rng.exponential rng ~mean:t.off_ns;
          t.on_left_ns <- Rng.exponential rng ~mean:t.on_ns
        end
        else
          let g = Rng.exponential rng ~mean:t.burst_gap_ns in
          if g <= t.on_left_ns then begin
            t.on_left_ns <- t.on_left_ns -. g;
            gap := !acc +. g
          end
          else begin
            (* Burn the rest of the ON period and fall into OFF. *)
            acc := !acc +. t.on_left_ns;
            t.on_left_ns <- 0.
          end
      done;
      max 1 (int_of_float !gap)

let pp_process ppf p = Format.pp_print_string ppf (process_to_string p)
