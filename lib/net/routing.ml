type table = { dist : int array; hops : (int * int) array array }

(* Shared sentinel for nodes that are not destinations (switches, or
   out-of-range ids): physical equality against it is the "no table"
   test, so the dense array needs no option boxing. *)
let no_table = { dist = [||]; hops = [||] }

type t = {
  topo : Topology.t;
  mutable tables : table array;  (* destination node id -> table *)
  mutable generation : int;
      (* Bumped on every [recompute]; switches compare it to decide when
         their compiled port arrays are stale. *)
  mutable pc_memo : int array array;
      (* path_count memo: dst -> per-source counts (-1 = unknown), the
         inner array allocated lazily on the first query for that dst.
         Cleared wholesale on [recompute]. *)
}

let build_table topo dst =
  let n = Topology.node_count topo in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  dist.(dst) <- 0;
  Queue.add dst queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    (* Hosts other than the destination do not forward traffic. *)
    if u = dst || not (Topology.is_host topo u) then
      List.iter
        (fun (peer, link_id) ->
          let l = Topology.link topo link_id in
          if l.Topology.up && dist.(peer) = max_int then begin
            dist.(peer) <- dist.(u) + 1;
            Queue.add peer queue
          end)
        (Topology.neighbors topo u)
  done;
  let hops =
    Array.init n (fun u ->
        if dist.(u) = max_int || u = dst then [||]
        else
          Topology.neighbors topo u
          |> List.filter (fun (peer, link_id) ->
                 (Topology.link topo link_id).Topology.up
                 && dist.(peer) = dist.(u) - 1)
          |> List.sort (fun (a, _) (b, _) -> compare a b)
          |> Array.of_list)
  in
  { dist; hops }

let build_tables topo =
  let tables = Array.make (Topology.node_count topo) no_table in
  Array.iter (fun h -> tables.(h) <- build_table topo h) (Topology.hosts topo);
  tables

let compute topo =
  {
    topo;
    tables = build_tables topo;
    generation = 0;
    pc_memo = Array.make (Topology.node_count topo) [||];
  }

let recompute t =
  t.tables <- build_tables t.topo;
  Array.fill t.pc_memo 0 (Array.length t.pc_memo) [||];
  t.generation <- t.generation + 1

let generation t = t.generation

let table t dst =
  if dst < 0 || dst >= Array.length t.tables then
    invalid_arg "Routing: destination is not a host"
  else
    let tbl = Array.unsafe_get t.tables dst in
    if tbl == no_table then invalid_arg "Routing: destination is not a host"
    else tbl

let next_hops t ~node ~dst = (table t dst).hops.(node)
let distance t ~node ~dst = (table t dst).dist.(node)

(* Memoized per (src, dst) in [pc_memo]; Themis-S setup queries this
   once per flow, so the BFS-table walk must not be repaid per call. *)
let path_count t ~src ~dst =
  if src = dst then 1
  else begin
    let tbl = table t dst in
    let memo =
      match t.pc_memo.(dst) with
      | [||] ->
          let m = Array.make (Array.length tbl.dist) (-1) in
          t.pc_memo.(dst) <- m;
          m
      | m -> m
    in
    let rec count u =
      if u = dst then 1
      else
        let c = memo.(u) in
        if c >= 0 then c
        else begin
          let c =
            Array.fold_left
              (fun acc (peer, _) -> acc + count peer)
              0 tbl.hops.(u)
          in
          memo.(u) <- c;
          c
        end
    in
    count src
  end

(* Per-next-hop shortest-path multiplicities at [node] towards [dst]:
   weights.(i) = number of distinct shortest paths continuing through
   [next_hops].(i).  Sums to [path_count ~src:node ~dst] (Spritz's
   weighted spraying invariant). *)
let path_weights t ~node ~dst =
  if node = dst then [||]
  else
    let hops = next_hops t ~node ~dst in
    Array.map (fun (peer, _) -> path_count t ~src:peer ~dst) hops
