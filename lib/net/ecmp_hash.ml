(* Fixed GF(2) matrix rows for the sport entropy function.  Row [i] has
   bit [i] set and only higher bits otherwise (a unitriangular matrix), so
   the map is invertible by construction — full rank is what guarantees
   the PathMap covers every residue.  The upper bits come from a splitmix
   constant so consecutive sports still avalanche. *)
let rows =
  let mask_above i = 0xFFFF land lnot ((1 lsl (i + 1)) - 1) in
  let seeds =
    [|
      0x9E37; 0x79B9; 0x7F4A; 0x7C15; 0xBF58; 0x476D; 0x1CE4; 0xE5B9;
      0x94D0; 0x49BB; 0x1331; 0x11EB; 0xD6E8; 0xFEB8; 0x6479; 0x8A5B;
    |]
  in
  Array.init 16 (fun i -> (1 lsl i) lor (seeds.(i) land mask_above i))

let linear16 x =
  let acc = ref 0 in
  for i = 0 to 15 do
    if x land (1 lsl i) <> 0 then acc := !acc lxor rows.(i)
  done;
  !acc

let mix x =
  let z =
    let open Int64 in
    let z = add (of_int x) 0x9E3779B97F4A7C15L in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)
  in
  Int64.to_int z land max_int

let flow_hash ~src ~dst ~sport ~dport =
  (* The non-sport fields are avalanched together; sport enters via the
     linear entropy function so that PathMap deltas compose by XOR. *)
  let base = mix ((src * 65_599) + dst + (dport * 131)) in
  (base lxor linear16 (sport land 0xFFFF)) land max_int

(* Per-flow memo indexed by the interned flow id.  The entry is validated
   against the full (src, dst, sport, dport) tuple before use, so it is
   pure memoization: stale entries (sport rewrites, interner resets
   between runs) miss the validation and are recomputed in place.  No
   reset hook is needed for correctness.  Domain-local because interned
   flow ids are themselves per-domain (see Flow_id). *)
type memo = {
  mutable m_src : int array;
  mutable m_dst : int array;
  mutable m_sport : int array;
  mutable m_dport : int array;
  mutable m_hash : int array;
}

let memo_key =
  Domain.DLS.new_key (fun () ->
      {
        m_src = Array.make 64 (-1);
        m_dst = Array.make 64 0;
        m_sport = Array.make 64 0;
        m_dport = Array.make 64 0;
        m_hash = Array.make 64 0;
      })

let memo_grow m id =
  let len = Array.length m.m_src in
  let nlen = Stdlib.max (id + 1) (2 * len) in
  let grow a fill =
    let na = Array.make nlen fill in
    Array.blit a 0 na 0 len;
    na
  in
  m.m_src <- grow m.m_src (-1);
  m.m_dst <- grow m.m_dst 0;
  m.m_sport <- grow m.m_sport 0;
  m.m_dport <- grow m.m_dport 0;
  m.m_hash <- grow m.m_hash 0

let flow_hash_id ~id ~src ~dst ~sport ~dport =
  if id < 0 then flow_hash ~src ~dst ~sport ~dport
  else begin
    let m = Domain.DLS.get memo_key in
    if id >= Array.length m.m_src then memo_grow m id;
    if
      Array.unsafe_get m.m_src id = src
      && Array.unsafe_get m.m_dst id = dst
      && Array.unsafe_get m.m_sport id = sport
      && Array.unsafe_get m.m_dport id = dport
    then Array.unsafe_get m.m_hash id
    else begin
      let h = flow_hash ~src ~dst ~sport ~dport in
      Array.unsafe_set m.m_src id src;
      Array.unsafe_set m.m_dst id dst;
      Array.unsafe_set m.m_sport id sport;
      Array.unsafe_set m.m_dport id dport;
      Array.unsafe_set m.m_hash id h;
      h
    end
  end

let path_of_hash_at ~shift ~hash ~paths =
  if paths <= 0 then invalid_arg "Ecmp_hash.path_of_hash";
  let h = hash lsr shift in
  if paths land (paths - 1) = 0 then h land (paths - 1) else h mod paths

let path_of_hash ~hash ~paths = path_of_hash_at ~shift:0 ~hash ~paths
