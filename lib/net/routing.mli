(** Shortest-path routing with equal-cost multipath next-hop sets.

    For every destination host we run a BFS (over up links only, never
    transiting through other hosts) and record, at every node, the set of
    neighbours one hop closer to the destination.  A switch's load-balancing
    policy then picks one member of that set per flow (ECMP) or per packet
    (spraying / adaptive routing). *)

type t

val compute : Topology.t -> t
(** Build tables for all hosts as destinations. *)

val recompute : t -> unit
(** Rebuild after a link status change.  Bumps {!generation} and drops
    the {!path_count} memo. *)

val generation : t -> int
(** Incremented on every {!recompute}.  Consumers that compile these
    tables into denser forms (the switch's per-destination port arrays)
    compare generations to invalidate their caches, instead of routing
    registering callbacks into every switch. *)

val next_hops : t -> node:int -> dst:int -> (int * int) array
(** Equal-cost [(peer_node, link_id)] choices at [node] towards host [dst],
    ordered by peer id.  Empty if unreachable. *)

val distance : t -> node:int -> dst:int -> int
(** Hop count to [dst]; [max_int] if unreachable. *)

val path_count : t -> src:int -> dst:int -> int
(** Number of distinct equal-cost shortest paths between two hosts.
    Memoized per [(src, dst)] until the next {!recompute} — it is called
    per flow by Themis-S setup. *)

val path_weights : t -> node:int -> dst:int -> int array
(** Per-next-hop shortest-path multiplicities at [node] towards [dst],
    aligned with {!next_hops} and summing to [path_count ~src:node ~dst].
    Spritz sprays proportionally to these weights so each downstream
    path receives equal expected load even under asymmetric topologies
    (post-failure path-count asymmetry). *)
