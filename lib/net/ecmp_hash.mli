(** ECMP hashing.

    Two hash functions:

    - {!flow_hash}: the deterministic 5-tuple hash a switch uses to pick an
      equal-cost next hop.  It is built so that the UDP source port enters
      the hash {e linearly} (over GF(2)): [flow_hash ~sport:(s lxor d) ... =
      flow_hash ~sport:s ... lxor linear16 d].  This is the "hashing
      linearity" property (Zhang et al., ATC'21) that the paper's PathMap
      construction relies on (Section 3.2, Fig. 3).

    - {!linear16}: the sport entropy function itself, a fixed GF(2)-linear
      map on 16 bits. *)

val linear16 : int -> int
(** GF(2)-linear on the low 16 bits: [linear16 (a lxor b) = linear16 a lxor
    linear16 b] and [linear16 0 = 0]. Result fits in 16 bits. *)

val mix : int -> int
(** A splitmix-style avalanche on a non-negative int (not linear). *)

val flow_hash : src:int -> dst:int -> sport:int -> dport:int -> int
(** Non-negative.  Linear in [sport]: flipping sport bits XORs
    [linear16] of the flipped bits into the result's low 16 bits and
    changes nothing else. *)

val flow_hash_id : id:int -> src:int -> dst:int -> sport:int -> dport:int -> int
(** {!flow_hash} memoized in a dense slot array keyed by [id] — a small
    non-negative slot key derived from the packet's interned flow id
    ([Packet.conn_id]).  The cached entry is validated against the full
    (src, dst, sport, dport) tuple before use, so the result is always
    identical to {!flow_hash} even across sport rewrites or interner
    resets; the memo just skips the avalanche on the steady-state path.
    [id < 0] bypasses the memo. *)

val path_of_hash : hash:int -> paths:int -> int
(** Reduce a hash to a path index in [[0, paths)]. When [paths] is a power
    of two this uses the low bits, preserving sport-linearity of path
    selection. *)

val path_of_hash_at : shift:int -> hash:int -> paths:int -> int
(** Like {!path_of_hash} but selecting the bit window starting at [shift].
    Multi-tier fabrics give each tier a distinct [shift] so one sport
    rewrite can steer every hop of the path independently. *)
