(** An egress port: FIFOs of packets being serialized onto a directed link.

    One [Port.t] models one direction of a full-duplex link.  Control
    packets (ACK / NACK / CNP / pause) ride a strict-priority lane over
    data, as deployed RoCE fabrics assign acknowledgements a dedicated
    traffic class; this bounds the last-hop control RTT that sizes the
    Themis-D PSN queue.  Within a lane ordering is FIFO.  The transmitter
    serializes one packet at a time at the link bandwidth; each serialized
    packet is delivered to the far end after the propagation delay
    (multiple packets may be in flight concurrently, as on a real wire).

    Admission control (buffer limits, ECN marking) is the caller's job —
    [enqueue] never drops on an up link.  PFC pauses the transmitter
    between packets. *)

type t

val create :
  engine:Engine.t ->
  bandwidth:Rate.t ->
  delay:Sim_time.t ->
  label:string ->
  t

val set_deliver : t -> (Packet.t -> unit) -> unit
(** Must be called before the first enqueue (network wiring phase). *)

val deliver_fn : t -> Packet.t -> unit
(** The current delivery callback.  Fault-injection layers capture it to
    wrap delivery with loss / duplication / delay (see [Fuzz_fault]). *)

val set_on_dequeue : t -> (Packet.t -> unit) -> unit
(** Hook fired when a packet leaves a FIFO and starts serializing.  Used
    for shared-buffer release and for Themis-D's "packet leaves the ToR"
    observation point. *)

val set_jitter : t -> rng:Rng.t -> max:Sim_time.t -> unit
(** Add uniform random extra propagation delay in [[0, max]] per packet —
    models RTT fluctuation on the last hop (the reason Section 4 sizes
    the Themis-D ring with an expansion factor F > 1).  Note that jitter
    can reorder packets on a single link. *)

val set_on_discard : t -> (Packet.t -> unit) -> unit
(** Hook fired for packets discarded without transmission (enqueue on a
    failed link, or queue flush when the link goes down). *)

val has_jitter : t -> bool

val set_interlink : t -> (delay:Sim_time.t -> Packet.t -> unit) -> unit
(** Interlink lowering (DESIGN.md §14): serialized packets are handed to
    the hook at tx-done time instead of being scheduled for local
    propagation.  [delay] is the full propagation delay of this packet —
    the link delay plus any per-packet jitter draw (the draw still
    consumes this port's private RNG in serialization order, so serial
    and interlinked executions see identical draws).  The hook flattens
    the packet onto an interlink ring; the consuming shard replays
    propagation on its replica of this port via {!receive_remote}. *)

val receive_remote : t -> Packet.t -> unit
(** Replica-side arrival of a packet that crossed a shard boundary: runs
    the serial propagation body — deliver if the link is still up, else
    book the in-flight link-down drop on this (replica) port. *)

val delay : t -> Sim_time.t
(** Propagation delay of the link direction this port serializes onto. *)

val enqueue : t -> Packet.t -> unit

val inject_drops : t -> int -> unit
(** Fault injection: silently discard the next [n] data packets enqueued
    on this port (counted in [dropped_packets]).  Control packets are
    unaffected. *)

val queue_bytes : t -> int
(** Data-lane bytes waiting (not counting the packet currently
    serializing) — the quantity ECN marking and adaptive routing look
    at. *)

val ctrl_queue_bytes : t -> int
val queue_packets : t -> int
val busy : t -> bool

val set_paused : t -> bool -> unit
(** PFC: stop/resume draining.  The packet currently serializing
    finishes. *)

val paused : t -> bool

val set_up : t -> bool -> unit
(** Link failure: while down, queued packets are discarded and future
    enqueues are dropped (counted, and reported to [on_discard]). *)

val is_up : t -> bool

val tx_packets : t -> int
val tx_bytes : t -> int
val dropped_packets : t -> int

val dropped_data_packets : t -> int
(** Data-only subset of [dropped_packets] — the term the fuzz harness's
    packet-conservation oracle sums (control losses are recovered by
    retransmission and deliberately excluded). *)

val bandwidth : t -> Rate.t

val set_bandwidth : t -> Rate.t -> unit
(** Derate (or restore) the link rate — the asymmetric-link-speed
    scenarios of the LB arena.  Applies from the next packet serialized;
    the tx-time memo is invalidated. *)

val label : t -> string
