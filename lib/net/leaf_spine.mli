(** Two-tier leaf–spine (Clos) fabric generator.

    Every leaf (ToR) connects to every spine; hosts hang off leaves.  With
    [spines] spines there are exactly [spines] equal-cost paths between
    hosts on different leaves — the [N] of the paper's Eq. 1.

    Node id layout: hosts are [0 .. leaves*hosts_per_leaf - 1] (host [h] of
    leaf [l] is [l*hosts_per_leaf + h]), then leaves, then spines. *)

type t = {
  topo : Topology.t;
  leaves : int array;  (** node ids of ToR switches, by leaf index *)
  spines : int array;
  hosts : int array;
  hosts_per_leaf : int;
}

type params = {
  n_leaves : int;
  n_spines : int;
  hosts_per_leaf : int;
  host_bw : Rate.t;  (** host <-> ToR link bandwidth *)
  fabric_bw : Rate.t;  (** ToR <-> spine link bandwidth *)
  link_delay : Sim_time.t;  (** propagation delay of every link *)
}

val paper_eval : params
(** The evaluation fabric of Section 5: 16 x 16, 400 Gbps, 1 us links,
    16 hosts per leaf (1:1 subscription). *)

val motivation : params
(** The Fig. 1a motivation fabric: 2 leaves x 4 spines, 4 hosts per leaf,
    100 Gbps everywhere. *)

val build : params -> t

val bisection_bw : params -> float
(** Bisection bandwidth of the fabric in bits per second: cut the leaves
    into two halves; the cut capacity is the smaller half's aggregate
    uplink bandwidth, capped by what that half's hosts can inject.  Used
    by the workload generator to convert a target load factor into an
    open-loop arrival rate. *)

val tor_of_host : t -> int -> int
(** ToR switch node id serving a host. *)

val leaf_index_of_host : t -> int -> int
val host : t -> leaf:int -> index:int -> int
val is_tor : t -> int -> bool
val n_paths : t -> int
(** Equal-cost paths between hosts on distinct leaves (= number of
    spines). *)
