type t = {
  topo : Topology.t;
  leaves : int array;
  spines : int array;
  hosts : int array;
  hosts_per_leaf : int;
}

type params = {
  n_leaves : int;
  n_spines : int;
  hosts_per_leaf : int;
  host_bw : Rate.t;
  fabric_bw : Rate.t;
  link_delay : Sim_time.t;
}

let paper_eval =
  {
    n_leaves = 16;
    n_spines = 16;
    hosts_per_leaf = 16;
    host_bw = Rate.gbps 400.;
    fabric_bw = Rate.gbps 400.;
    link_delay = Sim_time.us 1;
  }

let motivation =
  {
    n_leaves = 2;
    n_spines = 4;
    hosts_per_leaf = 4;
    host_bw = Rate.gbps 100.;
    fabric_bw = Rate.gbps 100.;
    link_delay = Sim_time.us 1;
  }

let build p =
  if p.n_leaves <= 0 || p.n_spines <= 0 || p.hosts_per_leaf <= 0 then
    invalid_arg "Leaf_spine.build: all counts must be positive";
  let topo = Topology.create () in
  let hosts =
    Array.init (p.n_leaves * p.hosts_per_leaf) (fun i ->
        Topology.add_node topo Topology.Host ~label:(Printf.sprintf "h%d" i))
  in
  let leaves =
    Array.init p.n_leaves (fun i ->
        Topology.add_node topo Topology.Tor ~label:(Printf.sprintf "tor%d" i))
  in
  let spines =
    Array.init p.n_spines (fun i ->
        Topology.add_node topo Topology.Spine ~label:(Printf.sprintf "spine%d" i))
  in
  Array.iteri
    (fun hi host ->
      let leaf = leaves.(hi / p.hosts_per_leaf) in
      ignore
        (Topology.add_link topo host leaf ~bandwidth:p.host_bw
           ~delay:p.link_delay))
    hosts;
  Array.iter
    (fun leaf ->
      Array.iter
        (fun spine ->
          ignore
            (Topology.add_link topo leaf spine ~bandwidth:p.fabric_bw
               ~delay:p.link_delay))
        spines)
    leaves;
  { topo; leaves; spines; hosts; hosts_per_leaf = p.hosts_per_leaf }

let bisection_bw p =
  (* Cut the fabric into two halves of [n_leaves/2] leaves each (the odd
     leaf, if any, goes to the larger half).  Traffic crossing the cut is
     limited by the smaller half's aggregate uplink capacity, and can never
     exceed what that half's hosts can inject. *)
  let half_leaves = p.n_leaves / 2 in
  let uplink = float_of_int (half_leaves * p.n_spines) *. (p.fabric_bw :> float) in
  let inject =
    float_of_int (half_leaves * p.hosts_per_leaf) *. (p.host_bw :> float)
  in
  if p.n_leaves < 2 then
    (* Single-leaf fabric: all traffic stays under the ToR. *)
    float_of_int p.hosts_per_leaf *. (p.host_bw :> float)
  else Float.min uplink inject

let leaf_index_of_host t host =
  if host < 0 || host >= Array.length t.hosts then
    invalid_arg "Leaf_spine.leaf_index_of_host";
  host / t.hosts_per_leaf

let tor_of_host t host = t.leaves.(leaf_index_of_host t host)
let host t ~leaf ~index = t.hosts.((leaf * t.hosts_per_leaf) + index)
let is_tor t node = Array.exists (fun l -> l = node) t.leaves
let n_paths t = Array.length t.spines
