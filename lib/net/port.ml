type t = {
  engine : Engine.t;
  mutable bandwidth : Rate.t;
  delay : Sim_time.t;
  label : string;
  ctrl_queue : Packet.t Fifo.t;  (* ACK/NACK/CNP/pause: strict priority *)
  data_queue : Packet.t Fifo.t;
  mutable data_bytes : int;
  mutable ctrl_bytes : int;
  mutable busy : bool;
  mutable paused : bool;
  mutable up : bool;
  mutable deliver : Packet.t -> unit;
  mutable on_dequeue : Packet.t -> unit;
  mutable on_discard : Packet.t -> unit;
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable dropped : int;
  mutable dropped_data : int;
  mutable inject_drops : int;
  mutable jitter : (Rng.t * Sim_time.t) option;
  (* Interlink lowering: when set, a serialized packet is handed to this
     hook at tx-done time — with its full propagation delay, jitter
     included — instead of being scheduled for local propagation; the
     hook flattens it onto a ring and the consuming shard replays the
     propagation (including the in-flight link-down drop check, via
     [receive_remote]) on its replica of this port. *)
  mutable interlink : (delay:Sim_time.t -> Packet.t -> unit) option;
  (* Closure-free events: one registered tx-completion/propagation
     callback pair per port; the packet rides the event's obj slot. *)
  mutable cb_tx_done : Engine.callback;
  mutable cb_propagate : Engine.callback;
  (* Serialization-time memo: bandwidth is fixed for the port's lifetime
     and traffic is almost entirely two frame sizes (full data frames
     and the control size), so two entries cover the steady state and
     the float divide + round in [Rate.tx_time] is paid only on a new
     size.  Pure memoization of a pure function. *)
  mutable tx_b0 : int;
  mutable tx_t0 : int;
  mutable tx_b1 : int;
  mutable tx_t1 : int;
  (* Drop-counter handle, resolved once per telemetry context instead of
     per drop.  [drop_registry] detects context swaps (each campaign job
     installs a fresh registry). *)
  drop_labels : Metrics.labels;
  mutable drop_registry : Metrics.t option;
  mutable drop_counter : Metrics.counter option;
}

let no_deliver (_ : Packet.t) =
  failwith "Port: deliver callback not set (missing set_deliver)"

let resolve_drop_counter t m =
  let c = Metrics.counter m ~labels:t.drop_labels "port_dropped_packets" in
  t.drop_registry <- Some m;
  t.drop_counter <- Some c;
  c

(* Telemetry: one Packet_drop event per discarded packet, tagged with the
   port's label so drops are attributable to a link direction. *)
let record_drop t (pkt : Packet.t) reason =
  t.dropped <- t.dropped + 1;
  if Packet.is_data pkt then t.dropped_data <- t.dropped_data + 1;
  if Telemetry.enabled () then begin
    let m = Telemetry.metrics_exn () in
    let counter =
      match (t.drop_counter, t.drop_registry) with
      | Some c, Some r when r == m -> c
      | _ -> resolve_drop_counter t m
    in
    Metrics.incr counter;
    Telemetry.record ~time:(Engine.now t.engine)
      (Event.Packet_drop
         {
           loc = t.label;
           conn = pkt.Packet.conn;
           psn =
             (match pkt.Packet.kind with
             | Packet.Data { psn; _ } -> Psn.to_int psn
             | Packet.Ack _ | Packet.Nack _ | Packet.Cnp | Packet.Pause _ -> -1);
           reason;
         })
  end

let set_deliver t f = t.deliver <- f
let set_jitter t ~rng ~max = t.jitter <- Some (rng, max)
let has_jitter t = t.jitter <> None

let set_interlink t f = t.interlink <- Some f
let set_on_dequeue t f = t.on_dequeue <- f
let set_on_discard t f = t.on_discard <- f

let rec start_tx t =
  if (not t.busy) && (not t.paused) && t.up then
    if not (Fifo.is_empty t.ctrl_queue) then begin
      let pkt = Fifo.pop t.ctrl_queue in
      t.ctrl_bytes <- t.ctrl_bytes - pkt.Packet.size;
      transmit t pkt
    end
    else if not (Fifo.is_empty t.data_queue) then begin
      let pkt = Fifo.pop t.data_queue in
      t.data_bytes <- t.data_bytes - pkt.Packet.size;
      transmit t pkt
    end

and transmit t pkt =
  t.on_dequeue pkt;
  t.busy <- true;
  let bytes = pkt.Packet.size in
  let tx =
    if bytes = t.tx_b0 then t.tx_t0
    else if bytes = t.tx_b1 then t.tx_t1
    else begin
      let v = Rate.tx_time t.bandwidth ~bytes_:bytes in
      t.tx_b1 <- t.tx_b0;
      t.tx_t1 <- t.tx_t0;
      t.tx_b0 <- bytes;
      t.tx_t0 <- v;
      v
    end
  in
  ignore
    (Engine.schedule_call t.engine ~delay:tx t.cb_tx_done ~a:0 ~b:0
       ~obj:(Obj.repr pkt))

and tx_done t (pkt : Packet.t) =
  t.busy <- false;
  t.tx_packets <- t.tx_packets + 1;
  t.tx_bytes <- t.tx_bytes + pkt.Packet.size;
  if t.up then begin
    (* The jitter draw stays here either way: it consumes this port's
       private RNG in serialization order, so serial and interlinked
       executions see identical draws. *)
    let extra =
      match t.jitter with
      | Some (rng, max) when max > 0 -> Rng.int rng (max + 1)
      | Some _ | None -> 0
    in
    match t.interlink with
    | Some push -> push ~delay:(t.delay + extra) pkt
    | None ->
        ignore
          (Engine.schedule_call t.engine ~delay:(t.delay + extra) t.cb_propagate
             ~a:0 ~b:0 ~obj:(Obj.repr pkt))
  end
  else begin
    record_drop t pkt Event.Link_down;
    Packet_pool.release pkt
  end;
  start_tx t

and propagate t (pkt : Packet.t) =
  (* The link may have failed while the packet was propagating: such
     packets are lost on the wire and must be accounted as drops, or
     packet conservation breaks. *)
  if t.up then t.deliver pkt
  else begin
    record_drop t pkt Event.Link_down;
    Packet_pool.release pkt
  end

let create ~engine ~bandwidth ~delay ~label =
  let t =
    {
      engine;
      bandwidth;
      delay;
      label;
      ctrl_queue = Fifo.create ~capacity:16 ();
      data_queue = Fifo.create ~capacity:64 ();
      data_bytes = 0;
      ctrl_bytes = 0;
      busy = false;
      paused = false;
      up = true;
      deliver = no_deliver;
      on_dequeue = ignore;
      on_discard = ignore;
      tx_packets = 0;
      tx_bytes = 0;
      dropped = 0;
      dropped_data = 0;
      inject_drops = 0;
      jitter = None;
      interlink = None;
      cb_tx_done = Engine.null_callback;
      cb_propagate = Engine.null_callback;
      tx_b0 = -1;
      tx_t0 = 0;
      tx_b1 = -1;
      tx_t1 = 0;
      drop_labels = [ ("port", label) ];
      drop_registry = None;
      drop_counter = None;
    }
  in
  t.cb_tx_done <-
    Engine.register_callback engine (fun _ _ obj -> tx_done t (Obj.obj obj));
  t.cb_propagate <-
    Engine.register_callback engine (fun _ _ obj -> propagate t (Obj.obj obj));
  if Telemetry.enabled () then
    ignore (resolve_drop_counter t (Telemetry.metrics_exn ()));
  t

let inject_drops t n = t.inject_drops <- t.inject_drops + n

let enqueue t pkt =
  if not t.up then begin
    record_drop t pkt Event.Link_down;
    t.on_discard pkt;
    Packet_pool.release pkt
  end
  else if Packet.is_data pkt && t.inject_drops > 0 then begin
    t.inject_drops <- t.inject_drops - 1;
    record_drop t pkt Event.Injected;
    t.on_discard pkt;
    Packet_pool.release pkt
  end
  else begin
    if Packet.is_data pkt then begin
      Fifo.push t.data_queue pkt;
      t.data_bytes <- t.data_bytes + pkt.Packet.size
    end
    else begin
      Fifo.push t.ctrl_queue pkt;
      t.ctrl_bytes <- t.ctrl_bytes + pkt.Packet.size
    end;
    start_tx t
  end

let queue_bytes t = t.data_bytes
let ctrl_queue_bytes t = t.ctrl_bytes
let queue_packets t = Fifo.length t.data_queue + Fifo.length t.ctrl_queue
let busy t = t.busy

let set_paused t p =
  t.paused <- p;
  if not p then start_tx t

let paused t = t.paused

let flush_discard t q =
  Fifo.drain q (fun pkt ->
      record_drop t pkt Event.Link_down;
      t.on_discard pkt;
      Packet_pool.release pkt)

let set_up t up =
  t.up <- up;
  if not up then begin
    flush_discard t t.ctrl_queue;
    flush_discard t t.data_queue;
    t.data_bytes <- 0;
    t.ctrl_bytes <- 0
  end
  else start_tx t

let is_up t = t.up
let tx_packets t = t.tx_packets
let tx_bytes t = t.tx_bytes
let dropped_packets t = t.dropped
let dropped_data_packets t = t.dropped_data
let bandwidth t = t.bandwidth

let set_bandwidth t r =
  t.bandwidth <- r;
  (* The serialization-time memo caches tx times at the old rate. *)
  t.tx_b0 <- -1;
  t.tx_b1 <- -1

let label t = t.label
let deliver_fn t = t.deliver
let delay t = t.delay

(* Replica-side entry for a packet that crossed a shard boundary: runs
   exactly the serial propagation body — the link may have gone down
   while the packet was on the wire, in which case the drop is booked
   here, on the replica of the transmitting port, just as the serial
   engine books it on the port itself. *)
let receive_remote t pkt = propagate t pkt
