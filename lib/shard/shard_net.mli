(** Interlink lowering of a shard's replica network (DESIGN.md §14).

    Every fabric link's propagation — including links wholly inside one
    shard — is routed through an SPSC ring: stamped at tx-done time with
    the canonical key (arrival time, tx-done tick, directed-port id,
    per-port sequence), drained at the next window barrier, sorted by
    that key, and scheduled into the consuming shard's engine via
    {!Port.receive_remote} on its replica of the transmitting port.
    Because the key is computed on the producing shard alone and does
    not depend on the partition, runs with 1, 2 or 4 shards schedule
    byte-identical event sequences. *)

type rings
(** The shared interlink fabric: one barrier plus a producer x consumer
    matrix of rings.  Built once, before the domains are spawned. *)

val make_rings : part:Shard_part.t -> rings
val barrier : rings -> Domain_barrier.t
val part : rings -> Shard_part.t

val stride : int
(** Ints per ring record: the 4-word canonical key plus
    {!Packet_wire.words}. *)

type t
(** One shard's view: its replica network lowered onto the rings. *)

val wrap : rings -> sid:int -> Network.t -> t
(** Install interlink hooks on every directed port whose transmitting
    node shard [sid] owns.  Call after {!Network.build} and before the
    first event runs. *)

val drain : t -> upto:Sim_time.t -> unit
(** Pop every incoming ring, canonically sort, and schedule into the
    local engine every arrival whose tx-done tick is at or before
    [upto] (the window horizon the barrier just closed).  Later-stamped
    records — parked by a producer that already raced into its next
    window — are deferred to the barrier they belong to, so engine
    insertion order never depends on thread timing.  Must be called at
    a window barrier (all arrival times are then strictly in the local
    future). *)

val activity_flag : t -> int
(** Bit 0 set when this shard has pending engine work or pushed a record
    since the previous call; resets the pushed counter.  The
    OR-reduction across shards is zero exactly at fleet quiescence. *)

val spilled : rings -> int
(** Lifetime count of records that overflowed a ring into its spill
    list, over the whole matrix (diagnostics for ring sizing).  Only
    exact once the domains have joined. *)
