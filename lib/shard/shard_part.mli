(** Spatial partition of a leaf-spine fabric into simulation shards.

    The cut is ToR-affine: each leaf (with all of its hosts) belongs to
    exactly one shard, leaves are assigned in contiguous blocks, and
    spines are dealt round-robin.  Host <-> ToR links therefore never
    cross a shard boundary; only leaf <-> spine links do.  The
    conservative lookahead equals the uniform link propagation delay. *)

type t

val force_env : string
(** Environment variable ([THEMIS_SHARDS_FORCE]) that overrides the
    single-core fail-fast of {!ensure_domains} — used by tests and
    benches on machines where [Domain.recommended_domain_count] is 1. *)

val ensure_domains : shards:int -> (unit, string) result
(** Fail fast (with a clear message) when more than one shard is
    requested on a runtime that reports a single recommended domain,
    unless {!force_env} is set. *)

val partition :
  n_leaves:int ->
  n_spines:int ->
  hosts_per_leaf:int ->
  link_delay:Sim_time.t ->
  shards:int ->
  (t, string) result
(** Errors when [shards < 1], [shards > n_leaves], or [link_delay < 1]
    (no lookahead window). *)

val of_shape : Fuzz_spec.shape -> shards:int -> (t, string) result

val supported : Fuzz_spec.t -> shards:int -> (unit, string) result
(** Whether the spec can run sharded with byte-identical results:
    leaf-spine shape, partitionable, and no per-delivery ppm faults
    (their RNG is consumed in global delivery order, which a sharded run
    cannot reproduce).  Link faults, slow spines, jitter and both
    transports are all supported. *)

val shards : t -> int
val lookahead : t -> Sim_time.t
val shard_of : t -> int -> int
(** Shard owning a node id. *)

val owned : t -> int -> int -> bool
(** [owned t sid node]. *)
