(* Sharded execution of one (spec, scheme) fuzz scenario: one OCaml
   domain per shard, each building the FULL network from the identical
   deterministic code path (same RNG splits, same registration order).
   Objects owned by other shards are inert replicas; every fabric
   propagation crosses through the canonical ring machinery
   (Shard_net), so results are invariant in the shard count.

   The drive loop mirrors Fuzz_run.run_scheme exactly — 5 ms completion
   checks, deadline, post-completion drain — with each 5 ms span cut
   into conservative lookahead windows. *)

type stats = { st_events : int; st_spilled : int }

exception Unsupported of string
exception Crashed of string

(* Window-barrier flag bits (OR-reduced across shards). *)
let bit_active = 1 (* Shard_net.activity_flag *)
let bit_running = 2 (* some owned transfer not yet complete *)
let bit_crash = 4 (* a shard died; peers abort at the same phase *)

type shard_out = {
  so_net : Network.t;
  so_ctx : Telemetry.t option;
  so_flows : Fuzz_oracle.flow_probe list;
  so_lb : (string * int) list;
  so_events : int;
}

let peer_crash_msg = "peer shard crashed"

let sim_phase (spec : Fuzz_spec.t) ~scheme ~part ~rings sid =
  (* Spawned domains start with fresh domain-local state; shard 0 runs
     on the calling domain and must reset exactly as the serial runner
     does. *)
  if sid = 0 then begin
    Packet.reset_uid_counter ();
    Packet_pool.reset ();
    Flow_id.reset_interner ();
    Lb_state.reset_globals ();
    Telemetry.disable ()
  end;
  let params = Fuzz_run.ls_network_params spec ~scheme in
  let net = Network.build ~owned:(Shard_part.owned part sid) params in
  Network.set_quiet_control net (sid <> 0);
  (match spec.Fuzz_spec.slow_spine with
  | None -> ()
  | Some (spine, gbps) -> Network.set_spine_rate net ~spine ~gbps);
  let sh = Shard_net.wrap rings ~sid net in
  let eng = Network.engine net in
  let barrier = Shard_net.barrier rings in
  (* Control-plane events are replicated: every shard applies the same
     state change to its replica at the same simulated time (telemetry
     for them is gated to shard 0 via quiet_control). *)
  let mode =
    if spec.Fuzz_spec.shrink_pathset then `Shrink_pathset else `Fallback_ecmp
  in
  List.iter
    (fun (lf : Fuzz_spec.link_fault) ->
      ignore
        (Engine.schedule_at eng ~time:lf.Fuzz_spec.down_ns (fun () ->
             Network.fail_link ~mode net ~link_id:lf.Fuzz_spec.fault_link));
      if lf.Fuzz_spec.up_ns > lf.Fuzz_spec.down_ns then
        ignore
          (Engine.schedule_at eng ~time:lf.Fuzz_spec.up_ns (fun () ->
               Network.restore_link net ~link_id:lf.Fuzz_spec.fault_link)))
    spec.Fuzz_spec.link_faults;
  (* Connections are replicated (per-NIC QPN counters and Themis-D flow
     tables must match the serial build on every shard); the send itself
     is posted only on the shard owning the source host. *)
  let flows =
    List.mapi
      (fun i (tr : Fuzz_spec.transfer) ->
        let qp = Network.connect net ~src:tr.Fuzz_spec.src ~dst:tr.Fuzz_spec.dst in
        let fp =
          {
            Fuzz_oracle.fp_index = i;
            fp_transfer = tr;
            fp_conn = Rnic.qp_conn qp;
            fp_packets = Fuzz_spec.packets_of_bytes spec tr.Fuzz_spec.bytes;
            fp_dst_nic = Network.nic net ~host:tr.Fuzz_spec.dst;
            fp_done = None;
          }
        in
        if Shard_part.shard_of part tr.Fuzz_spec.src = sid then
          ignore
            (Engine.schedule_at eng ~time:tr.Fuzz_spec.start_ns (fun () ->
                 Rnic.post_send qp ~bytes:tr.Fuzz_spec.bytes
                   ~on_complete:(fun t -> fp.Fuzz_oracle.fp_done <- Some t)));
        fp)
      spec.Fuzz_spec.transfers
  in
  let owned_pending () =
    List.exists
      (fun (fp : Fuzz_oracle.flow_probe) ->
        fp.Fuzz_oracle.fp_done = None
        && Shard_part.shard_of part fp.Fuzz_oracle.fp_transfer.Fuzz_spec.src
           = sid)
      flows
  in
  let my_flags () =
    Shard_net.activity_flag sh
    lor if owned_pending () then bit_running else 0
  in
  let lookahead = Shard_part.lookahead part in
  let run ~until = Engine.run ~until eng in
  let drain ~upto = Shard_net.drain sh ~upto in
  let advance until_ =
    Shard.advance ~abort_mask:bit_crash ~barrier ~lookahead ~run
      ~flags:my_flags ~drain ~from:(Engine.now eng) ~until_ ()
  in
  let await_status () =
    let c = Domain_barrier.await barrier ~flags:(my_flags ()) in
    if c land bit_crash <> 0 then raise (Shard.Aborted c);
    c
  in
  let deadline = spec.Fuzz_spec.deadline_ns in
  let step = Sim_time.ms 5 in
  (* Status barrier before the first decision, so every shard agrees on
     loop entry (mirrors the serial all_done check at time 0). *)
  let combined = ref (await_status ()) in
  while !combined land bit_running <> 0 && Engine.now eng < deadline do
    if !combined land bit_active = 0 then begin
      (* Fleet-wide quiescence with transfers incomplete: no shard holds
         an event and every ring is empty, so nothing can ever happen
         again — jump to the deadline like the serial engine's
         empty-queue drive.  All shards take this branch together (the
         decision reads the shared combined flags). *)
      Engine.run ~until:deadline eng;
      combined := await_status ()
    end
    else combined := advance (Sim_time.min deadline (Engine.now eng + step))
  done;
  (if !combined land bit_running = 0 then
     (* Post-completion drain, replicated from the serial runner. *)
     let dr =
       Sim_time.ms 3
       + (8 * spec.Fuzz_spec.delay_max_ns)
       + (4 * spec.Fuzz_spec.jitter_ns)
     in
     ignore (advance (Engine.now eng + dr)));
  (net, flows)

let extract (net, flows) =
  {
    so_net = net;
    so_ctx = Telemetry.ctx ();
    so_flows = flows;
    so_lb = Lb_state.counters ();
    so_events = Engine.events_processed (Network.engine net);
  }

let domain_main spec ~scheme ~part ~rings sid =
  match sim_phase spec ~scheme ~part ~rings sid with
  | state -> (
      try Ok (extract state) with exn -> Error (Printexc.to_string exn))
  | exception Shard.Aborted _ -> Error peer_crash_msg
  | exception exn ->
      let msg = Printexc.to_string exn in
      (* Zombie pump: one barrier visit with the crash bit raised.
         Every peer is blocked on (or headed to) this same phase, sees
         the bit in the combined flags, and aborts — nobody is left
         waiting on a party that will never arrive. *)
      ignore
        (Domain_barrier.await (Shard_net.barrier rings) ~flags:bit_crash);
      Error msg

let add_themis (a : Network.themis_totals) (b : Network.themis_totals) =
  {
    Network.nacks_seen = a.Network.nacks_seen + b.Network.nacks_seen;
    nacks_blocked = a.Network.nacks_blocked + b.Network.nacks_blocked;
    nacks_forwarded_valid =
      a.Network.nacks_forwarded_valid + b.Network.nacks_forwarded_valid;
    nacks_forwarded_underflow =
      a.Network.nacks_forwarded_underflow + b.Network.nacks_forwarded_underflow;
    compensation_sent =
      a.Network.compensation_sent + b.Network.compensation_sent;
    compensation_cancelled =
      a.Network.compensation_cancelled + b.Network.compensation_cancelled;
    queue_overwrites = a.Network.queue_overwrites + b.Network.queue_overwrites;
  }

let run_scheme_full (spec : Fuzz_spec.t) ~scheme ~shards :
    Fuzz_run.outcome * stats =
  (match Shard_part.supported spec ~shards with
  | Ok () -> ()
  | Error m -> raise (Unsupported m));
  (match Shard_part.ensure_domains ~shards with
  | Ok () -> ()
  | Error m -> raise (Unsupported m));
  Fuzz_run.validate spec;
  let part =
    match Shard_part.of_shape spec.Fuzz_spec.shape ~shards with
    | Ok p -> p
    | Error m -> raise (Unsupported m)
  in
  let rings = Shard_net.make_rings ~part in
  let others =
    Array.init (shards - 1) (fun i ->
        Domain.spawn (fun () -> domain_main spec ~scheme ~part ~rings (i + 1)))
  in
  let r0 = domain_main spec ~scheme ~part ~rings 0 in
  let results = Array.append [| r0 |] (Array.map Domain.join others) in
  let errs =
    Array.to_list results
    |> List.filter_map (function Error m -> Some m | Ok _ -> None)
  in
  (match errs with
  | [] -> ()
  | ms -> (
      (* Prefer the original exception over the peers' abort notices. *)
      match List.filter (fun m -> m <> peer_crash_msg) ms with
      | m :: _ -> raise (Crashed m)
      | [] -> raise (Crashed (List.hd ms))));
  let sos =
    Array.map (function Ok so -> so | Error _ -> assert false) results
  in
  let nets = Array.map (fun so -> so.so_net) sos in
  let owner_net node = nets.(Shard_part.shard_of part node) in
  let n_hosts = Fuzz_spec.n_hosts_of_shape spec.Fuzz_spec.shape in
  (* Per-host state (NIC counters, receive contexts) lives on the owner
     shard's instance; drop counters are summed over EVERY replica,
     because a cross-shard in-flight link-down drop is booked on the
     consumer's replica of the transmitting port. *)
  let v_nics = List.init n_hosts (fun h -> Network.nic (owner_net h) ~host:h) in
  let flows =
    List.mapi
      (fun i (tr : Fuzz_spec.transfer) ->
        let p =
          List.nth sos.(Shard_part.shard_of part tr.Fuzz_spec.src).so_flows i
        in
        {
          p with
          Fuzz_oracle.fp_dst_nic =
            Network.nic (owner_net tr.Fuzz_spec.dst) ~host:tr.Fuzz_spec.dst;
        })
      spec.Fuzz_spec.transfers
  in
  let sum_nets f = Array.fold_left (fun acc n -> acc + f n) 0 nets in
  let port_data_drops () =
    sum_nets (fun n ->
        let acc = ref 0 in
        Network.iter_ports n (fun p -> acc := !acc + Port.dropped_data_packets p);
        !acc)
  in
  let switch_data_drops () =
    sum_nets (fun n ->
        List.fold_left
          (fun acc sw -> acc + Switch.dropped_data_packets sw)
          0 (Network.switches_list n))
  in
  let switch_total_drops () =
    sum_nets (fun n ->
        List.fold_left
          (fun acc sw ->
            acc + Switch.dropped_buffer sw + Switch.dropped_unreachable sw)
          0 (Network.switches_list n))
  in
  let themis_merged () =
    Array.fold_left
      (fun acc n ->
        match (Network.themis_totals n, acc) with
        | None, acc -> acc
        | Some t, None -> Some t
        | Some t, Some a -> Some (add_themis a t))
      None nets
  in
  let total_ooo () =
    List.fold_left (fun a n -> a + Rnic.ooo_arrivals n) 0 v_nics
  in
  (* Per-domain LB policy counters, merged in shard-id order. *)
  let merged_lb =
    Array.fold_left
      (fun acc so ->
        List.fold_left
          (fun acc (k, v) ->
            if List.mem_assoc k acc then
              List.map (fun (k', v') -> if k' = k then (k', v' + v) else (k', v')) acc
            else acc @ [ (k, v) ])
          acc so.so_lb)
      [] sos
  in
  let clean_symmetric =
    spec.Fuzz_spec.link_faults = []
    && spec.Fuzz_spec.slow_spine = None
    && spec.Fuzz_spec.drop_ppm = 0
    && spec.Fuzz_spec.corrupt_ppm = 0
    && spec.Fuzz_spec.dup_ppm = 0
    && spec.Fuzz_spec.delay_ppm = 0
    && spec.Fuzz_spec.jitter_ns = 0
  in
  let v_policy () =
    match scheme with
    | "reps" -> (
        match List.assoc_opt "reps_tainted_recycled" merged_lb with
        | Some n when n > 0 ->
            [ ("policy-reps", Printf.sprintf "%d tainted entropies recycled" n) ]
        | _ -> [])
    | "sprinklers" when clean_symmetric ->
        let ooo = total_ooo () in
        if ooo > 0 then
          [
            ( "policy-sprinklers",
              Printf.sprintf
                "%d out-of-order arrivals on a clean symmetric fabric" ooo );
          ]
        else []
    | "spritz" ->
        (* Routing and compiled weights are replica-identical; evaluate
           on shard 0's instance. *)
        let n = nets.(0) in
        let routing = Network.routing n and fab = Network.fabric n in
        List.concat_map
          (fun (tr : Fuzz_spec.transfer) ->
            let tor = Leaf_spine.tor_of_host fab tr.Fuzz_spec.src in
            let dst = tr.Fuzz_spec.dst in
            if Leaf_spine.tor_of_host fab dst = tor then []
            else
              let sw = Network.switch n ~node:tor in
              let w = Switch.compiled_path_weights sw ~dst in
              let sum = Array.fold_left ( + ) 0 w in
              let expect = Routing.path_count routing ~src:tor ~dst in
              if sum <> expect then
                [
                  ( "policy-spritz",
                    Printf.sprintf
                      "ToR %d weights toward host %d sum to %d, path count %d"
                      tor dst sum expect );
                ]
              else [])
          spec.Fuzz_spec.transfers
    | _ -> []
  in
  (* Supported specs carry no ppm faults, so the fault layer was never
     installed; its counters are identically zero. *)
  let zero_fault =
    {
      Fuzz_fault.drops_data = 0;
      drops_ctrl = 0;
      corrupts_data = 0;
      corrupts_ctrl = 0;
      dups_data = 0;
      dups_ctrl = 0;
      delays = 0;
    }
  in
  let view =
    {
      Fuzz_oracle.v_nics;
      v_port_data_drops = port_data_drops;
      v_switch_data_drops = switch_data_drops;
      v_switch_total_drops = switch_total_drops;
      v_themis = themis_merged;
      v_fault = zero_fault;
      v_flows = flows;
      v_policy;
    }
  in
  (* Merge the per-domain telemetry contexts (deterministic shard-id
     order) and install the result, mirroring the serial post-run state
     where the run's context is the current one. *)
  (match
     Array.to_list sos |> List.filter_map (fun so -> so.so_ctx)
   with
  | [] -> Telemetry.disable ()
  | ctxs -> Telemetry.use (Telemetry.merge ctxs));
  let summary = Experiment.telemetry_summary () in
  let events_jsonl =
    match Telemetry.ctx () with
    | Some ctx -> Export.events_to_jsonl ctx
    | None -> ""
  in
  let violations = Fuzz_oracle.check view ~summary in
  let deadline = spec.Fuzz_spec.deadline_ns in
  let completed_us =
    List.fold_left
      (fun acc fp ->
        match fp.Fuzz_oracle.fp_done with
        | Some t -> Stdlib.max acc (Sim_time.to_us t)
        | None -> Sim_time.to_us deadline)
      0. flows
  in
  let tail_fct_us =
    List.fold_left
      (fun acc fp ->
        let start = fp.Fuzz_oracle.fp_transfer.Fuzz_spec.start_ns in
        let fin =
          match fp.Fuzz_oracle.fp_done with
          | Some t -> Sim_time.to_us t
          | None -> Sim_time.to_us deadline
        in
        Stdlib.max acc (fin -. Sim_time.to_us start))
      0. flows
  in
  let outcome =
    {
      Fuzz_run.o_scheme = scheme;
      o_violations = violations;
      o_summary = summary;
      o_events_jsonl = events_jsonl;
      o_completed_us = completed_us;
      o_data_packets =
        List.fold_left (fun a n -> a + Rnic.data_packets_sent n) 0 v_nics;
      o_retx_packets =
        List.fold_left (fun a n -> a + Rnic.retx_packets_sent n) 0 v_nics;
      o_drops = port_data_drops () + switch_data_drops ();
      o_ooo = total_ooo ();
      o_tail_fct_us = tail_fct_us;
      o_themis = themis_merged ();
    }
  in
  ( outcome,
    {
      st_events = Array.fold_left (fun a so -> a + so.so_events) 0 sos;
      st_spilled = Shard_net.spilled rings;
    } )

let run_scheme spec ~scheme ~shards = fst (run_scheme_full spec ~scheme ~shards)

let run_scheme_safe spec ~scheme ~shards =
  match run_scheme spec ~scheme ~shards with
  | outcome -> outcome
  | exception (Fuzz_run.Bad_spec _ as e) -> raise e
  | exception (Unsupported _ as e) -> raise e
  | exception exn ->
      {
        Fuzz_run.o_scheme = scheme;
        o_violations =
          [ { Fuzz_oracle.oracle = "crash"; detail = Printexc.to_string exn } ];
        o_summary = None;
        o_events_jsonl = "";
        o_completed_us = 0.;
        o_data_packets = 0;
        o_retx_packets = 0;
        o_drops = 0;
        o_ooo = 0;
        o_tail_fct_us = 0.;
        o_themis = None;
      }

(* Canonicalization for serial-vs-sharded comparison: the merged event
   stream interleaves same-tick events from different domains in
   shard-id order, while the serial stream keeps execution order, so
   equality is judged on the time-sorted line multiset. *)
let canonical_events_jsonl (o : Fuzz_run.outcome) =
  String.split_on_char '\n' o.Fuzz_run.o_events_jsonl
  |> List.filter (fun l -> l <> "")
  |> List.sort String.compare
  |> String.concat "\n"

(* Sampler-fed rows are excluded: the sampler is a pure observer whose
   stop condition reads local queue occupancy, which is
   partition-dependent (the simulated objects it reads are not). *)
let sampler_row line =
  let starts p =
    String.length line >= String.length p
    && String.sub line 0 (String.length p) = p
  in
  starts "port_queue_bytes" || starts "qp_inflight_bytes"

let canonical_metrics_csv () =
  match Telemetry.metrics () with
  | None -> ""
  | Some m ->
      Export.metrics_to_csv m
      |> String.split_on_char '\n'
      |> List.filter (fun l -> l <> "" && not (sampler_row l))
      |> List.sort String.compare
      |> String.concat "\n"
