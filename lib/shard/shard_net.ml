(* Interlink lowering: every fabric link's propagation is routed through
   a ring, including links whose two ends live on the same shard.

   Uniformity is what makes the result invariant in the shard count: a
   propagation is always (1) stamped at tx-done time with a canonical
   key, (2) parked in a ring, (3) drained at the next window barrier,
   sorted by that key, and scheduled into the consumer's engine.  The
   canonical key is

     (arrival time, tx-done tick, directed-port id, per-port sequence)

   — every component is computable on the producing shard alone and is
   identical whatever the partition, so 1-, 2- and 4-shard runs schedule
   byte-identical event sequences.  The serial engine's insertion order
   coincides with this key whenever two propagations differ in arrival
   time or in tx-done tick; only exact cross-port timing ties at shared
   state can order differently (see DESIGN.md §14). *)

type rings = {
  part : Shard_part.t;
  barrier : Domain_barrier.t;
  matrix : Spsc_ring.t array array;  (* matrix.(producer).(consumer) *)
}

let stride = 4 + Packet_wire.words

let make_rings ~part =
  let n = Shard_part.shards part in
  {
    part;
    barrier = Domain_barrier.create n;
    matrix =
      Array.init n (fun _ -> Array.init n (fun _ -> Spsc_ring.create ~stride ()));
  }

let barrier r = r.barrier
let part r = r.part

(* A drained record, pending canonical sort. *)
type arrival = { fire : Sim_time.t; tick : Sim_time.t; key : int; seq : int }

type t = {
  sid : int;
  rings : rings;
  eng : Engine.t;
  dir_ports : Port.t array;  (* directed-port id = link_id * 2 + dir *)
  port_seq : int array;  (* per directed port, in serialization order *)
  scratch : int array;
  cb_arrival : Engine.callback;
  mutable pushed : int;  (* records pushed since the last [flags] call *)
  (* Reused between drains to keep the barrier path allocation-light.
     Entries [0 .. pend_n) carry records popped at an earlier barrier
     whose tx-done tick lay beyond that window's horizon. *)
  mutable sort_buf : arrival array;
  mutable pkt_buf : Packet.t array;
  mutable pend_n : int;
}

let dummy_arrival = { fire = 0; tick = 0; key = 0; seq = 0 }

let wrap rings ~sid net =
  let part = rings.part in
  let topo = (Network.fabric net).Leaf_spine.topo in
  let n_links = Topology.link_count topo in
  let dir_ports = Array.make (2 * n_links) None in
  for link_id = 0 to n_links - 1 do
    match Network.link_ports_pair net ~link_id with
    | None -> ()
    | Some (pab, pba) ->
        dir_ports.(2 * link_id) <- Some pab;
        dir_ports.((2 * link_id) + 1) <- Some pba
  done;
  let dir_ports =
    Array.map
      (function
        | Some p -> p
        | None -> failwith "Shard_net.wrap: link without ports")
      dir_ports
  in
  let eng = Network.engine net in
  let cb =
    Engine.register_callback eng (fun key _ obj ->
        Port.receive_remote dir_ports.(key) (Obj.obj obj : Packet.t))
  in
  let t =
    {
      sid;
      rings;
      eng;
      dir_ports;
      port_seq = Array.make (2 * n_links) 0;
      scratch = Array.make stride 0;
      cb_arrival = cb;
      pushed = 0;
      sort_buf = Array.make 64 dummy_arrival;
      pkt_buf = Array.make 64 (Obj.magic 0 : Packet.t);
      pend_n = 0;
    }
  in
  (* Lower every directed port whose transmitting node this shard owns:
     its tx-done hands the packet to us instead of scheduling local
     propagation. *)
  let push ~key ~dst_shard ~delay (pkt : Packet.t) =
    let now = Engine.now eng in
    let seq = t.port_seq.(key) in
    t.port_seq.(key) <- seq + 1;
    t.scratch.(0) <- key;
    t.scratch.(1) <- now + delay;
    t.scratch.(2) <- now;
    t.scratch.(3) <- seq;
    Packet_wire.encode pkt ~into:t.scratch ~off:4;
    Spsc_ring.push rings.matrix.(sid).(dst_shard) ~src:t.scratch ~off:0;
    t.pushed <- t.pushed + 1;
    (* The consumer decodes a fresh packet from its own pool; this
       domain is done with the object. *)
    Packet_pool.release pkt
  in
  for link_id = 0 to n_links - 1 do
    let link = Topology.link topo link_id in
    let sa = Shard_part.shard_of part link.Topology.a
    and sb = Shard_part.shard_of part link.Topology.b in
    if sa = sid then begin
      let key = 2 * link_id in
      Port.set_interlink t.dir_ports.(key) (fun ~delay pkt ->
          push ~key ~dst_shard:sb ~delay pkt)
    end;
    if sb = sid then begin
      let key = (2 * link_id) + 1 in
      Port.set_interlink t.dir_ports.(key) (fun ~delay pkt ->
          push ~key ~dst_shard:sa ~delay pkt)
    end
  done;
  t

let compare_arrival a b =
  if a.fire <> b.fire then compare a.fire b.fire
  else if a.tick <> b.tick then compare a.tick b.tick
  else if a.key <> b.key then compare a.key b.key
  else compare a.seq b.seq

(* The packet array must follow the arrival array through the canonical
   sort, so sort an index permutation over both.

   [upto] is the window horizon the barrier just closed.  A producer
   that has already crossed that barrier and raced into its next window
   can have parked records stamped beyond [upto]; admitting them here
   would hand them smaller engine sequence numbers than same-fire-time
   records drained at their proper barrier, making same-tick tie order
   a function of thread timing.  Such records are deferred — carried in
   the buffers until the barrier their tick belongs to. *)
let drain t ~upto =
  let n = ref t.pend_n in
  let shards = Shard_part.shards t.rings.part in
  for p = 0 to shards - 1 do
    ignore
      (Spsc_ring.drain t.rings.matrix.(p).(t.sid) (fun buf off ->
           if !n >= Array.length t.sort_buf then begin
             let cap = 2 * Array.length t.sort_buf in
             let sb = Array.make cap dummy_arrival in
             Array.blit t.sort_buf 0 sb 0 !n;
             t.sort_buf <- sb;
             let pb = Array.make cap t.pkt_buf.(0) in
             Array.blit t.pkt_buf 0 pb 0 !n;
             t.pkt_buf <- pb
           end;
           t.sort_buf.(!n) <-
             {
               fire = buf.(off + 1);
               tick = buf.(off + 2);
               key = buf.(off);
               seq = buf.(off + 3);
             };
           t.pkt_buf.(!n) <- Packet_wire.decode buf ~off:(off + 4);
           incr n))
  done;
  if !n > 0 then begin
    let idx = Array.init !n (fun i -> i) in
    Array.sort (fun i j -> compare_arrival t.sort_buf.(i) t.sort_buf.(j)) idx;
    Array.iter
      (fun i ->
        let a = t.sort_buf.(i) in
        if a.tick <= upto then
          ignore
            (Engine.schedule_call_at t.eng ~time:a.fire t.cb_arrival ~a:a.key
               ~b:0
               ~obj:(Obj.repr t.pkt_buf.(i))))
      idx;
    (* Compact deferred records to the buffer front for the next call;
       relative order is irrelevant, the next drain re-sorts. *)
    let kept = ref 0 in
    for i = 0 to !n - 1 do
      if t.sort_buf.(i).tick > upto then begin
        t.sort_buf.(!kept) <- t.sort_buf.(i);
        t.pkt_buf.(!kept) <- t.pkt_buf.(i);
        incr kept
      end
    done;
    t.pend_n <- !kept
  end

(* Bit 0 of the window flags: this shard either has pending engine work
   or parked records in an outgoing ring during the last window.  The
   OR-reduction over all shards is therefore zero exactly when the whole
   fleet is quiescent. *)
let activity_flag t =
  let active = Engine.pending t.eng > 0 || t.pushed > 0 || t.pend_n > 0 in
  t.pushed <- 0;
  if active then 1 else 0

let spilled rings =
  let acc = ref 0 in
  Array.iter
    (fun row -> Array.iter (fun r -> acc := !acc + Spsc_ring.spilled r) row)
    rings.matrix;
  !acc
