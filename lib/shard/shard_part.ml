type t = {
  shards : int;
  n_nodes : int;
  lookahead : Sim_time.t;
  shard_of_node : int array;
}

let force_env = "THEMIS_SHARDS_FORCE"

let ensure_domains ~shards =
  if shards <= 1 then Ok ()
  else if Domain.recommended_domain_count () > 1 then Ok ()
  else
    match Sys.getenv_opt force_env with
    | Some v when v <> "" -> Ok ()
    | Some _ | None ->
        Error
          (Printf.sprintf
             "sharded simulation needs a multicore runtime, but \
              Domain.recommended_domain_count () = 1 on this machine; run \
              serially (--shards 1) or set %s=1 to force domain spawning"
             force_env)

let partition ~n_leaves ~n_spines ~hosts_per_leaf ~link_delay ~shards =
  if shards < 1 then Error "shards must be >= 1"
  else if shards > n_leaves then
    Error
      (Printf.sprintf "%d shards over %d leaves: at most one shard per ToR"
         shards n_leaves)
  else if link_delay < 1 then
    Error "link delay 0 leaves no conservative lookahead window"
  else begin
    let n_hosts = n_leaves * hosts_per_leaf in
    let n_nodes = n_hosts + n_leaves + n_spines in
    let shard_of_node = Array.make n_nodes 0 in
    (* ToR-affine cut: leaves in contiguous blocks, hosts follow their
       ToR (the host <-> ToR edge never crosses a shard), spines dealt
       round-robin so every shard drives some spine work. *)
    for l = 0 to n_leaves - 1 do
      let s = l * shards / n_leaves in
      shard_of_node.(n_hosts + l) <- s;
      for h = 0 to hosts_per_leaf - 1 do
        shard_of_node.((l * hosts_per_leaf) + h) <- s
      done
    done;
    for j = 0 to n_spines - 1 do
      shard_of_node.(n_hosts + n_leaves + j) <- j mod shards
    done;
    Ok { shards; n_nodes; lookahead = link_delay; shard_of_node }
  end

let of_shape (shape : Fuzz_spec.shape) ~shards =
  match shape with
  | Fuzz_spec.Ft _ -> Error "fat-tree shapes cannot be sharded"
  | Fuzz_spec.Ls { n_leaves; n_spines; hosts_per_leaf; link_delay_ns; _ } ->
      partition ~n_leaves ~n_spines ~hosts_per_leaf ~link_delay:link_delay_ns
        ~shards

let supported (spec : Fuzz_spec.t) ~shards =
  match of_shape spec.Fuzz_spec.shape ~shards with
  | Error _ as e -> e
  | Ok _ ->
      if
        spec.Fuzz_spec.drop_ppm <> 0
        || spec.Fuzz_spec.corrupt_ppm <> 0
        || spec.Fuzz_spec.dup_ppm <> 0
        || spec.Fuzz_spec.delay_ppm <> 0
      then
        Error
          "per-delivery fault injection consumes one RNG in global delivery \
           order; sharded runs require the ppm knobs to be zero"
      else Ok ()

let shards t = t.shards
let lookahead t = t.lookahead
let shard_of t node = t.shard_of_node.(node)
let owned t sid node = t.shard_of_node.(node) = sid
