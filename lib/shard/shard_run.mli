(** Sharded execution of one (spec, scheme) fuzz scenario across OCaml 5
    domains (DESIGN.md §14).

    Each shard builds the full network from the identical deterministic
    code path (replica builds); ownership only gates who posts sends,
    who samples which probe, and who logs control-plane telemetry.
    Every fabric propagation is routed through the canonical ring
    machinery ({!Shard_net}), and the drive loop mirrors
    {!Fuzz_run.run_scheme} — 5 ms completion marks, deadline,
    post-completion drain — with each span cut into conservative
    lookahead windows ({!Shard.advance}).

    The returned {!Fuzz_run.outcome} is invariant in [shards]; it equals
    the plain serial outcome (canonicalized, see
    {!canonical_events_jsonl}) except on exact same-tick cross-port
    timing ties, which the canonical ordering resolves by port id where
    the serial engine uses insertion order. *)

type stats = {
  st_events : int;  (** Engine events processed, summed over shards. *)
  st_spilled : int;  (** Interlink ring overflows (ring-sizing signal). *)
}

exception Unsupported of string
(** The spec cannot run sharded ({!Shard_part.supported}), or more than
    one shard was requested on a single-core runtime
    ({!Shard_part.ensure_domains}). *)

exception Crashed of string
(** A shard's simulation raised; peers were unwound via the barrier
    crash protocol.  [run_scheme_safe] converts this to a ["crash"]
    oracle violation. *)

val run_scheme : Fuzz_spec.t -> scheme:string -> shards:int -> Fuzz_run.outcome
val run_scheme_full :
  Fuzz_spec.t -> scheme:string -> shards:int -> Fuzz_run.outcome * stats

val run_scheme_safe :
  Fuzz_spec.t -> scheme:string -> shards:int -> Fuzz_run.outcome
(** Like {!Fuzz_run.run_scheme_safe}: simulator crashes become a
    ["crash"] violation; {!Fuzz_run.Bad_spec} and {!Unsupported} still
    propagate. *)

val canonical_events_jsonl : Fuzz_run.outcome -> string
(** The outcome's event dump as a sorted line multiset — the form in
    which serial and sharded runs are byte-comparable (they interleave
    same-tick events from different components differently). *)

val canonical_metrics_csv : unit -> string
(** Sorted CSV rows of the current telemetry context's registry, minus
    sampler-fed rows ([port_queue_bytes*], [qp_inflight_bytes*]): the
    sampler is a pure observer whose stop condition reads local queue
    occupancy, which is partition-dependent. *)
