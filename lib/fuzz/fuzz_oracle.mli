(** End-of-run invariant oracles.

    A scenario run exposes its network through a scheme-agnostic {!view}
    (both {!Network} and {!Fat_tree_net} runs build one) and the oracles
    assert, after the run has drained:

    - {b completion}: every posted transfer completed before the deadline
      — with the NACK filter in the loop this is also the livelock check;
    - {b gapless delivery}: each completed flow's receiver ends at
      ePSN = message packet count with an empty out-of-order buffer and
      exactly the message bytes delivered;
    - {b quiescence}: every sender is idle with nothing outstanding;
    - {b packet conservation} (data packets only):
      sent + injected duplicates = received at NICs + port drops
      + switch drops + injected drops + injected corruptions;
    - {b telemetry consistency}: the typed-metric registry agrees with the
      simulator's own counters (data/retx/NACK/drop totals, completed
      flows);
    - {b Themis accounting}: NACKs seen = blocked + forwarded-valid +
      forwarded-underflow, and compensations sent plus cancelled never
      exceed blocked NACKs (each outcome consumes one blocked NACK);
    - {b policy invariants}: scheme-specific behavioural oracles supplied
      by the runner through [v_policy] — REPS never recycles a tainted
      entropy, Sprinklers produces zero out-of-order arrivals on a clean
      symmetric fabric, Spritz path weights sum to the path count.

    Oracles that only make sense on a fully completed run (gapless,
    quiescence, conservation) are skipped when a completion violation is
    already being reported, so one root cause yields one violation. *)

type flow_probe = {
  fp_index : int;
  fp_transfer : Fuzz_spec.transfer;
  fp_conn : Flow_id.t;
  fp_packets : int;
  fp_dst_nic : Rnic.t;
  mutable fp_done : Sim_time.t option;
}

type view = {
  v_nics : Rnic.t list;
  v_port_data_drops : unit -> int;
  v_switch_data_drops : unit -> int;
  v_switch_total_drops : unit -> int;  (** All packets, buffer + unreachable. *)
  v_themis : unit -> Network.themis_totals option;
  v_fault : Fuzz_fault.counters;
  v_flows : flow_probe list;
  v_policy : unit -> (string * string) list;
      (** Scheme-specific invariant probes, as [(oracle, detail)]
          violation pairs; [fun () -> []] when no policy oracle applies. *)
}

type violation = { oracle : string; detail : string }

val all_done : view -> bool

val check : view -> summary:Experiment.telemetry_summary option -> violation list

val pp_violation : Format.formatter -> violation -> unit
