(** Greedy failure minimization.

    Given a spec that violates an oracle under [scheme], repeatedly try
    simpler variants — remove link faults, zero fault probabilities,
    drop transfers, halve messages, restore default buffer and ring
    sizing — keeping a variant whenever it {e still} fails and has a
    strictly smaller {!Fuzz_spec.cost}, until a fixpoint or the re-run
    budget is exhausted.  The result is the one-line repro the harness
    prints. *)

type result = {
  minimized : Fuzz_spec.t;  (** [schemes] narrowed to [[scheme]]. *)
  runs_used : int;
  shrunk : bool;  (** At least one simplification was accepted. *)
}

val candidates : Fuzz_spec.t -> Fuzz_spec.t list
(** The one-step simplifications [minimize] tries, cheapest win first.
    None increases {!Fuzz_spec.cost}; the greedy loop additionally
    requires a strict decrease, which is its termination argument. *)

val minimize : ?budget:int -> spec:Fuzz_spec.t -> scheme:string -> unit -> result
(** [budget] bounds the number of re-runs (default 48). *)
