type failure = {
  f_seed : int;
  f_scheme : string;
  f_spec : Fuzz_spec.t;
  f_minimized : Fuzz_spec.t option;
  f_violations : Fuzz_oracle.violation list;
}

type report = {
  r_specs : int;
  r_runs : int;
  r_det_checks : int;
  r_failures : failure list;
  r_wall_s : float;
}

let ok r = r.r_failures = []

let repro_line spec =
  Printf.sprintf "dune exec bin/themis_fuzz_cli.exe -- replay '%s'"
    (Fuzz_spec.to_string spec)

let violations_line vs =
  String.concat "; "
    (List.map (Format.asprintf "%a" Fuzz_oracle.pp_violation) vs)

let det_violation = { Fuzz_oracle.oracle = "determinism"; detail = "" }

let determinism_check ~log ~seed spec ~scheme =
  let a = Fuzz_run.run_scheme_safe spec ~scheme in
  let b = Fuzz_run.run_scheme_safe spec ~scheme in
  let summaries_differ = a.Fuzz_run.o_summary <> b.Fuzz_run.o_summary in
  let events_differ = a.Fuzz_run.o_events_jsonl <> b.Fuzz_run.o_events_jsonl in
  if summaries_differ || events_differ then begin
    let detail =
      Printf.sprintf
        "two runs of seed %d under %s diverge (summaries %s, event dumps %s)"
        seed scheme
        (if summaries_differ then "differ" else "equal")
        (if events_differ then "differ" else "equal")
    in
    log (Printf.sprintf "DETERMINISM FAILURE: %s" detail);
    log ("  " ^ repro_line { spec with Fuzz_spec.schemes = [ scheme ] });
    Some
      {
        f_seed = seed;
        f_scheme = scheme;
        f_spec = spec;
        f_minimized = None;
        f_violations = [ { det_violation with Fuzz_oracle.detail } ];
      }
  end
  else None

let run_seeds ?(profile = Fuzz_spec.Quick) ?(det_every = 10) ?(minimize = true)
    ?(budget_s = 0.) ?(log = ignore) ~seeds () =
  let t0 = Sys.time () in
  let specs = ref 0 and runs = ref 0 and det_checks = ref 0 in
  let failures = ref [] in
  let over_budget () = budget_s > 0. && Sys.time () -. t0 > budget_s in
  let truncated = ref false in
  List.iteri
    (fun idx seed ->
      if over_budget () then truncated := true
      else begin
        incr specs;
        let spec = Fuzz_spec.generate ~profile ~seed () in
        let schemes = Fuzz_run.schemes_of spec in
        List.iter
          (fun scheme ->
            incr runs;
            let o = Fuzz_run.run_scheme_safe spec ~scheme in
            if Fuzz_run.failed o then begin
              log
                (Printf.sprintf "FAILURE: seed %d scheme %s: %s" seed scheme
                   (violations_line o.Fuzz_run.o_violations));
              let minimized =
                if minimize then begin
                  let r = Fuzz_shrink.minimize ~spec ~scheme () in
                  runs := !runs + r.Fuzz_shrink.runs_used;
                  Some r.Fuzz_shrink.minimized
                end
                else None
              in
              let repro =
                match minimized with
                | Some m -> m
                | None -> { spec with Fuzz_spec.schemes = [ scheme ] }
              in
              log ("  " ^ repro_line repro);
              failures :=
                {
                  f_seed = seed;
                  f_scheme = scheme;
                  f_spec = spec;
                  f_minimized = minimized;
                  f_violations = o.Fuzz_run.o_violations;
                }
                :: !failures
            end)
          schemes;
        if det_every > 0 && idx mod det_every = 0 then begin
          incr det_checks;
          let scheme =
            List.nth schemes (idx / det_every mod List.length schemes)
          in
          runs := !runs + 2;
          match determinism_check ~log ~seed spec ~scheme with
          | Some f -> failures := f :: !failures
          | None -> ()
        end
      end)
    seeds;
  if !truncated then
    log
      (Printf.sprintf
         "NOTE: wall budget %.0fs exhausted after %d/%d specs — coverage \
          truncated"
         budget_s !specs (List.length seeds));
  {
    r_specs = !specs;
    r_runs = !runs;
    r_det_checks = !det_checks;
    r_failures = List.rev !failures;
    r_wall_s = Sys.time () -. t0;
  }

let quick ?(specs = 200) ?(seed = 1) ?(budget_s = 0.) ?(log = ignore) () =
  run_seeds ~profile:Fuzz_spec.Quick ~det_every:10 ~minimize:true ~budget_s
    ~log
    ~seeds:(List.init specs (fun i -> seed + i))
    ()

let soak ?(specs = 2_000) ?(seed = 1_000_000) ?(budget_s = 0.)
    ?(log = ignore) () =
  run_seeds ~profile:Fuzz_spec.Soak ~det_every:20 ~minimize:true ~budget_s ~log
    ~seeds:(List.init specs (fun i -> seed + i))
    ()

let replay ?(log = ignore) s =
  match Fuzz_spec.of_string s with
  | Error e -> Error e
  | Ok spec -> (
      let t0 = Sys.time () in
      match Fuzz_run.run spec with
      | exception Fuzz_run.Bad_spec m -> Error m
      | outcomes ->
          List.iter
            (fun o -> log (Format.asprintf "%a" Fuzz_run.pp_outcome o))
            outcomes;
          let failures =
            List.filter_map
              (fun o ->
                if Fuzz_run.failed o then
                  Some
                    {
                      f_seed = spec.Fuzz_spec.seed;
                      f_scheme = o.Fuzz_run.o_scheme;
                      f_spec = spec;
                      f_minimized = None;
                      f_violations = o.Fuzz_run.o_violations;
                    }
                else None)
              outcomes
          in
          let det_failure =
            match Fuzz_run.schemes_of spec with
            | [] -> None
            | scheme :: _ ->
                determinism_check ~log ~seed:spec.Fuzz_spec.seed spec ~scheme
          in
          let failures =
            failures @ Option.to_list det_failure
          in
          Ok
            {
              r_specs = 1;
              r_runs = List.length outcomes + 2;
              r_det_checks = 1;
              r_failures = failures;
              r_wall_s = Sys.time () -. t0;
            })
