(** Fuzz scenario specifications.

    A spec is the complete, self-contained description of one randomized
    scenario: fabric shape, workload, injected faults and the scheme list
    to run it under.  Every field is an integer (probabilities in parts
    per million, times in nanoseconds, bandwidths in Gbps), so
    [to_string]/[of_string] round-trip {e exactly} and a printed spec is a
    one-line reproducer:

    {v dune exec bin/themis_fuzz_cli.exe -- replay '<spec>' v}

    [generate ~seed] derives a spec deterministically from a seed, and
    [of_string "gen:<seed>"] resolves the same spec, so failures found in
    seed-sweep mode can be replayed without shipping the full string. *)

type profile = Quick | Soak
(** Generation bounds: [Quick] keeps fabrics and messages small enough for
    CI sweeps; [Soak] allows bigger fabrics (including k = 8 fat trees),
    longer messages and more concurrent faults. *)

type shape =
  | Ls of {
      n_leaves : int;
      n_spines : int;
      hosts_per_leaf : int;
      host_gbps : int;
      fabric_gbps : int;  (** May differ from [host_gbps] (asymmetry). *)
      link_delay_ns : int;
    }
  | Ft of { k : int; gbps : int; link_delay_ns : int }

type transfer = { src : int; dst : int; bytes : int; start_ns : int }

type link_fault = {
  fault_link : int;  (** Link id in the generated topology. *)
  down_ns : int;
  up_ns : int;  (** [<= down_ns] means the link stays down. *)
}

type t = {
  seed : int;  (** Drives run-time randomness (fabric RNG, fault RNG). *)
  shape : shape;
  gbn : bool;  (** Go-back-N NICs instead of NIC-SR. *)
  queue_factor_pct : int;  (** Themis-D ring factor F, percent. *)
  per_port_kb : int;  (** Switch per-port buffer cap, KiB. *)
  jitter_ns : int;  (** Last-hop jitter bound (leaf-spine only). *)
  drop_ppm : int;  (** Per-delivery random drop probability. *)
  corrupt_ppm : int;  (** Dropped as a CRC failure; counted separately. *)
  dup_ppm : int;  (** Duplicate delivery, re-scheduled later. *)
  delay_ppm : int;  (** Extra delivery delay in [[1, delay_max_ns]]. *)
  delay_max_ns : int;
  shrink_pathset : bool;
      (** Link-failure handling: re-spray over surviving spines instead of
          the default ECMP fallback. *)
  deadline_ns : int;  (** Liveness bound for the completion oracle. *)
  schemes : string list;  (** Scheme names; [[]] means {!all_schemes}. *)
  transfers : transfer list;
  link_faults : link_fault list;
  slow_spine : (int * int) option;
      (** [(spine_index, gbps)]: derate every leaf<->spine link of that
          spine — the persistently-congested / asymmetric-speed arena
          scenarios.  Leaf-spine shapes only; serialized as [sspine=],
          absent on pre-arena corpus lines (parsed as [None]). *)
}

val all_schemes : string list
(** ["ecmp"; "spray"; "ar"; "themis"] — NIC-SR over ECMP, random packet
    spraying, adaptive routing, and the full Themis system. *)

val n_hosts_of_shape : shape -> int

val fabric_link_id : shape -> leaf:int -> spine:int -> int
(** Link id of a leaf<->spine link in the generated topology (host links
    occupy ids [0 .. n_hosts - 1]).  Leaf-spine shapes only. *)

val shape_to_string : shape -> string
(** ["ls:leaves:spines:hosts:hostg:fabg:delay"] or ["ft:k:gbps:delay"] —
    the shape fragment of the [fz1] grammar, reused verbatim by
    [Workload_spec]. *)

val shape_of_string : string -> (shape, string) result

val packets_of_bytes : t -> int -> int
(** Messages are segmented at the (fixed, 1500 B) MTU. *)

val mtu : int

val generate : ?profile:profile -> seed:int -> unit -> t
(** Deterministic: the same seed always yields the same spec. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Inverse of [to_string]; also accepts ["gen:<seed>"] and
    ["gen:<seed>:soak"] sugar for generated specs. *)

val cost : t -> int
(** Shrinking order: a spec with a smaller cost is a simpler repro. *)

val pp : Format.formatter -> t -> unit
