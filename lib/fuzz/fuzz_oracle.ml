type flow_probe = {
  fp_index : int;
  fp_transfer : Fuzz_spec.transfer;
  fp_conn : Flow_id.t;
  fp_packets : int;
  fp_dst_nic : Rnic.t;
  mutable fp_done : Sim_time.t option;
}

type view = {
  v_nics : Rnic.t list;
  v_port_data_drops : unit -> int;
  v_switch_data_drops : unit -> int;
  v_switch_total_drops : unit -> int;
  v_themis : unit -> Network.themis_totals option;
  v_fault : Fuzz_fault.counters;
  v_flows : flow_probe list;
  v_policy : unit -> (string * string) list;
}

type violation = { oracle : string; detail : string }

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.oracle v.detail

let all_done view = List.for_all (fun fp -> fp.fp_done <> None) view.v_flows

let vio acc oracle fmt =
  Format.kasprintf (fun detail -> { oracle; detail } :: acc) fmt

let flow_label fp =
  Format.asprintf "flow#%d %d>%d %dB (%a)" fp.fp_index fp.fp_transfer.Fuzz_spec.src
    fp.fp_transfer.Fuzz_spec.dst fp.fp_transfer.Fuzz_spec.bytes Flow_id.pp
    fp.fp_conn

let check_completion view acc =
  List.fold_left
    (fun acc fp ->
      match fp.fp_done with
      | Some _ -> acc
      | None -> vio acc "completion" "%s did not complete" (flow_label fp))
    acc view.v_flows

let check_gapless view acc =
  List.fold_left
    (fun acc fp ->
      if fp.fp_done = None then acc
      else
        match Rnic.receiver fp.fp_dst_nic ~conn:fp.fp_conn with
        | None -> vio acc "gapless" "%s: no receive context" (flow_label fp)
        | Some recv ->
            let acc =
              if Receiver.epsn recv <> fp.fp_packets then
                vio acc "gapless" "%s: ePSN %d, expected %d" (flow_label fp)
                  (Receiver.epsn recv) fp.fp_packets
              else acc
            in
            let acc =
              if Receiver.ooo_buffered recv <> 0 then
                vio acc "gapless" "%s: %d packets still buffered out-of-order"
                  (flow_label fp)
                  (Receiver.ooo_buffered recv)
              else acc
            in
            if Receiver.delivered_bytes recv <> fp.fp_transfer.Fuzz_spec.bytes
            then
              vio acc "gapless" "%s: delivered %d bytes, expected %d"
                (flow_label fp)
                (Receiver.delivered_bytes recv)
                fp.fp_transfer.Fuzz_spec.bytes
            else acc)
    acc view.v_flows

let check_quiescence view acc =
  List.fold_left
    (fun acc nic ->
      List.fold_left
        (fun acc s ->
          if Sender.idle s && Sender.outstanding s = 0 then acc
          else
            vio acc "quiescence"
              "node %d sender %a: idle=%b outstanding=%d after drain"
              (Rnic.node nic) Flow_id.pp (Sender.conn s) (Sender.idle s)
              (Sender.outstanding s))
        acc (Rnic.senders nic))
    acc view.v_nics

let sum_nics view f = List.fold_left (fun acc n -> acc + f n) 0 view.v_nics

let check_conservation view acc =
  let sent = sum_nics view Rnic.data_packets_sent in
  let received = sum_nics view Rnic.data_packets_received in
  let port_drops = view.v_port_data_drops () in
  let switch_drops = view.v_switch_data_drops () in
  let f = view.v_fault in
  let injected_losses = f.Fuzz_fault.drops_data + f.Fuzz_fault.corrupts_data in
  let dups = f.Fuzz_fault.dups_data in
  let lhs = sent + dups in
  let rhs = received + port_drops + switch_drops + injected_losses in
  if lhs <> rhs then
    vio acc "conservation"
      "sent %d + injected dups %d <> received %d + port drops %d + switch \
       drops %d + injected losses %d (delta %d)"
      sent dups received port_drops switch_drops injected_losses (lhs - rhs)
  else acc

let check_telemetry view ~summary acc =
  match summary with
  | None -> vio acc "telemetry" "no telemetry context after the run"
  | Some (s : Experiment.telemetry_summary) ->
      let eq acc what reg sim =
        if reg <> sim then
          vio acc "telemetry" "%s: registry %d, simulator %d" what reg sim
        else acc
      in
      let acc =
        eq acc "data_packets" s.Experiment.tele_data_packets
          (sum_nics view Rnic.data_packets_sent)
      in
      let acc =
        eq acc "retx_packets" s.Experiment.tele_retx_packets
          (sum_nics view Rnic.retx_packets_sent)
      in
      let acc =
        eq acc "nacks_generated" s.Experiment.tele_nacks_generated
          (sum_nics view Rnic.nacks_sent)
      in
      let acc =
        eq acc "buffer_drops" s.Experiment.tele_buffer_drops
          (view.v_switch_total_drops ())
      in
      if all_done view then
        eq acc "flows_completed" s.Experiment.tele_flows_completed
          (List.length view.v_flows)
      else acc

let check_themis view acc =
  match view.v_themis () with
  | None -> acc
  | Some (tt : Network.themis_totals) ->
      let acc =
        let split =
          tt.Network.nacks_blocked + tt.Network.nacks_forwarded_valid
          + tt.Network.nacks_forwarded_underflow
        in
        if tt.Network.nacks_seen <> split then
          vio acc "themis-accounting"
            "nacks_seen %d <> blocked %d + valid %d + underflow %d"
            tt.Network.nacks_seen tt.Network.nacks_blocked
            tt.Network.nacks_forwarded_valid tt.Network.nacks_forwarded_underflow
        else acc
      in
      (* Every compensation outcome — sent, or cancelled either after
         arming or immediately (the ePSN packet was already past the
         ToR) — consumes exactly one blocked NACK. *)
      if
        tt.Network.compensation_sent + tt.Network.compensation_cancelled
        > tt.Network.nacks_blocked
      then
        vio acc "themis-accounting"
          "compensation sent %d + cancelled %d > nacks blocked %d"
          tt.Network.compensation_sent tt.Network.compensation_cancelled
          tt.Network.nacks_blocked
      else acc

let check_policy view acc =
  List.fold_left
    (fun acc (oracle, detail) -> { oracle; detail } :: acc)
    acc
    (view.v_policy ())

let check view ~summary =
  let acc = check_completion view [] in
  let acc =
    (* The post-completion invariants presuppose a drained run; when a
       flow is already reported stuck they would only echo the same root
       cause with noisier numbers. *)
    if all_done view then
      check_conservation view (check_quiescence view (check_gapless view acc))
    else acc
  in
  let acc = check_telemetry view ~summary acc in
  List.rev (check_policy view (check_themis view acc))
