type outcome = {
  o_scheme : string;
  o_violations : Fuzz_oracle.violation list;
  o_summary : Experiment.telemetry_summary option;
  o_events_jsonl : string;
  o_completed_us : float;
  o_data_packets : int;
  o_retx_packets : int;
  o_drops : int;
  o_ooo : int;
  o_tail_fct_us : float;
  o_themis : Network.themis_totals option;
}

exception Bad_spec of string

let scheme_names =
  Fuzz_spec.all_schemes
  @ [ "psn-spray"; "themis-nocomp"; "reps"; "prime"; "sprinklers"; "spritz" ]

let schemes_of (spec : Fuzz_spec.t) =
  match spec.Fuzz_spec.schemes with
  | [] -> Fuzz_spec.all_schemes
  | ss -> ss

let ls_scheme = function
  | "ecmp" -> Network.Ecmp
  | "spray" -> Network.Random_spray
  | "ar" -> Network.Adaptive
  | "psn-spray" -> Network.Psn_spray_only
  | "themis" -> Network.Themis { compensation = true }
  | "themis-nocomp" -> Network.Themis { compensation = false }
  | "reps" -> Network.Reps
  | "prime" -> Network.Prime
  | "sprinklers" -> Network.Sprinklers
  | "spritz" -> Network.Spritz
  | s -> raise (Bad_spec (Printf.sprintf "unknown scheme %S" s))

(* Fat trees have no standalone Psn_spray_only scheme object; the
   equivalent ablation is the Psn_spray policy at every tier. *)
let ft_scheme = function
  | "ecmp" -> (false, true, Lb_policy.Ecmp)
  | "spray" -> (false, true, Lb_policy.Random_spray)
  | "ar" -> (false, true, Lb_policy.Adaptive)
  | "psn-spray" -> (false, true, Lb_policy.Psn_spray)
  | "themis" -> (true, true, Lb_policy.Ecmp)
  | "themis-nocomp" -> (true, false, Lb_policy.Ecmp)
  | "reps" -> (false, true, Lb_policy.Reps)
  | "prime" -> (false, true, Lb_policy.Prime)
  | "sprinklers" -> (false, true, Lb_policy.Sprinklers)
  | "spritz" -> (false, true, Lb_policy.Spritz)
  | s -> raise (Bad_spec (Printf.sprintf "unknown scheme %S" s))

type net = Net_ls of Network.t | Net_ft of Fat_tree_net.t

let engine = function
  | Net_ls n -> Network.engine n
  | Net_ft n -> Fat_tree_net.engine n

let iter_ports net f =
  match net with
  | Net_ls n -> Network.iter_ports n f
  | Net_ft n -> Fat_tree_net.iter_ports n f

let nics_list = function
  | Net_ls n -> Network.nics_list n
  | Net_ft n -> Fat_tree_net.nics_list n

let switches_list = function
  | Net_ls n -> Network.switches_list n
  | Net_ft n -> Fat_tree_net.switches_list n

let themis_totals = function
  | Net_ls n -> Network.themis_totals n
  | Net_ft n -> Fat_tree_net.themis_totals n

let nic net ~host =
  match net with
  | Net_ls n -> Network.nic n ~host
  | Net_ft n -> Fat_tree_net.nic n ~host

let connect net ~src ~dst =
  match net with
  | Net_ls n -> Network.connect n ~src ~dst
  | Net_ft n -> Fat_tree_net.connect n ~src ~dst

let drive net ?until () =
  match net with
  | Net_ls n -> Network.run ?until n
  | Net_ft n -> Fat_tree_net.run ?until n

let validate (spec : Fuzz_spec.t) =
  let n = Fuzz_spec.n_hosts_of_shape spec.Fuzz_spec.shape in
  List.iter
    (fun (tr : Fuzz_spec.transfer) ->
      if tr.Fuzz_spec.src < 0 || tr.Fuzz_spec.src >= n || tr.Fuzz_spec.dst < 0
         || tr.Fuzz_spec.dst >= n then
        raise
          (Bad_spec
             (Printf.sprintf "flow %d>%d outside the %d-host fabric"
                tr.Fuzz_spec.src tr.Fuzz_spec.dst n));
      if tr.Fuzz_spec.src = tr.Fuzz_spec.dst then
        raise (Bad_spec (Printf.sprintf "flow %d>%d is a self-loop"
                           tr.Fuzz_spec.src tr.Fuzz_spec.dst));
      if tr.Fuzz_spec.bytes <= 0 then
        raise (Bad_spec "flow with non-positive byte count"))
    spec.Fuzz_spec.transfers;
  match spec.Fuzz_spec.shape with
  | Fuzz_spec.Ft _ ->
      if spec.Fuzz_spec.link_faults <> [] then
        raise (Bad_spec "link faults are only supported on leaf-spine shapes");
      if spec.Fuzz_spec.slow_spine <> None then
        raise (Bad_spec "slow spines are only supported on leaf-spine shapes")
  | Fuzz_spec.Ls { n_leaves; n_spines; hosts_per_leaf; _ } ->
      (match spec.Fuzz_spec.slow_spine with
      | None -> ()
      | Some (spine, gbps) ->
          if spine < 0 || spine >= n_spines then
            raise (Bad_spec (Printf.sprintf "slow spine %d not in topology" spine));
          if gbps <= 0 then
            raise (Bad_spec "slow spine with non-positive rate"));
      let n_hosts = n_leaves * hosts_per_leaf in
      let n_links = n_hosts + (n_leaves * n_spines) in
      List.iter
        (fun (lf : Fuzz_spec.link_fault) ->
          if lf.Fuzz_spec.fault_link < n_hosts then
            raise
              (Bad_spec
                 (Printf.sprintf "link fault %d would disconnect a host"
                    lf.Fuzz_spec.fault_link));
          if lf.Fuzz_spec.fault_link >= n_links then
            raise (Bad_spec (Printf.sprintf "link %d not in topology"
                               lf.Fuzz_spec.fault_link)))
        spec.Fuzz_spec.link_faults

(* One source of truth for the leaf-spine build: the sharded runner
   (Shard_run) constructs its per-domain replicas from exactly these
   params, so serial and sharded fabrics are byte-identical. *)
let ls_network_params (spec : Fuzz_spec.t) ~scheme =
  match spec.Fuzz_spec.shape with
  | Fuzz_spec.Ft _ ->
      raise (Bad_spec "ls_network_params: leaf-spine shapes only")
  | Fuzz_spec.Ls
      { n_leaves; n_spines; hosts_per_leaf; host_gbps; fabric_gbps;
        link_delay_ns } ->
      let fabric =
        {
          Leaf_spine.n_leaves;
          n_spines;
          hosts_per_leaf;
          host_bw = Rate.gbps (float_of_int host_gbps);
          fabric_bw = Rate.gbps (float_of_int fabric_gbps);
          link_delay = link_delay_ns;
        }
      in
      let p0 = Network.default_params ~fabric ~scheme:(ls_scheme scheme) in
      let nic_cfg =
        {
          p0.Network.nic with
          Rnic.transport = (if spec.Fuzz_spec.gbn then `Gbn else `Sr);
        }
      in
      {
        p0 with
        Network.nic = nic_cfg;
        per_port_cap = spec.Fuzz_spec.per_port_kb * 1024;
        queue_factor = float_of_int spec.Fuzz_spec.queue_factor_pct /. 100.;
        last_hop_jitter = spec.Fuzz_spec.jitter_ns;
        seed = spec.Fuzz_spec.seed;
        telemetry = true;
        telemetry_interval = Sim_time.us 200;
      }

let build (spec : Fuzz_spec.t) ~scheme =
  match spec.Fuzz_spec.shape with
  | Fuzz_spec.Ls _ ->
      let n = Network.build (ls_network_params spec ~scheme) in
      (match spec.Fuzz_spec.slow_spine with
      | None -> ()
      | Some (spine, gbps) -> Network.set_spine_rate n ~spine ~gbps);
      Net_ls n
  | Fuzz_spec.Ft { k; gbps; link_delay_ns } ->
      let themis, compensation, lb = ft_scheme scheme in
      let bw = Rate.gbps (float_of_int gbps) in
      let p0 = Fat_tree_net.default_params ~k ~themis () in
      let nic_cfg =
        {
          (Rnic.default_config ~line_rate:bw) with
          Rnic.transport = (if spec.Fuzz_spec.gbn then `Gbn else `Sr);
        }
      in
      let params =
        {
          p0 with
          Fat_tree_net.host_bw = bw;
          fabric_bw = bw;
          link_delay = link_delay_ns;
          nic = nic_cfg;
          compensation;
          per_port_cap = spec.Fuzz_spec.per_port_kb * 1024;
          queue_factor = float_of_int spec.Fuzz_spec.queue_factor_pct /. 100.;
          ft_seed = spec.Fuzz_spec.seed;
          ft_lb = lb;
        }
      in
      (* Network.build installs the telemetry context itself;
         Fat_tree_net has no telemetry knob, so enable one here, before
         any traffic, to the same effect. *)
      ignore (Telemetry.enable ());
      Net_ft (Fat_tree_net.build params)

let run_scheme (spec : Fuzz_spec.t) ~scheme : outcome =
  validate spec;
  (* Global state hygiene: both make a (spec, scheme) run a pure
     function, so the determinism oracle can demand bit-equality. *)
  Packet.reset_uid_counter ();
  Packet_pool.reset ();
  Flow_id.reset_interner ();
  Lb_state.reset_globals ();
  Telemetry.disable ();
  let net = build spec ~scheme in
  let eng = engine net in
  let fault_rng = Rng.create ~seed:(spec.Fuzz_spec.seed lxor 0xfa017) in
  let fault =
    Fuzz_fault.install ~engine:eng ~rng:fault_rng ~spec
      ~iter_ports:(iter_ports net) ()
  in
  (match net with
  | Net_ft _ -> ()
  | Net_ls n ->
      let mode =
        if spec.Fuzz_spec.shrink_pathset then `Shrink_pathset else `Fallback_ecmp
      in
      List.iter
        (fun (lf : Fuzz_spec.link_fault) ->
          ignore
            (Engine.schedule_at eng ~time:lf.Fuzz_spec.down_ns (fun () ->
                 Network.fail_link ~mode n ~link_id:lf.Fuzz_spec.fault_link));
          if lf.Fuzz_spec.up_ns > lf.Fuzz_spec.down_ns then
            ignore
              (Engine.schedule_at eng ~time:lf.Fuzz_spec.up_ns (fun () ->
                   Network.restore_link n ~link_id:lf.Fuzz_spec.fault_link)))
        spec.Fuzz_spec.link_faults);
  let flows =
    List.mapi
      (fun i (tr : Fuzz_spec.transfer) ->
        let qp = connect net ~src:tr.Fuzz_spec.src ~dst:tr.Fuzz_spec.dst in
        let fp =
          {
            Fuzz_oracle.fp_index = i;
            fp_transfer = tr;
            fp_conn = Rnic.qp_conn qp;
            fp_packets = Fuzz_spec.packets_of_bytes spec tr.Fuzz_spec.bytes;
            fp_dst_nic = nic net ~host:tr.Fuzz_spec.dst;
            fp_done = None;
          }
        in
        ignore
          (Engine.schedule_at eng ~time:tr.Fuzz_spec.start_ns (fun () ->
               Rnic.post_send qp ~bytes:tr.Fuzz_spec.bytes
                 ~on_complete:(fun t -> fp.Fuzz_oracle.fp_done <- Some t)));
        fp)
      spec.Fuzz_spec.transfers
  in
  let port_data_drops () =
    let acc = ref 0 in
    iter_ports net (fun p -> acc := !acc + Port.dropped_data_packets p);
    !acc
  in
  let switch_data_drops () =
    List.fold_left
      (fun acc sw -> acc + Switch.dropped_data_packets sw)
      0 (switches_list net)
  in
  let switch_total_drops () =
    List.fold_left
      (fun acc sw ->
        acc + Switch.dropped_buffer sw + Switch.dropped_unreachable sw)
      0 (switches_list net)
  in
  let total_ooo () =
    List.fold_left (fun a n -> a + Rnic.ooo_arrivals n) 0 (nics_list net)
  in
  (* Scheme-specific behavioural invariants (satellite oracles of the
     LB-scheme arena).  Sprinklers' no-overtake claim only holds when
     nothing else can reorder packets, so that probe is gated on a
     clean, symmetric, fault-free spec. *)
  let clean_symmetric =
    spec.Fuzz_spec.link_faults = []
    && spec.Fuzz_spec.slow_spine = None
    && spec.Fuzz_spec.drop_ppm = 0
    && spec.Fuzz_spec.corrupt_ppm = 0
    && spec.Fuzz_spec.dup_ppm = 0
    && spec.Fuzz_spec.delay_ppm = 0
    && spec.Fuzz_spec.jitter_ns = 0
  in
  let v_policy () =
    match scheme with
    | "reps" -> (
        match List.assoc_opt "reps_tainted_recycled" (Lb_state.counters ()) with
        | Some n when n > 0 ->
            [
              ( "policy-reps",
                Printf.sprintf "%d tainted entropies recycled" n );
            ]
        | _ -> [])
    | "sprinklers" when clean_symmetric ->
        let ooo = total_ooo () in
        if ooo > 0 then
          [
            ( "policy-sprinklers",
              Printf.sprintf
                "%d out-of-order arrivals on a clean symmetric fabric" ooo );
          ]
        else []
    | "spritz" -> (
        match net with
        | Net_ft _ -> []
        | Net_ls n ->
            let routing = Network.routing n and fab = Network.fabric n in
            List.concat_map
              (fun (tr : Fuzz_spec.transfer) ->
                let tor = Leaf_spine.tor_of_host fab tr.Fuzz_spec.src in
                let dst = tr.Fuzz_spec.dst in
                if Leaf_spine.tor_of_host fab dst = tor then []
                else
                  let sw = Network.switch n ~node:tor in
                  let w = Switch.compiled_path_weights sw ~dst in
                  let sum = Array.fold_left ( + ) 0 w in
                  let expect = Routing.path_count routing ~src:tor ~dst in
                  if sum <> expect then
                    [
                      ( "policy-spritz",
                        Printf.sprintf
                          "ToR %d weights toward host %d sum to %d, path \
                           count %d"
                          tor dst sum expect );
                    ]
                  else [])
              spec.Fuzz_spec.transfers)
    | _ -> []
  in
  let view =
    {
      Fuzz_oracle.v_nics = nics_list net;
      v_port_data_drops = port_data_drops;
      v_switch_data_drops = switch_data_drops;
      v_switch_total_drops = switch_total_drops;
      v_themis = (fun () -> themis_totals net);
      v_fault = fault;
      v_flows = flows;
      v_policy;
    }
  in
  let deadline = spec.Fuzz_spec.deadline_ns in
  let step = Sim_time.ms 5 in
  let rec loop () =
    if (not (Fuzz_oracle.all_done view)) && Engine.now eng < deadline then begin
      drive net ~until:(min deadline (Engine.now eng + step)) ();
      loop ()
    end
  in
  loop ();
  (if Fuzz_oracle.all_done view then
     (* Let in-flight duplicates, delayed deliveries and post-completion
        compensation NACKs (plus the retransmissions they trigger)
        settle before judging quiescence and conservation. *)
     let drain =
       Sim_time.ms 3
       + (8 * spec.Fuzz_spec.delay_max_ns)
       + (4 * spec.Fuzz_spec.jitter_ns)
     in
     drive net ~until:(Engine.now eng + drain) ());
  let summary = Experiment.telemetry_summary () in
  let events_jsonl =
    match Telemetry.ctx () with
    | Some ctx -> Export.events_to_jsonl ctx
    | None -> ""
  in
  let violations = Fuzz_oracle.check view ~summary in
  let completed_us =
    List.fold_left
      (fun acc fp ->
        match fp.Fuzz_oracle.fp_done with
        | Some t -> Stdlib.max acc (Sim_time.to_us t)
        | None -> Sim_time.to_us deadline)
      0. flows
  in
  (* Worst per-flow completion time (start -> done), the arena's tail-FCT
     metric; a flow that misses the deadline counts its truncated age. *)
  let tail_fct_us =
    List.fold_left
      (fun acc fp ->
        let start = fp.Fuzz_oracle.fp_transfer.Fuzz_spec.start_ns in
        let fin =
          match fp.Fuzz_oracle.fp_done with
          | Some t -> Sim_time.to_us t
          | None -> Sim_time.to_us deadline
        in
        Stdlib.max acc (fin -. Sim_time.to_us start))
      0. flows
  in
  {
    o_scheme = scheme;
    o_violations = violations;
    o_summary = summary;
    o_events_jsonl = events_jsonl;
    o_completed_us = completed_us;
    o_data_packets =
      List.fold_left (fun a n -> a + Rnic.data_packets_sent n) 0
        (nics_list net);
    o_retx_packets =
      List.fold_left (fun a n -> a + Rnic.retx_packets_sent n) 0
        (nics_list net);
    o_drops =
      port_data_drops () + switch_data_drops () + fault.Fuzz_fault.drops_data
      + fault.Fuzz_fault.corrupts_data;
    o_ooo = total_ooo ();
    o_tail_fct_us = tail_fct_us;
    o_themis = themis_totals net;
  }

(* An engine callback that raises (a simulator bug) must count as a
   failed run, not kill the sweep: the minimizer needs the crash as an
   ordinary oracle violation to shrink against. *)
let run_scheme_safe spec ~scheme =
  match run_scheme spec ~scheme with
  | outcome -> outcome
  | exception (Bad_spec _ as e) -> raise e
  | exception exn ->
      {
        o_scheme = scheme;
        o_violations =
          [
            {
              Fuzz_oracle.oracle = "crash";
              detail = Printexc.to_string exn;
            };
          ];
        o_summary = None;
        o_events_jsonl = "";
        o_completed_us = 0.;
        o_data_packets = 0;
        o_retx_packets = 0;
        o_drops = 0;
        o_ooo = 0;
        o_tail_fct_us = 0.;
        o_themis = None;
      }

let run spec =
  List.map (fun scheme -> run_scheme_safe spec ~scheme) (schemes_of spec)

let failed o = o.o_violations <> []

let pp_outcome ppf o =
  Format.fprintf ppf "%-13s %7d pkts %5d retx %5d drops %9.1f us %s" o.o_scheme
    o.o_data_packets o.o_retx_packets o.o_drops o.o_completed_us
    (if failed o then
       Format.asprintf "FAIL %a"
         (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "; ")
            Fuzz_oracle.pp_violation)
         o.o_violations
     else "ok")
