type profile = Quick | Soak

type shape =
  | Ls of {
      n_leaves : int;
      n_spines : int;
      hosts_per_leaf : int;
      host_gbps : int;
      fabric_gbps : int;
      link_delay_ns : int;
    }
  | Ft of { k : int; gbps : int; link_delay_ns : int }

type transfer = { src : int; dst : int; bytes : int; start_ns : int }
type link_fault = { fault_link : int; down_ns : int; up_ns : int }

type t = {
  seed : int;
  shape : shape;
  gbn : bool;
  queue_factor_pct : int;
  per_port_kb : int;
  jitter_ns : int;
  drop_ppm : int;
  corrupt_ppm : int;
  dup_ppm : int;
  delay_ppm : int;
  delay_max_ns : int;
  shrink_pathset : bool;
  deadline_ns : int;
  schemes : string list;
  transfers : transfer list;
  link_faults : link_fault list;
  (* Adversarial path asymmetry: derate every leaf<->spine link of one
     spine to [gbps] ((spine_index, gbps); Ls shapes only).  Absent from
     pre-arena corpus lines, which parse as [None]. *)
  slow_spine : (int * int) option;
}

let all_schemes = [ "ecmp"; "spray"; "ar"; "themis" ]
let mtu = 1500

let packets_of_bytes _t bytes =
  if bytes <= 0 then 0 else (bytes + mtu - 1) / mtu

let n_hosts_of_shape = function
  | Ls { n_leaves; hosts_per_leaf; _ } -> n_leaves * hosts_per_leaf
  | Ft { k; _ } -> k * k * k / 4

let rack_of_shape shape host =
  match shape with
  | Ls { hosts_per_leaf; _ } -> host / hosts_per_leaf
  | Ft { k; _ } -> host / (k / 2)

(* Leaf-spine link-id layout (see Leaf_spine.build): host links come
   first, one per host, then the full leaf x spine mesh in leaf-major
   order. *)
let fabric_link_id shape ~leaf ~spine =
  match shape with
  | Ls { n_leaves; n_spines; hosts_per_leaf; _ } ->
      if leaf < 0 || leaf >= n_leaves || spine < 0 || spine >= n_spines then
        invalid_arg "Fuzz_spec.fabric_link_id";
      (n_leaves * hosts_per_leaf) + (leaf * n_spines) + spine
  | Ft _ -> invalid_arg "Fuzz_spec.fabric_link_id: fat tree"

(* ------------------------------------------------------------------ *)
(* Generation *)

let pick rng arr = arr.(Rng.int rng (Array.length arr))

(* Log-uniform message sizes: mixing single-packet and ~100-packet
   messages in one scenario is what shakes out PSN-window edge cases. *)
let gen_bytes rng ~hi_pow =
  let base = 1024 lsl Rng.int rng (hi_pow + 1) in
  base + Rng.int rng base

let gen_transfers rng shape ~profile =
  let n = n_hosts_of_shape shape in
  let rack = rack_of_shape shape in
  let hi_pow = match profile with Quick -> 6 | Soak -> 9 in
  let start () = Rng.int rng 100_000 in
  let other_host dst =
    let rec go tries =
      let h = Rng.int rng n in
      if h <> dst && (tries > 8 || rack h <> rack dst) then h else go (tries + 1)
    in
    go 0
  in
  match Rng.int rng 4 with
  | 0 ->
      (* Incast: several senders, one victim host. *)
      let dst = Rng.int rng n in
      let cap = match profile with Quick -> 6 | Soak -> 12 in
      let fanin = 2 + Rng.int rng (max 1 (min cap (n - 1) - 1)) in
      let bytes = gen_bytes rng ~hi_pow in
      List.init fanin (fun _ ->
          { src = other_host dst; dst; bytes; start_ns = start () })
  | 1 ->
      (* Ring over a host subset. *)
      let m = min n (match profile with Quick -> 4 | Soak -> 8) in
      let hosts = Array.init n (fun i -> i) in
      Rng.shuffle_in_place rng hosts;
      List.init m (fun i ->
          {
            src = hosts.(i);
            dst = hosts.((i + 1) mod m);
            bytes = gen_bytes rng ~hi_pow;
            start_ns = start ();
          })
  | 2 ->
      (* Permutation over a host subset. *)
      let m = min n (match profile with Quick -> 8 | Soak -> 16) in
      let hosts = Array.init n (fun i -> i) in
      Rng.shuffle_in_place rng hosts;
      let bytes = gen_bytes rng ~hi_pow in
      List.init m (fun i ->
          {
            src = hosts.(i);
            dst = hosts.((i + 1) mod m);
            bytes;
            start_ns = start ();
          })
  | _ ->
      (* Independent random pairs, mixed sizes. *)
      let pairs = 1 + Rng.int rng (match profile with Quick -> 6 | Soak -> 12) in
      List.init pairs (fun _ ->
          let dst = Rng.int rng n in
          { src = other_host dst; dst; bytes = gen_bytes rng ~hi_pow;
            start_ns = start () })

(* Link faults are drawn only on leaf<->spine links and only from a
   victim set of at most [n_spines - 1] spines, so every leaf keeps at
   least one live uplink and the completion oracle stays a theorem. *)
let gen_link_faults rng shape =
  match shape with
  | Ft _ -> []
  | Ls { n_spines; _ } when n_spines < 2 -> []
  | Ls { n_leaves; n_spines; _ } ->
      let n_f = match Rng.int rng 5 with 0 | 1 | 2 -> 0 | 3 -> 1 | _ -> 2 in
      let victims = Array.init n_spines (fun i -> i) in
      Rng.shuffle_in_place rng victims;
      let n_victims = min (n_spines - 1) 2 in
      let seen = Hashtbl.create 4 in
      let rec fresh_link tries =
        let leaf = Rng.int rng n_leaves in
        let spine = victims.(Rng.int rng n_victims) in
        let l = fabric_link_id shape ~leaf ~spine in
        if Hashtbl.mem seen l && tries < 8 then fresh_link (tries + 1)
        else (
          Hashtbl.replace seen l ();
          l)
      in
      List.init n_f (fun _ ->
          let fault_link = fresh_link 0 in
          let down_ns = 5_000 + Rng.int rng 295_000 in
          let up_ns =
            if Rng.int rng 10 < 3 then 0
            else down_ns + 20_000 + Rng.int rng 380_000
          in
          { fault_link; down_ns; up_ns })

let generate ?(profile = Quick) ~seed () =
  let rng = Rng.create ~seed:(seed lxor 0x600dcafe) in
  let shape =
    if Rng.int rng 5 = 0 then
      let k = match profile with Quick -> 4 | Soak -> pick rng [| 4; 4; 8 |] in
      Ft
        {
          k;
          gbps = pick rng [| 40; 100 |];
          link_delay_ns = 500 + Rng.int rng 1_500;
        }
    else
      let soak = profile = Soak in
      Ls
        {
          n_leaves = 2 + Rng.int rng (if soak then 5 else 3);
          n_spines = pick rng (if soak then [| 2; 3; 4; 8; 16 |]
                               else [| 1; 2; 3; 4; 8 |]);
          hosts_per_leaf = 2 + Rng.int rng (if soak then 7 else 3);
          host_gbps = pick rng [| 25; 40; 100 |];
          fabric_gbps = pick rng [| 25; 40; 100 |];
          link_delay_ns = 200 + Rng.int rng 1_800;
        }
  in
  let transfers = gen_transfers rng shape ~profile in
  let link_faults = gen_link_faults rng shape in
  {
    seed;
    shape;
    gbn = Rng.int rng 5 = 0;
    queue_factor_pct = pick rng [| 10; 25; 50; 100; 150; 150; 200 |];
    per_port_kb = pick rng [| 64; 256; 1024; 9216; 9216 |];
    jitter_ns =
      (match shape with
      | Ft _ -> 0
      | Ls _ -> if Rng.int rng 10 < 3 then 200 + Rng.int rng 1_800 else 0);
    drop_ppm = (if Rng.bool rng then 0 else 1 + Rng.int rng 5_000);
    corrupt_ppm = (if Rng.int rng 10 < 7 then 0 else 1 + Rng.int rng 1_000);
    dup_ppm = (if Rng.int rng 10 < 6 then 0 else 1 + Rng.int rng 3_000);
    delay_ppm = (if Rng.bool rng then 0 else 1 + Rng.int rng 10_000);
    delay_max_ns = 1_000 + Rng.int rng 19_000;
    shrink_pathset = Rng.int rng 4 = 0;
    deadline_ns =
      (match profile with Quick -> 2_000_000_000 | Soak -> 5_000_000_000);
    schemes = all_schemes;
    transfers;
    link_faults;
    (* Generation keeps the pre-arena distribution (and generator
       stability); the slow-spine scenarios are built explicitly by
       Arena_scen. *)
    slow_spine = None;
  }

(* ------------------------------------------------------------------ *)
(* Serialization: one line, all-integer fields, exact round-trip. *)

let shape_to_string = function
  | Ls { n_leaves; n_spines; hosts_per_leaf; host_gbps; fabric_gbps;
         link_delay_ns } ->
      Printf.sprintf "ls:%d:%d:%d:%d:%d:%d" n_leaves n_spines hosts_per_leaf
        host_gbps fabric_gbps link_delay_ns
  | Ft { k; gbps; link_delay_ns } -> Printf.sprintf "ft:%d:%d:%d" k gbps
                                       link_delay_ns

let to_string t =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "fz1;seed=%d;shape=%s;tr=%s;qf=%d;ppcap=%d;jit=%d" t.seed
    (shape_to_string t.shape)
    (if t.gbn then "gbn" else "sr")
    t.queue_factor_pct t.per_port_kb t.jitter_ns;
  add ";drop=%d;corr=%d;dup=%d;dly=%d:%d;fmode=%s;dl=%d" t.drop_ppm
    t.corrupt_ppm t.dup_ppm t.delay_ppm t.delay_max_ns
    (if t.shrink_pathset then "shrink" else "ecmp")
    t.deadline_ns;
  add ";schemes=%s" (String.concat "+" t.schemes);
  add ";flows=%s"
    (String.concat ","
       (List.map
          (fun f -> Printf.sprintf "%d>%d:%d@%d" f.src f.dst f.bytes f.start_ns)
          t.transfers));
  add ";faults=%s"
    (String.concat ","
       (List.map
          (fun f -> Printf.sprintf "%d:%d:%d" f.fault_link f.down_ns f.up_ns)
          t.link_faults));
  add ";sspine=%s"
    (match t.slow_spine with
    | None -> ""
    | Some (spine, gbps) -> Printf.sprintf "%d:%d" spine gbps);
  Buffer.contents buf

let ( let* ) = Result.bind

let int_of s ~what =
  match int_of_string_opt (String.trim s) with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "bad integer %S in %s" s what)

let split_nonempty sep s =
  if String.trim s = "" then [] else String.split_on_char sep s

let shape_of_string s =
  match String.split_on_char ':' s with
  | [ "ls"; a; b; c; d; e; f ] ->
      let* n_leaves = int_of a ~what:"shape" in
      let* n_spines = int_of b ~what:"shape" in
      let* hosts_per_leaf = int_of c ~what:"shape" in
      let* host_gbps = int_of d ~what:"shape" in
      let* fabric_gbps = int_of e ~what:"shape" in
      let* link_delay_ns = int_of f ~what:"shape" in
      Ok
        (Ls { n_leaves; n_spines; hosts_per_leaf; host_gbps; fabric_gbps;
              link_delay_ns })
  | [ "ft"; k; g; d ] ->
      let* k = int_of k ~what:"shape" in
      let* gbps = int_of g ~what:"shape" in
      let* link_delay_ns = int_of d ~what:"shape" in
      Ok (Ft { k; gbps; link_delay_ns })
  | _ -> Error (Printf.sprintf "bad shape %S" s)

let transfer_of_string s =
  match String.index_opt s '>' with
  | None -> Error (Printf.sprintf "bad flow %S" s)
  | Some i -> (
      let src_s = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.split_on_char ':' rest with
      | [ dst_s; tail ] -> (
          match String.split_on_char '@' tail with
          | [ bytes_s; start_s ] ->
              let* src = int_of src_s ~what:"flow" in
              let* dst = int_of dst_s ~what:"flow" in
              let* bytes = int_of bytes_s ~what:"flow" in
              let* start_ns = int_of start_s ~what:"flow" in
              Ok { src; dst; bytes; start_ns }
          | _ -> Error (Printf.sprintf "bad flow %S" s))
      | _ -> Error (Printf.sprintf "bad flow %S" s))

let fault_of_string s =
  match String.split_on_char ':' s with
  | [ a; b; c ] ->
      let* fault_link = int_of a ~what:"fault" in
      let* down_ns = int_of b ~what:"fault" in
      let* up_ns = int_of c ~what:"fault" in
      Ok { fault_link; down_ns; up_ns }
  | _ -> Error (Printf.sprintf "bad fault %S" s)

let rec map_result f = function
  | [] -> Ok []
  | x :: xs ->
      let* y = f x in
      let* ys = map_result f xs in
      Ok (y :: ys)

let of_string s =
  let s = String.trim s in
  match String.split_on_char ':' s with
  | "gen" :: seed :: rest when rest = [] || rest = [ "quick" ] || rest = [ "soak" ]
    ->
      let profile = if rest = [ "soak" ] then Soak else Quick in
      let* seed = int_of seed ~what:"gen seed" in
      Ok (generate ~profile ~seed ())
  | _ -> (
      match split_nonempty ';' s with
      | "fz1" :: fields ->
          let kv =
            List.filter_map
              (fun f ->
                match String.index_opt f '=' with
                | None -> None
                | Some i ->
                    Some
                      ( String.sub f 0 i,
                        String.sub f (i + 1) (String.length f - i - 1) ))
              fields
          in
          let find k =
            match List.assoc_opt k kv with
            | Some v -> Ok v
            | None -> Error (Printf.sprintf "missing field %S" k)
          in
          let find_int k =
            let* v = find k in
            int_of v ~what:k
          in
          let* seed = find_int "seed" in
          let* shape_s = find "shape" in
          let* shape = shape_of_string shape_s in
          let* tr = find "tr" in
          let* gbn =
            match tr with
            | "sr" -> Ok false
            | "gbn" -> Ok true
            | _ -> Error (Printf.sprintf "bad transport %S" tr)
          in
          let* queue_factor_pct = find_int "qf" in
          let* per_port_kb = find_int "ppcap" in
          let* jitter_ns = find_int "jit" in
          let* drop_ppm = find_int "drop" in
          let* corrupt_ppm = find_int "corr" in
          let* dup_ppm = find_int "dup" in
          let* dly = find "dly" in
          let* delay_ppm, delay_max_ns =
            match String.split_on_char ':' dly with
            | [ a; b ] ->
                let* a = int_of a ~what:"dly" in
                let* b = int_of b ~what:"dly" in
                Ok (a, b)
            | _ -> Error (Printf.sprintf "bad dly %S" dly)
          in
          let* fmode = find "fmode" in
          let* shrink_pathset =
            match fmode with
            | "ecmp" -> Ok false
            | "shrink" -> Ok true
            | _ -> Error (Printf.sprintf "bad fmode %S" fmode)
          in
          let* deadline_ns = find_int "dl" in
          let* schemes_s = find "schemes" in
          let schemes = split_nonempty '+' schemes_s in
          let* flows_s = find "flows" in
          let* transfers = map_result transfer_of_string
                             (split_nonempty ',' flows_s) in
          let* faults_s = find "faults" in
          let* link_faults = map_result fault_of_string
                               (split_nonempty ',' faults_s) in
          (* sspine post-dates the fz1 grammar: absent (legacy corpus
             lines) or empty both mean no slow spine. *)
          let* slow_spine =
            match List.assoc_opt "sspine" kv with
            | None | Some "" -> Ok None
            | Some v -> (
                match String.split_on_char ':' v with
                | [ a; b ] ->
                    let* spine = int_of a ~what:"sspine" in
                    let* gbps = int_of b ~what:"sspine" in
                    Ok (Some (spine, gbps))
                | _ -> Error (Printf.sprintf "bad sspine %S" v))
          in
          if transfers = [] then Error "spec has no flows"
          else
            Ok
              {
                seed;
                shape;
                gbn;
                queue_factor_pct;
                per_port_kb;
                jitter_ns;
                drop_ppm;
                corrupt_ppm;
                dup_ppm;
                delay_ppm;
                delay_max_ns;
                shrink_pathset;
                deadline_ns;
                schemes;
                transfers;
                link_faults;
                slow_spine;
              }
      | _ -> Error "spec must start with \"fz1;\" or \"gen:<seed>\"")

let cost t =
  let packets =
    List.fold_left (fun acc f -> acc + packets_of_bytes t f.bytes) 0 t.transfers
  in
  let knob v = if v > 0 then 20 else 0 in
  packets
  + (5 * List.length t.transfers)
  + (100 * List.length t.link_faults)
  + knob t.drop_ppm + knob t.corrupt_ppm + knob t.dup_ppm + knob t.delay_ppm
  + knob t.jitter_ns
  + (if t.queue_factor_pct < 150 then 10 else 0)
  + (if t.per_port_kb < 9216 then 10 else 0)
  + List.fold_left (fun a tr -> a + if tr.start_ns > 0 then 1 else 0) 0
      t.transfers

let pp ppf t = Format.pp_print_string ppf (to_string t)
