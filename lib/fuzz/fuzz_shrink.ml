type result = { minimized : Fuzz_spec.t; runs_used : int; shrunk : bool }

(* Candidate simplifications of [spec], roughly cheapest-win first.
   Each must strictly reduce Fuzz_spec.cost or it is filtered out, which
   guarantees the greedy loop terminates. *)
let candidates (spec : Fuzz_spec.t) : Fuzz_spec.t list =
  let open Fuzz_spec in
  let without_nth n l = List.filteri (fun i _ -> i <> n) l in
  let halves =
    match spec.transfers with
    | [] | [ _ ] -> []
    | ts ->
        let n = List.length ts in
        [
          { spec with transfers = List.filteri (fun i _ -> i < n / 2) ts };
          { spec with transfers = List.filteri (fun i _ -> i >= n / 2) ts };
        ]
  in
  let singles =
    if List.length spec.transfers <= 1 then []
    else
      List.mapi
        (fun i _ -> { spec with transfers = without_nth i spec.transfers })
        spec.transfers
  in
  let fault_removals =
    match spec.link_faults with
    | [] -> []
    | fs ->
        { spec with link_faults = [] }
        :: (if List.length fs > 1 then
              List.mapi
                (fun i _ -> { spec with link_faults = without_nth i fs })
                fs
            else [])
  in
  let knobs =
    [
      { spec with drop_ppm = 0 };
      { spec with corrupt_ppm = 0 };
      { spec with dup_ppm = 0 };
      { spec with delay_ppm = 0 };
      { spec with jitter_ns = 0 };
    ]
  in
  let shorter_messages =
    let halved =
      List.map
        (fun tr ->
          if tr.bytes > Fuzz_spec.mtu then { tr with bytes = tr.bytes / 2 }
          else tr)
        spec.transfers
    in
    if halved <> spec.transfers then [ { spec with transfers = halved } ]
    else []
  in
  let immediate_starts =
    let zeroed = List.map (fun tr -> { tr with start_ns = 0 }) spec.transfers in
    if zeroed <> spec.transfers then [ { spec with transfers = zeroed } ] else []
  in
  let defaults =
    (if spec.queue_factor_pct < 150 then
       [ { spec with queue_factor_pct = 150 } ]
     else [])
    @
    if spec.per_port_kb < 9216 then [ { spec with per_port_kb = 9216 } ] else []
  in
  fault_removals @ knobs @ halves @ singles @ shorter_messages
  @ immediate_starts @ defaults

let minimize ?(budget = 48) ~(spec : Fuzz_spec.t) ~scheme () =
  let runs = ref 0 in
  let still_fails candidate =
    incr runs;
    match Fuzz_run.run_scheme_safe candidate ~scheme with
    | outcome -> Fuzz_run.failed outcome
    | exception Fuzz_run.Bad_spec _ -> false
  in
  let narrowed = { spec with Fuzz_spec.schemes = [ scheme ] } in
  let rec fixpoint current shrunk =
    if !runs >= budget then (current, shrunk)
    else
      let cost = Fuzz_spec.cost current in
      let next =
        List.find_opt
          (fun c -> Fuzz_spec.cost c < cost && !runs < budget && still_fails c)
          (candidates current)
      in
      match next with
      | Some simpler -> fixpoint simpler true
      | None -> (current, shrunk)
  in
  let minimized, shrunk = fixpoint narrowed false in
  { minimized; runs_used = !runs; shrunk }
