(** Seed-sweep drivers: the engine behind [themis_fuzz_cli].

    [quick] sweeps a contiguous seed range with {!Fuzz_spec.Quick}
    generation bounds (the CI configuration — a few hundred scenarios,
    each run under every scheme); [soak] uses the bigger
    {!Fuzz_spec.Soak} bounds.  Every [det_every]-th spec is additionally
    run twice under one scheme and the two runs' telemetry summaries and
    typed-event JSONL dumps are compared — structural and byte equality
    respectively — as the determinism oracle.

    Each failure is shrunk to a minimal spec (unless [minimize:false])
    and reported with a one-line [replay] reproducer. *)

type failure = {
  f_seed : int;  (** Generation seed ([-1] for replayed specs). *)
  f_scheme : string;
  f_spec : Fuzz_spec.t;  (** As generated / parsed. *)
  f_minimized : Fuzz_spec.t option;  (** After shrinking, if it still fails. *)
  f_violations : Fuzz_oracle.violation list;
}

type report = {
  r_specs : int;  (** Scenarios generated and run. *)
  r_runs : int;  (** (spec, scheme) executions, shrinking included. *)
  r_det_checks : int;
  r_failures : failure list;
  r_wall_s : float;
}

val ok : report -> bool

val repro_line : Fuzz_spec.t -> string
(** The [dune exec bin/themis_fuzz_cli.exe -- replay '...'] one-liner. *)

val determinism_check :
  log:(string -> unit) -> seed:int -> Fuzz_spec.t -> scheme:string ->
  failure option
(** Run [spec] twice under [scheme]; [Some _] iff the telemetry
    summaries or JSONL event dumps differ. *)

val run_seeds :
  ?profile:Fuzz_spec.profile ->
  ?det_every:int ->
  ?minimize:bool ->
  ?budget_s:float ->
  ?log:(string -> unit) ->
  seeds:int list ->
  unit ->
  report
(** [budget_s] stops {e generating new specs} once the wall budget is
    spent (never mid-spec); 0 means unlimited.  [log] receives
    human-readable progress lines. *)

val quick :
  ?specs:int -> ?seed:int -> ?budget_s:float -> ?log:(string -> unit) ->
  unit -> report
(** Defaults: 200 specs from seed 1, determinism check every 10th. *)

val soak :
  ?specs:int -> ?seed:int -> ?budget_s:float -> ?log:(string -> unit) ->
  unit -> report

val replay :
  ?log:(string -> unit) -> string -> (report, string) Stdlib.result
(** Parse a spec (or [gen:<seed>] form), run every scheme it names, and
    double-run the first scheme as a determinism check. *)
