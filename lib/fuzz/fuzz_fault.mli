(** Random per-delivery fault injection.

    [install] wraps the delivery function of every port in the fabric
    (captured through {!Port.deliver_fn}) with an iid fault layer driven
    by the spec's ppm knobs: drops, CRC-style corruptions (observably a
    drop, counted separately), duplicated deliveries and delayed
    deliveries.  Control packets are subject to the same faults — lost
    ACKs, duplicated NACKs and reordered CNPs all exercise recovery paths
    — but only {e data}-packet losses and duplicates enter the
    packet-conservation oracle, hence the split counters.

    The wrapper consumes the given RNG in delivery-event order, which the
    engine makes deterministic, so a seeded run replays exactly. *)

type counters = {
  mutable drops_data : int;
  mutable drops_ctrl : int;
  mutable corrupts_data : int;
  mutable corrupts_ctrl : int;
  mutable dups_data : int;
  mutable dups_ctrl : int;
  mutable delays : int;
}

val active : Fuzz_spec.t -> bool
(** Whether the spec carries any per-delivery fault at all (if not,
    [install] leaves the ports untouched). *)

val install :
  ?window:Sim_time.t * Sim_time.t ->
  engine:Engine.t ->
  rng:Rng.t ->
  spec:Fuzz_spec.t ->
  iter_ports:((Port.t -> unit) -> unit) ->
  unit ->
  counters
(** [?window:(start, stop)] gates the fault layer to simulated times in
    [\[start, stop)]; outside the window packets pass through untouched.
    Defaults to always-on.  Used by workload failure scripts to model
    bounded drop storms. *)

val pp : Format.formatter -> counters -> unit
