type counters = {
  mutable drops_data : int;
  mutable drops_ctrl : int;
  mutable corrupts_data : int;
  mutable corrupts_ctrl : int;
  mutable dups_data : int;
  mutable dups_ctrl : int;
  mutable delays : int;
}

let active (spec : Fuzz_spec.t) =
  spec.Fuzz_spec.drop_ppm > 0
  || spec.Fuzz_spec.corrupt_ppm > 0
  || spec.Fuzz_spec.dup_ppm > 0
  || spec.Fuzz_spec.delay_ppm > 0

let install ?window ~engine ~rng ~(spec : Fuzz_spec.t) ~iter_ports () =
  let c =
    {
      drops_data = 0;
      drops_ctrl = 0;
      corrupts_data = 0;
      corrupts_ctrl = 0;
      dups_data = 0;
      dups_ctrl = 0;
      delays = 0;
    }
  in
  if active spec then begin
    let drop = spec.Fuzz_spec.drop_ppm in
    let corrupt = spec.Fuzz_spec.corrupt_ppm in
    let dup = spec.Fuzz_spec.dup_ppm in
    let delay = spec.Fuzz_spec.delay_ppm in
    let delay_max = max 1 spec.Fuzz_spec.delay_max_ns in
    let in_window =
      match window with
      | None -> fun () -> true
      | Some (start_ns, stop_ns) ->
          fun () ->
            let now = Engine.now engine in
            now >= start_ns && now < stop_ns
    in
    let wrap port =
      let base = Port.deliver_fn port in
      Port.set_deliver port (fun pkt ->
          if not (in_window ()) then base pkt
          else begin
          let data = Packet.is_data pkt in
          let p = Rng.int rng 1_000_000 in
          if p < drop then begin
            (if data then c.drops_data <- c.drops_data + 1
             else c.drops_ctrl <- c.drops_ctrl + 1);
            Packet_pool.release pkt
          end
          else if p < drop + corrupt then begin
            (if data then c.corrupts_data <- c.corrupts_data + 1
             else c.corrupts_ctrl <- c.corrupts_ctrl + 1);
            Packet_pool.release pkt
          end
          else begin
            (if dup > 0 && Rng.int rng 1_000_000 < dup then begin
               if data then c.dups_data <- c.dups_data + 1
               else c.dups_ctrl <- c.dups_ctrl + 1;
               let d = 1 + Rng.int rng delay_max in
               (* Deliver an owned copy (same uid): both arrivals are
                  independently released under pooling. *)
               let copy = Packet_pool.clone pkt in
               ignore (Engine.schedule engine ~delay:d (fun () -> base copy))
             end);
            if delay > 0 && Rng.int rng 1_000_000 < delay then begin
              c.delays <- c.delays + 1;
              let d = 1 + Rng.int rng delay_max in
              ignore (Engine.schedule engine ~delay:d (fun () -> base pkt))
            end
            else base pkt
          end
          end)
    in
    iter_ports wrap
  end;
  c

let pp ppf c =
  Format.fprintf ppf
    "drops %d/%d corrupts %d/%d dups %d/%d delays %d (data/ctrl)"
    c.drops_data c.drops_ctrl c.corrupts_data c.corrupts_ctrl c.dups_data
    c.dups_ctrl c.delays
