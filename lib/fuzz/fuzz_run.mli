(** Execute one scenario spec under one (or every) scheme.

    A run builds a fresh fabric for the (spec, scheme) pair — resetting
    the global packet-uid counter and installing a fresh telemetry
    context, so two runs of the same pair are bit-identical — posts the
    spec's transfers, schedules its link faults, installs the
    per-delivery fault layer, drives the engine until every transfer
    completes (or the deadline expires), lets the fabric drain, and
    evaluates the {!Fuzz_oracle} invariants. *)

type outcome = {
  o_scheme : string;
  o_violations : Fuzz_oracle.violation list;
  o_summary : Experiment.telemetry_summary option;
  o_events_jsonl : string;
      (** Full typed-event dump — the determinism oracle compares these
          byte-for-byte across same-seed runs. *)
  o_completed_us : float;  (** Last flow completion (deadline if stuck). *)
  o_data_packets : int;
  o_retx_packets : int;
  o_drops : int;  (** Port + switch + injected data losses. *)
  o_ooo : int;
      (** Out-of-order data arrivals summed over every receive context —
          the arena's reordering metric (zero for Sprinklers on a clean
          symmetric fabric, by construction). *)
  o_tail_fct_us : float;
      (** Worst per-flow completion time (start to done; truncated at the
          deadline for stuck flows) — the arena's ranking metric. *)
  o_themis : Network.themis_totals option;
}

exception Bad_spec of string
(** The spec references hosts or links the shape does not have (only
    reachable through hand-written replay strings). *)

val validate : Fuzz_spec.t -> unit
(** Raise {!Bad_spec} when the spec references hosts or links its shape
    does not have.  [run_scheme] calls this itself; exposed so the
    sharded runner ({!Shard_run}) applies identical checks. *)

val ls_network_params : Fuzz_spec.t -> scheme:string -> Network.params
(** The exact {!Network.params} a leaf-spine run builds — the sharded
    runner constructs its per-domain replicas from these, so serial and
    sharded fabrics are byte-identical.  Raises {!Bad_spec} on fat-tree
    shapes or unknown schemes. *)

val scheme_names : string list
(** Accepted [o_scheme] values: {!Fuzz_spec.all_schemes} plus the
    ablation schemes ["psn-spray"] and ["themis-nocomp"] and the arena
    rivals ["reps"], ["prime"], ["sprinklers"] and ["spritz"]. *)

val schemes_of : Fuzz_spec.t -> string list

val run_scheme : Fuzz_spec.t -> scheme:string -> outcome
(** Propagates simulator exceptions (useful under a debugger). *)

val run_scheme_safe : Fuzz_spec.t -> scheme:string -> outcome
(** Converts a simulator exception into a ["crash"] oracle violation so
    sweeps keep going and the minimizer can shrink crashing scenarios.
    {!Bad_spec} still propagates. *)

val run : Fuzz_spec.t -> outcome list

val failed : outcome -> bool
val pp_outcome : Format.formatter -> outcome -> unit
