# Tooling entry points. `make check` is the CI gate: it must stay green
# on every commit.

.PHONY: all build test examples micro fuzz-quick fuzz-soak campaign-quick \
        check clean

all: build

build:
	dune build @all

test:
	dune runtest

# Every example binary must build *and* run to completion: each is an
# executable piece of documentation, and a demo that crashes is a bug.
examples:
	dune build examples
	dune exec examples/quickstart.exe
	dune exec examples/collective_demo.exe
	dune exec examples/nack_anatomy.exe
	dune exec examples/failure_fallback.exe
	dune exec examples/fat_tree_demo.exe

# Telemetry/data-plane hot paths; the histogram record budget is 100 ns.
micro:
	dune exec bench/main.exe -- micro

# Randomized fault-injection sweep with invariant oracles (DESIGN.md §8).
# 200 scenarios x every scheme normally finishes in ~2 s; the wall budget
# stops generating new scenarios if a slow machine would blow the CI
# slot, so coverage degrades gracefully instead of timing out.
fuzz-quick:
	dune exec bin/themis_fuzz_cli.exe -- quick --specs 200 --budget-s 60

fuzz-soak:
	dune exec bin/themis_fuzz_cli.exe -- soak

# Small Fig. 5 slice over the fork pool, then diffed against the frozen
# baseline (tolerance bands + Themis<=AR<=ECMP shape ordering).  --force
# so CI always measures the current tree instead of trusting the cache.
campaign-quick:
	dune exec bin/themis_campaign_cli.exe -- run --preset quick --workers 2 --force --quiet
	dune exec bin/themis_campaign_cli.exe -- gate --preset quick

# Regenerate every paper figure/study/fuzz campaign and refreeze the
# committed baselines (run after an intentional model change).
campaign-refreeze:
	for p in quick fig1 fig5a incast ablation fuzz; do \
	  dune exec bin/themis_campaign_cli.exe -- run --preset $$p --workers 4 --force --quiet && \
	  dune exec bin/themis_campaign_cli.exe -- freeze --preset $$p || exit 1; \
	done

check: build test examples micro fuzz-quick campaign-quick
	@echo "check: OK"

clean:
	dune clean
