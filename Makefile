# Tooling entry points. `make check` is the CI gate: it must stay green
# on every commit.

.PHONY: all build test examples micro bench-engine bench-engine-smoke \
        bench-fwd bench-fwd-smoke bench-shard bench-shard-smoke fuzz-quick \
        fuzz-soak campaign-quick workload-smoke workload-bench arena \
        arena-smoke check clean

all: build

build:
	dune build @all

test:
	dune runtest

# Every example binary must build *and* run to completion: each is an
# executable piece of documentation, and a demo that crashes is a bug.
examples:
	dune build examples
	dune exec examples/quickstart.exe
	dune exec examples/collective_demo.exe
	dune exec examples/nack_anatomy.exe
	dune exec examples/failure_fallback.exe
	dune exec examples/fat_tree_demo.exe

# Telemetry/data-plane hot paths; the histogram record budget is 100 ns.
micro:
	dune exec bench/main.exe -- micro

# Engine/data-plane benchmark (DESIGN.md §10/§15): events/sec, minor
# words/event, campaign wall-clock and the timing-wheel hit ratio vs
# the frozen 631052b baseline, written to BENCH_engine.json with
# before/after ratios.
bench-engine:
	dune exec bench/engine_bench.exe -- --out BENCH_engine.json

# Smoke variant for CI: tiny iteration counts, no timing gate — only
# asserts the harness runs and emits valid JSON with the expected keys.
bench-engine-smoke:
	dune exec bench/engine_bench.exe -- --smoke --out _build/BENCH_engine.smoke.json

# Forwarding fast path in isolation (DESIGN.md §11): a single switch's
# steady-state packets/sec and words/packet through the compiled
# per-destination port arrays.  Fails if the steady-state loop touches
# a hashtable even once (the zero-probe guarantee).
bench-fwd:
	dune exec bench/engine_bench.exe -- --fwd-only --out BENCH_fwd.json

bench-fwd-smoke:
	dune exec bench/engine_bench.exe -- --fwd-only --smoke --out _build/BENCH_fwd.smoke.json

# Sharded-simulation benchmark (DESIGN.md §14): one permutation sweep
# serial, then across 1/2/4 domains, asserting outcome identity at each
# count and recording events/s per domain count in BENCH_engine.json.
# Note the events/s scaling is only meaningful on a multicore box.
bench-shard:
	dune exec bench/shard_bench.exe

# CI variant: small fabric, 2 domains, asserts serial == sharded on
# every oracle-visible result (summary, canonical events, metrics).
bench-shard-smoke:
	dune exec bench/shard_bench.exe -- --smoke

# Randomized fault-injection sweep with invariant oracles (DESIGN.md §8).
# 200 scenarios x every scheme normally finishes in ~2 s; the wall budget
# stops generating new scenarios if a slow machine would blow the CI
# slot, so coverage degrades gracefully instead of timing out.
fuzz-quick:
	dune exec bin/themis_fuzz_cli.exe -- quick --specs 200 --budget-s 60

fuzz-soak:
	dune exec bin/themis_fuzz_cli.exe -- soak

# Small Fig. 5 slice over the fork pool, then diffed against the frozen
# baseline (tolerance bands + Themis<=AR<=ECMP shape ordering).  --force
# so CI always measures the current tree instead of trusting the cache.
campaign-quick:
	dune exec bin/themis_campaign_cli.exe -- run --preset quick --workers 2 --force --quiet
	dune exec bin/themis_campaign_cli.exe -- gate --preset quick

# LB-scheme arena (DESIGN.md §13): rival sprayers (REPS, PRIME,
# Sprinklers, Spritz) against Themis and the baselines across the
# adversarial path scenarios, gated against the frozen baseline.  The
# gate also asserts zero fuzz-oracle violations per cell and zero
# out-of-order arrivals for Sprinklers on the symmetric fabric.
arena:
	dune exec bin/themis_campaign_cli.exe -- run --preset arena --workers 4 --force --quiet
	dune exec bin/themis_campaign_cli.exe -- gate --preset arena
	dune exec bin/themis_campaign_cli.exe -- report --preset arena

# CI slice: 3 schemes x 2 scenarios.
arena-smoke:
	dune exec bin/themis_campaign_cli.exe -- run --preset arena-smoke --workers 2 --force --quiet
	dune exec bin/themis_campaign_cli.exe -- gate --preset arena-smoke

# Regenerate every paper figure/study/fuzz campaign and refreeze the
# committed baselines (run after an intentional model change).
campaign-refreeze:
	for p in quick fig1 fig5a incast ablation fuzz mix load-sweep failures arena arena-smoke; do \
	  dune exec bin/themis_campaign_cli.exe -- run --preset $$p --workers 4 --force --quiet && \
	  dune exec bin/themis_campaign_cli.exe -- freeze --preset $$p || exit 1; \
	done

# Production-workload gate (DESIGN.md §12): the mix scenario (websearch
# open-loop + allreduce overlay) over the fork pool, gated against its
# frozen baseline, then the streaming bench's 50k-flow smoke asserting
# the O(active-flows) live high-water mark and full completion.
workload-smoke:
	dune exec bin/themis_campaign_cli.exe -- run --preset mix --workers 2 --force --quiet
	dune exec bin/themis_campaign_cli.exe -- gate --preset mix
	dune exec bench/workload_bench.exe -- --smoke --out _build/BENCH_workload.smoke.json

# Full streaming proof: 1M Poisson arrivals; memory must stay O(active).
workload-bench:
	dune exec bench/workload_bench.exe -- --out BENCH_workload.json

check: build test examples micro bench-engine-smoke bench-fwd-smoke bench-shard-smoke fuzz-quick campaign-quick workload-smoke arena-smoke
	@echo "check: OK"

clean:
	dune clean
