# Tooling entry points. `make check` is the CI gate: it must stay green
# on every commit.

.PHONY: all build test examples micro fuzz-quick fuzz-soak check clean

all: build

build:
	dune build @all

test:
	dune runtest

# Every example must at least build; quickstart doubles as a fast
# end-to-end smoke run.
examples:
	dune build examples
	dune exec examples/quickstart.exe

# Telemetry/data-plane hot paths; the histogram record budget is 100 ns.
micro:
	dune exec bench/main.exe -- micro

# Randomized fault-injection sweep with invariant oracles (DESIGN.md §8).
# 200 scenarios x every scheme normally finishes in ~2 s; the wall budget
# stops generating new scenarios if a slow machine would blow the CI
# slot, so coverage degrades gracefully instead of timing out.
fuzz-quick:
	dune exec bin/themis_fuzz_cli.exe -- quick --specs 200 --budget-s 60

fuzz-soak:
	dune exec bin/themis_fuzz_cli.exe -- soak

check: build test examples micro fuzz-quick
	@echo "check: OK"

clean:
	dune clean
