# Tooling entry points. `make check` is the CI gate: it must stay green
# on every commit.

.PHONY: all build test examples micro check clean

all: build

build:
	dune build @all

test:
	dune runtest

# Every example must at least build; quickstart doubles as a fast
# end-to-end smoke run.
examples:
	dune build examples
	dune exec examples/quickstart.exe

# Telemetry/data-plane hot paths; the histogram record budget is 100 ns.
micro:
	dune exec bench/main.exe -- micro

check: build test examples micro
	@echo "check: OK"

clean:
	dune clean
