(* The responder state machine: NIC-SR, GBN, Ideal. *)

type log_event = Ack of int | Nack of int

let make ?(mode = Receiver.Sr) ?(ack_coalesce = 1) () =
  let log = ref [] in
  let delivered = ref 0 in
  let r =
    Receiver.create ~mode ~ack_coalesce
      ~actions:
        {
          Receiver.send_ack = (fun ~epsn -> log := Ack epsn :: !log);
          Receiver.send_nack = (fun ~epsn -> log := Nack epsn :: !log);
          Receiver.deliver = (fun ~bytes -> delivered := !delivered + bytes);
        }
  in
  (r, log, delivered)

let feed r seqs =
  List.iter (fun s -> Receiver.on_data r ~seq:s ~payload:100 ~last_of_msg:false) seqs

let test_in_order () =
  let r, log, delivered = make () in
  feed r [ 0; 1; 2 ];
  Alcotest.(check int) "epsn" 3 (Receiver.epsn r);
  Alcotest.(check int) "delivered" 300 !delivered;
  Alcotest.(check bool) "acks, no nacks" true
    (List.for_all (function Ack _ -> true | Nack _ -> false) !log);
  Alcotest.(check int) "three acks" 3 (Receiver.acks_sent r)

let test_sr_ooo_single_nack () =
  let r, log, delivered = make () in
  (* Gap at 0: packets 1, 2, 3 arrive first.  Exactly one NACK(0). *)
  feed r [ 1; 2; 3 ];
  Alcotest.(check int) "epsn stuck" 0 (Receiver.epsn r);
  let nacks = List.filter (function Nack _ -> true | Ack _ -> false) !log in
  Alcotest.(check bool) "single NACK for ePSN 0" true (nacks = [ Nack 0 ]);
  Alcotest.(check int) "ooo buffered" 3 (Receiver.ooo_buffered r);
  Alcotest.(check int) "payload placed" 300 !delivered;
  (* The gap fills: ePSN jumps over the bitmap; ack reflects it. *)
  feed r [ 0 ];
  Alcotest.(check int) "epsn jumps" 4 (Receiver.epsn r);
  Alcotest.(check int) "ooo drained" 0 (Receiver.ooo_buffered r);
  Alcotest.(check int) "all delivered once" 400 !delivered;
  (match !log with
  | Ack 4 :: _ -> ()
  | _ -> Alcotest.fail "expected cumulative ACK 4 after fill")

let test_sr_new_epsn_new_nack () =
  let r, log, _ = make () in
  feed r [ 1 ];  (* NACK(0) *)
  feed r [ 0 ];  (* fills; epsn=2 *)
  feed r [ 3 ];  (* new gap at 2: NACK(2) *)
  let nacks =
    List.rev (List.filter_map (function Nack e -> Some e | Ack _ -> None) !log)
  in
  Alcotest.(check (list int)) "one NACK per distinct ePSN" [ 0; 2 ] nacks;
  Alcotest.(check int) "count" 2 (Receiver.nacks_sent r)

let test_sr_duplicate_ooo_no_extra_nack () =
  let r, _, delivered = make () in
  feed r [ 2; 2; 2 ];
  Alcotest.(check int) "one nack" 1 (Receiver.nacks_sent r);
  Alcotest.(check int) "dups" 2 (Receiver.duplicate_packets r);
  Alcotest.(check int) "payload once" 100 !delivered

let test_sr_stale_duplicate_reacks () =
  let r, log, delivered = make () in
  feed r [ 0; 1 ];
  let before = List.length !log in
  feed r [ 0 ];
  Alcotest.(check int) "dup counted" 1 (Receiver.duplicate_packets r);
  Alcotest.(check int) "payload not recounted" 200 !delivered;
  (match !log with
  | Ack 2 :: _ -> ()
  | _ -> Alcotest.fail "expected re-ACK of current ePSN");
  Alcotest.(check bool) "one more event" true (List.length !log = before + 1)

let test_gbn_drops_ooo () =
  let r, _, delivered = make ~mode:Receiver.Gbn () in
  feed r [ 0; 2; 3 ];
  Alcotest.(check int) "epsn" 1 (Receiver.epsn r);
  Alcotest.(check int) "dropped" 2 (Receiver.ooo_dropped r);
  Alcotest.(check int) "only in-order delivered" 100 !delivered;
  Alcotest.(check int) "one nack" 1 (Receiver.nacks_sent r);
  Alcotest.(check int) "no buffering" 0 (Receiver.ooo_buffered r);
  (* Retransmitted 1 arrives: delivery resumes; 2 and 3 must come again. *)
  feed r [ 1 ];
  Alcotest.(check int) "epsn 2" 2 (Receiver.epsn r);
  feed r [ 2; 3 ];
  Alcotest.(check int) "caught up" 4 (Receiver.epsn r)

let test_ideal_never_nacks () =
  let r, log, delivered = make ~mode:Receiver.Ideal () in
  feed r [ 3; 1; 2; 0 ];
  Alcotest.(check int) "epsn" 4 (Receiver.epsn r);
  Alcotest.(check int) "all delivered" 400 !delivered;
  Alcotest.(check int) "zero nacks" 0 (Receiver.nacks_sent r);
  Alcotest.(check bool) "only acks" true
    (List.for_all (function Ack _ -> true | Nack _ -> false) !log)

let test_ack_coalescing () =
  let r, _, _ = make ~ack_coalesce:4 () in
  feed r [ 0; 1; 2 ];
  Alcotest.(check int) "held back" 0 (Receiver.acks_sent r);
  feed r [ 3 ];
  Alcotest.(check int) "flushed at 4" 1 (Receiver.acks_sent r)

let test_last_of_msg_flushes () =
  let r, log, _ = make ~ack_coalesce:100 () in
  Receiver.on_data r ~seq:0 ~payload:100 ~last_of_msg:false;
  Receiver.on_data r ~seq:1 ~payload:50 ~last_of_msg:true;
  Alcotest.(check int) "flushed" 1 (Receiver.acks_sent r);
  match !log with
  | [ Ack 2 ] -> ()
  | _ -> Alcotest.fail "expected exactly ACK 2"

let test_gap_fill_flushes () =
  let r, _, _ = make ~ack_coalesce:100 () in
  feed r [ 1; 2 ];
  Alcotest.(check int) "nothing yet" 0 (Receiver.acks_sent r);
  feed r [ 0 ];
  (* Filling a gap forces a cumulative ACK despite coalescing. *)
  Alcotest.(check int) "flush on fill" 1 (Receiver.acks_sent r)

let test_invalid_coalesce () =
  Alcotest.check_raises "zero" (Invalid_argument "Receiver.create: ack_coalesce >= 1")
    (fun () -> ignore (make ~ack_coalesce:0 ()))

(* Property: feeding any permutation of 0..n-1 to an SR receiver delivers
   each payload exactly once and ends with ePSN = n. *)
let prop_sr_permutation_complete =
  QCheck.Test.make ~name:"SR handles any permutation" ~count:200
    QCheck.(int_range 1 60)
    (fun n ->
      let rng = Rng.create ~seed:n in
      let arr = Array.init n Fun.id in
      Rng.shuffle_in_place rng arr;
      let r, _, delivered = make () in
      Array.iter (fun s -> Receiver.on_data r ~seq:s ~payload:7 ~last_of_msg:false) arr;
      Receiver.epsn r = n && !delivered = 7 * n && Receiver.ooo_buffered r = 0)

(* Property: with duplicates injected, payload is still counted once. *)
let prop_sr_dedup =
  QCheck.Test.make ~name:"SR deduplicates" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 80) (int_range 0 20))
    (fun seqs ->
      let r, _, delivered = make () in
      List.iter (fun s -> Receiver.on_data r ~seq:s ~payload:3 ~last_of_msg:false) seqs;
      let distinct = List.sort_uniq compare seqs in
      !delivered = 3 * List.length distinct)

let () =
  Alcotest.run "receiver"
    [
      ( "nic-sr",
        [
          Alcotest.test_case "in order" `Quick test_in_order;
          Alcotest.test_case "ooo single nack" `Quick test_sr_ooo_single_nack;
          Alcotest.test_case "new epsn new nack" `Quick test_sr_new_epsn_new_nack;
          Alcotest.test_case "dup ooo" `Quick test_sr_duplicate_ooo_no_extra_nack;
          Alcotest.test_case "stale dup" `Quick test_sr_stale_duplicate_reacks;
          QCheck_alcotest.to_alcotest prop_sr_permutation_complete;
          QCheck_alcotest.to_alcotest prop_sr_dedup;
        ] );
      ( "gbn / ideal",
        [
          Alcotest.test_case "gbn drops" `Quick test_gbn_drops_ooo;
          Alcotest.test_case "ideal" `Quick test_ideal_never_nacks;
        ] );
      ( "acking",
        [
          Alcotest.test_case "coalescing" `Quick test_ack_coalescing;
          Alcotest.test_case "last flushes" `Quick test_last_of_msg_flushes;
          Alcotest.test_case "gap fill flushes" `Quick test_gap_fill_flushes;
          Alcotest.test_case "invalid" `Quick test_invalid_coalesce;
        ] );
    ]
