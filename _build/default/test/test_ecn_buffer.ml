(* WRED/ECN marking and shared-buffer admission. *)

let test_ecn_thresholds () =
  let cfg = Ecn.config ~kmin:1000 ~kmax:2000 ~pmax:0.5 in
  let rng = Rng.create ~seed:1 in
  Alcotest.(check bool) "below kmin" false
    (Ecn.should_mark cfg rng ~queue_bytes:999);
  Alcotest.(check bool) "at kmin" false (Ecn.should_mark cfg rng ~queue_bytes:1000);
  Alcotest.(check bool) "above kmax" true
    (Ecn.should_mark cfg rng ~queue_bytes:2000);
  Alcotest.(check bool) "way above" true
    (Ecn.should_mark cfg rng ~queue_bytes:1_000_000)

let test_ecn_probability_ramp () =
  let cfg = Ecn.config ~kmin:0 ~kmax:10_000 ~pmax:1.0 in
  let count q =
    let rng = Rng.create ~seed:7 in
    let marks = ref 0 in
    for _ = 1 to 10_000 do
      if Ecn.should_mark cfg rng ~queue_bytes:q then incr marks
    done;
    !marks
  in
  let low = count 2_500 and high = count 7_500 in
  Alcotest.(check bool) "ramp monotone" true (low < high);
  Alcotest.(check bool) "low near 25%" true (low > 1_500 && low < 3_500);
  Alcotest.(check bool) "high near 75%" true (high > 6_500 && high < 8_500)

let test_ecn_invalid () =
  Alcotest.check_raises "kmax < kmin"
    (Invalid_argument "Ecn.config: need 0 <= kmin <= kmax") (fun () ->
      ignore (Ecn.config ~kmin:10 ~kmax:5 ~pmax:0.1));
  Alcotest.check_raises "pmax > 1"
    (Invalid_argument "Ecn.config: pmax must be in [0,1]") (fun () ->
      ignore (Ecn.config ~kmin:1 ~kmax:5 ~pmax:1.5))

let test_ecn_scaled () =
  let cfg100 = Ecn.scaled_to (Rate.gbps 100.) in
  let cfg400 = Ecn.scaled_to (Rate.gbps 400.) in
  Alcotest.(check int) "100G kmin" 100_000 cfg100.Ecn.kmin;
  Alcotest.(check int) "400G kmin" 400_000 cfg400.Ecn.kmin;
  Alcotest.(check int) "400G kmax" 1_600_000 cfg400.Ecn.kmax

let test_pool_admission () =
  let pool = Buffer_pool.create ~capacity:10_000 ~per_port_cap:4_000 in
  Alcotest.(check bool) "admit" true
    (Buffer_pool.try_admit pool ~port_bytes:0 ~size:3_000);
  Alcotest.(check int) "used" 3_000 (Buffer_pool.used pool);
  (* Per-port cap binds even when the pool has room. *)
  Alcotest.(check bool) "port cap" false
    (Buffer_pool.try_admit pool ~port_bytes:3_000 ~size:1_500);
  Alcotest.(check int) "rejected does not reserve" 3_000 (Buffer_pool.used pool);
  (* Pool capacity binds across ports. *)
  Alcotest.(check bool) "fill" true
    (Buffer_pool.try_admit pool ~port_bytes:0 ~size:4_000);
  Alcotest.(check bool) "fill2" true
    (Buffer_pool.try_admit pool ~port_bytes:0 ~size:3_000);
  Alcotest.(check bool) "full" false
    (Buffer_pool.try_admit pool ~port_bytes:0 ~size:1);
  Alcotest.(check int) "high watermark" 10_000 (Buffer_pool.high_watermark pool)

let test_pool_release () =
  let pool = Buffer_pool.create ~capacity:1_000 ~per_port_cap:1_000 in
  Alcotest.(check bool) "admit" true
    (Buffer_pool.try_admit pool ~port_bytes:0 ~size:1_000);
  Buffer_pool.release pool 400;
  Alcotest.(check int) "partial release" 600 (Buffer_pool.used pool);
  Buffer_pool.release pool 10_000;
  Alcotest.(check int) "clamped at zero" 0 (Buffer_pool.used pool)

let test_pool_invalid () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Buffer_pool.create: capacities must be positive")
    (fun () -> ignore (Buffer_pool.create ~capacity:0 ~per_port_cap:1))

let prop_admission_never_exceeds =
  QCheck.Test.make ~name:"pool usage never exceeds capacity" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 100) (int_range 1 500))
    (fun sizes ->
      let pool = Buffer_pool.create ~capacity:5_000 ~per_port_cap:5_000 in
      List.iter
        (fun s -> ignore (Buffer_pool.try_admit pool ~port_bytes:0 ~size:s))
        sizes;
      Buffer_pool.used pool <= Buffer_pool.capacity pool)

let () =
  Alcotest.run "ecn_buffer"
    [
      ( "ecn",
        [
          Alcotest.test_case "thresholds" `Quick test_ecn_thresholds;
          Alcotest.test_case "probability ramp" `Quick test_ecn_probability_ramp;
          Alcotest.test_case "invalid" `Quick test_ecn_invalid;
          Alcotest.test_case "scaled" `Quick test_ecn_scaled;
        ] );
      ( "buffer pool",
        [
          Alcotest.test_case "admission" `Quick test_pool_admission;
          Alcotest.test_case "release" `Quick test_pool_release;
          Alcotest.test_case "invalid" `Quick test_pool_invalid;
          QCheck_alcotest.to_alcotest prop_admission_never_exceeds;
        ] );
    ]
