(* Section 4's analytical memory model (Table 1 worked example). *)

let is_infix ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

let test_table1_values () =
  let p = Memory_model.table1 in
  Alcotest.(check int) "N_paths" 256 p.Memory_model.n_paths;
  Alcotest.(check (float 0.1)) "BW" 400. (Rate.to_gbps p.Memory_model.bw);
  Alcotest.(check int) "RTT" (Sim_time.us 2) p.Memory_model.rtt_last;
  Alcotest.(check int) "N_NIC" 16 p.Memory_model.n_nic;
  Alcotest.(check int) "N_QP" 100 p.Memory_model.n_qp;
  Alcotest.(check int) "MTU" 1500 p.Memory_model.mtu;
  Alcotest.(check (float 1e-9)) "F" 1.5 p.Memory_model.factor

let test_derived () =
  let p = Memory_model.table1 in
  (* M_PathMap = 256 x 2 = 512 B. *)
  Alcotest.(check int) "pathmap" 512 (Memory_model.pathmap_bytes p);
  (* N_entries = ceil(400Gbps x 2us x 1.5 / 1500B) = 100. *)
  Alcotest.(check int) "entries" 100 (Memory_model.n_entries p);
  (* M_QP = 20 + 100 = 120 B. *)
  Alcotest.(check int) "per qp" 120 (Memory_model.per_qp_bytes p);
  (* M_total = 512 + 120 x 100 x 16 = 192,512 B ~ 188 KiB (the paper
     rounds this to "~193 KB" in decimal kilobytes). *)
  Alcotest.(check int) "total" 192_512 (Memory_model.total_bytes p);
  let kb_decimal = float_of_int (Memory_model.total_bytes p) /. 1000. in
  Alcotest.(check bool) "~193 KB as the paper states" true
    (kb_decimal > 190. && kb_decimal < 195.)

let test_sram_fraction () =
  let p = Memory_model.table1 in
  let frac =
    Memory_model.fraction_of_sram p ~sram_bytes:Memory_model.tofino_sram_bytes
  in
  (* Well under 1% of a 64 MB Tofino SRAM. *)
  Alcotest.(check bool) "tiny" true (frac < 0.01);
  Alcotest.(check int) "64MB" (64 * 1024 * 1024) Memory_model.tofino_sram_bytes

let test_scaling () =
  let p = Memory_model.table1 in
  (* Doubling QPs doubles the QP contribution. *)
  let p2 = { p with Memory_model.n_qp = 200 } in
  Alcotest.(check int) "qp scaling"
    ((Memory_model.total_bytes p - 512) * 2)
    (Memory_model.total_bytes p2 - 512);
  (* Larger MTU shrinks the ring. *)
  let p3 = { p with Memory_model.mtu = 3000 } in
  Alcotest.(check int) "mtu halves entries" 50 (Memory_model.n_entries p3)

let test_report_renders () =
  let s = Format.asprintf "%a" Memory_model.pp_report Memory_model.table1 in
  Alcotest.(check bool) "mentions M_total" true
    (String.length s > 100
    && is_infix ~affix:"M_total" s
    && is_infix ~affix:"Tofino" s)

let () =
  Alcotest.run "memory_model"
    [
      ( "section 4",
        [
          Alcotest.test_case "table1" `Quick test_table1_values;
          Alcotest.test_case "derived" `Quick test_derived;
          Alcotest.test_case "sram fraction" `Quick test_sram_fraction;
          Alcotest.test_case "scaling" `Quick test_scaling;
          Alcotest.test_case "report" `Quick test_report_renders;
        ] );
    ]
