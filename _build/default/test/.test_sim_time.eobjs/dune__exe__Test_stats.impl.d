test/test_stats.ml: Alcotest Float Gen List QCheck QCheck_alcotest Sim_time Stats
