test/test_engine.ml: Alcotest Engine Fun List
