test/test_rng.ml: Alcotest Array Fun List QCheck QCheck_alcotest Rng
