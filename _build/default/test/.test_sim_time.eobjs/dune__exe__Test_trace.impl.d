test/test_trace.ml: Alcotest Array Leaf_spine List Network Rnic Sim_time String Trace Workload
