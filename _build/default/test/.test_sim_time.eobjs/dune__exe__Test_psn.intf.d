test/test_psn.mli:
