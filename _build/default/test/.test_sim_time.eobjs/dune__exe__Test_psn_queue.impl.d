test/test_psn_queue.ml: Alcotest Gen List Psn Psn_queue QCheck QCheck_alcotest Rate Sim_time
