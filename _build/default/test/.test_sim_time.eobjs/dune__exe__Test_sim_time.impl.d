test/test_sim_time.ml: Alcotest Format QCheck QCheck_alcotest Rate Sim_time
