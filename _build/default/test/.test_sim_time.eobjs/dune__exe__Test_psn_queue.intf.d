test/test_psn_queue.mli:
