test/test_sim_time.mli:
