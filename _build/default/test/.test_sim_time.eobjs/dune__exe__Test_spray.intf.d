test/test_spray.mli:
