test/test_themis_d.ml: Alcotest Flow_id Flow_table Format List Packet Psn Themis_d
