test/test_path_map.mli:
