test/test_psn.ml: Alcotest Psn QCheck QCheck_alcotest
