test/test_rnic.ml: Alcotest Dcqcn Engine Flow_id Headers List Packet Port Rate Rnic Sender Sim_time
