test/test_themis_s.ml: Alcotest Array Ecmp_hash Flow_id Headers Packet Path_map Printf Psn Themis_s
