test/test_dcqcn.mli:
