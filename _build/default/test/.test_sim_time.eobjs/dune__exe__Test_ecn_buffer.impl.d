test/test_ecn_buffer.ml: Alcotest Buffer_pool Ecn Gen List QCheck QCheck_alcotest Rate Rng
