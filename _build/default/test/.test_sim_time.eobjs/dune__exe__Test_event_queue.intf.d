test/test_event_queue.mli:
