test/test_ecmp_hash.ml: Alcotest Array Ecmp_hash QCheck QCheck_alcotest
