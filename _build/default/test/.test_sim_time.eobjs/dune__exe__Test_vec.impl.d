test/test_vec.ml: Alcotest Array List Vec
