test/test_sender.ml: Alcotest Dcqcn Engine Flow_id Headers List Packet Psn Rate Sender Sim_time
