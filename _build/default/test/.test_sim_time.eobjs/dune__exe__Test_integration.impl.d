test/test_integration.ml: Alcotest Array Engine Flow_table Gen Lb_policy Leaf_spine List Network Option Port QCheck QCheck_alcotest Rnic Sim_time Stdlib Switch Themis_d Themis_s Topology Workload
