test/test_packet.ml: Alcotest Flow_id Format Headers Packet Psn String
