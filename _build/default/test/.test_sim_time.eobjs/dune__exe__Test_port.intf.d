test/test_port.mli:
