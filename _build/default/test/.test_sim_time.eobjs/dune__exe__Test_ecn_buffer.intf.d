test/test_ecn_buffer.mli:
