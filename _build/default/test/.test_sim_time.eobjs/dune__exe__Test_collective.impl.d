test/test_collective.ml: Alcotest Engine Format List Runner Schedule Sim_time String
