test/test_collective.mli:
