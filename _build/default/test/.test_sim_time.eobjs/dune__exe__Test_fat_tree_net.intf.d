test/test_fat_tree_net.mli:
