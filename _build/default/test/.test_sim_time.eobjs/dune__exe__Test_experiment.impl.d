test/test_experiment.ml: Alcotest Experiment Leaf_spine List Network Rate Sim_time
