test/test_ecmp_hash.mli:
