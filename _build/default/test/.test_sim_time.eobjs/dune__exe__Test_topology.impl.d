test/test_topology.ml: Alcotest Array Fat_tree Format Leaf_spine Rate Sim_time String Topology
