test/test_receiver.ml: Alcotest Array Fun Gen List QCheck QCheck_alcotest Receiver Rng
