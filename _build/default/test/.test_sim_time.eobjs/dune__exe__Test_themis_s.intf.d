test/test_themis_s.mli:
