test/test_lb_policy.mli:
