test/test_flow_table.mli:
