test/test_memory_model.mli:
