test/test_fat_tree_net.ml: Alcotest Array Fat_tree Fat_tree_net Network Option Port Printf Rnic Sim_time Switch
