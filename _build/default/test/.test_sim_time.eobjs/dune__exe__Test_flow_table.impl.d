test/test_flow_table.ml: Alcotest Flow_id Flow_table Psn_queue
