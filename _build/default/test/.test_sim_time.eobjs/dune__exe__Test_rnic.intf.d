test/test_rnic.mli:
