test/test_receiver.mli:
