test/test_ablation.ml: Ablation Alcotest Sim_time
