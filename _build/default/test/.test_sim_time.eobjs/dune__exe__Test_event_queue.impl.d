test/test_event_queue.ml: Alcotest Event_queue Gen List Option QCheck QCheck_alcotest
