test/test_sender.mli:
