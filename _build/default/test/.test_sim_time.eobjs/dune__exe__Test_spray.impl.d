test/test_spray.ml: Alcotest Array Flow_id Psn QCheck QCheck_alcotest Spray
