test/test_memory_model.ml: Alcotest Format Memory_model Rate Sim_time String
