test/test_routing.ml: Alcotest Array Fat_tree Leaf_spine List Option Rate Routing Topology
