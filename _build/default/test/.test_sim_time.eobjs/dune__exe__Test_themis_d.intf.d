test/test_themis_d.mli:
