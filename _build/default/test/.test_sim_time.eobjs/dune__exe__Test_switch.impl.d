test/test_switch.ml: Alcotest Array Buffer_pool Ecn Engine Flow_id Hashtbl Headers Lb_policy Leaf_spine List Option Packet Port Printf Psn Rate Rng Routing Sim_time Switch Themis_d Themis_s Topology
