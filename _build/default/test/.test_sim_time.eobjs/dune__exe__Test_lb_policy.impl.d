test/test_lb_policy.ml: Alcotest Array Flow_id Lb_policy List Packet Psn QCheck QCheck_alcotest Result Rng Spray
