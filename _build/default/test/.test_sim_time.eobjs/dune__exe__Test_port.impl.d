test/test_port.ml: Alcotest Engine Flow_id Fun Headers List Packet Port Psn Rate Rng
