test/test_dcqcn.ml: Alcotest Dcqcn Engine Rate Sim_time
