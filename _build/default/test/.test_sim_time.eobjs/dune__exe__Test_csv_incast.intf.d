test/test_csv_incast.mli:
