test/test_csv_incast.ml: Alcotest Csv_export Experiment Filename Network Sys
