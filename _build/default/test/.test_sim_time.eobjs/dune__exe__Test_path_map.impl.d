test/test_path_map.ml: Alcotest Array Ecmp_hash List Path_map Printf QCheck QCheck_alcotest
