(* 24-bit PSN wrap-around arithmetic — the foundation of Eq. 1-3. *)

let psn = Alcotest.testable Psn.pp Psn.equal

let test_of_int_masks () =
  Alcotest.check psn "wraps" (Psn.of_int 0) (Psn.of_int Psn.modulus);
  Alcotest.check psn "wraps+1" (Psn.of_int 1) (Psn.of_int (Psn.modulus + 1));
  Alcotest.(check int) "modulus" (1 lsl 24) Psn.modulus;
  Alcotest.(check int) "bits" 24 Psn.bits

let test_succ_wraps () =
  Alcotest.check psn "succ max" Psn.zero (Psn.succ (Psn.of_int (Psn.modulus - 1)));
  Alcotest.check psn "add wraps" (Psn.of_int 4)
    (Psn.add (Psn.of_int (Psn.modulus - 1)) 5)

let test_distance () =
  Alcotest.(check int) "forward" 5
    (Psn.distance ~from:(Psn.of_int 10) (Psn.of_int 15));
  Alcotest.(check int) "wrap" 6
    (Psn.distance ~from:(Psn.of_int (Psn.modulus - 3)) (Psn.of_int 3));
  Alcotest.(check int) "self" 0 (Psn.distance ~from:(Psn.of_int 7) (Psn.of_int 7))

let test_circular_compare () =
  let a = Psn.of_int 10 and b = Psn.of_int 20 in
  Alcotest.(check bool) "lt" true (Psn.lt a b);
  Alcotest.(check bool) "gt" true (Psn.gt b a);
  Alcotest.(check bool) "le self" true (Psn.le a a);
  Alcotest.(check bool) "ge self" true (Psn.ge a a);
  (* Near the wrap point, the numerically large PSN precedes zero. *)
  let near_wrap = Psn.of_int (Psn.modulus - 5) in
  Alcotest.(check bool) "wrap lt" true (Psn.lt near_wrap (Psn.of_int 3));
  Alcotest.(check bool) "wrap gt" true (Psn.gt (Psn.of_int 3) near_wrap)

let test_mod_paths () =
  Alcotest.(check int) "mod 4" 2 (Psn.mod_paths (Psn.of_int 6) 4);
  Alcotest.(check int) "mod 1" 0 (Psn.mod_paths (Psn.of_int 6) 1);
  Alcotest.check_raises "invalid" (Invalid_argument "Psn.mod_paths: paths must be positive")
    (fun () -> ignore (Psn.mod_paths Psn.zero 0))

let test_same_residue () =
  Alcotest.(check bool) "6 vs 2 mod 4" true
    (Psn.same_residue (Psn.of_int 6) (Psn.of_int 2) ~paths:4);
  Alcotest.(check bool) "3 vs 2 mod 2" false
    (Psn.same_residue (Psn.of_int 3) (Psn.of_int 2) ~paths:2);
  (* Power-of-two path counts stay consistent across the 24-bit wrap. *)
  Alcotest.(check bool) "wrap consistent" true
    (Psn.same_residue
       (Psn.of_int (Psn.modulus - 4))
       (Psn.of_int (Psn.modulus + 4))
       ~paths:4)

let test_unwrap () =
  Alcotest.(check int) "identity" 100 (Psn.unwrap ~near:100 (Psn.of_int 100));
  Alcotest.(check int) "small ahead" 105 (Psn.unwrap ~near:100 (Psn.of_int 105));
  Alcotest.(check int) "small behind" 95 (Psn.unwrap ~near:100 (Psn.of_int 95));
  (* Across the wrap: sequence 2^24 + 3 seen near 2^24 - 10. *)
  let near = Psn.modulus - 10 in
  Alcotest.(check int) "wrap ahead" (Psn.modulus + 3)
    (Psn.unwrap ~near (Psn.of_int 3));
  (* Multiple wraps accumulated in the monotonic counter. *)
  let near = (3 * Psn.modulus) + 7 in
  Alcotest.(check int) "multi-wrap" ((3 * Psn.modulus) + 9)
    (Psn.unwrap ~near (Psn.of_int 9))

let prop_compare_antisymmetric =
  QCheck.Test.make ~name:"lt antisymmetric within half-window" ~count:500
    QCheck.(pair (int_range 0 (Psn.modulus - 1)) (int_range 1 ((Psn.modulus / 2) - 1)))
    (fun (a, d) ->
      let pa = Psn.of_int a and pb = Psn.of_int (a + d) in
      Psn.lt pa pb && Psn.gt pb pa && not (Psn.equal pa pb))

let prop_unwrap_roundtrip =
  QCheck.Test.make ~name:"unwrap inverts truncation near the counter" ~count:500
    QCheck.(pair (int_range 0 100_000_000) (int_range (-4_000_000) 4_000_000))
    (fun (near, delta) ->
      let seq = near + delta in
      QCheck.assume (seq >= 0);
      Psn.unwrap ~near (Psn.of_int seq) = seq)

let prop_distance_inverse =
  QCheck.Test.make ~name:"distance/add inverse" ~count:500
    QCheck.(pair (int_range 0 (Psn.modulus - 1)) (int_range 0 (Psn.modulus - 1)))
    (fun (a, d) ->
      let pa = Psn.of_int a in
      Psn.distance ~from:pa (Psn.add pa d) = d mod Psn.modulus)

let () =
  Alcotest.run "psn"
    [
      ( "arithmetic",
        [
          Alcotest.test_case "of_int masks" `Quick test_of_int_masks;
          Alcotest.test_case "succ wraps" `Quick test_succ_wraps;
          Alcotest.test_case "distance" `Quick test_distance;
          Alcotest.test_case "circular compare" `Quick test_circular_compare;
          Alcotest.test_case "mod_paths" `Quick test_mod_paths;
          Alcotest.test_case "same_residue" `Quick test_same_residue;
          Alcotest.test_case "unwrap" `Quick test_unwrap;
          QCheck_alcotest.to_alcotest prop_compare_antisymmetric;
          QCheck_alcotest.to_alcotest prop_unwrap_roundtrip;
          QCheck_alcotest.to_alcotest prop_distance_inverse;
        ] );
    ]
