(* Equal-cost shortest-path routing. *)

let motivation () =
  let ls = Leaf_spine.build Leaf_spine.motivation in
  (ls, Routing.compute ls.Leaf_spine.topo)

let test_host_next_hop () =
  let ls, routing = motivation () in
  (* A host's only way out is its ToR. *)
  let hops = Routing.next_hops routing ~node:0 ~dst:5 in
  Alcotest.(check int) "one hop" 1 (Array.length hops);
  Alcotest.(check int) "to tor" (Leaf_spine.tor_of_host ls 0) (fst hops.(0))

let test_tor_fanout () =
  let ls, routing = motivation () in
  let tor0 = ls.Leaf_spine.leaves.(0) in
  (* Cross-rack: all spines are equal-cost. *)
  let hops = Routing.next_hops routing ~node:tor0 ~dst:5 in
  Alcotest.(check int) "four spines" 4 (Array.length hops);
  let peers = Array.to_list (Array.map fst hops) in
  Alcotest.(check (list int)) "sorted by peer" (List.sort compare peers) peers;
  (* Same-rack: direct to the host. *)
  let hops = Routing.next_hops routing ~node:tor0 ~dst:2 in
  Alcotest.(check int) "direct" 1 (Array.length hops);
  Alcotest.(check int) "host" 2 (fst hops.(0))

let test_spine_downhill () =
  let ls, routing = motivation () in
  let spine = ls.Leaf_spine.spines.(0) in
  let hops = Routing.next_hops routing ~node:spine ~dst:5 in
  Alcotest.(check int) "one way down" 1 (Array.length hops);
  Alcotest.(check int) "to dst tor" (Leaf_spine.tor_of_host ls 5) (fst hops.(0))

let test_distance () =
  let ls, routing = motivation () in
  Alcotest.(check int) "self" 0 (Routing.distance routing ~node:5 ~dst:5);
  Alcotest.(check int) "same rack" 2 (Routing.distance routing ~node:0 ~dst:2);
  Alcotest.(check int) "cross rack" 4 (Routing.distance routing ~node:0 ~dst:5);
  Alcotest.(check int) "tor to local host" 1
    (Routing.distance routing ~node:(Leaf_spine.tor_of_host ls 0) ~dst:0)

let test_path_count_leaf_spine () =
  let _, routing = motivation () in
  Alcotest.(check int) "cross rack = spines" 4
    (Routing.path_count routing ~src:0 ~dst:5);
  Alcotest.(check int) "same rack" 1 (Routing.path_count routing ~src:0 ~dst:2);
  Alcotest.(check int) "self" 1 (Routing.path_count routing ~src:0 ~dst:0)

let test_path_count_fat_tree () =
  let ft =
    Fat_tree.build ~k:4 ~host_bw:(Rate.gbps 100.) ~fabric_bw:(Rate.gbps 100.)
      ~link_delay:1
  in
  let routing = Routing.compute ft.Fat_tree.topo in
  (* Inter-pod: (k/2)^2 = 4; intra-pod cross-ToR: k/2 = 2. *)
  Alcotest.(check int) "inter-pod" 4 (Routing.path_count routing ~src:0 ~dst:15);
  Alcotest.(check int) "intra-pod" 2 (Routing.path_count routing ~src:0 ~dst:2);
  Alcotest.(check int) "same tor" 1 (Routing.path_count routing ~src:0 ~dst:1)

let test_failure_recompute () =
  let ls, routing = motivation () in
  let tor0 = ls.Leaf_spine.leaves.(0) in
  let spine0 = ls.Leaf_spine.spines.(0) in
  let link = Option.get (Topology.link_between ls.Leaf_spine.topo tor0 spine0) in
  Topology.set_link_up ls.Leaf_spine.topo ~link_id:link false;
  Routing.recompute routing;
  let hops = Routing.next_hops routing ~node:tor0 ~dst:5 in
  Alcotest.(check int) "three spines left" 3 (Array.length hops);
  Alcotest.(check bool) "spine0 gone" true
    (Array.for_all (fun (p, _) -> p <> spine0) hops);
  Alcotest.(check int) "paths now 3" 3 (Routing.path_count routing ~src:0 ~dst:5);
  Topology.set_link_up ls.Leaf_spine.topo ~link_id:link true;
  Routing.recompute routing;
  Alcotest.(check int) "restored" 4
    (Array.length (Routing.next_hops routing ~node:tor0 ~dst:5))

let test_unreachable () =
  let ls, routing = motivation () in
  (* Cut the destination host's only link. *)
  let tor = Leaf_spine.tor_of_host ls 5 in
  let link = Option.get (Topology.link_between ls.Leaf_spine.topo 5 tor) in
  Topology.set_link_up ls.Leaf_spine.topo ~link_id:link false;
  Routing.recompute routing;
  Alcotest.(check int) "no hops" 0
    (Array.length (Routing.next_hops routing ~node:0 ~dst:5));
  Alcotest.(check int) "infinite distance" max_int
    (Routing.distance routing ~node:0 ~dst:5)

let test_non_host_dst_rejected () =
  let ls, routing = motivation () in
  Alcotest.check_raises "switch dst"
    (Invalid_argument "Routing: destination is not a host") (fun () ->
      ignore (Routing.next_hops routing ~node:0 ~dst:ls.Leaf_spine.leaves.(0)))

let test_hosts_do_not_transit () =
  (* Even if a host had two links, traffic must not route through it;
     check on the standard topology that next hops at one host never point
     to another host. *)
  let ls, routing = motivation () in
  Array.iter
    (fun h ->
      let hops = Routing.next_hops routing ~node:h ~dst:5 in
      Array.iter
        (fun (peer, _) ->
          if h <> 5 then
            Alcotest.(check bool)
              "next hop is a switch" false
              (Topology.is_host ls.Leaf_spine.topo peer))
        hops)
    ls.Leaf_spine.hosts

let () =
  Alcotest.run "routing"
    [
      ( "next hops",
        [
          Alcotest.test_case "host" `Quick test_host_next_hop;
          Alcotest.test_case "tor fanout" `Quick test_tor_fanout;
          Alcotest.test_case "spine downhill" `Quick test_spine_downhill;
          Alcotest.test_case "no transit through hosts" `Quick test_hosts_do_not_transit;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "distance" `Quick test_distance;
          Alcotest.test_case "path count leaf-spine" `Quick test_path_count_leaf_spine;
          Alcotest.test_case "path count fat-tree" `Quick test_path_count_fat_tree;
        ] );
      ( "failures",
        [
          Alcotest.test_case "recompute" `Quick test_failure_recompute;
          Alcotest.test_case "unreachable" `Quick test_unreachable;
          Alcotest.test_case "non-host dst" `Quick test_non_host_dst_rejected;
        ] );
    ]
