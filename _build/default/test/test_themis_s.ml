(* Themis-Source: spraying at the source ToR. *)

let conn = Flow_id.make ~src:1 ~dst:5 ~qpn:2

let data psn =
  Packet.data ~conn ~sport:1111 ~psn:(Psn.of_int psn) ~payload:1000
    ~last_of_msg:false ~birth:0 ()

let ack () = Packet.ack ~conn ~sport:1111 ~psn:Psn.zero ~birth:0

let test_direct_eq1 () =
  let s = Themis_s.create ~paths:4 ~mode:Themis_s.Direct_egress in
  let base = Themis_s.base_path s (data 0) in
  for psn = 0 to 31 do
    match Themis_s.egress_index s (data psn) with
    | Some path ->
        Alcotest.(check int) "Eq. 1" (((psn mod 4) + base) mod 4) path
    | None -> Alcotest.fail "data must be sprayed"
  done;
  Alcotest.(check int) "sprayed count" 32 (Themis_s.sprayed_packets s)

let test_direct_control_passthrough () =
  let s = Themis_s.create ~paths:4 ~mode:Themis_s.Direct_egress in
  Alcotest.(check bool) "acks not sprayed" true
    (Themis_s.egress_index s (ack ()) = None);
  Alcotest.(check int) "no spray counted" 0 (Themis_s.sprayed_packets s)

let test_direct_apply_noop () =
  let s = Themis_s.create ~paths:4 ~mode:Themis_s.Direct_egress in
  let pkt = data 3 in
  let before = pkt.Packet.udp_sport in
  Themis_s.apply s pkt;
  Alcotest.(check int) "sport untouched" before pkt.Packet.udp_sport

let test_rewrite_mode () =
  let map = Path_map.build ~paths:4 in
  let s = Themis_s.create ~paths:4 ~mode:(Themis_s.Sport_rewrite map) in
  Alcotest.(check bool) "no direct egress" true
    (Themis_s.egress_index s (data 1) = None);
  (* Residue 0 keeps the sport; other residues flip bits. *)
  let p0 = data 0 and p1 = data 1 in
  Themis_s.apply s p0;
  Themis_s.apply s p1;
  Alcotest.(check int) "residue 0 identity" 1111 p0.Packet.udp_sport;
  Alcotest.(check int) "residue 1 rewrite"
    (Path_map.rewrite map ~sport:1111 ~delta_path:1)
    p1.Packet.udp_sport;
  Alcotest.(check int) "sprayed" 2 (Themis_s.sprayed_packets s);
  (* Control packets keep their sport. *)
  let a = ack () in
  Themis_s.apply s a;
  Alcotest.(check int) "ack sport" 1111 a.Packet.udp_sport

let test_rewrite_covers_paths () =
  (* The rewritten sports steer a downstream ECMP over all 8 paths. *)
  let n = 8 in
  let map = Path_map.build ~paths:n in
  let s = Themis_s.create ~paths:n ~mode:(Themis_s.Sport_rewrite map) in
  let seen = Array.make n false in
  for psn = 0 to n - 1 do
    let pkt = data psn in
    Themis_s.apply s pkt;
    let h =
      Ecmp_hash.flow_hash ~src:pkt.Packet.src_node ~dst:pkt.Packet.dst_node
        ~sport:pkt.Packet.udp_sport ~dport:Headers.roce_dst_port
    in
    seen.(Ecmp_hash.path_of_hash ~hash:h ~paths:n) <- true
  done;
  Array.iteri
    (fun i hit -> Alcotest.(check bool) (Printf.sprintf "path %d" i) true hit)
    seen

let test_mismatched_pathmap () =
  let map = Path_map.build ~paths:8 in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Themis_s.create: PathMap size disagrees with paths")
    (fun () -> ignore (Themis_s.create ~paths:4 ~mode:(Themis_s.Sport_rewrite map)))

let test_set_paths () =
  let s = Themis_s.create ~paths:4 ~mode:Themis_s.Direct_egress in
  Themis_s.set_paths s 3;
  Alcotest.(check int) "shrunk" 3 (Themis_s.paths s);
  (* Eq. 1 now cycles over three paths. *)
  let base = Themis_s.base_path s (data 0) in
  (match Themis_s.egress_index s (data 7) with
  | Some p -> Alcotest.(check int) "recomputed" (((7 mod 3) + base) mod 3) p
  | None -> Alcotest.fail "expected spray");
  Alcotest.check_raises "invalid"
    (Invalid_argument "Themis_s.set_paths: paths must be positive") (fun () ->
      Themis_s.set_paths s 0)

let test_invalid_paths () =
  Alcotest.check_raises "zero paths"
    (Invalid_argument "Themis_s.create: paths must be positive") (fun () ->
      ignore (Themis_s.create ~paths:0 ~mode:Themis_s.Direct_egress))

let () =
  Alcotest.run "themis_s"
    [
      ( "direct egress",
        [
          Alcotest.test_case "Eq. 1" `Quick test_direct_eq1;
          Alcotest.test_case "control passthrough" `Quick test_direct_control_passthrough;
          Alcotest.test_case "apply noop" `Quick test_direct_apply_noop;
        ] );
      ( "sport rewrite",
        [
          Alcotest.test_case "rewrite" `Quick test_rewrite_mode;
          Alcotest.test_case "covers paths" `Quick test_rewrite_covers_paths;
          Alcotest.test_case "mismatched map" `Quick test_mismatched_pathmap;
          Alcotest.test_case "set paths" `Quick test_set_paths;
          Alcotest.test_case "invalid" `Quick test_invalid_paths;
        ] );
    ]
