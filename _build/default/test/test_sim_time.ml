(* Units, conversions and rate arithmetic. *)

let check_int = Alcotest.(check int)
let check_float msg a b = Alcotest.(check (float 1e-9)) msg a b

let test_units () =
  check_int "ns" 5 (Sim_time.ns 5);
  check_int "us" 5_000 (Sim_time.us 5);
  check_int "ms" 5_000_000 (Sim_time.ms 5);
  check_int "sec" 5_000_000_000 (Sim_time.sec 5);
  check_int "us_f rounds" 2_500 (Sim_time.us_f 2.5);
  check_int "us_f rounds to nearest" 3 (Sim_time.us_f 0.0025)

let test_conversions () =
  check_float "to_us" 1.5 (Sim_time.to_us 1_500);
  check_float "to_ms" 1.5 (Sim_time.to_ms 1_500_000);
  check_float "to_sec" 1.5 (Sim_time.to_sec 1_500_000_000)

let test_arith () =
  check_int "add" 30 (Sim_time.add 10 20);
  check_int "diff" 10 (Sim_time.diff 30 20);
  check_int "max" 30 (Sim_time.max 10 30);
  check_int "min" 10 (Sim_time.min 10 30);
  Alcotest.(check bool) "compare" true (Sim_time.compare 1 2 < 0)

let test_pp () =
  let s t = Format.asprintf "%a" Sim_time.pp t in
  Alcotest.(check string) "ns" "999ns" (s 999);
  Alcotest.(check string) "us" "1.50us" (s 1_500);
  Alcotest.(check string) "ms" "2.000ms" (s 2_000_000);
  Alcotest.(check string) "s" "3.0000s" (s 3_000_000_000)

let test_rate_conversions () =
  check_float "gbps roundtrip" 100. (Rate.to_gbps (Rate.gbps 100.));
  check_float "bps" 1e9 (Rate.to_bps (Rate.bps 1e9));
  Alcotest.(check bool) "zero" true (Rate.is_zero Rate.zero);
  Alcotest.(check bool) "nonzero" false (Rate.is_zero (Rate.gbps 1.))

let test_tx_time () =
  (* 1500 B at 100 Gbps = 120 ns. *)
  check_int "1500B@100G" 120 (Rate.tx_time (Rate.gbps 100.) ~bytes_:1500);
  (* 1500 B at 400 Gbps = 30 ns. *)
  check_int "1500B@400G" 30 (Rate.tx_time (Rate.gbps 400.) ~bytes_:1500);
  check_int "0 bytes" 0 (Rate.tx_time (Rate.gbps 100.) ~bytes_:0);
  (* Tiny packets never serialize in zero time. *)
  Alcotest.(check bool)
    "min 1ns" true
    (Rate.tx_time (Rate.gbps 400.) ~bytes_:1 >= 1)

let test_bytes_in () =
  check_int "100G for 120ns" 1500 (Rate.bytes_in (Rate.gbps 100.) 120);
  check_int "zero duration" 0 (Rate.bytes_in (Rate.gbps 100.) 0)

let test_scale_clamp () =
  check_float "scale" 50. (Rate.to_gbps (Rate.scale (Rate.gbps 100.) 0.5));
  check_float "scale floors at min_rate"
    (Rate.to_gbps Rate.min_rate)
    (Rate.to_gbps (Rate.scale (Rate.gbps 100.) 1e-9));
  check_float "clamp max" 100.
    (Rate.to_gbps (Rate.clamp (Rate.gbps 200.) ~max:(Rate.gbps 100.)));
  check_float "avg" 75. (Rate.to_gbps (Rate.avg (Rate.gbps 50.) (Rate.gbps 100.)));
  check_float "add" 150. (Rate.to_gbps (Rate.add (Rate.gbps 50.) (Rate.gbps 100.)))

let prop_tx_time_monotone =
  QCheck.Test.make ~name:"tx_time monotone in size" ~count:200
    QCheck.(pair (int_range 1 100_000) (int_range 1 100_000))
    (fun (a, b) ->
      let r = Rate.gbps 100. in
      let small = min a b and large = max a b in
      Rate.tx_time r ~bytes_:small <= Rate.tx_time r ~bytes_:large)

let prop_tx_time_rate_antitone =
  QCheck.Test.make ~name:"tx_time decreases with rate" ~count:200
    QCheck.(pair (float_range 1. 100.) (float_range 1. 100.))
    (fun (a, b) ->
      let slow = Rate.gbps (min a b) and fast = Rate.gbps (max a b) in
      Rate.tx_time fast ~bytes_:10_000 <= Rate.tx_time slow ~bytes_:10_000)

let () =
  Alcotest.run "sim_time"
    [
      ( "time",
        [
          Alcotest.test_case "units" `Quick test_units;
          Alcotest.test_case "conversions" `Quick test_conversions;
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "pretty-printing" `Quick test_pp;
        ] );
      ( "rate",
        [
          Alcotest.test_case "conversions" `Quick test_rate_conversions;
          Alcotest.test_case "tx_time" `Quick test_tx_time;
          Alcotest.test_case "bytes_in" `Quick test_bytes_in;
          Alcotest.test_case "scale/clamp" `Quick test_scale_clamp;
          QCheck_alcotest.to_alcotest prop_tx_time_monotone;
          QCheck_alcotest.to_alcotest prop_tx_time_rate_antitone;
        ] );
    ]
