(* Topology graph, leaf-spine and fat-tree generators. *)

let test_basic_graph () =
  let topo = Topology.create () in
  let a = Topology.add_node topo Topology.Host ~label:"a" in
  let b = Topology.add_node topo Topology.Tor ~label:"b" in
  let l =
    Topology.add_link topo a b ~bandwidth:(Rate.gbps 100.) ~delay:(Sim_time.us 1)
  in
  Alcotest.(check int) "nodes" 2 (Topology.node_count topo);
  Alcotest.(check int) "links" 1 (Topology.link_count topo);
  Alcotest.(check (option int)) "link_between" (Some l) (Topology.link_between topo a b);
  Alcotest.(check (option int)) "symmetric" (Some l) (Topology.link_between topo b a);
  Alcotest.(check (option int)) "absent" None (Topology.link_between topo a a);
  Alcotest.(check int) "other_end" b (Topology.other_end topo ~link_id:l a);
  Alcotest.(check int) "other_end rev" a (Topology.other_end topo ~link_id:l b);
  Alcotest.(check bool) "is_host" true (Topology.is_host topo a);
  Alcotest.(check bool) "tor not host" false (Topology.is_host topo b);
  Alcotest.(check (list (pair int int))) "neighbors" [ (b, l) ] (Topology.neighbors topo a)

let test_self_loop_rejected () =
  let topo = Topology.create () in
  let a = Topology.add_node topo Topology.Host ~label:"a" in
  Alcotest.check_raises "self loop" (Invalid_argument "Topology.add_link: self loop")
    (fun () ->
      ignore
        (Topology.add_link topo a a ~bandwidth:(Rate.gbps 1.) ~delay:1))

let test_link_updown () =
  let topo = Topology.create () in
  let a = Topology.add_node topo Topology.Host ~label:"a" in
  let b = Topology.add_node topo Topology.Tor ~label:"b" in
  let l = Topology.add_link topo a b ~bandwidth:(Rate.gbps 1.) ~delay:1 in
  Alcotest.(check bool) "up" true (Topology.link topo l).Topology.up;
  Topology.set_link_up topo ~link_id:l false;
  Alcotest.(check bool) "down" false (Topology.link topo l).Topology.up

let test_leaf_spine_shape () =
  let ls = Leaf_spine.build Leaf_spine.motivation in
  Alcotest.(check int) "hosts" 8 (Array.length ls.Leaf_spine.hosts);
  Alcotest.(check int) "leaves" 2 (Array.length ls.Leaf_spine.leaves);
  Alcotest.(check int) "spines" 4 (Array.length ls.Leaf_spine.spines);
  (* 8 host links + 2*4 fabric links. *)
  Alcotest.(check int) "links" 16 (Topology.link_count ls.Leaf_spine.topo);
  Alcotest.(check int) "n_paths" 4 (Leaf_spine.n_paths ls);
  (* Host ids are dense from 0; host h sits under leaf h/hpl. *)
  Alcotest.(check int) "tor of host 0" ls.Leaf_spine.leaves.(0)
    (Leaf_spine.tor_of_host ls 0);
  Alcotest.(check int) "tor of host 5" ls.Leaf_spine.leaves.(1)
    (Leaf_spine.tor_of_host ls 5);
  Alcotest.(check int) "host accessor" 6 (Leaf_spine.host ls ~leaf:1 ~index:2);
  Alcotest.(check int) "leaf index" 1 (Leaf_spine.leaf_index_of_host ls 6);
  Alcotest.(check bool) "is_tor" true (Leaf_spine.is_tor ls ls.Leaf_spine.leaves.(0));
  Alcotest.(check bool) "host not tor" false (Leaf_spine.is_tor ls 0)

let test_leaf_spine_paper_eval () =
  let ls = Leaf_spine.build Leaf_spine.paper_eval in
  Alcotest.(check int) "256 hosts" 256 (Array.length ls.Leaf_spine.hosts);
  Alcotest.(check int) "16 paths" 16 (Leaf_spine.n_paths ls);
  Alcotest.(check int) "links" (256 + (16 * 16))
    (Topology.link_count ls.Leaf_spine.topo)

let test_leaf_spine_invalid () =
  Alcotest.check_raises "zero leaves"
    (Invalid_argument "Leaf_spine.build: all counts must be positive")
    (fun () ->
      ignore (Leaf_spine.build { Leaf_spine.motivation with Leaf_spine.n_leaves = 0 }))

let test_fat_tree_shape () =
  let ft =
    Fat_tree.build ~k:4 ~host_bw:(Rate.gbps 100.) ~fabric_bw:(Rate.gbps 100.)
      ~link_delay:(Sim_time.us 1)
  in
  Alcotest.(check int) "hosts" 16 (Array.length ft.Fat_tree.hosts);
  Alcotest.(check int) "edges" 8 (Array.length ft.Fat_tree.edges);
  Alcotest.(check int) "aggs" 8 (Array.length ft.Fat_tree.aggs);
  Alcotest.(check int) "cores" 4 (Array.length ft.Fat_tree.cores);
  (* 16 host links + 4 pods * 4 edge-agg + 4 pods * 4 agg-core. *)
  Alcotest.(check int) "links" (16 + 16 + 16) (Topology.link_count ft.Fat_tree.topo);
  Alcotest.(check int) "inter-pod paths" 4 (Fat_tree.inter_pod_paths ft);
  Alcotest.(check int) "intra-pod paths" 2 (Fat_tree.intra_pod_paths ft);
  Alcotest.(check int) "pod of host 0" 0 (Fat_tree.pod_of_host ft 0);
  Alcotest.(check int) "pod of host 15" 3 (Fat_tree.pod_of_host ft 15);
  Alcotest.(check int) "tor of host 0" ft.Fat_tree.edges.(0) (Fat_tree.tor_of_host ft 0)

let test_fat_tree_section4_example () =
  (* The k = 32 worked example of Section 4: 512 ToR, 512 agg, 256 core,
     8192 hosts, 256 equal-cost inter-pod paths. *)
  let ft =
    Fat_tree.build ~k:32 ~host_bw:(Rate.gbps 400.) ~fabric_bw:(Rate.gbps 400.)
      ~link_delay:(Sim_time.us 1)
  in
  Alcotest.(check int) "8192 hosts" 8192 (Array.length ft.Fat_tree.hosts);
  Alcotest.(check int) "512 tors" 512 (Array.length ft.Fat_tree.edges);
  Alcotest.(check int) "512 aggs" 512 (Array.length ft.Fat_tree.aggs);
  Alcotest.(check int) "256 cores" 256 (Array.length ft.Fat_tree.cores);
  Alcotest.(check int) "256 paths" 256 (Fat_tree.inter_pod_paths ft)

let test_fat_tree_invalid () =
  Alcotest.check_raises "odd k"
    (Invalid_argument "Fat_tree.build: k must be even and positive") (fun () ->
      ignore
        (Fat_tree.build ~k:3 ~host_bw:(Rate.gbps 1.) ~fabric_bw:(Rate.gbps 1.)
           ~link_delay:1))

let test_pp_summary () =
  let ls = Leaf_spine.build Leaf_spine.motivation in
  let s = Format.asprintf "%a" Topology.pp_summary ls.Leaf_spine.topo in
  Alcotest.(check bool) "mentions hosts" true (String.length s > 10)

let () =
  Alcotest.run "topology"
    [
      ( "graph",
        [
          Alcotest.test_case "basic" `Quick test_basic_graph;
          Alcotest.test_case "self loop" `Quick test_self_loop_rejected;
          Alcotest.test_case "link up/down" `Quick test_link_updown;
          Alcotest.test_case "pp" `Quick test_pp_summary;
        ] );
      ( "leaf_spine",
        [
          Alcotest.test_case "motivation shape" `Quick test_leaf_spine_shape;
          Alcotest.test_case "paper eval shape" `Quick test_leaf_spine_paper_eval;
          Alcotest.test_case "invalid" `Quick test_leaf_spine_invalid;
        ] );
      ( "fat_tree",
        [
          Alcotest.test_case "k=4 shape" `Quick test_fat_tree_shape;
          Alcotest.test_case "section 4 example" `Quick test_fat_tree_section4_example;
          Alcotest.test_case "invalid" `Quick test_fat_tree_invalid;
        ] );
    ]
