(* The experiment harnesses behind the paper's figures, at reduced scale
   so the suite stays fast. *)

let small_motivation transport =
  {
    Experiment.default_motivation with
    Experiment.msg_bytes = 1_000_000;
    transport;
    bucket = Sim_time.us 10;
  }

let test_motivation_runs () =
  let r = Experiment.run_motivation (small_motivation `Sr) in
  Alcotest.(check int) "eight flows" 8 r.Experiment.flows;
  Alcotest.(check bool) "finite completion" true (r.Experiment.completion_us > 0.);
  Alcotest.(check bool) "rate series non-empty" true
    (List.length r.Experiment.rate_series > 2);
  Alcotest.(check bool) "retx series non-empty" true
    (List.length r.Experiment.retx_series > 2);
  Alcotest.(check bool) "rates within line" true
    (List.for_all (fun (_, g) -> g >= 0. && g <= 101.) r.Experiment.rate_series);
  Alcotest.(check bool) "ratios within [0,1]" true
    (List.for_all (fun (_, x) -> x >= 0. && x <= 1.) r.Experiment.retx_series)

let test_motivation_sr_vs_ideal () =
  (* Fig. 1d's shape: NIC-SR with spraying loses throughput; the Ideal
     transport is close to line rate and suffers no retransmissions. *)
  let sr = Experiment.run_motivation (small_motivation `Sr) in
  let ideal = Experiment.run_motivation (small_motivation `Ideal) in
  Alcotest.(check bool) "SR generates NACKs" true (sr.Experiment.nacks_generated > 0);
  Alcotest.(check bool) "SR has spurious retx" true (sr.Experiment.avg_retx_ratio > 0.02);
  Alcotest.(check (float 1e-9)) "ideal has none" 0. ideal.Experiment.avg_retx_ratio;
  Alcotest.(check int) "ideal never nacks" 0 ideal.Experiment.nacks_generated;
  Alcotest.(check bool) "ideal faster" true
    (ideal.Experiment.avg_goodput_gbps > sr.Experiment.avg_goodput_gbps +. 5.);
  Alcotest.(check bool) "ideal near line rate" true
    (ideal.Experiment.avg_goodput_gbps > 80.)

let tiny_fabric =
  {
    Leaf_spine.n_leaves = 4;
    n_spines = 4;
    hosts_per_leaf = 2;
    host_bw = Rate.gbps 400.;
    fabric_bw = Rate.gbps 400.;
    link_delay = Sim_time.us 1;
  }

let tiny_eval scheme coll =
  {
    (Experiment.default_eval ~fabric:tiny_fabric ~scheme ~coll ()) with
    Experiment.bytes_per_group = 400_000;
  }

let test_collective_allreduce_runs () =
  let r =
    Experiment.run_collective (tiny_eval (Network.Themis { compensation = true })
       Experiment.Allreduce)
  in
  Alcotest.(check int) "two groups" 2 (List.length r.Experiment.per_group_ms);
  Alcotest.(check bool) "tail >= mean" true
    (r.Experiment.tail_ct_ms >= r.Experiment.mean_ct_ms -. 1e-9);
  Alcotest.(check bool) "packets flowed" true (r.Experiment.data_packets > 0);
  Alcotest.(check bool) "themis stats present" true (r.Experiment.themis <> None);
  Alcotest.(check int) "no nacks delivered" 0 r.Experiment.nacks_delivered

let test_collective_all_types_run () =
  List.iter
    (fun coll ->
      let r = Experiment.run_collective (tiny_eval Network.Ecmp coll) in
      Alcotest.(check bool)
        (Experiment.coll_to_string coll ^ " completes")
        true
        (r.Experiment.tail_ct_ms > 0.))
    [ Experiment.Allreduce; Experiment.Hd_allreduce; Experiment.Alltoall;
      Experiment.Allgather; Experiment.Reduce_scatter ]

let test_fig5_shape_themis_beats_ar () =
  (* The paper's central result at the (900, 4) recommended setting:
     Themis completes faster than adaptive routing, which completes
     faster than nothing-works ECMP... ECMP can luckily win on tiny
     fabrics, so only the Themis < AR ordering is asserted. *)
  let run scheme = (Experiment.run_collective (tiny_eval scheme Experiment.Allreduce)).Experiment.tail_ct_ms in
  let ar = run Network.Adaptive in
  let themis = run (Network.Themis { compensation = true }) in
  Alcotest.(check bool) "themis <= ar" true (themis <= ar +. 0.001)

let test_hd_vs_ring () =
  (* Halving-doubling moves less total data than the ring (2(n-1)/n vs
     ~2 volume factors) and should not be slower under Themis. *)
  let run coll =
    (Experiment.run_collective
       (tiny_eval (Network.Themis { compensation = true }) coll))
      .Experiment.tail_ct_ms
  in
  let ring = run Experiment.Allreduce in
  let hd = run Experiment.Hd_allreduce in
  Alcotest.(check bool) "both finish" true (ring > 0. && hd > 0.)

let test_sweep_constants () =
  Alcotest.(check int) "five dcqcn points" 5 (List.length Experiment.dcqcn_sweep);
  Alcotest.(check int) "three schemes" 3 (List.length Experiment.fig5_schemes);
  Alcotest.(check bool) "starts at recommended" true
    (List.hd Experiment.dcqcn_sweep = (900., 4.))

let () =
  Alcotest.run "experiment"
    [
      ( "motivation (fig 1)",
        [
          Alcotest.test_case "runs" `Slow test_motivation_runs;
          Alcotest.test_case "sr vs ideal" `Slow test_motivation_sr_vs_ideal;
        ] );
      ( "collectives (fig 5)",
        [
          Alcotest.test_case "allreduce runs" `Slow test_collective_allreduce_runs;
          Alcotest.test_case "all collectives" `Slow test_collective_all_types_run;
          Alcotest.test_case "themis beats ar" `Slow test_fig5_shape_themis_beats_ar;
          Alcotest.test_case "hd vs ring" `Slow test_hd_vs_ring;
          Alcotest.test_case "sweep constants" `Quick test_sweep_constants;
        ] );
    ]
