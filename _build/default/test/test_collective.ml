(* Collective schedules and the barrier-stepped runner. *)

let total = Schedule.total_bytes
let steps = Schedule.steps
let transfers = Schedule.transfers

let test_chunk () =
  Alcotest.(check int) "even" 250 (Schedule.chunk ~ranks:4 ~bytes:1000);
  Alcotest.(check int) "ceil" 251 (Schedule.chunk ~ranks:4 ~bytes:1001);
  Alcotest.(check int) "min 1" 1 (Schedule.chunk ~ranks:64 ~bytes:8)

let test_ring_allreduce_shape () =
  let s = Schedule.ring_allreduce ~ranks:8 ~bytes:8000 in
  Alcotest.(check int) "2(n-1) steps" 14 (steps s);
  Alcotest.(check int) "n transfers per step" (14 * 8) (transfers s);
  (* Each step moves bytes/n per rank. *)
  Alcotest.(check int) "total volume" (14 * 8 * 1000) (total s);
  List.iter
    (List.iter (fun { Schedule.src; dst; bytes } ->
         Alcotest.(check int) "ring successor" ((src + 1) mod 8) dst;
         Alcotest.(check int) "chunk" 1000 bytes))
    s

let test_reduce_scatter_allgather () =
  let rs = Schedule.ring_reduce_scatter ~ranks:4 ~bytes:4000 in
  let ag = Schedule.ring_allgather ~ranks:4 ~bytes:4000 in
  Alcotest.(check int) "rs steps" 3 (steps rs);
  Alcotest.(check int) "ag steps" 3 (steps ag);
  Alcotest.(check int) "rs volume" (3 * 4 * 1000) (total rs);
  (* Allreduce = reduce-scatter then allgather. *)
  let ar = Schedule.ring_allreduce ~ranks:4 ~bytes:4000 in
  Alcotest.(check int) "composition" (total rs + total ag) (total ar)

let test_alltoall_shape () =
  let s = Schedule.alltoall ~ranks:4 ~bytes:4000 in
  Alcotest.(check int) "single step" 1 (steps s);
  Alcotest.(check int) "n(n-1) transfers" 12 (transfers s);
  Alcotest.(check int) "volume" (12 * 1000) (total s);
  List.iter
    (List.iter (fun { Schedule.src; dst; _ } ->
         Alcotest.(check bool) "no self-send" true (src <> dst)))
    s

let test_halving_doubling () =
  let s = Schedule.halving_doubling_allreduce ~ranks:8 ~bytes:8000 in
  Alcotest.(check int) "2 log n steps" 6 (steps s);
  (* Step volumes: halving phase 4000, 2000, 1000 per rank; doubling
     mirrors it. *)
  let per_step = List.map (fun step -> (List.hd step).Schedule.bytes) s in
  Alcotest.(check (list int)) "volumes"
    [ 4000; 2000; 1000; 1000; 2000; 4000 ]
    per_step;
  (* Every step pairs each rank with its XOR partner (an involution). *)
  List.iter
    (List.iter (fun { Schedule.src; dst; _ } ->
         Alcotest.(check bool) "pairwise" true (src <> dst)))
    s;
  List.iteri
    (fun i step ->
      let d = if i < 3 then 1 lsl i else 1 lsl (5 - i) in
      List.iter
        (fun { Schedule.src; dst; _ } ->
          Alcotest.(check int) "xor partner" (src lxor d) dst)
        step)
    s;
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Schedule.halving_doubling_allreduce: ranks must be a power of two")
    (fun () -> ignore (Schedule.halving_doubling_allreduce ~ranks:6 ~bytes:600))

let test_broadcast () =
  let s = Schedule.broadcast ~ranks:8 ~root:0 ~bytes:100 in
  Alcotest.(check int) "log n steps" 3 (steps s);
  (* 1 + 2 + 4 transfers: every non-root rank receives exactly once. *)
  Alcotest.(check int) "n-1 transfers" 7 (transfers s);
  let receivers =
    List.concat_map (List.map (fun t -> t.Schedule.dst)) s
  in
  Alcotest.(check (list int)) "each rank once"
    [ 1; 2; 3; 4; 5; 6; 7 ]
    (List.sort compare receivers);
  (* A sender must already hold the data (root or earlier receiver). *)
  let held = ref [ 0 ] in
  List.iter
    (fun step ->
      List.iter
        (fun { Schedule.src; _ } ->
          Alcotest.(check bool) "sender holds data" true (List.mem src !held))
        step;
      List.iter (fun { Schedule.dst; _ } -> held := dst :: !held) step)
    s;
  (* Non-zero root rotates the tree. *)
  let s5 = Schedule.broadcast ~ranks:4 ~root:2 ~bytes:10 in
  match List.concat s5 with
  | first :: _ -> Alcotest.(check int) "root sends first" 2 first.Schedule.src
  | [] -> Alcotest.fail "empty broadcast"

let test_ring_once () =
  let s = Schedule.ring_once ~ranks:8 ~bytes:100 in
  Alcotest.(check int) "one step" 1 (steps s);
  Alcotest.(check int) "full bytes per rank" (8 * 100) (total s)

let test_invalid () =
  Alcotest.check_raises "one rank" (Invalid_argument "Schedule: need at least 2 ranks")
    (fun () -> ignore (Schedule.ring_allreduce ~ranks:1 ~bytes:100));
  Alcotest.check_raises "zero bytes"
    (Invalid_argument "Schedule: bytes must be positive") (fun () ->
      ignore (Schedule.alltoall ~ranks:4 ~bytes:0))

let test_pp () =
  let s = Schedule.alltoall ~ranks:4 ~bytes:4000 in
  let str = Format.asprintf "%a" Schedule.pp_summary s in
  Alcotest.(check bool) "renders" true (String.length str > 5)

(* Runner semantics over a synthetic transport driven by an engine. *)

let test_runner_barrier () =
  let engine = Engine.create () in
  let launched = ref [] in
  (* Transfers complete after a delay proportional to (1 + dst); the
     barrier means step 2 launches only after the slowest of step 1. *)
  let post ~src ~dst ~bytes:_ ~on_complete =
    launched := (Engine.now engine, src, dst) :: !launched;
    ignore
      (Engine.schedule engine
         ~delay:(Sim_time.us (1 + dst))
         (fun () -> on_complete (Engine.now engine)))
  in
  let schedule = Schedule.ring_allreduce ~ranks:3 ~bytes:300 in
  let completion = ref None in
  let r =
    Runner.start ~schedule ~post ~on_complete:(fun t -> completion := Some t)
  in
  Alcotest.(check int) "first step launched immediately" 3
    (List.length !launched);
  Alcotest.(check int) "step index 0" 0 (Runner.current_step r);
  Engine.run engine;
  Alcotest.(check bool) "finished" true (Runner.finished r);
  Alcotest.(check int) "all steps ran" (3 * 4) (List.length !launched);
  (* Slowest transfer per step takes 3 us (dst = 2): four steps. *)
  Alcotest.(check (option int)) "completion time" (Some (Sim_time.us 12))
    !completion;
  Alcotest.(check (option int)) "recorded" (Some (Sim_time.us 12))
    (Runner.completion_time r);
  Alcotest.(check int) "final step index" 4 (Runner.current_step r);
  (* Steps never overlap: every step-k launch happens after every step
     k-1 completion. *)
  let by_time = List.sort compare (List.rev_map (fun (t, _, _) -> t) !launched) in
  let rec batches = function
    | a :: b :: rest ->
        Alcotest.(check bool) "monotone" true (a <= b);
        batches (b :: rest)
    | _ -> ()
  in
  batches by_time

let test_runner_immediate_completion () =
  (* A post that completes synchronously must still walk every step. *)
  let count = ref 0 in
  let post ~src:_ ~dst:_ ~bytes:_ ~on_complete =
    incr count;
    on_complete 0
  in
  let schedule = Schedule.ring_allreduce ~ranks:4 ~bytes:400 in
  let completion = ref None in
  let r = Runner.start ~schedule ~post ~on_complete:(fun t -> completion := Some t) in
  Alcotest.(check bool) "finished" true (Runner.finished r);
  Alcotest.(check int) "all transfers posted" (6 * 4) !count;
  Alcotest.(check (option int)) "completed at 0" (Some 0) !completion

let test_runner_rejects_empty () =
  let post ~src:_ ~dst:_ ~bytes:_ ~on_complete:_ = () in
  Alcotest.check_raises "empty" (Invalid_argument "Runner.start: empty schedule")
    (fun () -> ignore (Runner.start ~schedule:[] ~post ~on_complete:ignore));
  Alcotest.check_raises "empty step" (Invalid_argument "Runner.start: empty step")
    (fun () -> ignore (Runner.start ~schedule:[ [] ] ~post ~on_complete:ignore))

let () =
  Alcotest.run "collective"
    [
      ( "schedules",
        [
          Alcotest.test_case "chunk" `Quick test_chunk;
          Alcotest.test_case "allreduce" `Quick test_ring_allreduce_shape;
          Alcotest.test_case "rs/ag" `Quick test_reduce_scatter_allgather;
          Alcotest.test_case "alltoall" `Quick test_alltoall_shape;
          Alcotest.test_case "halving-doubling" `Quick test_halving_doubling;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
          Alcotest.test_case "ring once" `Quick test_ring_once;
          Alcotest.test_case "invalid" `Quick test_invalid;
          Alcotest.test_case "pp" `Quick test_pp;
        ] );
      ( "runner",
        [
          Alcotest.test_case "barrier" `Quick test_runner_barrier;
          Alcotest.test_case "immediate" `Quick test_runner_immediate_completion;
          Alcotest.test_case "rejects empty" `Quick test_runner_rejects_empty;
        ] );
    ]
