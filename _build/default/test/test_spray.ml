(* Eq. 1-3: PSN-based spraying and NACK validity. *)

let test_eq1_examples () =
  (* Fig. 3: PSN 6 over 4 paths with base 0 goes to path 2. *)
  Alcotest.(check int) "fig3" 2
    (Spray.path_for_psn ~psn:(Psn.of_int 6) ~base:0 ~paths:4);
  (* Base shifts rotate the assignment. *)
  Alcotest.(check int) "base shift" 0
    (Spray.path_for_psn ~psn:(Psn.of_int 6) ~base:2 ~paths:4);
  Alcotest.(check int) "single path" 0
    (Spray.path_for_psn ~psn:(Psn.of_int 12345) ~base:7 ~paths:1)

let test_eq1_uniform () =
  (* Any window of N consecutive PSNs covers all N paths exactly once. *)
  let n = 8 in
  for start = 0 to 20 do
    let seen = Array.make n 0 in
    for psn = start to start + n - 1 do
      let p = Spray.path_for_psn ~psn:(Psn.of_int psn) ~base:3 ~paths:n in
      seen.(p) <- seen.(p) + 1
    done;
    Array.iter (fun c -> Alcotest.(check int) "exactly once" 1 c) seen
  done

let test_eq3_examples () =
  (* Section 3.1's examples with 2 paths and ePSN = 0: PSN 2 shares the
     path (valid NACK); PSN 1 does not (invalid NACK). *)
  Alcotest.(check bool) "psn2 valid" true
    (Spray.nack_is_valid ~tpsn:(Psn.of_int 2) ~epsn:Psn.zero ~paths:2);
  Alcotest.(check bool) "psn1 invalid" false
    (Spray.nack_is_valid ~tpsn:(Psn.of_int 1) ~epsn:Psn.zero ~paths:2);
  (* Fig. 4b: 3 mod 2 <> 2 mod 2 (block); 6 mod 2 = 4 mod 2 (forward). *)
  Alcotest.(check bool) "fig4b block" false
    (Spray.nack_is_valid ~tpsn:(Psn.of_int 3) ~epsn:(Psn.of_int 2) ~paths:2);
  Alcotest.(check bool) "fig4b forward" true
    (Spray.nack_is_valid ~tpsn:(Psn.of_int 6) ~epsn:(Psn.of_int 4) ~paths:2)

let prop_eq3_equiv_path_equality =
  (* Eq. 3 holds iff Eq. 1 assigns both PSNs the same path, whatever the
     base. *)
  QCheck.Test.make ~name:"Eq.3 <=> same Eq.1 path" ~count:1000
    QCheck.(
      quad (int_range 0 1_000_000) (int_range 0 1_000_000) (int_range 1 64)
        (int_range 0 1000))
    (fun (a, b, paths, base) ->
      let pa = Psn.of_int a and pb = Psn.of_int b in
      Spray.same_path ~a:pa ~b:pb ~paths
      = (Spray.path_for_psn ~psn:pa ~base ~paths
         = Spray.path_for_psn ~psn:pb ~base ~paths))

let prop_eq1_range =
  QCheck.Test.make ~name:"Eq.1 lands in [0,N)" ~count:1000
    QCheck.(triple (int_range 0 10_000_000) (int_range 1 256) (int_range 0 10_000))
    (fun (psn, paths, base) ->
      let p = Spray.path_for_psn ~psn:(Psn.of_int psn) ~base ~paths in
      p >= 0 && p < paths)

let test_base_for_flow_stable () =
  let conn = Flow_id.make ~src:10 ~dst:20 ~qpn:3 in
  let b1 = Spray.base_for_flow conn ~sport:555 ~paths:16 in
  let b2 = Spray.base_for_flow conn ~sport:555 ~paths:16 in
  Alcotest.(check int) "stable" b1 b2;
  Alcotest.(check bool) "in range" true (b1 >= 0 && b1 < 16)

let test_invalid_paths () =
  Alcotest.check_raises "zero paths"
    (Invalid_argument "Spray.path_for_psn: paths must be positive") (fun () ->
      ignore (Spray.path_for_psn ~psn:Psn.zero ~base:0 ~paths:0))

let () =
  Alcotest.run "spray"
    [
      ( "eq1",
        [
          Alcotest.test_case "examples" `Quick test_eq1_examples;
          Alcotest.test_case "uniform cover" `Quick test_eq1_uniform;
          Alcotest.test_case "invalid" `Quick test_invalid_paths;
          QCheck_alcotest.to_alcotest prop_eq1_range;
        ] );
      ( "eq3",
        [
          Alcotest.test_case "paper examples" `Quick test_eq3_examples;
          Alcotest.test_case "base stable" `Quick test_base_for_flow_stable;
          QCheck_alcotest.to_alcotest prop_eq3_equiv_path_equality;
        ] );
    ]
