(* The requester: segmentation, pacing, SR/GBN retransmission, RTO. *)

let conn = Flow_id.make ~src:1 ~dst:2 ~qpn:4

let config ?(mode = Sender.Sr_retx) ?(window = 64) ?(rto = Sim_time.ms 1) () =
  {
    Sender.mtu = 1000;
    mode;
    window;
    rto;
    cc = { Dcqcn.default with Dcqcn.nack_slow_start = false };
  }

let make ?mode ?window ?rto () =
  let engine = Engine.create () in
  let sent = ref [] in
  let s =
    Sender.create ~engine ~conn ~sport:7 ~config:(config ?mode ?window ?rto ())
      ~line_rate:(Rate.gbps 100.)
      ~transmit:(fun pkt -> sent := pkt :: !sent)
  in
  (engine, s, sent)

let psns sent =
  List.rev_map
    (fun p ->
      match p.Packet.kind with
      | Packet.Data { psn; _ } -> Psn.to_int psn
      | _ -> -1)
    !sent

let test_segmentation () =
  let engine, s, sent = make () in
  let completed = ref None in
  Sender.post s ~bytes:2500 ~on_complete:(fun t -> completed := Some t);
  Engine.run engine ~until:(Sim_time.us 50);
  (* 2500 B at MTU 1000 -> packets of 1000, 1000, 500. *)
  let payloads =
    List.rev_map
      (fun p ->
        match p.Packet.kind with
        | Packet.Data { payload; last_of_msg; _ } -> (payload, last_of_msg)
        | _ -> (-1, false))
      !sent
  in
  Alcotest.(check (list (pair int bool)))
    "segments"
    [ (1000, false); (1000, false); (500, true) ]
    payloads;
  Alcotest.(check int) "sent count" 3 (Sender.data_packets_sent s);
  Alcotest.(check bool) "not complete without acks" true (!completed = None);
  Alcotest.(check int) "outstanding" 3 (Sender.outstanding s)

let test_completion_on_cumulative_ack () =
  let engine, s, _ = make () in
  let completed = ref None in
  Sender.post s ~bytes:2500 ~on_complete:(fun t -> completed := Some t);
  Engine.run engine ~until:(Sim_time.us 10);
  Sender.on_ack s (Psn.of_int 2);
  Alcotest.(check bool) "partial ack" true (!completed = None);
  Sender.on_ack s (Psn.of_int 3);
  Alcotest.(check bool) "complete" true (!completed <> None);
  Alcotest.(check bool) "idle" true (Sender.idle s);
  Alcotest.(check int) "bytes completed" 2500 (Sender.bytes_completed s)

let test_pacing_spacing () =
  let engine = Engine.create () in
  let times = ref [] in
  let s =
    Sender.create ~engine ~conn ~sport:7 ~config:(config ())
      ~line_rate:(Rate.gbps 100.)
      ~transmit:(fun _ -> times := Engine.now engine :: !times)
  in
  Sender.post s ~bytes:3000 ~on_complete:(fun _ -> ());
  Engine.run engine ~until:(Sim_time.us 50);
  (* At 100 Gbps (and line-rate DCQCN) a 1062 B frame paces one
     serialization time apart. *)
  let gap = Rate.tx_time (Rate.gbps 100.) ~bytes_:(1000 + Headers.data_overhead) in
  match List.rev !times with
  | [ t0; t1; t2 ] ->
      Alcotest.(check int) "first immediate" 0 t0;
      Alcotest.(check int) "second one gap" gap t1;
      Alcotest.(check int) "third two gaps" (2 * gap) t2
  | l -> Alcotest.failf "expected 3 sends, got %d" (List.length l)

let test_window_cap () =
  let engine, s, sent = make ~window:4 () in
  Sender.post s ~bytes:20_000 ~on_complete:(fun _ -> ());
  Engine.run engine ~until:(Sim_time.ms 100);
  (* Without acks, only [window] packets may be in flight (plus RTO
     retransmissions of the oldest). *)
  let fresh = List.filter (fun p -> not p.Packet.retransmission) !sent in
  Alcotest.(check int) "window limits fresh sends" 4 (List.length fresh);
  Alcotest.(check int) "outstanding capped" 4 (Sender.outstanding s)

let test_sr_nack_retransmits_exactly_epsn () =
  let engine, s, sent = make () in
  Sender.post s ~bytes:5000 ~on_complete:(fun _ -> ());
  Engine.run engine ~until:(Sim_time.us 50);
  sent := [];
  (* NACK for ePSN 2: the receiver holds everything below 2. *)
  Sender.on_nack s (Psn.of_int 2);
  Engine.run engine ~until:(Sim_time.us 100);
  Alcotest.(check (list int)) "only psn 2 retransmitted" [ 2 ] (psns sent);
  Alcotest.(check bool) "marked retx" true
    (List.for_all (fun p -> p.Packet.retransmission) !sent);
  Alcotest.(check int) "retx counter" 1 (Sender.retx_packets_sent s);
  Alcotest.(check int) "nack counter" 1 (Sender.nacks_received s);
  (* A duplicate NACK for the same ePSN while pending does not duplicate
     the retransmission... but after it was sent, a fresh NACK may. *)
  sent := [];
  Sender.on_nack s (Psn.of_int 2);
  Engine.run engine ~until:(Sim_time.us 150);
  Alcotest.(check (list int)) "re-nack after send retransmits again" [ 2 ] (psns sent)

let test_nack_advances_una () =
  let engine, s, _ = make () in
  let completed = ref false in
  Sender.post s ~bytes:3000 ~on_complete:(fun _ -> completed := true);
  Engine.run engine ~until:(Sim_time.us 50);
  (* NACK(2) acknowledges 0 and 1 cumulatively. *)
  Sender.on_nack s (Psn.of_int 2);
  Alcotest.(check int) "outstanding shrinks" 1 (Sender.outstanding s);
  Engine.run engine ~until:(Sim_time.us 100);
  (* Retransmitted 2 arrives; full ACK completes the message. *)
  Sender.on_ack s (Psn.of_int 3);
  Alcotest.(check bool) "completes" true !completed

let test_gbn_nack_rewinds () =
  let engine, s, sent = make ~mode:Sender.Gbn_retx () in
  Sender.post s ~bytes:5000 ~on_complete:(fun _ -> ());
  Engine.run engine ~until:(Sim_time.us 50);
  sent := [];
  Sender.on_nack s (Psn.of_int 2);
  Engine.run engine ~until:(Sim_time.us 100);
  (* Go-back-N: everything from 2 is resent. *)
  Alcotest.(check (list int)) "rewound" [ 2; 3; 4 ] (psns sent)

let test_rto_retransmits () =
  let engine, s, sent = make ~rto:(Sim_time.us 100) () in
  Sender.post s ~bytes:2000 ~on_complete:(fun _ -> ());
  Engine.run engine ~until:(Sim_time.us 50);
  sent := [];
  (* No acks: the timer fires and resends the oldest unacked packet. *)
  Engine.run engine ~until:(Sim_time.us 350);
  Alcotest.(check bool) "psn 0 retransmitted" true (List.mem 0 (psns sent));
  Alcotest.(check bool) "timeouts counted" true (Sender.timeouts s >= 1)

let test_rto_cancelled_when_idle () =
  let engine, s, _ = make ~rto:(Sim_time.us 100) () in
  Sender.post s ~bytes:1000 ~on_complete:(fun _ -> ());
  Engine.run engine ~until:(Sim_time.us 10);
  Sender.on_ack s (Psn.of_int 1);
  Engine.run engine;
  Alcotest.(check int) "no timeout" 0 (Sender.timeouts s)

let test_multiple_messages_fifo () =
  let engine, s, _ = make () in
  let order = ref [] in
  Sender.post s ~bytes:1500 ~on_complete:(fun _ -> order := 1 :: !order);
  Sender.post s ~bytes:1000 ~on_complete:(fun _ -> order := 2 :: !order);
  Engine.run engine ~until:(Sim_time.us 50);
  (* 1500 -> psns 0,1; 1000 -> psn 2. *)
  Sender.on_ack s (Psn.of_int 3);
  Alcotest.(check (list int)) "completion order" [ 2; 1 ] !order;
  Alcotest.(check int) "bytes" 2500 (Sender.bytes_completed s)

let test_stale_nack_ignored () =
  let engine, s, sent = make () in
  Sender.post s ~bytes:3000 ~on_complete:(fun _ -> ());
  Engine.run engine ~until:(Sim_time.us 50);
  Sender.on_ack s (Psn.of_int 3);
  sent := [];
  (* A NACK below una must not cause retransmission. *)
  Sender.on_nack s (Psn.of_int 1);
  Engine.run engine;
  Alcotest.(check (list int)) "nothing sent" [] (psns sent)

let test_cnp_counted () =
  let _, s, _ = make () in
  Sender.on_cnp s;
  Sender.on_cnp s;
  Alcotest.(check int) "cnps" 2 (Sender.cnps_received s)

let test_invalid_post () =
  let _, s, _ = make () in
  Alcotest.check_raises "zero bytes"
    (Invalid_argument "Sender.post: bytes must be positive") (fun () ->
      Sender.post s ~bytes:0 ~on_complete:(fun _ -> ()))

let () =
  Alcotest.run "sender"
    [
      ( "sending",
        [
          Alcotest.test_case "segmentation" `Quick test_segmentation;
          Alcotest.test_case "completion" `Quick test_completion_on_cumulative_ack;
          Alcotest.test_case "pacing" `Quick test_pacing_spacing;
          Alcotest.test_case "window" `Quick test_window_cap;
          Alcotest.test_case "multi message" `Quick test_multiple_messages_fifo;
          Alcotest.test_case "invalid post" `Quick test_invalid_post;
        ] );
      ( "retransmission",
        [
          Alcotest.test_case "sr nack" `Quick test_sr_nack_retransmits_exactly_epsn;
          Alcotest.test_case "nack advances una" `Quick test_nack_advances_una;
          Alcotest.test_case "gbn rewind" `Quick test_gbn_nack_rewinds;
          Alcotest.test_case "rto" `Quick test_rto_retransmits;
          Alcotest.test_case "rto cancelled" `Quick test_rto_cancelled_when_idle;
          Alcotest.test_case "stale nack" `Quick test_stale_nack_ignored;
          Alcotest.test_case "cnp" `Quick test_cnp_counted;
        ] );
    ]
