(* The ablation harnesses: each mechanism's removal must show up the way
   the design document claims. *)

let test_compensation_matters () =
  match Ablation.compensation ~drops:4 () with
  | [ on; off ] ->
      Alcotest.(check bool) "labels" true
        (on.Ablation.comp_enabled && not off.Ablation.comp_enabled);
      (* With compensation the blocked-then-lost packets are recovered by
         generated NACKs, far faster than the RTO path. *)
      Alcotest.(check bool) "compensation nacks generated" true
        (on.Ablation.compensations > 0);
      Alcotest.(check int) "no timeouts with compensation" 0 on.Ablation.timeouts;
      Alcotest.(check bool) "timeouts without" true (off.Ablation.timeouts > 0);
      Alcotest.(check bool) "faster with compensation" true
        (on.Ablation.completion_us < off.Ablation.completion_us)
  | _ -> Alcotest.fail "expected two rows"

let test_queue_factor_sizing () =
  let rows = Ablation.queue_factor ~factors:[ 0.25; 1.5 ] () in
  match rows with
  | [ tiny; sized ] ->
      Alcotest.(check (float 1e-9)) "factors" 0.25 tiny.Ablation.factor;
      (* A properly sized ring blocks far more invalid NACKs and yields
         fewer spurious retransmissions than a truncated one. *)
      Alcotest.(check bool) "sized blocks more" true
        (sized.Ablation.blocked > tiny.Ablation.blocked);
      Alcotest.(check bool) "sized retx not worse" true
        (sized.Ablation.retx <= tiny.Ablation.retx);
      Alcotest.(check bool) "sized not slower" true
        (sized.Ablation.qf_completion_us <= tiny.Ablation.qf_completion_us +. 1.)
  | _ -> Alcotest.fail "expected two rows"

let test_transport_generations () =
  match Ablation.transports () with
  | [ gbn; sr; themis; ideal ] ->
      (* The Section 2.2 story: GBN collapses, NIC-SR loses double-digit
         percent, Themis recovers to the ideal's neighbourhood. *)
      Alcotest.(check bool) "gbn worst" true
        (gbn.Ablation.goodput_gbps < sr.Ablation.goodput_gbps);
      Alcotest.(check bool) "sr below themis" true
        (sr.Ablation.goodput_gbps < themis.Ablation.goodput_gbps);
      Alcotest.(check bool) "themis near ideal" true
        (themis.Ablation.goodput_gbps > ideal.Ablation.goodput_gbps *. 0.9);
      Alcotest.(check (float 1e-9)) "themis clean" 0. themis.Ablation.retx_ratio;
      Alcotest.(check int) "themis zero nacks" 0 themis.Ablation.nacks_to_sender;
      Alcotest.(check bool) "gbn floods retx" true (gbn.Ablation.retx_ratio > 0.2)
  | _ -> Alcotest.fail "expected four rows"

let test_filtering_value () =
  match Ablation.filtering () with
  | [ bare; filtered ] ->
      Alcotest.(check bool) "filtering improves goodput" true
        (filtered.Ablation.goodput_gbps > bare.Ablation.goodput_gbps);
      Alcotest.(check int) "filtered sends nothing" 0
        filtered.Ablation.nacks_to_sender;
      Alcotest.(check bool) "bare leaks nacks" true
        (bare.Ablation.nacks_to_sender > 0)
  | _ -> Alcotest.fail "expected two rows"

let test_memory_model_validated () =
  let m = Ablation.memory_footprint () in
  Alcotest.(check int) "32 cross-rack QPs" 32 m.Ablation.qps;
  (* The simulator allocates exactly what Eq. 4's flow-table term
     predicts. *)
  Alcotest.(check int) "measured = model" m.Ablation.model_bytes
    m.Ablation.tor_flow_tables_bytes

let test_jittered_queue_factor () =
  (* With 5 us of last-hop RTT jitter, an F sized for the jitter-free
     BDP is no longer enough: triggers age out of the ring and some
     NACKs are misjudged, while a generous F keeps blocking cleanly. *)
  match Ablation.queue_factor ~factors:[ 0.5; 8.0 ] ~jitter:(Sim_time.us 5) () with
  | [ small; large ] ->
      Alcotest.(check bool) "large F blocks at least as much" true
        (large.Ablation.blocked >= small.Ablation.blocked);
      Alcotest.(check bool) "large F no more retx" true
        (large.Ablation.retx <= small.Ablation.retx)
  | _ -> Alcotest.fail "expected two rows"

let () =
  Alcotest.run "ablation"
    [
      ( "ablations",
        [
          Alcotest.test_case "compensation" `Slow test_compensation_matters;
          Alcotest.test_case "queue factor" `Slow test_queue_factor_sizing;
          Alcotest.test_case "transports" `Slow test_transport_generations;
          Alcotest.test_case "filtering" `Slow test_filtering_value;
          Alcotest.test_case "memory model validated" `Slow test_memory_model_validated;
          Alcotest.test_case "jittered queue factor" `Slow test_jittered_queue_factor;
        ] );
    ]
