(* Two RNICs wired back-to-back (no switch): end-to-end transport. *)

let wire ?(bw = 100.) ?(delay = Sim_time.us 1) () =
  let engine = Engine.create () in
  let line_rate = Rate.gbps bw in
  let config = Rnic.default_config ~line_rate in
  let nic_a = Rnic.create ~engine ~node:0 ~config in
  let nic_b = Rnic.create ~engine ~node:1 ~config in
  let port_ab = Port.create ~engine ~bandwidth:line_rate ~delay ~label:"a->b" in
  let port_ba = Port.create ~engine ~bandwidth:line_rate ~delay ~label:"b->a" in
  Port.set_deliver port_ab (Rnic.receive nic_b);
  Port.set_deliver port_ba (Rnic.receive nic_a);
  Rnic.set_port nic_a port_ab;
  Rnic.set_port nic_b port_ba;
  (engine, nic_a, nic_b, port_ab, port_ba)

let test_message_delivery () =
  let engine, a, b, _, _ = wire () in
  let qp = Rnic.connect a ~dst:b () in
  let done_at = ref None in
  Rnic.post_send qp ~bytes:100_000 ~on_complete:(fun t -> done_at := Some t);
  Engine.run engine ~until:(Sim_time.ms 100);
  (match !done_at with
  | None -> Alcotest.fail "message did not complete"
  | Some t ->
      (* 100 kB at 100 Gbps ~ 8.5 us serialization + RTT. *)
      Alcotest.(check bool) "plausible time" true
        (t > Sim_time.us 8 && t < Sim_time.us 40));
  Alcotest.(check int) "delivered" 100_000 (Rnic.delivered_bytes b);
  Alcotest.(check int) "no retx on clean path" 0 (Rnic.retx_packets_sent a);
  Alcotest.(check int) "no nacks" 0 (Rnic.nacks_sent b)

let test_loss_recovery_sr () =
  let engine, a, b, port_ab, _ = wire () in
  let qp = Rnic.connect a ~dst:b () in
  (* Drop the 3rd data packet once: NIC-SR NACKs and the sender
     selectively repeats it. *)
  let countdown = ref 3 in
  let original_deliver = Rnic.receive b in
  Port.set_deliver port_ab (fun pkt ->
      if Packet.is_data pkt then begin
        decr countdown;
        if !countdown = 0 then () else original_deliver pkt
      end
      else original_deliver pkt);
  let done_at = ref None in
  Rnic.post_send qp ~bytes:20_000 ~on_complete:(fun t -> done_at := Some t);
  Engine.run engine ~until:(Sim_time.ms 100);
  Alcotest.(check bool) "completes despite loss" true (!done_at <> None);
  Alcotest.(check int) "all bytes delivered" 20_000 (Rnic.delivered_bytes b);
  Alcotest.(check int) "one retransmission" 1 (Rnic.retx_packets_sent a);
  Alcotest.(check int) "one nack" 1 (Rnic.nacks_sent b);
  Alcotest.(check int) "nack reached sender" 1 (Rnic.nacks_received a)

let test_loss_recovery_by_timeout_ideal () =
  (* The Ideal receiver never NACKs; a dropped packet is recovered by the
     sender's RTO. *)
  let engine = Engine.create () in
  let line_rate = Rate.gbps 100. in
  let cfg = { (Rnic.default_config ~line_rate) with Rnic.transport = `Ideal; rto = Sim_time.us 200 } in
  let a = Rnic.create ~engine ~node:0 ~config:cfg in
  let b = Rnic.create ~engine ~node:1 ~config:cfg in
  let port_ab = Port.create ~engine ~bandwidth:line_rate ~delay:(Sim_time.us 1) ~label:"a" in
  let port_ba = Port.create ~engine ~bandwidth:line_rate ~delay:(Sim_time.us 1) ~label:"b" in
  Port.set_deliver port_ab (Rnic.receive b);
  Port.set_deliver port_ba (Rnic.receive a);
  Rnic.set_port a port_ab;
  Rnic.set_port b port_ba;
  let qp = Rnic.connect a ~dst:b () in
  Port.inject_drops port_ab 1;
  let done_at = ref None in
  Rnic.post_send qp ~bytes:5_000 ~on_complete:(fun t -> done_at := Some t);
  Engine.run engine ~until:(Sim_time.ms 50);
  Alcotest.(check bool) "completes via timeout" true (!done_at <> None);
  Alcotest.(check int) "no nacks ever" 0 (Rnic.nacks_sent b);
  Alcotest.(check bool) "timeout retransmitted" true (Rnic.retx_packets_sent a >= 1)

let test_gbn_transport () =
  let engine = Engine.create () in
  let line_rate = Rate.gbps 100. in
  let cfg = { (Rnic.default_config ~line_rate) with Rnic.transport = `Gbn } in
  let a = Rnic.create ~engine ~node:0 ~config:cfg in
  let b = Rnic.create ~engine ~node:1 ~config:cfg in
  let port_ab = Port.create ~engine ~bandwidth:line_rate ~delay:(Sim_time.us 1) ~label:"a" in
  let port_ba = Port.create ~engine ~bandwidth:line_rate ~delay:(Sim_time.us 1) ~label:"b" in
  Port.set_deliver port_ab (Rnic.receive b);
  Port.set_deliver port_ba (Rnic.receive a);
  Rnic.set_port a port_ab;
  Rnic.set_port b port_ba;
  let qp = Rnic.connect a ~dst:b () in
  Port.inject_drops port_ab 1;
  let done_at = ref None in
  Rnic.post_send qp ~bytes:20_000 ~on_complete:(fun t -> done_at := Some t);
  Engine.run engine ~until:(Sim_time.ms 50);
  Alcotest.(check bool) "completes" true (!done_at <> None);
  Alcotest.(check int) "delivered" 20_000 (Rnic.delivered_bytes b);
  (* GBN resends the whole window after the gap: more than one retx. *)
  Alcotest.(check bool) "go-back-n retransmits several" true
    (Rnic.retx_packets_sent a > 1)

let test_cnp_on_ecn_mark () =
  let engine, a, b, port_ab, _ = wire () in
  let qp = Rnic.connect a ~dst:b () in
  (* Mark every data packet CE on the wire. *)
  let deliver = Rnic.receive b in
  Port.set_deliver port_ab (fun pkt ->
      if Packet.is_data pkt then pkt.Packet.ecn <- Headers.Ce;
      deliver pkt);
  Rnic.post_send qp ~bytes:100_000 ~on_complete:(fun _ -> ());
  Engine.run engine ~until:(Sim_time.ms 100);
  Alcotest.(check bool) "cnps generated" true (Rnic.cnps_sent b > 0);
  (* CNP pacing bounds the count: at most one per interval per QP. *)
  Alcotest.(check bool) "cnps paced" true (Rnic.cnps_sent b < 30);
  (* The sender's congestion control saw the CNPs. *)
  Alcotest.(check bool) "sender reacted" true
    (Sender.cnps_received (Rnic.qp_sender qp) > 0
    && Dcqcn.decreases (Sender.cc (Rnic.qp_sender qp)) > 0)

let test_duplicate_connect_rejected () =
  let _, a, b, _, _ = wire () in
  ignore (Rnic.connect a ~dst:b ~qpn:5 ());
  Alcotest.check_raises "dup" (Invalid_argument "Rnic.connect: QP already exists")
    (fun () -> ignore (Rnic.connect a ~dst:b ~qpn:5 ()))

let test_bidirectional_qps () =
  let engine, a, b, _, _ = wire () in
  let qab = Rnic.connect a ~dst:b () in
  let qba = Rnic.connect b ~dst:a () in
  let done_ = ref 0 in
  Rnic.post_send qab ~bytes:50_000 ~on_complete:(fun _ -> incr done_);
  Rnic.post_send qba ~bytes:50_000 ~on_complete:(fun _ -> incr done_);
  Engine.run engine ~until:(Sim_time.ms 100);
  Alcotest.(check int) "both complete" 2 !done_;
  Alcotest.(check int) "a delivered" 50_000 (Rnic.delivered_bytes a);
  Alcotest.(check int) "b delivered" 50_000 (Rnic.delivered_bytes b)

let test_on_data_tx_hook () =
  let engine, a, b, _, _ = wire () in
  let qp = Rnic.connect a ~dst:b () in
  let count = ref 0 in
  Rnic.set_on_data_tx a (fun pkt -> if Packet.is_data pkt then incr count);
  Rnic.post_send qp ~bytes:4_500 ~on_complete:(fun _ -> ());
  Engine.run engine ~until:(Sim_time.ms 10);
  Alcotest.(check int) "hook saw all data" 3 !count

let test_qp_accessors () =
  let _, a, b, _, _ = wire () in
  let qp = Rnic.connect a ~dst:b ~qpn:77 () in
  let conn = Rnic.qp_conn qp in
  Alcotest.(check int) "src" 0 conn.Flow_id.src;
  Alcotest.(check int) "dst" 1 conn.Flow_id.dst;
  Alcotest.(check int) "qpn" 77 conn.Flow_id.qpn;
  Alcotest.(check (float 1e-6)) "initial rate" 100.
    (Rate.to_gbps (Rnic.qp_rate qp));
  Alcotest.(check int) "one sender" 1 (List.length (Rnic.senders a))

let () =
  Alcotest.run "rnic"
    [
      ( "transport",
        [
          Alcotest.test_case "delivery" `Quick test_message_delivery;
          Alcotest.test_case "sr loss recovery" `Quick test_loss_recovery_sr;
          Alcotest.test_case "ideal timeout recovery" `Quick test_loss_recovery_by_timeout_ideal;
          Alcotest.test_case "gbn" `Quick test_gbn_transport;
          Alcotest.test_case "bidirectional" `Quick test_bidirectional_qps;
        ] );
      ( "signals",
        [
          Alcotest.test_case "cnp on ecn" `Quick test_cnp_on_ecn_mark;
          Alcotest.test_case "tx hook" `Quick test_on_data_tx_hook;
        ] );
      ( "api",
        [
          Alcotest.test_case "dup connect" `Quick test_duplicate_connect_rejected;
          Alcotest.test_case "accessors" `Quick test_qp_accessors;
        ] );
    ]
