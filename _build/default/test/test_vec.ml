(* Growable arrays. *)

let test_push_get () =
  let v = Vec.create () in
  Alcotest.(check int) "empty" 0 (Vec.length v);
  let i0 = Vec.push v "a" in
  let i1 = Vec.push v "b" in
  Alcotest.(check int) "idx0" 0 i0;
  Alcotest.(check int) "idx1" 1 i1;
  Alcotest.(check string) "get" "b" (Vec.get v 1)

let test_set () =
  let v = Vec.create () in
  ignore (Vec.push v 1);
  Vec.set v 0 9;
  Alcotest.(check int) "set" 9 (Vec.get v 0)

let test_bounds () =
  let v = Vec.create () in
  ignore (Vec.push v 1);
  Alcotest.check_raises "oob get" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 1));
  Alcotest.check_raises "negative" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v (-1)))

let test_growth_and_iter () =
  let v = Vec.create () in
  for i = 0 to 999 do
    ignore (Vec.push v i)
  done;
  Alcotest.(check int) "length" 1000 (Vec.length v);
  let sum = Vec.fold_left ( + ) 0 v in
  Alcotest.(check int) "fold" (999 * 1000 / 2) sum;
  let count = ref 0 in
  Vec.iter (fun _ -> incr count) v;
  Alcotest.(check int) "iter" 1000 !count;
  Vec.iteri (fun i x -> Alcotest.(check int) "iteri" i x) v;
  Alcotest.(check int) "to_array" 1000 (Array.length (Vec.to_array v));
  Alcotest.(check int) "to_list" 1000 (List.length (Vec.to_list v))

let () =
  Alcotest.run "vec"
    [
      ( "vec",
        [
          Alcotest.test_case "push/get" `Quick test_push_get;
          Alcotest.test_case "set" `Quick test_set;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "growth/iter" `Quick test_growth_and_iter;
        ] );
    ]
