(* Egress port: serialization, propagation, priority, pause, failure. *)

let conn = Flow_id.make ~src:1 ~dst:2 ~qpn:1

let data ?(payload = 1500) psn =
  Packet.data ~conn ~sport:9 ~psn:(Psn.of_int psn) ~payload ~last_of_msg:false
    ~birth:0 ()

let ack () = Packet.ack ~conn ~sport:9 ~psn:Psn.zero ~birth:0

let make ?(bw = 100.) ?(delay = 1000) () =
  let engine = Engine.create () in
  let port =
    Port.create ~engine ~bandwidth:(Rate.gbps bw) ~delay ~label:"t"
  in
  let arrived = ref [] in
  Port.set_deliver port (fun pkt ->
      arrived := (Engine.now engine, pkt) :: !arrived);
  (engine, port, arrived)

let test_single_packet_timing () =
  let engine, port, arrived = make () in
  (* 1562 B at 100 Gbps = 125 ns serialization (wire size incl. headers),
     then 1000 ns propagation. *)
  Port.enqueue port (data 0);
  Engine.run engine;
  match !arrived with
  | [ (t, _) ] ->
      let expect = Rate.tx_time (Rate.gbps 100.) ~bytes_:(1500 + Headers.data_overhead) + 1000 in
      Alcotest.(check int) "arrival time" expect t
  | _ -> Alcotest.fail "expected exactly one delivery"

let test_fifo_order () =
  let engine, port, arrived = make () in
  for i = 0 to 9 do
    Port.enqueue port (data i)
  done;
  Engine.run engine;
  let psns =
    List.rev_map
      (fun (_, p) ->
        match p.Packet.kind with Packet.Data { psn; _ } -> Psn.to_int psn | _ -> -1)
      !arrived
  in
  Alcotest.(check (list int)) "in order" (List.init 10 Fun.id) psns

let test_serialization_spacing () =
  let engine, port, arrived = make ~delay:0 () in
  Port.enqueue port (data 0);
  Port.enqueue port (data 1);
  Engine.run engine;
  match List.rev !arrived with
  | [ (t1, _); (t2, _) ] ->
      let tx = Rate.tx_time (Rate.gbps 100.) ~bytes_:(1500 + Headers.data_overhead) in
      Alcotest.(check int) "first" tx t1;
      Alcotest.(check int) "second spaced by serialization" (2 * tx) t2
  | _ -> Alcotest.fail "expected two deliveries"

let test_control_priority () =
  let engine, port, arrived = make ~delay:0 () in
  (* Enqueue lots of data, then an ACK: the ACK overtakes queued data. *)
  for i = 0 to 4 do
    Port.enqueue port (data i)
  done;
  Port.enqueue port (ack ());
  Engine.run engine;
  let kinds =
    List.rev_map
      (fun (_, p) -> if Packet.is_data p then "d" else "c")
      !arrived
  in
  (* Packet 0 is already serializing when the ACK arrives; the ACK goes
     next, before data 1..4. *)
  Alcotest.(check (list string)) "ack overtakes" [ "d"; "c"; "d"; "d"; "d"; "d" ] kinds

let test_queue_accounting () =
  let engine, port, _ = make () in
  ignore engine;
  Port.enqueue port (data 0);
  Port.enqueue port (data 1);
  Port.enqueue port (ack ());
  (* Packet 0 started serializing immediately, leaving one data packet
     and one control packet queued. *)
  Alcotest.(check int) "data bytes" (1500 + Headers.data_overhead) (Port.queue_bytes port);
  Alcotest.(check int) "ctrl bytes" Headers.ack_bytes (Port.ctrl_queue_bytes port);
  Alcotest.(check int) "packets" 2 (Port.queue_packets port);
  Alcotest.(check bool) "busy" true (Port.busy port)

let test_pause_resume () =
  let engine, port, arrived = make ~delay:0 () in
  Port.set_paused port true;
  Port.enqueue port (data 0);
  Engine.run engine;
  Alcotest.(check int) "paused holds" 0 (List.length !arrived);
  Port.set_paused port false;
  Alcotest.(check bool) "unpaused" false (Port.paused port);
  Engine.run engine;
  Alcotest.(check int) "drains after resume" 1 (List.length !arrived)

let test_link_down_drops () =
  let engine, port, arrived = make () in
  Port.enqueue port (data 0);
  Port.enqueue port (data 1);
  let discards = ref 0 in
  Port.set_on_discard port (fun _ -> incr discards);
  Port.set_up port false;
  Engine.run engine;
  Alcotest.(check int) "nothing delivered" 0 (List.length !arrived);
  Alcotest.(check bool) "drops counted" true (Port.dropped_packets port >= 1);
  Alcotest.(check bool) "discard hook" true (!discards >= 1);
  (* New enqueues while down are dropped too. *)
  Port.enqueue port (data 2);
  Engine.run engine;
  Alcotest.(check int) "still nothing" 0 (List.length !arrived)

let test_inject_drops () =
  let engine, port, arrived = make ~delay:0 () in
  Port.inject_drops port 2;
  Port.enqueue port (data 0);
  Port.enqueue port (data 1);
  Port.enqueue port (data 2);
  Port.enqueue port (ack ());
  Engine.run engine;
  (* Two data packets vanish; control is never dropped by injection. *)
  Alcotest.(check int) "one data + one ack" 2 (List.length !arrived);
  Alcotest.(check int) "dropped count" 2 (Port.dropped_packets port)

let test_on_dequeue_hook () =
  let engine, port, _ = make ~delay:0 () in
  let dequeued = ref 0 in
  Port.set_on_dequeue port (fun _ -> incr dequeued);
  Port.enqueue port (data 0);
  Port.enqueue port (data 1);
  Engine.run engine;
  Alcotest.(check int) "fired per packet" 2 !dequeued

let test_stats () =
  let engine, port, _ = make ~delay:0 () in
  Port.enqueue port (data 0);
  Port.enqueue port (ack ());
  Engine.run engine;
  Alcotest.(check int) "tx packets" 2 (Port.tx_packets port);
  Alcotest.(check int) "tx bytes"
    (1500 + Headers.data_overhead + Headers.ack_bytes)
    (Port.tx_bytes port);
  Alcotest.(check string) "label" "t" (Port.label port);
  Alcotest.(check (float 1.)) "bandwidth" 100. (Rate.to_gbps (Port.bandwidth port))

let test_jitter_delays_delivery () =
  let engine, port, arrived = make ~delay:1000 () in
  Port.set_jitter port ~rng:(Rng.create ~seed:3) ~max:500;
  for i = 0 to 19 do
    Port.enqueue port (data i)
  done;
  Engine.run engine;
  Alcotest.(check int) "all arrive" 20 (List.length !arrived);
  (* Every delivery is somewhere in [base, base + 500ns] after tx end. *)
  let tx = Rate.tx_time (Rate.gbps 100.) ~bytes_:(1500 + Headers.data_overhead) in
  let ok = ref true and saw_extra = ref false in
  List.iteri
    (fun i (t, _) ->
      (* Packets arrive newest-first in [arrived]. *)
      let idx = 19 - i in
      let base = ((idx + 1) * tx) + 1000 in
      if t < base || t > base + 500 then ok := false;
      if t > base then saw_extra := true)
    !arrived;
  Alcotest.(check bool) "within jitter bound" true !ok;
  Alcotest.(check bool) "jitter actually applied" true !saw_extra

let test_deliver_unset_fails () =
  let engine = Engine.create () in
  let port = Port.create ~engine ~bandwidth:(Rate.gbps 1.) ~delay:0 ~label:"x" in
  Port.enqueue port (data 0);
  Alcotest.check_raises "no deliver"
    (Failure "Port: deliver callback not set (missing set_deliver)") (fun () ->
      Engine.run engine)

let () =
  Alcotest.run "port"
    [
      ( "timing",
        [
          Alcotest.test_case "single packet" `Quick test_single_packet_timing;
          Alcotest.test_case "fifo" `Quick test_fifo_order;
          Alcotest.test_case "serialization spacing" `Quick test_serialization_spacing;
          Alcotest.test_case "control priority" `Quick test_control_priority;
        ] );
      ( "state",
        [
          Alcotest.test_case "queue accounting" `Quick test_queue_accounting;
          Alcotest.test_case "pause/resume" `Quick test_pause_resume;
          Alcotest.test_case "link down" `Quick test_link_down_drops;
          Alcotest.test_case "inject drops" `Quick test_inject_drops;
          Alcotest.test_case "dequeue hook" `Quick test_on_dequeue_hook;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "jitter" `Quick test_jitter_delays_delivery;
          Alcotest.test_case "unset deliver" `Quick test_deliver_unset_fails;
        ] );
    ]
