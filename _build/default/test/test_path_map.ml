(* Offline PathMap construction from hashing linearity (Fig. 3). *)

let test_build_sizes () =
  List.iter
    (fun n ->
      let map = Path_map.build ~paths:n in
      Alcotest.(check int) "paths" n (Path_map.paths map);
      Alcotest.(check int) "memory = 2N" (2 * n) (Path_map.memory_bytes map))
    [ 1; 2; 4; 8; 16; 64; 256 ]

let test_delta_zero_is_identity () =
  let map = Path_map.build ~paths:16 in
  Alcotest.(check int) "delta 0" 0 (Path_map.delta_sport map ~delta_path:0);
  Alcotest.(check int) "rewrite id" 1234
    (Path_map.rewrite map ~sport:1234 ~delta_path:0)

let test_deltas_move_hash () =
  let map = Path_map.build ~paths:16 in
  for d = 0 to 15 do
    let ds = Path_map.delta_sport map ~delta_path:d in
    Alcotest.(check int) "entropy shift matches"
      d
      (Ecmp_hash.linear16 ds land 15)
  done

let test_verify_many_flows () =
  List.iter
    (fun n ->
      let map = Path_map.build ~paths:n in
      List.iter
        (fun (src, dst, sport) ->
          Alcotest.(check bool)
            (Printf.sprintf "verify N=%d flow %d->%d" n src dst)
            true
            (Path_map.verify map ~src ~dst ~sport))
        [ (1, 2, 1000); (7, 3, 54321); (100, 200, 0xBEEF); (0, 1, 0) ])
    [ 2; 4; 16; 256 ]

let test_rewrite_covers_all_paths () =
  (* Spraying residues 0..N-1 through the map hits N distinct paths. *)
  let n = 8 in
  let map = Path_map.build ~paths:n in
  let path_of sp =
    Ecmp_hash.path_of_hash
      ~hash:(Ecmp_hash.flow_hash ~src:5 ~dst:9 ~sport:sp ~dport:4791)
      ~paths:n
  in
  let seen = Array.make n false in
  for r = 0 to n - 1 do
    seen.(path_of (Path_map.rewrite map ~sport:4242 ~delta_path:r)) <- true
  done;
  Array.iteri
    (fun i hit -> Alcotest.(check bool) (Printf.sprintf "path %d hit" i) true hit)
    seen

let test_invalid () =
  Alcotest.check_raises "not a power of two"
    (Invalid_argument "Path_map.build: paths must be a power of two <= 65536")
    (fun () -> ignore (Path_map.build ~paths:3));
  Alcotest.check_raises "too large"
    (Invalid_argument "Path_map.build: paths must be a power of two <= 65536")
    (fun () -> ignore (Path_map.build ~paths:131_072))

let prop_rewrite_involution =
  (* XOR-rewriting twice with the same delta restores the sport. *)
  QCheck.Test.make ~name:"rewrite is an involution" ~count:300
    QCheck.(pair (int_range 0 65_535) (int_range 0 255))
    (fun (sport, d) ->
      let map = Path_map.build ~paths:256 in
      Path_map.rewrite map
        ~sport:(Path_map.rewrite map ~sport ~delta_path:d)
        ~delta_path:d
      = sport)

let () =
  Alcotest.run "path_map"
    [
      ( "construction",
        [
          Alcotest.test_case "sizes" `Quick test_build_sizes;
          Alcotest.test_case "identity" `Quick test_delta_zero_is_identity;
          Alcotest.test_case "entropy deltas" `Quick test_deltas_move_hash;
          Alcotest.test_case "invalid" `Quick test_invalid;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "verify flows" `Quick test_verify_many_flows;
          Alcotest.test_case "covers all paths" `Quick test_rewrite_covers_all_paths;
          QCheck_alcotest.to_alcotest prop_rewrite_involution;
        ] );
    ]
