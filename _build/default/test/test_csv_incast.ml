(* CSV export and the incast experiment. *)

let test_series () =
  let s =
    Csv_export.series_to_string
      ~header:("time_us", "ratio")
      [ (0., 0.5); (20., 0.25) ]
  in
  Alcotest.(check string) "rendered" "time_us,ratio\n0,0.5\n20,0.25\n" s

let test_quoting () =
  let s =
    Csv_export.table_to_string ~columns:[ "a,b"; "c\"d" ] [ [ 1.; 2. ] ]
  in
  Alcotest.(check string) "quoted" "\"a,b\",\"c\"\"d\"\n1,2\n" s

let test_table_mismatch () =
  Alcotest.check_raises "width"
    (Invalid_argument "Csv_export.table_to_string: row width mismatch")
    (fun () ->
      ignore (Csv_export.table_to_string ~columns:[ "a"; "b" ] [ [ 1. ] ]))

let test_fig5_matrix () =
  let s =
    Csv_export.fig5_to_string
      ~sweep:[ (900., 4.); (10., 50.) ]
      ~rows:[ ("ecmp", [ 1.5; 0.5 ]); ("themis", [ 0.3; 0.3 ]) ]
  in
  Alcotest.(check string) "matrix"
    "scheme,TI900_TD4,TI10_TD50\necmp,1.5,0.5\nthemis,0.3,0.3\n" s

let test_write_roundtrip () =
  let path = Filename.temp_file "themis" ".csv" in
  Csv_export.write_series ~path ~header:("x", "y") [ (1., 2.) ];
  let ic = open_in path in
  let line1 = input_line ic in
  let line2 = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header" "x,y" line1;
  Alcotest.(check string) "row" "1,2" line2

let test_incast_runs () =
  let r =
    Experiment.run_incast
      {
        (Experiment.default_incast ~scheme:Network.Ecmp) with
        Experiment.incast_bytes = 300_000;
      }
  in
  Alcotest.(check bool) "p99 >= p50" true (r.Experiment.fct_p99_us >= r.Experiment.fct_p50_us);
  Alcotest.(check bool) "mean positive" true (r.Experiment.fct_mean_us > 0.);
  (* 8 x 300 kB into one 100 Gbps link needs at least ~190 us. *)
  Alcotest.(check bool) "bottleneck respected" true (r.Experiment.fct_p99_us > 150.)

let test_incast_themis_not_worse () =
  (* Incast has no multipath advantage (single receiver link), but Themis
     must not make it worse than ECMP by more than noise. *)
  let run scheme =
    (Experiment.run_incast
       {
         (Experiment.default_incast ~scheme) with
         Experiment.incast_bytes = 300_000;
       })
      .Experiment.fct_p99_us
  in
  let ecmp = run Network.Ecmp in
  let themis = run (Network.Themis { compensation = true }) in
  Alcotest.(check bool) "comparable" true (themis < ecmp *. 1.15)

let test_incast_invalid () =
  Alcotest.check_raises "fanin" (Invalid_argument "Experiment.run_incast: fanin")
    (fun () ->
      ignore
        (Experiment.run_incast
           { (Experiment.default_incast ~scheme:Network.Ecmp) with Experiment.fanin = 0 }))

let () =
  Alcotest.run "csv_incast"
    [
      ( "csv",
        [
          Alcotest.test_case "series" `Quick test_series;
          Alcotest.test_case "quoting" `Quick test_quoting;
          Alcotest.test_case "table mismatch" `Quick test_table_mismatch;
          Alcotest.test_case "fig5 matrix" `Quick test_fig5_matrix;
          Alcotest.test_case "write roundtrip" `Quick test_write_roundtrip;
        ] );
      ( "incast",
        [
          Alcotest.test_case "runs" `Slow test_incast_runs;
          Alcotest.test_case "themis not worse" `Slow test_incast_themis_not_worse;
          Alcotest.test_case "invalid" `Quick test_incast_invalid;
        ] );
    ]
