(* The trace facility, including its integration with the switch's
   Themis decision points. *)

let test_silent_by_default () =
  Alcotest.(check bool) "off" false (Trace.enabled ());
  Trace.emit ~time:0 ~cat:"x" "ignored";
  Alcotest.(check (list (triple int string string))) "nothing retained" []
    (Trace.retained ())

let test_retain () =
  Trace.set_sink Trace.Retain;
  Trace.clear ();
  Trace.emit ~time:5 ~cat:"a" "one";
  Trace.emitf ~time:7 ~cat:"b" "two %d" 2;
  let events = Trace.retained () in
  Trace.set_sink Trace.Silent;
  Alcotest.(check (list (triple int string string)))
    "ordered oldest first"
    [ (5, "a", "one"); (7, "b", "two 2") ]
    events

let test_clear () =
  Trace.set_sink Trace.Retain;
  Trace.clear ();
  Trace.emit ~time:1 ~cat:"a" "x";
  Trace.clear ();
  let events = Trace.retained () in
  Trace.set_sink Trace.Silent;
  Alcotest.(check int) "cleared" 0 (List.length events)

let test_switch_decisions_traced () =
  (* An end-to-end Themis run with tracing retained: the blocked NACKs
     must appear as themis-d events. *)
  Trace.set_sink Trace.Retain;
  Trace.clear ();
  let params =
    Network.default_params ~fabric:Leaf_spine.motivation
      ~scheme:(Network.Themis { compensation = true })
  in
  let net = Network.build params in
  let ls = Network.fabric net in
  let done_count = ref 0 in
  let groups = Workload.motivation_groups ls in
  Array.iter
    (fun members ->
      let n = Array.length members in
      Array.iteri
        (fun i src ->
          let qp = Network.connect net ~src ~dst:members.((i + 1) mod n) in
          Rnic.post_send qp ~bytes:500_000 ~on_complete:(fun _ ->
              incr done_count))
        members)
    groups;
  Network.run net ~until:(Sim_time.sec 5);
  let events = Trace.retained () in
  Trace.set_sink Trace.Silent;
  Trace.clear ();
  Alcotest.(check int) "flows done" 8 !done_count;
  let themis_events =
    List.filter (fun (_, cat, _) -> cat = "themis-d") events
  in
  let blocked =
    match Network.themis_totals net with
    | Some t -> t.Network.nacks_blocked
    | None -> 0
  in
  Alcotest.(check bool) "blocked NACKs happened" true (blocked > 0);
  Alcotest.(check int) "one trace event per decision" blocked
    (List.length themis_events);
  List.iter
    (fun (time, _, msg) ->
      Alcotest.(check bool) "timestamped" true (time >= 0);
      Alcotest.(check bool) "mentions blocking" true
        (String.length msg > 0))
    themis_events

let () =
  Alcotest.run "trace"
    [
      ( "trace",
        [
          Alcotest.test_case "silent default" `Quick test_silent_by_default;
          Alcotest.test_case "retain" `Quick test_retain;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "switch integration" `Quick test_switch_decisions_traced;
        ] );
    ]
