(* ECMP hashing and the GF(2) linearity that PathMap construction needs. *)

let test_linear16_zero () = Alcotest.(check int) "E(0)=0" 0 (Ecmp_hash.linear16 0)

let test_linear16_range () =
  for x = 0 to 65_535 do
    let v = Ecmp_hash.linear16 x in
    if v < 0 || v > 0xFFFF then Alcotest.failf "linear16 %d out of range: %d" x v
  done

let test_linear16_injective () =
  (* Full rank: all 2^16 inputs map to distinct outputs. *)
  let seen = Array.make 65_536 false in
  for x = 0 to 65_535 do
    let v = Ecmp_hash.linear16 x in
    if seen.(v) then Alcotest.failf "collision at %d" x;
    seen.(v) <- true
  done

let prop_linear16_linearity =
  QCheck.Test.make ~name:"E(a xor b) = E(a) xor E(b)" ~count:1000
    QCheck.(pair (int_range 0 65_535) (int_range 0 65_535))
    (fun (a, b) ->
      Ecmp_hash.linear16 (a lxor b)
      = Ecmp_hash.linear16 a lxor Ecmp_hash.linear16 b)

let test_mix_deterministic () =
  Alcotest.(check int) "same input" (Ecmp_hash.mix 42) (Ecmp_hash.mix 42);
  Alcotest.(check bool) "different inputs differ" true
    (Ecmp_hash.mix 42 <> Ecmp_hash.mix 43);
  Alcotest.(check bool) "non-negative" true (Ecmp_hash.mix (-5) >= 0)

let test_flow_hash_deterministic () =
  let h1 = Ecmp_hash.flow_hash ~src:1 ~dst:2 ~sport:100 ~dport:4791 in
  let h2 = Ecmp_hash.flow_hash ~src:1 ~dst:2 ~sport:100 ~dport:4791 in
  Alcotest.(check int) "deterministic" h1 h2;
  Alcotest.(check bool) "non-negative" true (h1 >= 0)

let prop_flow_hash_sport_linear =
  QCheck.Test.make ~name:"sport enters the flow hash linearly" ~count:500
    QCheck.(triple (int_range 0 65_535) (int_range 0 65_535) (pair (int_range 0 1000) (int_range 0 1000)))
    (fun (sport, delta, (src, dst)) ->
      let h1 = Ecmp_hash.flow_hash ~src ~dst ~sport ~dport:4791 in
      let h2 = Ecmp_hash.flow_hash ~src ~dst ~sport:(sport lxor delta) ~dport:4791 in
      h1 lxor h2 = Ecmp_hash.linear16 delta)

let test_path_of_hash_bounds () =
  for paths = 1 to 17 do
    for h = 0 to 1000 do
      let p = Ecmp_hash.path_of_hash ~hash:(Ecmp_hash.mix h) ~paths in
      if p < 0 || p >= paths then Alcotest.failf "path out of range: %d/%d" p paths
    done
  done

let test_path_of_hash_pow2_low_bits () =
  Alcotest.(check int) "low bits" 0b101 (Ecmp_hash.path_of_hash ~hash:0b11101 ~paths:8)

let test_path_of_hash_invalid () =
  Alcotest.check_raises "zero paths" (Invalid_argument "Ecmp_hash.path_of_hash")
    (fun () -> ignore (Ecmp_hash.path_of_hash ~hash:1 ~paths:0))

let test_flow_hash_spread () =
  (* 64 distinct flows over 4 paths should not all collide. *)
  let counts = Array.make 4 0 in
  for i = 0 to 63 do
    let h = Ecmp_hash.flow_hash ~src:i ~dst:100 ~sport:(0x8000 + i) ~dport:4791 in
    let p = Ecmp_hash.path_of_hash ~hash:h ~paths:4 in
    counts.(p) <- counts.(p) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "no empty bucket" true (c > 0))
    counts

let () =
  Alcotest.run "ecmp_hash"
    [
      ( "linear16",
        [
          Alcotest.test_case "zero" `Quick test_linear16_zero;
          Alcotest.test_case "range" `Quick test_linear16_range;
          Alcotest.test_case "injective" `Quick test_linear16_injective;
          QCheck_alcotest.to_alcotest prop_linear16_linearity;
        ] );
      ( "flow_hash",
        [
          Alcotest.test_case "mix" `Quick test_mix_deterministic;
          Alcotest.test_case "deterministic" `Quick test_flow_hash_deterministic;
          Alcotest.test_case "spread" `Quick test_flow_hash_spread;
          QCheck_alcotest.to_alcotest prop_flow_hash_sport_linear;
        ] );
      ( "path_of_hash",
        [
          Alcotest.test_case "bounds" `Quick test_path_of_hash_bounds;
          Alcotest.test_case "pow2 low bits" `Quick test_path_of_hash_pow2_low_bits;
          Alcotest.test_case "invalid" `Quick test_path_of_hash_invalid;
        ] );
    ]
